GO ?= go

.PHONY: build test vet race bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The hybrid engine runs goroutine pools inside every rank; keep the race
# detector on the whole tree so new concurrency is checked on every PR.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

check: vet build test race
