GO ?= go

.PHONY: build test vet race bench bench-kernels bench-predict bench-search bench-ooc bench-serve check trace-smoke faults api apicheck serve-smoke obs-smoke async-smoke ooc-smoke serve-load-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The hybrid engine runs goroutine pools inside every rank; keep the race
# detector on the whole tree so new concurrency is checked on every PR.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Blocked-vs-reference kernel comparison on the paper's two-real-attribute
# dataset at J=8, emitted as BENCH_kernels.json (raw lines stay
# benchstat-comparable: jq -r '.raw_lines[]' BENCH_kernels.json).
bench-kernels:
	$(GO) test -run '^$$' -bench 'BenchmarkUpdateWts|BenchmarkBaseCycle' \
		-benchmem -count 1 ./internal/autoclass \
		| tee /dev/stderr | $(GO) run ./cmd/benchkernels -o BENCH_kernels.json

# Local equivalent of the CI trace-smoke job: a traced 4-rank Meiko run
# whose Chrome trace, events and metrics land in /tmp for inspection.
trace-smoke:
	$(GO) run ./cmd/datagen -workload paper -n 2000 -seed 7 -o /tmp/smoke.txt
	$(GO) run ./cmd/pautoclass -data /tmp/smoke.txt -procs 4 -start-j 4 \
		-tries 1 -max-cycles 10 -machine meiko \
		-trace-out /tmp/trace.json -events-out /tmp/events.jsonl \
		-metrics-out /tmp/metrics.json -phase-profile

# Fault-tolerance suite: fault-injection matrix (every collective ×
# Allreduce algorithm × transport with a rank killed mid-collective),
# deadline/retry semantics, and the kill-and-resume bitwise-identity
# test. The hard -timeout makes a hang a failure, not a stall.
faults:
	$(GO) test -race -timeout 180s \
		-run 'Fault|Flaky|Timeout|Deadline|Retry|Race|Checkpoint|Resume|KillAndResume' \
		./internal/mpi ./internal/autoclass ./internal/pautoclass ./cmd/pautoclass

# Batch-scoring comparison on the serving hot path: 10k held-out rows at
# J=8 under the blocked kernels vs the per-row reference oracle, emitted
# as BENCH_predict.json (same schema and tooling as BENCH_kernels.json).
bench-predict:
	$(GO) test -run '^$$' -bench 'BenchmarkPredict' -benchmem -count 1 \
		./internal/autoclass \
		| tee /dev/stderr | $(GO) run ./cmd/benchkernels -o BENCH_predict.json

# Variant-parallel BIG_LOOP baseline: per-try costs measured once, the
# scheduler's promise-order claim replayed on 1/2/4/8-worker pools for the
# modeled makespan speedup (the headline — CI hosts are single-core), and
# every worker count actually executed and checked bitwise against the
# sequential oracle. Emitted as BENCH_search.json.
bench-search:
	$(GO) run ./cmd/benchsearch -o BENCH_search.json

# api.txt is the committed exported surface of the facade package; `make
# api` regenerates it after an intentional API change, `make apicheck`
# fails when the surface drifted without the golden file being updated.
api:
	$(GO) run ./cmd/apidump -o api.txt .

apicheck:
	$(GO) run ./cmd/apidump . | diff -u api.txt - \
		|| { echo "facade API surface changed; run 'make api' and commit api.txt" >&2; exit 1; }

# Local equivalent of the CI daemon-smoke job: start pautoclassd, submit a
# training job over HTTP, poll it (and its live /progress view) to
# completion, batch-score the training rows against the fitted model,
# check /healthz and /readyz, and validate both metrics variants — the
# Prometheus exposition on /metrics (unique sorted families, # EOF,
# per-route latency histograms, search progress gauges) and the JSON
# shape on /metrics.json.
serve-smoke:
	$(GO) build -o /tmp/pautoclassd ./cmd/pautoclassd
	./scripts/serve_smoke.sh /tmp/pautoclassd

# The telemetry surface rides in the same daemon smoke; the alias names it
# for the observability acceptance runbook (EXPERIMENTS.md, OBS recipe).
obs-smoke: serve-smoke

# Bounded-staleness smoke (EXPERIMENTS.md, ASYNC recipe): the same 4-rank
# search at -sync-every 1 and 4 must agree on log-likelihood within 2%,
# and the quick comm-fraction sweep must pass its shape checks.
async-smoke:
	./scripts/async_smoke.sh

# Out-of-core data-plane benchmark: train and predict over a chunk file
# with the bounded cache holding a tenth of the chunks, self-checked
# bitwise against an in-memory load, emitted as BENCH_ooc.json.
bench-ooc:
	$(GO) run ./cmd/benchooc -o BENCH_ooc.json

# Predict-tier load benchmark: sustained concurrent traffic against the
# registry-served batching predict path with rank-sharded workers, every
# response byte-checked against solo baselines across a daemon restart,
# emitted as BENCH_serve.json (p50/p99, QPS, bytes/req, cache hit rate).
bench-serve:
	$(GO) run ./cmd/benchserve -o BENCH_serve.json

# Predict-tier load smoke (EXPERIMENTS.md, SERVE recipe): a small
# benchserve run whose bitwise self-check must pass and whose percentiles
# must be finite, ordered and backed by real throughput.
serve-load-smoke:
	./scripts/serve_load_smoke.sh

# Out-of-core smoke (EXPERIMENTS.md, OOC recipe): a small benchooc run
# whose cache must page and whose trajectory must match in-memory
# bitwise, plus the CLI path — datagen .chunks → pautoclass -chunked
# under a 64KiB budget — compared verbatim against the materialized run.
ooc-smoke:
	./scripts/ooc_smoke.sh

check: vet build test race apicheck
