GO ?= go

.PHONY: build test vet race bench check trace-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The hybrid engine runs goroutine pools inside every rank; keep the race
# detector on the whole tree so new concurrency is checked on every PR.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Local equivalent of the CI trace-smoke job: a traced 4-rank Meiko run
# whose Chrome trace, events and metrics land in /tmp for inspection.
trace-smoke:
	$(GO) run ./cmd/datagen -workload paper -n 2000 -seed 7 -o /tmp/smoke.txt
	$(GO) run ./cmd/pautoclass -data /tmp/smoke.txt -procs 4 -start-j 4 \
		-tries 1 -max-cycles 10 -machine meiko \
		-trace-out /tmp/trace.json -events-out /tmp/events.jsonl \
		-metrics-out /tmp/metrics.json -phase-profile

check: vet build test race
