package repro

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/autoclass"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/pautoclass"
)

// The facade-equivalence suite: the legacy functions are now wrappers over
// Run, so comparing Run to them would be circular. Every test here compares
// Run's output to a DIRECT internal-package invocation of the engine the
// option combination selects — same J, same try records, bitwise-identical
// best classification.

func runClsBytes(t *testing.T, cls *Classification) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := autoclass.SaveCheckpoint(&buf, cls); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func assertSameSearch(t *testing.T, got, want *SearchResult) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("nil result: got %v, want %v", got, want)
	}
	if !bytes.Equal(runClsBytes(t, got.Best), runClsBytes(t, want.Best)) {
		t.Error("best classifications differ bitwise")
	}
	if !reflect.DeepEqual(got.Tries, want.Tries) {
		t.Errorf("try records diverged:\ngot:  %+v\nwant: %+v", got.Tries, want.Tries)
	}
}

func runTestDataset(t *testing.T, n int) *Dataset {
	t.Helper()
	ds, err := PaperDataset(n, 7)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func runQuickCfg() SearchConfig {
	cfg := DefaultSearchConfig()
	cfg.StartJList = []int{2, 5}
	cfg.Tries = 1
	cfg.EM.MaxCycles = 40
	return cfg
}

func TestRunMatchesDirectSequential(t *testing.T) {
	ds := runTestDataset(t, 400)
	cfg := runQuickCfg()
	want, err := autoclass.Search(ds, model.DefaultSpec(ds), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(ds, WithSearchConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	assertSameSearch(t, r.Search, want)
	if r.Best() != r.Search.Best {
		t.Error("Result.Best does not return the search best")
	}
}

func TestRunMatchesDirectCorrelated(t *testing.T) {
	ds := runTestDataset(t, 400)
	cfg := runQuickCfg()
	want, err := autoclass.Search(ds, model.CorrelatedSpec(ds), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(ds, WithSearchConfig(cfg), WithCorrelated())
	if err != nil {
		t.Fatal(err)
	}
	assertSameSearch(t, r.Search, want)
}

func TestRunMatchesDirectModelSearch(t *testing.T) {
	ds := runTestDataset(t, 400)
	cfg := runQuickCfg()
	want, err := autoclass.SearchModels(ds, autoclass.StandardSpecCandidates(ds, ds.Summarize()), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(ds, WithSearchConfig(cfg), WithModelSearch())
	if err != nil {
		t.Fatal(err)
	}
	if r.Models == nil || r.Search != nil {
		t.Fatalf("model search should fill Models only: %+v", r)
	}
	if !bytes.Equal(runClsBytes(t, r.Models.Best), runClsBytes(t, want.Best)) {
		t.Error("model-search best classifications differ bitwise")
	}
	if r.Best() != r.Models.Best {
		t.Error("Result.Best does not return the model-search best")
	}
}

func TestRunMatchesDirectParallel(t *testing.T) {
	ds := runTestDataset(t, 400)
	cfg := runQuickCfg()
	var want *SearchResult
	err := mpi.Run(3, func(c *mpi.Comm) error {
		res, err := pautoclass.Search(c, ds, model.DefaultSpec(ds), cfg,
			pautoclass.Options{EM: cfg.EM, Strategy: pautoclass.Full})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			want = res
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(ds, WithSearchConfig(cfg), WithParallel(ParallelConfig{Procs: 3}))
	if err != nil {
		t.Fatal(err)
	}
	assertSameSearch(t, r.Search, want)
	if r.Stats.WallSeconds <= 0 {
		t.Error("parallel run reported no wall time")
	}
}

func TestRunMatchesDirectSequentialCheckpoint(t *testing.T) {
	ds := runTestDataset(t, 400)
	cfg := runQuickCfg()
	dir := t.TempDir()
	want, err := autoclass.SearchWithCheckpointFile(ds, model.DefaultSpec(ds), cfg, nil,
		filepath.Join(dir, "direct.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(ds, WithSearchConfig(cfg), WithCheckpoint(filepath.Join(dir, "run.ckpt"), 0))
	if err != nil {
		t.Fatal(err)
	}
	assertSameSearch(t, r.Search, want)
	// A second Run against the finished state file returns the identical
	// result immediately.
	r2, err := Run(ds, WithSearchConfig(cfg), WithCheckpoint(filepath.Join(dir, "run.ckpt"), 0))
	if err != nil {
		t.Fatal(err)
	}
	assertSameSearch(t, r2.Search, want)
}

func TestRunMatchesDirectParallelCheckpoint(t *testing.T) {
	ds := runTestDataset(t, 400)
	cfg := runQuickCfg()
	var want *SearchResult
	err := mpi.Run(2, func(c *mpi.Comm) error {
		res, err := pautoclass.Search(c, ds, model.DefaultSpec(ds), cfg,
			pautoclass.Options{EM: cfg.EM, Strategy: pautoclass.Full})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			want = res
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "par.ckpt")
	r, err := Run(ds, WithSearchConfig(cfg), WithCheckpoint(path, 4),
		WithParallel(ParallelConfig{Procs: 2}))
	if err != nil {
		t.Fatal(err)
	}
	assertSameSearch(t, r.Search, want)
}

// TestRunObserverWiring is the regression test for the ClusterParallel
// observer bug: the legacy facade silently dropped observer and profile
// wiring, so metrics stayed empty unless callers bypassed the facade.
// Through WithObserver/WithProfile the engines must actually report — and
// observation must not perturb the trajectory.
func TestRunObserverWiring(t *testing.T) {
	ds := runTestDataset(t, 400)
	cfg := runQuickCfg()
	plain, err := Run(ds, WithSearchConfig(cfg), WithParallel(ParallelConfig{Procs: 2}))
	if err != nil {
		t.Fatal(err)
	}

	o := NewRunObserver(2)
	prof := NewProfile()
	observed, err := Run(ds, WithSearchConfig(cfg),
		WithParallel(ParallelConfig{Procs: 2}), WithObserver(o), WithProfile(prof))
	if err != nil {
		t.Fatal(err)
	}
	assertSameSearch(t, observed.Search, plain.Search)

	agg := o.Aggregate().Snapshot()
	if agg.Counters["engine.cycles"] == 0 {
		t.Error("observer saw no engine cycles — the wiring bug is back")
	}
	if agg.Counters["mpi.collectives.allreduce"] == 0 {
		t.Error("observer saw no collectives")
	}
	if prof.Get(autoclass.PhaseWts).Calls == 0 {
		t.Error("profile recorded no update_wts phases")
	}

	// Sequential observer path.
	seqPlain, err := Run(ds, WithSearchConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	so := NewRunObserver(1)
	seqObs, err := Run(ds, WithSearchConfig(cfg), WithObserver(so))
	if err != nil {
		t.Fatal(err)
	}
	assertSameSearch(t, seqObs.Search, seqPlain.Search)
	if so.Aggregate().Snapshot().Counters["engine.cycles"] == 0 {
		t.Error("sequential observer saw no engine cycles")
	}
}

func machinePtr(m Machine) *Machine { return &m }

// TestRunSearchParallelism: WithSearchParallelism is bitwise-invariant —
// sequential, variant-parallel, and option-order-swapped runs all land on
// the identical result.
func TestRunSearchParallelism(t *testing.T) {
	ds := runTestDataset(t, 400)
	cfg := runQuickCfg()
	ref, err := Run(ds, WithSearchConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(ds, WithSearchConfig(cfg), WithSearchParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	assertSameSearch(t, par.Search, ref.Search)
	// Option order must not matter.
	swapped, err := Run(ds, WithSearchParallelism(4), WithSearchConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	assertSameSearch(t, swapped.Search, ref.Search)
}

// TestRunHybridParallelism: WithSearchParallelism(v) + WithParallel(Procs)
// splits the budget into v groups of Procs/v ranks, bitwise identical to
// the plain SPMD search over Procs/v ranks.
func TestRunHybridParallelism(t *testing.T) {
	ds := runTestDataset(t, 400)
	cfg := runQuickCfg()
	ref, err := Run(ds, WithSearchConfig(cfg), WithParallel(ParallelConfig{Procs: 2}))
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := Run(ds, WithSearchConfig(cfg), WithSearchParallelism(2),
		WithParallel(ParallelConfig{Procs: 4}))
	if err != nil {
		t.Fatal(err)
	}
	assertSameSearch(t, hyb.Search, ref.Search)

	// Observer and profile wire through the hybrid path too.
	o := NewRunObserver(4)
	prof := NewProfile()
	obs, err := Run(ds, WithSearchConfig(cfg), WithSearchParallelism(2),
		WithParallel(ParallelConfig{Procs: 4}), WithObserver(o), WithProfile(prof))
	if err != nil {
		t.Fatal(err)
	}
	assertSameSearch(t, obs.Search, ref.Search)
	if o.Aggregate().Snapshot().Counters["engine.cycles"] == 0 {
		t.Error("hybrid observer saw no engine cycles")
	}
	if prof.Get(autoclass.PhaseWts).Calls == 0 {
		t.Error("hybrid profile recorded no update_wts phases")
	}
}

// TestRunCheckpointInstrumentation (satellite 4 at the facade): the
// resumable sequential search now accepts WithObserver/WithProfile instead
// of rejecting them, and reports the same instrumentation as the
// unresumable path.
func TestRunCheckpointInstrumentation(t *testing.T) {
	ds := runTestDataset(t, 400)
	cfg := runQuickCfg()
	refObs := NewRunObserver(1)
	refProf := NewProfile()
	ref, err := Run(ds, WithSearchConfig(cfg), WithObserver(refObs), WithProfile(refProf))
	if err != nil {
		t.Fatal(err)
	}

	o := NewRunObserver(1)
	prof := NewProfile()
	path := filepath.Join(t.TempDir(), "obs.ckpt")
	r, err := Run(ds, WithSearchConfig(cfg), WithCheckpoint(path, 0),
		WithObserver(o), WithProfile(prof))
	if err != nil {
		t.Fatal(err)
	}
	assertSameSearch(t, r.Search, ref.Search)
	got := o.Aggregate().Snapshot().Counters["engine.cycles"]
	want := refObs.Aggregate().Snapshot().Counters["engine.cycles"]
	if got != want {
		t.Errorf("checkpointed observer saw %v cycles, reference %v", got, want)
	}
	if prof.Get(autoclass.PhaseWts).Calls != refProf.Get(autoclass.PhaseWts).Calls {
		t.Errorf("checkpointed profile saw %d update_wts calls, reference %d",
			prof.Get(autoclass.PhaseWts).Calls, refProf.Get(autoclass.PhaseWts).Calls)
	}
}

func TestRunOptionValidation(t *testing.T) {
	ds := runTestDataset(t, 120)
	cases := []struct {
		name string
		opts []Option
	}{
		{"models+correlated", []Option{WithModelSearch(), WithCorrelated()}},
		{"models+parallel", []Option{WithModelSearch(), WithParallel(ParallelConfig{Procs: 2})}},
		{"models+checkpoint", []Option{WithModelSearch(), WithCheckpoint("x.ckpt", 0)}},
		{"models+observer", []Option{WithModelSearch(), WithObserver(NewRunObserver(1))}},
		{"parallel+correlated", []Option{WithCorrelated(), WithParallel(ParallelConfig{Procs: 2})}},
		{"zero procs", []Option{WithParallel(ParallelConfig{})}},
		{"observer rank mismatch", []Option{WithObserver(NewRunObserver(4))}},
		{"checkpoint without path", []Option{WithCheckpoint("", 4)}},
		{"hybrid+machine", []Option{WithSearchParallelism(2),
			WithParallel(ParallelConfig{Procs: 2, Machine: machinePtr(MeikoCS2())})}},
		{"hybrid+checkpoint", []Option{WithSearchParallelism(2), WithCheckpoint("x.ckpt", 0),
			WithParallel(ParallelConfig{Procs: 2})}},
		{"hybrid indivisible budget", []Option{WithSearchParallelism(2),
			WithParallel(ParallelConfig{Procs: 3})}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Run(ds, tc.opts...); err == nil {
				t.Errorf("%s: accepted", tc.name)
			}
		})
	}
	if _, err := Run(nil); err == nil {
		t.Error("nil dataset accepted")
	}
}

// TestPredictFacade smoke-tests the facade Predict against the internal
// batch scorer and the per-row public API.
func TestPredictFacade(t *testing.T) {
	ds := runTestDataset(t, 500)
	r, err := Run(ds, WithSearchConfig(runQuickCfg()))
	if err != nil {
		t.Fatal(err)
	}
	heldout, err := PaperDataset(300, 99)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Predict(r.Best(), heldout, PredictConfig{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 300 || p.J != r.Best().J() {
		t.Fatalf("shape: N=%d J=%d", p.N(), p.J)
	}
	if got := HeldoutLogLik(r.Best(), heldout); p.LogLik != got {
		t.Fatalf("Predict loglik %v, HeldoutLogLik %v", p.LogLik, got)
	}
	for i := 0; i < p.N(); i++ {
		if want := r.Best().HardAssign(heldout.Row(i)); p.MAP[i] != want {
			t.Fatalf("row %d: MAP %d, HardAssign %d", i, p.MAP[i], want)
		}
	}
	if _, err := Predict(nil, heldout, PredictConfig{}); err == nil {
		t.Error("nil classification accepted")
	}
}
