// Package trace provides lightweight named timers and counters for phase
// profiling — the instrumentation behind the reproduction of the paper's
// §3.1 measurement that base_cycle accounts for ~99.5% of AutoClass's
// runtime and that update_approximations is negligible.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Entry is one named phase's accumulated time and call count.
type Entry struct {
	// Seconds is the accumulated wall-clock time.
	Seconds float64
	// Calls counts Add/Time invocations.
	Calls int64
}

// Profile aggregates named phase timings. It is safe for concurrent use.
// The zero value is not usable; call New.
type Profile struct {
	mu      sync.Mutex
	entries map[string]*Entry
}

// New returns an empty profile.
func New() *Profile {
	return &Profile{entries: make(map[string]*Entry)}
}

// Add folds seconds into the named phase.
func (p *Profile) Add(name string, seconds float64) {
	if seconds < 0 {
		seconds = 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.entries[name]
	if e == nil {
		e = &Entry{}
		p.entries[name] = e
	}
	e.Seconds += seconds
	e.Calls++
}

// Time starts a timer for the named phase; the returned function stops it
// and records the elapsed time. Use as `defer p.Time("phase")()`.
func (p *Profile) Time(name string) func() {
	start := time.Now()
	return func() {
		p.Add(name, time.Since(start).Seconds())
	}
}

// Get returns the named entry (zero if absent).
func (p *Profile) Get(name string) Entry {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e := p.entries[name]; e != nil {
		return *e
	}
	return Entry{}
}

// Total returns the sum of all entries' seconds.
func (p *Profile) Total() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	t := 0.0
	for _, e := range p.entries {
		t += e.Seconds
	}
	return t
}

// Fraction returns the named phase's share of Total (0 if Total is 0).
func (p *Profile) Fraction(name string) float64 {
	total := p.Total()
	if total == 0 {
		return 0
	}
	return p.Get(name).Seconds / total
}

// Names returns the entry names sorted by decreasing time.
func (p *Profile) Names() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	names := make([]string, 0, len(p.entries))
	for n := range p.entries {
		names = append(names, n)
	}
	sort.Slice(names, func(a, b int) bool {
		return p.entries[names[a]].Seconds > p.entries[names[b]].Seconds
	})
	return names
}

// Table renders the profile as an aligned text table with percentages.
func (p *Profile) Table() string {
	names := p.Names()
	total := p.Total()
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %12s %8s %10s\n", "phase", "seconds", "share", "calls")
	for _, n := range names {
		e := p.Get(n)
		share := 0.0
		if total > 0 {
			share = 100 * e.Seconds / total
		}
		fmt.Fprintf(&b, "%-28s %12.6f %7.2f%% %10d\n", n, e.Seconds, share, e.Calls)
	}
	fmt.Fprintf(&b, "%-28s %12.6f %7.2f%%\n", "total", total, 100.0)
	return b.String()
}

// Reset clears all entries.
func (p *Profile) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.entries = make(map[string]*Entry)
}
