package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestAddAndGet(t *testing.T) {
	p := New()
	p.Add("a", 1.5)
	p.Add("a", 0.5)
	p.Add("b", 1)
	e := p.Get("a")
	if e.Seconds != 2 || e.Calls != 2 {
		t.Fatalf("entry %+v", e)
	}
	if p.Get("missing") != (Entry{}) {
		t.Fatal("missing entry not zero")
	}
	if p.Total() != 3 {
		t.Fatalf("total %v", p.Total())
	}
}

func TestNegativeClamped(t *testing.T) {
	p := New()
	p.Add("a", -5)
	if p.Get("a").Seconds != 0 {
		t.Fatal("negative time recorded")
	}
}

func TestFraction(t *testing.T) {
	p := New()
	p.Add("big", 9)
	p.Add("small", 1)
	if f := p.Fraction("big"); f != 0.9 {
		t.Fatalf("fraction %v", f)
	}
	empty := New()
	if empty.Fraction("x") != 0 {
		t.Fatal("empty profile fraction not 0")
	}
}

func TestTimeMeasures(t *testing.T) {
	p := New()
	stop := p.Time("sleepy")
	time.Sleep(10 * time.Millisecond)
	stop()
	if e := p.Get("sleepy"); e.Seconds < 0.005 || e.Calls != 1 {
		t.Fatalf("timer recorded %+v", e)
	}
}

func TestNamesSortedByTime(t *testing.T) {
	p := New()
	p.Add("small", 1)
	p.Add("big", 10)
	p.Add("mid", 5)
	names := p.Names()
	if len(names) != 3 || names[0] != "big" || names[2] != "small" {
		t.Fatalf("names %v", names)
	}
}

func TestTableFormat(t *testing.T) {
	p := New()
	p.Add("update_wts", 5)
	p.Add("update_approximations", 0.01)
	tbl := p.Table()
	for _, want := range []string{"update_wts", "update_approximations", "total", "%"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("table missing %q:\n%s", want, tbl)
		}
	}
}

func TestReset(t *testing.T) {
	p := New()
	p.Add("a", 1)
	p.Reset()
	if p.Total() != 0 || len(p.Names()) != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestConcurrentUse(t *testing.T) {
	p := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 1000; k++ {
				p.Add("shared", 0.001)
			}
		}()
	}
	wg.Wait()
	if e := p.Get("shared"); e.Calls != 8000 {
		t.Fatalf("calls %d", e.Calls)
	}
}
