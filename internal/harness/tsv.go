package harness

import (
	"bufio"
	"fmt"
	"io"
)

// Machine-readable exports: every experiment result can emit its series as
// tab-separated values so the figures can be re-plotted with external
// tools. One row per measurement point, fully denormalized.

// WriteTSV emits rows: size, procs, seconds, speedup.
func (r *Fig6Result) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "tuples\tprocs\tseconds\tspeedup")
	for si, n := range r.Sizes {
		for pi, p := range r.Procs {
			fmt.Fprintf(bw, "%d\t%d\t%.6f\t%.4f\n", n, p, r.Seconds[si][pi], r.Speedup(si, pi))
		}
	}
	return bw.Flush()
}

// WriteTSV emits rows: clusters, procs, seconds_per_cycle.
func (r *Fig8Result) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "clusters\tprocs\tseconds_per_cycle")
	for ci, j := range r.Clusters {
		for pi, p := range r.Procs {
			fmt.Fprintf(bw, "%d\t%d\t%.6f\n", j, p, r.SecondsPerCycle[ci][pi])
		}
	}
	return bw.Flush()
}

// WriteTSV emits rows: phase, seconds, share.
func (r *ProfileResult) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "phase\tseconds\tshare")
	total := r.TotalSeconds
	rows := []struct {
		name string
		s    float64
	}{
		{"update_wts", r.WtsSeconds},
		{"update_parameters", r.ParamsSeconds},
		{"update_approximations", r.ApproxSeconds},
		{"initialization", r.InitSeconds},
	}
	for _, row := range rows {
		share := 0.0
		if total > 0 {
			share = row.s / total
		}
		fmt.Fprintf(bw, "%s\t%.6f\t%.6f\n", row.name, row.s, share)
	}
	return bw.Flush()
}

// WriteTSV emits rows: tuples, seconds.
func (r *SeqAnchorResult) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "tuples\tseconds")
	for i, n := range r.Sizes {
		fmt.Fprintf(bw, "%d\t%.6f\n", n, r.Seconds[i])
	}
	return bw.Flush()
}

// WriteTSV emits rows: procs, strategy, seconds.
func (r *AblationResult) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "procs\tstrategy\tseconds")
	for pi, p := range r.Procs {
		fmt.Fprintf(bw, "%d\tfull-perterm\t%.6f\n", p, r.Full[pi])
		fmt.Fprintf(bw, "%d\twts-only\t%.6f\n", p, r.WtsOnly[pi])
		fmt.Fprintf(bw, "%d\tfull-packed\t%.6f\n", p, r.Packed[pi])
	}
	return bw.Flush()
}

// WriteTSV emits rows: machine, algorithm, procs, seconds.
func (r *AlgoResult) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "machine\talgorithm\tprocs\tseconds")
	for mi, name := range r.Machines {
		for ai, algo := range r.Algos {
			for pi, p := range r.Procs {
				fmt.Fprintf(bw, "%s\t%s\t%d\t%.6f\n", name, algo, p, r.Seconds[mi][ai][pi])
			}
		}
	}
	return bw.Flush()
}

// WriteTSV emits rows: sync_every, procs, comm_fraction, collectives.
func (r *AsyncResult) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "sync_every\tprocs\tcomm_fraction\tcollectives")
	for li, l := range r.SyncEvery {
		for pi, p := range r.Procs {
			fmt.Fprintf(bw, "%d\t%d\t%.6f\t%d\n", l, p, r.CommFraction[li][pi], r.Collectives[li][pi])
		}
	}
	return bw.Flush()
}

// WriteTSV emits rows: machine, procs, seconds, speedup.
func (r *PortabilityResult) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "machine\tprocs\tseconds\tspeedup")
	for mi, name := range r.Machines {
		for pi, p := range r.Procs {
			fmt.Fprintf(bw, "%s\t%d\t%.6f\t%.4f\n", name, p, r.Seconds[mi][pi], r.Speedup(mi, pi))
		}
	}
	return bw.Flush()
}
