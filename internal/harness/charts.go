package harness

import (
	"fmt"

	"repro/internal/plot"
)

// The paper presents Figs. 6–8 as line charts; these methods render the
// measured results in the same visual form (ASCII), complementing the
// tables.

// SpeedupChart renders the Fig. 7 speedup curves with the linear reference.
func (r *Fig6Result) SpeedupChart() (string, error) {
	c := &plot.Chart{
		Title:  "Fig 7 — speedup of P-AutoClass",
		XLabel: "processors",
		YLabel: "T(1)/T(P)",
		X:      intsToFloats(r.Procs),
	}
	for si, n := range r.Sizes {
		ys := make([]float64, len(r.Procs))
		for pi := range r.Procs {
			ys[pi] = r.Speedup(si, pi)
		}
		c.Series = append(c.Series, plot.Series{Label: fmt.Sprintf("%d tuples", n), Y: ys})
	}
	linear := make([]float64, len(r.Procs))
	for pi, p := range r.Procs {
		linear[pi] = float64(p) / float64(r.Procs[0])
	}
	c.Series = append(c.Series, plot.Series{Label: "linear", Y: linear})
	return c.Render()
}

// ElapsedChart renders the Fig. 6 elapsed-time curves (seconds).
func (r *Fig6Result) ElapsedChart() (string, error) {
	c := &plot.Chart{
		Title:  "Fig 6 — average elapsed times of P-AutoClass [s]",
		XLabel: "processors",
		YLabel: "seconds",
		X:      intsToFloats(r.Procs),
	}
	for si, n := range r.Sizes {
		c.Series = append(c.Series, plot.Series{
			Label: fmt.Sprintf("%d tuples", n),
			Y:     append([]float64(nil), r.Seconds[si]...),
		})
	}
	return c.Render()
}

// Chart renders the Fig. 8 scaleup curves.
func (r *Fig8Result) Chart() (string, error) {
	c := &plot.Chart{
		Title:  "Fig 8 — time per base_cycle iteration [s], fixed tuples/processor",
		XLabel: "processors",
		YLabel: "s/cycle",
		X:      intsToFloats(r.Procs),
	}
	for ci, j := range r.Clusters {
		c.Series = append(c.Series, plot.Series{
			Label: fmt.Sprintf("%d clusters", j),
			Y:     append([]float64(nil), r.SecondsPerCycle[ci]...),
		})
	}
	return c.Render()
}

// Chart renders the portability speedup curves per platform.
func (r *PortabilityResult) Chart() (string, error) {
	c := &plot.Chart{
		Title:  "Portability — speedup by platform",
		XLabel: "processors",
		YLabel: "T(1)/T(P)",
		X:      intsToFloats(r.Procs),
	}
	for mi, name := range r.Machines {
		ys := make([]float64, len(r.Procs))
		for pi := range r.Procs {
			ys[pi] = r.Speedup(mi, pi)
		}
		c.Series = append(c.Series, plot.Series{Label: name, Y: ys})
	}
	return c.Render()
}

func intsToFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = float64(v)
	}
	return out
}
