// Package harness defines and runs the paper's experiments: one runner per
// figure or table of the evaluation section (§4) plus the profiling claims
// of §3.1. Each runner produces a result object that renders the same rows
// or series the paper reports, using the simulated Meiko CS-2 machine model
// for elapsed times (see package simnet and DESIGN.md's experiment index).
package harness

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/autoclass"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/pautoclass"
	"repro/internal/simnet"
)

// Options are the knobs shared by every experiment runner.
type Options struct {
	// Machine is the simulated multicomputer.
	Machine simnet.Machine
	// Search is the BIG_LOOP configuration template. The experiments use a
	// fixed-cycle protocol (RelDelta = 0 so every run executes exactly
	// EM.MaxCycles cycles) to keep the workload identical across P — the
	// timing differences then come only from the parallel structure.
	Search autoclass.SearchConfig
	// Repeats averages each measurement over this many repeated
	// classifications with distinct seeds ("each classification has been
	// repeated ... and results represent the mean values", paper §4).
	Repeats int
	// DataSeed seeds the synthetic dataset generator.
	DataSeed uint64
	// Strategy and Granularity select the parallel variant.
	Strategy    pautoclass.Strategy
	Granularity autoclass.Granularity
	// AllreduceAlgo selects the collective algorithm (default ReduceBcast).
	AllreduceAlgo mpi.AllreduceAlgo
}

// DefaultOptions returns the experiment defaults: the Meiko CS-2 model, a
// reduced but structurally faithful search (three start_j values, fixed 15
// cycles per try), and three repeats.
func DefaultOptions() Options {
	search := autoclass.DefaultSearchConfig()
	search.StartJList = []int{2, 4, 8}
	search.Tries = 1
	search.EM.MaxCycles = 15
	search.EM.RelDelta = 0 // fixed-cycle protocol
	return Options{
		Machine:  simnet.MeikoCS2(),
		Search:   search,
		Repeats:  3,
		DataSeed: 42,
		Strategy: pautoclass.Full,
	}
}

func (o Options) validate() error {
	if err := o.Machine.Validate(); err != nil {
		return err
	}
	if o.Repeats < 1 {
		return errors.New("harness: Repeats < 1")
	}
	return nil
}

// elapsedParallel runs one full parallel search of ds over p simulated
// processors and returns the virtual elapsed seconds (rank 0's clock, which
// equals every rank's clock after the final collective sync) and the
// virtual communication seconds.
func elapsedParallel(ds *dataset.Dataset, p int, opts Options, seed uint64) (elapsed, comm float64, err error) {
	cfg := opts.Search
	cfg.Seed = seed
	cfg.EM.Granularity = opts.Granularity
	var e0, c0 float64
	runErr := mpi.Run(p, func(c *mpi.Comm) error {
		clk, err := simnet.NewClock(opts.Machine)
		if err != nil {
			return err
		}
		po := pautoclass.Options{EM: cfg.EM, Strategy: opts.Strategy, Clock: clk, AllreduceAlgo: opts.AllreduceAlgo}
		if _, err := pautoclass.Search(c, ds, model.DefaultSpec(ds), cfg, po); err != nil {
			return err
		}
		// Final barrier sync so every clock reads the run's end time.
		if err := clk.SyncBarrier(c); err != nil {
			return err
		}
		if c.Rank() == 0 {
			e0, c0 = clk.Elapsed(), clk.CommSeconds()
		}
		return nil
	})
	if runErr != nil {
		return 0, 0, runErr
	}
	return e0, c0, nil
}

// meanElapsedParallel averages elapsedParallel over opts.Repeats seeds.
func meanElapsedParallel(ds *dataset.Dataset, p int, opts Options) (float64, error) {
	total := 0.0
	for rep := 0; rep < opts.Repeats; rep++ {
		e, _, err := elapsedParallel(ds, p, opts, opts.Search.Seed+uint64(rep)*7919)
		if err != nil {
			return 0, err
		}
		total += e
	}
	return total / float64(opts.Repeats), nil
}

// paperDataset builds the synthetic two-real-attribute dataset of §4.
func paperDataset(n int, seed uint64) (*dataset.Dataset, error) {
	return datagen.Paper(n, seed)
}

// formatTable renders an aligned text table.
func formatTable(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
