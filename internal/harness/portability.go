package harness

import (
	"fmt"

	"repro/internal/simnet"
)

// PortabilityConfig configures the portability study behind the paper's
// §3.1 claim that "P-AutoClass is portable practically on every parallel
// machine from supercomputers to PC clusters": the same classification on
// the Meiko CS-2, a switched-Ethernet PC cluster, and a shared-hub PC
// cluster, showing where the speedup curves bend as the interconnect
// degrades.
type PortabilityConfig struct {
	Opts Options
	// N is the dataset size.
	N int
	// Procs are the processor counts.
	Procs []int
	// Machines are the platforms (default: CS-2, switched PCs, hub PCs).
	Machines []simnet.Machine
}

// DefaultPortabilityConfig sweeps 40K tuples over 1..10 processors on the
// three platform models.
func DefaultPortabilityConfig() PortabilityConfig {
	return PortabilityConfig{
		Opts:  DefaultOptions(),
		N:     40000,
		Procs: []int{1, 2, 4, 6, 8, 10},
		Machines: []simnet.Machine{
			simnet.MeikoCS2(),
			simnet.PCCluster(),
			simnet.EthernetHubCluster(),
		},
	}
}

// PortabilityResult holds elapsed seconds and speedups per machine and P.
type PortabilityResult struct {
	Procs    []int
	Machines []string
	// Seconds[mi][pi] is the mean elapsed time.
	Seconds [][]float64
}

// RunPortability executes the sweep.
func RunPortability(cfg PortabilityConfig) (*PortabilityResult, error) {
	if err := cfg.Opts.validate(); err != nil {
		return nil, err
	}
	if cfg.N < 1 || len(cfg.Procs) == 0 || len(cfg.Machines) == 0 {
		return nil, fmt.Errorf("harness: invalid portability config")
	}
	ds, err := paperDataset(cfg.N, cfg.Opts.DataSeed)
	if err != nil {
		return nil, err
	}
	res := &PortabilityResult{Procs: cfg.Procs}
	for _, m := range cfg.Machines {
		res.Machines = append(res.Machines, m.Name)
		opts := cfg.Opts
		opts.Machine = m
		row := make([]float64, len(cfg.Procs))
		for pi, p := range cfg.Procs {
			mean, err := meanElapsedParallel(ds, p, opts)
			if err != nil {
				return nil, fmt.Errorf("harness: portability %q p=%d: %w", m.Name, p, err)
			}
			row[pi] = mean
		}
		res.Seconds = append(res.Seconds, row)
	}
	return res, nil
}

// Speedup returns T(P_min)/T(P) for machine mi.
func (r *PortabilityResult) Speedup(mi, pi int) float64 {
	if r.Seconds[mi][pi] == 0 {
		return 0
	}
	return r.Seconds[mi][0] / r.Seconds[mi][pi]
}

// Table renders elapsed times and speedups per machine.
func (r *PortabilityResult) Table() string {
	headers := []string{"machine \\ procs"}
	for _, p := range r.Procs {
		headers = append(headers, fmt.Sprintf("%d", p))
	}
	var rows [][]string
	for mi, name := range r.Machines {
		row := []string{name}
		for pi := range r.Procs {
			row = append(row, fmt.Sprintf("%.1f", r.Seconds[mi][pi]))
		}
		rows = append(rows, row)
		sp := []string{"  speedup"}
		for pi := range r.Procs {
			sp = append(sp, fmt.Sprintf("%.2f", r.Speedup(mi, pi)))
		}
		rows = append(rows, sp)
	}
	return "Portability — elapsed time [s] and speedup by platform\n" +
		formatTable(headers, rows)
}

// CheckShape verifies that interconnect quality orders the speedups: at the
// largest P, the CS-2 ≥ switched PCs ≥ hub PCs, and every platform still
// beats its own sequential time at some P.
func (r *PortabilityResult) CheckShape() []string {
	var bad []string
	last := len(r.Procs) - 1
	for mi := 0; mi+1 < len(r.Machines); mi++ {
		if r.Speedup(mi, last) < r.Speedup(mi+1, last) {
			bad = append(bad, fmt.Sprintf("%q speedup %.2f at max P below %q's %.2f — interconnect order violated",
				r.Machines[mi], r.Speedup(mi, last), r.Machines[mi+1], r.Speedup(mi+1, last)))
		}
	}
	for mi, name := range r.Machines {
		best := 0.0
		for pi := range r.Procs {
			if s := r.Speedup(mi, pi); s > best {
				best = s
			}
		}
		if best <= 1.05 {
			bad = append(bad, fmt.Sprintf("%q never gains from parallelism (best speedup %.2f)", name, best))
		}
	}
	return bad
}
