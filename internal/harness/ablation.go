package harness

import (
	"fmt"

	"repro/internal/autoclass"
	"repro/internal/pautoclass"
	"repro/internal/simnet"
)

// AblationConfig configures the ABLAT experiment: the paper's §5 comparison
// of P-AutoClass against the prior MIMD prototype [7] that parallelized
// only update_wts, plus the packed-statistics exchange variant (one
// Allreduce per cycle instead of one per class × term, the paper's Fig. 5
// structure) as a design-choice ablation.
type AblationConfig struct {
	Opts Options
	// N is the dataset size.
	N int
	// Procs are the processor counts.
	Procs []int
}

// DefaultAblationConfig uses a 40K-tuple dataset over 1..10 processors.
func DefaultAblationConfig() AblationConfig {
	return AblationConfig{
		Opts:  DefaultOptions(),
		N:     40000,
		Procs: []int{1, 2, 4, 6, 8, 10},
	}
}

// AblationResult holds virtual elapsed seconds per variant and P.
type AblationResult struct {
	Procs []int
	// Full is P-AutoClass with the paper's per-term exchanges; WtsOnly is
	// the [7] baseline; Packed is P-AutoClass with one packed Allreduce
	// per cycle.
	Full, WtsOnly, Packed []float64
}

// RunAblation executes the three variants over the processor sweep.
func RunAblation(cfg AblationConfig) (*AblationResult, error) {
	if err := cfg.Opts.validate(); err != nil {
		return nil, err
	}
	if cfg.N < 1 || len(cfg.Procs) == 0 {
		return nil, fmt.Errorf("harness: invalid ablation config")
	}
	ds, err := paperDataset(cfg.N, cfg.Opts.DataSeed)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Procs: cfg.Procs}
	variants := []struct {
		strategy    pautoclass.Strategy
		granularity autoclass.Granularity
		out         *[]float64
	}{
		{pautoclass.Full, autoclass.PerTerm, &res.Full},
		{pautoclass.WtsOnly, autoclass.PerTerm, &res.WtsOnly},
		{pautoclass.Full, autoclass.Packed, &res.Packed},
	}
	for _, v := range variants {
		opts := cfg.Opts
		opts.Strategy = v.strategy
		opts.Granularity = v.granularity
		for _, p := range cfg.Procs {
			mean, err := meanElapsedParallel(ds, p, opts)
			if err != nil {
				return nil, fmt.Errorf("harness: ablation %v/%v p=%d: %w", v.strategy, v.granularity, p, err)
			}
			*v.out = append(*v.out, mean)
		}
	}
	return res, nil
}

// Table renders the ablation comparison.
func (r *AblationResult) Table() string {
	headers := []string{"procs", "P-AutoClass (per-term)", "wts-only [7]", "P-AutoClass (packed)"}
	var rows [][]string
	for pi, p := range r.Procs {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p),
			simnet.FormatHMS(r.Full[pi]),
			simnet.FormatHMS(r.WtsOnly[pi]),
			simnet.FormatHMS(r.Packed[pi]),
		})
	}
	return "Ablation — elapsed time by parallelization strategy [h.mm.ss]\n" +
		formatTable(headers, rows)
}

// CheckShape verifies the §5 claim: for every P > 1, full parallelization
// beats the wts-only baseline; and the packed exchange never loses to the
// per-term exchange (message aggregation can only help under the model).
func (r *AblationResult) CheckShape() []string {
	var bad []string
	for pi, p := range r.Procs {
		if p == 1 {
			continue
		}
		if r.Full[pi] >= r.WtsOnly[pi] {
			bad = append(bad, fmt.Sprintf("P=%d: full (%.1fs) does not beat wts-only (%.1fs)",
				p, r.Full[pi], r.WtsOnly[pi]))
		}
		if r.Packed[pi] > r.Full[pi]*1.001 {
			bad = append(bad, fmt.Sprintf("P=%d: packed (%.1fs) slower than per-term (%.1fs)",
				p, r.Packed[pi], r.Full[pi]))
		}
	}
	return bad
}
