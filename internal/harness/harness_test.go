package harness

import (
	"strings"
	"testing"

	"repro/internal/autoclass"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/pautoclass"
	"repro/internal/simnet"
)

// tinyOptions shrinks the experiments to unit-test scale while keeping the
// structure intact.
func tinyOptions() Options {
	o := DefaultOptions()
	o.Search.StartJList = []int{4}
	o.Search.Tries = 1
	o.Search.EM.MaxCycles = 4
	o.Repeats = 1
	return o
}

func TestFig6SmallSweepShape(t *testing.T) {
	cfg := Fig6Config{
		Opts:  tinyOptions(),
		Sizes: []int{2000, 20000},
		Procs: []int{1, 2, 4, 8},
	}
	res, err := RunFig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seconds) != 2 || len(res.Seconds[0]) != 4 {
		t.Fatalf("result shape %dx%d", len(res.Seconds), len(res.Seconds[0]))
	}
	// Large dataset: time decreases monotonically over this P range.
	for pi := 1; pi < 4; pi++ {
		if res.Seconds[1][pi] >= res.Seconds[1][pi-1] {
			t.Fatalf("20k tuples: time not decreasing at P=%d: %v", cfg.Procs[pi], res.Seconds[1])
		}
	}
	// Speedup of the large dataset at max P must beat the small one's.
	if res.Speedup(1, 3) <= res.Speedup(0, 3) {
		t.Fatalf("speedup not growing with size: %v vs %v", res.Speedup(1, 3), res.Speedup(0, 3))
	}
	if bad := res.CheckShape(); len(bad) != 0 {
		t.Fatalf("shape violations: %v", bad)
	}
}

func TestFig6Tables(t *testing.T) {
	cfg := Fig6Config{Opts: tinyOptions(), Sizes: []int{1000}, Procs: []int{1, 2}}
	res, err := RunFig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.Table()
	if !strings.Contains(tbl, "Fig 6") || !strings.Contains(tbl, "1000") {
		t.Fatalf("table:\n%s", tbl)
	}
	sp := res.SpeedupTable()
	if !strings.Contains(sp, "Fig 7") || !strings.Contains(sp, "linear") {
		t.Fatalf("speedup table:\n%s", sp)
	}
	// Speedup at P=1 is exactly 1.
	if res.Speedup(0, 0) != 1 {
		t.Fatalf("speedup at base P = %v", res.Speedup(0, 0))
	}
}

func TestFig6Validation(t *testing.T) {
	if _, err := RunFig6(Fig6Config{Opts: tinyOptions()}); err == nil {
		t.Fatal("empty sweep accepted")
	}
	bad := tinyOptions()
	bad.Repeats = 0
	if _, err := RunFig6(Fig6Config{Opts: bad, Sizes: []int{10}, Procs: []int{1}}); err == nil {
		t.Fatal("bad repeats accepted")
	}
}

func TestFig8ScaleupFlat(t *testing.T) {
	// The paper's 10 000 tuples/processor matters: scaleup is only flat
	// when the per-rank compute dominates the log-P collective cost.
	cfg := Fig8Config{
		Opts:          tinyOptions(),
		TuplesPerProc: 10000,
		Procs:         []int{1, 2, 4, 8},
		Clusters:      []int{8, 16},
		Cycles:        2,
	}
	res, err := RunFig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bad := res.CheckShape(); len(bad) != 0 {
		t.Fatalf("shape violations: %v", bad)
	}
	// 16 clusters costs more than 8 at every P.
	for pi := range cfg.Procs {
		if res.SecondsPerCycle[1][pi] <= res.SecondsPerCycle[0][pi] {
			t.Fatalf("16 clusters not slower than 8 at P=%d", cfg.Procs[pi])
		}
	}
	tbl := res.Table()
	if !strings.Contains(tbl, "Fig 8") || !strings.Contains(tbl, "base_cycle") {
		t.Fatalf("table:\n%s", tbl)
	}
}

func TestFig8Validation(t *testing.T) {
	cfg := DefaultFig8Config()
	cfg.TuplesPerProc = 0
	if _, err := RunFig8(cfg); err == nil {
		t.Fatal("zero tuples/proc accepted")
	}
}

func TestProfileMatchesPaperClaims(t *testing.T) {
	cfg := DefaultProfileConfig()
	// Keep the unit test quick but let initialization amortize: the 99.5%
	// share is a property of runs with enough cycles per try.
	cfg.N = 4000
	cfg.Search.EM.MaxCycles = 40
	res, err := RunProfile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bad := res.CheckShape(); len(bad) != 0 {
		t.Fatalf("profile violations: %v (wts=%.3f params=%.3f approx=%.3f total=%.3f)",
			bad, res.WtsSeconds, res.ParamsSeconds, res.ApproxSeconds, res.TotalSeconds)
	}
	tbl := res.Table()
	for _, want := range []string{"update_wts", "update_parameters", "99.5%"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("profile table missing %q:\n%s", want, tbl)
		}
	}
}

func TestProfileValidation(t *testing.T) {
	cfg := DefaultProfileConfig()
	cfg.N = 0
	if _, err := RunProfile(cfg); err == nil {
		t.Fatal("N=0 accepted")
	}
}

func TestSeqAnchorLinear(t *testing.T) {
	cfg := DefaultSeqAnchorConfig()
	cfg.Sizes = []int{2000, 4000, 8000}
	cfg.Search.EM.MaxCycles = 5
	res, err := RunSeqAnchor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bad := res.CheckShape(); len(bad) != 0 {
		t.Fatalf("linearity violations: %v (seconds=%v)", bad, res.Seconds)
	}
	// Doubling the data roughly doubles the time.
	ratio := res.Seconds[1] / res.Seconds[0]
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("2x data gave %vx time", ratio)
	}
	if !strings.Contains(res.Table(), "Pentium") {
		t.Fatalf("table:\n%s", res.Table())
	}
}

func TestAblationShape(t *testing.T) {
	cfg := AblationConfig{
		Opts:  tinyOptions(),
		N:     8000,
		Procs: []int{1, 4, 8},
	}
	res, err := RunAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bad := res.CheckShape(); len(bad) != 0 {
		t.Fatalf("ablation violations: %v\nfull=%v wtsonly=%v packed=%v",
			bad, res.Full, res.WtsOnly, res.Packed)
	}
	tbl := res.Table()
	if !strings.Contains(tbl, "wts-only") || !strings.Contains(tbl, "packed") {
		t.Fatalf("table:\n%s", tbl)
	}
}

func TestAblationValidation(t *testing.T) {
	cfg := DefaultAblationConfig()
	cfg.N = 0
	if _, err := RunAblation(cfg); err == nil {
		t.Fatal("N=0 accepted")
	}
}

func TestElapsedParallelStrategies(t *testing.T) {
	ds, err := paperDataset(3000, 1)
	if err != nil {
		t.Fatal(err)
	}
	opts := tinyOptions()
	for _, strat := range []pautoclass.Strategy{pautoclass.Full, pautoclass.WtsOnly} {
		opts.Strategy = strat
		e, comm, err := elapsedParallel(ds, 4, opts, 1)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if e <= 0 || comm <= 0 || comm >= e {
			t.Fatalf("%v: elapsed=%v comm=%v", strat, e, comm)
		}
	}
}

func TestFormatTableAlignment(t *testing.T) {
	tbl := formatTable([]string{"a", "long-header"}, [][]string{{"1", "2"}, {"333", "4"}})
	lines := strings.Split(strings.TrimRight(tbl, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines: %v", lines)
	}
	for _, l := range lines[1:] {
		if len(l) != len(lines[0]) {
			t.Fatalf("misaligned table:\n%s", tbl)
		}
	}
}

func TestDefaultConfigsAreValid(t *testing.T) {
	if err := DefaultOptions().validate(); err != nil {
		t.Fatal(err)
	}
	if DefaultFig6Config().Procs[len(DefaultFig6Config().Procs)-1] != 10 {
		t.Fatal("fig6 should sweep to 10 processors as in the paper")
	}
	f8 := DefaultFig8Config()
	if f8.TuplesPerProc != 10000 || len(f8.Clusters) != 2 {
		t.Fatalf("fig8 defaults %+v", f8)
	}
	if DefaultSeqAnchorConfig().Machine.Name != simnet.PentiumPC().Name {
		t.Fatal("seq anchor should use the Pentium model")
	}
	if DefaultProfileConfig().N != 14000 {
		t.Fatal("profile should use the paper's 14K anchor")
	}
}

func TestFixedCycleProtocol(t *testing.T) {
	// With RelDelta=0 every try must run exactly MaxCycles cycles, making
	// the workload identical across P.
	opts := tinyOptions()
	ds, err := paperDataset(500, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := opts.Search
	res, err := autoclass.Search(ds, model.DefaultSpec(ds), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Tries {
		if tr.Cycles != cfg.EM.MaxCycles {
			t.Fatalf("try ran %d cycles, want exactly %d", tr.Cycles, cfg.EM.MaxCycles)
		}
		if tr.Converged {
			t.Fatal("fixed-cycle run reported convergence")
		}
	}
}

func TestAlgoAblationShape(t *testing.T) {
	cfg := AlgoConfig{
		Opts:     tinyOptions(),
		N:        8000,
		Procs:    []int{2, 4, 8},
		Machines: []simnet.Machine{simnet.MeikoCS2(), simnet.PCCluster()},
	}
	res, err := RunAlgo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bad := res.CheckShape(); len(bad) != 0 {
		t.Fatalf("algo ablation violations: %v\nseconds=%v", bad, res.Seconds)
	}
	tbl := res.Table()
	for _, want := range []string{"reduce-bcast", "recursive-doubling", "ring", "PC cluster"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("table missing %q:\n%s", want, tbl)
		}
	}
}

func TestAlgoAblationValidation(t *testing.T) {
	cfg := DefaultAlgoConfig()
	cfg.Machines = nil
	if _, err := RunAlgo(cfg); err == nil {
		t.Fatal("no machines accepted")
	}
}

func TestAlgoChangesOnlyTheClockNotTheResult(t *testing.T) {
	// The collective algorithm affects virtual time, never the
	// classification (all algorithms compute the same sums).
	ds, err := paperDataset(2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	opts := tinyOptions()
	results := map[mpi.AllreduceAlgo]float64{}
	for _, algo := range []mpi.AllreduceAlgo{mpi.ReduceBcast, mpi.RecursiveDoubling, mpi.Ring} {
		o := opts
		o.AllreduceAlgo = algo
		cfg := o.Search
		cfg.EM.Granularity = o.Granularity
		var post float64
		err := mpi.Run(4, func(c *mpi.Comm) error {
			po := pautoclass.Options{EM: cfg.EM, Strategy: o.Strategy, AllreduceAlgo: algo}
			res, err := pautoclass.Search(c, ds, model.DefaultSpec(ds), cfg, po)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				post = res.Best.LogPost
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		results[algo] = post
	}
	base := results[mpi.ReduceBcast]
	for algo, post := range results {
		if !almostEqualForTest(post, base, 1e-9) {
			t.Fatalf("algo %v changed the classification: %v vs %v", algo, post, base)
		}
	}
}

func almostEqualForTest(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := b
	if scale < 0 {
		scale = -scale
	}
	if scale < 1 {
		scale = 1
	}
	return d <= tol*scale
}

func TestPortabilityShape(t *testing.T) {
	cfg := PortabilityConfig{
		Opts:  tinyOptions(),
		N:     20000,
		Procs: []int{1, 4, 8},
		Machines: []simnet.Machine{
			simnet.MeikoCS2(),
			simnet.PCCluster(),
			simnet.EthernetHubCluster(),
		},
	}
	res, err := RunPortability(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bad := res.CheckShape(); len(bad) != 0 {
		t.Fatalf("portability violations: %v\nseconds=%v", bad, res.Seconds)
	}
	if !strings.Contains(res.Table(), "speedup") {
		t.Fatalf("table:\n%s", res.Table())
	}
}

func TestPortabilityValidation(t *testing.T) {
	cfg := DefaultPortabilityConfig()
	cfg.Procs = nil
	if _, err := RunPortability(cfg); err == nil {
		t.Fatal("empty procs accepted")
	}
}

func TestChartsRender(t *testing.T) {
	f6 := &Fig6Result{
		Sizes:   []int{5000, 100000},
		Procs:   []int{1, 2, 4, 8},
		Seconds: [][]float64{{10, 6, 4, 3.5}, {100, 51, 26, 14}},
	}
	for name, render := range map[string]func() (string, error){
		"speedup": f6.SpeedupChart,
		"elapsed": f6.ElapsedChart,
	} {
		out, err := render()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(out, "tuples") || !strings.Contains(out, "processors") {
			t.Fatalf("%s chart:\n%s", name, out)
		}
	}
	f8 := &Fig8Result{
		Procs:           []int{1, 4, 8},
		Clusters:        []int{8, 16},
		SecondsPerCycle: [][]float64{{0.33, 0.35, 0.36}, {0.67, 0.70, 0.73}},
	}
	out, err := f8.Chart()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "clusters") {
		t.Fatalf("fig8 chart:\n%s", out)
	}
	port := &PortabilityResult{
		Procs:    []int{1, 4, 8},
		Machines: []string{"a", "b"},
		Seconds:  [][]float64{{10, 3, 2}, {10, 5, 4}},
	}
	out, err = port.Chart()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "platform") {
		t.Fatalf("portability chart:\n%s", out)
	}
}

func TestWriteTSVFormats(t *testing.T) {
	f6 := &Fig6Result{Sizes: []int{5000}, Procs: []int{1, 2}, Seconds: [][]float64{{10, 5.5}}}
	f8 := &Fig8Result{Procs: []int{1, 2}, Clusters: []int{8}, SecondsPerCycle: [][]float64{{0.33, 0.34}}}
	prof := &ProfileResult{TotalSeconds: 1, WtsSeconds: 0.8, ParamsSeconds: 0.15, ApproxSeconds: 0.01, InitSeconds: 0.02}
	seq := &SeqAnchorResult{Sizes: []int{14000}, Seconds: []float64{6}}
	abl := &AblationResult{Procs: []int{2}, Full: []float64{1}, WtsOnly: []float64{2}, Packed: []float64{0.9}}
	algo := &AlgoResult{Procs: []int{2}, Machines: []string{"m"}, Algos: algoList,
		Seconds: [][][]float64{{{1}, {0.9}, {1.2}}}}
	port := &PortabilityResult{Procs: []int{1, 2}, Machines: []string{"m"}, Seconds: [][]float64{{4, 2}}}
	cases := map[string]struct {
		write  func(w *strings.Builder) error
		header string
		rows   int
	}{
		"fig6": {func(w *strings.Builder) error { return f6.WriteTSV(w) }, "tuples\tprocs\tseconds\tspeedup", 2},
		"fig8": {func(w *strings.Builder) error { return f8.WriteTSV(w) }, "clusters\tprocs\tseconds_per_cycle", 2},
		"prof": {func(w *strings.Builder) error { return prof.WriteTSV(w) }, "phase\tseconds\tshare", 4},
		"seq":  {func(w *strings.Builder) error { return seq.WriteTSV(w) }, "tuples\tseconds", 1},
		"abl":  {func(w *strings.Builder) error { return abl.WriteTSV(w) }, "procs\tstrategy\tseconds", 3},
		"algo": {func(w *strings.Builder) error { return algo.WriteTSV(w) }, "machine\talgorithm\tprocs\tseconds", 3},
		"port": {func(w *strings.Builder) error { return port.WriteTSV(w) }, "machine\tprocs\tseconds\tspeedup", 2},
	}
	for name, tc := range cases {
		var sb strings.Builder
		if err := tc.write(&sb); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
		if lines[0] != tc.header {
			t.Fatalf("%s header %q, want %q", name, lines[0], tc.header)
		}
		if len(lines)-1 != tc.rows {
			t.Fatalf("%s rows %d, want %d", name, len(lines)-1, tc.rows)
		}
		for _, l := range lines[1:] {
			if strings.Count(l, "\t") != strings.Count(tc.header, "\t") {
				t.Fatalf("%s ragged row %q", name, l)
			}
		}
	}
}

func TestAsyncCommFractionShape(t *testing.T) {
	cfg := AsyncConfig{
		Opts:          tinyOptions(),
		TuplesPerProc: 1000,
		Procs:         []int{2, 4, 10},
		SyncEvery:     []int{1, 2, 4},
		Clusters:      4,
		Cycles:        4,
	}
	res, err := RunAsync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CommFraction) != 3 || len(res.CommFraction[0]) != 3 {
		t.Fatalf("result shape %dx%d", len(res.CommFraction), len(res.CommFraction[0]))
	}
	if bad := res.CheckShape(); len(bad) != 0 {
		t.Fatalf("shape violations: %v", bad)
	}
	if !strings.Contains(res.Table(), "communication fraction") {
		t.Fatal("table missing caption")
	}
	var buf strings.Builder
	if err := res.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "sync_every\tprocs\tcomm_fraction\tcollectives\n") {
		t.Fatalf("tsv header wrong: %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
}

func TestAsyncValidation(t *testing.T) {
	cfg := DefaultAsyncConfig()
	cfg.SyncEvery = nil
	if _, err := RunAsync(cfg); err == nil {
		t.Fatal("empty SyncEvery accepted")
	}
}
