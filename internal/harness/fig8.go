package harness

import (
	"fmt"

	"repro/internal/autoclass"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/pautoclass"
	"repro/internal/simnet"
)

// Fig8Config configures the scaleup experiment (paper Fig. 8): the time of
// a single base_cycle iteration with the tuples-per-processor count held
// fixed while processors are added, for 8 and 16 clusters.
type Fig8Config struct {
	Opts Options
	// TuplesPerProc is the fixed per-processor partition size (the paper
	// holds 10 000 tuples per processor).
	TuplesPerProc int
	// Procs are the processor counts.
	Procs []int
	// Clusters are the class counts (the paper groups into 8 and 16).
	Clusters []int
	// Cycles is how many base_cycle iterations to average over.
	Cycles int
}

// DefaultFig8Config returns the paper's configuration.
func DefaultFig8Config() Fig8Config {
	return Fig8Config{
		Opts:          DefaultOptions(),
		TuplesPerProc: 10000,
		Procs:         []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
		Clusters:      []int{8, 16},
		Cycles:        5,
	}
}

// Fig8Result holds seconds per base_cycle iteration per (clusters, P).
type Fig8Result struct {
	Procs    []int
	Clusters []int
	// SecondsPerCycle[ci][pi] is the mean per-iteration virtual time for
	// Clusters[ci] classes on Procs[pi] processors.
	SecondsPerCycle [][]float64
}

// RunFig8 executes the scaleup sweep.
func RunFig8(cfg Fig8Config) (*Fig8Result, error) {
	if err := cfg.Opts.validate(); err != nil {
		return nil, err
	}
	if cfg.TuplesPerProc < 1 || cfg.Cycles < 1 || len(cfg.Procs) == 0 || len(cfg.Clusters) == 0 {
		return nil, fmt.Errorf("harness: invalid fig8 config")
	}
	res := &Fig8Result{Procs: cfg.Procs, Clusters: cfg.Clusters}
	for _, j := range cfg.Clusters {
		row := make([]float64, len(cfg.Procs))
		for pi, p := range cfg.Procs {
			perCycle, err := scaleupCell(cfg, j, p)
			if err != nil {
				return nil, fmt.Errorf("harness: fig8 j=%d p=%d: %w", j, p, err)
			}
			row[pi] = perCycle
		}
		res.SecondsPerCycle = append(res.SecondsPerCycle, row)
	}
	return res, nil
}

// scaleupCell measures the mean per-cycle virtual time for one (J, P) cell,
// averaged over repeats.
func scaleupCell(cfg Fig8Config, j, p int) (float64, error) {
	n := cfg.TuplesPerProc * p
	ds, err := paperDataset(n, cfg.Opts.DataSeed)
	if err != nil {
		return 0, err
	}
	em := cfg.Opts.Search.EM
	em.PruneClasses = false // hold J fixed for a clean per-cycle measure
	em.Granularity = cfg.Opts.Granularity
	total := 0.0
	for rep := 0; rep < cfg.Opts.Repeats; rep++ {
		seed := cfg.Opts.Search.Seed + uint64(rep)*104729
		var cell float64
		runErr := mpi.Run(p, func(c *mpi.Comm) error {
			clk, err := simnet.NewClock(cfg.Opts.Machine)
			if err != nil {
				return err
			}
			view, err := pautoclass.PartitionView(c, ds)
			if err != nil {
				return err
			}
			opts := pautoclass.Options{EM: em, Strategy: cfg.Opts.Strategy, Clock: clk}
			pr, err := pautoclass.ParallelPriors(c, view, &opts)
			if err != nil {
				return err
			}
			cls, err := autoclass.NewClassification(ds, model.DefaultSpec(ds), pr, j)
			if err != nil {
				return err
			}
			red := pautoclass.NewAllreduceReducer(c, clk)
			eng, err := autoclass.NewEngine(view, cls, em, red, clk)
			if err != nil {
				return err
			}
			if err := eng.InitRandom(seed); err != nil {
				return err
			}
			if err := clk.SyncBarrier(c); err != nil {
				return err
			}
			start := clk.Elapsed()
			for cyc := 0; cyc < cfg.Cycles; cyc++ {
				if _, err := eng.BaseCycle(); err != nil {
					return err
				}
			}
			if err := clk.SyncBarrier(c); err != nil {
				return err
			}
			if c.Rank() == 0 {
				cell = (clk.Elapsed() - start) / float64(cfg.Cycles)
			}
			return nil
		})
		if runErr != nil {
			return 0, runErr
		}
		total += cell
	}
	return total / float64(cfg.Opts.Repeats), nil
}

// ScaleupRatio returns T(maxP)/T(minP) for one cluster row — near 1.0 means
// perfect scaleup ("nearly constant execution times", paper §4).
func (r *Fig8Result) ScaleupRatio(ci int) float64 {
	row := r.SecondsPerCycle[ci]
	if row[0] == 0 {
		return 0
	}
	return row[len(row)-1] / row[0]
}

// Table renders Fig. 8: times per base_cycle iteration (seconds).
func (r *Fig8Result) Table() string {
	headers := []string{"clusters \\ procs"}
	for _, p := range r.Procs {
		headers = append(headers, fmt.Sprintf("%d", p))
	}
	var rows [][]string
	for ci, j := range r.Clusters {
		row := []string{fmt.Sprintf("%d", j)}
		for pi := range r.Procs {
			row = append(row, fmt.Sprintf("%.3f", r.SecondsPerCycle[ci][pi]))
		}
		rows = append(rows, row)
	}
	return "Fig 8 — time per base_cycle iteration [s], fixed tuples/processor\n" +
		formatTable(headers, rows)
}

// CheckShape verifies the paper's scaleup claims: per-cycle time is nearly
// flat in P (within 25%), never improves below the 1-processor time, and
// doubling the clusters roughly doubles the per-cycle time.
func (r *Fig8Result) CheckShape() []string {
	var bad []string
	for ci, j := range r.Clusters {
		ratio := r.ScaleupRatio(ci)
		if ratio > 1.25 {
			bad = append(bad, fmt.Sprintf("clusters=%d: per-cycle time grew %.0f%% from min to max P", j, 100*(ratio-1)))
		}
		if ratio < 0.95 {
			bad = append(bad, fmt.Sprintf("clusters=%d: per-cycle time impossibly shrank (ratio %.2f)", j, ratio))
		}
	}
	if len(r.Clusters) == 2 && r.Clusters[1] == 2*r.Clusters[0] {
		a := r.SecondsPerCycle[0][0]
		b := r.SecondsPerCycle[1][0]
		if b < 1.5*a || b > 2.5*a {
			bad = append(bad, fmt.Sprintf("doubling clusters scaled per-cycle time by %.2f, expected ~2", b/a))
		}
	}
	return bad
}
