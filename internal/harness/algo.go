package harness

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/simnet"
)

// AlgoConfig configures the collective-algorithm ablation: the same
// P-AutoClass run under the three Allreduce implementations (reduce+bcast —
// the paper's pattern, recursive doubling, and a bandwidth-optimal ring),
// on the Meiko CS-2 and on a commodity PC cluster. The experiment
// quantifies a design choice the paper leaves implicit: with P-AutoClass's
// small statistics messages, latency dominates, so the tree algorithms win
// and the ring's 2(P−1) message rounds hurt.
type AlgoConfig struct {
	Opts Options
	// N is the dataset size.
	N int
	// Procs are the processor counts.
	Procs []int
	// Machines are the interconnects to model.
	Machines []simnet.Machine
}

// DefaultAlgoConfig sweeps 40K tuples over 2..10 processors on both
// machine models.
func DefaultAlgoConfig() AlgoConfig {
	return AlgoConfig{
		Opts:     DefaultOptions(),
		N:        40000,
		Procs:    []int{2, 4, 8, 10},
		Machines: []simnet.Machine{simnet.MeikoCS2(), simnet.PCCluster()},
	}
}

// algoList fixes the ablation's algorithm order.
var algoList = []mpi.AllreduceAlgo{mpi.ReduceBcast, mpi.RecursiveDoubling, mpi.Ring}

// AlgoResult holds mean elapsed virtual seconds per machine, algorithm and
// processor count.
type AlgoResult struct {
	Procs    []int
	Machines []string
	Algos    []mpi.AllreduceAlgo
	// Seconds[mi][ai][pi].
	Seconds [][][]float64
}

// RunAlgo executes the sweep.
func RunAlgo(cfg AlgoConfig) (*AlgoResult, error) {
	if err := cfg.Opts.validate(); err != nil {
		return nil, err
	}
	if cfg.N < 1 || len(cfg.Procs) == 0 || len(cfg.Machines) == 0 {
		return nil, fmt.Errorf("harness: invalid algo config")
	}
	ds, err := paperDataset(cfg.N, cfg.Opts.DataSeed)
	if err != nil {
		return nil, err
	}
	res := &AlgoResult{Procs: cfg.Procs, Algos: algoList}
	for _, m := range cfg.Machines {
		res.Machines = append(res.Machines, m.Name)
		perAlgo := make([][]float64, len(algoList))
		for ai, algo := range algoList {
			opts := cfg.Opts
			opts.Machine = m
			opts.AllreduceAlgo = algo
			row := make([]float64, len(cfg.Procs))
			for pi, p := range cfg.Procs {
				mean, err := meanElapsedParallel(ds, p, opts)
				if err != nil {
					return nil, fmt.Errorf("harness: algo %v machine %q p=%d: %w", algo, m.Name, p, err)
				}
				row[pi] = mean
			}
			perAlgo[ai] = row
		}
		res.Seconds = append(res.Seconds, perAlgo)
	}
	return res, nil
}

// Table renders the ablation, one block per machine.
func (r *AlgoResult) Table() string {
	out := "Allreduce algorithm ablation — elapsed time [s]\n"
	for mi, name := range r.Machines {
		headers := []string{name + " \\ procs"}
		for _, p := range r.Procs {
			headers = append(headers, fmt.Sprintf("%d", p))
		}
		var rows [][]string
		for ai, algo := range r.Algos {
			row := []string{algo.String()}
			for pi := range r.Procs {
				row = append(row, fmt.Sprintf("%.2f", r.Seconds[mi][ai][pi]))
			}
			rows = append(rows, row)
		}
		out += formatTable(headers, rows) + "\n"
	}
	return out
}

// CheckShape verifies the latency-dominance conclusions: recursive doubling
// never loses to reduce+bcast (it runs at most the same number of rounds),
// and the ring never wins at the largest P (its 2(P−1) latency rounds
// exceed the trees' for AutoClass's message sizes).
func (r *AlgoResult) CheckShape() []string {
	var bad []string
	last := len(r.Procs) - 1
	const tol = 1.001
	for mi, name := range r.Machines {
		rb, rd, ring := r.Seconds[mi][0], r.Seconds[mi][1], r.Seconds[mi][2]
		for pi, p := range r.Procs {
			if rd[pi] > rb[pi]*tol {
				bad = append(bad, fmt.Sprintf("%s P=%d: recursive doubling (%.2fs) slower than reduce+bcast (%.2fs)",
					name, p, rd[pi], rb[pi]))
			}
		}
		if ring[last] < rd[last] {
			bad = append(bad, fmt.Sprintf("%s: ring unexpectedly fastest at P=%d", name, r.Procs[last]))
		}
	}
	return bad
}
