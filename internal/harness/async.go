package harness

import (
	"fmt"

	"repro/internal/autoclass"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/pautoclass"
	"repro/internal/simnet"
)

// The ASYNC experiment: the communication fraction of a base_cycle as ranks
// are added, for several bounded-staleness schedules L = SyncEvery. The
// paper's Fig. 8 saturation comes from one global exchange per cycle; with
// L > 1 only every L-th cycle pays the full exchange (stale cycles cost a
// single 1-value drift flag), so the comm fraction — and with it the
// scaleup wall — drops by roughly 1/L. The virtual clock charges exactly
// the collectives the engine actually performs, so the reduced fraction
// falls out of the cost model with no separate accounting.

// AsyncConfig configures the comm-fraction-vs-ranks sweep.
type AsyncConfig struct {
	Opts Options
	// TuplesPerProc is the fixed per-processor partition size.
	TuplesPerProc int
	// Procs are the rank counts.
	Procs []int
	// SyncEvery are the staleness schedules to compare; include 1 for the
	// synchronous baseline.
	SyncEvery []int
	// Clusters is the class count.
	Clusters int
	// Cycles is how many base_cycle iterations each cell runs.
	Cycles int
}

// DefaultAsyncConfig returns the standard sweep: the paper's rank range at
// 10 000 tuples/processor, L ∈ {1, 2, 4, 8}.
func DefaultAsyncConfig() AsyncConfig {
	return AsyncConfig{
		Opts:          DefaultOptions(),
		TuplesPerProc: 10000,
		Procs:         []int{2, 4, 6, 8, 10},
		SyncEvery:     []int{1, 2, 4, 8},
		Clusters:      8,
		Cycles:        8,
	}
}

// AsyncResult holds the measured comm fractions and collective counts.
type AsyncResult struct {
	Procs     []int
	SyncEvery []int
	// CommFraction[li][pi] is comm seconds / total virtual seconds for
	// SyncEvery[li] on Procs[pi] ranks.
	CommFraction [][]float64
	// Collectives[li][pi] is rank 0's collective count over the measured
	// cycles.
	Collectives [][]int
}

// RunAsync executes the sweep.
func RunAsync(cfg AsyncConfig) (*AsyncResult, error) {
	if err := cfg.Opts.validate(); err != nil {
		return nil, err
	}
	if cfg.TuplesPerProc < 1 || cfg.Cycles < 1 || cfg.Clusters < 1 ||
		len(cfg.Procs) == 0 || len(cfg.SyncEvery) == 0 {
		return nil, fmt.Errorf("harness: invalid async config")
	}
	res := &AsyncResult{Procs: cfg.Procs, SyncEvery: cfg.SyncEvery}
	for _, l := range cfg.SyncEvery {
		fr := make([]float64, len(cfg.Procs))
		cc := make([]int, len(cfg.Procs))
		for pi, p := range cfg.Procs {
			f, c, err := asyncCell(cfg, l, p)
			if err != nil {
				return nil, fmt.Errorf("harness: async L=%d p=%d: %w", l, p, err)
			}
			fr[pi] = f
			cc[pi] = c
		}
		res.CommFraction = append(res.CommFraction, fr)
		res.Collectives = append(res.Collectives, cc)
	}
	return res, nil
}

// asyncCell measures one (L, P) cell: the comm fraction of cfg.Cycles
// base_cycle iterations (excluding initialization, which is identical
// across schedules) and rank 0's collective count over those cycles.
func asyncCell(cfg AsyncConfig, l, p int) (float64, int, error) {
	n := cfg.TuplesPerProc * p
	ds, err := paperDataset(n, cfg.Opts.DataSeed)
	if err != nil {
		return 0, 0, err
	}
	em := cfg.Opts.Search.EM
	em.PruneClasses = false // hold J fixed for a clean per-cycle measure
	em.Granularity = cfg.Opts.Granularity
	em.SyncEvery = l
	em.SyncDriftTol = 0 // pure schedule: the curve isolates L
	em.MaxCycles = cfg.Cycles + 1
	var fraction float64
	var colls int
	runErr := mpi.Run(p, func(c *mpi.Comm) error {
		clk, err := simnet.NewClock(cfg.Opts.Machine)
		if err != nil {
			return err
		}
		view, err := pautoclass.PartitionView(c, ds)
		if err != nil {
			return err
		}
		opts := pautoclass.Options{EM: em, Strategy: pautoclass.Full, Clock: clk}
		pr, err := pautoclass.ParallelPriors(c, view, &opts)
		if err != nil {
			return err
		}
		cls, err := autoclass.NewClassification(ds, model.DefaultSpec(ds), pr, cfg.Clusters)
		if err != nil {
			return err
		}
		red := pautoclass.NewAllreduceReducer(c, clk)
		eng, err := autoclass.NewEngine(view, cls, em, red, clk)
		if err != nil {
			return err
		}
		if err := eng.InitRandom(cfg.Opts.Search.Seed); err != nil {
			return err
		}
		if err := clk.SyncBarrier(c); err != nil {
			return err
		}
		startT := clk.Elapsed()
		startComm := clk.CommSeconds()
		startColl := clk.Collectives()
		// The first measured cycle bootstraps the stale baseline (a full
		// synchronous exchange); the steady-state schedule follows.
		for cyc := 0; cyc < cfg.Cycles; cyc++ {
			if _, err := eng.BaseCycle(); err != nil {
				return err
			}
		}
		if err := clk.SyncBarrier(c); err != nil {
			return err
		}
		if c.Rank() == 0 {
			total := clk.Elapsed() - startT
			comm := clk.CommSeconds() - startComm
			if total > 0 {
				fraction = comm / total
			}
			colls = clk.Collectives() - startColl
		}
		return nil
	})
	if runErr != nil {
		return 0, 0, runErr
	}
	return fraction, colls, nil
}

// Table renders the comm-fraction curve.
func (r *AsyncResult) Table() string {
	headers := []string{"L \\ procs"}
	for _, p := range r.Procs {
		headers = append(headers, fmt.Sprintf("%d", p))
	}
	var rows [][]string
	for li, l := range r.SyncEvery {
		row := []string{fmt.Sprintf("%d", l)}
		for pi := range r.Procs {
			row = append(row, fmt.Sprintf("%.3f", r.CommFraction[li][pi]))
		}
		rows = append(rows, row)
	}
	return "ASYNC — communication fraction of a base_cycle, fixed tuples/processor\n" +
		formatTable(headers, rows)
}

// CheckShape verifies the claims the bounded-staleness mode makes: at every
// rank count, raising L lowers both the collective count and the comm
// fraction (monotonically across the configured ladder), and the comm
// fraction grows with ranks within each schedule (the saturation shape the
// relaxation pushes outward).
func (r *AsyncResult) CheckShape() []string {
	var bad []string
	for li := 1; li < len(r.SyncEvery); li++ {
		for pi := range r.Procs {
			if r.SyncEvery[li] <= r.SyncEvery[li-1] {
				continue
			}
			if r.Collectives[li][pi] >= r.Collectives[li-1][pi] {
				bad = append(bad, fmt.Sprintf("L=%d p=%d: %d collectives, not below L=%d's %d",
					r.SyncEvery[li], r.Procs[pi], r.Collectives[li][pi],
					r.SyncEvery[li-1], r.Collectives[li-1][pi]))
			}
			if r.CommFraction[li][pi] >= r.CommFraction[li-1][pi] {
				bad = append(bad, fmt.Sprintf("L=%d p=%d: comm fraction %.3f, not below L=%d's %.3f",
					r.SyncEvery[li], r.Procs[pi], r.CommFraction[li][pi],
					r.SyncEvery[li-1], r.CommFraction[li-1][pi]))
			}
		}
	}
	return bad
}
