package harness

import (
	"fmt"

	"repro/internal/simnet"
)

// Fig6Config configures the elapsed-time experiment of the paper's Fig. 6
// (and, derived from it, the speedup curves of Fig. 7).
type Fig6Config struct {
	Opts Options
	// Sizes are the dataset sizes (tuples); the paper sweeps partitions of
	// its synthetic dataset from 5000 tuples upward.
	Sizes []int
	// Procs are the processor counts; the paper's Meiko CS-2 had up to 10.
	Procs []int
}

// DefaultFig6Config returns the configuration from DESIGN.md's experiment
// index: sizes 5k–100k, P = 1..10.
func DefaultFig6Config() Fig6Config {
	return Fig6Config{
		Opts:  DefaultOptions(),
		Sizes: []int{5000, 10000, 20000, 40000, 60000, 80000, 100000},
		Procs: []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
	}
}

// Fig6Result holds the mean virtual elapsed seconds per (size, P) cell.
type Fig6Result struct {
	Sizes []int
	Procs []int
	// Seconds[si][pi] is the mean elapsed time of size Sizes[si] on
	// Procs[pi] processors.
	Seconds [][]float64
}

// RunFig6 executes the sweep.
func RunFig6(cfg Fig6Config) (*Fig6Result, error) {
	if err := cfg.Opts.validate(); err != nil {
		return nil, err
	}
	if len(cfg.Sizes) == 0 || len(cfg.Procs) == 0 {
		return nil, fmt.Errorf("harness: fig6 needs sizes and procs")
	}
	res := &Fig6Result{Sizes: cfg.Sizes, Procs: cfg.Procs}
	for _, n := range cfg.Sizes {
		ds, err := paperDataset(n, cfg.Opts.DataSeed)
		if err != nil {
			return nil, err
		}
		row := make([]float64, len(cfg.Procs))
		for pi, p := range cfg.Procs {
			mean, err := meanElapsedParallel(ds, p, cfg.Opts)
			if err != nil {
				return nil, fmt.Errorf("harness: fig6 n=%d p=%d: %w", n, p, err)
			}
			row[pi] = mean
		}
		res.Seconds = append(res.Seconds, row)
	}
	return res, nil
}

// Speedup returns T(P_min)/T(P) for one size row, the paper's speedup
// definition with P_min = the first (smallest) configured processor count.
func (r *Fig6Result) Speedup(si, pi int) float64 {
	base := r.Seconds[si][0]
	if r.Seconds[si][pi] == 0 {
		return 0
	}
	return base / r.Seconds[si][pi]
}

// OptimalProcs returns the processor count with the lowest elapsed time for
// one size — where the paper observes "the optimal number of processors for
// the given problem".
func (r *Fig6Result) OptimalProcs(si int) int {
	best := 0
	for pi := range r.Procs {
		if r.Seconds[si][pi] < r.Seconds[si][best] {
			best = pi
		}
	}
	return r.Procs[best]
}

// Table renders the Fig. 6 table: average elapsed times (h.mm.ss) per
// dataset size and processor count.
func (r *Fig6Result) Table() string {
	headers := []string{"tuples \\ procs"}
	for _, p := range r.Procs {
		headers = append(headers, fmt.Sprintf("%d", p))
	}
	var rows [][]string
	for si, n := range r.Sizes {
		row := []string{fmt.Sprintf("%d", n)}
		for pi := range r.Procs {
			row = append(row, simnet.FormatHMS(r.Seconds[si][pi]))
		}
		rows = append(rows, row)
	}
	return "Fig 6 — average elapsed times of P-AutoClass [h.mm.ss]\n" +
		formatTable(headers, rows)
}

// SpeedupTable renders the Fig. 7 table: speedup T(1)/T(P) per size, with
// the linear reference row.
func (r *Fig6Result) SpeedupTable() string {
	headers := []string{"tuples \\ procs"}
	for _, p := range r.Procs {
		headers = append(headers, fmt.Sprintf("%d", p))
	}
	var rows [][]string
	for si, n := range r.Sizes {
		row := []string{fmt.Sprintf("%d", n)}
		for pi := range r.Procs {
			row = append(row, fmt.Sprintf("%.2f", r.Speedup(si, pi)))
		}
		rows = append(rows, row)
	}
	linear := []string{"linear"}
	for _, p := range r.Procs {
		linear = append(linear, fmt.Sprintf("%.2f", float64(p)/float64(r.Procs[0])))
	}
	rows = append(rows, linear)
	return "Fig 7 — speedup of P-AutoClass [T(1)/T(P)]\n" +
		formatTable(headers, rows)
}

// CheckShape verifies the qualitative claims the paper draws from Figs. 6–7
// and returns a list of violations (empty = all shapes hold):
//
//  1. elapsed time decreases substantially from P=1 to the optimum for
//     every size;
//  2. the time gain grows with dataset size;
//  3. the largest size scales to the maximum processor count;
//  4. small sizes stop scaling before large ones (smaller optimal P).
func (r *Fig6Result) CheckShape() []string {
	var bad []string
	last := len(r.Procs) - 1
	for si, n := range r.Sizes {
		if opt := r.OptimalProcs(si); opt > r.Procs[0] {
			continue
		}
		bad = append(bad, fmt.Sprintf("size %d: no parallel benefit at all", n))
	}
	if len(r.Sizes) >= 2 {
		first, lastSize := 0, len(r.Sizes)-1
		gainSmall := r.Seconds[first][0] - r.Seconds[first][last]
		gainLarge := r.Seconds[lastSize][0] - r.Seconds[lastSize][last]
		if gainLarge <= gainSmall {
			bad = append(bad, fmt.Sprintf("time gain does not grow with size: %v vs %v", gainSmall, gainLarge))
		}
		// Largest dataset should be fastest at max P (scales to 10).
		if r.OptimalProcs(lastSize) != r.Procs[last] {
			bad = append(bad, fmt.Sprintf("largest size optimal at P=%d, not max P=%d",
				r.OptimalProcs(lastSize), r.Procs[last]))
		}
		// Speedup at max P must increase with dataset size.
		if r.Speedup(first, last) >= r.Speedup(lastSize, last) {
			bad = append(bad, fmt.Sprintf("speedup at max P not increasing with size: %.2f vs %.2f",
				r.Speedup(first, last), r.Speedup(lastSize, last)))
		}
	}
	return bad
}
