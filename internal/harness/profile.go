package harness

import (
	"fmt"
	"time"

	"repro/internal/autoclass"
	"repro/internal/model"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// ProfileConfig configures the TPROF experiment: reproducing §3.1's
// profiling of sequential AutoClass ("the time spent in the base_cycle
// function ... resulted about the 99.5% of the total time"; update_wts and
// update_parameters dominate; update_approximations is negligible).
type ProfileConfig struct {
	// N is the dataset size (the paper profiles a 14K-tuple run).
	N int
	// Search configures the sequential BIG_LOOP.
	Search autoclass.SearchConfig
	// DataSeed seeds the workload generator.
	DataSeed uint64
}

// DefaultProfileConfig uses the paper's 14K-tuple anchor. TPROF profiles
// the paper's per-row algorithm, so it pins Kernels to Reference: the
// blocked kernels exist precisely to shrink base_cycle's share of the
// total, which would move the measurement away from the claim under test
// (the KERN experiment in EXPERIMENTS.md quantifies that shift).
func DefaultProfileConfig() ProfileConfig {
	search := autoclass.DefaultSearchConfig()
	search.StartJList = []int{2, 4, 8}
	search.Tries = 1
	search.EM.MaxCycles = 20
	search.EM.Kernels = autoclass.Reference
	return ProfileConfig{N: 14000, Search: search, DataSeed: 42}
}

// ProfileResult is the measured phase breakdown.
type ProfileResult struct {
	// TotalSeconds is the wall-clock time of the whole search, including
	// summary/prior computation and the BIG_LOOP driver.
	TotalSeconds float64
	// WtsSeconds, ParamsSeconds, ApproxSeconds and InitSeconds are the
	// accumulated phase times.
	WtsSeconds, ParamsSeconds, ApproxSeconds, InitSeconds float64
	// Profile carries the same data as named entries for table rendering.
	Profile *trace.Profile
}

// BaseCycleShare returns the fraction of total time inside base_cycle.
func (r *ProfileResult) BaseCycleShare() float64 {
	if r.TotalSeconds == 0 {
		return 0
	}
	return (r.WtsSeconds + r.ParamsSeconds + r.ApproxSeconds) / r.TotalSeconds
}

// ApproxShare returns update_approximations' fraction of base_cycle time.
func (r *ProfileResult) ApproxShare() float64 {
	base := r.WtsSeconds + r.ParamsSeconds + r.ApproxSeconds
	if base == 0 {
		return 0
	}
	return r.ApproxSeconds / base
}

// RunProfile executes the sequential profiling run.
func RunProfile(cfg ProfileConfig) (*ProfileResult, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("harness: profile N=%d", cfg.N)
	}
	ds, err := paperDataset(cfg.N, cfg.DataSeed)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := autoclass.Search(ds, model.DefaultSpec(ds), cfg.Search, nil)
	if err != nil {
		return nil, err
	}
	total := time.Since(start).Seconds()
	pr := &ProfileResult{
		TotalSeconds:  total,
		WtsSeconds:    res.Totals.WtsSeconds,
		ParamsSeconds: res.Totals.ParamsSeconds,
		ApproxSeconds: res.Totals.ApproxSeconds,
		InitSeconds:   res.Totals.InitSeconds,
		Profile:       trace.New(),
	}
	pr.Profile.Add(autoclass.PhaseWts, pr.WtsSeconds)
	pr.Profile.Add(autoclass.PhaseParams, pr.ParamsSeconds)
	pr.Profile.Add(autoclass.PhaseApprox, pr.ApproxSeconds)
	pr.Profile.Add(autoclass.PhaseInit, pr.InitSeconds)
	other := total - pr.WtsSeconds - pr.ParamsSeconds - pr.ApproxSeconds - pr.InitSeconds
	if other > 0 {
		pr.Profile.Add("other (IO, driver, summary)", other)
	}
	return pr, nil
}

// Table renders the §3.1 profile claims next to the measurements.
func (r *ProfileResult) Table() string {
	return fmt.Sprintf(
		"Profile of sequential AutoClass (paper §3.1)\n%s\nbase_cycle share of total: %.2f%% (paper: ~99.5%%)\nupdate_approximations share of base_cycle: %.2f%% (paper: negligible)\n",
		r.Profile.Table(), 100*r.BaseCycleShare(), 100*r.ApproxShare())
}

// CheckShape verifies the §3.1 claims.
func (r *ProfileResult) CheckShape() []string {
	var bad []string
	if r.BaseCycleShare() < 0.98 {
		bad = append(bad, fmt.Sprintf("base_cycle only %.1f%% of total (paper: ~99.5%%)", 100*r.BaseCycleShare()))
	}
	if r.ApproxShare() > 0.02 {
		bad = append(bad, fmt.Sprintf("update_approximations %.1f%% of base_cycle (paper: negligible)", 100*r.ApproxShare()))
	}
	if r.WtsSeconds <= r.ApproxSeconds || r.ParamsSeconds <= r.ApproxSeconds {
		bad = append(bad, "update_wts/update_parameters do not dominate update_approximations")
	}
	return bad
}

// SeqAnchorConfig configures the TSEQ experiment: §3's observation that
// sequential execution time increases linearly with dataset size (14K
// tuples ≈ 3 h on a Pentium PC ⇒ 140K tuples > 1 day).
type SeqAnchorConfig struct {
	// Sizes are the dataset sizes to sweep.
	Sizes []int
	// Machine converts op counts to the anchor machine's seconds.
	Machine simnet.Machine
	// Search configures the sequential BIG_LOOP (fixed-cycle protocol
	// recommended for clean linearity).
	Search autoclass.SearchConfig
	// DataSeed seeds the generator.
	DataSeed uint64
}

// DefaultSeqAnchorConfig sweeps 14K to 140K on the Pentium model.
func DefaultSeqAnchorConfig() SeqAnchorConfig {
	search := autoclass.DefaultSearchConfig()
	search.StartJList = []int{2, 4, 8}
	search.Tries = 1
	search.EM.MaxCycles = 15
	search.EM.RelDelta = 0
	return SeqAnchorConfig{
		Sizes:    []int{14000, 28000, 56000, 84000, 112000, 140000},
		Machine:  simnet.PentiumPC(),
		Search:   search,
		DataSeed: 42,
	}
}

// SeqAnchorResult holds virtual sequential times per size.
type SeqAnchorResult struct {
	Sizes   []int
	Seconds []float64
}

// RunSeqAnchor executes the sweep on the simulated sequential machine.
func RunSeqAnchor(cfg SeqAnchorConfig) (*SeqAnchorResult, error) {
	if err := cfg.Machine.Validate(); err != nil {
		return nil, err
	}
	res := &SeqAnchorResult{Sizes: cfg.Sizes}
	for _, n := range cfg.Sizes {
		ds, err := paperDataset(n, cfg.DataSeed)
		if err != nil {
			return nil, err
		}
		clk, err := simnet.NewClock(cfg.Machine)
		if err != nil {
			return nil, err
		}
		if _, err := autoclass.Search(ds, model.DefaultSpec(ds), cfg.Search, clk); err != nil {
			return nil, err
		}
		res.Seconds = append(res.Seconds, clk.Elapsed())
	}
	return res, nil
}

// Table renders the sequential anchor sweep.
func (r *SeqAnchorResult) Table() string {
	headers := []string{"tuples", "time [h.mm.ss]", "s/tuple"}
	var rows [][]string
	for i, n := range r.Sizes {
		rows = append(rows, []string{
			fmt.Sprintf("%d", n),
			simnet.FormatHMS(r.Seconds[i]),
			fmt.Sprintf("%.5f", r.Seconds[i]/float64(n)),
		})
	}
	return "Sequential AutoClass times on the Pentium PC model (paper §3 anchor)\n" +
		formatTable(headers, rows)
}

// CheckShape verifies linear growth: seconds per tuple constant within 15%.
func (r *SeqAnchorResult) CheckShape() []string {
	var bad []string
	if len(r.Sizes) < 2 {
		return bad
	}
	base := r.Seconds[0] / float64(r.Sizes[0])
	for i := 1; i < len(r.Sizes); i++ {
		perTuple := r.Seconds[i] / float64(r.Sizes[i])
		ratio := perTuple / base
		if ratio < 0.85 || ratio > 1.15 {
			bad = append(bad, fmt.Sprintf("size %d: %.4f s/tuple vs %.4f at base (not linear)",
				r.Sizes[i], perTuple, base))
		}
	}
	return bad
}
