package serve

import (
	"math"
	"sync"
	"time"

	"repro/internal/autoclass"
)

// Live search progress: every running job gets a progressTracker installed
// as the search's SearchObserver (rank 0 of the training group emits, so
// events arrive exactly once per lifecycle point). The tracker keeps the
// latest view of the BIG_LOOP — tries done/total, best score, the try
// currently cycling — plus an ETA extrapolated from the commit rate this
// tracker has observed. GET /v1/jobs/{id}/progress serves it.

// JobProgress is the GET /v1/jobs/{id}/progress body. Non-finite values
// (no committed try yet, no current log-posterior) are omitted rather than
// emitted, since JSON cannot carry NaN or ±Inf.
type JobProgress struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// TriesDone counts committed tries (monotonically non-decreasing,
	// including any checkpoint-restored prefix); TriesTotal the schedule.
	TriesDone  int `json:"tries_done"`
	TriesTotal int `json:"tries_total"`
	// BestScore/BestJ describe the best committed classification so far.
	BestScore *float64 `json:"best_score,omitempty"`
	BestJ     int      `json:"best_j,omitempty"`
	// The try currently cycling, when one is.
	CurrentTry *CurrentTry `json:"current_try,omitempty"`
	// ElapsedSeconds is time since the server started this run;
	// ETASeconds extrapolates the remaining tries from the observed
	// commit rate (absent until the run commits its first try).
	ElapsedSeconds float64  `json:"elapsed_seconds"`
	ETASeconds     *float64 `json:"eta_seconds,omitempty"`
}

// CurrentTry describes the variant a running search is inside.
type CurrentTry struct {
	Index  int `json:"index"`
	StartJ int `json:"start_j"`
	Try    int `json:"try"`
	// Cycle is the last finished EM cycle (-1 before the first).
	Cycle   int      `json:"cycle"`
	J       int      `json:"j,omitempty"`
	LogPost *float64 `json:"logpost,omitempty"`
}

// progressTracker accumulates TryEvents into a JobProgress view. It is a
// pure sink (notification-only, as SearchObserver requires) and safe for
// the concurrent delivery a parallel search produces.
type progressTracker struct {
	mu    sync.Mutex
	start time.Time

	done, total int
	bestScore   float64 // -Inf until the first keep
	bestJ       int

	cycling bool
	cur     CurrentTry
	curLP   float64

	// committed counts commits seen by THIS tracker (excludes any restored
	// prefix), so the ETA rate reflects observed work only.
	committed int
}

func newProgressTracker() *progressTracker {
	return &progressTracker{start: time.Now(), bestScore: math.Inf(-1)}
}

// ObserveTry implements autoclass.SearchObserver.
func (p *progressTracker) ObserveTry(ev autoclass.TryEvent) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if ev.Total > p.total {
		p.total = ev.Total
	}
	switch ev.Kind {
	case autoclass.TryClaimed:
		p.cycling = true
		p.cur = CurrentTry{Index: ev.Index, StartJ: ev.StartJ, Try: ev.Try, Cycle: -1}
		p.curLP = math.Inf(-1)
		if ev.Done > p.done {
			p.done = ev.Done
		}
	case autoclass.TryCycle:
		p.cycling = true
		p.cur.Index = ev.Index
		p.cur.StartJ = ev.StartJ
		p.cur.Try = ev.Try
		p.cur.Cycle = ev.Cycle
		p.cur.J = ev.J
		p.curLP = ev.LogPost
	default: // commit verdicts
		p.committed++
		p.cycling = false
		if ev.Done > p.done {
			p.done = ev.Done
		}
		if !math.IsInf(ev.BestScore, -1) {
			p.bestScore = ev.BestScore
			p.bestJ = ev.BestJ
		}
	}
}

// view renders the tracker as a JobProgress (ID and State filled by the
// caller, which owns the job table).
func (p *progressTracker) view() JobProgress {
	p.mu.Lock()
	defer p.mu.Unlock()
	jp := JobProgress{
		TriesDone:      p.done,
		TriesTotal:     p.total,
		BestJ:          p.bestJ,
		ElapsedSeconds: time.Since(p.start).Seconds(),
	}
	if !math.IsInf(p.bestScore, -1) {
		v := p.bestScore
		jp.BestScore = &v
	}
	if p.cycling {
		cur := p.cur
		if !math.IsInf(p.curLP, -1) && !math.IsNaN(p.curLP) {
			lp := p.curLP
			cur.LogPost = &lp
		}
		jp.CurrentTry = &cur
	}
	if p.committed > 0 && p.done < p.total {
		rate := jp.ElapsedSeconds / float64(p.committed)
		eta := rate * float64(p.total-p.done)
		jp.ETASeconds = &eta
	}
	return jp
}

// jobProgress builds the live progress view for a job. Jobs that never ran
// on this server instance (queued, or done before a restart) have no
// tracker; their schedule size is derived from the persisted request, and
// a done job reports tries_done == tries_total.
func (s *Server) jobProgress(id string) (JobProgress, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	var t *progressTracker
	var st JobStatus
	var spec *SearchSpec
	if ok {
		t = s.progress[id]
		st = j.Status
		spec = j.Req.Search
	}
	s.mu.Unlock()
	if !ok {
		return JobProgress{}, false
	}
	var jp JobProgress
	if t != nil {
		jp = t.view()
	}
	jp.ID = id
	jp.State = st.State
	if jp.TriesTotal == 0 {
		if cfg, err := searchConfig(spec); err == nil {
			jp.TriesTotal = len(cfg.StartJList) * cfg.Tries
		}
	}
	if st.State == StateDone {
		jp.TriesDone = jp.TriesTotal
		jp.CurrentTry = nil
		jp.ETASeconds = nil
		if jp.BestScore == nil {
			v := st.Score
			jp.BestScore = &v
			jp.BestJ = st.J
		}
	}
	return jp, true
}

// fanoutObserver delivers every event to each member in order.
type fanoutObserver []autoclass.SearchObserver

func (f fanoutObserver) ObserveTry(ev autoclass.TryEvent) {
	for _, o := range f {
		o.ObserveTry(ev)
	}
}
