package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/autoclass"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/pautoclass"
)

// wireRows converts a dataset into the HTTP wire format (null = missing).
func wireRows(ds *dataset.Dataset) ([]AttrSpec, [][]*float64) {
	attrs := make([]AttrSpec, ds.NumAttrs())
	for k, a := range ds.Attrs() {
		sp := AttrSpec{Name: a.Name, Levels: a.Levels}
		switch a.Type {
		case dataset.Real:
			sp.Type = "real"
		case dataset.Discrete:
			sp.Type = "discrete"
		}
		attrs[k] = sp
	}
	rows := make([][]*float64, ds.N())
	for i := range rows {
		src := ds.Row(i)
		row := make([]*float64, len(src))
		for k, v := range src {
			if !dataset.IsMissing(v) {
				v := v
				row[k] = &v
			}
		}
		rows[i] = row
	}
	return attrs, rows
}

func paperJob(t *testing.T, n int, seed uint64, search *SearchSpec) (JobRequest, *dataset.Dataset) {
	t.Helper()
	ds, err := datagen.Paper(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	attrs, rows := wireRows(ds)
	return JobRequest{Name: ds.Name, Attrs: attrs, Rows: rows, Search: search}, ds
}

func postJSON(t *testing.T, client *http.Client, url string, body, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, client *http.Client, url string, out any) int {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func waitState(t *testing.T, client *http.Client, base, id, want string, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var st JobStatus
		if code := getJSON(t, client, base+"/v1/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("poll job %s: status %d", id, code)
		}
		if st.State == want {
			return st
		}
		if st.State == StateFailed {
			t.Fatalf("job %s failed: %s", id, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q waiting for %q", id, st.State, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// referenceSearch reproduces what the daemon's runner computes, through the
// direct pautoclass API on the same rank count.
func referenceSearch(t *testing.T, ds *dataset.Dataset, sp *SearchSpec, procs int) *autoclass.SearchResult {
	t.Helper()
	cfg, err := searchConfig(sp)
	if err != nil {
		t.Fatal(err)
	}
	var res *autoclass.SearchResult
	err = mpi.Run(procs, func(c *mpi.Comm) error {
		opts := pautoclass.DefaultOptions()
		opts.EM = cfg.EM
		r, err := pautoclass.Search(c, ds, model.DefaultSpec(ds), cfg, opts)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			res = r
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func modelBytes(t *testing.T, cls *autoclass.Classification) []byte {
	t.Helper()
	var buf bytes.Buffer
	ck := autoclass.Checkpoint{Classification: cls}
	if err := ck.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

var quickSpec = &SearchSpec{StartJList: []int{2, 3}, Tries: 1, MaxCycles: 30, Parallelism: 1}

// TestServeTrainPredictE2E drives the full daemon loop over real HTTP:
// submit a job, poll it to completion, verify the fitted model matches the
// direct pautoclass pipeline bitwise, batch-score held-out rows against it
// and verify the predictions match the in-process batch scorer exactly,
// then scrape /metrics and /debug/trace.
func TestServeTrainPredictE2E(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir(), Procs: 2, Every: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := ts.Client()

	req, trainDS := paperJob(t, 300, 17, quickSpec)
	var st JobStatus
	if code := postJSON(t, client, ts.URL+"/v1/jobs", req, &st); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	if st.ID == "" || st.State != StateQueued {
		t.Fatalf("submit returned %+v", st)
	}
	done := waitState(t, client, ts.URL, st.ID, StateDone, 2*time.Minute)
	if done.ModelID != st.ID || done.J < 1 || done.Cycles < 1 {
		t.Fatalf("done status incomplete: %+v", done)
	}

	// The daemon trained through SearchCheckpointed on 2 ranks; the direct
	// pipeline must land on the bitwise-identical model.
	ref := referenceSearch(t, trainDS, quickSpec, 2)
	saved, err := os.ReadFile(s.jobPath(st.ID, "model.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saved, modelBytes(t, ref.Best)) {
		t.Error("daemon-trained model differs from the direct pipeline")
	}

	// Batch prediction over HTTP equals the in-process batch scorer.
	heldout, err := datagen.Paper(200, 99)
	if err != nil {
		t.Fatal(err)
	}
	_, rows := wireRows(heldout)
	var pr PredictResponse
	code := postJSON(t, client, ts.URL+"/v1/models/"+st.ID+"/predict",
		PredictRequest{Rows: rows, Parallelism: 3}, &pr)
	if code != http.StatusOK {
		t.Fatalf("predict: status %d", code)
	}
	want, err := autoclass.Predict(ref.Best, heldout, autoclass.PredictConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if pr.N != want.N() || pr.J != want.J {
		t.Fatalf("predict shape: got N=%d J=%d, want N=%d J=%d", pr.N, pr.J, want.N(), want.J)
	}
	if pr.LogLik != want.LogLik {
		t.Errorf("predict loglik %v, want %v", pr.LogLik, want.LogLik)
	}
	for i := 0; i < pr.N; i++ {
		if pr.MAP[i] != want.MAP[i] {
			t.Fatalf("row %d: MAP %d, want %d", i, pr.MAP[i], want.MAP[i])
		}
		for j, m := range pr.Memberships[i] {
			// encoding/json round-trips float64 exactly, so the HTTP path
			// must be bit-for-bit the in-process scorer.
			if m != want.Membership(i)[j] {
				t.Fatalf("row %d class %d: membership %v, want %v", i, j, m, want.Membership(i)[j])
			}
		}
	}

	// Metrics expose both the server counters and the training run.
	var metrics struct {
		Server struct {
			Counters map[string]float64 `json:"counters"`
		} `json:"server"`
		Run *struct {
			Counters map[string]float64 `json:"counters"`
		} `json:"run"`
	}
	if code := getJSON(t, client, ts.URL+"/metrics.json", &metrics); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	if metrics.Server.Counters["serve.jobs.done"] < 1 {
		t.Errorf("metrics missing completed job: %+v", metrics.Server.Counters)
	}
	if metrics.Server.Counters["serve.predict.rows"] != float64(heldout.N()) {
		t.Errorf("predict rows counter = %v, want %d", metrics.Server.Counters["serve.predict.rows"], heldout.N())
	}
	if metrics.Run == nil || metrics.Run.Counters["engine.cycles"] < 1 {
		t.Errorf("run metrics missing engine cycles: %+v", metrics.Run)
	}

	// The Chrome trace of the finished run is exportable.
	resp, err := client.Get(ts.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	var trace bytes.Buffer
	trace.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: status %d", resp.StatusCode)
	}
	if !bytes.Contains(trace.Bytes(), []byte("traceEvents")) {
		t.Error("trace response is not a Chrome trace")
	}
}

// TestServeConcurrentPredict hammers one fitted model from 8 concurrent
// clients (the acceptance criterion's -race scenario): every response must
// be byte-identical — batch scoring builds per-call kernels, so shared
// model state is read-only.
func TestServeConcurrentPredict(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir(), Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := ts.Client()

	req, _ := paperJob(t, 250, 23, quickSpec)
	var st JobStatus
	if code := postJSON(t, client, ts.URL+"/v1/jobs", req, &st); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	waitState(t, client, ts.URL, st.ID, StateDone, 2*time.Minute)

	heldout, err := datagen.Paper(300, 41)
	if err != nil {
		t.Fatal(err)
	}
	_, rows := wireRows(heldout)
	body, err := json.Marshal(PredictRequest{Rows: rows, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}

	const clients = 8
	const perClient = 5
	results := make([][]byte, clients)
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for g := 0; g < clients; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, err := client.Post(ts.URL+"/v1/models/"+st.ID+"/predict",
					"application/json", bytes.NewReader(body))
				if err != nil {
					errc <- err
					return
				}
				var buf bytes.Buffer
				buf.ReadFrom(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("client %d: status %d: %s", g, resp.StatusCode, buf.String())
					return
				}
				if results[g] == nil {
					results[g] = buf.Bytes()
				} else if !bytes.Equal(results[g], buf.Bytes()) {
					errc <- fmt.Errorf("client %d: responses differ between calls", g)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	for g := 1; g < clients; g++ {
		if !bytes.Equal(results[0], results[g]) {
			t.Fatalf("client %d saw a different prediction than client 0", g)
		}
	}
}

// TestServeKillAndRestart is the daemon-restart acceptance test: Close
// interrupts a mid-flight search cooperatively (resumable snapshot on
// disk, job back to queued), and a new server over the same state
// directory resumes and finishes it — landing on the bitwise-identical
// model to an uninterrupted run.
func TestServeKillAndRestart(t *testing.T) {
	dir := t.TempDir()
	// Enough work that the job is still mid-search when we pull the plug.
	longSpec := &SearchSpec{StartJList: []int{2, 3, 4, 5}, Tries: 2, MaxCycles: 200, Parallelism: 1}
	req, trainDS := paperJob(t, 240, 5, longSpec)

	s1, err := New(Config{Dir: dir, Procs: 2, Every: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1)
	var st JobStatus
	if code := postJSON(t, ts1.Client(), ts1.URL+"/v1/jobs", req, &st); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	// Wait until the search has made checkpointable progress, then kill
	// the daemon mid-run.
	ckpt := s1.jobPath(st.ID, "search.ckpt")
	deadline := time.Now().Add(time.Minute)
	for {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no search checkpoint appeared within a minute")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// The interrupted job must be resumable: back to queued on disk.
	var onDisk JobStatus
	if err := readJSON(s1.jobPath(st.ID, "status.json"), &onDisk); err != nil {
		t.Fatal(err)
	}
	if onDisk.State == StateDone {
		t.Skip("job finished before the kill; nothing to resume")
	}
	if onDisk.State != StateQueued {
		t.Fatalf("interrupted job persisted as %q, want %q", onDisk.State, StateQueued)
	}

	// A fresh server over the same directory re-enqueues and finishes it.
	s2, err := New(Config{Dir: dir, Procs: 2, Every: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	waitState(t, ts2.Client(), ts2.URL, st.ID, StateDone, 3*time.Minute)

	ref := referenceSearch(t, trainDS, longSpec, 2)
	saved, err := os.ReadFile(s2.jobPath(st.ID, "model.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saved, modelBytes(t, ref.Best)) {
		t.Error("resumed training landed on a different model than an uninterrupted run")
	}
}

// TestServeValidation covers the synchronous failure paths.
func TestServeValidation(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir(), Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := ts.Client()

	one := 1.0
	good, _ := paperJob(t, 50, 3, quickSpec)

	bad := good
	bad.Attrs = []AttrSpec{{Name: "x", Type: "complex"}}
	if code := postJSON(t, client, ts.URL+"/v1/jobs", bad, nil); code != http.StatusBadRequest {
		t.Errorf("unknown attr type accepted: %d", code)
	}
	bad = good
	bad.Rows = [][]*float64{{&one}}
	if code := postJSON(t, client, ts.URL+"/v1/jobs", bad, nil); code != http.StatusBadRequest {
		t.Errorf("short row accepted: %d", code)
	}
	bad = good
	bad.Rows = nil
	if code := postJSON(t, client, ts.URL+"/v1/jobs", bad, nil); code != http.StatusBadRequest {
		t.Errorf("empty rows accepted: %d", code)
	}
	bad = good
	bad.Procs = maxProcs + 1
	if code := postJSON(t, client, ts.URL+"/v1/jobs", bad, nil); code != http.StatusBadRequest {
		t.Errorf("oversized procs accepted: %d", code)
	}

	if code := getJSON(t, client, ts.URL+"/v1/jobs/999", nil); code != http.StatusNotFound {
		t.Errorf("missing job returned %d", code)
	}
	if code := postJSON(t, client, ts.URL+"/v1/models/999/predict", PredictRequest{Rows: good.Rows}, nil); code != http.StatusNotFound {
		t.Errorf("missing model returned %d", code)
	}

	// A queued/running job is not yet a model.
	var st JobStatus
	if code := postJSON(t, client, ts.URL+"/v1/jobs", good, &st); code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	code := postJSON(t, client, ts.URL+"/v1/models/"+st.ID+"/predict", PredictRequest{Rows: good.Rows}, nil)
	if code != http.StatusNotFound {
		// The tiny job may already be done; only a 200 with State done is
		// acceptable then.
		stNow, _ := s.status(st.ID)
		if stNow.State != StateDone {
			t.Errorf("predict against %s job returned %d", stNow.State, code)
		}
	}
	waitState(t, client, ts.URL, st.ID, StateDone, 2*time.Minute)

	// Predict-side validation against a real model.
	if code := postJSON(t, client, ts.URL+"/v1/models/"+st.ID+"/predict", PredictRequest{}, nil); code != http.StatusBadRequest {
		t.Errorf("empty predict rows accepted: %d", code)
	}
	bad = good
	if code := postJSON(t, client, ts.URL+"/v1/models/"+st.ID+"/predict",
		PredictRequest{Rows: [][]*float64{{&one}}}, nil); code != http.StatusBadRequest {
		t.Errorf("short predict row accepted: %d", code)
	}

	// Health endpoint.
	var health struct {
		Status string `json:"status"`
	}
	if code := getJSON(t, client, ts.URL+"/healthz", &health); code != http.StatusOK || health.Status != "ok" {
		t.Errorf("healthz: %d %+v", code, health)
	}
}
