package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sync"

	"repro/internal/dataset"
)

// The predict response cache: an LRU keyed by (model, resolved version,
// row-content hash) holding the exact marshaled response bytes, so a
// repeated request replays byte-identically without touching a kernel.
//
// Versions are part of the key, so a cached entry can never answer for a
// different version than the one it was computed against; activation
// additionally purges the model's entries so memory never pins retired
// versions.

// cacheKey identifies one predict request's content.
type cacheKey struct {
	model   string
	version int
	rows    [32]byte
}

// hashRows fingerprints a materialized batch. Dataset values are plain
// float64s with missing as one fixed NaN bit pattern, so hashing the raw
// bits is content-exact: two requests collide iff their rows are
// bitwise-identical under the same schema.
func hashRows(ds *dataset.Dataset) [32]byte {
	h := sha256.New()
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(ds.N()))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(ds.NumAttrs()))
	h.Write(hdr[:])
	var word [8]byte
	buf := make([]float64, ds.NumAttrs())
	for i := 0; i < ds.N(); i++ {
		for _, v := range ds.RowTo(buf, i) {
			binary.LittleEndian.PutUint64(word[:], math.Float64bits(v))
			h.Write(word[:])
		}
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// CacheStats is one model's response-cache accounting, surfaced on
// GET /v1/models/{id}.
type CacheStats struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Entries int   `json:"entries"`
}

type cacheEntry struct {
	key  cacheKey
	body []byte
}

// respCache is the server-wide bounded LRU. All methods are cheap; a
// single mutex is fine at predict rates.
type respCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recent
	items map[cacheKey]*list.Element
	hits  map[string]int64
	miss  map[string]int64
}

func newRespCache(capacity int) *respCache {
	if capacity <= 0 {
		return nil // disabled; the nil methods below make that free
	}
	return &respCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[cacheKey]*list.Element),
		hits:  make(map[string]int64),
		miss:  make(map[string]int64),
	}
}

// get returns the cached response bytes, or nil on miss. The returned
// slice is shared — callers only ever write it to a ResponseWriter.
func (c *respCache) get(k cacheKey) []byte {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		c.hits[k.model]++
		return el.Value.(*cacheEntry).body
	}
	c.miss[k.model]++
	return nil
}

// put stores a response, evicting from the cold end past capacity.
func (c *respCache) put(k cacheKey, body []byte) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).body = body
		return
	}
	c.items[k] = c.ll.PushFront(&cacheEntry{key: k, body: body})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// invalidate drops every entry of one model (all versions). Called on
// version activation.
func (c *respCache) invalidate(model string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		if e := el.Value.(*cacheEntry); e.key.model == model {
			c.ll.Remove(el)
			delete(c.items, e.key)
		}
	}
}

// stats reports one model's hit/miss counters and live entry count.
func (c *respCache) stats(model string) CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CacheStats{Hits: c.hits[model], Misses: c.miss[model]}
	for el := c.ll.Front(); el != nil; el = el.Next() {
		if el.Value.(*cacheEntry).key.model == model {
			st.Entries++
		}
	}
	return st
}
