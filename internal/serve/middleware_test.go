package serve

import (
	"bytes"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

// newMWServer builds a server whose logs land in the returned buffer.
func newMWServer(t *testing.T) (*Server, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	s, err := New(Config{
		Dir:    t.TempDir(),
		Procs:  1,
		Logger: slog.New(slog.NewJSONHandler(&buf, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, &buf
}

// A panicking handler must not leak the in-flight gauge, must still be
// counted and logged, and the client must get a 500 (headers not sent yet).
func TestInstrumentPanicRecovery(t *testing.T) {
	s, buf := newMWServer(t)
	h := s.instrument("GET /boom", func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})

	for i := 0; i < 2; i++ { // twice: the gauge must return to 0 every time
		rec := httptest.NewRecorder()
		h(rec, httptest.NewRequest("GET", "/boom", nil))
		if rec.Code != http.StatusInternalServerError {
			t.Fatalf("request %d: status = %d, want 500", i, rec.Code)
		}
	}
	if v := s.gInflight.Value(); v != 0 {
		t.Errorf("http.inflight = %v after panics, want 0", v)
	}
	c := s.reg.Counter(obs.Labeled(MetricHTTPRequests, "code", "5xx", "route", "GET /boom"))
	if v := c.Value(); v != 2 {
		t.Errorf("5xx counter = %v, want 2", v)
	}
	logged := buf.String()
	if !strings.Contains(logged, "kaboom") {
		t.Errorf("request log does not record the panic value:\n%s", logged)
	}
	if !strings.Contains(logged, `"status":500`) {
		t.Errorf("request log does not record status 500:\n%s", logged)
	}
}

// A panic after the handler has already written keeps the client-observed
// status in the metrics but still logs the panic and frees the gauge.
func TestInstrumentPanicAfterWrite(t *testing.T) {
	s, buf := newMWServer(t)
	h := s.instrument("GET /late", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		panic("late panic")
	})
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/late", nil))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("status = %d, want 202 (already written)", rec.Code)
	}
	if v := s.gInflight.Value(); v != 0 {
		t.Errorf("http.inflight = %v, want 0", v)
	}
	if !strings.Contains(buf.String(), "late panic") {
		t.Errorf("panic value missing from log:\n%s", buf.String())
	}
}

// The recorder must pass Flush through so streaming handlers keep working
// behind instrumentation.
func TestStatusRecorderFlush(t *testing.T) {
	rec := httptest.NewRecorder()
	sr := &statusRecorder{ResponseWriter: rec}
	var w http.ResponseWriter = sr
	f, ok := w.(http.Flusher)
	if !ok {
		t.Fatal("statusRecorder does not implement http.Flusher")
	}
	f.Flush()
	if !rec.Flushed {
		t.Error("Flush did not reach the underlying writer")
	}
	if sr.code != http.StatusOK {
		t.Errorf("code after Flush = %d, want 200", sr.code)
	}
	if _, ok := w.(http.Hijacker); !ok {
		t.Error("statusRecorder does not implement http.Hijacker")
	}
	if _, _, err := sr.Hijack(); err == nil {
		t.Error("Hijack over a non-hijackable writer should error")
	}
	if sr.Unwrap() != http.ResponseWriter(rec) {
		t.Error("Unwrap does not return the wrapped writer")
	}
}

// The progress route flushes its snapshot through the instrumented writer.
func TestProgressRouteFlushes(t *testing.T) {
	s, _ := newMWServer(t)
	s.mu.Lock()
	s.jobs["j-flush"] = &job{Status: JobStatus{ID: "j-flush", State: StateQueued}}
	s.mu.Unlock()

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/jobs/j-flush/progress", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200; body: %s", rec.Code, rec.Body)
	}
	if !rec.Flushed {
		t.Error("progress response was not flushed through the middleware")
	}
}

func TestRequestIDSanitized(t *testing.T) {
	s, _ := newMWServer(t)
	cases := []struct {
		name, in, want string
		minted         bool
	}{
		{"clean", "abc-123", "abc-123", false},
		{"control chars stripped", "ab\r\nInjected: yes\x00c", "abInjected: yesc", false},
		{"del stripped", "a\x7fb", "ab", false},
		{"truncated", strings.Repeat("x", 500), strings.Repeat("x", 128), false},
		{"all control falls back to minted", "\r\n\x00\x1b", "", true},
		{"empty falls back to minted", "", "", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := httptest.NewRequest("GET", "/", nil)
			if tc.in != "" {
				r.Header.Set("X-Request-Id", tc.in)
			}
			got := s.requestID(r)
			if tc.minted {
				if got == "" || !strings.HasPrefix(got, s.bootID+"-") {
					t.Errorf("requestID(%q) = %q, want minted %q-<seq>", tc.in, got, s.bootID)
				}
				return
			}
			if got != tc.want {
				t.Errorf("requestID(%q) = %q, want %q", tc.in, got, tc.want)
			}
		})
	}
}
