package serve

import (
	"bufio"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// HTTP-layer instrumentation: every route registered through instrument is
// wrapped with per-route request counters (labeled by status class),
// latency and response-size histograms, an in-flight gauge, request-ID
// propagation and a structured request log. Route labels are the explicit
// pattern strings passed at registration (never the raw URL path), so the
// label cardinality is fixed by the mux, not by clients.

// Metric names recorded by the HTTP middleware.
const (
	MetricHTTPRequests  = "http.requests"
	MetricHTTPInflight  = "http.inflight"
	MetricHTTPSeconds   = "http.request_seconds"
	MetricHTTPRespBytes = "http.response_bytes"
)

// statusRecorder captures the status code and body size written by a
// handler. WriteHeader-less handlers count as 200 on first Write.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	bytes int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.code == 0 {
		sr.code = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.code == 0 {
		sr.code = http.StatusOK
	}
	n, err := sr.ResponseWriter.Write(b)
	sr.bytes += n
	return n, err
}

// Flush passes streaming support through to the wrapped writer: handlers
// that probe `w.(http.Flusher)` (the progress stream) must still see it
// after instrumentation. Flushing headers implies a 200 like Write does.
func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		if sr.code == 0 {
			sr.code = http.StatusOK
		}
		f.Flush()
	}
}

// Hijack passes connection takeover through when the underlying writer
// supports it, so the recorder never silently downgrades an upgradable
// connection.
func (sr *statusRecorder) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	if hj, ok := sr.ResponseWriter.(http.Hijacker); ok {
		return hj.Hijack()
	}
	return nil, nil, fmt.Errorf("serve: %w", http.ErrNotSupported)
}

// Unwrap exposes the underlying writer for http.ResponseController.
func (sr *statusRecorder) Unwrap() http.ResponseWriter {
	return sr.ResponseWriter
}

// reqSeq numbers generated request IDs within a process.
var reqSeq atomic.Uint64

// maxRequestIDLen bounds caller-supplied request IDs; the ID is echoed in
// a response header and every log line, so an unbounded or control-laden
// value is a log-injection and amplification vector.
const maxRequestIDLen = 128

// sanitizeRequestID truncates id to maxRequestIDLen bytes and drops
// control characters (including DEL). Returns "" if nothing survives.
func sanitizeRequestID(id string) string {
	if len(id) > maxRequestIDLen {
		id = id[:maxRequestIDLen]
	}
	clean := make([]byte, 0, len(id))
	for i := 0; i < len(id); i++ {
		if c := id[i]; c >= 0x20 && c != 0x7f {
			clean = append(clean, c)
		}
	}
	return string(clean)
}

// requestID returns the caller-supplied X-Request-Id (bounded and
// stripped of control characters), or mints a process-unique one
// ("r<boot-nanos-hex>-<seq>").
func (s *Server) requestID(r *http.Request) string {
	if id := sanitizeRequestID(r.Header.Get("X-Request-Id")); id != "" {
		return id
	}
	return s.bootID + "-" + strconv.FormatUint(reqSeq.Add(1), 10)
}

// statusClass buckets a status code into the conventional 1xx..5xx label.
func statusClass(code int) string {
	if code < 100 || code > 599 {
		return "other"
	}
	return fmt.Sprintf("%dxx", code/100)
}

// instrument wraps h with the middleware stack for the given route pattern.
// The pattern is used verbatim as the metric route label and in the request
// log; quiet routes (metrics, health probes) log at Debug so scrapers do
// not flood the log.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	quiet := route == "GET /metrics" || route == "GET /metrics.json" ||
		route == "GET /healthz" || route == "GET /readyz"
	hSeconds := s.reg.Histogram(obs.Labeled(MetricHTTPSeconds, "route", route))
	hBytes := s.reg.Histogram(obs.Labeled(MetricHTTPRespBytes, "route", route))
	return func(w http.ResponseWriter, r *http.Request) {
		id := s.requestID(r)
		// Echoed to the client and readable by handlers (job submission
		// stamps it into the job status) via the response headers.
		w.Header().Set("X-Request-Id", id)
		s.gInflight.Add(1)
		start := time.Now()
		sr := &statusRecorder{ResponseWriter: w}
		// The bookkeeping runs deferred so a panicking handler cannot
		// leak the in-flight gauge or skip the counters and request log.
		defer func() {
			panicked := recover()
			if panicked != nil && sr.code == 0 {
				// Headers not yet sent: the 500 still reaches the
				// client. After a mid-body panic the code already
				// written stands; the panic is recorded in the log.
				httpError(sr, http.StatusInternalServerError, CodeInternal, "internal error")
			}
			elapsed := time.Since(start)
			s.gInflight.Add(-1)
			if sr.code == 0 {
				sr.code = http.StatusOK
			}
			s.reg.Counter(obs.Labeled(MetricHTTPRequests, "code", statusClass(sr.code), "route", route)).Add(1)
			hSeconds.Observe(elapsed.Seconds())
			hBytes.Observe(float64(sr.bytes))
			level := slog.LevelInfo
			if quiet {
				level = slog.LevelDebug
			}
			if panicked != nil {
				level = slog.LevelError
			}
			attrs := []any{
				"request_id", id,
				"method", r.Method,
				"route", route,
				"path", r.URL.Path,
				"status", sr.code,
				"bytes", sr.bytes,
				"duration_ms", float64(elapsed.Microseconds())/1e3,
			}
			if panicked != nil {
				attrs = append(attrs, "panic", fmt.Sprint(panicked),
					"stack", string(debug.Stack()))
			}
			s.log.Log(r.Context(), level, "http request", attrs...)
		}()
		h(sr, r)
	}
}
