package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/autoclass"
	"repro/internal/dataset"
	"repro/internal/obs"
)

// AttrSpec describes one dataset column on the wire.
type AttrSpec struct {
	Name string `json:"name"`
	// Type is "real" or "discrete".
	Type string `json:"type"`
	// Levels names a discrete attribute's categories; empty for real.
	Levels []string `json:"levels,omitempty"`
}

// SearchSpec overrides the paper-default search settings per job. Zero
// fields keep the defaults.
type SearchSpec struct {
	StartJList []int   `json:"start_j_list,omitempty"`
	Tries      int     `json:"tries,omitempty"`
	Seed       *uint64 `json:"seed,omitempty"`
	MaxCycles  int     `json:"max_cycles,omitempty"`
	RelDelta   float64 `json:"rel_delta,omitempty"`
	// Parallelism is the intra-rank worker count of each rank's engine
	// (see autoclass.Config.Parallelism).
	Parallelism int `json:"parallelism,omitempty"`
}

// JobRequest is the POST /v1/jobs body: the training data inline (null
// encodes a missing value — JSON has no NaN) plus optional search and
// machine-shape overrides.
type JobRequest struct {
	Name  string       `json:"name"`
	Attrs []AttrSpec   `json:"attrs"`
	Rows  [][]*float64 `json:"rows"`
	// Search overrides the default BIG_LOOP configuration.
	Search *SearchSpec `json:"search,omitempty"`
	// Procs overrides the server's default rank count for this job.
	Procs int `json:"procs,omitempty"`
}

// JobStatus is the GET /v1/jobs/{id} body.
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// RequestID is the submitting HTTP request's ID (X-Request-Id), kept
	// so logs and statuses correlate back to the original submission.
	RequestID string `json:"request_id,omitempty"`
	Error     string `json:"error,omitempty"`
	ModelID   string `json:"model_id,omitempty"`
	// Fitted-model summary, present once done.
	J         int       `json:"j,omitempty"`
	Score     float64   `json:"score,omitempty"`
	Cycles    int       `json:"cycles,omitempty"`
	Converged bool      `json:"converged,omitempty"`
	Created   time.Time `json:"created"`
	Updated   time.Time `json:"updated"`
}

// PredictRequest is the POST /v1/models/{id}/predict body. Rows follow the
// model's training schema; null encodes a missing value.
type PredictRequest struct {
	Rows [][]*float64 `json:"rows"`
	// Version pins a registered model version; 0 means the active one.
	Version int `json:"version,omitempty"`
	// Parallelism is accepted for backward compatibility and ignored: the
	// server owns scoring parallelism (Config.PredictParallelism), and
	// parallelism never changes the result bits.
	Parallelism int `json:"parallelism,omitempty"`
}

// PublishRequest is the POST /v1/models body: copy a finished job's fitted
// model into the registry as the next version of ID.
type PublishRequest struct {
	ID    string `json:"id"`
	JobID string `json:"job_id"`
	// Activate controls whether the new version starts serving unpinned
	// traffic. Nil means true; a model's first version always activates.
	Activate *bool `json:"activate,omitempty"`
}

// PublishResponse acknowledges a publish.
type PublishResponse struct {
	ID      string       `json:"id"`
	Version ModelVersion `json:"version"`
	// Active is the version now serving unpinned traffic.
	Active int `json:"active"`
}

// ActivateRequest is the POST /v1/models/{id}/activate body.
type ActivateRequest struct {
	Version int `json:"version"`
}

// ModelInfo is the GET /v1/models[/{id}] element: the registry entry plus
// live serving stats.
type ModelInfo struct {
	ID       string         `json:"id"`
	Active   int            `json:"active"`
	Versions []ModelVersion `json:"versions"`
	// WarmCaches counts the live per-version warm kernel caches.
	WarmCaches int `json:"warm_caches"`
	// Cache is the model's response-cache accounting.
	Cache CacheStats `json:"cache"`
}

// PredictResponse mirrors autoclass.Prediction.
type PredictResponse struct {
	N           int         `json:"n"`
	J           int         `json:"j"`
	MAP         []int       `json:"map"`
	LogLik      float64     `json:"loglik"`
	Memberships [][]float64 `json:"memberships"`
}

func (s *Server) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	// Every route goes through instrument, which uses the pattern string
	// (not the raw path) as the metric route label. go.mod targets 1.22,
	// so the pattern is passed explicitly rather than read from the
	// request (http.Request.Pattern is 1.23+).
	route := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.instrument(pattern, h))
	}
	route("POST /v1/jobs", s.handleSubmit)
	route("GET /v1/jobs", s.handleJobs)
	route("GET /v1/jobs/{id}", s.handleJob)
	route("GET /v1/jobs/{id}/progress", s.handleProgress)
	route("GET /v1/models", s.handleModels)
	route("POST /v1/models", s.handlePublish)
	route("GET /v1/models/{id}", s.handleModel)
	route("POST /v1/models/{id}/activate", s.handleActivate)
	route("POST /v1/models/{id}/predict", s.handlePredict)
	route("GET /metrics", s.handleMetrics)
	route("GET /metrics.json", s.handleMetricsJSON)
	route("GET /debug/trace", s.handleTrace)
	route("GET /healthz", s.handleHealthz)
	route("GET /readyz", s.handleReadyz)
	if s.cfg.EnablePprof {
		// Left uninstrumented: profiles stream for their whole duration
		// and would distort the latency histograms.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func writeBody(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", obs.ContentTypeJSON)
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// decodeBody reads a JSON request body under the server's size limit,
// writing the error response itself on failure.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			httpError(w, http.StatusRequestEntityTooLarge, CodeRequestTooLarge,
				"request body exceeds the %d byte limit", mbe.Limit)
			return false
		}
		httpError(w, http.StatusBadRequest, CodeInvalidRequest, "decode request: %v", err)
		return false
	}
	return true
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if err := validateJob(&req); err != nil {
		httpError(w, http.StatusBadRequest, CodeInvalidRequest, "%v", err)
		return
	}
	st, err := s.submit(req, w.Header().Get("X-Request-Id"))
	if err != nil {
		code := CodeShuttingDown
		if errors.Is(err, errJobQueueFull) {
			code = CodeQueueFull
		}
		retryAfter(w, 1)
		httpError(w, http.StatusServiceUnavailable, code, "%v", err)
		return
	}
	writeBody(w, http.StatusAccepted, st)
}

// validateJob rejects requests the runner could only fail on, so bad input
// surfaces synchronously instead of as a failed job.
func validateJob(req *JobRequest) error {
	if req.Name == "" {
		req.Name = "job"
	}
	if len(req.Rows) == 0 {
		return errors.New("no rows")
	}
	if req.Procs < 0 || req.Procs > maxProcs {
		return fmt.Errorf("procs %d out of range [1,%d]", req.Procs, maxProcs)
	}
	if _, err := searchConfig(req.Search); err != nil {
		return err
	}
	// Building the dataset validates the schema and every value (discrete
	// levels in range, row lengths, at least one attribute).
	_, err := buildDataset(req.Name, req.Attrs, req.Rows)
	return err
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	list := make([]JobStatus, 0, len(s.jobs))
	for _, j := range s.jobs {
		list = append(list, j.Status)
	}
	s.mu.Unlock()
	sort.Slice(list, func(a, b int) bool {
		na, _ := strconv.Atoi(list[a].ID)
		nb, _ := strconv.Atoi(list[b].ID)
		return na < nb
	})
	writeBody(w, http.StatusOK, map[string]any{"jobs": list})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	st, ok := s.status(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, CodeNotFound, "no job %q", r.PathValue("id"))
		return
	}
	writeBody(w, http.StatusOK, st)
}

// handlePredict is the batched, cached, admission-controlled scoring
// route. Request flow: resolve the servable model version → response-cache
// lookup → admission (global in-flight cap, per-version bounded queue) →
// coalesced scoring on the version's batcher → cache fill.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req PredictRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Rows) == 0 {
		httpError(w, http.StatusBadRequest, CodeInvalidRequest, "no rows")
		return
	}
	if req.Version < 0 {
		httpError(w, http.StatusBadRequest, CodeInvalidRequest, "version %d < 0", req.Version)
		return
	}

	var (
		m   *loadedModel
		key batcherKey
		err error
	)
	if v, attrs, found := s.models.resolve(id, req.Version); found {
		switch {
		case v == 0 && req.Version != 0:
			httpError(w, http.StatusNotFound, CodeNotFound, "model %q has no version %d", id, req.Version)
			return
		case v == 0:
			httpError(w, http.StatusConflict, CodeModelNotReady, "model %q has no active version", id)
			return
		}
		m, err = s.registryModel(id, v, attrs)
		if err != nil {
			httpError(w, http.StatusInternalServerError, CodeInternal, "%v", err)
			return
		}
		key = batcherKey{model: id, version: v}
	} else {
		// Deprecated: predicting by bare job ID, bypassing the registry.
		if req.Version != 0 {
			httpError(w, http.StatusBadRequest, CodeInvalidRequest,
				"version pins require a registered model; %q is not registered", id)
			return
		}
		m, err = s.jobModel(id)
		if err != nil {
			httpError(w, http.StatusNotFound, CodeNotFound, "%v", err)
			return
		}
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", `</v1/models>; rel="successor-version"`)
		key = batcherKey{model: id, version: 0}
	}

	ds, err := buildDataset("predict", m.attrs, req.Rows)
	if err != nil {
		httpError(w, http.StatusBadRequest, CodeInvalidRequest, "%v", err)
		return
	}

	ck := cacheKey{model: id, version: key.version, rows: hashRows(ds)}
	if body := s.cache.get(ck); body != nil {
		s.cCacheHits.Add(1)
		s.writePredict(w, body, "hit")
		return
	}
	s.cCacheMisses.Add(1)

	if s.stopping.Load() {
		retryAfter(w, 1)
		httpError(w, http.StatusServiceUnavailable, CodeShuttingDown, "server is shutting down")
		return
	}
	inflight := s.predInF.Add(1)
	defer s.predInF.Add(-1)
	s.gPredActive.Add(1)
	defer s.gPredActive.Add(-1)
	if int(inflight) > s.cfg.PredictMaxInflight {
		s.cRejected.Add(1)
		retryAfter(w, 1)
		httpError(w, http.StatusServiceUnavailable, CodeOverloaded,
			"predict capacity exhausted (%d requests in flight)", inflight-1)
		return
	}

	b, err := s.batcherFor(key, m)
	if err != nil {
		retryAfter(w, 1)
		httpError(w, http.StatusServiceUnavailable, CodeShuttingDown, "%v", err)
		return
	}
	job := &predictJob{ds: ds, resp: make(chan predictOut, 1)}
	select {
	case b.queue <- job:
		s.gPredQueue.Add(1)
	default:
		s.cRejected.Add(1)
		retryAfter(w, 1)
		httpError(w, http.StatusTooManyRequests, CodeQueueFull,
			"predict queue for model %q is full", id)
		return
	}
	var out predictOut
	select {
	case out = <-job.resp:
	case <-s.stop:
		retryAfter(w, 1)
		httpError(w, http.StatusServiceUnavailable, CodeShuttingDown, "server is shutting down")
		return
	}
	if out.err != nil {
		httpError(w, http.StatusInternalServerError, CodeInternal, "%v", out.err)
		return
	}
	s.cPredicts.Add(1)
	s.cPredictRows.Add(float64(out.resp.N))
	body, err := json.Marshal(out.resp)
	if err != nil {
		httpError(w, http.StatusInternalServerError, CodeInternal, "%v", err)
		return
	}
	// Trailing newline matches json.Encoder output, so cached replays are
	// byte-identical to the pre-cache wire format.
	body = append(body, '\n')
	s.cache.put(ck, body)
	s.writePredict(w, body, "miss")
}

// writePredict writes a prediction body with its cache disposition.
func (s *Server) writePredict(w http.ResponseWriter, body []byte, disposition string) {
	w.Header().Set("X-Cache", disposition)
	w.Header().Set("Content-Type", obs.ContentTypeJSON)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// handlePublish copies a finished job's fitted model into the registry.
func (s *Server) handlePublish(w http.ResponseWriter, r *http.Request) {
	var req PublishRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if err := validModelID(req.ID); err != nil {
		httpError(w, http.StatusBadRequest, CodeInvalidRequest, "%v", err)
		return
	}
	st, ok := s.status(req.JobID)
	if !ok {
		httpError(w, http.StatusNotFound, CodeNotFound, "no job %q", req.JobID)
		return
	}
	if st.State != StateDone {
		httpError(w, http.StatusConflict, CodeModelNotReady, "job %s is %s, not done", req.JobID, st.State)
		return
	}
	s.mu.Lock()
	attrs := append([]AttrSpec(nil), s.jobs[req.JobID].Req.Attrs...)
	s.mu.Unlock()
	activate := req.Activate == nil || *req.Activate
	ver, active, err := s.models.publish(req.ID, req.JobID, attrs, st.J, st.Score,
		s.jobPath(req.JobID, "model.ckpt"), activate)
	if err != nil {
		httpError(w, http.StatusInternalServerError, CodeInternal, "%v", err)
		return
	}
	if active == ver.Version {
		// The active version changed; cached responses for the old one
		// must not answer unpinned requests.
		s.cache.invalidate(req.ID)
	}
	s.log.Info("model published", "model", req.ID, "version", ver.Version,
		"job_id", req.JobID, "active", active)
	writeBody(w, http.StatusCreated, PublishResponse{ID: req.ID, Version: ver, Active: active})
}

// handleActivate switches which version serves unpinned predict traffic.
func (s *Server) handleActivate(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req ActivateRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Version < 1 {
		httpError(w, http.StatusBadRequest, CodeInvalidRequest, "version %d < 1", req.Version)
		return
	}
	if _, ok := s.models.get(id); !ok {
		httpError(w, http.StatusNotFound, CodeNotFound, "no model %q", id)
		return
	}
	if err := s.models.activate(id, req.Version); err != nil {
		httpError(w, http.StatusNotFound, CodeNotFound, "%v", err)
		return
	}
	s.cache.invalidate(id)
	s.log.Info("model activated", "model", id, "version", req.Version)
	m, _ := s.models.get(id)
	writeBody(w, http.StatusOK, s.modelInfo(m))
}

func (s *Server) modelInfo(m regModel) ModelInfo {
	return ModelInfo{
		ID:         m.ID,
		Active:     m.Active,
		Versions:   m.Versions,
		WarmCaches: s.warmBatchers(m.ID),
		Cache:      s.cache.stats(m.ID),
	}
}

// handleModels lists the registry.
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	entries := s.models.list()
	infos := make([]ModelInfo, len(entries))
	for i, m := range entries {
		infos[i] = s.modelInfo(m)
	}
	writeBody(w, http.StatusOK, map[string]any{"models": infos})
}

// handleModel details one registry entry with its serving stats.
func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	m, ok := s.models.get(id)
	if !ok {
		httpError(w, http.StatusNotFound, CodeNotFound, "no model %q", id)
		return
	}
	writeBody(w, http.StatusOK, s.modelInfo(m))
}

// handleMetrics serves the Prometheus text exposition by default; clients
// that ask for JSON (Accept: application/json) get the legacy snapshot
// shape, also available unconditionally at /metrics.json.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if strings.Contains(r.Header.Get("Accept"), "application/json") {
		s.handleMetricsJSON(w, r)
		return
	}
	s.mu.Lock()
	run := s.lastRun
	s.mu.Unlock()
	// The server registry and the last run's per-rank registries export as
	// one scrape, distinguished by fixed labels. Metric reads are atomic,
	// so scraping during a live run is safe.
	exps := []obs.Expo{{Reg: s.reg, Labels: []obs.Label{{Name: "registry", Value: "server"}}}}
	for i := 0; i < run.Ranks(); i++ {
		exps = append(exps, obs.Expo{Reg: run.Rank(i).Registry(), Labels: []obs.Label{
			{Name: "registry", Value: "run"},
			{Name: "rank", Value: strconv.Itoa(i)},
		}})
	}
	w.Header().Set("Content-Type", obs.ContentTypeText)
	w.WriteHeader(http.StatusOK)
	// Write errors mean a dropped scrape connection; nothing to do.
	_ = obs.WritePrometheus(w, exps...)
}

// handleMetricsJSON serves the JSON snapshot shape /metrics used before
// the Prometheus exposition existed.
func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	run := s.lastRun
	s.mu.Unlock()
	body := struct {
		Server obs.Snapshot  `json:"server"`
		Run    *obs.Snapshot `json:"run,omitempty"`
	}{Server: s.reg.Snapshot()}
	if run != nil {
		// Counters aggregate through atomics, so snapshotting a live
		// run's registry is safe.
		snap := run.Aggregate().Snapshot()
		body.Run = &snap
	}
	writeBody(w, http.StatusOK, body)
}

// handleProgress serves the live BIG_LOOP progress of a job.
func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	jp, ok := s.jobProgress(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, CodeNotFound, "no job %q", r.PathValue("id"))
		return
	}
	writeBody(w, http.StatusOK, jp)
	// Progress is polled while a search runs; push the snapshot out
	// immediately rather than letting it sit in the server's write buffer.
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	run := s.lastRun
	busy := s.running != ""
	s.mu.Unlock()
	if run == nil {
		httpError(w, http.StatusNotFound, CodeNotFound, "no training run has executed yet")
		return
	}
	if busy {
		// The tracer's event tracks are append-only without locks; export
		// only between runs.
		httpError(w, http.StatusConflict, CodeConflict, "a job is running; retry when it finishes")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	run.WriteChromeTrace(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n := len(s.jobs)
	running := s.running
	s.mu.Unlock()
	writeBody(w, http.StatusOK, map[string]any{"status": "ok", "jobs": n, "running": running})
}

// handleReadyz reports readiness: the job store is loaded (true once New
// returns) and the runner still accepts work. A shutting-down server
// returns 503 so load balancers drain it.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed || s.stopping.Load() {
		writeBody(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reason": "shutting down"})
		return
	}
	writeBody(w, http.StatusOK, map[string]any{"ready": true})
}

// buildDataset materializes a wire-format table as an engine dataset. A nil
// rows slice builds a schema-only dataset (model restore needs no rows).
func buildDataset(name string, specs []AttrSpec, rows [][]*float64) (*dataset.Dataset, error) {
	if len(specs) == 0 {
		return nil, errors.New("no attributes")
	}
	attrs := make([]dataset.Attribute, len(specs))
	for k, a := range specs {
		attr := dataset.Attribute{Name: a.Name, Levels: a.Levels}
		switch a.Type {
		case "real":
			attr.Type = dataset.Real
		case "discrete":
			attr.Type = dataset.Discrete
		default:
			return nil, fmt.Errorf("attribute %d (%q): unknown type %q (want \"real\" or \"discrete\")", k, a.Name, a.Type)
		}
		attrs[k] = attr
	}
	ds, err := dataset.New(name, attrs)
	if err != nil {
		return nil, err
	}
	buf := make([]float64, len(attrs))
	for i, row := range rows {
		if len(row) != len(attrs) {
			return nil, fmt.Errorf("row %d has %d values, schema has %d attributes", i, len(row), len(attrs))
		}
		for k, v := range row {
			if v == nil {
				buf[k] = dataset.Missing
			} else {
				buf[k] = *v
			}
		}
		if err := ds.AppendRow(buf); err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
	}
	return ds, nil
}

// searchConfig maps the wire overrides onto the paper-default search
// configuration.
func searchConfig(sp *SearchSpec) (autoclass.SearchConfig, error) {
	cfg := autoclass.DefaultSearchConfig()
	if sp == nil {
		return cfg, nil
	}
	if len(sp.StartJList) > 0 {
		cfg.StartJList = append([]int(nil), sp.StartJList...)
	}
	if sp.Tries > 0 {
		cfg.Tries = sp.Tries
	}
	if sp.Seed != nil {
		cfg.Seed = *sp.Seed
	}
	if sp.MaxCycles > 0 {
		cfg.EM.MaxCycles = sp.MaxCycles
	}
	if sp.RelDelta > 0 {
		cfg.EM.RelDelta = sp.RelDelta
	}
	if sp.Parallelism != 0 {
		cfg.EM.Parallelism = sp.Parallelism
	}
	for _, j := range cfg.StartJList {
		if j < 1 {
			return cfg, fmt.Errorf("start_j_list entry %d < 1", j)
		}
	}
	if sp.Tries < 0 || sp.MaxCycles < 0 || sp.RelDelta < 0 {
		return cfg, errors.New("negative search setting")
	}
	return cfg, nil
}
