package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// The model registry: named, versioned, explicitly published models. A
// training job produces one fitted classification; publishing copies that
// artifact into the registry under a caller-chosen model ID as the next
// version. Versions are immutable once published; which version serves
// unpinned predict traffic is a separate, explicit activation step.
//
// Everything lives under <dir>/registry/:
//
//	registry.json     — the full registry state (atomic tmp+rename)
//	<id>/v<N>.ckpt    — the published model artifacts, content-addressed
//	                    by the sha256 recorded in registry.json
//
// A restarted daemon reloads registry.json and serves the same versions
// with the same bits: artifacts are verified against their recorded
// checksum when first loaded.

// ModelVersion describes one published, immutable model artifact.
type ModelVersion struct {
	Version int    `json:"version"`
	JobID   string `json:"job_id"`
	// Fitted-model summary copied from the producing job.
	J     int     `json:"j"`
	Score float64 `json:"score"`
	// Checksum is the hex sha256 of the checkpoint file, verified on load.
	Checksum string    `json:"checksum"`
	Created  time.Time `json:"created"`
}

// regModel is one registry entry.
type regModel struct {
	ID string `json:"id"`
	// Active is the version serving unpinned predicts; 0 means none.
	Active   int            `json:"active"`
	Versions []ModelVersion `json:"versions"`
	// Attrs is the training schema, needed to restore the checkpoint and
	// validate predict rows. Fixed by the first published version.
	Attrs []AttrSpec `json:"attrs"`
}

type registryState struct {
	Models map[string]*regModel `json:"models"`
}

// registry is the in-memory registry plus its persistence. It has its own
// lock so model publication never contends with the job runner.
type registry struct {
	dir string
	mu  sync.Mutex
	st  registryState
}

func openRegistry(dir string) (*registry, error) {
	r := &registry{dir: dir, st: registryState{Models: map[string]*regModel{}}}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: registry directory: %w", err)
	}
	path := filepath.Join(dir, "registry.json")
	if _, err := os.Stat(path); err == nil {
		if err := readJSON(path, &r.st); err != nil {
			return nil, fmt.Errorf("serve: load registry: %w", err)
		}
		if r.st.Models == nil {
			r.st.Models = map[string]*regModel{}
		}
	}
	return r, nil
}

// persist writes registry.json atomically. Callers hold r.mu.
func (r *registry) persist() error {
	return writeJSON(filepath.Join(r.dir, "registry.json"), &r.st)
}

func (r *registry) versionPath(id string, v int) string {
	return filepath.Join(r.dir, id, fmt.Sprintf("v%d.ckpt", v))
}

// validModelID enforces the registry ID grammar: 1..64 chars drawn from
// [A-Za-z0-9._-], at least one non-digit. Purely numeric names are
// reserved for the deprecated job-ID predict fallback, and the charset
// keeps IDs safe as path elements.
func validModelID(id string) error {
	if id == "" || len(id) > 64 {
		return errors.New("model id must be 1..64 characters")
	}
	digits := 0
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9':
			digits++
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '.' || c == '_' || c == '-':
		default:
			return fmt.Errorf("model id contains %q; allowed: letters, digits, '.', '_', '-'", c)
		}
	}
	if digits == len(id) {
		return errors.New("purely numeric model ids are reserved for job ids")
	}
	if id == "." || id == ".." {
		return errors.New("model id must not be a relative path element")
	}
	return nil
}

// publish copies the artifact at srcCkpt into the registry as the next
// version of id, creating the model on first publish. attrs/j/score come
// from the producing job. When activate is true (or this is the model's
// first version) the new version becomes active.
func (r *registry) publish(id, jobID string, attrs []AttrSpec, j int, score float64, srcCkpt string, activate bool) (ModelVersion, int, error) {
	if err := validModelID(id); err != nil {
		return ModelVersion{}, 0, err
	}
	art, err := os.ReadFile(srcCkpt)
	if err != nil {
		return ModelVersion{}, 0, fmt.Errorf("read model artifact: %w", err)
	}
	sum := sha256.Sum256(art)

	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.st.Models[id]
	if m == nil {
		m = &regModel{ID: id, Attrs: attrs}
		r.st.Models[id] = m
	}
	next := 1
	if n := len(m.Versions); n > 0 {
		next = m.Versions[n-1].Version + 1
	}
	ver := ModelVersion{
		Version:  next,
		JobID:    jobID,
		J:        j,
		Score:    score,
		Checksum: hex.EncodeToString(sum[:]),
		Created:  time.Now().UTC(),
	}
	dst := r.versionPath(id, next)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return ModelVersion{}, 0, err
	}
	// Artifact first, registry.json second: a crash between the two leaves
	// an orphaned file, never a registered version without its bits.
	tmp := dst + ".tmp"
	if err := os.WriteFile(tmp, art, 0o644); err != nil {
		return ModelVersion{}, 0, err
	}
	if err := os.Rename(tmp, dst); err != nil {
		return ModelVersion{}, 0, err
	}
	m.Versions = append(m.Versions, ver)
	if activate || m.Active == 0 {
		m.Active = next
	}
	if err := r.persist(); err != nil {
		// Roll the in-memory state back so memory and disk agree.
		m.Versions = m.Versions[:len(m.Versions)-1]
		if m.Active == next {
			m.Active = 0
			if n := len(m.Versions); n > 0 {
				m.Active = m.Versions[n-1].Version
			}
		}
		if len(m.Versions) == 0 {
			delete(r.st.Models, id)
		}
		return ModelVersion{}, 0, err
	}
	return ver, m.Active, nil
}

// activate makes version v of id serve unpinned predict traffic.
func (r *registry) activate(id string, v int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.st.Models[id]
	if m == nil {
		return fmt.Errorf("no model %q", id)
	}
	if !m.hasVersion(v) {
		return fmt.Errorf("model %q has no version %d", id, v)
	}
	prev := m.Active
	m.Active = v
	if err := r.persist(); err != nil {
		m.Active = prev
		return err
	}
	return nil
}

func (m *regModel) hasVersion(v int) bool {
	for _, ver := range m.Versions {
		if ver.Version == v {
			return true
		}
	}
	return false
}

// resolve maps (id, pin) to the version to serve: the pin when given,
// otherwise the active version. found=false means no such model; v=0 with
// found=true means the model exists but nothing is servable.
func (r *registry) resolve(id string, pin int) (v int, attrs []AttrSpec, found bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.st.Models[id]
	if m == nil {
		return 0, nil, false
	}
	if pin != 0 {
		if !m.hasVersion(pin) {
			return 0, m.Attrs, true
		}
		return pin, m.Attrs, true
	}
	return m.Active, m.Attrs, true
}

// get returns a deep-enough copy of one model's registry entry.
func (r *registry) get(id string) (regModel, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.st.Models[id]
	if m == nil {
		return regModel{}, false
	}
	cp := *m
	cp.Versions = append([]ModelVersion(nil), m.Versions...)
	cp.Attrs = append([]AttrSpec(nil), m.Attrs...)
	return cp, true
}

// list returns every model entry sorted by ID.
func (r *registry) list() []regModel {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]regModel, 0, len(r.st.Models))
	for _, m := range r.st.Models {
		cp := *m
		cp.Versions = append([]ModelVersion(nil), m.Versions...)
		cp.Attrs = append([]AttrSpec(nil), m.Attrs...)
		out = append(out, cp)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// checksum looks up the recorded artifact checksum of (id, v).
func (r *registry) checksum(id string, v int) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.st.Models[id]
	if m == nil {
		return "", false
	}
	for _, ver := range m.Versions {
		if ver.Version == v {
			return ver.Checksum, true
		}
	}
	return "", false
}
