package serve

import (
	"fmt"

	"repro/internal/autoclass"
	"repro/internal/dataset"
	"repro/internal/mpi"
	"repro/internal/pautoclass"
)

// Request batching: each servable model version gets one batcher — a
// bounded queue plus a dispatcher goroutine that owns a warm
// autoclass.Predictor (cached kernels, reused buffers). Concurrent predict
// requests against the same version coalesce into a single scoring pass:
// the dispatcher drains whatever is queued (up to Config.PredictMaxBatchRows
// rows), lays the requests out back to back with each one padded to the
// next KernelBlockRows multiple by all-missing rows, scores once, and
// slices the results back per request.
//
// Coalescing is invisible in the bits. Every per-row output is a pure
// function of that row; padding rows land in their own kernel blocks (the
// per-request alignment guarantees no block straddles two requests) and are
// sliced away; and each request's log-likelihood is rebuilt from the
// gathered per-row log-evidence with autoclass.FoldRowLogLik — the exact
// association of scoring that request alone. TestFoldRowLogLikSubBatch
// (autoclass) proves the layout identity; TestServeBatchingBitwise proves
// it end to end over HTTP.
//
// Scale-out mode (Config.PredictProcs > 1) swaps the warm single-process
// scorer for pautoclass.Predict: the same batch sharded across ranks on
// the in-process or loopback-TCP transport, bitwise identical again
// (TestPredictRanksBitwise).

// predictJob is one HTTP request's unit of work.
type predictJob struct {
	ds *dataset.Dataset
	// resp is buffered so the dispatcher's send never blocks on a client
	// that gave up (Close unblocks waiters through s.stop).
	resp chan predictOut
}

type predictOut struct {
	resp *PredictResponse
	err  error
}

// batcherKey identifies one servable model version. Legacy job-ID predicts
// use the numeric job ID with version 0 — disjoint from registry IDs,
// which are never purely numeric.
type batcherKey struct {
	model   string
	version int
}

type batcher struct {
	s     *Server
	key   batcherKey
	cls   *autoclass.Classification
	attrs []dataset.Attribute
	queue chan *predictJob

	// Dispatcher-owned warm state; never touched from other goroutines.
	pred *autoclass.Predictor
	buf  *autoclass.Prediction
}

// batcherFor returns (creating on first use) the batcher serving key.
func (s *Server) batcherFor(key batcherKey, m *loadedModel) (*batcher, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.batchers[key]; ok {
		return b, nil
	}
	if s.closed {
		return nil, fmt.Errorf("server is shutting down")
	}
	schema, err := buildDataset("batch", m.attrs, nil)
	if err != nil {
		return nil, err
	}
	b := &batcher{
		s:     s,
		key:   key,
		cls:   m.cls,
		attrs: schema.Attrs(),
		queue: make(chan *predictJob, s.cfg.PredictQueueDepth),
	}
	s.batchers[key] = b
	s.batcherWG.Add(1)
	go b.run()
	return b, nil
}

// warmBatchers counts the live per-version kernel caches of one model.
func (s *Server) warmBatchers(model string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for k := range s.batchers {
		if k.model == model {
			n++
		}
	}
	return n
}

// run is the dispatcher loop: block for one job, greedily coalesce
// whatever else is queued, score once, answer everyone.
func (b *batcher) run() {
	defer b.s.batcherWG.Done()
	maxRows := b.s.cfg.PredictMaxBatchRows
	for {
		select {
		case <-b.s.stop:
			return
		case j := <-b.queue:
			jobs := []*predictJob{j}
			rows := j.ds.N()
		coalesce:
			for rows < maxRows {
				select {
				case j2 := <-b.queue:
					jobs = append(jobs, j2)
					rows += j2.ds.N()
				default:
					break coalesce
				}
			}
			b.s.gPredQueue.Add(float64(-len(jobs)))
			b.dispatch(jobs, rows)
		}
	}
}

// dispatch scores one coalesced batch and answers every job in it.
func (b *batcher) dispatch(jobs []*predictJob, rows int) {
	b.s.hBatchRows.Observe(float64(rows))
	b.s.hBatchReqs.Observe(float64(len(jobs)))

	if len(jobs) == 1 {
		// Single request: score it directly, no copy, no padding.
		p, err := b.score(jobs[0].ds)
		if err != nil {
			jobs[0].resp <- predictOut{err: err}
			return
		}
		jobs[0].resp <- predictOut{resp: sliceResponse(p, 0, jobs[0].ds.N())}
		return
	}

	// Coalesced: requests back to back, each padded to the block grid.
	batch, err := dataset.New("batch", b.attrs)
	if err != nil {
		b.fail(jobs, err)
		return
	}
	pad := make([]float64, len(b.attrs))
	for k := range pad {
		pad[k] = dataset.Missing
	}
	buf := make([]float64, len(b.attrs))
	offs := make([]int, len(jobs))
	for qi, j := range jobs {
		offs[qi] = batch.N()
		for i := 0; i < j.ds.N(); i++ {
			if err := batch.AppendRow(j.ds.RowTo(buf, i)); err != nil {
				b.fail(jobs, err)
				return
			}
		}
		for batch.N()%autoclass.KernelBlockRows != 0 {
			if err := batch.AppendRow(pad); err != nil {
				b.fail(jobs, err)
				return
			}
		}
	}
	p, err := b.score(batch)
	if err != nil {
		b.fail(jobs, err)
		return
	}
	for qi, j := range jobs {
		j.resp <- predictOut{resp: sliceResponse(p, offs[qi], j.ds.N())}
	}
}

func (b *batcher) fail(jobs []*predictJob, err error) {
	for _, j := range jobs {
		j.resp <- predictOut{err: err}
	}
}

// score runs one batch through the configured scorer with per-row
// log-evidence on, so sliceResponse can rebuild sub-batch log-likelihoods
// bitwise.
func (b *batcher) score(ds *dataset.Dataset) (*autoclass.Prediction, error) {
	cfg := autoclass.PredictConfig{Parallelism: b.s.cfg.PredictParallelism, RowLogLik: true}
	if procs := b.s.cfg.PredictProcs; procs > 1 {
		// Scale-out: shard the batch across predict worker ranks.
		run := mpi.Run
		if b.s.cfg.PredictTCP {
			run = mpi.RunTCP
		}
		var out *autoclass.Prediction
		err := run(procs, func(c *mpi.Comm) error {
			p, err := pautoclass.Predict(c, b.cls, ds, cfg)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				out = p
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	// Warm single-process path: kernels and buffers persist across calls.
	if b.pred == nil {
		pred, err := autoclass.NewPredictor(b.cls, cfg)
		if err != nil {
			return nil, err
		}
		b.pred = pred
		b.buf = &autoclass.Prediction{}
	}
	if err := b.pred.PredictInto(ds.All(), b.buf); err != nil {
		return nil, err
	}
	return b.buf, nil
}

// sliceResponse extracts one request's rows [off, off+n) from a scored
// batch. Memberships and MAP copy out (the batch buffer is reused);
// LogLik folds the request's own per-row log-evidence — bitwise what a
// standalone scoring returns.
func sliceResponse(p *autoclass.Prediction, off, n int) *PredictResponse {
	resp := &PredictResponse{
		N:           n,
		J:           p.J,
		MAP:         make([]int, n),
		LogLik:      autoclass.FoldRowLogLik(p.RowLL[off : off+n]),
		Memberships: make([][]float64, n),
	}
	copy(resp.MAP, p.MAP[off:off+n])
	for i := 0; i < n; i++ {
		resp.Memberships[i] = append([]float64(nil), p.Membership(off+i)...)
	}
	return resp
}
