package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/datagen"
)

// rawPost posts a JSON body and returns status, headers, and raw bytes.
func rawPost(t *testing.T, client *http.Client, url string, body any) (int, http.Header, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, out
}

// assertEnvelope checks both error shapes: the structured envelope with
// the expected stable code, and the deprecated flat string field.
func assertEnvelope(t *testing.T, body []byte, wantCode string) {
	t.Helper()
	var env ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("error body is not an envelope: %v (%s)", err, body)
	}
	if env.Error.Code != wantCode {
		t.Errorf("error code %q, want %q (%s)", env.Error.Code, wantCode, body)
	}
	if env.Error.Message == "" {
		t.Errorf("empty error message: %s", body)
	}
	if env.ErrorString != env.Error.Message {
		t.Errorf("legacy error_string %q != message %q", env.ErrorString, env.Error.Message)
	}
}

// trainDone submits a job and waits for it to finish, returning its ID.
func trainDone(t *testing.T, client *http.Client, base string, n int, seed uint64) string {
	t.Helper()
	req, _ := paperJob(t, n, seed, quickSpec)
	var st JobStatus
	if code := postJSON(t, client, base+"/v1/jobs", req, &st); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	waitState(t, client, base, st.ID, StateDone, 2*time.Minute)
	return st.ID
}

// predictBody builds a predict request over n held-out paper rows.
func predictBody(t *testing.T, n int, seed uint64) PredictRequest {
	t.Helper()
	ho, err := datagen.Paper(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	_, rows := wireRows(ho)
	return PredictRequest{Rows: rows}
}

// TestServeErrorEnvelope asserts the structured error envelope (stable
// code + message + legacy string field) on every failure class, including
// the backpressure statuses with their Retry-After headers.
func TestServeErrorEnvelope(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir(), Procs: 1, MaxBodyBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := ts.Client()

	// invalid_request: malformed JSON.
	resp, err := client.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d", resp.StatusCode)
	}
	assertEnvelope(t, body, CodeInvalidRequest)

	// request_too_large: a job body past MaxBodyBytes answers 413.
	big, _ := paperJob(t, 500, 7, quickSpec)
	code, _, body := rawPost(t, client, ts.URL+"/v1/jobs", big)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d", code)
	}
	assertEnvelope(t, body, CodeRequestTooLarge)

	// not_found on jobs and models.
	resp, err = client.Get(ts.URL + "/v1/jobs/999")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job: status %d", resp.StatusCode)
	}
	assertEnvelope(t, body, CodeNotFound)

	code, _, body = rawPost(t, client, ts.URL+"/v1/models/nope/activate", ActivateRequest{Version: 1})
	if code != http.StatusNotFound {
		t.Fatalf("activate missing model: status %d", code)
	}
	assertEnvelope(t, body, CodeNotFound)

	// invalid_request: publishing under a reserved numeric ID.
	code, _, body = rawPost(t, client, ts.URL+"/v1/models", PublishRequest{ID: "123", JobID: "1"})
	if code != http.StatusBadRequest {
		t.Fatalf("numeric model id: status %d", code)
	}
	assertEnvelope(t, body, CodeInvalidRequest)

	// not_found: publishing a job that does not exist.
	code, _, body = rawPost(t, client, ts.URL+"/v1/models", PublishRequest{ID: "m", JobID: "999"})
	if code != http.StatusNotFound {
		t.Fatalf("publish missing job: status %d", code)
	}
	assertEnvelope(t, body, CodeNotFound)
}

// TestServeAdmissionControl drives the two backpressure paths
// deterministically: the server-wide in-flight cap (503 overloaded) and a
// full per-model batching queue (429 queue_full), both with Retry-After.
func TestServeAdmissionControl(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir(), Procs: 1,
		PredictMaxInflight: 2, PredictQueueDepth: 2, PredictCacheEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := ts.Client()

	jobID := trainDone(t, client, ts.URL, 120, 11)
	code, _, _ := rawPost(t, client, ts.URL+"/v1/models",
		PublishRequest{ID: "prod", JobID: jobID})
	if code != http.StatusCreated {
		t.Fatalf("publish: status %d", code)
	}
	req := predictBody(t, 40, 91)

	// Saturate the global admission counter; the next request bounces.
	s.predInF.Add(int64(s.cfg.PredictMaxInflight))
	code, hdr, body := rawPost(t, client, ts.URL+"/v1/models/prod/predict", req)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("over inflight cap: status %d", code)
	}
	assertEnvelope(t, body, CodeOverloaded)
	if hdr.Get("Retry-After") == "" {
		t.Error("overloaded response missing Retry-After")
	}
	s.predInF.Add(-int64(s.cfg.PredictMaxInflight))

	// Fill a dispatcherless batcher's queue; enqueue must bounce 429.
	m, err := s.registryModel("prod", 1, s.mustAttrs(t, "prod"))
	if err != nil {
		t.Fatal(err)
	}
	stuck := &batcher{s: s, key: batcherKey{model: "prod", version: 1},
		cls: m.cls, queue: make(chan *predictJob, s.cfg.PredictQueueDepth)}
	for i := 0; i < s.cfg.PredictQueueDepth; i++ {
		stuck.queue <- &predictJob{resp: make(chan predictOut, 1)}
	}
	s.mu.Lock()
	s.batchers[stuck.key] = stuck
	s.mu.Unlock()
	code, hdr, body = rawPost(t, client, ts.URL+"/v1/models/prod/predict", req)
	if code != http.StatusTooManyRequests {
		t.Fatalf("full queue: status %d", code)
	}
	assertEnvelope(t, body, CodeQueueFull)
	if hdr.Get("Retry-After") == "" {
		t.Error("queue_full response missing Retry-After")
	}

	// shutting_down after Close (the handler keeps answering).
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	code, _, body = rawPost(t, client, ts.URL+"/v1/models/prod/predict", req)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-close predict: status %d", code)
	}
	assertEnvelope(t, body, CodeShuttingDown)
}

// mustAttrs pulls a registered model's schema.
func (s *Server) mustAttrs(t *testing.T, id string) []AttrSpec {
	t.Helper()
	m, ok := s.models.get(id)
	if !ok {
		t.Fatalf("no model %q", id)
	}
	return m.Attrs
}

// TestServeRegistryLifecycle covers publish/activate semantics, the
// listing endpoints, version pinning, and the deprecation of bare job-ID
// predicts.
func TestServeRegistryLifecycle(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir(), Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := ts.Client()

	job1 := trainDone(t, client, ts.URL, 150, 31)
	job2 := trainDone(t, client, ts.URL, 150, 57)

	// Publishing a still-working job is rejected; done jobs publish.
	var pub PublishResponse
	code, _, body := rawPost(t, client, ts.URL+"/v1/models", PublishRequest{ID: "prod", JobID: job1})
	if code != http.StatusCreated {
		t.Fatalf("publish v1: status %d (%s)", code, body)
	}
	if err := json.Unmarshal(body, &pub); err != nil {
		t.Fatal(err)
	}
	if pub.Version.Version != 1 || pub.Active != 1 || pub.Version.JobID != job1 {
		t.Fatalf("publish v1 returned %+v", pub)
	}
	if pub.Version.Checksum == "" {
		t.Error("published version has no checksum")
	}

	// Second publish without activation: v2 exists, v1 still serves.
	off := false
	code, _, body = rawPost(t, client, ts.URL+"/v1/models",
		PublishRequest{ID: "prod", JobID: job2, Activate: &off})
	if code != http.StatusCreated {
		t.Fatalf("publish v2: status %d", code)
	}
	json.Unmarshal(body, &pub)
	if pub.Version.Version != 2 || pub.Active != 1 {
		t.Fatalf("publish v2 returned %+v", pub)
	}

	// Listing and details agree.
	var list struct {
		Models []ModelInfo `json:"models"`
	}
	if code := getJSON(t, client, ts.URL+"/v1/models", &list); code != http.StatusOK {
		t.Fatalf("list models: %d", code)
	}
	if len(list.Models) != 1 || list.Models[0].ID != "prod" ||
		len(list.Models[0].Versions) != 2 || list.Models[0].Active != 1 {
		t.Fatalf("model list %+v", list.Models)
	}
	var info ModelInfo
	if code := getJSON(t, client, ts.URL+"/v1/models/prod", &info); code != http.StatusOK {
		t.Fatalf("get model: %d", code)
	}
	if info.Active != 1 || len(info.Versions) != 2 {
		t.Fatalf("model info %+v", info)
	}

	// Unpinned predict serves v1; pinned predicts reach both versions and
	// match the deprecated direct job-ID scoring byte for byte.
	req := predictBody(t, 80, 77)
	codeU, hdrU, bodyU := rawPost(t, client, ts.URL+"/v1/models/prod/predict", req)
	if codeU != http.StatusOK {
		t.Fatalf("unpinned predict: %d (%s)", codeU, bodyU)
	}
	if hdrU.Get("Deprecation") != "" {
		t.Error("registered-model predict carries a Deprecation header")
	}
	pin1 := req
	pin1.Version = 1
	_, _, bodyP1 := rawPost(t, client, ts.URL+"/v1/models/prod/predict", pin1)
	if !bytes.Equal(bodyU, bodyP1) {
		t.Error("unpinned response differs from the pinned active version")
	}
	pin2 := req
	pin2.Version = 2
	codeP2, _, bodyP2 := rawPost(t, client, ts.URL+"/v1/models/prod/predict", pin2)
	if codeP2 != http.StatusOK {
		t.Fatalf("pinned v2 predict: %d", codeP2)
	}
	if bytes.Equal(bodyP2, bodyP1) {
		t.Error("v1 and v2 (different training jobs) scored identically; suspicious")
	}
	codeJ, hdrJ, bodyJ := rawPost(t, client, ts.URL+"/v1/models/"+job2+"/predict", req)
	if codeJ != http.StatusOK {
		t.Fatalf("job-id predict: %d", codeJ)
	}
	if hdrJ.Get("Deprecation") != "true" {
		t.Errorf("bare job-ID predict missing Deprecation header, got %q", hdrJ.Get("Deprecation"))
	}
	if !bytes.Equal(bodyJ, bodyP2) {
		t.Error("pinned v2 differs from direct job scoring of the same artifact")
	}

	// Activation flips unpinned traffic to v2 (and the cache with it).
	code, _, _ = rawPost(t, client, ts.URL+"/v1/models/prod/activate", ActivateRequest{Version: 2})
	if code != http.StatusOK {
		t.Fatalf("activate v2: %d", code)
	}
	_, _, bodyU2 := rawPost(t, client, ts.URL+"/v1/models/prod/predict", req)
	if !bytes.Equal(bodyU2, bodyP2) {
		t.Error("post-activation unpinned response is not the v2 result (stale cache?)")
	}

	// Refusal paths: bad pin, pin on a job ID, model with no active
	// version.
	pinBad := req
	pinBad.Version = 9
	code, _, body = rawPost(t, client, ts.URL+"/v1/models/prod/predict", pinBad)
	if code != http.StatusNotFound {
		t.Fatalf("bad version pin: %d", code)
	}
	assertEnvelope(t, body, CodeNotFound)
	pinJob := req
	pinJob.Version = 1
	code, _, body = rawPost(t, client, ts.URL+"/v1/models/"+job1+"/predict", pinJob)
	if code != http.StatusBadRequest {
		t.Fatalf("version pin on job id: %d", code)
	}
	assertEnvelope(t, body, CodeInvalidRequest)
	code, _, _ = rawPost(t, client, ts.URL+"/v1/models",
		PublishRequest{ID: "staged", JobID: job1, Activate: &off})
	if code != http.StatusCreated {
		t.Fatalf("publish staged: %d", code)
	}
	// First publish always activates (nothing else can serve); deactivate
	// is not a thing, so build the no-active case directly.
	s.models.mu.Lock()
	s.models.st.Models["staged"].Active = 0
	s.models.mu.Unlock()
	code, _, body = rawPost(t, client, ts.URL+"/v1/models/staged/predict", req)
	if code != http.StatusConflict {
		t.Fatalf("no active version: %d", code)
	}
	assertEnvelope(t, body, CodeModelNotReady)
}

// TestServeBatchingBitwise is the tentpole acceptance test: concurrent
// clients with distinct request shapes force the batcher to coalesce, and
// every response must be byte-identical to the same request scored alone
// on an idle server — at 1 rank and with scale-out predict workers.
func TestServeBatchingBitwise(t *testing.T) {
	dir := t.TempDir()
	// Cache off: repeats must come from real scoring, not replay.
	s, err := New(Config{Dir: dir, Procs: 1, PredictCacheEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	client := ts.Client()

	jobID := trainDone(t, client, ts.URL, 200, 13)
	if code, _, _ := rawPost(t, client, ts.URL+"/v1/models",
		PublishRequest{ID: "prod", JobID: jobID}); code != http.StatusCreated {
		t.Fatal("publish failed")
	}

	// Request shapes off and on the 256-row kernel block grid.
	sizes := []int{1, 5, 64, 256, 257, 300}
	reqs := make([]PredictRequest, len(sizes))
	baseline := make([][]byte, len(sizes))
	for i, n := range sizes {
		reqs[i] = predictBody(t, n, uint64(100+i))
		code, _, body := rawPost(t, client, ts.URL+"/v1/models/prod/predict", reqs[i])
		if code != http.StatusOK {
			t.Fatalf("baseline %d: status %d (%s)", i, code, body)
		}
		baseline[i] = body
	}

	hammer := func(url string) {
		t.Helper()
		const rounds = 4
		var wg sync.WaitGroup
		errc := make(chan error, len(sizes)*rounds)
		for r := 0; r < rounds; r++ {
			for i := range reqs {
				i := i
				wg.Add(1)
				go func() {
					defer wg.Done()
					code, _, body := rawPost(t, client, url+"/v1/models/prod/predict", reqs[i])
					if code != http.StatusOK {
						errc <- fmt.Errorf("req %d: status %d (%s)", i, code, body)
						return
					}
					if !bytes.Equal(body, baseline[i]) {
						errc <- fmt.Errorf("req %d: coalesced response differs from solo baseline", i)
					}
				}()
			}
		}
		wg.Wait()
		close(errc)
		for err := range errc {
			t.Fatal(err)
		}
	}
	hammer(ts.URL)
	batched := s.reg.Snapshot()
	if batched.Counters["serve.predict.requests"] < float64(len(sizes)) {
		t.Errorf("predict counter did not advance: %+v", batched.Counters)
	}
	ts.Close()
	s.Close()

	// Scale-out predict workers over the same registry state: bitwise
	// identical to the single-process baselines at every rank count.
	for _, procs := range []int{2, 3} {
		s2, err := New(Config{Dir: dir, Procs: 1, PredictCacheEntries: -1, PredictProcs: procs})
		if err != nil {
			t.Fatal(err)
		}
		ts2 := httptest.NewServer(s2)
		client = ts2.Client()
		for i := range reqs {
			code, _, body := rawPost(t, client, ts2.URL+"/v1/models/prod/predict", reqs[i])
			if code != http.StatusOK {
				t.Fatalf("procs=%d req %d: status %d", procs, i, code)
			}
			if !bytes.Equal(body, baseline[i]) {
				t.Fatalf("procs=%d req %d: sharded response differs from single-process", procs, i)
			}
		}
		hammer(ts2.URL)
		ts2.Close()
		s2.Close()
	}
}

// TestServeResponseCache checks the LRU replay path: miss then
// byte-identical hit, stats accounting, and invalidation on activation so
// a stale version can never answer unpinned traffic.
func TestServeResponseCache(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir(), Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := ts.Client()

	job1 := trainDone(t, client, ts.URL, 160, 41)
	job2 := trainDone(t, client, ts.URL, 160, 67)
	if code, _, _ := rawPost(t, client, ts.URL+"/v1/models",
		PublishRequest{ID: "prod", JobID: job1}); code != http.StatusCreated {
		t.Fatal("publish v1 failed")
	}

	req := predictBody(t, 90, 55)
	code, hdr, first := rawPost(t, client, ts.URL+"/v1/models/prod/predict", req)
	if code != http.StatusOK || hdr.Get("X-Cache") != "miss" {
		t.Fatalf("first predict: status %d X-Cache %q", code, hdr.Get("X-Cache"))
	}
	code, hdr, second := rawPost(t, client, ts.URL+"/v1/models/prod/predict", req)
	if code != http.StatusOK || hdr.Get("X-Cache") != "hit" {
		t.Fatalf("second predict: status %d X-Cache %q", code, hdr.Get("X-Cache"))
	}
	if !bytes.Equal(first, second) {
		t.Error("cache replay is not byte-identical")
	}

	// Publish+activate v2: the cache entry for v1 must not answer the
	// same body anymore.
	if code, _, _ := rawPost(t, client, ts.URL+"/v1/models",
		PublishRequest{ID: "prod", JobID: job2}); code != http.StatusCreated {
		t.Fatal("publish v2 failed")
	}
	code, hdr, v2body := rawPost(t, client, ts.URL+"/v1/models/prod/predict", req)
	if code != http.StatusOK {
		t.Fatalf("post-activation predict: %d", code)
	}
	if hdr.Get("X-Cache") != "miss" {
		t.Errorf("post-activation predict served X-Cache %q, want miss", hdr.Get("X-Cache"))
	}
	if bytes.Equal(v2body, first) {
		t.Error("activation served the stale v1 response")
	}
	pin2 := req
	pin2.Version = 2
	_, _, pinned := rawPost(t, client, ts.URL+"/v1/models/prod/predict", pin2)
	if !bytes.Equal(v2body, pinned) {
		t.Error("unpinned post-activation response differs from pinned v2")
	}

	var info ModelInfo
	if code := getJSON(t, client, ts.URL+"/v1/models/prod", &info); code != http.StatusOK {
		t.Fatalf("model info: %d", code)
	}
	if info.Cache.Hits < 1 || info.Cache.Misses < 2 || info.Cache.Entries < 1 {
		t.Errorf("cache stats %+v", info.Cache)
	}
	if info.WarmCaches < 1 {
		t.Errorf("warm cache count %d, want >= 1", info.WarmCaches)
	}
}

// TestServePredictKillRestart is the predict-tier restart acceptance test:
// kill the daemon under live predict traffic, restart over the same state
// directory, and require the registry (versions, active pointer) and every
// response byte to survive.
func TestServePredictKillRestart(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(Config{Dir: dir, Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1)
	client := ts1.Client()

	job1 := trainDone(t, client, ts1.URL, 180, 3)
	job2 := trainDone(t, client, ts1.URL, 180, 9)
	off := false
	if code, _, _ := rawPost(t, client, ts1.URL+"/v1/models",
		PublishRequest{ID: "prod", JobID: job1}); code != http.StatusCreated {
		t.Fatal("publish v1 failed")
	}
	if code, _, _ := rawPost(t, client, ts1.URL+"/v1/models",
		PublishRequest{ID: "prod", JobID: job2, Activate: &off}); code != http.StatusCreated {
		t.Fatal("publish v2 failed")
	}

	req := predictBody(t, 70, 21)
	code, _, preKill := rawPost(t, client, ts1.URL+"/v1/models/prod/predict", req)
	if code != http.StatusOK {
		t.Fatalf("pre-kill predict: %d", code)
	}
	pin2 := req
	pin2.Version = 2
	_, _, preKillV2 := rawPost(t, client, ts1.URL+"/v1/models/prod/predict", pin2)

	// Kill mid-traffic: concurrent clients keep firing while Close runs.
	// In-flight requests either finish with the correct bytes or bounce
	// with a shutdown/transport error — never wrong data.
	var wg sync.WaitGroup
	stopTraffic := make(chan struct{})
	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(req)
			for {
				select {
				case <-stopTraffic:
					return
				default:
				}
				resp, err := client.Post(ts1.URL+"/v1/models/prod/predict",
					"application/json", bytes.NewReader(body))
				if err != nil {
					continue // connection torn down by the kill
				}
				got, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK && !bytes.Equal(got, preKill) {
					errc <- fmt.Errorf("mid-kill 200 with wrong bytes")
					return
				}
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	close(stopTraffic)
	wg.Wait()
	ts1.Close()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Restart: registry intact, same bits, cache warms back up.
	s2, err := New(Config{Dir: dir, Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	client = ts2.Client()

	var info ModelInfo
	if code := getJSON(t, client, ts2.URL+"/v1/models/prod", &info); code != http.StatusOK {
		t.Fatalf("model info after restart: %d", code)
	}
	if len(info.Versions) != 2 || info.Active != 1 {
		t.Fatalf("registry lost state across restart: %+v", info)
	}
	code, hdr, postKill := rawPost(t, client, ts2.URL+"/v1/models/prod/predict", req)
	if code != http.StatusOK {
		t.Fatalf("post-restart predict: %d", code)
	}
	if hdr.Get("X-Cache") != "miss" {
		t.Errorf("fresh server served X-Cache %q, want miss", hdr.Get("X-Cache"))
	}
	if !bytes.Equal(postKill, preKill) {
		t.Error("restart changed the active version's response bytes")
	}
	_, hdr, again := rawPost(t, client, ts2.URL+"/v1/models/prod/predict", req)
	if hdr.Get("X-Cache") != "hit" || !bytes.Equal(again, preKill) {
		t.Error("post-restart cache replay broken")
	}
	_, _, postKillV2 := rawPost(t, client, ts2.URL+"/v1/models/prod/predict", pin2)
	if !bytes.Equal(postKillV2, preKillV2) {
		t.Error("restart changed the pinned v2 response bytes")
	}

	// Activation after restart still flips and invalidates correctly.
	if code, _, _ := rawPost(t, client, ts2.URL+"/v1/models/prod/activate",
		ActivateRequest{Version: 2}); code != http.StatusOK {
		t.Fatal("activate v2 after restart failed")
	}
	_, _, flipped := rawPost(t, client, ts2.URL+"/v1/models/prod/predict", req)
	if !bytes.Equal(flipped, preKillV2) {
		t.Error("post-restart activation did not serve v2 bytes")
	}
}
