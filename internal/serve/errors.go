package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/obs"
)

// The /v1 error envelope. Every non-2xx response carries a structured
// error object with a stable machine-readable code:
//
//	{"error": {"code": "queue_full", "message": "..."}, "error_string": "..."}
//
// The flat "error_string" field repeats the message for clients written
// against the original {"error": "<string>"} shape; it is deprecated and
// will be dropped once the envelope has been out for a release.

// Stable error codes. These are API surface: clients dispatch on them, so
// existing values never change meaning.
const (
	// CodeInvalidRequest: the request body failed validation (bad JSON,
	// schema mismatch, empty rows, out-of-range settings). HTTP 400.
	CodeInvalidRequest = "invalid_request"
	// CodeRequestTooLarge: the request body exceeded Config.MaxBodyBytes.
	// HTTP 413.
	CodeRequestTooLarge = "request_too_large"
	// CodeNotFound: no such job, model, or model version. HTTP 404.
	CodeNotFound = "not_found"
	// CodeModelNotReady: the job or model exists but has nothing servable
	// yet (job still training, model with no active version). HTTP 409.
	CodeModelNotReady = "model_not_ready"
	// CodeConflict: the request is valid but clashes with current state
	// (duplicate publish, trace export during a run). HTTP 409.
	CodeConflict = "conflict"
	// CodeQueueFull: the predict batching queue for the target model is
	// full; retry after the Retry-After delay. HTTP 429.
	CodeQueueFull = "queue_full"
	// CodeOverloaded: the server-wide predict admission limit was hit;
	// retry after the Retry-After delay. HTTP 503.
	CodeOverloaded = "overloaded"
	// CodeShuttingDown: the server is draining; retry against another
	// replica. HTTP 503.
	CodeShuttingDown = "shutting_down"
	// CodeInternal: an unexpected server-side failure. HTTP 500.
	CodeInternal = "internal"
)

// ErrorBody is the structured error object inside the envelope.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorEnvelope is the body of every non-2xx /v1 response.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
	// ErrorString repeats Error.Message for pre-envelope clients.
	//
	// Deprecated: dispatch on Error.Code and read Error.Message.
	ErrorString string `json:"error_string"`
}

// httpError writes the error envelope. code is one of the Code constants
// above; status is the HTTP status it rides on.
func httpError(w http.ResponseWriter, status int, code string, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	w.Header().Set("Content-Type", obs.ContentTypeJSON)
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorEnvelope{
		Error:       ErrorBody{Code: code, Message: msg},
		ErrorString: msg,
	})
}

// retryAfter stamps the Retry-After header (seconds) on a backpressure
// response. Must run before the status is written.
func retryAfter(w http.ResponseWriter, seconds int) {
	w.Header().Set("Retry-After", strconv.Itoa(seconds))
}
