// Package serve implements the pautoclassd serving layer: an HTTP API over
// the P-AutoClass engines offering asynchronous training jobs (the
// distributed checkpointed search, resumable across daemon restarts), a
// registry of fitted models, batch prediction against them, and the run
// observability endpoints.
//
// The server owns a state directory. Every job lives in
// <dir>/jobs/<id>/ as three files:
//
//	request.json — the submitted JobRequest (immutable)
//	status.json  — the job's current JobStatus (rewritten on transitions)
//	search.ckpt  — the pautoclass.SearchCheckpointed state file
//	model.ckpt   — the fitted best classification, once the job is done
//
// Jobs run one at a time on a single runner goroutine; training itself is
// parallel (Config.Procs in-process ranks plus whatever intra-rank
// parallelism the request sets). Close interrupts a running search
// cooperatively through Checkpoint.Interrupt — the group agrees on a stop
// cycle, persists a resumable snapshot and returns ErrInterrupted — and the
// job goes back to the queue, so a restarted server resumes it bitwise
// where it stopped.
package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/autoclass"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/pautoclass"
)

// Config configures a Server.
type Config struct {
	// Dir is the state directory; it is created if missing.
	Dir string
	// Procs is the default number of in-process ranks per training run
	// (requests may override it). Default 2.
	Procs int
	// Every is the mid-try checkpoint cadence in cycles. Default 4.
	Every int
	// Logger receives the server's structured logs (request logs, job
	// lifecycle). Nil means slog.Default().
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: the profiles expose internals and cost CPU to collect.
	EnablePprof bool

	// MaxBodyBytes caps request bodies on the data-carrying routes
	// (/v1/jobs, predict); oversized requests get 413 request_too_large.
	// Default 64 MiB.
	MaxBodyBytes int64
	// PredictQueueDepth is each model version's batching-queue capacity;
	// a full queue answers 429 queue_full. Default 64.
	PredictQueueDepth int
	// PredictMaxBatchRows stops coalescing once a batch holds this many
	// rows. Default 4096.
	PredictMaxBatchRows int
	// PredictMaxInflight is the server-wide cap on predict requests being
	// processed or queued; past it new requests get 503 overloaded.
	// Default 256.
	PredictMaxInflight int
	// PredictParallelism shards each scoring pass over this many
	// goroutines per rank (0 = one). Parallelism never changes the bits.
	PredictParallelism int
	// PredictProcs > 1 turns on scale-out predict: each batch is sharded
	// across that many worker ranks (see PredictTCP for the transport).
	// Responses are bitwise identical at every rank count. Default 1.
	PredictProcs int
	// PredictTCP moves the predict worker ranks onto the loopback-TCP
	// transport instead of in-process goroutine ranks.
	PredictTCP bool
	// PredictCacheEntries bounds the response LRU cache; -1 disables it.
	// Default 256.
	PredictCacheEntries int
}

// maxProcs caps the per-request rank count: these are in-process goroutine
// ranks, so very large values only oversubscribe the host.
const maxProcs = 64

// Server is the pautoclassd HTTP handler plus its job runner. Create with
// New, serve it with net/http, stop it with Close.
type Server struct {
	cfg    Config
	mux    *http.ServeMux
	log    *slog.Logger
	bootID string // prefix for generated request IDs

	reg          *obs.Registry
	cSubmitted   *obs.Counter
	cDone        *obs.Counter
	cFailed      *obs.Counter
	cInterrupted *obs.Counter
	cResumed     *obs.Counter
	cPredicts    *obs.Counter
	cPredictRows *obs.Counter
	cCacheHits   *obs.Counter
	cCacheMisses *obs.Counter
	cRejected    *obs.Counter
	gInflight    *obs.Gauge
	gPredQueue   *obs.Gauge
	gPredActive  *obs.Gauge
	hBatchRows   *obs.Histogram
	hBatchReqs   *obs.Histogram

	models  *registry
	cache   *respCache
	predInF atomic.Int64 // predict requests admitted and not yet answered

	mu        sync.Mutex
	jobs      map[string]*job
	loaded    map[string]*loadedModel // key: job id or "<model>@v<N>"
	batchers  map[batcherKey]*batcher
	progress  map[string]*progressTracker
	nextID    int
	lastRun   *obs.Run
	running   string // id of the job currently on the runner, "" if idle
	closed    bool
	batcherWG sync.WaitGroup

	queue    chan string
	stopping atomic.Bool
	stop     chan struct{}
	done     chan struct{}
}

type job struct {
	Req    JobRequest
	Status JobStatus
}

type loadedModel struct {
	cls   *autoclass.Classification
	attrs []AttrSpec
}

// Job states.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// New opens (or creates) the state directory, re-enqueues every job that
// was queued or running when the previous server stopped, and starts the
// job runner.
func New(cfg Config) (*Server, error) {
	if cfg.Dir == "" {
		return nil, errors.New("serve: empty state directory")
	}
	if cfg.Procs == 0 {
		cfg.Procs = 2
	}
	if cfg.Procs < 1 || cfg.Procs > maxProcs {
		return nil, fmt.Errorf("serve: procs %d out of range [1,%d]", cfg.Procs, maxProcs)
	}
	if cfg.Every == 0 {
		cfg.Every = 4
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	if cfg.PredictQueueDepth == 0 {
		cfg.PredictQueueDepth = 64
	}
	if cfg.PredictMaxBatchRows == 0 {
		cfg.PredictMaxBatchRows = 4096
	}
	if cfg.PredictMaxInflight == 0 {
		cfg.PredictMaxInflight = 256
	}
	if cfg.PredictProcs == 0 {
		cfg.PredictProcs = 1
	}
	if cfg.PredictProcs < 1 || cfg.PredictProcs > maxProcs {
		return nil, fmt.Errorf("serve: predict procs %d out of range [1,%d]", cfg.PredictProcs, maxProcs)
	}
	if cfg.PredictCacheEntries == 0 {
		cfg.PredictCacheEntries = 256
	}
	if err := os.MkdirAll(filepath.Join(cfg.Dir, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("serve: state directory: %w", err)
	}
	log := cfg.Logger
	if log == nil {
		log = slog.Default()
	}
	reg, err := openRegistry(filepath.Join(cfg.Dir, "registry"))
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		log:      log,
		bootID:   "r" + strconv.FormatInt(time.Now().UnixNano(), 36),
		jobs:     make(map[string]*job),
		loaded:   make(map[string]*loadedModel),
		batchers: make(map[batcherKey]*batcher),
		models:   reg,
		cache:    newRespCache(cfg.PredictCacheEntries),
		progress: make(map[string]*progressTracker),
		reg:      obs.NewRegistry(),
		queue:    make(chan string, 1024),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	s.cSubmitted = s.reg.Counter("serve.jobs.submitted")
	s.cDone = s.reg.Counter("serve.jobs.done")
	s.cFailed = s.reg.Counter("serve.jobs.failed")
	s.cInterrupted = s.reg.Counter("serve.jobs.interrupted")
	s.cResumed = s.reg.Counter("serve.jobs.resumed")
	s.cPredicts = s.reg.Counter("serve.predict.requests")
	s.cPredictRows = s.reg.Counter("serve.predict.rows")
	s.cCacheHits = s.reg.Counter("serve.predict.cache.hits")
	s.cCacheMisses = s.reg.Counter("serve.predict.cache.misses")
	s.cRejected = s.reg.Counter("serve.predict.rejected")
	s.gInflight = s.reg.Gauge(MetricHTTPInflight)
	s.gPredQueue = s.reg.Gauge("serve.predict.queue_depth")
	s.gPredActive = s.reg.Gauge("serve.predict.inflight")
	s.hBatchRows = s.reg.Histogram("serve.predict.batch_rows")
	s.hBatchReqs = s.reg.Histogram("serve.predict.batch_requests")
	if err := s.scan(); err != nil {
		return nil, err
	}
	s.mux = s.buildMux()
	go s.runner()
	return s, nil
}

// scan loads every persisted job and re-enqueues unfinished ones in id
// order, so a restarted server picks up exactly where the previous one
// stopped.
func (s *Server) scan() error {
	entries, err := os.ReadDir(filepath.Join(s.cfg.Dir, "jobs"))
	if err != nil {
		return fmt.Errorf("serve: scan jobs: %w", err)
	}
	var ids []int
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		n, err := strconv.Atoi(e.Name())
		if err != nil {
			continue
		}
		ids = append(ids, n)
	}
	sort.Ints(ids)
	for _, n := range ids {
		id := strconv.Itoa(n)
		j := &job{}
		if err := readJSON(s.jobPath(id, "request.json"), &j.Req); err != nil {
			return fmt.Errorf("serve: job %s: %w", id, err)
		}
		if err := readJSON(s.jobPath(id, "status.json"), &j.Status); err != nil {
			// No status yet: the previous server crashed between writing
			// the request and the status. Treat as freshly queued.
			j.Status = JobStatus{ID: id, State: StateQueued, Created: time.Now().UTC()}
		}
		// A job found "running" was cut off mid-run (crash or interrupt);
		// its checkpoint file resumes it.
		if j.Status.State == StateRunning {
			j.Status.State = StateQueued
		}
		s.jobs[id] = j
		if n >= s.nextID {
			s.nextID = n + 1
		}
		if j.Status.State == StateQueued {
			s.cResumed.Add(1)
			s.queue <- id
		}
	}
	if s.nextID == 0 {
		s.nextID = 1
	}
	return nil
}

// Close stops the server: a running search is interrupted cooperatively
// (its job returns to the queue with a resumable snapshot on disk) and the
// runner goroutine exits. Safe to call more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.stopping.Store(true)
	close(s.stop)
	<-s.done
	// Batch dispatchers exit at the next loop turn; requests still waiting
	// on them unblock through s.stop in the predict handler.
	s.batcherWG.Wait()
	return nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) jobDir(id string) string {
	return filepath.Join(s.cfg.Dir, "jobs", id)
}

func (s *Server) jobPath(id, name string) string {
	return filepath.Join(s.jobDir(id), name)
}

// Sentinel submit failures, mapped to error codes at the HTTP layer.
var (
	errShuttingDown = errors.New("serve: server is shutting down")
	errJobQueueFull = errors.New("serve: job queue full")
)

// submit registers a validated request as a new queued job and enqueues
// it. reqID is the submitting HTTP request's ID, stamped into the status so
// job logs and API responses correlate back to the originating request.
func (s *Server) submit(req JobRequest, reqID string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return JobStatus{}, errShuttingDown
	}
	id := strconv.Itoa(s.nextID)
	s.nextID++
	now := time.Now().UTC()
	j := &job{Req: req, Status: JobStatus{ID: id, State: StateQueued, RequestID: reqID, Created: now, Updated: now}}
	if err := os.MkdirAll(s.jobDir(id), 0o755); err != nil {
		return JobStatus{}, err
	}
	if err := writeJSON(s.jobPath(id, "request.json"), &j.Req); err != nil {
		return JobStatus{}, err
	}
	if err := writeJSON(s.jobPath(id, "status.json"), &j.Status); err != nil {
		return JobStatus{}, err
	}
	s.jobs[id] = j
	s.cSubmitted.Add(1)
	select {
	case s.queue <- id:
	default:
		return JobStatus{}, errJobQueueFull
	}
	s.log.Info("job submitted", "job_id", id, "request_id", reqID,
		"rows", len(req.Rows), "attrs", len(req.Attrs))
	return j.Status, nil
}

// status returns a copy of the job's status.
func (s *Server) status(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return j.Status, true
}

// setState transitions a job and persists the new status.
func (s *Server) setState(id string, mut func(*JobStatus)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return
	}
	mut(&j.Status)
	j.Status.Updated = time.Now().UTC()
	// A persistence failure must not lose the in-memory transition; the
	// next transition retries the write.
	_ = writeJSON(s.jobPath(id, "status.json"), &j.Status)
}

// runner executes queued jobs one at a time until Close.
func (s *Server) runner() {
	defer close(s.done)
	for {
		select {
		case <-s.stop:
			return
		case id := <-s.queue:
			s.runJob(id)
		}
	}
}

// runJob trains one job on Procs in-process ranks through the checkpointed
// distributed search. Interrupts requeue the job; anything else finishes
// it.
func (s *Server) runJob(id string) {
	if s.stopping.Load() {
		// Close raced the dequeue; leave the job queued on disk.
		return
	}
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return
	}
	req := j.Req
	s.mu.Unlock()

	ds, err := buildDataset(req.Name, req.Attrs, req.Rows)
	if err != nil {
		s.finishJob(id, nil, err)
		return
	}
	cfg, err := searchConfig(req.Search)
	if err != nil {
		s.finishJob(id, nil, err)
		return
	}
	procs := req.Procs
	if procs == 0 {
		procs = s.cfg.Procs
	}

	o := obs.NewRun(procs)
	o.SetMachineLabel("pautoclassd")
	tracker := newProgressTracker()
	s.setState(id, func(st *JobStatus) { st.State = StateRunning })
	s.mu.Lock()
	s.lastRun = o
	s.running = id
	s.progress[id] = tracker
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.running = ""
		s.mu.Unlock()
	}()
	s.log.Info("job started", "job_id", id, "request_id", j.Status.RequestID, "procs", procs)

	// The search observer feeds both the live progress endpoint and rank
	// 0's search.* metrics; pautoclass emits events on rank 0 only, so the
	// same options can go to every rank.
	searchObs := fanoutObserver{tracker, o.Rank(0)}
	spec := model.DefaultSpec(ds)
	var res *autoclass.SearchResult
	err = mpi.Run(procs, func(c *mpi.Comm) error {
		opts := pautoclass.DefaultOptions()
		opts.EM = cfg.EM
		opts.Obs = o.Rank(c.Rank())
		opts.SearchObs = searchObs
		r, err := pautoclass.SearchCheckpointed(c, ds, spec, cfg, opts, pautoclass.Checkpoint{
			Path:      s.jobPath(id, "search.ckpt"),
			Every:     s.cfg.Every,
			Interrupt: s.stopping.Load,
		})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			res = r
		}
		return nil
	})
	if errors.Is(err, pautoclass.ErrInterrupted) {
		// Shutdown: the snapshot is on disk, the job resumes on restart.
		s.cInterrupted.Add(1)
		s.setState(id, func(st *JobStatus) { st.State = StateQueued })
		s.log.Info("job interrupted", "job_id", id)
		return
	}
	s.finishJob(id, res, err)
}

// finishJob records a terminal state: on success the fitted model is
// persisted and registered; on failure the error is surfaced in the status.
func (s *Server) finishJob(id string, res *autoclass.SearchResult, err error) {
	if err == nil && res != nil {
		ck := autoclass.Checkpoint{Classification: res.Best}
		err = ck.SaveFile(s.jobPath(id, "model.ckpt"))
	}
	if err != nil {
		s.cFailed.Add(1)
		msg := err.Error()
		s.setState(id, func(st *JobStatus) {
			st.State = StateFailed
			st.Error = msg
		})
		s.log.Error("job failed", "job_id", id, "error", msg)
		return
	}
	s.cDone.Add(1)
	s.setState(id, func(st *JobStatus) {
		st.State = StateDone
		st.ModelID = id
		st.J = res.Best.J()
		st.Score = res.BestTry.Score
		st.Cycles = res.Totals.Cycles
		st.Converged = res.BestTry.Converged
	})
	s.log.Info("job done", "job_id", id,
		"j", res.Best.J(), "score", res.BestTry.Score, "cycles", res.Totals.Cycles)
}

// jobModel returns the fitted classification for a done job, loading and
// caching it on first use. The returned classification is shared and
// read-only; every scorer builds or owns its own kernels.
func (s *Server) jobModel(id string) (*loadedModel, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m, ok := s.loaded[id]; ok {
		return m, nil
	}
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("serve: no model %q", id)
	}
	if j.Status.State != StateDone {
		return nil, fmt.Errorf("serve: job %s is %s, not done", id, j.Status.State)
	}
	// The checkpoint restores against the training schema; no rows are
	// needed to score new data.
	schema, err := buildDataset(j.Req.Name, j.Req.Attrs, nil)
	if err != nil {
		return nil, err
	}
	var ck autoclass.Checkpoint
	if err := ck.LoadFile(s.jobPath(id, "model.ckpt"), schema); err != nil {
		return nil, fmt.Errorf("serve: load model %s: %w", id, err)
	}
	m := &loadedModel{cls: ck.Classification, attrs: j.Req.Attrs}
	s.loaded[id] = m
	return m, nil
}

// registryModel loads (and caches) version v of a registered model,
// verifying the artifact against the checksum recorded at publish time.
func (s *Server) registryModel(id string, v int, attrs []AttrSpec) (*loadedModel, error) {
	key := fmt.Sprintf("%s@v%d", id, v)
	s.mu.Lock()
	if m, ok := s.loaded[key]; ok {
		s.mu.Unlock()
		return m, nil
	}
	s.mu.Unlock()

	// Load outside s.mu: artifact reads are slow and the checksum check
	// is CPU work. A racing duplicate load is harmless (last one wins).
	path := s.models.versionPath(id, v)
	art, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("serve: model %s v%d artifact: %w", id, v, err)
	}
	want, ok := s.models.checksum(id, v)
	if !ok {
		return nil, fmt.Errorf("serve: model %s has no version %d", id, v)
	}
	sum := sha256.Sum256(art)
	if got := hex.EncodeToString(sum[:]); got != want {
		return nil, fmt.Errorf("serve: model %s v%d artifact corrupt: checksum %s, want %s", id, v, got, want)
	}
	schema, err := buildDataset(id, attrs, nil)
	if err != nil {
		return nil, err
	}
	var ck autoclass.Checkpoint
	if err := ck.Load(bytes.NewReader(art), schema); err != nil {
		return nil, fmt.Errorf("serve: restore model %s v%d: %w", id, v, err)
	}
	m := &loadedModel{cls: ck.Classification, attrs: attrs}
	s.mu.Lock()
	s.loaded[key] = m
	s.mu.Unlock()
	return m, nil
}

func writeJSON(path string, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func readJSON(path string, v any) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, v)
}
