package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestServeMetricsExposition pins the /metrics contract: Prometheus text by
// default with per-route HTTP latency histograms, the legacy JSON shape
// under content negotiation and at /metrics.json, with explicit
// Content-Types on every variant.
func TestServeMetricsExposition(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir(), Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := ts.Client()

	// Generate traffic so the per-route histograms have samples.
	for i := 0; i < 3; i++ {
		resp, err := client.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != obs.ContentTypeText {
		t.Errorf("metrics Content-Type = %q, want %q", got, obs.ContentTypeText)
	}
	page := string(body)
	if !strings.HasSuffix(page, "# EOF\n") {
		t.Error("exposition does not end with # EOF")
	}
	if !strings.Contains(page, "# TYPE http_request_seconds histogram") {
		t.Error("exposition lacks the http_request_seconds histogram family")
	}
	foundRouteBucket := false
	for _, line := range strings.Split(page, "\n") {
		if strings.HasPrefix(line, "http_request_seconds_bucket{") &&
			strings.Contains(line, `route="GET /healthz"`) {
			foundRouteBucket = true
			break
		}
	}
	if !foundRouteBucket {
		t.Error("no http_request_seconds_bucket sample labeled with the GET /healthz route")
	}
	if !strings.Contains(page, `http_requests{code="2xx"`) {
		t.Error("no per-status-class http_requests counter sample")
	}

	// Content negotiation: JSON consumers keep the legacy shape on /metrics.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/json")
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("Content-Type"); got != obs.ContentTypeJSON {
		t.Errorf("negotiated metrics Content-Type = %q, want %q", got, obs.ContentTypeJSON)
	}
	var negotiated struct {
		Server json.RawMessage `json:"server"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&negotiated); err != nil {
		t.Fatalf("negotiated /metrics is not JSON: %v", err)
	}
	resp.Body.Close()
	if len(negotiated.Server) == 0 {
		t.Error("negotiated /metrics JSON lacks the server registry")
	}

	// The dedicated JSON endpoint.
	resp, err = client.Get(ts.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("Content-Type"); got != obs.ContentTypeJSON {
		t.Errorf("/metrics.json Content-Type = %q, want %q", got, obs.ContentTypeJSON)
	}
	if err := json.NewDecoder(resp.Body).Decode(&negotiated); err != nil {
		t.Fatalf("/metrics.json is not JSON: %v", err)
	}
	resp.Body.Close()
}

// TestServeRequestID: a caller-supplied X-Request-Id is echoed back; absent
// one, the server mints a unique ID per request.
func TestServeRequestID(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir(), Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := ts.Client()

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "caller-7")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "caller-7" {
		t.Errorf("supplied request ID not echoed: got %q", got)
	}

	ids := make(map[string]bool)
	for i := 0; i < 2; i++ {
		resp, err := client.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		id := resp.Header.Get("X-Request-Id")
		if id == "" {
			t.Fatal("no X-Request-Id generated")
		}
		ids[id] = true
	}
	if len(ids) != 2 {
		t.Errorf("generated request IDs are not unique: %v", ids)
	}
}

// TestServeReadyz: ready while accepting work, 503 once the server is
// closed.
func TestServeReadyz(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir(), Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := ts.Client()

	var rd struct {
		Ready bool `json:"ready"`
	}
	if code := getJSON(t, client, ts.URL+"/readyz", &rd); code != http.StatusOK || !rd.Ready {
		t.Fatalf("readyz while serving: %d ready=%v", code, rd.Ready)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if code := getJSON(t, client, ts.URL+"/readyz", &rd); code != http.StatusServiceUnavailable || rd.Ready {
		t.Errorf("readyz after close: %d ready=%v, want 503 ready=false", code, rd.Ready)
	}
}

// TestServeProgressEndpoint polls a running job's live progress: tries_done
// is monotonically non-decreasing against a fixed tries_total, and a done
// job reports the full schedule with a best score and no in-flight try.
func TestServeProgressEndpoint(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir(), Procs: 2, Every: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := ts.Client()

	if code := getJSON(t, client, ts.URL+"/v1/jobs/999/progress", nil); code != http.StatusNotFound {
		t.Errorf("progress for unknown job returned %d, want 404", code)
	}

	// Enough schedule that several polls land mid-search.
	longSpec := &SearchSpec{StartJList: []int{2, 3, 4}, Tries: 2, MaxCycles: 150, Parallelism: 1}
	req, _ := paperJob(t, 240, 5, longSpec)
	var st JobStatus
	if code := postJSON(t, client, ts.URL+"/v1/jobs", req, &st); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}

	wantTotal := len(longSpec.StartJList) * longSpec.Tries
	lastDone := 0
	sawRunning := false
	deadline := time.Now().Add(3 * time.Minute)
	for {
		var jp JobProgress
		if code := getJSON(t, client, ts.URL+"/v1/jobs/"+st.ID+"/progress", &jp); code != http.StatusOK {
			t.Fatalf("progress: status %d", code)
		}
		if jp.ID != st.ID {
			t.Fatalf("progress for job %q, asked for %q", jp.ID, st.ID)
		}
		if jp.TriesTotal != wantTotal {
			t.Fatalf("tries_total = %d, want %d", jp.TriesTotal, wantTotal)
		}
		if jp.TriesDone < lastDone {
			t.Fatalf("tries_done regressed %d -> %d", lastDone, jp.TriesDone)
		}
		if jp.TriesDone > jp.TriesTotal {
			t.Fatalf("tries_done %d exceeds tries_total %d", jp.TriesDone, jp.TriesTotal)
		}
		lastDone = jp.TriesDone
		if jp.State == StateRunning {
			sawRunning = true
		}
		if jp.State == StateDone {
			if jp.TriesDone != jp.TriesTotal {
				t.Errorf("done job reports %d/%d tries", jp.TriesDone, jp.TriesTotal)
			}
			if jp.CurrentTry != nil {
				t.Error("done job still reports a current try")
			}
			if jp.ETASeconds != nil {
				t.Error("done job still reports an ETA")
			}
			if jp.BestScore == nil {
				t.Error("done job has no best score")
			}
			break
		}
		if jp.State == StateFailed {
			t.Fatal("job failed")
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", jp.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !sawRunning {
		t.Log("job finished before a running-state poll; monotonicity still verified")
	}
}
