// Package dataset defines the tabular data representation shared by the
// sequential and parallel AutoClass engines: typed attributes (real-valued
// and discrete), row storage with missing-value support, global summary
// statistics used to set the Bayesian priors, and partitioning of rows
// across the ranks of a multicomputer.
package dataset

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/stats"
)

// AttrType distinguishes the supported attribute kinds, mirroring the
// AutoClass model-term split between real_location ("single normal") and
// discrete_nominal ("single multinomial") attributes.
type AttrType int

const (
	// Real is a continuous real-valued attribute.
	Real AttrType = iota
	// Discrete is a nominal attribute with a fixed set of levels.
	Discrete
)

// String implements fmt.Stringer.
func (t AttrType) String() string {
	switch t {
	case Real:
		return "real"
	case Discrete:
		return "discrete"
	default:
		return fmt.Sprintf("AttrType(%d)", int(t))
	}
}

// Attribute describes one column of a dataset.
type Attribute struct {
	// Name identifies the attribute in reports and file headers.
	Name string
	// Type selects the model term used for this attribute.
	Type AttrType
	// Levels names the categories of a Discrete attribute; its length is
	// the attribute's cardinality. Empty for Real attributes.
	Levels []string
}

// Cardinality returns the number of levels of a discrete attribute, or 0
// for a real attribute.
func (a *Attribute) Cardinality() int { return len(a.Levels) }

// Validate checks the attribute definition for internal consistency.
func (a *Attribute) Validate() error {
	if a.Name == "" {
		return errors.New("dataset: attribute with empty name")
	}
	switch a.Type {
	case Real:
		if len(a.Levels) != 0 {
			return fmt.Errorf("dataset: real attribute %q must not define levels", a.Name)
		}
	case Discrete:
		if len(a.Levels) < 2 {
			return fmt.Errorf("dataset: discrete attribute %q needs at least 2 levels, has %d", a.Name, len(a.Levels))
		}
		seen := make(map[string]bool, len(a.Levels))
		for _, l := range a.Levels {
			if l == "" {
				return fmt.Errorf("dataset: discrete attribute %q has an empty level name", a.Name)
			}
			if seen[l] {
				return fmt.Errorf("dataset: discrete attribute %q has duplicate level %q", a.Name, l)
			}
			seen[l] = true
		}
	default:
		return fmt.Errorf("dataset: attribute %q has unknown type %d", a.Name, int(a.Type))
	}
	return nil
}

// Missing is the in-memory encoding of an unknown value for any attribute
// type. Discrete values are stored as level indices converted to float64.
var Missing = math.NaN()

// IsMissing reports whether v encodes a missing value.
func IsMissing(v float64) bool { return math.IsNaN(v) }

// Dataset is an immutable-by-convention table of instances. Two storage
// modes share the one type so every consumer keeps its signature:
//
//   - materialized (the default): rows stored contiguously (row-major) in
//     data, so that block partitions are cache-friendly slices of the
//     underlying array;
//   - chunk-backed ("virtual", built by OpenChunked): no row-major storage
//     at all — values live in a ChunkStore whose backing may be a memory
//     map or a bounded-residency cache over a file, letting the dataset
//     exceed RAM. Row (which returns an alias) is unavailable in this
//     mode; use RowTo, Value, or the chunk plane itself.
type Dataset struct {
	// Name labels the dataset in reports.
	Name  string
	attrs []Attribute
	data  []float64 // row-major, len == n*len(attrs); nil when chunk-backed
	n     int

	// chunks is non-nil exactly when the dataset is chunk-backed; closer
	// releases the backing resources (file handle, memory map).
	chunks ChunkStore
	closer func() error
}

// New creates an empty dataset with the given schema. The attribute slice
// is copied. It returns an error if the schema is invalid.
func New(name string, attrs []Attribute) (*Dataset, error) {
	if len(attrs) == 0 {
		return nil, errors.New("dataset: no attributes")
	}
	names := make(map[string]bool, len(attrs))
	for i := range attrs {
		if err := attrs[i].Validate(); err != nil {
			return nil, err
		}
		if names[attrs[i].Name] {
			return nil, fmt.Errorf("dataset: duplicate attribute name %q", attrs[i].Name)
		}
		names[attrs[i].Name] = true
	}
	return &Dataset{Name: name, attrs: append([]Attribute(nil), attrs...)}, nil
}

// MustNew is New that panics on error, for tests and generators with
// schemas known to be valid.
func MustNew(name string, attrs []Attribute) *Dataset {
	ds, err := New(name, attrs)
	if err != nil {
		panic(err)
	}
	return ds
}

// N returns the number of instances.
func (d *Dataset) N() int { return d.n }

// NumAttrs returns the number of attributes.
func (d *Dataset) NumAttrs() int { return len(d.attrs) }

// Attr returns the k-th attribute definition.
func (d *Dataset) Attr(k int) *Attribute { return &d.attrs[k] }

// Attrs returns the schema. Callers must not modify it.
func (d *Dataset) Attrs() []Attribute { return d.attrs }

// Chunked reports whether the dataset is chunk-backed (built by
// OpenChunked) rather than materialized in row-major RAM.
func (d *Dataset) Chunked() bool { return d.chunks != nil }

// ChunkStore returns the chunk backing of a chunk-backed dataset, or nil
// for a materialized one.
func (d *Dataset) ChunkStore() ChunkStore { return d.chunks }

// Close releases the resources behind a chunk-backed dataset (file handle,
// memory map). It is a no-op for materialized datasets. The dataset must
// not be used after Close.
func (d *Dataset) Close() error {
	if d.closer == nil {
		return nil
	}
	c := d.closer
	d.closer = nil
	return c()
}

// ChunkedCopy returns a chunk-backed dataset presenting d's rows through
// an in-memory chunk store on the given chunk grid — the cheapest way to
// put a materialized dataset on the chunk plane (chunks alias one column
// mirror; no file involved). chunkRows must be a positive multiple of
// ChunkAlign.
func ChunkedCopy(d *Dataset, chunkRows int) (*Dataset, error) {
	if d == nil {
		return nil, errors.New("dataset: nil dataset")
	}
	if d.Chunked() {
		return nil, errors.New("dataset: ChunkedCopy of a chunk-backed dataset (re-chunk through WriteChunked)")
	}
	store, err := ChunkColumns(d.All().Columns(), chunkRows)
	if err != nil {
		return nil, err
	}
	return fromChunks(d.Name, d.attrs, store, nil)
}

// fromChunks builds a chunk-backed dataset over a validated schema.
func fromChunks(name string, attrs []Attribute, store ChunkStore, closer func() error) (*Dataset, error) {
	d, err := New(name, attrs)
	if err != nil {
		return nil, err
	}
	if store.NumAttrs() != len(attrs) {
		return nil, fmt.Errorf("dataset: chunk store has %d columns, schema %d", store.NumAttrs(), len(attrs))
	}
	d.n = store.NumRows()
	d.chunks = store
	d.closer = closer
	return d, nil
}

// Grow pre-allocates capacity for n additional rows.
func (d *Dataset) Grow(n int) {
	need := (d.n + n) * len(d.attrs)
	if cap(d.data) < need {
		bigger := make([]float64, len(d.data), need)
		copy(bigger, d.data)
		d.data = bigger
	}
}

// AppendRow appends one instance. len(row) must equal NumAttrs; discrete
// values must be valid level indices (or Missing).
func (d *Dataset) AppendRow(row []float64) error {
	if d.chunks != nil {
		return errors.New("dataset: cannot append to a chunk-backed dataset")
	}
	if len(row) != len(d.attrs) {
		return fmt.Errorf("dataset: row has %d values, schema has %d attributes", len(row), len(d.attrs))
	}
	for k, v := range row {
		if IsMissing(v) {
			continue
		}
		a := &d.attrs[k]
		if a.Type == Discrete {
			idx := int(v)
			if float64(idx) != v || idx < 0 || idx >= len(a.Levels) {
				return fmt.Errorf("dataset: row value %v is not a valid level index for discrete attribute %q", v, a.Name)
			}
		} else if math.IsInf(v, 0) {
			return fmt.Errorf("dataset: infinite value for real attribute %q", a.Name)
		}
	}
	d.data = append(d.data, row...)
	d.n++
	return nil
}

// Value returns the value of attribute k for instance i. On a chunk-backed
// dataset this faults the covering chunk per call; it is meant for
// reports, spot checks and tests, not hot loops — those walk the chunk
// plane directly.
func (d *Dataset) Value(i, k int) float64 {
	if d.chunks != nil {
		cr := d.chunks.ChunkRows()
		c := i / cr
		cols := d.chunks.Acquire(c)
		v := cols.Col(k)[i-c*cr]
		d.chunks.Release(c)
		return v
	}
	return d.data[i*len(d.attrs)+k]
}

// Row returns instance i as a slice aliasing the underlying storage.
// Callers must treat it as read-only. Chunk-backed datasets have no
// row-major storage to alias — callers that must handle both modes use
// RowTo instead; Row panics to surface the misuse.
func (d *Dataset) Row(i int) []float64 {
	if d.chunks != nil {
		panic("dataset: Row on a chunk-backed dataset; use RowTo")
	}
	w := len(d.attrs)
	return d.data[i*w : (i+1)*w : (i+1)*w]
}

// RowTo gathers instance i into dst (which must have NumAttrs capacity;
// nil allocates) and returns it. It works in both storage modes — the
// mode-agnostic counterpart of Row for code off the hot path.
func (d *Dataset) RowTo(dst []float64, i int) []float64 {
	w := len(d.attrs)
	if cap(dst) < w {
		dst = make([]float64, w)
	}
	dst = dst[:w]
	if d.chunks == nil {
		copy(dst, d.data[i*w:(i+1)*w])
		return dst
	}
	cr := d.chunks.ChunkRows()
	c := i / cr
	cols := d.chunks.Acquire(c)
	li := i - c*cr
	for k := 0; k < w; k++ {
		dst[k] = cols.Col(k)[li]
	}
	d.chunks.Release(c)
	return dst
}

// View returns a zero-copy window over rows [start, start+count).
func (d *Dataset) View(start, count int) (*View, error) {
	if start < 0 || count < 0 || start+count > d.n {
		return nil, fmt.Errorf("dataset: view [%d,%d) out of range 0..%d", start, start+count, d.n)
	}
	return &View{ds: d, start: start, count: count}, nil
}

// All returns a view over every row.
func (d *Dataset) All() *View {
	v, _ := d.View(0, d.n)
	return v
}

// View is a contiguous, zero-copy window over a dataset's rows. The
// parallel engine gives each rank a View of its local partition. Views are
// created by View/All and passed by pointer; the lazily built column-major
// mirror (see Columns) is cached on the view, which makes the struct
// non-copyable once Columns has been called.
type View struct {
	ds    *Dataset
	start int
	count int

	colsOnce sync.Once
	cols     *Columns

	srcOnce sync.Once
	src     ChunkSrc
	srcErr  error
}

// N returns the number of rows in the view.
func (v *View) N() int { return v.count }

// Start returns the global index of the view's first row.
func (v *View) Start() int { return v.start }

// Dataset returns the backing dataset (schema access).
func (v *View) Dataset() *Dataset { return v.ds }

// Value returns attribute k of the view-local instance i.
func (v *View) Value(i, k int) float64 { return v.ds.Value(v.start+i, k) }

// Row returns the view-local instance i (read-only alias).
func (v *View) Row(i int) []float64 { return v.ds.Row(v.start + i) }

// RowTo copies view row i into dst and returns dst[:NumAttrs]. Unlike Row
// it works on chunk-backed datasets, so it is the row accessor for code
// that must serve both planes.
func (v *View) RowTo(dst []float64, i int) []float64 { return v.ds.RowTo(dst, v.start+i) }

// Summary holds per-attribute global statistics of a dataset. AutoClass
// uses these to construct data-dependent priors (the prior mean of a class
// is pulled toward the global mean; sigma is floored relative to the global
// spread) and to define the unknown-value likelihood.
type Summary struct {
	// N is the number of instances summarized.
	N int
	// Real[k] holds weighted moments of real attribute k over its known
	// values (zero-valued for discrete attributes).
	Real []stats.Moments
	// LogReal[k] holds moments of log(x) over the known positive values of
	// real attribute k — the statistics behind the log-normal model term.
	LogReal []stats.Moments
	// NonPositive[k] counts known values of real attribute k that are
	// <= 0 and therefore outside a log-normal model's support.
	NonPositive []int
	// Min and Max bound the known values of real attribute k.
	Min, Max []float64
	// Counts[k][v] counts level v of discrete attribute k (nil for reals).
	Counts [][]int
	// MissingCount[k] counts missing values of attribute k.
	MissingCount []int
}

// Summarize scans the dataset once and returns its Summary.
func (d *Dataset) Summarize() *Summary {
	s := &Summary{
		N:            d.n,
		Real:         make([]stats.Moments, len(d.attrs)),
		LogReal:      make([]stats.Moments, len(d.attrs)),
		NonPositive:  make([]int, len(d.attrs)),
		Min:          make([]float64, len(d.attrs)),
		Max:          make([]float64, len(d.attrs)),
		Counts:       make([][]int, len(d.attrs)),
		MissingCount: make([]int, len(d.attrs)),
	}
	for k := range d.attrs {
		s.Min[k] = math.Inf(1)
		s.Max[k] = math.Inf(-1)
		if d.attrs[k].Type == Discrete {
			s.Counts[k] = make([]int, d.attrs[k].Cardinality())
		}
	}
	if d.chunks != nil {
		d.summarizeChunked(s)
		return s
	}
	for i := 0; i < d.n; i++ {
		row := d.Row(i)
		for k, v := range row {
			s.add(d, k, v)
		}
	}
	return s
}

// add folds one value of attribute k into the summary.
func (s *Summary) add(d *Dataset, k int, v float64) {
	if IsMissing(v) {
		s.MissingCount[k]++
		return
	}
	switch d.attrs[k].Type {
	case Real:
		s.Real[k].AddUnweighted(v)
		if v > 0 {
			s.LogReal[k].AddUnweighted(math.Log(v))
		} else {
			s.NonPositive[k]++
		}
		if v < s.Min[k] {
			s.Min[k] = v
		}
		if v > s.Max[k] {
			s.Max[k] = v
		}
	case Discrete:
		s.Counts[k][int(v)]++
	}
}

// summarizeChunked scans the chunk plane column by column. Per attribute
// the values are folded in ascending row order — the same order the
// row-major scan uses — and the per-attribute accumulators are
// independent, so the resulting Summary (and every prior derived from it)
// is bitwise identical to the materialized scan's.
func (d *Dataset) summarizeChunked(s *Summary) {
	nc := d.chunks.NumChunks()
	for c := 0; c < nc; c++ {
		cols := d.chunks.Acquire(c)
		for k := range d.attrs {
			for _, v := range cols.Col(k) {
				s.add(d, k, v)
			}
		}
		d.chunks.Release(c)
	}
}

// Clone returns a deep copy of the dataset. Cloning a chunk-backed dataset
// materializes it into row-major RAM — the caller is asserting it fits.
func (d *Dataset) Clone() *Dataset {
	return d.Head(d.n)
}

// Head returns a new dataset containing only the first n rows (or all rows
// if n exceeds N). The schema is shared by copy; the result is always
// materialized, even when d is chunk-backed.
func (d *Dataset) Head(n int) *Dataset {
	if n > d.n {
		n = d.n
	}
	c := &Dataset{
		Name:  d.Name,
		attrs: append([]Attribute(nil), d.attrs...),
		n:     n,
	}
	for i := range c.attrs {
		c.attrs[i].Levels = append([]string(nil), d.attrs[i].Levels...)
	}
	if d.chunks == nil {
		c.data = append([]float64(nil), d.data[:n*len(d.attrs)]...)
		return c
	}
	na := len(d.attrs)
	c.data = make([]float64, n*na)
	cr := d.chunks.ChunkRows()
	for lo := 0; lo < n; lo += cr {
		ci := lo / cr
		cols := d.chunks.Acquire(ci)
		m := n - lo
		if m > cols.N() {
			m = cols.N()
		}
		for k := 0; k < na; k++ {
			col := cols.Col(k)
			for i := 0; i < m; i++ {
				c.data[(lo+i)*na+k] = col[i]
			}
		}
		d.chunks.Release(ci)
	}
	return c
}

// Equal reports whether two datasets have identical schemas and values
// (NaNs compare equal so that missing values match). It works across
// storage modes, comparing values through the mode-agnostic accessor.
func (d *Dataset) Equal(o *Dataset) bool {
	if d.n != o.n || len(d.attrs) != len(o.attrs) {
		return false
	}
	for k := range d.attrs {
		a, b := &d.attrs[k], &o.attrs[k]
		if a.Name != b.Name || a.Type != b.Type || len(a.Levels) != len(b.Levels) {
			return false
		}
		for i := range a.Levels {
			if a.Levels[i] != b.Levels[i] {
				return false
			}
		}
	}
	if d.chunks == nil && o.chunks == nil {
		for i, v := range d.data {
			w := o.data[i]
			if v != w && !(math.IsNaN(v) && math.IsNaN(w)) {
				return false
			}
		}
		return true
	}
	for i := 0; i < d.n; i++ {
		for k := range d.attrs {
			v, w := d.Value(i, k), o.Value(i, k)
			if v != w && !(math.IsNaN(v) && math.IsNaN(w)) {
				return false
			}
		}
	}
	return true
}
