package dataset

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// randomDataset builds a random-schema dataset from a seed: 1–4 attributes
// of mixed types, 0–40 rows with ~10% missing values.
func randomDataset(seed uint64) *Dataset {
	r := rng.New(seed)
	na := r.Intn(4) + 1
	attrs := make([]Attribute, na)
	for k := range attrs {
		if r.Float64() < 0.5 {
			attrs[k] = Attribute{Name: attrName(k), Type: Real}
		} else {
			levels := make([]string, r.Intn(4)+2)
			for i := range levels {
				levels[i] = string(rune('a'+k)) + string(rune('0'+i))
			}
			attrs[k] = Attribute{Name: attrName(k), Type: Discrete, Levels: levels}
		}
	}
	ds := MustNew("random", attrs)
	n := r.Intn(41)
	row := make([]float64, na)
	for i := 0; i < n; i++ {
		for k := range row {
			if r.Float64() < 0.1 {
				row[k] = Missing
				continue
			}
			if attrs[k].Type == Real {
				row[k] = r.NormMS(0, 100)
			} else {
				row[k] = float64(r.Intn(attrs[k].Cardinality()))
			}
		}
		if err := ds.AppendRow(row); err != nil {
			panic(err)
		}
	}
	return ds
}

func attrName(k int) string { return string(rune('p' + k)) }

// Property: the text format round-trips any valid dataset exactly.
func TestQuickTextRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		ds := randomDataset(seed)
		var buf bytes.Buffer
		if err := WriteText(&buf, ds); err != nil {
			return false
		}
		back, err := ReadText(&buf)
		if err != nil {
			return false
		}
		return ds.Equal(back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: the binary format round-trips any valid dataset exactly.
func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		ds := randomDataset(seed)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, ds); err != nil {
			return false
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return ds.Equal(back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: summaries respect basic invariants for any dataset — known +
// missing counts per attribute equal N, min <= mean <= max for reals, and
// discrete counts sum to the known count.
func TestQuickSummaryInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		ds := randomDataset(seed)
		s := ds.Summarize()
		if s.N != ds.N() {
			return false
		}
		for k := 0; k < ds.NumAttrs(); k++ {
			switch ds.Attr(k).Type {
			case Real:
				known := int(s.Real[k].Weight())
				if known+s.MissingCount[k] != ds.N() {
					return false
				}
				if known > 0 {
					m := s.Real[k].Mean()
					if m < s.Min[k]-1e-9 || m > s.Max[k]+1e-9 || math.IsNaN(m) {
						return false
					}
				}
			case Discrete:
				total := 0
				for _, c := range s.Counts[k] {
					total += c
				}
				if total+s.MissingCount[k] != ds.N() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: partition views see exactly the dataset's rows in order, for
// any rank count.
func TestQuickPartitionViewsCoverage(t *testing.T) {
	f := func(seed uint64, pRaw uint8) bool {
		ds := randomDataset(seed)
		p := int(pRaw%12) + 1
		views, err := PartitionViews(ds, p)
		if err != nil {
			return false
		}
		idx := 0
		for _, v := range views {
			for i := 0; i < v.N(); i++ {
				want := ds.Row(idx)
				got := v.Row(i)
				for k := range want {
					if got[k] != want[k] && !(math.IsNaN(got[k]) && math.IsNaN(want[k])) {
						return false
					}
				}
				idx++
			}
		}
		return idx == ds.N()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
