package dataset

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func sampleDataset(t *testing.T) *Dataset {
	t.Helper()
	ds := MustNew("sample", []Attribute{
		{Name: "x", Type: Real},
		{Name: "y", Type: Real},
		{Name: "color", Type: Discrete, Levels: []string{"red", "green", "blue"}},
	})
	rows := [][]float64{
		{1.5, -2.25, 0},
		{Missing, 7, 2},
		{3.125, Missing, Missing},
		{0, 0, 1},
	}
	for _, r := range rows {
		if err := ds.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	return ds
}

func TestTextRoundTrip(t *testing.T) {
	ds := sampleDataset(t)
	var buf bytes.Buffer
	if err := WriteText(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Equal(got) {
		t.Fatal("text round trip lost data")
	}
	if got.Name != "sample" {
		t.Fatalf("name %q", got.Name)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	ds := sampleDataset(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Equal(got) {
		t.Fatal("binary round trip lost data")
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"bad-magic":     "nonsense\n",
		"no-separator":  "# pautoclass dataset v1\nreal x\n",
		"bad-kind":      "# pautoclass dataset v1\ninteger x\n---\n",
		"real-extra":    "# pautoclass dataset v1\nreal x y\n---\n",
		"discrete-few":  "# pautoclass dataset v1\ndiscrete c a\n---\n",
		"short-row":     "# pautoclass dataset v1\nreal x\nreal y\n---\n1.0\n",
		"bad-level":     "# pautoclass dataset v1\ndiscrete c a b\n---\nz\n",
		"bad-float":     "# pautoclass dataset v1\nreal x\n---\nfoo\n",
		"no-attributes": "# pautoclass dataset v1\n---\n",
	}
	for name, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("case %q: expected error", name)
		}
	}
}

func TestReadTextSkipsCommentsAndBlanks(t *testing.T) {
	in := `# pautoclass dataset v1
# name: c
# a comment
real x

---
# data comment
1.0

2.0
`
	ds, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 2 || ds.Value(1, 0) != 2 {
		t.Fatalf("got %d rows", ds.N())
	}
}

func TestReadBinaryErrors(t *testing.T) {
	// Truncations of a valid stream at every prefix length must error,
	// never panic or succeed (except the full length).
	ds := sampleDataset(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, ds); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut += 7 {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(full))
		}
	}
	// Corrupt magic.
	bad := append([]byte(nil), full...)
	bad[0] = 'X'
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	// Corrupt version.
	bad = append([]byte(nil), full...)
	bad[4] = 99
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("bad version accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	ds := sampleDataset(t)
	dir := t.TempDir()
	for _, name := range []string{"d.txt", "d.bin"} {
		path := filepath.Join(dir, name)
		if err := SaveFile(path, ds); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := LoadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !ds.Equal(got) {
			t.Fatalf("%s: round trip lost data", name)
		}
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("loading a missing file should error")
	}
}

func TestLargeRoundTrip(t *testing.T) {
	ds := MustNew("big", []Attribute{{Name: "x", Type: Real}, {Name: "y", Type: Real}})
	ds.Grow(5000)
	for i := 0; i < 5000; i++ {
		ds.AppendRow([]float64{float64(i) * 0.5, float64(-i)})
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Equal(got) {
		t.Fatal("large binary round trip lost data")
	}
}
