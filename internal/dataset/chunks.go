package dataset

import "fmt"

// Chunked columnar data plane.
//
// The engine's blocked kernels walk column-major row blocks of at most 256
// rows (autoclass.KernelBlockRows). Everything above that granularity is a
// question of storage, not math — so the data plane is organized as a
// sequence of fixed-size row chunks whose size is a multiple of the kernel
// block, behind the ChunkStore interface. Three backings implement it:
//
//   - the in-memory default, zero-copy windows over a View's monolithic
//     column mirror (memChunkStore, below);
//   - a memory-mapped chunk file (mmapStore, chunkfile.go);
//   - a bounded-residency cache that pins at most B chunks in RAM and
//     faults the rest from the file on demand (cachedStore, chunkfile.go).
//
// Because every chunk boundary is a multiple of ChunkAlign and the kernel
// block grid is ChunkAlign-aligned too, a kernel block never straddles a
// chunk: each Block call resolves to one contiguous window of one chunk.
// The arithmetic the kernels perform — which rows are grouped into which
// partial sums — is therefore identical for every backing and every chunk
// size, and search trajectories are bitwise identical by construction.
// That invariant is what lets one refactor serve in-RAM training, mmap-
// backed datasets bigger than RAM, and streaming ingest alike.

// ChunkAlign is the row alignment every chunk size must honor. It equals
// the blocked kernels' row-block size (autoclass.KernelBlockRows asserts
// the two stay in lockstep at compile time).
const ChunkAlign = 256

// DefaultChunkRows is the chunk size used when a caller does not choose
// one: 8192 rows × 8 bytes is 64 KiB per column per chunk — large enough
// to amortize a fault, small enough that a handful of resident chunks fit
// tight memory budgets.
const DefaultChunkRows = 8192

// ChunkStore is a dataset's physical column storage: NumRows rows split
// into fixed-size chunks of ChunkRows rows each (the final chunk may be
// partial). Chunk c covers global rows [c·ChunkRows, min((c+1)·ChunkRows,
// NumRows)).
//
// Acquire returns chunk c as a column-major Columns block indexed by
// chunk-local row, pinning it resident until the matching Release. For the
// in-memory and mmap backings pin/release are no-ops; the bounded cache
// uses the pin to keep a chunk from being evicted while a kernel walks it.
// Acquire and Release are safe for concurrent use; the returned Columns is
// immutable and safe for concurrent readers while pinned.
type ChunkStore interface {
	NumRows() int
	NumAttrs() int
	ChunkRows() int
	NumChunks() int
	Acquire(c int) *Columns
	Release(c int)
}

// NumChunksFor returns how many chunks of cr rows cover n rows.
func NumChunksFor(n, cr int) int {
	if n <= 0 {
		return 0
	}
	return (n + cr - 1) / cr
}

// ValidateChunkRows checks a chunk size: positive and ChunkAlign-aligned,
// so kernel blocks never straddle a chunk boundary.
func ValidateChunkRows(cr int) error {
	if cr <= 0 || cr%ChunkAlign != 0 {
		return fmt.Errorf("dataset: chunk size %d is not a positive multiple of %d", cr, ChunkAlign)
	}
	return nil
}

// memChunkStore is the in-memory backing: fixed-size windows over one
// monolithic column mirror. Chunks alias the mirror's flat backing array,
// so the store adds only slice headers on top of the Columns a view builds
// anyway.
type memChunkStore struct {
	rows      int
	na        int
	chunkRows int
	chunks    []Columns
}

// ChunkColumns slices a monolithic mirror into an in-memory chunk store
// with the given chunk size (which must satisfy ValidateChunkRows).
func ChunkColumns(cols *Columns, chunkRows int) (ChunkStore, error) {
	if err := ValidateChunkRows(chunkRows); err != nil {
		return nil, err
	}
	n := cols.N()
	nc := NumChunksFor(n, chunkRows)
	st := &memChunkStore{rows: n, na: cols.NumAttrs(), chunkRows: chunkRows, chunks: make([]Columns, nc)}
	for c := 0; c < nc; c++ {
		lo := c * chunkRows
		hi := lo + chunkRows
		if hi > n {
			hi = n
		}
		st.chunks[c] = cols.window(lo, hi)
	}
	return st, nil
}

func (m *memChunkStore) NumRows() int           { return m.rows }
func (m *memChunkStore) NumAttrs() int          { return m.na }
func (m *memChunkStore) ChunkRows() int         { return m.chunkRows }
func (m *memChunkStore) NumChunks() int         { return len(m.chunks) }
func (m *memChunkStore) Acquire(c int) *Columns { return &m.chunks[c] }
func (m *memChunkStore) Release(int)            {}

// ChunkSrc locates a view inside a chunk store: the store plus the global
// row index of the view's first row. Base must be ChunkAlign-aligned so
// that view-local kernel blocks stay chunk-contained; View.ChunkSrc
// enforces this.
type ChunkSrc struct {
	Store ChunkStore
	// Base is the global row the view's row 0 maps to.
	Base int
}

// ChunkCursor walks a ChunkSrc block by block, holding (pinning) exactly
// the chunk under the cursor. One cursor belongs to one goroutine; the
// engine gives each worker its own. The steady-state Block call performs
// no allocation: advancing to a new chunk is one Release and one Acquire.
type ChunkCursor struct {
	src  ChunkSrc
	cur  int // current chunk index, -1 when none pinned
	cols *Columns
}

// Reset points the cursor at a source, releasing any pinned chunk first.
func (cc *ChunkCursor) Reset(src ChunkSrc) {
	cc.Close()
	cc.src = src
	cc.cur = -1
	cc.cols = nil
}

// Block resolves the view-local row range [lo, hi) to its chunk: the
// pinned Columns block plus the chunk-local range [clo, chi). The range
// must be ChunkAlign-contained — guaranteed for kernel blocks over an
// aligned ChunkSrc — or Block panics.
func (cc *ChunkCursor) Block(lo, hi int) (cols *Columns, clo, chi int) {
	cr := cc.src.Store.ChunkRows()
	g := cc.src.Base + lo
	c := g / cr
	clo = g - c*cr
	chi = clo + (hi - lo)
	if chi > cr {
		panic(fmt.Sprintf("dataset: block [%d,%d) straddles the %d-row chunk grid", lo, hi, cr))
	}
	if c != cc.cur || cc.cols == nil {
		if cc.cols != nil {
			cc.src.Store.Release(cc.cur)
		}
		cc.cols = cc.src.Store.Acquire(c)
		cc.cur = c
	}
	return cc.cols, clo, chi
}

// Close releases the pinned chunk, if any. It is safe on the zero value;
// the cursor may be Reset and reused afterwards.
func (cc *ChunkCursor) Close() {
	if cc.cols != nil {
		cc.src.Store.Release(cc.cur)
		cc.cur = -1
		cc.cols = nil
	}
}

// AlignedBlockPartition splits n rows into p contiguous blocks like
// BlockPartition, but with every boundary (except the final row count
// itself) a multiple of align. Chunk-backed datasets partition this way so
// each rank's view starts on the chunk grid and the blocked kernels stay
// chunk-contained; alignment uses ChunkAlign — not the chunk size — so the
// partition, and with it the search trajectory, is identical for every
// chunk size.
func AlignedBlockPartition(n, p, align int) ([]Range, error) {
	if align <= 0 {
		return nil, fmt.Errorf("dataset: partition alignment %d", align)
	}
	units := (n + align - 1) / align
	parts, err := BlockPartition(units, p)
	if err != nil {
		return nil, err
	}
	for r := range parts {
		parts[r].Lo *= align
		parts[r].Hi *= align
		if parts[r].Lo > n {
			parts[r].Lo = n
		}
		if parts[r].Hi > n {
			parts[r].Hi = n
		}
	}
	return parts, nil
}
