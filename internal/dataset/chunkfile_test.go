package dataset

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func writeChunkFixture(t testing.TB, n, chunkRows int) (path string, ds *Dataset) {
	t.Helper()
	ds = mkMixedDataset(t, n)
	path = filepath.Join(t.TempDir(), "fixture.chunks")
	if err := WriteChunked(path, ds, chunkRows); err != nil {
		t.Fatalf("WriteChunked: %v", err)
	}
	return path, ds
}

// TestChunkFileRoundtrip opens the same file under every backing and
// checks bitwise equality with the source dataset — values, missing
// masks, schema, chunk structure.
func TestChunkFileRoundtrip(t *testing.T) {
	for _, tc := range []struct{ n, cr int }{
		{1, 256}, {256, 256}, {1000, 256}, {5000, 1024},
	} {
		path, ds := writeChunkFixture(t, tc.n, tc.cr)
		mono := ds.All().Columns()
		for _, mode := range []struct {
			name string
			opts ChunkOptions
		}{
			{"inmemory", ChunkOptions{Mode: ChunkInMemory}},
			{"mmap", ChunkOptions{Mode: ChunkMmap}},
			{"cached", ChunkOptions{Mode: ChunkCached, Chunks: 2}},
			{"auto", ChunkOptions{}},
		} {
			t.Run(fmt.Sprintf("n%d_cr%d_%s", tc.n, tc.cr, mode.name), func(t *testing.T) {
				vd, err := OpenChunked(path, mode.opts)
				if err != nil {
					t.Fatalf("OpenChunked: %v", err)
				}
				defer func() {
					if err := vd.Close(); err != nil {
						t.Errorf("Close: %v", err)
					}
				}()
				if !vd.Chunked() {
					t.Fatal("not chunk-backed")
				}
				if vd.Name != ds.Name || vd.N() != tc.n || vd.NumAttrs() != ds.NumAttrs() {
					t.Fatalf("shape: %q %d×%d", vd.Name, vd.N(), vd.NumAttrs())
				}
				for k := 0; k < ds.NumAttrs(); k++ {
					a, b := ds.Attr(k), vd.Attr(k)
					if a.Name != b.Name || a.Type != b.Type || len(a.Levels) != len(b.Levels) {
						t.Fatalf("attr %d schema differs", k)
					}
				}
				st := vd.ChunkStore()
				if st.ChunkRows() != tc.cr || st.NumChunks() != NumChunksFor(tc.n, tc.cr) {
					t.Fatalf("chunk grid %d×%d", st.ChunkRows(), st.NumChunks())
				}
				for c := 0; c < st.NumChunks(); c++ {
					cols := st.Acquire(c)
					base := c * tc.cr
					for k := 0; k < ds.NumAttrs(); k++ {
						got := cols.Col(k)
						want := mono.Col(k)[base : base+cols.N()]
						for i := range got {
							if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
								t.Fatalf("chunk %d attr %d row %d: %x != %x",
									c, k, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
							}
							if cols.HasMissing(k) != (mono.HasMissing(k) && anyMissing(want)) {
								t.Fatalf("chunk %d attr %d: mask presence", c, k)
							}
							if cols.HasMissing(k) && cols.Missing(k)[i] != IsMissing(got[i]) {
								t.Fatalf("chunk %d attr %d row %d: mask wrong", c, k, i)
							}
						}
					}
					st.Release(c)
				}
				if !vd.Equal(ds) {
					t.Error("Equal(roundtrip, source) = false")
				}
			})
		}
	}
}

func anyMissing(v []float64) bool {
	for _, x := range v {
		if IsMissing(x) {
			return true
		}
	}
	return false
}

// TestWriteChunkedFromChunked re-chunks a virtual dataset to a different
// chunk size through the row path.
func TestWriteChunkedFromChunked(t *testing.T) {
	path, ds := writeChunkFixture(t, 2000, 512)
	vd, err := OpenChunked(path, ChunkOptions{Mode: ChunkCached, Chunks: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer vd.Close()
	path2 := filepath.Join(t.TempDir(), "rechunked.chunks")
	if err := WriteChunked(path2, vd, 256); err != nil {
		t.Fatal(err)
	}
	vd2, err := OpenChunked(path2, ChunkOptions{Mode: ChunkInMemory})
	if err != nil {
		t.Fatal(err)
	}
	defer vd2.Close()
	if vd2.ChunkStore().ChunkRows() != 256 {
		t.Fatalf("chunkRows=%d", vd2.ChunkStore().ChunkRows())
	}
	if !vd2.Equal(ds) {
		t.Error("re-chunked dataset differs from source")
	}
}

// TestChunkFileRejects covers the failure modes a reader must catch.
func TestChunkFileRejects(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, b []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := OpenChunked(write("short", []byte("PACH")), ChunkOptions{}); err == nil {
		t.Error("truncated header accepted")
	}
	if _, err := OpenChunked(write("magic", make([]byte, 64)), ChunkOptions{}); err == nil {
		t.Error("bad magic accepted")
	}
	// An unsealed file: valid header but metaOff still zero.
	path, _ := writeChunkFixture(t, 300, 256)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	unsealed := append([]byte(nil), b...)
	for i := 16; i < 24; i++ {
		unsealed[i] = 0
	}
	if _, err := OpenChunked(write("unsealed", unsealed), ChunkOptions{}); err == nil {
		t.Error("unsealed file accepted")
	}
	// Foreign endianness probe.
	foreign := append([]byte(nil), b...)
	foreign[8], foreign[9], foreign[10], foreign[11] = foreign[11], foreign[10], foreign[9], foreign[8]
	if _, err := OpenChunked(write("foreign", foreign), ChunkOptions{}); err == nil {
		t.Error("foreign-endian file accepted")
	}
}

// TestCachedStoreResidency pins the bounded-residency contract: walking
// every chunk through a B-slot cache never holds more than B chunks
// resident, and revisits hit the cache.
func TestCachedStoreResidency(t *testing.T) {
	path, _ := writeChunkFixture(t, 8*256, 256) // 8 chunks
	const B = 3
	vd, err := OpenChunked(path, ChunkOptions{Mode: ChunkCached, Chunks: B})
	if err != nil {
		t.Fatal(err)
	}
	defer vd.Close()
	cs := vd.ChunkStore().(*cachedStore)
	for pass := 0; pass < 3; pass++ {
		for c := 0; c < cs.NumChunks(); c++ {
			cols := cs.Acquire(c)
			if cols.N() != 256 {
				t.Fatalf("chunk %d: %d rows", c, cols.N())
			}
			cs.Release(c)
			if st := cs.Stats(); st.Resident > B || st.HighWater > B {
				t.Fatalf("pass %d chunk %d: resident %d high-water %d over budget %d",
					pass, c, st.Resident, st.HighWater, B)
			}
		}
	}
	// A sequential scan through a small FIFO cache never revisits a
	// resident chunk; re-acquiring the last-touched chunk must hit.
	last := cs.NumChunks() - 1
	cs.Acquire(last)
	cs.Release(last)
	st := cs.Stats()
	if st.Hits == 0 {
		t.Error("re-acquiring a resident chunk did not hit the cache")
	}
	if st.Loads < uint64(cs.NumChunks()) {
		t.Errorf("loads %d < %d chunks", st.Loads, cs.NumChunks())
	}
	if st.Evictions == 0 {
		t.Error("8 chunks through 3 slots with no evictions")
	}
}

// TestCachedStoreOvershoot: with every slot pinned, an extra Acquire must
// overshoot (not deadlock) and the frame must be freed at Release.
func TestCachedStoreOvershoot(t *testing.T) {
	path, _ := writeChunkFixture(t, 6*256, 256)
	vd, err := OpenChunked(path, ChunkOptions{Mode: ChunkCached, Chunks: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer vd.Close()
	cs := vd.ChunkStore().(*cachedStore)
	cs.Acquire(0)
	cs.Acquire(1)
	cs.Acquire(2) // budget exhausted: transient third frame
	st := cs.Stats()
	if st.Resident != 3 || st.HighWater != 3 {
		t.Fatalf("resident %d high-water %d, want 3/3", st.Resident, st.HighWater)
	}
	cs.Release(2)
	if st := cs.Stats(); st.Resident != 2 {
		t.Fatalf("overshoot frame not freed: resident %d", st.Resident)
	}
	cs.Release(0)
	cs.Release(1)
	if st := cs.Stats(); st.Resident != 2 || st.HighWater != 3 {
		t.Fatalf("final resident %d high-water %d", st.Resident, st.HighWater)
	}
}

// TestCachedStoreConcurrent hammers a small cache from many goroutines
// (run under -race in CI): every read must see the right chunk's bytes.
func TestCachedStoreConcurrent(t *testing.T) {
	nChunks := 10
	path, ds := writeChunkFixture(t, nChunks*256, 256)
	vd, err := OpenChunked(path, ChunkOptions{Mode: ChunkCached, Chunks: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer vd.Close()
	cs := vd.ChunkStore()
	mono := ds.All().Columns()
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 50; it++ {
				c := (g*7 + it*3) % nChunks
				cols := cs.Acquire(c)
				want := mono.Col(0)[c*256]
				if got := cols.Col(0)[0]; math.Float64bits(got) != math.Float64bits(want) {
					select {
					case errCh <- fmt.Errorf("goroutine %d chunk %d: %v != %v", g, c, got, want):
					default:
					}
				}
				cs.Release(c)
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

// TestCachedStoreZeroAllocFault: once the frames are warm, faulting a
// chunk in and out of the cache allocates nothing.
func TestCachedStoreZeroAllocFault(t *testing.T) {
	path, _ := writeChunkFixture(t, 6*256, 256)
	vd, err := OpenChunked(path, ChunkOptions{Mode: ChunkCached, Chunks: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer vd.Close()
	cs := vd.ChunkStore()
	// Warm every frame and the clock.
	for pass := 0; pass < 2; pass++ {
		for c := 0; c < cs.NumChunks(); c++ {
			cs.Acquire(c)
			cs.Release(c)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		for c := 0; c < cs.NumChunks(); c++ {
			cols := cs.Acquire(c)
			if cols.N() == 0 {
				t.Fatal("empty chunk")
			}
			cs.Release(c)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state chunk faults allocate %v times per pass", allocs)
	}
}

// TestMmapStoreSharedAcrossOpens: two opens of the same file see the same
// bytes (sanity for the kill/resume story, where a restarted process
// re-opens the mapping).
func TestMmapReopenStable(t *testing.T) {
	path, ds := writeChunkFixture(t, 1500, 512)
	open := func() *Dataset {
		vd, err := OpenChunked(path, ChunkOptions{Mode: ChunkMmap})
		if err != nil {
			t.Skipf("mmap unavailable: %v", err)
		}
		return vd
	}
	a := open()
	b := open()
	defer a.Close()
	defer b.Close()
	if !a.Equal(ds) || !b.Equal(a) {
		t.Error("re-opened mapping differs")
	}
}
