package dataset

import (
	"os"
	"strings"
	"testing"
)

func TestReadCSVBasic(t *testing.T) {
	in := `x,y,color
1.5,2,red
0.5,-3,blue
2.25,0.125,red
`
	ds, err := ReadCSV(strings.NewReader(in), "csvtest")
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 3 || ds.NumAttrs() != 3 {
		t.Fatalf("N=%d attrs=%d", ds.N(), ds.NumAttrs())
	}
	if ds.Attr(0).Type != Real || ds.Attr(1).Type != Real {
		t.Fatal("numeric columns should be Real")
	}
	if ds.Attr(2).Type != Discrete {
		t.Fatal("string column should be Discrete")
	}
	if got := ds.Attr(2).Levels; len(got) != 2 || got[0] != "red" || got[1] != "blue" {
		t.Fatalf("levels %v", got)
	}
	if ds.Value(1, 2) != 1 { // blue
		t.Fatalf("row 1 color %v", ds.Value(1, 2))
	}
	if ds.Value(2, 0) != 2.25 {
		t.Fatalf("row 2 x %v", ds.Value(2, 0))
	}
}

func TestReadCSVMissingTokens(t *testing.T) {
	in := `a,b
1,x
?,y
NA,x
nan,?
,y
3,x
`
	ds, err := ReadCSV(strings.NewReader(in), "m")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Attr(0).Type != Real {
		t.Fatal("column a should stay Real despite missing tokens")
	}
	missing := 0
	for i := 0; i < ds.N(); i++ {
		if IsMissing(ds.Value(i, 0)) {
			missing++
		}
	}
	if missing != 4 {
		t.Fatalf("column a missing count %d, want 4", missing)
	}
	if IsMissing(ds.Value(3, 1)) != true {
		t.Fatal("'?' in discrete column should be missing")
	}
}

func TestReadCSVMixedNumericStringsBecomeDiscrete(t *testing.T) {
	in := `v
1
2
high
`
	ds, err := ReadCSV(strings.NewReader(in), "mix")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Attr(0).Type != Discrete {
		t.Fatal("column with a non-numeric value must be Discrete")
	}
	if len(ds.Attr(0).Levels) != 3 {
		t.Fatalf("levels %v", ds.Attr(0).Levels)
	}
}

func TestReadCSVConstantColumnPadded(t *testing.T) {
	in := `c,x
only,1
only,2
`
	ds, err := ReadCSV(strings.NewReader(in), "const")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Attr(0).Cardinality() < 2 {
		t.Fatalf("constant discrete column not padded: %v", ds.Attr(0).Levels)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":      "",
		"ragged":     "a,b\n1\n",
		"bad-header": "\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in), "bad"); err == nil {
			t.Errorf("case %q accepted", name)
		}
	}
}

func TestReadCSVUnnamedColumns(t *testing.T) {
	in := `,b
1,2
`
	ds, err := ReadCSV(strings.NewReader(in), "anon")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Attr(0).Name != "col0" {
		t.Fatalf("unnamed column got %q", ds.Attr(0).Name)
	}
}

func TestReadCSVAllMissingColumn(t *testing.T) {
	in := `a,b
?,1
?,2
`
	ds, err := ReadCSV(strings.NewReader(in), "allmiss")
	if err != nil {
		t.Fatal(err)
	}
	// An all-missing column cannot be typed Real (no evidence): it becomes
	// a padded discrete column of missing values.
	if ds.Attr(0).Type != Discrete {
		t.Fatalf("all-missing column type %v", ds.Attr(0).Type)
	}
	for i := 0; i < ds.N(); i++ {
		if !IsMissing(ds.Value(i, 0)) {
			t.Fatal("all-missing column has a value")
		}
	}
}

func TestReadCSVRoundTripThroughEngineFormats(t *testing.T) {
	in := `x,grade
1.0,good
2.5,bad
0.5,good
`
	ds, err := ReadCSV(strings.NewReader(in), "rt")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteText(&sb, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Equal(back) {
		t.Fatal("CSV import does not survive the native round trip")
	}
}

func TestLoadFileCSVExtension(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/mydata.csv"
	if err := writeFileForTest(path, "x,y\n1,2\n3,4\n"); err != nil {
		t.Fatal(err)
	}
	ds, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 2 || ds.Name != "mydata" {
		t.Fatalf("N=%d name=%q", ds.N(), ds.Name)
	}
}

func writeFileForTest(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
