package dataset

import (
	"fmt"

	"repro/internal/rng"
)

// Range describes a contiguous block of global row indices [Lo, Hi).
type Range struct {
	Lo, Hi int
}

// Len returns the number of rows in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// BlockPartition splits n rows into p contiguous blocks whose sizes differ
// by at most one, exactly as P-AutoClass distributes the dataset across
// processors ("each processor executes the same code on data of equal
// size", paper §3). Ranks r < n%p receive the extra row.
func BlockPartition(n, p int) ([]Range, error) {
	if p <= 0 {
		return nil, fmt.Errorf("dataset: partition over %d ranks", p)
	}
	if n < 0 {
		return nil, fmt.Errorf("dataset: partition of %d rows", n)
	}
	out := make([]Range, p)
	base := n / p
	rem := n % p
	lo := 0
	for r := 0; r < p; r++ {
		size := base
		if r < rem {
			size++
		}
		out[r] = Range{Lo: lo, Hi: lo + size}
		lo += size
	}
	return out, nil
}

// BlockRange returns just rank r's block of a BlockPartition(n, p).
func BlockRange(n, p, r int) (Range, error) {
	if r < 0 || r >= p {
		return Range{}, fmt.Errorf("dataset: rank %d out of %d", r, p)
	}
	parts, err := BlockPartition(n, p)
	if err != nil {
		return Range{}, err
	}
	return parts[r], nil
}

// SplitShuffled deterministically shuffles the rows and splits them into a
// training set with ceil(trainFrac·N) rows and a test set with the rest —
// the held-out evaluation path. trainFrac must lie in (0, 1).
func SplitShuffled(d *Dataset, trainFrac float64, seed uint64) (train, test *Dataset, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("dataset: train fraction %v out of (0,1)", trainFrac)
	}
	perm := rng.New(seed).Perm(d.N())
	nTrain := int(float64(d.N())*trainFrac + 0.999999)
	if nTrain >= d.N() {
		nTrain = d.N() - 1
	}
	if nTrain < 1 {
		return nil, nil, fmt.Errorf("dataset: %d rows cannot be split", d.N())
	}
	mk := func(idx []int, name string) (*Dataset, error) {
		out, err := New(name, d.Attrs())
		if err != nil {
			return nil, err
		}
		out.Grow(len(idx))
		row := make([]float64, len(d.attrs))
		for _, i := range idx {
			if err := out.AppendRow(d.RowTo(row, i)); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	train, err = mk(perm[:nTrain], d.Name+"-train")
	if err != nil {
		return nil, nil, err
	}
	test, err = mk(perm[nTrain:], d.Name+"-test")
	if err != nil {
		return nil, nil, err
	}
	return train, test, nil
}

// PartitionViews returns one zero-copy View per rank covering the block
// partition of the dataset.
func PartitionViews(d *Dataset, p int) ([]*View, error) {
	parts, err := BlockPartition(d.N(), p)
	if err != nil {
		return nil, err
	}
	views := make([]*View, p)
	for r, rg := range parts {
		v, err := d.View(rg.Lo, rg.Len())
		if err != nil {
			return nil, err
		}
		views[r] = v
	}
	return views, nil
}
