package dataset

import (
	"math"
	"sync"
	"testing"
)

func columnsTestDS(t *testing.T) *Dataset {
	t.Helper()
	ds := MustNew("cols", []Attribute{
		{Name: "x", Type: Real},
		{Name: "c", Type: Discrete, Levels: []string{"a", "b", "c"}},
		{Name: "y", Type: Real},
	})
	rows := [][]float64{
		{1.5, 0, -2},
		{Missing, 1, 0.25},
		{3.25, 2, Missing},
		{-0.5, Missing, 7},
		{2, 0, 8.5},
	}
	for _, r := range rows {
		if err := ds.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	return ds
}

// TestColumnsMirrorsView checks the defining property of the mirror:
// Col(k)[i] equals View.Value(i, k) for every cell (NaN-aware), with the
// missing masks matching exactly and nil for fully known columns.
func TestColumnsMirrorsView(t *testing.T) {
	ds := columnsTestDS(t)
	for _, win := range []struct{ start, count int }{
		{0, ds.N()}, {1, 3}, {2, 0}, {4, 1},
	} {
		v, err := ds.View(win.start, win.count)
		if err != nil {
			t.Fatal(err)
		}
		c := v.Columns()
		if c.N() != win.count || c.NumAttrs() != ds.NumAttrs() {
			t.Fatalf("view [%d,%d): mirror is %d×%d", win.start, win.start+win.count, c.N(), c.NumAttrs())
		}
		for k := 0; k < ds.NumAttrs(); k++ {
			col := c.Col(k)
			if len(col) != win.count {
				t.Fatalf("col %d has %d rows, want %d", k, len(col), win.count)
			}
			anyMissing := false
			for i := 0; i < win.count; i++ {
				want := v.Value(i, k)
				got := col[i]
				if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
					t.Fatalf("col %d row %d: %v != %v", k, i, got, want)
				}
				isMiss := IsMissing(want)
				anyMissing = anyMissing || isMiss
				if mask := c.Missing(k); (mask != nil && mask[i]) != isMiss {
					t.Fatalf("col %d row %d: mask disagrees with value %v", k, i, want)
				}
			}
			if c.HasMissing(k) != anyMissing {
				t.Fatalf("col %d: HasMissing=%v, values say %v", k, c.HasMissing(k), anyMissing)
			}
			if !anyMissing && c.Missing(k) != nil {
				t.Fatalf("col %d: non-nil mask for fully known column", k)
			}
		}
	}
}

// TestColumnsCachedPerView checks that the mirror is built once per view —
// repeated and concurrent calls return the same instance.
func TestColumnsCachedPerView(t *testing.T) {
	ds := columnsTestDS(t)
	v := ds.All()
	first := v.Columns()
	if v.Columns() != first {
		t.Fatal("second Columns() call rebuilt the mirror")
	}
	var wg sync.WaitGroup
	got := make([]*Columns, 8)
	for g := range got {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got[g] = v.Columns()
		}(g)
	}
	wg.Wait()
	for g, c := range got {
		if c != first {
			t.Fatalf("goroutine %d saw a different mirror", g)
		}
	}
	// Distinct views build distinct mirrors.
	if ds.All().Columns() == first {
		t.Fatal("distinct views share a mirror")
	}
}
