package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"io/fs"
	"strconv"
	"strings"
)

// ReadCSV imports a comma-separated file with a header row, inferring the
// schema: a column whose every non-missing value parses as a number becomes
// a Real attribute; any other column becomes Discrete with its distinct
// values as levels (in order of first appearance). Empty fields and the
// tokens "?", "NA", "NaN" (case-insensitive) are missing values.
//
// This is the practical ingestion path for real datasets; AutoClass C's
// own .db2 input format is comparable comma/space-separated text.
func ReadCSV(r io.Reader, name string) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: csv: %w", err)
	}
	if len(records) < 1 {
		return nil, fmt.Errorf("dataset: csv has no header row")
	}
	header := records[0]
	rows := records[1:]
	ncol := len(header)
	if ncol == 0 {
		return nil, fmt.Errorf("dataset: csv header is empty")
	}
	// Pass 1: infer column types.
	isReal := make([]bool, ncol)
	for k := range isReal {
		isReal[k] = true
	}
	anyKnown := make([]bool, ncol)
	for ri, rec := range rows {
		if len(rec) != ncol {
			return nil, fmt.Errorf("dataset: csv row %d has %d fields, header has %d", ri+2, len(rec), ncol)
		}
		for k, tok := range rec {
			if isCSVMissing(tok) {
				continue
			}
			anyKnown[k] = true
			if _, err := strconv.ParseFloat(strings.TrimSpace(tok), 64); err != nil {
				isReal[k] = false
			}
		}
	}
	// Build the schema. Discrete levels in order of first appearance.
	attrs := make([]Attribute, ncol)
	levelIdx := make([]map[string]int, ncol)
	for k := range attrs {
		colName := strings.TrimSpace(header[k])
		if colName == "" {
			colName = fmt.Sprintf("col%d", k)
		}
		if isReal[k] && anyKnown[k] {
			attrs[k] = Attribute{Name: colName, Type: Real}
			continue
		}
		attrs[k] = Attribute{Name: colName, Type: Discrete}
		levelIdx[k] = make(map[string]int)
		for _, rec := range rows {
			tok := strings.TrimSpace(rec[k])
			if isCSVMissing(tok) {
				continue
			}
			if _, ok := levelIdx[k][tok]; !ok {
				levelIdx[k][tok] = len(attrs[k].Levels)
				attrs[k].Levels = append(attrs[k].Levels, tok)
			}
		}
		if len(attrs[k].Levels) < 2 {
			// A constant or all-missing column cannot be modeled as a
			// multinomial; pad a synthetic second level so the schema
			// stays valid (its probability will be driven to the prior).
			for len(attrs[k].Levels) < 2 {
				filler := fmt.Sprintf("_level%d", len(attrs[k].Levels))
				levelIdx[k][filler] = len(attrs[k].Levels)
				attrs[k].Levels = append(attrs[k].Levels, filler)
			}
		}
	}
	ds, err := New(name, attrs)
	if err != nil {
		return nil, err
	}
	ds.Grow(len(rows))
	row := make([]float64, ncol)
	for ri, rec := range rows {
		for k, tok := range rec {
			tok = strings.TrimSpace(tok)
			if isCSVMissing(tok) {
				row[k] = Missing
				continue
			}
			if attrs[k].Type == Real {
				v, err := strconv.ParseFloat(tok, 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: csv row %d column %q: %v", ri+2, attrs[k].Name, err)
				}
				row[k] = v
			} else {
				row[k] = float64(levelIdx[k][tok])
			}
		}
		if err := ds.AppendRow(row); err != nil {
			return nil, fmt.Errorf("dataset: csv row %d: %w", ri+2, err)
		}
	}
	return ds, nil
}

// CSVOptions controls ReadCSVWith, the sized/streaming variant of the CSV
// importer. The zero value reproduces ReadCSV.
type CSVOptions struct {
	// Attrs fixes the schema up front, skipping the type-inference pass:
	// the reader streams row-at-a-time instead of buffering the whole file.
	// Discrete attributes must enumerate every level that appears; unknown
	// level tokens are an error. Required when Sink is set.
	Attrs []Attribute
	// RowCountHint pre-sizes the dataset's row storage. 0 means estimate:
	// from the reader's remaining size when it exposes Len() int (a
	// strings/bytes Reader) or Stat() (an *os.File), and the measured width
	// of the first data row; otherwise no pre-sizing.
	RowCountHint int
	// Sink, when non-nil, receives every parsed row instead of a
	// materialized dataset — the out-of-core ingestion path: CSV rows
	// stream straight into a chunk file and never occupy more than one
	// chunk of memory. ReadCSVWith then returns a nil dataset; the caller
	// owns Close on the sink.
	Sink *ChunkWriter
}

// csvSizer is the reader face of the pre-sizing estimate: bytes.Reader,
// strings.Reader and bufio.Reader all report the unread length.
type csvSizer interface{ Len() int }

// csvStatter matches *os.File.
type csvStatter interface{ Stat() (fs.FileInfo, error) }

// csvReaderSize reports the reader's remaining byte count, or -1 when it
// is not cheaply knowable.
func csvReaderSize(r io.Reader) int64 {
	switch v := r.(type) {
	case csvSizer:
		return int64(v.Len())
	case csvStatter:
		if fi, err := v.Stat(); err == nil && fi.Mode().IsRegular() {
			return fi.Size()
		}
	}
	return -1
}

// ReadCSVWith is ReadCSV with an explicit schema, pre-sizing, and an
// optional streaming chunk sink. With a schema it makes a single pass,
// holding one row in memory; with a sink it additionally never builds a
// dataset at all — rows flow straight into the chunk file.
func ReadCSVWith(r io.Reader, name string, opts CSVOptions) (*Dataset, error) {
	ds, _, err := readCSVWith(r, name, opts)
	return ds, err
}

// readCSVWith additionally reports how many times the row storage was
// reallocated after the initial pre-sizing — the quantity the pre-sizing
// regression test pins (a good estimate means zero).
func readCSVWith(r io.Reader, name string, opts CSVOptions) (*Dataset, int, error) {
	if opts.Sink != nil && opts.Attrs == nil {
		return nil, 0, fmt.Errorf("dataset: csv: Sink requires an explicit schema")
	}
	if opts.Attrs == nil {
		// No schema: type inference needs the whole file anyway; ReadCSV
		// already pre-sizes from the exact buffered row count.
		ds, err := ReadCSV(r, name)
		return ds, 0, err
	}
	size := csvReaderSize(r)
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, 0, fmt.Errorf("dataset: csv: %w", err)
	}
	attrs := opts.Attrs
	ncol := len(attrs)
	if len(header) != ncol {
		return nil, 0, fmt.Errorf("dataset: csv header has %d fields, schema has %d attributes", len(header), ncol)
	}
	levelIdx := make([]map[string]int, ncol)
	for k, a := range attrs {
		if a.Type != Discrete {
			continue
		}
		levelIdx[k] = make(map[string]int, len(a.Levels))
		for li, lv := range a.Levels {
			levelIdx[k][lv] = li
		}
	}
	var ds *Dataset
	if opts.Sink == nil {
		if ds, err = New(name, attrs); err != nil {
			return nil, 0, err
		}
	}
	row := make([]float64, ncol)
	reallocs := 0
	sized := false
	prevCap := 0
	ri := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, reallocs, fmt.Errorf("dataset: csv: %w", err)
		}
		ri++
		if len(rec) != ncol {
			return nil, reallocs, fmt.Errorf("dataset: csv row %d has %d fields, schema has %d", ri, len(rec), ncol)
		}
		recBytes := int64(1) // newline
		for k, tok := range rec {
			recBytes += int64(len(tok)) + 1
			tok = strings.TrimSpace(tok)
			if isCSVMissing(tok) {
				row[k] = Missing
				continue
			}
			if attrs[k].Type == Real {
				v, err := strconv.ParseFloat(tok, 64)
				if err != nil {
					return nil, reallocs, fmt.Errorf("dataset: csv row %d column %q: %v", ri, attrs[k].Name, err)
				}
				row[k] = v
			} else {
				li, ok := levelIdx[k][tok]
				if !ok {
					return nil, reallocs, fmt.Errorf("dataset: csv row %d column %q: unknown level %q", ri, attrs[k].Name, tok)
				}
				row[k] = float64(li)
			}
		}
		if opts.Sink != nil {
			if err := opts.Sink.AppendRow(row); err != nil {
				return nil, reallocs, fmt.Errorf("dataset: csv row %d: %w", ri, err)
			}
			continue
		}
		if !sized {
			// Pre-size once, after the first row reveals the bytes-per-row
			// scale: the explicit hint wins, else remaining-size/row-width.
			sized = true
			hint := opts.RowCountHint
			if hint <= 0 && size > 0 {
				// One row's width is a noisy scale; 1/8 headroom plus a
				// small constant absorbs the noise so an undershoot never
				// triggers the append ladder on the tail.
				hint = int(size / recBytes)
				hint += hint/8 + 16
			}
			if hint > 0 {
				ds.Grow(hint)
			}
			prevCap = cap(ds.data)
		}
		if err := ds.AppendRow(row); err != nil {
			return nil, reallocs, fmt.Errorf("dataset: csv row %d: %w", ri, err)
		}
		if c := cap(ds.data); c != prevCap {
			reallocs++
			prevCap = c
		}
	}
	return ds, reallocs, nil
}

// isCSVMissing reports whether a CSV field encodes a missing value.
func isCSVMissing(tok string) bool {
	switch strings.ToLower(strings.TrimSpace(tok)) {
	case "", "?", "na", "nan":
		return true
	}
	return false
}
