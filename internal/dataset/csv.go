package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadCSV imports a comma-separated file with a header row, inferring the
// schema: a column whose every non-missing value parses as a number becomes
// a Real attribute; any other column becomes Discrete with its distinct
// values as levels (in order of first appearance). Empty fields and the
// tokens "?", "NA", "NaN" (case-insensitive) are missing values.
//
// This is the practical ingestion path for real datasets; AutoClass C's
// own .db2 input format is comparable comma/space-separated text.
func ReadCSV(r io.Reader, name string) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: csv: %w", err)
	}
	if len(records) < 1 {
		return nil, fmt.Errorf("dataset: csv has no header row")
	}
	header := records[0]
	rows := records[1:]
	ncol := len(header)
	if ncol == 0 {
		return nil, fmt.Errorf("dataset: csv header is empty")
	}
	// Pass 1: infer column types.
	isReal := make([]bool, ncol)
	for k := range isReal {
		isReal[k] = true
	}
	anyKnown := make([]bool, ncol)
	for ri, rec := range rows {
		if len(rec) != ncol {
			return nil, fmt.Errorf("dataset: csv row %d has %d fields, header has %d", ri+2, len(rec), ncol)
		}
		for k, tok := range rec {
			if isCSVMissing(tok) {
				continue
			}
			anyKnown[k] = true
			if _, err := strconv.ParseFloat(strings.TrimSpace(tok), 64); err != nil {
				isReal[k] = false
			}
		}
	}
	// Build the schema. Discrete levels in order of first appearance.
	attrs := make([]Attribute, ncol)
	levelIdx := make([]map[string]int, ncol)
	for k := range attrs {
		colName := strings.TrimSpace(header[k])
		if colName == "" {
			colName = fmt.Sprintf("col%d", k)
		}
		if isReal[k] && anyKnown[k] {
			attrs[k] = Attribute{Name: colName, Type: Real}
			continue
		}
		attrs[k] = Attribute{Name: colName, Type: Discrete}
		levelIdx[k] = make(map[string]int)
		for _, rec := range rows {
			tok := strings.TrimSpace(rec[k])
			if isCSVMissing(tok) {
				continue
			}
			if _, ok := levelIdx[k][tok]; !ok {
				levelIdx[k][tok] = len(attrs[k].Levels)
				attrs[k].Levels = append(attrs[k].Levels, tok)
			}
		}
		if len(attrs[k].Levels) < 2 {
			// A constant or all-missing column cannot be modeled as a
			// multinomial; pad a synthetic second level so the schema
			// stays valid (its probability will be driven to the prior).
			for len(attrs[k].Levels) < 2 {
				filler := fmt.Sprintf("_level%d", len(attrs[k].Levels))
				levelIdx[k][filler] = len(attrs[k].Levels)
				attrs[k].Levels = append(attrs[k].Levels, filler)
			}
		}
	}
	ds, err := New(name, attrs)
	if err != nil {
		return nil, err
	}
	ds.Grow(len(rows))
	row := make([]float64, ncol)
	for ri, rec := range rows {
		for k, tok := range rec {
			tok = strings.TrimSpace(tok)
			if isCSVMissing(tok) {
				row[k] = Missing
				continue
			}
			if attrs[k].Type == Real {
				v, err := strconv.ParseFloat(tok, 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: csv row %d column %q: %v", ri+2, attrs[k].Name, err)
				}
				row[k] = v
			} else {
				row[k] = float64(levelIdx[k][tok])
			}
		}
		if err := ds.AppendRow(row); err != nil {
			return nil, fmt.Errorf("dataset: csv row %d: %w", ri+2, err)
		}
	}
	return ds, nil
}

// isCSVMissing reports whether a CSV field encodes a missing value.
func isCSVMissing(tok string) bool {
	switch strings.ToLower(strings.TrimSpace(tok)) {
	case "", "?", "na", "nan":
		return true
	}
	return false
}
