package dataset

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// csvFixture renders n mixed rows (real with misses, discrete) as CSV text.
func csvFixture(n int) string {
	var sb strings.Builder
	sb.WriteString("x,grade,y\n")
	grades := []string{"low", "mid", "high"}
	for i := 0; i < n; i++ {
		if i%41 == 7 {
			sb.WriteString("?,")
		} else {
			fmt.Fprintf(&sb, "%.4f,", float64(i)*0.25-100)
		}
		sb.WriteString(grades[i%3])
		if i%29 == 3 {
			sb.WriteString(",NA\n")
		} else {
			fmt.Fprintf(&sb, ",%.4f\n", float64(i%97)*1.5)
		}
	}
	return sb.String()
}

// opaqueReader hides Len()/Stat() so the size estimate is unavailable.
type opaqueReader struct{ r io.Reader }

func (o opaqueReader) Read(p []byte) (int, error) { return o.r.Read(p) }

func TestReadCSVWithSchemaMatchesReadCSV(t *testing.T) {
	text := csvFixture(500)
	want, err := ReadCSV(strings.NewReader(text), "fixture")
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSVWith(strings.NewReader(text), "fixture", CSVOptions{Attrs: want.Attrs()})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Error("schema-driven single-pass parse differs from inferred parse")
	}
	// Zero options delegate to plain ReadCSV (inference).
	got2, err := ReadCSVWith(strings.NewReader(text), "fixture", CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !got2.Equal(want) {
		t.Error("zero-option ReadCSVWith differs from ReadCSV")
	}
}

// TestReadCSVPreSizing pins the reallocation behavior of the streaming
// parser: a Len()-bearing reader (or an exact hint) pre-sizes the row
// storage so the append loop never reallocates; an opaque reader with no
// hint demonstrates the ladder the estimate avoids.
func TestReadCSVPreSizing(t *testing.T) {
	text := csvFixture(5000)
	schema, err := ReadCSV(strings.NewReader(text), "f")
	if err != nil {
		t.Fatal(err)
	}
	attrs := schema.Attrs()

	_, reallocs, err := readCSVWith(strings.NewReader(text), "f", CSVOptions{Attrs: attrs})
	if err != nil {
		t.Fatal(err)
	}
	if reallocs != 0 {
		t.Errorf("Len()-sized reader: %d reallocations, want 0", reallocs)
	}

	_, reallocs, err = readCSVWith(opaqueReader{strings.NewReader(text)}, "f",
		CSVOptions{Attrs: attrs, RowCountHint: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if reallocs != 0 {
		t.Errorf("exact hint: %d reallocations, want 0", reallocs)
	}

	_, reallocs, err = readCSVWith(opaqueReader{strings.NewReader(text)}, "f", CSVOptions{Attrs: attrs})
	if err != nil {
		t.Fatal(err)
	}
	if reallocs == 0 {
		t.Error("opaque un-hinted reader reported 0 reallocations; the counter is broken")
	}

	// *os.File pre-sizes through Stat.
	path := filepath.Join(t.TempDir(), "rows.csv")
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	_, reallocs, err = readCSVWith(f, "f", CSVOptions{Attrs: attrs})
	if err != nil {
		t.Fatal(err)
	}
	if reallocs != 0 {
		t.Errorf("Stat()-sized reader: %d reallocations, want 0", reallocs)
	}
}

// TestReadCSVStreamToChunkSink is the out-of-core ingestion path: CSV rows
// stream straight into a chunk file, which re-opened presents the same
// dataset ReadCSV materializes.
func TestReadCSVStreamToChunkSink(t *testing.T) {
	text := csvFixture(1300)
	want, err := ReadCSV(strings.NewReader(text), "stream")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "stream.chunks")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewChunkWriter(f, "stream", want.Attrs(), 256)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := ReadCSVWith(strings.NewReader(text), "stream", CSVOptions{Attrs: want.Attrs(), Sink: w})
	if err != nil {
		t.Fatal(err)
	}
	if ds != nil {
		t.Fatal("sink path returned a materialized dataset")
	}
	if w.Rows() != want.N() {
		t.Fatalf("sink saw %d rows, want %d", w.Rows(), want.N())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	vd, err := OpenChunked(path, ChunkOptions{Mode: ChunkCached, Chunks: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer vd.Close()
	if !vd.Equal(want) {
		t.Error("streamed chunk file differs from materialized parse")
	}
}

func TestReadCSVWithRejects(t *testing.T) {
	text := csvFixture(10)
	schema, err := ReadCSV(strings.NewReader(text), "f")
	if err != nil {
		t.Fatal(err)
	}
	// Sink without schema.
	if _, err := ReadCSVWith(strings.NewReader(text), "f", CSVOptions{Sink: &ChunkWriter{}}); err == nil {
		t.Error("sink without schema accepted")
	}
	// Unknown discrete level.
	attrs := append([]Attribute(nil), schema.Attrs()...)
	for k := range attrs {
		if attrs[k].Type == Discrete {
			attrs[k].Levels = []string{"low", "mid"} // drop "high"
		}
	}
	if _, err := ReadCSVWith(strings.NewReader(text), "f", CSVOptions{Attrs: attrs}); err == nil {
		t.Error("unknown level accepted")
	}
	// Schema width mismatch.
	if _, err := ReadCSVWith(strings.NewReader(text), "f", CSVOptions{Attrs: attrs[:1]}); err == nil {
		t.Error("width mismatch accepted")
	}
}
