package dataset

import (
	"math"
	"testing"
)

// mkMixedDataset builds a dataset with real and discrete attributes and a
// deterministic sprinkle of missing values: one column fully known, one
// with sparse misses so chunk windows exercise both mask states.
func mkMixedDataset(t testing.TB, n int) *Dataset {
	t.Helper()
	ds := MustNew("mixed", []Attribute{
		{Name: "x", Type: Real},
		{Name: "y", Type: Real},
		{Name: "c", Type: Discrete, Levels: []string{"a", "b", "c"}},
	})
	ds.Grow(n)
	row := make([]float64, 3)
	for i := 0; i < n; i++ {
		row[0] = math.Sin(float64(i)) * 10
		row[1] = float64(i % 97)
		row[2] = float64(i % 3)
		if i%37 == 5 {
			row[1] = Missing
		}
		if i%53 == 11 {
			row[2] = Missing
		}
		if err := ds.AppendRow(row); err != nil {
			t.Fatalf("append row %d: %v", i, err)
		}
	}
	return ds
}

// sameFloat treats NaN==NaN (bitwise equality for our value domain).
func sameFloat(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

// TestChunkColumnsMatchesMonolithic is the chunked ≡ monolithic property:
// for several chunk sizes (including ones that leave a partial final chunk)
// every chunk window must mirror the monolithic Columns bitwise — values
// and missing masks — for every attribute kind.
func TestChunkColumnsMatchesMonolithic(t *testing.T) {
	for _, n := range []int{1, 255, 256, 257, 1000, 4096, 5000} {
		ds := mkMixedDataset(t, n)
		mono := ds.All().Columns()
		for _, cr := range []int{256, 512, 1024, 4096} {
			st, err := ChunkColumns(mono, cr)
			if err != nil {
				t.Fatalf("n=%d cr=%d: %v", n, cr, err)
			}
			if got, want := st.NumChunks(), NumChunksFor(n, cr); got != want {
				t.Fatalf("n=%d cr=%d: NumChunks=%d want %d", n, cr, got, want)
			}
			if st.NumRows() != n || st.NumAttrs() != ds.NumAttrs() {
				t.Fatalf("n=%d: store dims %d×%d", n, st.NumRows(), st.NumAttrs())
			}
			covered := 0
			for c := 0; c < st.NumChunks(); c++ {
				cols := st.Acquire(c)
				base := c * cr
				for k := 0; k < ds.NumAttrs(); k++ {
					col := cols.Col(k)
					monoCol := mono.Col(k)[base : base+cols.N()]
					for i := range col {
						if math.Float64bits(col[i]) != math.Float64bits(monoCol[i]) {
							t.Fatalf("n=%d cr=%d chunk %d attr %d row %d: %v != %v",
								n, cr, c, k, i, col[i], monoCol[i])
						}
					}
					// Mask must agree with the values inside the window;
					// it may legitimately be nil when the window has no
					// missing value even though the full column does.
					anyMiss := false
					for i, v := range col {
						m := IsMissing(v)
						anyMiss = anyMiss || m
						if cols.HasMissing(k) && cols.Missing(k)[i] != m {
							t.Fatalf("n=%d cr=%d chunk %d attr %d row %d: mask %v value %v",
								n, cr, c, k, i, cols.Missing(k)[i], v)
						}
					}
					if anyMiss && !cols.HasMissing(k) {
						t.Fatalf("n=%d cr=%d chunk %d attr %d: missing values but nil mask", n, cr, c, k)
					}
				}
				covered += cols.N()
				st.Release(c)
			}
			if covered != n {
				t.Fatalf("n=%d cr=%d: chunks cover %d rows", n, cr, covered)
			}
		}
	}
}

func TestValidateChunkRows(t *testing.T) {
	for _, cr := range []int{256, 512, 2560, 8192} {
		if err := ValidateChunkRows(cr); err != nil {
			t.Errorf("ValidateChunkRows(%d) = %v", cr, err)
		}
	}
	for _, cr := range []int{0, -256, 1, 255, 257, 300} {
		if err := ValidateChunkRows(cr); err == nil {
			t.Errorf("ValidateChunkRows(%d) accepted", cr)
		}
	}
}

// countingStore wraps a ChunkStore and counts Acquire/Release calls so the
// cursor's pin discipline is observable.
type countingStore struct {
	ChunkStore
	acquires, releases int
}

func (s *countingStore) Acquire(c int) *Columns { s.acquires++; return s.ChunkStore.Acquire(c) }
func (s *countingStore) Release(c int)          { s.releases++; s.ChunkStore.Release(c) }

func TestChunkCursor(t *testing.T) {
	n := 1300
	ds := mkMixedDataset(t, n)
	inner, err := ChunkColumns(ds.All().Columns(), 512)
	if err != nil {
		t.Fatal(err)
	}
	st := &countingStore{ChunkStore: inner}
	var cc ChunkCursor
	cc.Reset(ChunkSrc{Store: st})
	mono := ds.All().Columns()
	for lo := 0; lo < n; lo += ChunkAlign {
		hi := lo + ChunkAlign
		if hi > n {
			hi = n
		}
		cols, clo, chi := cc.Block(lo, hi)
		if chi-clo != hi-lo {
			t.Fatalf("block [%d,%d): local [%d,%d)", lo, hi, clo, chi)
		}
		for k := 0; k < ds.NumAttrs(); k++ {
			got := cols.Col(k)[clo:chi]
			want := mono.Col(k)[lo:hi]
			for i := range got {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("block [%d,%d) attr %d row %d: %v != %v", lo, hi, k, i, got[i], want[i])
				}
			}
		}
	}
	cc.Close()
	if st.acquires != inner.NumChunks() {
		t.Errorf("cursor acquired %d times over %d chunks", st.acquires, inner.NumChunks())
	}
	if st.releases != st.acquires {
		t.Errorf("acquires %d != releases %d after Close", st.acquires, st.releases)
	}
	// Double Close is a no-op.
	cc.Close()
	if st.releases != st.acquires {
		t.Errorf("double Close released again")
	}
}

func TestChunkCursorBase(t *testing.T) {
	n := 2048
	ds := mkMixedDataset(t, n)
	st, err := ChunkColumns(ds.All().Columns(), 512)
	if err != nil {
		t.Fatal(err)
	}
	// A cursor over the second half, addressed by view-local rows.
	base := 1024
	var cc ChunkCursor
	cc.Reset(ChunkSrc{Store: st, Base: base})
	defer cc.Close()
	mono := ds.All().Columns()
	for lo := 0; lo < n-base; lo += ChunkAlign {
		cols, clo, chi := cc.Block(lo, lo+ChunkAlign)
		got := cols.Col(0)[clo:chi]
		want := mono.Col(0)[base+lo : base+lo+ChunkAlign]
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("base=%d block %d row %d: %v != %v", base, lo, i, got[i], want[i])
			}
		}
	}
}

func TestChunkCursorStraddlePanics(t *testing.T) {
	ds := mkMixedDataset(t, 1024)
	st, err := ChunkColumns(ds.All().Columns(), 512)
	if err != nil {
		t.Fatal(err)
	}
	var cc ChunkCursor
	cc.Reset(ChunkSrc{Store: st})
	defer cc.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("straddling block did not panic")
		}
	}()
	cc.Block(256, 768) // crosses the 512-row chunk boundary
}

func TestAlignedBlockPartition(t *testing.T) {
	for _, n := range []int{0, 1, 255, 256, 1000, 4096, 100003} {
		for _, p := range []int{1, 2, 3, 7, 16} {
			parts, err := AlignedBlockPartition(n, p, ChunkAlign)
			if err != nil {
				t.Fatalf("n=%d p=%d: %v", n, p, err)
			}
			if len(parts) != p {
				t.Fatalf("n=%d p=%d: %d parts", n, p, len(parts))
			}
			lo := 0
			for r, rg := range parts {
				if rg.Lo != lo {
					t.Fatalf("n=%d p=%d rank %d: gap at %d (Lo=%d)", n, p, r, lo, rg.Lo)
				}
				// Every non-empty block starts on the grid; empty tail
				// blocks collapse to [n, n), which may sit off grid.
				if rg.Len() > 0 && rg.Lo%ChunkAlign != 0 {
					t.Fatalf("n=%d p=%d rank %d: Lo=%d off grid", n, p, r, rg.Lo)
				}
				if rg.Hi < rg.Lo {
					t.Fatalf("n=%d p=%d rank %d: inverted range %+v", n, p, r, rg)
				}
				lo = rg.Hi
			}
			if lo != n {
				t.Fatalf("n=%d p=%d: covers %d rows", n, p, lo)
			}
		}
	}
	if _, err := AlignedBlockPartition(100, 2, 0); err == nil {
		t.Error("align=0 accepted")
	}
}

// TestVirtualDataset covers the chunk-backed dataset mode built over the
// in-memory store: Value/RowTo/Summarize/Head/Equal must agree with the
// materialized original, and Row/AppendRow must refuse.
func TestVirtualDataset(t *testing.T) {
	n := 1500
	ds := mkMixedDataset(t, n)
	st, err := ChunkColumns(ds.All().Columns(), 512)
	if err != nil {
		t.Fatal(err)
	}
	closed := false
	vd, err := fromChunks(ds.Name, ds.Attrs(), st, func() error { closed = true; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if !vd.Chunked() || vd.ChunkStore() != st {
		t.Fatal("virtual dataset not chunk-backed")
	}
	if vd.N() != n {
		t.Fatalf("N=%d want %d", vd.N(), n)
	}
	for _, i := range []int{0, 511, 512, 1023, 1024, n - 1} {
		for k := 0; k < ds.NumAttrs(); k++ {
			if !sameFloat(vd.Value(i, k), ds.Value(i, k)) {
				t.Fatalf("Value(%d,%d): %v != %v", i, k, vd.Value(i, k), ds.Value(i, k))
			}
		}
		got := vd.RowTo(nil, i)
		want := ds.Row(i)
		for k := range got {
			if !sameFloat(got[k], want[k]) {
				t.Fatalf("RowTo(%d)[%d]: %v != %v", i, k, got[k], want[k])
			}
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Row on virtual dataset did not panic")
			}
		}()
		vd.Row(0)
	}()
	if err := vd.AppendRow(make([]float64, ds.NumAttrs())); err == nil {
		t.Error("AppendRow on virtual dataset accepted")
	}

	// Summaries must be bitwise identical: priors derive from them.
	a, b := ds.Summarize(), vd.Summarize()
	if a.N != b.N {
		t.Fatalf("summary N: %d != %d", a.N, b.N)
	}
	for k := range a.Real {
		if a.Real[k] != b.Real[k] || a.LogReal[k] != b.LogReal[k] {
			t.Fatalf("attr %d: moments differ: %+v %+v vs %+v %+v", k, a.Real[k], a.LogReal[k], b.Real[k], b.LogReal[k])
		}
		if a.MissingCount[k] != b.MissingCount[k] || a.NonPositive[k] != b.NonPositive[k] {
			t.Fatalf("attr %d: counts differ", k)
		}
		if !sameFloat(a.Min[k], b.Min[k]) || !sameFloat(a.Max[k], b.Max[k]) {
			t.Fatalf("attr %d: min/max differ", k)
		}
		for v := range a.Counts[k] {
			if a.Counts[k][v] != b.Counts[k][v] {
				t.Fatalf("attr %d level %d: count differs", k, v)
			}
		}
	}

	// Head materializes; Equal bridges the modes.
	if !vd.Equal(ds) || !ds.Equal(vd) {
		t.Error("Equal(virtual, materialized) = false")
	}
	h := vd.Head(700)
	if h.Chunked() {
		t.Error("Head of virtual dataset is still chunk-backed")
	}
	if !h.Equal(ds.Head(700)) {
		t.Error("Head(700) differs across modes")
	}
	cl := vd.Clone()
	if cl.Chunked() || !cl.Equal(ds) {
		t.Error("Clone of virtual dataset wrong")
	}

	if err := vd.Close(); err != nil || !closed {
		t.Fatalf("Close: err=%v closed=%v", err, closed)
	}
	if err := vd.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestViewChunkSrc covers both sides of View.ChunkSrc: the materialized
// path (store sliced from the mirror, cached) and the chunk-backed path
// (dataset's own store, Base = view start, grid check).
func TestViewChunkSrc(t *testing.T) {
	ds := mkMixedDataset(t, 2000)
	v := ds.All()
	src, err := v.ChunkSrc()
	if err != nil {
		t.Fatal(err)
	}
	if src.Base != 0 || src.Store.NumRows() != 2000 {
		t.Fatalf("materialized src %+v", src)
	}
	src2, _ := v.ChunkSrc()
	if src2.Store != src.Store {
		t.Error("ChunkSrc not cached on the view")
	}

	st, err := ChunkColumns(ds.All().Columns(), 512)
	if err != nil {
		t.Fatal(err)
	}
	vd, err := fromChunks(ds.Name, ds.Attrs(), st, nil)
	if err != nil {
		t.Fatal(err)
	}
	vv, err := vd.View(512, 1024)
	if err != nil {
		t.Fatal(err)
	}
	vsrc, err := vv.ChunkSrc()
	if err != nil {
		t.Fatal(err)
	}
	if vsrc.Store != st || vsrc.Base != 512 {
		t.Fatalf("chunk-backed src %+v", vsrc)
	}
	bad, err := vd.View(100, 500)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad.ChunkSrc(); err == nil {
		t.Error("off-grid view accepted")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Columns on chunk-backed dataset did not panic")
			}
		}()
		vv.Columns()
	}()
}

// TestWindowMask pins the window-mask rule: a window of a column with
// misses elsewhere drops the mask; a window containing a miss keeps it.
func TestWindowMask(t *testing.T) {
	ds := MustNew("w", []Attribute{{Name: "x", Type: Real}})
	for i := 0; i < 600; i++ {
		v := float64(i)
		if i == 400 {
			v = Missing
		}
		if err := ds.AppendRow([]float64{v}); err != nil {
			t.Fatal(err)
		}
	}
	cols := ds.All().Columns()
	clean := cols.window(0, 256)
	if clean.HasMissing(0) {
		t.Error("miss-free window kept the mask")
	}
	dirty := cols.window(256, 600)
	if !dirty.HasMissing(0) {
		t.Fatal("window with a miss dropped the mask")
	}
	if !dirty.Missing(0)[400-256] || dirty.Missing(0)[0] {
		t.Error("window mask misaligned")
	}
}
