package dataset

import "fmt"

// Columns is a column-major mirror of a View's rows: one contiguous
// float64 slice per attribute plus a missing-value mask per column. It is
// the data layout behind the engine's blocked kernels — evaluating one
// (class, term) over a block of rows walks a single contiguous column
// instead of striding through row-major storage, and the per-column mask
// lets kernels test missingness without re-deriving it per term.
//
// The mirror is immutable after construction and indexed by *view-local*
// row: Col(k)[i] equals View.Value(i, k). Missing values keep their NaN
// encoding in the column so kernels may use either the mask or the NaN
// self-test (x != x), whichever is cheaper for their access pattern.
type Columns struct {
	n    int
	cols [][]float64
	// missing[k] is nil when column k has no missing values — the common
	// case, which lets kernels skip the mask entirely.
	missing [][]bool
}

// N returns the number of rows mirrored.
func (c *Columns) N() int { return c.n }

// NumAttrs returns the number of columns.
func (c *Columns) NumAttrs() int { return len(c.cols) }

// Col returns attribute k as a contiguous slice of length N(), indexed by
// view-local row. Callers must treat it as read-only.
func (c *Columns) Col(k int) []float64 { return c.cols[k] }

// Missing returns the missing mask of attribute k, or nil when the column
// has no missing values. Callers must treat it as read-only.
func (c *Columns) Missing(k int) []bool { return c.missing[k] }

// HasMissing reports whether attribute k has any missing value.
func (c *Columns) HasMissing(k int) bool { return c.missing[k] != nil }

// transposeTileRows is the row-tile height of buildColumns. A tile of
// source rows small enough to stay cache-resident is transposed with
// column-contiguous writes: the strided reads hit the same hot tile over
// and over while every write stream is sequential. 256 rows × 8 bytes is
// 2 KiB per touched column.
const transposeTileRows = 256

// buildColumns transposes rows [start, start+count) of ds into a fresh
// column-major mirror. The transpose is tiled: for each block of
// transposeTileRows source rows, every destination column is filled with a
// linear inner loop over the row-major backing array — no per-cell bounds-
// checked Value(i, k) double indirection, and sequential writes per column
// instead of a stride-count scatter per row.
func buildColumns(ds *Dataset, start, count int) *Columns {
	na := len(ds.attrs)
	c := &Columns{
		n:       count,
		cols:    make([][]float64, na),
		missing: make([][]bool, na),
	}
	// One flat backing array keeps the columns attribute-contiguous.
	flat := make([]float64, count*na)
	for k := 0; k < na; k++ {
		c.cols[k] = flat[k*count : (k+1)*count]
	}
	data := ds.data[start*na : (start+count)*na]
	for t0 := 0; t0 < count; t0 += transposeTileRows {
		t1 := t0 + transposeTileRows
		if t1 > count {
			t1 = count
		}
		for k := 0; k < na; k++ {
			dst := c.cols[k][t0:t1]
			src := data[t0*na+k:]
			miss := c.missing[k]
			for i := range dst {
				v := src[i*na]
				dst[i] = v
				if IsMissing(v) {
					if miss == nil {
						miss = make([]bool, count)
						c.missing[k] = miss
					}
					miss[t0+i] = true
				}
			}
		}
	}
	return c
}

// window returns the chunk of the mirror covering rows [lo, hi): a Columns
// value whose slices alias the parent's backing arrays. The missing mask of
// a column is carried over only when the window actually contains a missing
// value, so chunks of a sparsely-missing column keep the fast mask-free
// kernel path.
func (c *Columns) window(lo, hi int) Columns {
	w := Columns{
		n:       hi - lo,
		cols:    make([][]float64, len(c.cols)),
		missing: make([][]bool, len(c.cols)),
	}
	for k := range c.cols {
		w.cols[k] = c.cols[k][lo:hi:hi]
		if m := c.missing[k]; m != nil {
			for _, b := range m[lo:hi] {
				if b {
					w.missing[k] = m[lo:hi:hi]
					break
				}
			}
		}
	}
	return w
}

// Columns returns the view's column-major mirror, building it on first use.
// The mirror is cached on the view — repeated calls (one per engine phase)
// return the same instance — and safe for concurrent readers once built.
// Chunk-backed datasets have no row-major storage to mirror (and may not
// fit one in RAM); their data plane is View.ChunkSrc.
func (v *View) Columns() *Columns {
	if v.ds.chunks != nil {
		panic("dataset: Columns on a chunk-backed dataset; use ChunkSrc")
	}
	v.colsOnce.Do(func() {
		v.cols = buildColumns(v.ds, v.start, v.count)
	})
	return v.cols
}

// ChunkSrc returns the view's chunk plane: the chunk store plus the global
// row offset of the view's first row. For a chunk-backed dataset it is the
// dataset's own store (the view must start on the ChunkAlign grid — block
// partitions of chunk-backed data use AlignedBlockPartition); for a
// materialized dataset it is an in-memory store sliced from the view's
// column mirror, built on first use and cached like the mirror itself.
func (v *View) ChunkSrc() (ChunkSrc, error) {
	v.srcOnce.Do(func() {
		if v.ds.chunks != nil {
			// An empty view never resolves a block, so its (possibly
			// off-grid, clamped-tail) start is irrelevant.
			if v.count > 0 && v.start%ChunkAlign != 0 {
				v.srcErr = fmt.Errorf("dataset: chunk-backed view starts at row %d, not on the %d-row grid", v.start, ChunkAlign)
				return
			}
			v.src = ChunkSrc{Store: v.ds.chunks, Base: v.start}
			return
		}
		st, err := ChunkColumns(v.Columns(), DefaultChunkRows)
		if err != nil {
			v.srcErr = err
			return
		}
		v.src = ChunkSrc{Store: st}
	})
	return v.src, v.srcErr
}
