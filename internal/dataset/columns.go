package dataset

// Columns is a column-major mirror of a View's rows: one contiguous
// float64 slice per attribute plus a missing-value mask per column. It is
// the data layout behind the engine's blocked kernels — evaluating one
// (class, term) over a block of rows walks a single contiguous column
// instead of striding through row-major storage, and the per-column mask
// lets kernels test missingness without re-deriving it per term.
//
// The mirror is immutable after construction and indexed by *view-local*
// row: Col(k)[i] equals View.Value(i, k). Missing values keep their NaN
// encoding in the column so kernels may use either the mask or the NaN
// self-test (x != x), whichever is cheaper for their access pattern.
type Columns struct {
	n    int
	cols [][]float64
	// missing[k] is nil when column k has no missing values — the common
	// case, which lets kernels skip the mask entirely.
	missing [][]bool
}

// N returns the number of rows mirrored.
func (c *Columns) N() int { return c.n }

// NumAttrs returns the number of columns.
func (c *Columns) NumAttrs() int { return len(c.cols) }

// Col returns attribute k as a contiguous slice of length N(), indexed by
// view-local row. Callers must treat it as read-only.
func (c *Columns) Col(k int) []float64 { return c.cols[k] }

// Missing returns the missing mask of attribute k, or nil when the column
// has no missing values. Callers must treat it as read-only.
func (c *Columns) Missing(k int) []bool { return c.missing[k] }

// HasMissing reports whether attribute k has any missing value.
func (c *Columns) HasMissing(k int) bool { return c.missing[k] != nil }

// buildColumns transposes rows [start, start+count) of ds into a fresh
// column-major mirror.
func buildColumns(ds *Dataset, start, count int) *Columns {
	na := len(ds.attrs)
	c := &Columns{
		n:       count,
		cols:    make([][]float64, na),
		missing: make([][]bool, na),
	}
	// One flat backing array keeps the columns attribute-contiguous.
	flat := make([]float64, count*na)
	for k := 0; k < na; k++ {
		c.cols[k] = flat[k*count : (k+1)*count]
	}
	for i := 0; i < count; i++ {
		row := ds.Row(start + i)
		for k, v := range row {
			c.cols[k][i] = v
			if IsMissing(v) {
				if c.missing[k] == nil {
					c.missing[k] = make([]bool, count)
				}
				c.missing[k][i] = true
			}
		}
	}
	return c
}

// Columns returns the view's column-major mirror, building it on first use.
// The mirror is cached on the view — repeated calls (one per engine phase)
// return the same instance — and safe for concurrent readers once built.
func (v *View) Columns() *Columns {
	v.colsOnce.Do(func() {
		v.cols = buildColumns(v.ds, v.start, v.count)
	})
	return v.cols
}
