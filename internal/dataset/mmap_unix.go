//go:build unix

package dataset

import (
	"errors"
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only and shared, returning the bytes
// and an unmap function. The mapping outlives the file descriptor, so the
// caller may close f independently of the unmap.
func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size <= 0 {
		return nil, nil, errors.New("dataset: cannot map an empty file")
	}
	if int64(int(size)) != size {
		return nil, nil, errors.New("dataset: file too large to map on this platform")
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
