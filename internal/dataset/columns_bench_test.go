package dataset

import (
	"fmt"
	"testing"
)

// buildColumnsNaive is the pre-optimization transpose kept as the benchmark
// baseline: one bounds-checked Value(i, k) double indirection per cell and a
// stride-NumAttrs write scatter per row.
func buildColumnsNaive(ds *Dataset, start, count int) *Columns {
	na := len(ds.attrs)
	c := &Columns{
		n:       count,
		cols:    make([][]float64, na),
		missing: make([][]bool, na),
	}
	flat := make([]float64, count*na)
	for k := 0; k < na; k++ {
		c.cols[k] = flat[k*count : (k+1)*count]
	}
	for i := 0; i < count; i++ {
		for k := 0; k < na; k++ {
			v := ds.Value(start+i, k)
			c.cols[k][i] = v
			if IsMissing(v) {
				if c.missing[k] == nil {
					c.missing[k] = make([]bool, count)
				}
				c.missing[k][i] = true
			}
		}
	}
	return c
}

func benchDataset(b *testing.B, n, na int) *Dataset {
	b.Helper()
	attrs := make([]Attribute, na)
	for k := range attrs {
		attrs[k] = Attribute{Name: fmt.Sprintf("a%d", k), Type: Real}
	}
	ds := MustNew("bench", attrs)
	ds.Grow(n)
	row := make([]float64, na)
	for i := 0; i < n; i++ {
		for k := range row {
			row[k] = float64(i*na + k)
		}
		if err := ds.AppendRow(row); err != nil {
			b.Fatal(err)
		}
	}
	return ds
}

func benchmarkTranspose(b *testing.B, build func(*Dataset, int, int) *Columns) {
	for _, sz := range []struct{ n, na int }{{10000, 8}, {100000, 16}} {
		b.Run(fmt.Sprintf("n%d_a%d", sz.n, sz.na), func(b *testing.B) {
			ds := benchDataset(b, sz.n, sz.na)
			b.SetBytes(int64(sz.n * sz.na * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cols := build(ds, 0, sz.n)
				if cols.N() != sz.n {
					b.Fatal("bad transpose")
				}
			}
		})
	}
}

func BenchmarkTransposeNaive(b *testing.B) { benchmarkTranspose(b, buildColumnsNaive) }
func BenchmarkTransposeTiled(b *testing.B) { benchmarkTranspose(b, buildColumns) }

// TestBuildColumnsMatchesNaive makes the baseline earn its keep: the tiled
// transpose must reproduce it bitwise, masks included.
func TestBuildColumnsMatchesNaive(t *testing.T) {
	ds := mkMixedDataset(t, 1111)
	a := buildColumnsNaive(ds, 100, 900)
	bb := buildColumns(ds, 100, 900)
	for k := 0; k < ds.NumAttrs(); k++ {
		av, bv := a.Col(k), bb.Col(k)
		for i := range av {
			if !sameFloat(av[i], bv[i]) {
				t.Fatalf("attr %d row %d: %v != %v", k, i, av[i], bv[i])
			}
		}
		if a.HasMissing(k) != bb.HasMissing(k) {
			t.Fatalf("attr %d: mask presence differs", k)
		}
		if a.HasMissing(k) {
			am, bm := a.Missing(k), bb.Missing(k)
			for i := range am {
				if am[i] != bm[i] {
					t.Fatalf("attr %d row %d: mask differs", k, i)
				}
			}
		}
	}
}
