package dataset

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
	"unsafe"
)

// Chunk file format ("PACHNK01") — the on-disk twin of the chunk plane.
//
// The file stores exactly what a kernel wants to see: column-major chunks,
// 8-byte aligned, in chunk order, so a backing can hand a mapped or read-in
// byte range straight to the kernels with zero transformation. Layout:
//
//	offset  0  8B  magic "PACHNK01"
//	offset  8  4B  endianness probe 0xA1B2C3D4 in host byte order
//	offset 12  4B  format version (1)
//	offset 16  8B  metaOff — file offset of the JSON footer, patched by
//	               Close; zero means the writer died mid-stream and the
//	               file is unsealed
//	offset 24      chunk 0, chunk 1, … (each 8-byte aligned)
//	metaOff        JSON footer (chunkFileMeta) to EOF
//
// Each chunk with r rows and na columns is laid out as
//
//	flags   ceil(na/8) bytes — bit k set ⇔ column k stores a missing mask
//	pad     to 8-byte alignment
//	values  na × r × 8 bytes, column-major (column 0's r values, then
//	        column 1's, …), NaN encoding missing values in place
//	masks   r bytes (0/1) per flagged column, in column order
//	pad     to 8-byte alignment
//
// Values are written in host byte order so chunks can be mapped or read
// directly into float64 (and bool) slices without a decode pass; the
// endianness probe makes a foreign-order file fail loudly at open instead
// of silently producing garbage. The format is a node-local working-set
// format, not an archival interchange format.

const (
	chunkMagic       = "PACHNK01"
	chunkEndianProbe = uint32(0xA1B2C3D4)
	chunkVersion     = uint32(1)
	chunkDataStart   = 24
)

// chunkFileMeta is the JSON footer.
type chunkFileMeta struct {
	Name      string      `json:"name"`
	Attrs     []Attribute `json:"attrs"`
	NRows     int         `json:"n_rows"`
	ChunkRows int         `json:"chunk_rows"`
	// ChunkOff[c] is the file offset of chunk c; the footer offset bounds
	// the final chunk.
	ChunkOff []int64 `json:"chunk_off"`
}

func pad8(n int64) int64 { return (n + 7) &^ 7 }

// f64view reinterprets an 8-aligned byte slice as float64s.
func f64view(b []byte) []float64 {
	if len(b) == 0 {
		return nil
	}
	if uintptr(unsafe.Pointer(&b[0]))%8 != 0 {
		panic("dataset: misaligned chunk buffer")
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
}

// boolview reinterprets mask bytes (0/1) as a []bool.
func boolview(b []byte) []bool {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*bool)(unsafe.Pointer(&b[0])), len(b))
}

// bytesOfF64 views a float64 slice as raw bytes (for I/O without copies).
func bytesOfF64(v []float64) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)
}

// bytesOfBool views a bool slice as raw bytes.
func bytesOfBool(v []bool) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v))
}

// ChunkWriter streams rows into the chunk file format, sealing a chunk
// every chunkRows rows. It buffers one open chunk (chunkRows × NumAttrs
// float64s) — the writer's memory use is independent of the dataset size,
// which is what lets ingest outrun RAM.
type ChunkWriter struct {
	ws        io.WriteSeeker
	bw        *bufio.Writer
	name      string
	attrs     []Attribute
	chunkRows int
	na        int

	off  int64   // logical write offset
	offs []int64 // sealed chunk offsets
	rows int     // total rows appended

	cur     [][]float64 // open chunk, column-major
	curMiss [][]bool    // lazily allocated masks for the open chunk
	curN    int

	err    error
	closed bool
}

// NewChunkWriter starts a chunk file on ws (typically an *os.File created
// fresh; the header is patched in place at Close, so ws must support
// Seek). The schema is validated; chunkRows must satisfy
// ValidateChunkRows.
func NewChunkWriter(ws io.WriteSeeker, name string, attrs []Attribute, chunkRows int) (*ChunkWriter, error) {
	if _, err := New(name, attrs); err != nil {
		return nil, err
	}
	if err := ValidateChunkRows(chunkRows); err != nil {
		return nil, err
	}
	w := &ChunkWriter{
		ws:        ws,
		bw:        bufio.NewWriterSize(ws, 1<<20),
		name:      name,
		attrs:     append([]Attribute(nil), attrs...),
		chunkRows: chunkRows,
		na:        len(attrs),
		cur:       make([][]float64, len(attrs)),
		curMiss:   make([][]bool, len(attrs)),
	}
	for k := range w.cur {
		w.cur[k] = make([]float64, 0, chunkRows)
	}
	var hdr [chunkDataStart]byte
	copy(hdr[:8], chunkMagic)
	binary.NativeEndian.PutUint32(hdr[8:12], chunkEndianProbe)
	binary.NativeEndian.PutUint32(hdr[12:16], chunkVersion)
	// metaOff stays zero until Close seals the file.
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	w.off = chunkDataStart
	return w, nil
}

// Rows returns the number of rows appended so far.
func (w *ChunkWriter) Rows() int { return w.rows }

// ChunkRows returns the writer's chunk size.
func (w *ChunkWriter) ChunkRows() int { return w.chunkRows }

// AppendRow appends one instance, sealing the open chunk to the file when
// it reaches chunkRows rows. Validation matches Dataset.AppendRow.
func (w *ChunkWriter) AppendRow(row []float64) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return errors.New("dataset: AppendRow after Close")
	}
	if len(row) != w.na {
		return fmt.Errorf("dataset: row has %d values, schema has %d attributes", len(row), w.na)
	}
	for k, v := range row {
		if IsMissing(v) {
			continue
		}
		a := &w.attrs[k]
		if a.Type == Discrete {
			idx := int(v)
			if float64(idx) != v || idx < 0 || idx >= len(a.Levels) {
				return fmt.Errorf("dataset: row value %v is not a valid level index for discrete attribute %q", v, a.Name)
			}
		} else if math.IsInf(v, 0) {
			return fmt.Errorf("dataset: infinite value for real attribute %q", a.Name)
		}
	}
	for k, v := range row {
		w.cur[k] = append(w.cur[k], v)
		if IsMissing(v) {
			if w.curMiss[k] == nil {
				w.curMiss[k] = make([]bool, w.chunkRows)
			}
			w.curMiss[k][w.curN] = true
		}
	}
	w.curN++
	w.rows++
	if w.curN == w.chunkRows {
		w.err = w.seal()
	}
	return w.err
}

// seal writes the open chunk and resets the buffer.
func (w *ChunkWriter) seal() error {
	if w.curN == 0 {
		return nil
	}
	w.offs = append(w.offs, w.off)
	flagsLen := (w.na + 7) / 8
	flags := make([]byte, pad8(int64(flagsLen)))
	for k := range w.curMiss {
		if w.curMiss[k] != nil {
			flags[k/8] |= 1 << (k % 8)
		}
	}
	if _, err := w.bw.Write(flags); err != nil {
		return err
	}
	w.off += int64(len(flags))
	for k := range w.cur {
		b := bytesOfF64(w.cur[k][:w.curN])
		if _, err := w.bw.Write(b); err != nil {
			return err
		}
		w.off += int64(len(b))
	}
	for k := range w.curMiss {
		if w.curMiss[k] == nil {
			continue
		}
		b := bytesOfBool(w.curMiss[k][:w.curN])
		if _, err := w.bw.Write(b); err != nil {
			return err
		}
		w.off += int64(len(b))
	}
	if p := pad8(w.off) - w.off; p > 0 {
		var zero [8]byte
		if _, err := w.bw.Write(zero[:p]); err != nil {
			return err
		}
		w.off += p
	}
	for k := range w.cur {
		w.cur[k] = w.cur[k][:0]
		w.curMiss[k] = nil
	}
	w.curN = 0
	return nil
}

// Close seals the final (possibly partial) chunk, writes the JSON footer,
// and patches the header's metaOff, marking the file complete. The
// underlying file is not closed (the writer does not own it).
func (w *ChunkWriter) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	if w.err != nil {
		return w.err
	}
	if w.err = w.seal(); w.err != nil {
		return w.err
	}
	meta := chunkFileMeta{
		Name:      w.name,
		Attrs:     w.attrs,
		NRows:     w.rows,
		ChunkRows: w.chunkRows,
		ChunkOff:  w.offs,
	}
	metaOff := w.off
	enc, err := json.Marshal(&meta)
	if err != nil {
		w.err = err
		return err
	}
	if _, err := w.bw.Write(enc); err != nil {
		w.err = err
		return err
	}
	if err := w.bw.Flush(); err != nil {
		w.err = err
		return err
	}
	if _, err := w.ws.Seek(16, io.SeekStart); err != nil {
		w.err = err
		return err
	}
	var mo [8]byte
	binary.NativeEndian.PutUint64(mo[:], uint64(metaOff))
	if _, err := w.ws.Write(mo[:]); err != nil {
		w.err = err
		return err
	}
	if _, err := w.ws.Seek(0, io.SeekEnd); err != nil {
		w.err = err
		return err
	}
	return nil
}

// WriteChunked writes the dataset to path in the chunk file format. It
// works for both storage modes (a chunk-backed dataset is re-chunked row
// by row when the chunk sizes differ).
func WriteChunked(path string, d *Dataset, chunkRows int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := NewChunkWriter(f, d.Name, d.Attrs(), chunkRows)
	if err != nil {
		return err
	}
	row := make([]float64, d.NumAttrs())
	for i := 0; i < d.N(); i++ {
		if err := w.AppendRow(d.RowTo(row, i)); err != nil {
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	return f.Close()
}

// chunkFile is a parsed, open chunk file: the schema plus the chunk offset
// index. It serves byte ranges to the backings.
type chunkFile struct {
	f    *os.File
	meta chunkFileMeta
	na   int
	// offs has NumChunks+1 entries; the final entry (metaOff) bounds the
	// last chunk's span.
	offs []int64
}

func openChunkFile(path string) (*chunkFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	cf, err := parseChunkFile(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return cf, nil
}

func parseChunkFile(f *os.File) (*chunkFile, error) {
	var hdr [chunkDataStart]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, fmt.Errorf("dataset: reading chunk file header: %w", err)
	}
	if string(hdr[:8]) != chunkMagic {
		return nil, fmt.Errorf("dataset: bad chunk file magic %q", hdr[:8])
	}
	if probe := binary.NativeEndian.Uint32(hdr[8:12]); probe != chunkEndianProbe {
		return nil, fmt.Errorf("dataset: chunk file written with foreign byte order (probe %#x)", probe)
	}
	if ver := binary.NativeEndian.Uint32(hdr[12:16]); ver != chunkVersion {
		return nil, fmt.Errorf("dataset: unsupported chunk file version %d", ver)
	}
	metaOff := int64(binary.NativeEndian.Uint64(hdr[16:24]))
	if metaOff == 0 {
		return nil, errors.New("dataset: unsealed chunk file (writer did not Close)")
	}
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if metaOff < chunkDataStart || metaOff > st.Size() {
		return nil, fmt.Errorf("dataset: chunk file metaOff %d out of range", metaOff)
	}
	enc := make([]byte, st.Size()-metaOff)
	if _, err := f.ReadAt(enc, metaOff); err != nil {
		return nil, fmt.Errorf("dataset: reading chunk file footer: %w", err)
	}
	cf := &chunkFile{f: f}
	if err := json.Unmarshal(enc, &cf.meta); err != nil {
		return nil, fmt.Errorf("dataset: decoding chunk file footer: %w", err)
	}
	m := &cf.meta
	cf.na = len(m.Attrs)
	if err := ValidateChunkRows(m.ChunkRows); err != nil {
		return nil, err
	}
	if m.NRows < 0 {
		return nil, fmt.Errorf("dataset: chunk file row count %d", m.NRows)
	}
	nc := NumChunksFor(m.NRows, m.ChunkRows)
	if len(m.ChunkOff) != nc {
		return nil, fmt.Errorf("dataset: chunk file has %d chunk offsets for %d chunks", len(m.ChunkOff), nc)
	}
	cf.offs = make([]int64, nc+1)
	copy(cf.offs, m.ChunkOff)
	cf.offs[nc] = metaOff
	for c := 0; c < nc; c++ {
		lo, hi := cf.offs[c], cf.offs[c+1]
		if lo < chunkDataStart || hi < lo+cf.chunkDataLen(c) || lo%8 != 0 {
			return nil, fmt.Errorf("dataset: chunk %d spans [%d,%d), impossible", c, lo, hi)
		}
	}
	return cf, nil
}

func (cf *chunkFile) Close() error { return cf.f.Close() }

func (cf *chunkFile) numChunks() int { return len(cf.offs) - 1 }

// rowsOf returns the row count of chunk c (the final chunk may be partial).
func (cf *chunkFile) rowsOf(c int) int {
	r := cf.meta.NRows - c*cf.meta.ChunkRows
	if r > cf.meta.ChunkRows {
		r = cf.meta.ChunkRows
	}
	return r
}

func (cf *chunkFile) flagsPad() int64 { return pad8(int64((cf.na + 7) / 8)) }

// chunkDataLen is the minimum byte length of chunk c: flags + values
// (masks add more when present).
func (cf *chunkFile) chunkDataLen(c int) int64 {
	return cf.flagsPad() + int64(cf.rowsOf(c))*int64(cf.na)*8
}

// maxSpan returns the largest chunk byte span — the slot buffer size the
// cached backing needs.
func (cf *chunkFile) maxSpan() int64 {
	var m int64
	for c := 0; c < cf.numChunks(); c++ {
		if s := cf.offs[c+1] - cf.offs[c]; s > m {
			m = s
		}
	}
	return m
}

// decodeChunkInto wires a chunk's raw bytes into cols/missing slices
// (length na each, reused across loads so the decode allocates nothing)
// and returns the assembled Columns. buf aliases, so it must stay live —
// and unmodified — while the Columns is in use.
func (cf *chunkFile) decodeChunkInto(c int, buf []byte, cols [][]float64, missing [][]bool) Columns {
	r := cf.rowsOf(c)
	flags := buf[:(cf.na+7)/8]
	p := cf.flagsPad()
	for k := 0; k < cf.na; k++ {
		cols[k] = f64view(buf[p : p+int64(r)*8])
		p += int64(r) * 8
	}
	for k := 0; k < cf.na; k++ {
		if flags[k/8]&(1<<(k%8)) != 0 {
			missing[k] = boolview(buf[p : p+int64(r)])
			p += int64(r)
		} else {
			missing[k] = nil
		}
	}
	return Columns{n: r, cols: cols, missing: missing}
}

// readChunk preads chunk c's full byte span into buf (which must be
// 8-aligned with capacity ≥ the span) and returns the filled prefix.
func (cf *chunkFile) readChunk(c int, buf []byte) ([]byte, error) {
	span := cf.offs[c+1] - cf.offs[c]
	b := buf[:span]
	if _, err := cf.f.ReadAt(b, cf.offs[c]); err != nil {
		return nil, fmt.Errorf("dataset: reading chunk %d: %w", c, err)
	}
	return b, nil
}

// alignedBuf allocates an 8-aligned byte buffer of at least n bytes.
func alignedBuf(n int64) []byte {
	return bytesOfF64(make([]float64, (n+7)/8))[:n]
}

// ChunkMode selects the backing OpenChunked builds over a chunk file.
type ChunkMode int

const (
	// ChunkAuto memory-maps the file when the platform supports it and
	// falls back to ChunkCached otherwise. The default.
	ChunkAuto ChunkMode = iota
	// ChunkInMemory eagerly loads every chunk into RAM — the file-loading
	// twin of the materialized default, mostly for equivalence tests.
	ChunkInMemory
	// ChunkMmap memory-maps the file (error where unsupported): the OS
	// page cache is the residency policy.
	ChunkMmap
	// ChunkCached keeps a bounded number of chunks resident and faults
	// the rest on demand — the explicit-budget backing.
	ChunkCached
)

// ChunkOptions configures OpenChunked.
type ChunkOptions struct {
	// Mode selects the backing (default ChunkAuto).
	Mode ChunkMode
	// MemoryBudget bounds the ChunkCached backing's resident bytes; the
	// resident chunk cap is derived from the file's chunk span. Zero
	// means "unbounded" (every chunk may stay resident).
	MemoryBudget int64
	// Chunks explicitly caps resident chunks for ChunkCached, overriding
	// MemoryBudget. The effective cap is never below 2.
	Chunks int
}

// residentCap derives the ChunkCached slot count from the options.
func (o *ChunkOptions) residentCap(cf *chunkFile) int {
	b := o.Chunks
	if b <= 0 && o.MemoryBudget > 0 {
		span := cf.maxSpan()
		if span > 0 {
			b = int(o.MemoryBudget / span)
		}
	}
	if b <= 0 || b > cf.numChunks() {
		b = cf.numChunks()
	}
	if b < 2 {
		b = 2
	}
	return b
}

// OpenChunked opens a chunk file as a chunk-backed ("virtual") Dataset.
// The returned dataset has no row-major storage; kernels walk its chunk
// plane, and the backing (selected by opts.Mode) decides how many bytes
// are resident at once. Close releases the file and any mapping.
func OpenChunked(path string, opts ChunkOptions) (*Dataset, error) {
	cf, err := openChunkFile(path)
	if err != nil {
		return nil, err
	}
	var store ChunkStore
	closer := func() error { return cf.Close() }
	switch opts.Mode {
	case ChunkInMemory:
		store, err = loadAllChunks(cf)
		if err == nil {
			// Everything is copied into RAM; the file can close now.
			err = cf.Close()
			closer = nil
		}
	case ChunkMmap:
		store, closer, err = newMmapStore(cf)
	case ChunkCached:
		store = newCachedStore(cf, opts.residentCap(cf))
	case ChunkAuto:
		store, closer, err = newMmapStore(cf)
		if err != nil {
			// No mapping on this platform (or it failed): bounded cache
			// over pread, same bytes, same chunks.
			store = newCachedStore(cf, opts.residentCap(cf))
			closer = func() error { return cf.Close() }
			err = nil
		}
	default:
		err = fmt.Errorf("dataset: unknown chunk mode %d", int(opts.Mode))
	}
	if err != nil {
		cf.Close()
		return nil, err
	}
	d, err := fromChunks(cf.meta.Name, cf.meta.Attrs, store, closer)
	if err != nil {
		if closer != nil {
			closer()
		}
		return nil, err
	}
	return d, nil
}

// loadAllChunks eagerly decodes the whole file into an in-memory store.
func loadAllChunks(cf *chunkFile) (ChunkStore, error) {
	nc := cf.numChunks()
	st := &memChunkStore{
		rows:      cf.meta.NRows,
		na:        cf.na,
		chunkRows: cf.meta.ChunkRows,
		chunks:    make([]Columns, nc),
	}
	for c := 0; c < nc; c++ {
		buf := alignedBuf(cf.offs[c+1] - cf.offs[c])
		b, err := cf.readChunk(c, buf)
		if err != nil {
			return nil, err
		}
		st.chunks[c] = cf.decodeChunkInto(c, b, make([][]float64, cf.na), make([][]bool, cf.na))
	}
	return st, nil
}

// mmapStore serves chunks as zero-copy views of a memory-mapped chunk
// file. Residency is the kernel's business (page cache + madvise-free
// reclaim), so Acquire/Release are no-ops and the whole store is one
// []Columns of slice headers built at open.
type mmapStore struct {
	rows, na, chunkRows int
	chunks              []Columns
}

// newMmapStore maps cf and builds the chunk views. On platforms without
// mmap support (or when the map fails) it returns an error and leaves cf
// open for a fallback backing.
func newMmapStore(cf *chunkFile) (ChunkStore, func() error, error) {
	st, err := cf.f.Stat()
	if err != nil {
		return nil, nil, err
	}
	data, unmap, err := mmapFile(cf.f, st.Size())
	if err != nil {
		return nil, nil, err
	}
	nc := cf.numChunks()
	ms := &mmapStore{
		rows:      cf.meta.NRows,
		na:        cf.na,
		chunkRows: cf.meta.ChunkRows,
		chunks:    make([]Columns, nc),
	}
	for c := 0; c < nc; c++ {
		buf := data[cf.offs[c]:cf.offs[c+1]]
		ms.chunks[c] = cf.decodeChunkInto(c, buf, make([][]float64, cf.na), make([][]bool, cf.na))
	}
	closer := func() error {
		uerr := unmap()
		cerr := cf.Close()
		if uerr != nil {
			return uerr
		}
		return cerr
	}
	return ms, closer, nil
}

func (m *mmapStore) NumRows() int           { return m.rows }
func (m *mmapStore) NumAttrs() int          { return m.na }
func (m *mmapStore) ChunkRows() int         { return m.chunkRows }
func (m *mmapStore) NumChunks() int         { return len(m.chunks) }
func (m *mmapStore) Acquire(c int) *Columns { return &m.chunks[c] }
func (m *mmapStore) Release(int)            {}

// CacheStats snapshots a cached backing's behavior.
type CacheStats struct {
	// Hits and Loads partition Acquire calls; Evictions counts chunks
	// displaced to make room.
	Hits, Loads, Evictions uint64
	// Resident is the current resident chunk count, HighWater its peak.
	// HighWater exceeding the configured cap means concurrent pins
	// overshot the budget (see cachedStore).
	Resident, HighWater int
}

// cacheSlot is one resident-chunk frame of the cached backing.
type cacheSlot struct {
	chunk   int // -1 when free
	pins    int
	loading bool
	buf     []byte
	colsB   [][]float64
	missB   [][]bool
	cols    Columns
}

// cachedStore keeps at most `cap` chunks resident, faulting the rest from
// the file on demand with pread. A chunk is pinned while acquired;
// eviction (clock scan) only takes unpinned slots. When every slot is
// pinned and another chunk is needed, the store allocates a transient
// overshoot slot rather than risk deadlock — HighWater records how far it
// went, and overshoot frames are freed again at Release. Steady state
// (pins ≤ cap) performs zero allocations per fault: slot buffers and
// slice headers are reused, and the pread lands directly in the slot
// buffer.
type cachedStore struct {
	cf  *chunkFile
	cap int

	mu     sync.Mutex
	cond   *sync.Cond
	slotOf []int32 // chunk → slot index, -1 when absent
	slots  []*cacheSlot
	clock  int
	live   int // slots with an allocated buffer
	stats  CacheStats
}

func newCachedStore(cf *chunkFile, capSlots int) *cachedStore {
	s := &cachedStore{
		cf:     cf,
		cap:    capSlots,
		slotOf: make([]int32, cf.numChunks()),
	}
	for i := range s.slotOf {
		s.slotOf[i] = -1
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *cachedStore) NumRows() int   { return s.cf.meta.NRows }
func (s *cachedStore) NumAttrs() int  { return s.cf.na }
func (s *cachedStore) ChunkRows() int { return s.cf.meta.ChunkRows }
func (s *cachedStore) NumChunks() int { return s.cf.numChunks() }

// Stats returns a snapshot of the cache counters.
func (s *cachedStore) Stats() CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Resident = s.live
	return st
}

func (s *cachedStore) Acquire(c int) *Columns {
	s.mu.Lock()
	for {
		if si := s.slotOf[c]; si >= 0 {
			slot := s.slots[si]
			if slot.loading {
				// Another goroutine is filling this slot; wait for it.
				s.cond.Wait()
				continue
			}
			slot.pins++
			s.stats.Hits++
			s.mu.Unlock()
			return &slot.cols
		}
		slot := s.claimSlot()
		// Publish the claim before dropping the lock so concurrent
		// acquirers of the same chunk wait instead of double-loading.
		slot.chunk = c
		slot.loading = true
		s.slotOf[c] = s.slotIndex(slot)
		s.stats.Loads++
		s.mu.Unlock()

		b, err := s.cf.readChunk(c, slot.buf)
		s.mu.Lock()
		slot.loading = false
		if err != nil {
			s.slotOf[c] = -1
			slot.chunk = -1
			s.cond.Broadcast()
			s.mu.Unlock()
			// The ChunkStore contract has no error channel; training
			// cannot continue without the data, so fail loudly.
			panic(err)
		}
		slot.cols = s.cf.decodeChunkInto(c, b, slot.colsB, slot.missB)
		slot.pins = 1
		s.cond.Broadcast()
		s.mu.Unlock()
		return &slot.cols
	}
}

func (s *cachedStore) Release(c int) {
	s.mu.Lock()
	si := s.slotOf[c]
	if si < 0 {
		s.mu.Unlock()
		panic(fmt.Sprintf("dataset: Release of non-resident chunk %d", c))
	}
	slot := s.slots[si]
	slot.pins--
	if slot.pins == 0 {
		if s.live > s.cap {
			// An overshoot frame: give the memory back immediately.
			s.slotOf[c] = -1
			slot.chunk = -1
			slot.buf = nil
			slot.cols = Columns{}
			s.live--
			s.stats.Evictions++
		}
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// slotIndex locates slot in s.slots (slots is small — at most the
// resident cap plus transient overshoot).
func (s *cachedStore) slotIndex(slot *cacheSlot) int32 {
	for i, sl := range s.slots {
		if sl == slot {
			return int32(i)
		}
	}
	panic("dataset: unknown cache slot")
}

// claimSlot returns a frame to load into: a free slot, an evictable
// (unpinned) one, or — when the budget is exhausted and everything is
// pinned — a fresh overshoot frame. Called with mu held.
func (s *cachedStore) claimSlot() *cacheSlot {
	// Reuse a dead frame (from a past overshoot) before allocating.
	for _, sl := range s.slots {
		if sl.chunk == -1 {
			if sl.buf == nil {
				s.allocFrame(sl)
			}
			return sl
		}
	}
	if s.live < s.cap {
		sl := &cacheSlot{chunk: -1}
		s.allocFrame(sl)
		s.slots = append(s.slots, sl)
		return sl
	}
	// Clock scan for an unpinned resident chunk to evict.
	n := len(s.slots)
	for i := 0; i < n; i++ {
		sl := s.slots[(s.clock+i)%n]
		if sl.pins == 0 && !sl.loading && sl.chunk >= 0 {
			s.clock = (s.clock + i + 1) % n
			s.slotOf[sl.chunk] = -1
			sl.chunk = -1
			s.stats.Evictions++
			return sl
		}
	}
	// Every slot pinned: overshoot rather than deadlock.
	sl := &cacheSlot{chunk: -1}
	s.allocFrame(sl)
	s.slots = append(s.slots, sl)
	return sl
}

// allocFrame sizes a slot's buffers. Called with mu held.
func (s *cachedStore) allocFrame(sl *cacheSlot) {
	sl.buf = alignedBuf(s.cf.maxSpan())
	if sl.colsB == nil {
		sl.colsB = make([][]float64, s.cf.na)
		sl.missB = make([][]bool, s.cf.na)
	}
	s.live++
	if s.live > s.stats.HighWater {
		s.stats.HighWater = s.live
	}
}
