//go:build !unix

package dataset

import (
	"errors"
	"os"
)

// mmapFile is unavailable on this platform; ChunkAuto falls back to the
// bounded pread-backed cache, ChunkMmap returns this error.
func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	return nil, nil, errors.New("dataset: memory mapping not supported on this platform")
}
