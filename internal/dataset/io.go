package dataset

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// The text format is a simplified analogue of AutoClass C's .hd2/.db2 file
// pair, folded into one file:
//
//	# pautoclass dataset v1
//	# name: mydata
//	real x
//	real y
//	discrete color red green blue
//	---
//	1.5 2.25 red
//	0.5 ? blue
//
// "?" denotes a missing value. Comment lines start with '#'.

const (
	textMagic  = "# pautoclass dataset v1"
	missingTok = "?"
)

// WriteText serializes the dataset in the text format.
func WriteText(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, textMagic)
	if d.Name != "" {
		fmt.Fprintf(bw, "# name: %s\n", d.Name)
	}
	for k := range d.attrs {
		a := &d.attrs[k]
		switch a.Type {
		case Real:
			fmt.Fprintf(bw, "real %s\n", a.Name)
		case Discrete:
			fmt.Fprintf(bw, "discrete %s %s\n", a.Name, strings.Join(a.Levels, " "))
		}
	}
	fmt.Fprintln(bw, "---")
	rowBuf := make([]float64, len(d.attrs))
	for i := 0; i < d.n; i++ {
		row := d.RowTo(rowBuf, i)
		for k, v := range row {
			if k > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if IsMissing(v) {
				bw.WriteString(missingTok)
				continue
			}
			if d.attrs[k].Type == Discrete {
				bw.WriteString(d.attrs[k].Levels[int(v)])
			} else {
				bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses a dataset in the text format.
func ReadText(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	if !sc.Scan() {
		return nil, errors.New("dataset: empty input")
	}
	if strings.TrimSpace(sc.Text()) != textMagic {
		return nil, fmt.Errorf("dataset: bad magic line %q", sc.Text())
	}
	name := ""
	var attrs []Attribute
	inHeader := true
	lineNo := 1
	for inHeader {
		if !sc.Scan() {
			return nil, errors.New("dataset: missing --- separator")
		}
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "---":
			inHeader = false
		case line == "":
			// skip blank
		case strings.HasPrefix(line, "# name:"):
			name = strings.TrimSpace(strings.TrimPrefix(line, "# name:"))
		case strings.HasPrefix(line, "#"):
			// comment
		default:
			fields := strings.Fields(line)
			switch fields[0] {
			case "real":
				if len(fields) != 2 {
					return nil, fmt.Errorf("dataset: line %d: real attribute needs exactly a name", lineNo)
				}
				attrs = append(attrs, Attribute{Name: fields[1], Type: Real})
			case "discrete":
				if len(fields) < 4 {
					return nil, fmt.Errorf("dataset: line %d: discrete attribute needs a name and >=2 levels", lineNo)
				}
				attrs = append(attrs, Attribute{Name: fields[1], Type: Discrete, Levels: fields[2:]})
			default:
				return nil, fmt.Errorf("dataset: line %d: unknown attribute kind %q", lineNo, fields[0])
			}
		}
	}
	ds, err := New(name, attrs)
	if err != nil {
		return nil, err
	}
	// Pre-build level lookup maps.
	levelIdx := make([]map[string]int, len(attrs))
	for k := range attrs {
		if attrs[k].Type == Discrete {
			m := make(map[string]int, len(attrs[k].Levels))
			for i, l := range attrs[k].Levels {
				m[l] = i
			}
			levelIdx[k] = m
		}
	}
	row := make([]float64, len(attrs))
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != len(attrs) {
			return nil, fmt.Errorf("dataset: line %d: %d values for %d attributes", lineNo, len(fields), len(attrs))
		}
		for k, tok := range fields {
			if tok == missingTok {
				row[k] = Missing
				continue
			}
			if attrs[k].Type == Discrete {
				idx, ok := levelIdx[k][tok]
				if !ok {
					return nil, fmt.Errorf("dataset: line %d: unknown level %q for attribute %q", lineNo, tok, attrs[k].Name)
				}
				row[k] = float64(idx)
			} else {
				v, err := strconv.ParseFloat(tok, 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: line %d: bad real value %q: %v", lineNo, tok, err)
				}
				row[k] = v
			}
		}
		if err := ds.AppendRow(row); err != nil {
			return nil, fmt.Errorf("dataset: line %d: %v", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ds, nil
}

// Binary format: a compact little-endian encoding used for large synthetic
// datasets where text parsing would dominate benchmark setup.
//
//	magic "PACD" | uint32 version | uint32 nameLen | name bytes
//	uint32 nattrs, per attribute: uint8 type | uint32 nameLen | name |
//	  uint32 nlevels | per level (uint32 len | bytes)
//	uint64 nrows | nrows*nattrs float64 bits
var binMagic = [4]byte{'P', 'A', 'C', 'D'}

const binVersion = 1

// WriteBinary serializes the dataset in the binary format.
func WriteBinary(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binMagic[:]); err != nil {
		return err
	}
	writeU32 := func(v uint32) { binary.Write(bw, binary.LittleEndian, v) }
	writeStr := func(s string) {
		writeU32(uint32(len(s)))
		bw.WriteString(s)
	}
	writeU32(binVersion)
	writeStr(d.Name)
	writeU32(uint32(len(d.attrs)))
	for k := range d.attrs {
		a := &d.attrs[k]
		bw.WriteByte(byte(a.Type))
		writeStr(a.Name)
		writeU32(uint32(len(a.Levels)))
		for _, l := range a.Levels {
			writeStr(l)
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(d.n)); err != nil {
		return err
	}
	buf := make([]byte, 8)
	row := make([]float64, len(d.attrs))
	for i := 0; i < d.n; i++ {
		for _, v := range d.RowTo(row, i) {
			binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary parses a dataset in the binary format.
func ReadBinary(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("dataset: reading magic: %w", err)
	}
	if magic != binMagic {
		return nil, fmt.Errorf("dataset: bad binary magic %q", magic[:])
	}
	readU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(br, binary.LittleEndian, &v)
		return v, err
	}
	readStr := func() (string, error) {
		n, err := readU32()
		if err != nil {
			return "", err
		}
		if n > 1<<20 {
			return "", fmt.Errorf("dataset: unreasonable string length %d", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	ver, err := readU32()
	if err != nil {
		return nil, err
	}
	if ver != binVersion {
		return nil, fmt.Errorf("dataset: unsupported binary version %d", ver)
	}
	name, err := readStr()
	if err != nil {
		return nil, err
	}
	nattrs, err := readU32()
	if err != nil {
		return nil, err
	}
	if nattrs == 0 || nattrs > 1<<16 {
		return nil, fmt.Errorf("dataset: unreasonable attribute count %d", nattrs)
	}
	attrs := make([]Attribute, nattrs)
	for k := range attrs {
		tb, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		attrs[k].Type = AttrType(tb)
		if attrs[k].Name, err = readStr(); err != nil {
			return nil, err
		}
		nlevels, err := readU32()
		if err != nil {
			return nil, err
		}
		if nlevels > 1<<20 {
			return nil, fmt.Errorf("dataset: unreasonable level count %d", nlevels)
		}
		for i := uint32(0); i < nlevels; i++ {
			l, err := readStr()
			if err != nil {
				return nil, err
			}
			attrs[k].Levels = append(attrs[k].Levels, l)
		}
	}
	ds, err := New(name, attrs)
	if err != nil {
		return nil, err
	}
	var nrows uint64
	if err := binary.Read(br, binary.LittleEndian, &nrows); err != nil {
		return nil, err
	}
	total := nrows * uint64(nattrs)
	if total > 1<<33 {
		return nil, fmt.Errorf("dataset: unreasonable cell count %d", total)
	}
	ds.data = make([]float64, 0, total)
	buf := make([]byte, 8)
	row := make([]float64, nattrs)
	for i := uint64(0); i < nrows; i++ {
		for k := range row {
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, fmt.Errorf("dataset: truncated at row %d: %w", i, err)
			}
			row[k] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
		}
		if err := ds.AppendRow(row); err != nil {
			return nil, fmt.Errorf("dataset: row %d: %w", i, err)
		}
	}
	return ds, nil
}

// SaveFile writes the dataset to path, choosing the binary format when the
// path ends in ".bin" and the text format otherwise.
func SaveFile(path string, d *Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		if err := WriteBinary(f, d); err != nil {
			return err
		}
	} else if err := WriteText(f, d); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a dataset from path, choosing the format by extension:
// ".bin" binary, ".csv" comma-separated with schema inference, anything
// else the native text format.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(path, ".bin"):
		return ReadBinary(f)
	case strings.HasSuffix(path, ".csv"):
		base := filepath.Base(path)
		return ReadCSV(f, strings.TrimSuffix(base, ".csv"))
	default:
		return ReadText(f)
	}
}
