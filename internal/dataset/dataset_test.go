package dataset

import (
	"math"
	"testing"
	"testing/quick"
)

func twoRealSchema() []Attribute {
	return []Attribute{
		{Name: "x", Type: Real},
		{Name: "y", Type: Real},
	}
}

func mixedSchema() []Attribute {
	return []Attribute{
		{Name: "x", Type: Real},
		{Name: "color", Type: Discrete, Levels: []string{"red", "green", "blue"}},
	}
}

func TestNewRejectsBadSchemas(t *testing.T) {
	cases := map[string][]Attribute{
		"empty":            {},
		"unnamed":          {{Name: "", Type: Real}},
		"real-with-levels": {{Name: "x", Type: Real, Levels: []string{"a", "b"}}},
		"one-level":        {{Name: "c", Type: Discrete, Levels: []string{"only"}}},
		"dup-level":        {{Name: "c", Type: Discrete, Levels: []string{"a", "a"}}},
		"empty-level":      {{Name: "c", Type: Discrete, Levels: []string{"a", ""}}},
		"dup-name":         {{Name: "x", Type: Real}, {Name: "x", Type: Real}},
		"bad-type":         {{Name: "x", Type: AttrType(99)}},
	}
	for name, attrs := range cases {
		if _, err := New("t", attrs); err == nil {
			t.Errorf("schema %q should be rejected", name)
		}
	}
}

func TestAppendAndAccess(t *testing.T) {
	ds := MustNew("t", mixedSchema())
	if err := ds.AppendRow([]float64{1.5, 2}); err != nil {
		t.Fatal(err)
	}
	if err := ds.AppendRow([]float64{Missing, 0}); err != nil {
		t.Fatal(err)
	}
	if ds.N() != 2 || ds.NumAttrs() != 2 {
		t.Fatalf("N=%d NumAttrs=%d", ds.N(), ds.NumAttrs())
	}
	if ds.Value(0, 0) != 1.5 || ds.Value(0, 1) != 2 {
		t.Fatalf("row 0 = %v", ds.Row(0))
	}
	if !IsMissing(ds.Value(1, 0)) {
		t.Fatal("missing value not preserved")
	}
}

func TestAppendRowValidation(t *testing.T) {
	ds := MustNew("t", mixedSchema())
	if err := ds.AppendRow([]float64{1}); err == nil {
		t.Error("short row accepted")
	}
	if err := ds.AppendRow([]float64{1, 3}); err == nil {
		t.Error("out-of-range level index accepted")
	}
	if err := ds.AppendRow([]float64{1, 1.5}); err == nil {
		t.Error("non-integer level index accepted")
	}
	if err := ds.AppendRow([]float64{math.Inf(1), 0}); err == nil {
		t.Error("infinite real accepted")
	}
	if ds.N() != 0 {
		t.Fatalf("failed appends must not grow the dataset, N=%d", ds.N())
	}
}

func TestViewWindows(t *testing.T) {
	ds := MustNew("t", twoRealSchema())
	for i := 0; i < 10; i++ {
		if err := ds.AppendRow([]float64{float64(i), float64(i * 10)}); err != nil {
			t.Fatal(err)
		}
	}
	v, err := ds.View(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v.N() != 4 || v.Start() != 3 {
		t.Fatalf("view N=%d start=%d", v.N(), v.Start())
	}
	if v.Value(0, 0) != 3 || v.Value(3, 1) != 60 {
		t.Fatalf("view values wrong: %v %v", v.Value(0, 0), v.Value(3, 1))
	}
	if _, err := ds.View(8, 5); err == nil {
		t.Error("out-of-range view accepted")
	}
	if _, err := ds.View(-1, 2); err == nil {
		t.Error("negative view accepted")
	}
	all := ds.All()
	if all.N() != 10 {
		t.Fatalf("All() N=%d", all.N())
	}
}

func TestSummarize(t *testing.T) {
	ds := MustNew("t", mixedSchema())
	rows := [][]float64{
		{1, 0}, {2, 0}, {3, 1}, {Missing, 2}, {4, Missing},
	}
	for _, r := range rows {
		if err := ds.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	s := ds.Summarize()
	if s.N != 5 {
		t.Fatalf("N=%d", s.N)
	}
	if got := s.Real[0].Mean(); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("real mean %v, want 2.5", got)
	}
	if s.Min[0] != 1 || s.Max[0] != 4 {
		t.Fatalf("min/max = %v/%v", s.Min[0], s.Max[0])
	}
	if s.MissingCount[0] != 1 || s.MissingCount[1] != 1 {
		t.Fatalf("missing counts %v", s.MissingCount)
	}
	wantCounts := []int{2, 1, 1}
	for i, w := range wantCounts {
		if s.Counts[1][i] != w {
			t.Fatalf("counts = %v, want %v", s.Counts[1], wantCounts)
		}
	}
}

func TestCloneHeadEqual(t *testing.T) {
	ds := MustNew("t", twoRealSchema())
	for i := 0; i < 5; i++ {
		ds.AppendRow([]float64{float64(i), Missing})
	}
	c := ds.Clone()
	if !ds.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.data[0] = 99
	if ds.Equal(c) {
		t.Fatal("clone shares storage with original")
	}
	h := ds.Head(3)
	if h.N() != 3 || h.Value(2, 0) != 2 {
		t.Fatalf("head wrong: N=%d", h.N())
	}
	if big := ds.Head(100); big.N() != 5 {
		t.Fatalf("Head beyond N should clamp, got %d", big.N())
	}
}

func TestBlockPartitionTiles(t *testing.T) {
	for _, c := range []struct{ n, p int }{
		{0, 1}, {1, 1}, {10, 3}, {10, 10}, {10, 16}, {100000, 7},
	} {
		parts, err := BlockPartition(c.n, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if len(parts) != c.p {
			t.Fatalf("(%d,%d): %d parts", c.n, c.p, len(parts))
		}
		pos := 0
		minLen, maxLen := c.n+1, -1
		for _, r := range parts {
			if r.Lo != pos {
				t.Fatalf("(%d,%d): gap or overlap at %d", c.n, c.p, pos)
			}
			if r.Len() < 0 {
				t.Fatalf("(%d,%d): negative block", c.n, c.p)
			}
			if r.Len() < minLen {
				minLen = r.Len()
			}
			if r.Len() > maxLen {
				maxLen = r.Len()
			}
			pos = r.Hi
		}
		if pos != c.n {
			t.Fatalf("(%d,%d): blocks cover %d of %d rows", c.n, c.p, pos, c.n)
		}
		if maxLen-minLen > 1 {
			t.Fatalf("(%d,%d): imbalanced blocks min=%d max=%d", c.n, c.p, minLen, maxLen)
		}
	}
}

func TestBlockPartitionErrors(t *testing.T) {
	if _, err := BlockPartition(10, 0); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := BlockPartition(-1, 2); err == nil {
		t.Error("n<0 accepted")
	}
	if _, err := BlockRange(10, 4, 4); err == nil {
		t.Error("rank out of range accepted")
	}
}

func TestQuickBlockPartitionProperty(t *testing.T) {
	f := func(nRaw uint16, pRaw uint8) bool {
		n := int(nRaw)
		p := int(pRaw%32) + 1
		parts, err := BlockPartition(n, p)
		if err != nil {
			return false
		}
		covered := 0
		pos := 0
		for _, r := range parts {
			if r.Lo != pos || r.Hi < r.Lo {
				return false
			}
			covered += r.Len()
			pos = r.Hi
		}
		return covered == n && pos == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionViews(t *testing.T) {
	ds := MustNew("t", twoRealSchema())
	for i := 0; i < 11; i++ {
		ds.AppendRow([]float64{float64(i), 0})
	}
	views, err := PartitionViews(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	next := 0.0
	for _, v := range views {
		for i := 0; i < v.N(); i++ {
			if v.Value(i, 0) != next {
				t.Fatalf("row order broken: got %v want %v", v.Value(i, 0), next)
			}
			next++
			total++
		}
	}
	if total != 11 {
		t.Fatalf("views cover %d rows", total)
	}
}

func TestGrowPreservesData(t *testing.T) {
	ds := MustNew("t", twoRealSchema())
	ds.AppendRow([]float64{1, 2})
	ds.Grow(1000)
	if ds.N() != 1 || ds.Value(0, 1) != 2 {
		t.Fatal("Grow corrupted data")
	}
}

func TestSplitShuffled(t *testing.T) {
	ds := MustNew("s", twoRealSchema())
	for i := 0; i < 100; i++ {
		ds.AppendRow([]float64{float64(i), 0})
	}
	train, test, err := SplitShuffled(ds, 0.7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if train.N()+test.N() != 100 {
		t.Fatalf("split sizes %d+%d", train.N(), test.N())
	}
	if train.N() != 70 {
		t.Fatalf("train N=%d", train.N())
	}
	// Every original value appears exactly once across the split.
	seen := make(map[float64]int)
	for _, part := range []*Dataset{train, test} {
		for i := 0; i < part.N(); i++ {
			seen[part.Value(i, 0)]++
		}
	}
	for i := 0; i < 100; i++ {
		if seen[float64(i)] != 1 {
			t.Fatalf("row %d appears %d times", i, seen[float64(i)])
		}
	}
	// Deterministic.
	train2, _, err := SplitShuffled(ds, 0.7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !train.Equal(train2) {
		t.Fatal("same-seed split differs")
	}
	// Different seed differs.
	train3, _, _ := SplitShuffled(ds, 0.7, 4)
	if train.Equal(train3) {
		t.Fatal("different-seed split identical")
	}
	// Shuffled, not a prefix.
	prefix := true
	for i := 0; i < train.N(); i++ {
		if train.Value(i, 0) != float64(i) {
			prefix = false
			break
		}
	}
	if prefix {
		t.Fatal("split is an unshuffled prefix")
	}
}

func TestSplitShuffledValidation(t *testing.T) {
	ds := MustNew("s", twoRealSchema())
	ds.AppendRow([]float64{1, 2})
	if _, _, err := SplitShuffled(ds, 0, 1); err == nil {
		t.Error("frac 0 accepted")
	}
	if _, _, err := SplitShuffled(ds, 1, 1); err == nil {
		t.Error("frac 1 accepted")
	}
	if _, _, err := SplitShuffled(ds, 0.5, 1); err == nil {
		t.Error("1-row dataset split accepted")
	}
}
