package logx

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNewTextAndLevels(t *testing.T) {
	var buf bytes.Buffer
	log, err := New(&buf, "text", "warn")
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hidden")
	log.Warn("shown", "k", "v")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Errorf("info record emitted at warn level: %q", out)
	}
	if !strings.Contains(out, "shown") || !strings.Contains(out, "k=v") {
		t.Errorf("warn record missing or unstructured: %q", out)
	}
}

func TestNewJSON(t *testing.T) {
	var buf bytes.Buffer
	log, err := New(&buf, "json", "debug")
	if err != nil {
		t.Fatal(err)
	}
	log.Debug("event", "n", 3)
	var rec struct {
		Level string  `json:"level"`
		Msg   string  `json:"msg"`
		N     float64 `json:"n"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("json handler produced unparseable output %q: %v", buf.String(), err)
	}
	if rec.Level != "DEBUG" || rec.Msg != "event" || rec.N != 3 {
		t.Errorf("decoded record %+v", rec)
	}
}

func TestNewDefaults(t *testing.T) {
	var buf bytes.Buffer
	log, err := New(&buf, "", "")
	if err != nil {
		t.Fatal(err)
	}
	log.Debug("hidden")
	log.Info("shown")
	if strings.Contains(buf.String(), "hidden") {
		t.Error("default level passed a debug record")
	}
	if !strings.Contains(buf.String(), "shown") {
		t.Error("default level dropped an info record")
	}
}

func TestNewRejectsUnknown(t *testing.T) {
	var buf bytes.Buffer
	if _, err := New(&buf, "yaml", "info"); err == nil ||
		!strings.Contains(err.Error(), "yaml") {
		t.Errorf("unknown format error = %v", err)
	}
	if _, err := New(&buf, "text", "loud"); err == nil ||
		!strings.Contains(err.Error(), "loud") {
		t.Errorf("unknown level error = %v", err)
	}
}
