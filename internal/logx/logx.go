// Package logx builds the structured loggers shared by the repro binaries:
// one constructor mapping the conventional -log-format/-log-level flag
// values onto log/slog handlers, so every command logs the same way.
package logx

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// New returns a logger writing to w. format is "text" (the default) or
// "json"; level is one of "debug", "info" (default), "warn", "error".
// Unknown values are errors so a typo fails fast at startup instead of
// silently logging at the wrong level.
func New(w io.Writer, format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("logx: unknown log level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("logx: unknown log format %q (want text or json)", format)
	}
}
