// Package pautoclass implements P-AutoClass, the paper's contribution: an
// SPMD parallelization of the AutoClass Bayesian clustering engine for
// shared-nothing MIMD machines (paper §3).
//
// The dataset is block-partitioned across the ranks of an mpi group; every
// rank runs the identical BIG_LOOP and base_cycle code over its local
// partition, and the only communication is the total exchange of
// intermediate results:
//
//   - update_wts: one Allreduce of the per-class weight sums w_j plus the
//     data log-likelihood (paper Fig. 4);
//   - update_parameters: an Allreduce of each term's weighted sufficient
//     statistics, by default one per (class, term) pair exactly as the
//     paper's Fig. 5 places the exchange inside the class × attribute
//     loops, or one packed exchange per cycle as an ablation.
//
// Because every rank sees the identical reduced values, the replicated
// search drivers make identical decisions (class pruning, duplicate
// elimination, best-classification selection) and need no further
// coordination — the property the paper's SPMD design relies on.
//
// The package also implements the update_wts-only parallelization of
// Miller & Guo [7] as a baseline (Strategy WtsOnly), which the paper's §5
// compares against.
package pautoclass

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/autoclass"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Strategy selects the parallelization approach.
type Strategy int

const (
	// Full is P-AutoClass: both update_wts and update_parameters run in
	// parallel over the partitioned data.
	Full Strategy = iota
	// WtsOnly parallelizes only update_wts; the weight matrix is gathered
	// to rank 0, which recomputes the parameters over the whole dataset
	// and broadcasts them back — the prior MIMD prototype of [7].
	WtsOnly
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case Full:
		return "p-autoclass"
	case WtsOnly:
		return "wts-only"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Options configures a parallel run on one rank.
type Options struct {
	// EM configures the parameter-level search, including the intra-rank
	// Parallelism and the Kernels evaluation path — both flow unchanged
	// into every rank's engine (the WtsOnly baseline ignores Kernels; see
	// wtsonly.go).
	EM autoclass.Config
	// Strategy selects Full (P-AutoClass) or WtsOnly (baseline).
	Strategy Strategy
	// Clock, when non-nil, charges computation and communication to a
	// virtual machine model and keeps the group's clocks synchronized at
	// every collective. Each rank owns its own Clock over the same
	// Machine.
	Clock *simnet.Clock
	// AllreduceAlgo selects the collective algorithm for the statistics
	// exchanges (default ReduceBcast, the paper implementation's pattern).
	// It is applied to the communicator and to the virtual cost model.
	AllreduceAlgo mpi.AllreduceAlgo
	// Obs, when non-nil, records this rank's metrics and trace events. It
	// is installed as the communicator's collective observer and, when a
	// Clock is present, as the clock observer, and receives a per-cycle
	// engine callback. Observation never communicates, so trajectories are
	// bitwise identical with or without it.
	Obs *obs.Rank
	// Profile, when non-nil, accumulates per-phase wall time (§3.1-style
	// update_wts / update_parameters / update_approximations table).
	Profile *trace.Profile
	// SearchObs, when non-nil, receives try lifecycle events from the
	// replicated BIG_LOOP (Search, SearchCheckpointed). Every rank runs the
	// identical search loop, so events are emitted on rank 0 only — the
	// same Options value may be handed to every rank. Like Obs, it is
	// notification-only and never perturbs the trajectory.
	SearchObs autoclass.SearchObserver

	// cycleObs, when set, is a fully composed per-try cycle observer (the
	// TryCycle emitter chained to Obs) that the search drivers install in
	// place of Obs on the try's engine.
	cycleObs autoclass.CycleObserver
}

// install wires the rank's observer into the communicator, the virtual
// clock, and (via engine setters at the call sites) the EM engines. It is
// idempotent, so Search and RunTrial may both call it.
func (o *Options) install(comm *mpi.Comm) {
	if o.Obs == nil {
		return
	}
	comm.SetObserver(o.Obs)
	if o.Clock != nil {
		o.Obs.BindClock(o.Clock)
	}
}

// DefaultOptions returns Full-strategy options with engine defaults.
func DefaultOptions() Options {
	return Options{EM: autoclass.DefaultConfig(), Strategy: Full}
}

// PartitionView returns this rank's block of the dataset. Chunk-backed
// datasets partition on the ChunkAlign grid so every rank's view starts on
// a kernel-block boundary and the blocked kernels stay chunk-contained;
// alignment uses ChunkAlign — not the chunk size — so the partition is
// identical for every chunk size and backing.
func PartitionView(comm *mpi.Comm, ds *dataset.Dataset) (*dataset.View, error) {
	if ds.Chunked() {
		parts, err := dataset.AlignedBlockPartition(ds.N(), comm.Size(), dataset.ChunkAlign)
		if err != nil {
			return nil, err
		}
		rg := parts[comm.Rank()]
		return ds.View(rg.Lo, rg.Len())
	}
	rg, err := dataset.BlockRange(ds.N(), comm.Size(), comm.Rank())
	if err != nil {
		return nil, err
	}
	return ds.View(rg.Lo, rg.Len())
}

// allreduceReducer adapts the group Allreduce (plus the optional virtual
// clock synchronization) to the engine's Reducer hook.
type allreduceReducer struct {
	comm  *mpi.Comm
	clock *simnet.Clock
	algo  mpi.AllreduceAlgo
}

// NewAllreduceReducer returns an autoclass.Reducer that sums buffers across
// the group with Allreduce, charging the optional virtual clock at every
// exchange. It is exported for harnesses that drive the Engine cycle by
// cycle (e.g. the scaleup experiment).
func NewAllreduceReducer(comm *mpi.Comm, clock *simnet.Clock) autoclass.Reducer {
	return &allreduceReducer{comm: comm, clock: clock}
}

// NewAllreduceReducerAlgo is NewAllreduceReducer with an explicit
// collective algorithm for both the exchange and the cost model.
func NewAllreduceReducerAlgo(comm *mpi.Comm, clock *simnet.Clock, algo mpi.AllreduceAlgo) autoclass.Reducer {
	comm.SetAllreduceAlgo(algo)
	return &allreduceReducer{comm: comm, clock: clock, algo: algo}
}

// ReduceInPlace implements autoclass.Reducer.
func (r *allreduceReducer) ReduceInPlace(buf []float64) error {
	if err := r.comm.Allreduce(mpi.Sum, buf); err != nil {
		return err
	}
	if r.clock != nil {
		return r.clock.SyncAllreduceAlgo(r.comm, r.algo, len(buf))
	}
	return nil
}

// ParallelPriors computes the global data-dependent priors from distributed
// partitions: each rank summarizes its view, and per-attribute sums, counts
// and extrema are combined with Allreduce so every rank derives identical
// priors without ever seeing remote rows.
func ParallelPriors(comm *mpi.Comm, view *dataset.View, opts *Options) (*model.Priors, error) {
	ds := view.Dataset()
	na := ds.NumAttrs()
	// The priors phase must use — and charge for — the same collective
	// algorithm as the EM phase, one sync per real exchange, or the virtual
	// timeline diverges from the traffic actually generated.
	algo := mpi.ReduceBcast
	var clk *simnet.Clock
	if opts != nil {
		algo = opts.AllreduceAlgo
		clk = opts.Clock
	}
	comm.SetAllreduceAlgo(algo)
	syncClock := func(payload int) error {
		if clk == nil {
			return nil
		}
		return clk.SyncAllreduceAlgo(comm, algo, payload)
	}
	// Layout: per attribute [wKnown, sum, sumsq, missing, logW, logSum,
	// logSumSq, nonPositive] + discrete counts.
	const perAttr = 8
	sums := make([]float64, perAttr*na)
	mins := make([]float64, na)
	maxs := make([]float64, na)
	var counts []float64
	countOffset := make([]int, na)
	for k := 0; k < na; k++ {
		mins[k] = math.Inf(1)
		maxs[k] = math.Inf(-1)
		countOffset[k] = len(counts)
		if ds.Attr(k).Type == dataset.Discrete {
			counts = append(counts, make([]float64, ds.Attr(k).Cardinality())...)
		}
	}
	row := make([]float64, na)
	for i := 0; i < view.N(); i++ {
		view.RowTo(row, i)
		for k, v := range row {
			if dataset.IsMissing(v) {
				sums[perAttr*k+3]++
				continue
			}
			switch ds.Attr(k).Type {
			case dataset.Real:
				sums[perAttr*k] += 1
				sums[perAttr*k+1] += v
				sums[perAttr*k+2] += v * v
				if v > 0 {
					lv := math.Log(v)
					sums[perAttr*k+4] += 1
					sums[perAttr*k+5] += lv
					sums[perAttr*k+6] += lv * lv
				} else {
					sums[perAttr*k+7]++
				}
				if v < mins[k] {
					mins[k] = v
				}
				if v > maxs[k] {
					maxs[k] = v
				}
			case dataset.Discrete:
				counts[countOffset[k]+int(v)]++
			}
		}
	}
	if clk != nil {
		clk.ChargeOps(float64(view.N()) * float64(na))
	}
	if err := comm.Allreduce(mpi.Sum, sums); err != nil {
		return nil, fmt.Errorf("pautoclass: priors sums: %w", err)
	}
	if err := syncClock(len(sums)); err != nil {
		return nil, err
	}
	if err := comm.Allreduce(mpi.Min, mins); err != nil {
		return nil, fmt.Errorf("pautoclass: priors mins: %w", err)
	}
	if err := syncClock(len(mins)); err != nil {
		return nil, err
	}
	if err := comm.Allreduce(mpi.Max, maxs); err != nil {
		return nil, fmt.Errorf("pautoclass: priors maxs: %w", err)
	}
	if err := syncClock(len(maxs)); err != nil {
		return nil, err
	}
	if len(counts) > 0 {
		if err := comm.Allreduce(mpi.Sum, counts); err != nil {
			return nil, fmt.Errorf("pautoclass: priors counts: %w", err)
		}
		if err := syncClock(len(counts)); err != nil {
			return nil, err
		}
	}
	nGlobal, err := comm.AllreduceFloat64(mpi.Sum, float64(view.N()))
	if err != nil {
		return nil, fmt.Errorf("pautoclass: priors n: %w", err)
	}
	if err := syncClock(1); err != nil {
		return nil, err
	}
	// Rebuild a dataset.Summary from the reduced values and derive priors
	// through the same code path the sequential engine uses.
	sum := &dataset.Summary{
		N:            int(nGlobal),
		Real:         make([]stats.Moments, na),
		LogReal:      make([]stats.Moments, na),
		NonPositive:  make([]int, na),
		Min:          mins,
		Max:          maxs,
		Counts:       make([][]int, na),
		MissingCount: make([]int, na),
	}
	for k := 0; k < na; k++ {
		sum.MissingCount[k] = int(sums[perAttr*k+3])
		switch ds.Attr(k).Type {
		case dataset.Real:
			sum.Real[k] = stats.MomentsFromSums(sums[perAttr*k], sums[perAttr*k+1], sums[perAttr*k+2])
			sum.LogReal[k] = stats.MomentsFromSums(sums[perAttr*k+4], sums[perAttr*k+5], sums[perAttr*k+6])
			sum.NonPositive[k] = int(sums[perAttr*k+7])
		case dataset.Discrete:
			card := ds.Attr(k).Cardinality()
			c := make([]int, card)
			for v := 0; v < card; v++ {
				c[v] = int(counts[countOffset[k]+v])
			}
			sum.Counts[k] = c
		}
	}
	return model.NewPriors(ds, sum), nil
}

// RunTrial executes one classification try on this rank: build a
// classification with startJ classes over the global priors, initialize
// from seed, and run EM under the selected strategy. Every rank of the
// group must call it with identical arguments.
func RunTrial(comm *mpi.Comm, view *dataset.View, pr *model.Priors, spec model.Spec,
	startJ int, seed uint64, opts Options) (*autoclass.Classification, autoclass.EMResult, error) {
	var zero autoclass.EMResult
	if comm == nil || view == nil || pr == nil {
		return nil, zero, errors.New("pautoclass: nil comm, view or priors")
	}
	cls, err := autoclass.NewClassification(view.Dataset(), spec, pr, startJ)
	if err != nil {
		return nil, zero, err
	}
	// A nil *simnet.Clock must become a nil Charger interface, not a
	// non-nil interface wrapping a nil pointer.
	var charger autoclass.Charger
	if opts.Clock != nil {
		charger = opts.Clock
		opts.Clock.SetParallelism(opts.EM.EffectiveParallelism())
	}
	comm.SetAllreduceAlgo(opts.AllreduceAlgo)
	opts.install(comm)
	switch opts.Strategy {
	case Full:
		eng, err := autoclass.NewEngine(view, cls, opts.EM,
			&allreduceReducer{comm: comm, clock: opts.Clock, algo: opts.AllreduceAlgo}, charger)
		if err != nil {
			return nil, zero, err
		}
		eng.SetProfile(opts.Profile)
		if opts.cycleObs != nil {
			eng.SetCycleObserver(opts.cycleObs)
		} else if opts.Obs != nil {
			eng.SetCycleObserver(opts.Obs)
		}
		if err := eng.InitRandom(seed); err != nil {
			return nil, zero, err
		}
		res, err := eng.Run()
		if err != nil {
			return nil, zero, err
		}
		return cls, res, nil
	case WtsOnly:
		eng, err := newWtsOnlyEngine(comm, view, cls, opts)
		if err != nil {
			return nil, zero, err
		}
		if err := eng.InitRandom(seed); err != nil {
			return nil, zero, err
		}
		res, err := eng.Run()
		if err != nil {
			return nil, zero, err
		}
		return cls, res, nil
	default:
		return nil, zero, fmt.Errorf("pautoclass: unknown strategy %d", int(opts.Strategy))
	}
}

// Search runs the full replicated BIG_LOOP in parallel. Every rank returns
// the identical SearchResult.
func Search(comm *mpi.Comm, ds *dataset.Dataset, spec model.Spec,
	cfg autoclass.SearchConfig, opts Options) (*autoclass.SearchResult, error) {
	if ds.N() == 0 {
		return nil, errors.New("pautoclass: empty dataset")
	}
	view, err := PartitionView(comm, ds)
	if err != nil {
		return nil, err
	}
	opts.install(comm)
	pr, err := ParallelPriors(comm, view, &opts)
	if err != nil {
		return nil, err
	}
	// Rank 0 alone adapts each try's cycle stream into TryCycle events; the
	// scheduler below (also rank-0-only) supplies claims and commit
	// verdicts. Other ranks run the identical unobserved loop.
	emit := searchEmitter(comm, cfg, opts)
	runner := func(startJ int, seed uint64) (*autoclass.Classification, autoclass.EMResult, error) {
		return RunTrial(comm, view, pr, spec, startJ, seed, emit(startJ, seed))
	}
	// The SPMD runner communicates through this rank's communicator, so two
	// tries must never run concurrently on one rank — their collectives
	// would interleave. Variant parallelism for the SPMD engine is a
	// budget-split decision across communicator groups, not within one:
	// see SearchHybrid.
	cfg.SearchParallelism = 1
	if opts.SearchObs != nil && comm.Rank() == 0 {
		return autoclass.SearchWithObserver(runner, cfg, opts.SearchObs)
	}
	return autoclass.SearchWith(runner, cfg)
}

// searchEmitter returns a per-try Options decorator: on rank 0 with a
// search observer installed, it composes the TryCycle emitter for the
// variant identified by (startJ, seed) in front of the rank's cycle
// observer; everywhere else it returns opts unchanged.
func searchEmitter(comm *mpi.Comm, cfg autoclass.SearchConfig, opts Options) func(startJ int, seed uint64) Options {
	if opts.SearchObs == nil || comm.Rank() != 0 {
		return func(int, uint64) Options { return opts }
	}
	type vkey struct {
		startJ int
		seed   uint64
	}
	vs := cfg.Variants()
	vmap := make(map[vkey]autoclass.Variant, len(vs))
	for _, v := range vs {
		vmap[vkey{v.StartJ, v.Seed}] = v
	}
	return func(startJ int, seed uint64) Options {
		v, ok := vmap[vkey{startJ, seed}]
		if !ok {
			return opts
		}
		o := opts
		var next autoclass.CycleObserver
		if opts.Obs != nil {
			next = opts.Obs
		}
		o.cycleObs = autoclass.NewTryCycleObserver(opts.SearchObs, next, v, len(vs))
		return o
	}
}
