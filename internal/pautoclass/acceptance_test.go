package pautoclass

import (
	"testing"

	"repro/internal/autoclass"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/stats"
)

// TestAcceptancePaperConfiguration runs the paper's full experimental
// configuration in miniature: the complete start_j_list (2, 4, 8, 16, 24,
// 50, 64) over the synthetic dataset, sequentially and on 10 ranks — the
// processor count of the paper's Meiko CS-2 — asserting that the two
// searches agree and that the discovered structure is sensible.
func TestAcceptancePaperConfiguration(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-configuration acceptance test skipped in -short mode")
	}
	ds := paperDS(t, 5000)
	cfg := autoclass.DefaultSearchConfig()
	cfg.StartJList = autoclass.PaperStartJList
	cfg.Tries = 1
	cfg.EM.MaxCycles = 30

	seq, err := autoclass.Search(ds, model.DefaultSpec(ds), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var par *autoclass.SearchResult
	err = mpi.Run(10, func(c *mpi.Comm) error {
		res, err := Search(c, ds, model.DefaultSpec(ds), cfg, DefaultOptions())
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			par = res
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every start J ran on both sides.
	if len(seq.Tries) != len(autoclass.PaperStartJList) || len(par.Tries) != len(seq.Tries) {
		t.Fatalf("tries: seq %d, par %d", len(seq.Tries), len(par.Tries))
	}
	// With start J of 50 and 64, class pruning makes the EM trajectory
	// chaotic: a class sitting exactly at the death threshold can survive
	// in one reduction order and die in another, after which the runs are
	// different (equally valid) searches. The acceptance criteria are
	// therefore structural: near-equal best scores, plausible structure,
	// effective pruning. (Bit-level parallel==sequential equality is
	// asserted in TestParallelEqualsSequential on the stable regime, and
	// all ranks of one parallel run always agree exactly.)
	if !stats.AlmostEqual(par.Best.Score(), seq.Best.Score(), 5e-3) {
		t.Fatalf("best scores diverged beyond tolerance: parallel %v, sequential %v",
			par.Best.Score(), seq.Best.Score())
	}
	// The planted structure has 5 clusters; large start values must have
	// pruned heavily rather than keeping 50-64 classes alive.
	for _, tr := range par.Tries {
		if tr.StartJ >= 50 && tr.FinalJ > tr.StartJ/2 {
			t.Fatalf("start J=%d kept %d classes — pruning not effective", tr.StartJ, tr.FinalJ)
		}
	}
	// Both best classifications should be in the vicinity of the truth.
	for name, res := range map[string]*autoclass.SearchResult{"parallel": par, "sequential": seq} {
		if j := res.Best.J(); j < 3 || j > 12 {
			t.Fatalf("%s best J=%d, implausible for 5 planted clusters", name, j)
		}
	}
}
