package pautoclass

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/autoclass"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/simnet"
	"repro/internal/stats"
)

// staleConfig returns a search config and matching options running the
// bounded-staleness schedule L. The engine reads Options.EM and the
// checkpoint fingerprint reads SearchConfig.EM, so the two must agree.
func staleConfig(l int) (autoclass.SearchConfig, Options) {
	cfg := quickSearchConfig()
	cfg.EM.SyncEvery = l
	opts := DefaultOptions()
	opts.EM = cfg.EM
	return cfg, opts
}

func heldoutLogLik(t *testing.T, cls *autoclass.Classification, ds *dataset.Dataset) float64 {
	t.Helper()
	p, err := autoclass.Predict(cls, ds, autoclass.PredictConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return p.LogLik
}

// The quality claim of the bounded-staleness mode: relaxing the exchange
// schedule must not change what the search learns. The held-out
// log-likelihood of the fitted model must match the synchronous run within
// EXPERIMENTS.md's documented tolerances — 2% relative for L ∈ {2, 4}, 5%
// for L = 8 (eight local cycles between merges can settle a nonconvex EM
// into a slightly different basin) — on the paper's real-valued synthetic
// and on a mixed discrete/real mixture, across seeds.
func TestStaleQualityParity(t *testing.T) {
	tols := map[int]float64{2: 0.02, 4: 0.02, 8: 0.05}
	protein := datagen.ProteinMixture()
	datasets := []struct {
		name           string
		train, heldout func(seed uint64) (*dataset.Dataset, error)
	}{
		{
			"paper",
			func(seed uint64) (*dataset.Dataset, error) { return datagen.Paper(1000, seed) },
			func(seed uint64) (*dataset.Dataset, error) { return datagen.Paper(400, seed+1000) },
		},
		{
			"protein-mixed",
			func(seed uint64) (*dataset.Dataset, error) {
				ds, _, err := protein.Generate(900, seed)
				return ds, err
			},
			func(seed uint64) (*dataset.Dataset, error) {
				ds, _, err := protein.Generate(300, seed+1000)
				return ds, err
			},
		},
	}
	for _, d := range datasets {
		d := d
		t.Run(d.name, func(t *testing.T) {
			for _, seed := range []uint64{42, 7} {
				train, err := d.train(seed)
				if err != nil {
					t.Fatal(err)
				}
				heldout, err := d.heldout(seed)
				if err != nil {
					t.Fatal(err)
				}
				// Run to convergence rather than a fixed cycle budget: a
				// stale cycle advances the model by roughly its local share,
				// so a truncated run compares different optimization depths,
				// not different optima.
				parity := func(l int) (autoclass.SearchConfig, Options) {
					cfg, opts := staleConfig(l)
					cfg.StartJList = []int{3}
					cfg.EM.MaxCycles = 200
					opts.EM = cfg.EM
					return cfg, opts
				}
				cfg, opts := parity(1)
				base := runParallelSearch(t, train, 4, cfg, opts)
				baseLL := heldoutLogLik(t, base.Best, heldout)
				for _, l := range []int{2, 4, 8} {
					cfgL, optsL := parity(l)
					res := runParallelSearch(t, train, 4, cfgL, optsL)
					ll := heldoutLogLik(t, res.Best, heldout)
					if diff := stats.RelDiff(ll, baseLL); diff > tols[l] {
						t.Errorf("seed %d L=%d: held-out loglik %v vs synchronous %v (rel diff %.4f > %.2f)",
							seed, l, ll, baseLL, diff, tols[l])
					}
				}
			}
		})
	}
}

// SyncEvery=1 must be the synchronous engine, not a degenerate staleness
// schedule: explicit 1 and the default produce bitwise-identical results.
func TestSyncEveryOneMatchesDefaultBitwise(t *testing.T) {
	ds := paperDS(t, 600)
	def := runParallelSearch(t, ds, 3, quickSearchConfig(), DefaultOptions())
	cfg, opts := staleConfig(1)
	explicit := runParallelSearch(t, ds, 3, cfg, opts)
	if !bytes.Equal(clsBytes(t, def.Best), clsBytes(t, explicit.Best)) {
		t.Error("explicit SyncEvery=1 diverged from the default synchronous trajectory")
	}
}

// The comm-fraction claim behind the mode: under the virtual machine
// model, raising L at 10 ranks lowers both the collective count and the
// communication fraction of the EM cycles.
func TestStaleCommFractionDropsAtTenRanks(t *testing.T) {
	const (
		p      = 10
		cycles = 8
	)
	measure := func(l int) (frac float64, colls int) {
		ds := paperDS(t, 5000)
		em := autoclass.DefaultConfig()
		em.PruneClasses = false
		em.SyncEvery = l
		em.SyncDriftTol = 0 // pure schedule: isolate L
		em.MaxCycles = cycles + 1
		err := mpi.Run(p, func(c *mpi.Comm) error {
			clk, err := simnet.NewClock(simnet.MeikoCS2())
			if err != nil {
				return err
			}
			view, err := PartitionView(c, ds)
			if err != nil {
				return err
			}
			pr, err := ParallelPriors(c, view, nil)
			if err != nil {
				return err
			}
			cls, err := autoclass.NewClassification(ds, model.DefaultSpec(ds), pr, 6)
			if err != nil {
				return err
			}
			eng, err := autoclass.NewEngine(view, cls, em, NewAllreduceReducer(c, clk), clk)
			if err != nil {
				return err
			}
			if err := eng.InitRandom(1); err != nil {
				return err
			}
			if err := clk.SyncBarrier(c); err != nil {
				return err
			}
			t0, c0, n0 := clk.Elapsed(), clk.CommSeconds(), clk.Collectives()
			for i := 0; i < cycles; i++ {
				if _, err := eng.BaseCycle(); err != nil {
					return err
				}
			}
			if err := clk.SyncBarrier(c); err != nil {
				return err
			}
			if c.Rank() == 0 {
				if total := clk.Elapsed() - t0; total > 0 {
					frac = (clk.CommSeconds() - c0) / total
				}
				colls = clk.Collectives() - n0
			}
			return nil
		})
		if err != nil {
			t.Fatalf("L=%d: %v", l, err)
		}
		return frac, colls
	}
	syncFrac, syncColls := measure(1)
	for _, l := range []int{2, 4, 8} {
		frac, colls := measure(l)
		if colls >= syncColls {
			t.Errorf("L=%d: %d collectives, not below synchronous %d", l, colls, syncColls)
		}
		if frac >= syncFrac {
			t.Errorf("L=%d: comm fraction %.4f, not below synchronous %.4f", l, frac, syncFrac)
		}
	}
}

// syncRecorder records each cycle's sync flag (rank 0 installs it).
type syncRecorder struct {
	mu     sync.Mutex
	synced []bool
}

func (r *syncRecorder) ObserveCycle(info autoclass.CycleInfo) {
	r.mu.Lock()
	r.synced = append(r.synced, info.Stats.Synced)
	r.mu.Unlock()
}

// runStaleSchedule runs one fixed-length stale EM and returns rank 0's
// per-cycle sync flags.
func runStaleSchedule(t *testing.T, l int, driftTol float64, cycles int) []bool {
	t.Helper()
	ds := paperDS(t, 600)
	em := autoclass.DefaultConfig()
	em.PruneClasses = false
	em.RelDelta = 0 // never converge: expose the full schedule
	em.SyncEvery = l
	em.SyncDriftTol = driftTol
	em.MaxCycles = cycles
	rec := &syncRecorder{}
	err := mpi.Run(3, func(c *mpi.Comm) error {
		view, err := PartitionView(c, ds)
		if err != nil {
			return err
		}
		pr, err := ParallelPriors(c, view, nil)
		if err != nil {
			return err
		}
		cls, err := autoclass.NewClassification(ds, model.DefaultSpec(ds), pr, 3)
		if err != nil {
			return err
		}
		eng, err := autoclass.NewEngine(view, cls, em, NewAllreduceReducer(c, nil), nil)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			eng.SetCycleObserver(rec)
		}
		if err := eng.InitRandom(1); err != nil {
			return err
		}
		_, err = eng.Run()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec.synced
}

// The schedule and its drift bound: with the bound disabled the engine
// syncs exactly on the bootstrap cycle, every L-th cycle after, and the
// final cycle; with a tolerance so tight any drift trips it, every cycle
// synchronizes.
func TestStaleScheduleAndDriftBound(t *testing.T) {
	const cycles = 10
	got := runStaleSchedule(t, 4, 0, cycles)
	if len(got) != cycles {
		t.Fatalf("observed %d cycles, want %d", len(got), cycles)
	}
	// Bootstrap at 0, then syncs at 4, 8 and the forced final cycle 9.
	want := []bool{true, false, false, false, true, false, false, false, true, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SyncDriftTol=0: schedule %v, want %v", got, want)
		}
	}

	got = runStaleSchedule(t, 4, 1e-18, cycles)
	for i, s := range got {
		if !s {
			t.Fatalf("SyncDriftTol=1e-18: cycle %d ran stale; the drift bound should force every sync: %v", i, got)
		}
	}
}

// A stale run interrupted by a crashed rank must resume from its last
// checkpoint to the bitwise-identical final classification: the snapshots
// record sync-point state, so kill/resume exactness survives SyncEvery>1.
func TestStaleKillAndResumeBitwiseIdentical(t *testing.T) {
	const (
		p      = 4
		victim = 1
	)
	ds := paperDS(t, 240)
	cfg, opts := staleConfig(4)

	ref := runParallelSearch(t, ds, p, cfg, opts)
	refBest := clsBytes(t, ref.Best)

	path := filepath.Join(t.TempDir(), "search.ckpt")
	ck := Checkpoint{Path: path, Every: 2}
	rcfg := mpi.RunConfig{OpDeadline: 10 * time.Second}
	plans := map[int]mpi.FaultPlan{
		victim: {Faults: []mpi.Fault{{Op: "send", Peer: -1, After: 60}}},
	}
	errs, err := mpi.RunFaultyMem(p, rcfg, plans, func(c *mpi.Comm) error {
		_, err := SearchCheckpointed(c, ds, model.DefaultSpec(ds), cfg, opts, ck)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if errs[victim] == nil {
		t.Fatal("victim completed the search; fault budget too large to interrupt it")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no checkpoint was written before the crash: %v", err)
	}

	err = mpi.RunWith(p, rcfg, func(c *mpi.Comm) error {
		res, err := SearchCheckpointed(c, ds, model.DefaultSpec(ds), cfg, opts, ck)
		if err != nil {
			return err
		}
		if got := clsBytes(t, res.Best); !bytes.Equal(got, refBest) {
			t.Errorf("rank %d: resumed stale search differs from uninterrupted run", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// A state file written under one staleness schedule must refuse to resume
// under another: SyncEvery is part of the search fingerprint.
func TestStaleFingerprintRefusesDifferentSchedule(t *testing.T) {
	ds := paperDS(t, 240)
	cfg, opts := staleConfig(4)
	path := filepath.Join(t.TempDir(), "search.ckpt")
	ck := Checkpoint{Path: path, Every: 2}
	err := mpi.Run(2, func(c *mpi.Comm) error {
		_, err := SearchCheckpointed(c, ds, model.DefaultSpec(ds), cfg, opts, ck)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg2, opts2 := staleConfig(2)
	err = mpi.Run(2, func(c *mpi.Comm) error {
		_, err := SearchCheckpointed(c, ds, model.DefaultSpec(ds), cfg2, opts2, ck)
		if err == nil {
			return nil
		}
		if !strings.Contains(err.Error(), "SyncEvery") {
			t.Errorf("rank %d: mismatch error does not name the schedule: %v", c.Rank(), err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The group must have refused, not resumed: re-run under L=2 and
	// require the error on rank 0 explicitly.
	var refused bool
	err = mpi.Run(2, func(c *mpi.Comm) error {
		_, err := SearchCheckpointed(c, ds, model.DefaultSpec(ds), cfg2, opts2, ck)
		if c.Rank() == 0 && err != nil {
			refused = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !refused {
		t.Error("resume under a different SyncEvery was not refused")
	}
}
