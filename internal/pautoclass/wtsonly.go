package pautoclass

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/autoclass"
	"repro/internal/dataset"
	"repro/internal/mpi"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/trace"
)

// wtsOnlyEngine reproduces the parallelization strategy of the prior MIMD
// AutoClass prototype the paper's §5 compares against (Miller & Guo [7]):
// only update_wts runs over the partitioned data. Each cycle the local
// weight matrices are gathered to rank 0, which — holding a replica of the
// dataset, as that design requires — recomputes every class's parameters
// over all items sequentially and broadcasts them back.
//
// Two costs distinguish it from P-AutoClass, and the ablation benchmark
// shows both: the gathered weight matrix grows with the dataset (n·J values
// per cycle instead of J·stats), and the parameter computation does not
// shrink with P.
//
// It is also a deliberately independent second implementation of the EM
// cycle: the differential tests require wtsOnly and Full to converge to the
// same classification, each checking the other. For the same reason it
// ignores Config.Kernels and always evaluates terms through the per-row
// reference path — a second blocked implementation would weaken the
// cross-check.
type wtsOnlyEngine struct {
	comm  *mpi.Comm
	view  *dataset.View
	ds    *dataset.Dataset
	cls   *autoclass.Classification
	cfg   autoclass.Config
	clock *simnet.Clock

	wts         []float64 // local weights, n_local × J
	lastPost    float64
	belowTol    int
	started     bool
	initSeconds float64
	parts       []dataset.Range // block partition, for reassembling gathers

	// Observability hooks, mirroring the Full engine's: both are nil-safe
	// and purely passive, so the baseline's trajectory is unchanged by them.
	profile  *trace.Profile
	cycleObs autoclass.CycleObserver
}

func newWtsOnlyEngine(comm *mpi.Comm, view *dataset.View, cls *autoclass.Classification, opts Options) (*wtsOnlyEngine, error) {
	if view == nil || cls == nil {
		return nil, errors.New("pautoclass: nil view or classification")
	}
	if view.Dataset().Chunked() {
		// The baseline's whole premise — rank 0 holds a dataset replica and
		// the gathered n×J weight matrix — is the memory cost the chunked
		// data plane exists to avoid; it also evaluates terms through the
		// per-row reference path, which virtual datasets do not serve.
		return nil, errors.New("pautoclass: the wts-only baseline requires a materialized dataset; use the Full strategy for chunk-backed data")
	}
	parts, err := dataset.BlockPartition(view.Dataset().N(), comm.Size())
	if err != nil {
		return nil, err
	}
	e := &wtsOnlyEngine{
		comm:     comm,
		view:     view,
		ds:       view.Dataset(),
		cls:      cls,
		cfg:      opts.EM,
		clock:    opts.Clock,
		lastPost: math.Inf(-1),
		parts:    parts,
		profile:  opts.Profile,
	}
	if opts.Obs != nil {
		e.cycleObs = opts.Obs
	}
	if opts.cycleObs != nil {
		e.cycleObs = opts.cycleObs
	}
	return e, nil
}

func (e *wtsOnlyEngine) charge(units float64) {
	if e.clock != nil {
		e.clock.ChargeOps(units)
	}
}

// InitRandom mirrors the Full engine's initialization so that both
// strategies start from the identical crisp assignment.
func (e *wtsOnlyEngine) InitRandom(seed uint64) error {
	t0 := time.Now()
	n := e.view.N()
	j := e.cls.J()
	e.wts = make([]float64, n*j)
	start := e.view.Start()
	for i := 0; i < n; i++ {
		e.wts[i*j+autoclass.InitialClass(seed, start+i, j)] = 1
	}
	e.charge(float64(n))
	wj := make([]float64, j+1)
	for i := 0; i < n; i++ {
		for cj := 0; cj < j; cj++ {
			wj[cj] += e.wts[i*j+cj]
		}
	}
	if err := e.reduceWts(wj); err != nil {
		return err
	}
	for cj, cl := range e.cls.Classes {
		cl.W = wj[cj]
	}
	e.cls.UpdateClassWeightsFromW()
	if err := e.parametersOnRoot(); err != nil {
		return err
	}
	e.approximations()
	e.started = true
	e.initSeconds = time.Since(t0).Seconds()
	return nil
}

func (e *wtsOnlyEngine) reduceWts(buf []float64) error {
	if err := e.comm.Allreduce(mpi.Sum, buf); err != nil {
		return fmt.Errorf("pautoclass: wts allreduce: %w", err)
	}
	if e.clock != nil {
		return e.clock.SyncAllreduce(e.comm, len(buf))
	}
	return nil
}

// updateWts is the parallel E-step, identical to P-AutoClass's — including
// the hybrid intra-rank mode: with cfg.Parallelism != 0 the local rows are
// sharded over worker goroutines on the same fixed grid, merged in shard
// order, so the baseline stays deterministic and directly comparable.
func (e *wtsOnlyEngine) updateWts() error {
	n := e.view.N()
	j := e.cls.J()
	if len(e.wts) != n*j {
		e.wts = make([]float64, n*j)
	}
	out := make([]float64, j+1)
	wtsRows := func(lo, hi int, out, logp []float64) {
		for i := lo; i < hi; i++ {
			e.cls.LogMembership(e.view.Row(i), logp)
			z := stats.NormalizeLog(logp)
			w := e.wts[i*j : (i+1)*j]
			for cj := 0; cj < j; cj++ {
				w[cj] = logp[cj]
				out[cj] += logp[cj]
			}
			if !math.IsInf(z, -1) {
				out[j] += z
			}
		}
	}
	if shards := autoclass.NumRowShards(n); e.cfg.Parallelism != 0 && shards > 0 {
		workers := e.cfg.Workers(shards)
		bufs := make([][]float64, shards)
		for s := range bufs {
			bufs[s] = make([]float64, j+1)
		}
		logps := make([][]float64, workers)
		for w := range logps {
			logps[w] = make([]float64, j)
		}
		autoclass.ParallelFor(workers, shards, func(worker, s int) {
			lo, hi := autoclass.RowShardRange(s, n)
			wtsRows(lo, hi, bufs[s], logps[worker])
		})
		for _, buf := range bufs {
			for k, v := range buf {
				out[k] += v
			}
		}
	} else {
		wtsRows(0, n, out, make([]float64, j))
	}
	a := float64(e.cls.NumAttrColumns())
	e.charge(float64(n) * float64(j) * (a + 1))
	if err := e.reduceWts(out); err != nil {
		return err
	}
	for cj, cl := range e.cls.Classes {
		cl.W = out[cj]
	}
	e.cls.LogLik = out[j]
	return nil
}

// parametersOnRoot is the sequential M-step of the baseline: gather the
// weight matrix, recompute on rank 0 over the full dataset, broadcast the
// parameters.
func (e *wtsOnlyEngine) parametersOnRoot() error {
	j := e.cls.J()
	parts, err := e.comm.Gather(0, e.wts)
	if err != nil {
		return fmt.Errorf("pautoclass: gather wts: %w", err)
	}
	// Parameter vector layout is identical on every rank.
	paramLen := 0
	for _, t := range e.cls.Classes[0].Terms {
		paramLen += len(t.Params())
	}
	paramLen *= j
	buf := make([]float64, paramLen)
	if e.comm.Rank() == 0 {
		full := make([]float64, e.ds.N()*j)
		for r, rg := range e.parts {
			copy(full[rg.Lo*j:rg.Hi*j], parts[r])
		}
		// One row-major pass accumulating every (class, term) statistic,
		// sharded across workers when the hybrid mode is on (the root's
		// recompute covers ALL rows, so multicore helps it most of all).
		offs := make([]int, 0, 8)
		total := 0
		for _, cl := range e.cls.Classes {
			for _, term := range cl.Terms {
				offs = append(offs, total)
				total += term.StatsSize()
			}
		}
		offs = append(offs, total)
		nAll := e.ds.N()
		statsRows := func(lo, hi int, buf []float64) {
			for i := lo; i < hi; i++ {
				row := e.ds.Row(i)
				ti := 0
				for cj, cl := range e.cls.Classes {
					w := full[i*j+cj]
					for _, term := range cl.Terms {
						term.AccumulateStats(row, w, buf[offs[ti]:offs[ti+1]])
						ti++
					}
				}
			}
		}
		stBuf := make([]float64, total)
		if shards := autoclass.NumRowShards(nAll); e.cfg.Parallelism != 0 && shards > 0 {
			workers := e.cfg.Workers(shards)
			bufs := make([][]float64, shards)
			for s := range bufs {
				bufs[s] = make([]float64, total)
			}
			autoclass.ParallelFor(workers, shards, func(_, s int) {
				lo, hi := autoclass.RowShardRange(s, nAll)
				statsRows(lo, hi, bufs[s])
			})
			for _, b := range bufs {
				for k, v := range b {
					stBuf[k] += v
				}
			}
		} else {
			statsRows(0, nAll, stBuf)
		}
		ti := 0
		for _, cl := range e.cls.Classes {
			for _, term := range cl.Terms {
				term.Update(stBuf[offs[ti]:offs[ti+1]])
				ti++
			}
		}
		a := float64(e.cls.NumAttrColumns())
		// The root recomputes over ALL items — the cost that does not
		// shrink with P.
		e.charge(float64(e.ds.N()) * float64(j) * a)
		pos := 0
		for _, cl := range e.cls.Classes {
			for _, term := range cl.Terms {
				pos += copy(buf[pos:], term.Params())
			}
		}
	}
	if err := e.comm.Bcast(0, buf); err != nil {
		return fmt.Errorf("pautoclass: bcast params: %w", err)
	}
	if e.comm.Rank() != 0 {
		pos := 0
		for _, cl := range e.cls.Classes {
			for _, term := range cl.Terms {
				n := len(term.Params())
				if err := term.SetParams(buf[pos : pos+n]); err != nil {
					return fmt.Errorf("pautoclass: set params: %w", err)
				}
				pos += n
			}
		}
	}
	if e.clock != nil {
		m := e.clock.Machine()
		p := e.comm.Size()
		cost := m.GatherCost(p, 8*len(e.wts)) + m.BcastCost(p, 8*len(buf))
		if err := e.clock.SyncWithCost(e.comm, cost); err != nil {
			return err
		}
	}
	return nil
}

func (e *wtsOnlyEngine) approximations() {
	e.cls.UpdateClassWeightsFromW()
	e.cls.RefreshPosterior()
	e.charge(float64(e.cls.J()) * float64(e.cls.NumAttrColumns()+4))
}

// prune mirrors the Full engine's class-death rule; decisions use global W
// so every rank prunes identically.
func (e *wtsOnlyEngine) prune() {
	if !e.cfg.PruneClasses || e.cls.J() <= 1 {
		return
	}
	j := e.cls.J()
	keep := make([]int, 0, j)
	for cj, cl := range e.cls.Classes {
		if cl.W >= e.cfg.MinClassWeight {
			keep = append(keep, cj)
		}
	}
	if len(keep) == j {
		return
	}
	if len(keep) == 0 {
		best := 0
		for cj, cl := range e.cls.Classes {
			if cl.W > e.cls.Classes[best].W {
				best = cj
			}
		}
		keep = []int{best}
	}
	newClasses := make([]*autoclass.Class, len(keep))
	for ni, cj := range keep {
		newClasses[ni] = e.cls.Classes[cj]
	}
	n := e.view.N()
	newWts := make([]float64, n*len(keep))
	for i := 0; i < n; i++ {
		for ni, cj := range keep {
			newWts[i*len(keep)+ni] = e.wts[i*j+cj]
		}
	}
	e.cls.Classes = newClasses
	e.wts = newWts
	e.cls.UpdateClassWeightsFromW()
}

// BaseCycle runs one iteration.
func (e *wtsOnlyEngine) BaseCycle() (autoclass.CycleStats, error) {
	var cs autoclass.CycleStats
	if !e.started {
		return cs, errors.New("pautoclass: BaseCycle before InitRandom")
	}
	// The baseline gathers and re-broadcasts every cycle — always synced.
	cs.Synced = true
	t0 := time.Now()
	if err := e.updateWts(); err != nil {
		return cs, err
	}
	cs.WtsSeconds = time.Since(t0).Seconds()
	t1 := time.Now()
	if err := e.parametersOnRoot(); err != nil {
		return cs, err
	}
	cs.ParamsSeconds = time.Since(t1).Seconds()
	t2 := time.Now()
	e.approximations()
	cs.ApproxSeconds = time.Since(t2).Seconds()
	e.prune()
	e.cls.Cycles++
	cs.LogPost = e.cls.LogPost
	return cs, nil
}

// Run executes cycles until convergence or the cap.
func (e *wtsOnlyEngine) Run() (autoclass.EMResult, error) {
	var res autoclass.EMResult
	if !e.started {
		return res, errors.New("pautoclass: Run before InitRandom")
	}
	res.InitSeconds = e.initSeconds
	if e.profile != nil {
		e.profile.Add(autoclass.PhaseInit, e.initSeconds)
	}
	for cycle := 0; cycle < e.cfg.MaxCycles; cycle++ {
		cs, err := e.BaseCycle()
		if err != nil {
			return res, err
		}
		res.Cycles++
		res.WtsSeconds += cs.WtsSeconds
		res.ParamsSeconds += cs.ParamsSeconds
		res.ApproxSeconds += cs.ApproxSeconds
		res.History = append(res.History, cs.LogPost)
		if e.profile != nil {
			e.profile.Add(autoclass.PhaseWts, cs.WtsSeconds)
			e.profile.Add(autoclass.PhaseParams, cs.ParamsSeconds)
			e.profile.Add(autoclass.PhaseApprox, cs.ApproxSeconds)
		}
		if e.cycleObs != nil {
			e.cycleObs.ObserveCycle(autoclass.CycleInfo{
				Cycle:   cycle,
				J:       e.cls.J(),
				LogPost: cs.LogPost,
				Delta:   autoclass.CycleDelta(cs.LogPost, e.lastPost),
				Stats:   cs,
			})
		}
		if stats.RelDiff(cs.LogPost, e.lastPost) < e.cfg.RelDelta {
			e.belowTol++
		} else {
			e.belowTol = 0
		}
		e.lastPost = cs.LogPost
		if e.belowTol >= e.cfg.ConvergeWindow {
			res.Converged = true
			break
		}
	}
	e.cls.Converged = res.Converged
	return res, nil
}
