package pautoclass

import (
	"errors"
	"fmt"

	"repro/internal/autoclass"
	"repro/internal/dataset"
	"repro/internal/mpi"
)

// SPMD batch inference: the serving tier's scale-out mode. One fitted
// classification, one batch of rows, P ranks on any transport the training
// path already runs on (in-process goroutine ranks or TCP workers): each
// rank scores a kernel-block-aligned contiguous shard of the batch with the
// same blocked Predictor the single-process path uses, then one Allgather
// assembles the full posterior matrix on every rank.
//
// Determinism: every per-row output (membership vector, MAP class, row
// log-evidence) is a pure function of that row alone, the shard boundaries
// sit on the KernelBlockRows grid so no kernel block straddles ranks, and
// the total log-likelihood is reassembled from the gathered per-row values
// with FoldRowLogLik — the exact association of a single-process scoring.
// The result is therefore bitwise identical to autoclass.Predict at every
// rank count, which TestPredictRanksBitwise enforces on both transports.

// Predict scores every row of ds under cls across the ranks of comm and
// returns the complete prediction on every rank. cfg.Parallelism shards
// each rank's local block over goroutines exactly as in the single-process
// scorer; cfg.RowLogLik controls whether the assembled RowLL is retained
// in the result (it is always gathered internally to rebuild LogLik).
// Chunk-backed datasets are rejected: the serving tier materializes its
// batches.
func Predict(comm *mpi.Comm, cls *autoclass.Classification, ds *dataset.Dataset, cfg autoclass.PredictConfig) (*autoclass.Prediction, error) {
	if comm == nil {
		return nil, errors.New("pautoclass: nil communicator")
	}
	if ds == nil {
		return nil, errors.New("pautoclass: nil dataset")
	}
	if ds.Chunked() {
		return nil, errors.New("pautoclass: chunked datasets are not supported by the distributed predictor")
	}
	n := ds.N()
	j := cls.J()
	parts, err := dataset.AlignedBlockPartition(n, comm.Size(), autoclass.KernelBlockRows)
	if err != nil {
		return nil, err
	}
	rg := parts[comm.Rank()]
	view, err := ds.View(rg.Lo, rg.Len())
	if err != nil {
		return nil, err
	}
	localCfg := cfg
	localCfg.RowLogLik = true
	local, err := autoclass.PredictView(cls, view, localCfg)
	if err != nil {
		return nil, err
	}

	// One collective: each rank contributes [memberships..., rowLL...].
	// MAP is not shipped — argmax over bitwise-identical memberships
	// recomputes it identically on every rank.
	ln := rg.Len()
	send := make([]float64, ln*(j+1))
	copy(send[:ln*j], local.Memberships)
	copy(send[ln*j:], local.RowLL)
	gathered, err := comm.Allgather(send)
	if err != nil {
		return nil, err
	}

	out := &autoclass.Prediction{
		J:           j,
		Memberships: make([]float64, n*j),
		MAP:         make([]int, n),
	}
	rowLL := make([]float64, n)
	for r, part := range gathered {
		pn := parts[r].Len()
		if len(part) != pn*(j+1) {
			return nil, fmt.Errorf("pautoclass: rank %d gathered %d values, want %d", r, len(part), pn*(j+1))
		}
		copy(out.Memberships[parts[r].Lo*j:], part[:pn*j])
		copy(rowLL[parts[r].Lo:], part[pn*j:])
	}
	for i := 0; i < n; i++ {
		mem := out.Memberships[i*j : (i+1)*j]
		best := 0
		for c := 1; c < j; c++ {
			if mem[c] > mem[best] {
				best = c
			}
		}
		out.MAP[i] = best
	}
	out.LogLik = autoclass.FoldRowLogLik(rowLL)
	if cfg.RowLogLik {
		out.RowLL = rowLL
	}
	return out, nil
}
