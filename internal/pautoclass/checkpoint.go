package pautoclass

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"strings"

	"repro/internal/autoclass"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/rng"
	"repro/internal/stats"
)

// The distributed checkpoint protocol leans on the package's SPMD
// invariant: every rank holds the identical classification and search state
// at every cycle boundary, because all decisions are driven by globally
// reduced quantities. A group-consistent snapshot therefore needs no state
// gathering — the ranks agree on the cycle via a collective, and rank 0
// serializes its own (identical) copy. On resume the state file is read by
// rank 0 and broadcast, so every rank restores from the same bytes even if
// only rank 0's filesystem holds the checkpoint, and the restored search
// re-enters the trajectory bitwise — with any rank count, since the
// trajectory never depended on the partitioning.

// Checkpoint configures distributed checkpointing of a parallel search.
type Checkpoint struct {
	// Path is the search state file. Rank 0 writes it; on resume rank 0
	// reads it and broadcasts, so only rank 0's filesystem needs it.
	Path string
	// Every takes a mid-try snapshot after that many cycles within a try
	// (<= 0 checkpoints only at try boundaries).
	Every int
	// Interrupt, when non-nil, is polled at every cycle boundary (and
	// between tries) for a cooperative stop request — the serving daemon's
	// shutdown path. Because each rank polls its own copy and a stop must
	// be group-consistent, the polled values are combined with an
	// Allreduce(Max): the search stops as soon as ANY rank has seen the
	// request, and every rank stops at the same cycle. On an agreed stop
	// the search persists a resumable snapshot to Path and returns
	// ErrInterrupted. Polling costs one extra collective per cycle; leave
	// nil when cooperative shutdown is not needed.
	Interrupt func() bool
}

// ErrInterrupted is returned by SearchCheckpointed when Checkpoint.Interrupt
// requested a stop. The state file then holds a resumable snapshot: calling
// SearchCheckpointed again with the same arguments continues the search
// bitwise-identically. mpi.RunWith wraps rank errors with %w, so callers can
// errors.Is through it.
var ErrInterrupted = errors.New("pautoclass: search interrupted")

// parSearchStateV1 is the serialized parallel search progress — the
// sequential searchStateV1 plus an optional mid-try engine checkpoint.
type parSearchStateV1 struct {
	Version int `json:"version"`
	// Config fingerprint — a resume against a different search is refused.
	StartJList  []int                       `json:"start_j_list"`
	Tries       int                         `json:"tries"`
	Seed        uint64                      `json:"seed"`
	N           int                         `json:"n"`
	Fingerprint autoclass.SearchFingerprint `json:"fingerprint"`
	// Completed tries in execution order.
	Completed []autoclass.TryResult `json:"completed"`
	// Best is the best-so-far classification checkpoint, empty until a
	// non-duplicate try completes; BestTry is its try record.
	Best    json.RawMessage     `json:"best,omitempty"`
	BestTry autoclass.TryResult `json:"best_try"`
	// Totals accumulates phase statistics over completed tries.
	Totals autoclass.EMResult `json:"totals"`
	// InTry is a mid-try snapshot (SaveCheckpointSearch output) when the
	// last checkpoint was taken inside a try, nil at try boundaries.
	InTry json.RawMessage `json:"in_try,omitempty"`
}

// matches reports (as a descriptive error) any disagreement between the
// recorded search identity and the configuration attempting to resume it.
// Beyond the schedule and seed it covers the full trajectory fingerprint
// (DupScoreTol and the EM knobs) — resuming under a changed tolerance or
// engine configuration would silently mix tries from incompatible searches.
func (st *parSearchStateV1) matches(cfg autoclass.SearchConfig, n int) error {
	if st.Tries != cfg.Tries {
		return fmt.Errorf("Tries %d vs %d", st.Tries, cfg.Tries)
	}
	if st.Seed != cfg.Seed {
		return fmt.Errorf("Seed %d vs %d", st.Seed, cfg.Seed)
	}
	if st.N != n {
		return fmt.Errorf("N %d vs %d", st.N, n)
	}
	if len(st.StartJList) != len(cfg.StartJList) {
		return fmt.Errorf("StartJList %v vs %v", st.StartJList, cfg.StartJList)
	}
	for i, j := range st.StartJList {
		if cfg.StartJList[i] != j {
			return fmt.Errorf("StartJList %v vs %v", st.StartJList, cfg.StartJList)
		}
	}
	if d := st.Fingerprint.Diff(cfg.Fingerprint()); len(d) > 0 {
		return errors.New(strings.Join(d, "; "))
	}
	return nil
}

// writeParState persists the state atomically (write temp, rename), so a
// crash mid-write leaves the previous checkpoint intact.
func writeParState(path string, st *parSearchStateV1) error {
	raw, err := json.Marshal(st)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// bcastBytes broadcasts a byte slice from root to every rank: length first,
// then the bytes packed eight per float64 through their bit patterns (the
// same trick BcastUint64 uses), then an FNV checksum each rank verifies
// against its unpacked copy — a corrupted broadcast must fail loudly, not
// let ranks restore divergent state.
func bcastBytes(comm *mpi.Comm, root int, b []byte) ([]byte, error) {
	n64, err := comm.BcastUint64(root, uint64(len(b)))
	if err != nil {
		return nil, err
	}
	n := int(n64)
	if n == 0 {
		return nil, nil
	}
	words := make([]float64, (n+7)/8)
	if comm.Rank() == root {
		var chunk [8]byte
		for i := range words {
			copy(chunk[:], b[i*8:min(n, i*8+8)])
			words[i] = math.Float64frombits(leUint64(chunk))
		}
	}
	if err := comm.Bcast(root, words); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	for i, w := range words {
		chunk := leBytes(math.Float64bits(w))
		copy(out[i*8:min(n, i*8+8)], chunk[:])
	}
	h := fnv.New64a()
	h.Write(out)
	want, err := comm.BcastUint64(root, h.Sum64())
	if err != nil {
		return nil, err
	}
	if want != h.Sum64() {
		return nil, fmt.Errorf("pautoclass: rank %d checkpoint broadcast checksum mismatch", comm.Rank())
	}
	return out, nil
}

// agreeInterrupt combines the ranks' local interrupt polls into a
// group-consistent stop decision. The Allreduce doubles as a barrier, so no
// rank can race ahead into the next cycle while another decides to stop.
func agreeInterrupt(comm *mpi.Comm, poll func() bool) (bool, error) {
	v := 0.0
	if poll() {
		v = 1
	}
	agreed, err := comm.AllreduceFloat64(mpi.Max, v)
	if err != nil {
		return false, fmt.Errorf("pautoclass: interrupt agreement: %w", err)
	}
	return agreed > 0, nil
}

func leUint64(b [8]byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func leBytes(v uint64) [8]byte {
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	return b
}

// SearchCheckpointed is Search with distributed checkpoint/restart: the
// search persists its progress to ck.Path (completed tries after every try,
// plus a mid-try engine snapshot every ck.Every cycles) and, when ck.Path
// already holds the progress of an identical search over the same dataset,
// resumes where it stopped. A resumed search produces the bitwise-identical
// SearchResult to an uninterrupted one. Only the Full strategy is
// supported.
func SearchCheckpointed(comm *mpi.Comm, ds *dataset.Dataset, spec model.Spec,
	cfg autoclass.SearchConfig, opts Options, ck Checkpoint) (*autoclass.SearchResult, error) {
	if ds.N() == 0 {
		return nil, errors.New("pautoclass: empty dataset")
	}
	if ck.Path == "" {
		return nil, errors.New("pautoclass: empty checkpoint path")
	}
	if opts.Strategy != Full {
		return nil, fmt.Errorf("pautoclass: checkpointing supports only the %v strategy", Full)
	}
	if len(cfg.StartJList) == 0 || cfg.Tries < 1 {
		return nil, errors.New("pautoclass: empty search schedule")
	}
	view, err := PartitionView(comm, ds)
	if err != nil {
		return nil, err
	}
	opts.install(comm)
	pr, err := ParallelPriors(comm, view, &opts)
	if err != nil {
		return nil, err
	}

	// Rank 0 reads the state file (missing file → fresh search) and
	// broadcasts it so every rank restores from identical bytes.
	var raw []byte
	if comm.Rank() == 0 {
		r, err := os.ReadFile(ck.Path)
		if err != nil && !os.IsNotExist(err) {
			return nil, err
		}
		raw = r
	}
	raw, err = bcastBytes(comm, 0, raw)
	if err != nil {
		return nil, fmt.Errorf("pautoclass: broadcasting checkpoint state: %w", err)
	}
	state := &parSearchStateV1{
		Version:     1,
		StartJList:  append([]int(nil), cfg.StartJList...),
		Tries:       cfg.Tries,
		Seed:        cfg.Seed,
		N:           ds.N(),
		Fingerprint: cfg.Fingerprint(),
	}
	if len(raw) > 0 {
		var prev parSearchStateV1
		if err := json.Unmarshal(raw, &prev); err != nil {
			return nil, fmt.Errorf("pautoclass: corrupt search state %s: %w", ck.Path, err)
		}
		if prev.Version != 1 {
			return nil, fmt.Errorf("pautoclass: unsupported search state version %d", prev.Version)
		}
		if err := prev.matches(cfg, ds.N()); err != nil {
			return nil, fmt.Errorf("pautoclass: state file %s belongs to a different search (%w)", ck.Path, err)
		}
		state = &prev
	}

	res := &autoclass.SearchResult{
		Tries:  append([]autoclass.TryResult(nil), state.Completed...),
		Totals: state.Totals,
	}
	if len(state.Best) > 0 {
		best, err := autoclass.LoadCheckpoint(bytes.NewReader(state.Best), ds)
		if err != nil {
			return nil, fmt.Errorf("pautoclass: restoring best classification: %w", err)
		}
		res.Best = best
		res.BestTry = state.BestTry
	}

	var charger autoclass.Charger
	if opts.Clock != nil {
		charger = opts.Clock
		opts.Clock.SetParallelism(opts.EM.EffectiveParallelism())
	}
	comm.SetAllreduceAlgo(opts.AllreduceAlgo)
	reducer := &allreduceReducer{comm: comm, clock: opts.Clock, algo: opts.AllreduceAlgo}

	// Deterministic seed chain, identical to SearchWith's: one draw per
	// scheduled try, consumed even for tries that are skipped on resume, so
	// the stream position always matches the try index.
	seeds := rng.New(cfg.Seed)
	tryIndex := 0
	// Every rank runs the identical loop, so search lifecycle events are
	// emitted on rank 0 only; a resumed search's first events report a Done
	// count that already includes the restored prefix.
	total := len(cfg.StartJList) * cfg.Tries
	emitObs := opts.SearchObs
	if comm.Rank() != 0 {
		emitObs = nil
	}
	for _, startJ := range cfg.StartJList {
		for try := 0; try < cfg.Tries; try++ {
			trySeed := seeds.Uint64()
			if tryIndex < len(state.Completed) {
				if got := state.Completed[tryIndex].Seed; got != trySeed {
					return nil, fmt.Errorf("pautoclass: try %d seed mismatch (state %d, derived %d)", tryIndex, got, trySeed)
				}
				tryIndex++
				continue
			}

			// Try boundary: an agreed stop needs no snapshot — the state
			// file already holds every completed try.
			if ck.Interrupt != nil {
				stop, err := agreeInterrupt(comm, ck.Interrupt)
				if err != nil {
					return nil, err
				}
				if stop {
					return nil, ErrInterrupted
				}
			}

			if emitObs != nil {
				emitObs.ObserveTry(autoclass.TryEvent{
					Kind: autoclass.TryClaimed, Index: tryIndex,
					StartJ: startJ, Try: try, Seed: trySeed,
					Done: len(res.Tries), Total: total,
				})
			}

			// Mid-try resume: the state file ended inside this try.
			var cls *autoclass.Classification
			var eng *autoclass.Engine
			startCycle := 0
			if len(state.InTry) > 0 {
				c, sp, err := autoclass.LoadCheckpointSearch(bytes.NewReader(state.InTry), ds)
				if err != nil {
					return nil, fmt.Errorf("pautoclass: restoring mid-try checkpoint: %w", err)
				}
				switch {
				case sp == nil:
					return nil, errors.New("pautoclass: mid-try checkpoint lacks a search point")
				case sp.TryIndex != tryIndex:
					return nil, fmt.Errorf("pautoclass: mid-try checkpoint is for try %d, resume reached try %d", sp.TryIndex, tryIndex)
				case sp.TrySeed != trySeed || sp.SearchSeed != cfg.Seed:
					return nil, fmt.Errorf("pautoclass: mid-try checkpoint seed mismatch (rerun with -seed %d)", sp.SearchSeed)
				case sp.StartJ != startJ:
					return nil, fmt.Errorf("pautoclass: mid-try checkpoint startJ %d, schedule has %d", sp.StartJ, startJ)
				}
				cls = c
				eng, err = autoclass.NewEngine(view, cls, opts.EM, reducer, charger)
				if err != nil {
					return nil, err
				}
				eng.Restore(autoclass.EngineState{
					Cycles:    cls.Cycles,
					BelowTol:  sp.BelowTol,
					LastPost:  sp.LastPost,
					SyncStats: sp.SyncStats,
				})
				startCycle = sp.CycleInTry
			} else {
				cls, err = autoclass.NewClassification(ds, spec, pr, startJ)
				if err != nil {
					return nil, err
				}
				eng, err = autoclass.NewEngine(view, cls, opts.EM, reducer, charger)
				if err != nil {
					return nil, err
				}
				if err := eng.InitRandom(trySeed); err != nil {
					return nil, err
				}
			}
			state.InTry = nil
			eng.SetProfile(opts.Profile)
			var cyc autoclass.CycleObserver
			if opts.Obs != nil {
				cyc = opts.Obs
			}
			if emitObs != nil {
				cyc = autoclass.NewTryCycleObserver(emitObs, cyc,
					autoclass.Variant{Index: tryIndex, StartJ: startJ, Try: try, Seed: trySeed}, total)
			}
			if cyc != nil {
				eng.SetCycleObserver(cyc)
			}
			if ck.Every > 0 || ck.Interrupt != nil {
				ti, sj, tn, ts := tryIndex, startJ, try, trySeed
				// Under bounded staleness the hook only fires at sync
				// points (see RunFrom), so the modular cadence could miss
				// every firing when ck.Every and SyncEvery are misaligned;
				// snapshot at the first sync point ck.Every cycles after
				// the previous snapshot instead. The synchronous path keeps
				// the exact historical cadence.
				stale := opts.EM.EffectiveSyncEvery() > 1
				lastSnap := startCycle
				eng.SetCycleHook(func(cycle int, converged bool) error {
					stop := false
					if ck.Interrupt != nil {
						s, err := agreeInterrupt(comm, ck.Interrupt)
						if err != nil {
							return err
						}
						stop = s
					}
					// The final cycle's state is persisted at the try
					// boundary below; no mid-try snapshot needed. A stop
					// request racing with convergence lets the try finish —
					// the between-tries poll catches it.
					snap := ck.Every > 0 && (cycle+1)%ck.Every == 0
					if stale {
						snap = ck.Every > 0 && cycle+1-lastSnap >= ck.Every
					}
					if converged || (!snap && !stop) {
						return nil
					}
					// Group-consistent snapshot: every rank proposes its
					// cycle; agreement is the SPMD invariant holding. A
					// mismatch means the trajectory has already diverged —
					// refuse to write a checkpoint that lies about it.
					agreed, err := comm.AllreduceFloat64(mpi.Min, float64(cycle))
					if err != nil {
						return fmt.Errorf("pautoclass: checkpoint agreement: %w", err)
					}
					if int(agreed) != cycle {
						return fmt.Errorf("pautoclass: rank %d at cycle %d but group minimum is %v (SPMD divergence)", comm.Rank(), cycle, agreed)
					}
					lastSnap = cycle + 1
					if comm.Rank() == 0 {
						st := eng.State()
						sp := &autoclass.SearchPoint{
							TryIndex:   ti,
							StartJ:     sj,
							Try:        tn,
							TrySeed:    ts,
							CycleInTry: cycle + 1,
							BelowTol:   st.BelowTol,
							LastPost:   st.LastPost,
							SearchSeed: cfg.Seed,
							SyncStats:  st.SyncStats,
						}
						var buf bytes.Buffer
						if err := autoclass.SaveCheckpointSearch(&buf, cls, sp); err != nil {
							return err
						}
						state.InTry = buf.Bytes()
						if err := writeParState(ck.Path, state); err != nil {
							return err
						}
					}
					if stop {
						return ErrInterrupted
					}
					return nil
				})
			}
			em, err := eng.RunFrom(startCycle)
			if err != nil {
				return nil, err
			}
			tr := autoclass.TryResult{
				StartJ: startJ, FinalJ: cls.J(), Try: try, Seed: trySeed,
				// startCycle cycles ran before the interruption; em counts
				// only the cycles since resume.
				Cycles: startCycle + em.Cycles, Converged: em.Converged,
				LogLik: cls.LogLik, LogPost: cls.LogPost, Score: cls.Score(),
			}
			tryIndex++
			res.Totals.Cycles += em.Cycles
			res.Totals.WtsSeconds += em.WtsSeconds
			res.Totals.ParamsSeconds += em.ParamsSeconds
			res.Totals.ApproxSeconds += em.ApproxSeconds
			res.Totals.InitSeconds += em.InitSeconds
			res.Totals.ReducedValues += em.ReducedValues
			res.Totals.Reductions += em.Reductions
			for _, prev := range res.Tries {
				if !prev.Duplicate && prev.FinalJ == tr.FinalJ &&
					stats.RelDiff(prev.Score, tr.Score) < cfg.DupScoreTol {
					tr.Duplicate = true
					break
				}
			}
			res.Tries = append(res.Tries, tr)
			if !tr.Duplicate && (res.Best == nil || tr.Score > res.BestTry.Score) {
				res.Best = cls
				res.BestTry = tr
			}
			if emitObs != nil {
				kind := autoclass.TryConverged
				if tr.Duplicate {
					kind = autoclass.TryDuplicate
				}
				ev := autoclass.TryEvent{
					// tryIndex was already advanced past this try above.
					Kind: kind, Index: tryIndex - 1, StartJ: startJ, Try: try,
					Seed: trySeed, Cycles: tr.Cycles, J: tr.FinalJ,
					LogPost: tr.LogPost, Score: tr.Score, Converged: tr.Converged,
					Done: len(res.Tries), Total: total,
					BestScore: math.Inf(-1),
				}
				if res.Best != nil {
					ev.BestScore = res.BestTry.Score
					ev.BestJ = res.BestTry.FinalJ
				}
				emitObs.ObserveTry(ev)
			}
			// Try boundary: persist completed progress (rank 0 only — every
			// rank holds the identical state, no agreement needed because the
			// try just finished through globally reduced quantities).
			state.InTry = nil
			state.Completed = res.Tries
			state.Totals = res.Totals
			state.BestTry = res.BestTry
			if res.Best != nil {
				var buf bytes.Buffer
				if err := autoclass.SaveCheckpoint(&buf, res.Best); err != nil {
					return nil, err
				}
				state.Best = buf.Bytes()
			}
			if comm.Rank() == 0 {
				if err := writeParState(ck.Path, state); err != nil {
					return nil, err
				}
			}
		}
	}
	if res.Best == nil {
		return nil, errors.New("pautoclass: search produced no classification")
	}
	return res, nil
}
