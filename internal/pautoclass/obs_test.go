package pautoclass

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"sync"
	"testing"

	"repro/internal/autoclass"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// searchObserved runs a parallel search with the full observability stack
// (metrics, tracer, clock binding, rank-0 phase profile) installed when
// session is non-nil, and returns rank 0's result plus its virtual elapsed
// time.
func searchObserved(t testing.TB, p int, cfg autoclass.SearchConfig, strategy Strategy,
	session *obs.Run, profile *trace.Profile) (*autoclass.SearchResult, float64) {
	t.Helper()
	ds := paperDS(t, 2000)
	machine := simnet.MeikoCS2()
	var mu sync.Mutex
	var out *autoclass.SearchResult
	var elapsed float64
	err := mpi.Run(p, func(c *mpi.Comm) error {
		clk := simnet.MustNewClock(machine)
		opts := Options{EM: cfg.EM, Strategy: strategy, Clock: clk}
		opts.Obs = session.Rank(c.Rank())
		if c.Rank() == 0 {
			opts.Profile = profile
		}
		res, err := Search(c, ds, model.DefaultSpec(ds), cfg, opts)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			mu.Lock()
			out = res
			elapsed = clk.Elapsed()
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out, elapsed
}

// TestObservabilityPreservesTrajectory is the SPMD invariant of the
// observability layer: the identical search with tracing, metrics and
// profiling on must produce a bitwise-identical trajectory — same per-try
// histories, same best posterior bits, same virtual clock — as with it off.
func TestObservabilityPreservesTrajectory(t *testing.T) {
	cfg := quickSearchConfig()
	cfg.StartJList = []int{4}
	cfg.EM.MaxCycles = 15

	for _, strategy := range []Strategy{Full, WtsOnly} {
		bare, bareElapsed := searchObserved(t, 4, cfg, strategy, nil, nil)
		session := obs.NewRun(4)
		traced, tracedElapsed := searchObserved(t, 4, cfg, strategy, session, trace.New())

		if math.Float64bits(bare.Best.LogPost) != math.Float64bits(traced.Best.LogPost) {
			t.Fatalf("%v: best logpost diverged with observability on: %x vs %x",
				strategy, math.Float64bits(bare.Best.LogPost), math.Float64bits(traced.Best.LogPost))
		}
		if bareElapsed != tracedElapsed {
			t.Fatalf("%v: virtual elapsed diverged: %v vs %v", strategy, bareElapsed, tracedElapsed)
		}
		if len(bare.Tries) != len(traced.Tries) {
			t.Fatalf("%v: try count diverged: %d vs %d", strategy, len(bare.Tries), len(traced.Tries))
		}
		if !reflect.DeepEqual(bare.Tries, traced.Tries) {
			t.Fatalf("%v: try records diverged with observability on:\n%+v\nvs\n%+v",
				strategy, bare.Tries, traced.Tries)
		}
		// And the observed run must actually have recorded something.
		if session.Aggregate().Counter(obs.MetricCycles).Value() == 0 {
			t.Fatalf("%v: observability session recorded no cycles", strategy)
		}
	}
}

// TestPhaseProfileRecordsEnginePhases is the -phase-profile satellite: a
// parallel run with a profile installed yields the §3.1-style table with
// all three base_cycle phases plus initialization.
func TestPhaseProfileRecordsEnginePhases(t *testing.T) {
	cfg := quickSearchConfig()
	cfg.StartJList = []int{4}
	cfg.EM.MaxCycles = 10
	for _, strategy := range []Strategy{Full, WtsOnly} {
		profile := trace.New()
		searchObserved(t, 2, cfg, strategy, nil, profile)
		for _, phase := range []string{
			autoclass.PhaseInit, autoclass.PhaseWts,
			autoclass.PhaseParams, autoclass.PhaseApprox,
		} {
			if profile.Get(phase).Calls == 0 {
				t.Fatalf("%v: profile phase %q never recorded", strategy, phase)
			}
		}
	}
}

// TestEngineChromeTrace is the acceptance-criteria run: 8 ranks on the
// Meiko model with tracing on must yield a Chrome trace that parses, has
// one track per rank, and carries monotonic virtual timestamps per track.
func TestEngineChromeTrace(t *testing.T) {
	cfg := quickSearchConfig()
	cfg.StartJList = []int{4}
	cfg.EM.MaxCycles = 8
	const p = 8
	session := obs.NewRun(p)
	session.SetMachineLabel("Meiko CS-2")
	searchObserved(t, p, cfg, Full, session, nil)

	var buf bytes.Buffer
	if err := session.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string  `json:"ph"`
			Tid int     `json:"tid"`
			TS  float64 `json:"ts"`
			Cat string  `json:"cat"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	tracks := map[int]bool{}
	lastTS := map[int]float64{}
	cats := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		tracks[ev.Tid] = true
		cats[ev.Cat] = true
		if ev.TS < lastTS[ev.Tid] {
			t.Fatalf("track %d timestamps not monotonic", ev.Tid)
		}
		lastTS[ev.Tid] = ev.TS
	}
	if len(tracks) != p {
		t.Fatalf("trace has %d tracks, want one per rank (%d)", len(tracks), p)
	}
	for _, cat := range []string{"compute", "comm", "engine"} {
		if !cats[cat] {
			t.Fatalf("trace missing %q events", cat)
		}
	}
}

// TestCommFractionGrowsWithRanks reproduces the paper's Figs. 9/10 shape
// from the observability breakdown: with the dataset fixed, communication's
// share of the accounted virtual time grows with the processor count.
func TestCommFractionGrowsWithRanks(t *testing.T) {
	cfg := quickSearchConfig()
	cfg.StartJList = []int{8}
	cfg.EM.MaxCycles = 5
	var trend obs.Trend
	for _, p := range []int{2, 4, 8} {
		session := obs.NewRun(p)
		searchObserved(t, p, cfg, Full, session, nil)
		trend.Add(session.Breakdown())
	}
	for i := 1; i < len(trend.Rows); i++ {
		prev, cur := trend.Rows[i-1], trend.Rows[i]
		if cur.CommFraction() <= prev.CommFraction() {
			t.Fatalf("comm fraction should grow with ranks:\n%s", trend.Table())
		}
	}
}
