package pautoclass

import (
	"testing"

	"repro/internal/autoclass"
	"repro/internal/datagen"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/simnet"
)

// runTrialHistory runs one multi-rank trial at the given intra-rank
// parallelism and returns rank 0's per-cycle log-posterior trajectory.
func runTrialHistory(t testing.TB, p, par int, strategy Strategy) []float64 {
	t.Helper()
	ds := paperDS(t, 2000)
	var hist []float64
	err := mpi.Run(p, func(c *mpi.Comm) error {
		view, err := PartitionView(c, ds)
		if err != nil {
			return err
		}
		opts := DefaultOptions()
		opts.Strategy = strategy
		opts.EM.MaxCycles = 12
		opts.EM.Parallelism = par
		pr, err := ParallelPriors(c, view, &opts)
		if err != nil {
			return err
		}
		_, res, err := RunTrial(c, view, pr, model.DefaultSpec(ds), 4, 11, opts)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			hist = res.History
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return hist
}

// TestHybridTrajectoryMatchesAcrossParallelism is the SPMD determinism
// acceptance test: on a multi-rank run, Parallelism N must reproduce the
// Parallelism 1 log-posterior trajectory bit for bit, because the fixed
// shard grid makes every rank's reduced contributions independent of its
// worker count.
func TestHybridTrajectoryMatchesAcrossParallelism(t *testing.T) {
	for _, strategy := range []Strategy{Full, WtsOnly} {
		want := runTrialHistory(t, 3, 1, strategy)
		if len(want) == 0 {
			t.Fatalf("%v: empty trajectory", strategy)
		}
		for _, par := range []int{2, 4} {
			got := runTrialHistory(t, 3, par, strategy)
			if len(got) != len(want) {
				t.Fatalf("%v Parallelism %d: %d cycles vs %d", strategy, par, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%v Parallelism %d cycle %d: logpost %v != %v",
						strategy, par, i, got[i], want[i])
				}
			}
		}
	}
}

// The full BIG_LOOP search must land on the same best classification for
// any worker count.
func TestHybridSearchSameBest(t *testing.T) {
	ds := paperDS(t, 1500)
	cfg := quickSearchConfig()
	run := func(par int) *autoclass.SearchResult {
		opts := DefaultOptions()
		opts.EM = cfg.EM
		opts.EM.Parallelism = par
		c := cfg
		c.EM.Parallelism = par
		return runParallelSearch(t, ds, 3, c, opts)
	}
	want := run(1)
	got := run(4)
	if got.Best.LogPost != want.Best.LogPost {
		t.Fatalf("best logpost %v (Parallelism 4) != %v (Parallelism 1)", got.Best.LogPost, want.Best.LogPost)
	}
	if got.Best.J() != want.Best.J() {
		t.Fatalf("best J %d != %d", got.Best.J(), want.Best.J())
	}
}

// ParallelPriors must charge the virtual clock once per collective it
// actually issues: sums/mins/maxs/N for an all-real dataset, plus the
// discrete-counts exchange when the dataset has discrete attributes.
func TestPriorsChargesPerCollective(t *testing.T) {
	realDS := paperDS(t, 400)
	spec := datagen.ProteinMixture()
	discDS, _, err := spec.Generate(400, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		name string
		want int
	}{{"real", 4}, {"discrete", 5}} {
		ds := realDS
		if c.name == "discrete" {
			ds = discDS
		}
		colls := make([]int, 2)
		err := mpi.Run(2, func(comm *mpi.Comm) error {
			view, err := PartitionView(comm, ds)
			if err != nil {
				return err
			}
			opts := DefaultOptions()
			opts.Clock = simnet.MustNewClock(simnet.MeikoCS2())
			if _, err := ParallelPriors(comm, view, &opts); err != nil {
				return err
			}
			colls[comm.Rank()] = opts.Clock.Collectives()
			return nil
		})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		for r, got := range colls {
			if got != c.want {
				t.Errorf("%s rank %d: %d collectives charged, want %d", c.name, r, got, c.want)
			}
		}
	}
}
