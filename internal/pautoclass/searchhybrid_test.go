package pautoclass

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/autoclass"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/simnet"
)

func hybridSearchCfg() autoclass.SearchConfig {
	cfg := autoclass.DefaultSearchConfig()
	cfg.StartJList = []int{2, 4, 5}
	cfg.Tries = 2
	cfg.EM.MaxCycles = 20
	return cfg
}

// groupSearch runs the plain SPMD Search on `ranks` ranks and returns the
// (identical-on-every-rank) result.
func groupSearch(t *testing.T, ds *dataset.Dataset, cfg autoclass.SearchConfig, ranks int) *autoclass.SearchResult {
	t.Helper()
	var res *autoclass.SearchResult
	err := mpi.Run(ranks, func(c *mpi.Comm) error {
		// Align the per-rank EM options with the search configuration, as
		// SearchHybrid's default optsFor does.
		r, err := Search(c, ds, model.DefaultSpec(ds), cfg, Options{EM: cfg.EM, Strategy: Full})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			res = r
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func sameTryRecords(a, b []autoclass.TryResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func checkpointBytes(t *testing.T, cls *autoclass.Classification) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := autoclass.SaveCheckpoint(&buf, cls); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSearchHybridMatchesGroupSearch: the hybrid split at V groups × R
// ranks is bitwise identical to the plain SPMD search on R ranks, for any
// V — the variant dimension never perturbs the trajectory.
func TestSearchHybridMatchesGroupSearch(t *testing.T) {
	ds := paperDS(t, 600)
	cfg := hybridSearchCfg()
	spec := model.DefaultSpec(ds)

	for _, tc := range []struct{ procs, variants, ranksPerGroup int }{
		{2, 1, 2},
		{4, 2, 2},
		{3, 3, 1},
	} {
		ref := groupSearch(t, ds, cfg, tc.ranksPerGroup)
		res, err := SearchHybrid(ds, spec, cfg,
			HybridConfig{Procs: tc.procs, Variants: tc.variants}, nil)
		if err != nil {
			t.Fatalf("V=%d R=%d: %v", tc.variants, tc.ranksPerGroup, err)
		}
		if !sameTryRecords(res.Tries, ref.Tries) {
			t.Fatalf("V=%d R=%d: tries diverged from %d-rank search", tc.variants, tc.ranksPerGroup, tc.ranksPerGroup)
		}
		if res.BestTry != ref.BestTry {
			t.Fatalf("V=%d R=%d: best try diverged", tc.variants, tc.ranksPerGroup)
		}
		if !bytes.Equal(checkpointBytes(t, res.Best), checkpointBytes(t, ref.Best)) {
			t.Fatalf("V=%d R=%d: best checkpoint bytes diverged", tc.variants, tc.ranksPerGroup)
		}
		if res.Totals.Cycles != ref.Totals.Cycles ||
			res.Totals.ReducedValues != ref.Totals.ReducedValues ||
			res.Totals.Reductions != ref.Totals.Reductions {
			t.Fatalf("V=%d R=%d: deterministic totals diverged", tc.variants, tc.ranksPerGroup)
		}
	}
}

func TestSearchHybridValidation(t *testing.T) {
	ds := paperDS(t, 200)
	cfg := hybridSearchCfg()
	spec := model.DefaultSpec(ds)
	if _, err := SearchHybrid(ds, spec, cfg, HybridConfig{Procs: 4, Variants: 3}, nil); err == nil {
		t.Error("indivisible budget accepted")
	}
	if _, err := SearchHybrid(ds, spec, cfg, HybridConfig{Procs: 2, Variants: 4}, nil); err == nil {
		t.Error("variants exceeding budget accepted")
	}
	if _, err := SearchHybrid(ds, spec, cfg, HybridConfig{Procs: 0}, nil); err == nil {
		t.Error("zero budget accepted")
	}
	// A virtual clock is a serial construct; concurrent groups must refuse it.
	mach := simnet.MeikoCS2()
	_, err := SearchHybrid(ds, spec, cfg, HybridConfig{Procs: 2, Variants: 2},
		func(group, rank int) Options {
			o := DefaultOptions()
			o.Clock = simnet.MustNewClock(mach)
			return o
		})
	if err == nil || !strings.Contains(err.Error(), "virtual clock") {
		t.Errorf("clocked hybrid search: %v", err)
	}
}

// TestSPMDSearchForcesSequentialVariants: the replicated SPMD BIG_LOOP must
// ignore SearchParallelism — its trial runner communicates and cannot run
// concurrently on one rank.
func TestSPMDSearchForcesSequentialVariants(t *testing.T) {
	ds := paperDS(t, 400)
	cfg := hybridSearchCfg()
	ref := groupSearch(t, ds, cfg, 2)
	par := cfg
	par.SearchParallelism = 4
	res := groupSearch(t, ds, par, 2)
	if !sameTryRecords(res.Tries, ref.Tries) || res.BestTry != ref.BestTry {
		t.Fatal("SearchParallelism perturbed the SPMD search")
	}
}
