package pautoclass

import (
	"fmt"
	"testing"

	"repro/internal/autoclass"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/mpi"
)

// predictFixture fits a small classification and draws a held-out batch
// (missing values and one all-missing row included).
func predictFixture(t *testing.T, n int) (*autoclass.Classification, *dataset.Dataset) {
	t.Helper()
	train, err := datagen.Paper(400, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := autoclass.DefaultSearchConfig()
	cfg.StartJList = []int{3}
	cfg.Tries = 1
	cfg.EM.MaxCycles = 20
	res, err := autoclass.Search(train, model.DefaultSpec(train), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ho, err := datagen.Paper(n, 71)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := datagen.InjectMissing(ho, 0.1, 73); err != nil {
		t.Fatal(err)
	}
	if n > 2 {
		row := ho.Row(n / 2)
		for k := range row {
			row[k] = dataset.Missing
		}
	}
	return res.Best, ho
}

func comparePredictions(t *testing.T, label string, got, want *autoclass.Prediction) {
	t.Helper()
	if got.J != want.J || got.N() != want.N() {
		t.Fatalf("%s: shape J=%d N=%d, want J=%d N=%d", label, got.J, got.N(), want.J, want.N())
	}
	if got.LogLik != want.LogLik {
		t.Errorf("%s: LogLik %v, want %v (diff %g)", label, got.LogLik, want.LogLik, got.LogLik-want.LogLik)
	}
	for i := 0; i < want.N(); i++ {
		if got.MAP[i] != want.MAP[i] {
			t.Fatalf("%s: row %d MAP %d, want %d", label, i, got.MAP[i], want.MAP[i])
		}
	}
	for i := range want.Memberships {
		if got.Memberships[i] != want.Memberships[i] {
			t.Fatalf("%s: membership flat index %d: %v, want %v",
				label, i, got.Memberships[i], want.Memberships[i])
		}
	}
}

// TestPredictRanksBitwise is the scale-out predict property test: the
// rank-sharded scorer must return the bitwise-identical prediction to the
// single-process path at every rank count — batch sizes off and on the
// block/partition grid, rank counts that leave trailing ranks empty, and
// both the mem and TCP transports.
func TestPredictRanksBitwise(t *testing.T) {
	for _, n := range []int{100, 512, 777, 1300} {
		cls, ho := predictFixture(t, n)
		want, err := autoclass.Predict(cls, ho, autoclass.PredictConfig{RowLogLik: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{1, 2, 3, 5} {
			results := make([]*autoclass.Prediction, p)
			err := mpi.Run(p, func(c *mpi.Comm) error {
				r, err := Predict(c, cls, ho, autoclass.PredictConfig{RowLogLik: true})
				if err != nil {
					return err
				}
				results[c.Rank()] = r
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			// Every rank holds the complete, identical result.
			for r := 0; r < p; r++ {
				comparePredictions(t, fmt.Sprintf("mem n=%d p=%d rank=%d", n, p, r), results[r], want)
				for i := range want.RowLL {
					if results[r].RowLL[i] != want.RowLL[i] {
						t.Fatalf("mem n=%d p=%d rank=%d: RowLL[%d] %v, want %v",
							n, p, r, i, results[r].RowLL[i], want.RowLL[i])
					}
				}
			}
		}
	}
}

// TestPredictTCPBitwise runs the same equivalence over the TCP transport —
// the wire the daemon's scale-out predict workers use.
func TestPredictTCPBitwise(t *testing.T) {
	cls, ho := predictFixture(t, 700)
	want, err := autoclass.Predict(cls, ho, autoclass.PredictConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var got *autoclass.Prediction
	err = mpi.RunTCP(3, func(c *mpi.Comm) error {
		r, err := Predict(c, cls, ho, autoclass.PredictConfig{Parallelism: 2})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			got = r
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	comparePredictions(t, "tcp p=3", got, want)
	if len(got.RowLL) != 0 {
		t.Errorf("RowLL retained without RowLogLik: %d entries", len(got.RowLL))
	}
}

// TestPredictValidation covers the refusal paths.
func TestPredictValidation(t *testing.T) {
	cls, ho := predictFixture(t, 100)
	err := mpi.Run(2, func(c *mpi.Comm) error {
		if _, err := Predict(c, cls, nil, autoclass.PredictConfig{}); err == nil {
			return fmt.Errorf("nil dataset accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Predict(nil, cls, ho, autoclass.PredictConfig{}); err == nil {
		t.Error("nil communicator accepted")
	}
}
