package pautoclass

import (
	"bytes"
	"errors"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/autoclass"
	"repro/internal/model"
	"repro/internal/mpi"
)

// tryRecorder collects every TryEvent delivered to it; safe for concurrent
// use so one instance can be handed to every rank of an mpi.Run group.
type tryRecorder struct {
	mu     sync.Mutex
	events []autoclass.TryEvent
}

func (r *tryRecorder) ObserveTry(ev autoclass.TryEvent) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

func (r *tryRecorder) byKind(k autoclass.TryEventKind) []autoclass.TryEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []autoclass.TryEvent
	for _, ev := range r.events {
		if ev.Kind == k {
			out = append(out, ev)
		}
	}
	return out
}

func (r *tryRecorder) commits() []autoclass.TryEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []autoclass.TryEvent
	for _, ev := range r.events {
		switch ev.Kind {
		case autoclass.TryConverged, autoclass.TryDuplicate, autoclass.TryEarlyStopped:
			out = append(out, ev)
		}
	}
	return out
}

func (r *tryRecorder) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// A search observer handed to every rank of a parallel Search must leave
// the trajectory bitwise identical and emit each lifecycle event exactly
// once (rank 0 only), not once per rank.
func TestParallelSearchObserverOncePerEvent(t *testing.T) {
	const p = 2
	ds := paperDS(t, 240)
	cfg := quickSearchConfig()
	ref := runParallelSearch(t, ds, p, cfg, DefaultOptions())
	refBest := clsBytes(t, ref.Best)

	rec := &tryRecorder{}
	opts := DefaultOptions()
	opts.SearchObs = rec // same Options on every rank, as the daemon does
	res := runParallelSearch(t, ds, p, cfg, opts)

	if !bytes.Equal(clsBytes(t, res.Best), refBest) {
		t.Error("observed parallel search found a different best classification")
	}
	if !reflect.DeepEqual(res.Tries, ref.Tries) {
		t.Errorf("observed parallel search tries diverged:\nref: %+v\nobs: %+v", ref.Tries, res.Tries)
	}

	total := len(cfg.Variants())
	if claims := rec.byKind(autoclass.TryClaimed); len(claims) != total {
		t.Fatalf("%d claim events for %d variants over %d ranks; events must be emitted once, not per rank", len(claims), total, p)
	}
	commits := rec.commits()
	if len(commits) != total {
		t.Fatalf("%d commit events, want %d", len(commits), total)
	}
	for i, ev := range commits {
		if ev.Index != i {
			t.Errorf("commit %d has Index %d; commits must arrive in schedule order", i, ev.Index)
		}
		if ev.Done != i+1 {
			t.Errorf("commit %d reports Done=%d, want %d", i, ev.Done, i+1)
		}
		tr := res.Tries[i]
		if ev.Cycles != tr.Cycles || ev.Seed != tr.Seed || ev.StartJ != tr.StartJ {
			t.Errorf("commit %d fields diverge from try record", i)
		}
	}
	// Rank 0 adapts the engine cycle stream too: one TryCycle event per
	// recorded EM cycle.
	wantCycles := 0
	for _, tr := range res.Tries {
		wantCycles += tr.Cycles
	}
	if got := len(rec.byKind(autoclass.TryCycle)); got != wantCycles {
		t.Errorf("%d cycle events, tries recorded %d cycles", got, wantCycles)
	}
}

// SearchCheckpointed with an observer on every rank: same trajectory as the
// plain parallel search, events once per lifecycle point.
func TestSearchCheckpointedObserver(t *testing.T) {
	const p = 2
	ds := paperDS(t, 240)
	cfg := quickSearchConfig()
	ref := runParallelSearch(t, ds, p, cfg, DefaultOptions())
	refBest := clsBytes(t, ref.Best)

	rec := &tryRecorder{}
	opts := DefaultOptions()
	opts.SearchObs = rec
	path := filepath.Join(t.TempDir(), "search.ckpt")
	var res *autoclass.SearchResult
	err := mpi.Run(p, func(c *mpi.Comm) error {
		r, err := SearchCheckpointed(c, ds, model.DefaultSpec(ds), cfg, opts,
			Checkpoint{Path: path, Every: 2})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			res = r
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(clsBytes(t, res.Best), refBest) {
		t.Error("observed checkpointed search found a different best classification")
	}
	if !reflect.DeepEqual(res.Tries, ref.Tries) {
		t.Errorf("observed checkpointed search tries diverged:\nref: %+v\nobs: %+v", ref.Tries, res.Tries)
	}

	total := len(cfg.Variants())
	if claims := rec.byKind(autoclass.TryClaimed); len(claims) != total {
		t.Fatalf("%d claim events for %d variants over %d ranks; events must be emitted once, not per rank", len(claims), total, p)
	}
	commits := rec.commits()
	if len(commits) != total {
		t.Fatalf("%d commit events, want %d", len(commits), total)
	}
	for i, ev := range commits {
		if ev.Index != i {
			t.Errorf("commit %d has Index %d, want schedule order", i, ev.Index)
		}
		if ev.Done != i+1 {
			t.Errorf("commit %d reports Done=%d, want %d", i, ev.Done, i+1)
		}
	}

	// A finished search re-launched against its state file restores the
	// result without re-running — and therefore without emitting any events.
	before := rec.len()
	err = mpi.Run(p, func(c *mpi.Comm) error {
		_, err := SearchCheckpointed(c, ds, model.DefaultSpec(ds), cfg, opts,
			Checkpoint{Path: path, Every: 2})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if after := rec.len(); after != before {
		t.Errorf("re-launch of a finished search emitted %d events; restored tries must not re-emit", after-before)
	}
}

// The daemon's restart-until-done loop with an observer: each resumed
// attempt's first claim reports a Done count equal to the restored prefix,
// every schedule index commits exactly once across all attempts, and the
// final classification matches the uninterrupted run bit for bit.
func TestSearchCheckpointedObserverResumeDone(t *testing.T) {
	const p = 2
	ds := paperDS(t, 240)
	cfg := quickSearchConfig()
	ref := runParallelSearch(t, ds, p, cfg, DefaultOptions())

	path := filepath.Join(t.TempDir(), "search.ckpt")
	var allCommits []autoclass.TryEvent
	var final *autoclass.SearchResult
	for attempt := 0; attempt < 100 && final == nil; attempt++ {
		rec := &tryRecorder{}
		opts := DefaultOptions()
		opts.SearchObs = rec
		err := mpi.Run(p, func(c *mpi.Comm) error {
			cycles := 0
			ck := Checkpoint{Path: path, Interrupt: func() bool {
				cycles++
				return cycles > 5
			}}
			res, err := SearchCheckpointed(c, ds, model.DefaultSpec(ds), cfg, opts, ck)
			if errors.Is(err, ErrInterrupted) {
				return nil
			}
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				final = res
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if claims := rec.byKind(autoclass.TryClaimed); len(claims) > 0 {
			if got, want := claims[0].Done, len(allCommits); got != want {
				t.Fatalf("attempt %d: first claim reports Done=%d, want %d (the restored prefix)", attempt, got, want)
			}
			if got, want := claims[0].Index, len(allCommits); got != want {
				t.Fatalf("attempt %d: first claim is for Index %d, want %d (first unfinished try)", attempt, got, want)
			}
		}
		allCommits = append(allCommits, rec.commits()...)
	}
	if final == nil {
		t.Fatal("search never completed across 100 interrupted attempts")
	}
	total := len(cfg.Variants())
	if len(allCommits) != total {
		t.Fatalf("%d commit events across all attempts, want %d (restored tries must not re-commit)", len(allCommits), total)
	}
	for i, ev := range allCommits {
		if ev.Index != i {
			t.Errorf("commit %d has Index %d; each try commits exactly once in order", i, ev.Index)
		}
		if ev.Done != i+1 {
			t.Errorf("commit %d reports Done=%d, want %d", i, ev.Done, i+1)
		}
	}
	if !bytes.Equal(clsBytes(t, final.Best), clsBytes(t, ref.Best)) {
		t.Error("interrupt-riddled observed search found a different best classification")
	}
	if !reflect.DeepEqual(final.Tries, ref.Tries) {
		t.Errorf("interrupt-riddled observed search tries diverged:\nref: %+v\ngot: %+v", ref.Tries, final.Tries)
	}
}
