package pautoclass

import (
	"path/filepath"
	"testing"

	"repro/internal/autoclass"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/mpi"
)

// chunkFileDS writes ds to a chunk file and opens it with the given
// options; the returned dataset is closed with the test.
func chunkFileDS(t *testing.T, ds *dataset.Dataset, chunkRows int, opts dataset.ChunkOptions) *dataset.Dataset {
	t.Helper()
	path := filepath.Join(t.TempDir(), "rows.chunks")
	if err := dataset.WriteChunked(path, ds, chunkRows); err != nil {
		t.Fatal(err)
	}
	cds, err := dataset.OpenChunked(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cds.Close() })
	return cds
}

// sameSearchBits requires two search results to agree exactly: same best
// class structure and scores bit for bit, same per-try records.
func sameSearchBits(t *testing.T, label string, got, want *autoclass.SearchResult) {
	t.Helper()
	if got.Best.J() != want.Best.J() {
		t.Fatalf("%s: J=%d want %d", label, got.Best.J(), want.Best.J())
	}
	if got.Best.LogPost != want.Best.LogPost || got.Best.LogLik != want.Best.LogLik {
		t.Fatalf("%s: logpost/loglik %v/%v want %v/%v", label,
			got.Best.LogPost, got.Best.LogLik, want.Best.LogPost, want.Best.LogLik)
	}
	if got.BestTry.StartJ != want.BestTry.StartJ || got.BestTry.Seed != want.BestTry.Seed {
		t.Fatalf("%s: best try %+v want %+v", label, got.BestTry, want.BestTry)
	}
	if len(got.Tries) != len(want.Tries) {
		t.Fatalf("%s: %d tries want %d", label, len(got.Tries), len(want.Tries))
	}
	for i := range want.Tries {
		if got.Tries[i].Score != want.Tries[i].Score || got.Tries[i].Cycles != want.Tries[i].Cycles {
			t.Fatalf("%s try %d: score %v cycles %d, want %v/%d", label, i,
				got.Tries[i].Score, got.Tries[i].Cycles, want.Tries[i].Score, want.Tries[i].Cycles)
		}
	}
	for j := range want.Best.Classes {
		gp := got.Best.Classes[j].Terms[0].Params()
		wp := want.Best.Classes[j].Terms[0].Params()
		for i := range wp {
			if gp[i] != wp[i] {
				t.Fatalf("%s class %d param %d: %v want %v", label, j, i, gp[i], wp[i])
			}
		}
	}
}

// TestParallelChunkedMatchesMaterialized: with the row count a multiple of
// ChunkAlign×P the aligned partition coincides with the materialized
// block partition, so an SPMD search over the chunk plane must reproduce
// the materialized parallel search bit for bit — for every backing and
// chunk size.
func TestParallelChunkedMatchesMaterialized(t *testing.T) {
	ds := paperDS(t, 2048)
	cfg := quickSearchConfig()
	backings := map[string]*dataset.Dataset{
		"file-cached": chunkFileDS(t, ds, 512, dataset.ChunkOptions{Mode: dataset.ChunkCached, Chunks: 2}),
		"file-auto":   chunkFileDS(t, ds, 1024, dataset.ChunkOptions{}),
	}
	if mem, err := dataset.ChunkedCopy(ds, 256); err != nil {
		t.Fatal(err)
	} else {
		backings["mem"] = mem
	}
	for _, p := range []int{2, 4} {
		want := runParallelSearch(t, ds, p, cfg, DefaultOptions())
		for name, cds := range backings {
			got := runParallelSearch(t, cds, p, cfg, DefaultOptions())
			sameSearchBits(t, name, got, want)
		}
	}
}

// TestParallelChunkedAlignedPartition: when the row count does not divide
// evenly, the chunk-backed partition lands every rank's start on the
// ChunkAlign grid (so kernel blocks stay chunk-contained) and all backings
// still agree with each other bit for bit.
func TestParallelChunkedAlignedPartition(t *testing.T) {
	ds := paperDS(t, 2100)
	cds := chunkFileDS(t, ds, 512, dataset.ChunkOptions{Mode: dataset.ChunkCached, Chunks: 2})
	const p = 3
	err := mpi.Run(p, func(c *mpi.Comm) error {
		view, err := PartitionView(c, cds)
		if err != nil {
			return err
		}
		if view.Start()%dataset.ChunkAlign != 0 {
			t.Errorf("rank %d starts at %d, off the %d grid", c.Rank(), view.Start(), dataset.ChunkAlign)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickSearchConfig()
	mem, err := dataset.ChunkedCopy(ds, 1024)
	if err != nil {
		t.Fatal(err)
	}
	want := runParallelSearch(t, mem, p, cfg, DefaultOptions())
	got := runParallelSearch(t, cds, p, cfg, DefaultOptions())
	sameSearchBits(t, "cached-vs-mem", got, want)
}

// TestWtsOnlyRejectsChunked: the baseline gathers the full weight matrix
// to a root dataset replica — exactly what out-of-core storage cannot
// provide — so it must refuse chunk-backed datasets loudly.
func TestWtsOnlyRejectsChunked(t *testing.T) {
	ds := paperDS(t, 1024)
	cds := chunkFileDS(t, ds, 512, dataset.ChunkOptions{})
	cfg := quickSearchConfig()
	err := mpi.Run(2, func(c *mpi.Comm) error {
		_, err := Search(c, cds, model.DefaultSpec(cds), cfg, Options{EM: cfg.EM, Strategy: WtsOnly})
		return err
	})
	if err == nil {
		t.Fatal("wts-only search over a chunk-backed dataset succeeded")
	}
}
