package pautoclass

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/autoclass"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/mpi"
)

// Hybrid variant × rank search: the paper's SPMD design puts every rank of
// the group inside ONE classification try at a time — all of P-AutoClass's
// parallelism lives below the BIG_LOOP. The hybrid mode splits a rank
// budget the other way as well: Procs ranks become Variants independent
// communicator groups of Procs/Variants ranks each, every group running
// whole tries pulled from the shared variant scheduler. Group 0's rank 0
// claims nothing special — each group's rank 0 claims the next variant and
// broadcasts its schedule index to its group, so all ranks of a group enter
// RunTrial with identical arguments (the SPMD contract).
//
// Determinism: variants commit through the autoclass scheduler in schedule
// order, so the hybrid result at V groups × R ranks is bitwise identical to
// Search over a single group of R ranks — for any V. (Across different R
// the parallel search itself is not bitwise comparable to the sequential
// one; see the acceptance tests.)

// hybridDone is the broadcast sentinel a group's rank 0 sends when the
// scheduler has no more variants.
const hybridDone = math.MaxUint64

// HybridConfig sizes the variant × rank split of a hybrid search.
type HybridConfig struct {
	// Procs is the total rank budget.
	Procs int
	// Variants is the number of concurrent variant groups V; the budget is
	// split into V communicator groups of Procs/V ranks each, so Procs
	// must be divisible by V. Values < 1 mean 1 (plain Search).
	Variants int
	// UseTCP selects loopback-TCP communicator groups instead of in-memory
	// ones.
	UseTCP bool
	// Run is the per-group transport configuration (collective algorithm,
	// deadlines, retry).
	Run mpi.RunConfig
	// SearchObs, when non-nil, receives claim and commit events from the
	// shared variant scheduler. Claims arrive concurrently from the group
	// leaders, so the observer must be safe for concurrent use; per-cycle
	// TryCycle events are not emitted on the hybrid path.
	SearchObs autoclass.SearchObserver
}

func (hc HybridConfig) groups() (v, r int, err error) {
	if hc.Procs < 1 {
		return 0, 0, errors.New("pautoclass: hybrid Procs < 1")
	}
	v = hc.Variants
	if v < 1 {
		v = 1
	}
	if v > hc.Procs {
		return 0, 0, fmt.Errorf("pautoclass: %d variant groups exceed the %d-rank budget", v, hc.Procs)
	}
	if hc.Procs%v != 0 {
		return 0, 0, fmt.Errorf("pautoclass: rank budget %d not divisible by %d variant groups", hc.Procs, v)
	}
	return v, hc.Procs / v, nil
}

// SearchHybrid runs the BIG_LOOP as Variants concurrent variant groups of
// Procs/Variants ranks each over one shared in-memory dataset. optsFor
// returns the Options for a given (group, rankInGroup); it must not carry a
// simnet Clock when Variants > 1 — the virtual timeline is a serial
// construct and cannot span concurrent groups. Basin early termination
// (SearchConfig.BasinEarlyStop) is not supported on the SPMD engine and is
// ignored here.
func SearchHybrid(ds *dataset.Dataset, spec model.Spec, cfg autoclass.SearchConfig,
	hc HybridConfig, optsFor func(group, rank int) Options) (*autoclass.SearchResult, error) {
	if ds.N() == 0 {
		return nil, errors.New("pautoclass: empty dataset")
	}
	v, r, err := hc.groups()
	if err != nil {
		return nil, err
	}
	sched, err := autoclass.NewSearchScheduler(cfg, v)
	if err != nil {
		return nil, err
	}
	sched.SetObserver(hc.SearchObs)
	variants := cfg.Variants()
	groupErrs := make([]error, v)
	var wg sync.WaitGroup
	for g := 0; g < v; g++ {
		wg.Add(1)
		go func(group int) {
			defer wg.Done()
			body := func(comm *mpi.Comm) error {
				opts := Options{EM: cfg.EM, Strategy: Full}
				if optsFor != nil {
					opts = optsFor(group, comm.Rank())
				}
				if opts.Clock != nil && v > 1 {
					return errors.New("pautoclass: hybrid search cannot charge a virtual clock across concurrent groups")
				}
				view, err := PartitionView(comm, ds)
				if err != nil {
					return err
				}
				opts.install(comm)
				pr, err := ParallelPriors(comm, view, &opts)
				if err != nil {
					return err
				}
				for {
					// The group's rank 0 claims the next variant; the
					// broadcast index keeps every rank of the group on the
					// identical try.
					var claim uint64 = hybridDone
					if comm.Rank() == 0 {
						if next, ok := sched.Next(); ok {
							claim = uint64(next.Index)
						}
					}
					claim, err := comm.BcastUint64(0, claim)
					if err != nil {
						return err
					}
					if claim == hybridDone {
						return nil
					}
					vr := variants[claim]
					cls, em, runErr := RunTrial(comm, view, pr, spec, vr.StartJ, vr.Seed, opts)
					if comm.Rank() == 0 {
						sched.Commit(vr, cls, em, runErr)
					}
					// On a trial error every rank keeps looping: the commit
					// stops the scheduler, so the next claim broadcasts the
					// done sentinel and the group exits together. The error
					// itself surfaces from the scheduler in schedule order.
				}
			}
			run := mpi.RunWith
			if hc.UseTCP {
				run = mpi.RunTCPWith
			}
			groupErrs[group] = run(r, hc.Run, body)
		}(g)
	}
	wg.Wait()
	for g, err := range groupErrs {
		if err != nil {
			return nil, fmt.Errorf("pautoclass: hybrid group %d: %w", g, err)
		}
	}
	return sched.Result()
}
