package pautoclass

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/autoclass"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/simnet"
	"repro/internal/stats"
)

func paperDS(t testing.TB, n int) *dataset.Dataset {
	t.Helper()
	ds, err := datagen.Paper(n, 42)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// runParallelSearch executes a parallel search over p in-process ranks and
// returns rank 0's result.
func runParallelSearch(t testing.TB, ds *dataset.Dataset, p int, cfg autoclass.SearchConfig, opts Options) *autoclass.SearchResult {
	t.Helper()
	var mu sync.Mutex
	var out *autoclass.SearchResult
	err := mpi.Run(p, func(c *mpi.Comm) error {
		res, err := Search(c, ds, model.DefaultSpec(ds), cfg, opts)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			mu.Lock()
			out = res
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func quickSearchConfig() autoclass.SearchConfig {
	cfg := autoclass.DefaultSearchConfig()
	cfg.StartJList = []int{2, 5}
	cfg.Tries = 1
	cfg.EM.MaxCycles = 40
	return cfg
}

func TestParallelPriorsMatchSequential(t *testing.T) {
	ds := paperDS(t, 1000)
	if _, err := datagen.InjectMissing(ds, 0.05, 7); err != nil {
		t.Fatal(err)
	}
	seq := model.NewPriors(ds, ds.Summarize())
	for _, p := range []int{1, 2, 3, 7} {
		results := make([]*model.Priors, p)
		err := mpi.Run(p, func(c *mpi.Comm) error {
			view, err := PartitionView(c, ds)
			if err != nil {
				return err
			}
			pr, err := ParallelPriors(c, view, nil)
			if err != nil {
				return err
			}
			results[c.Rank()] = pr
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		for r, pr := range results {
			if pr.N != seq.N {
				t.Fatalf("p=%d rank %d: N=%d want %d", p, r, pr.N, seq.N)
			}
			for k := range seq.Mean {
				if !stats.AlmostEqual(pr.Mean[k], seq.Mean[k], 1e-9) {
					t.Fatalf("p=%d rank %d attr %d: mean %v want %v", p, r, k, pr.Mean[k], seq.Mean[k])
				}
				if !stats.AlmostEqual(pr.Sigma[k], seq.Sigma[k], 1e-9) {
					t.Fatalf("p=%d rank %d attr %d: sigma %v want %v", p, r, k, pr.Sigma[k], seq.Sigma[k])
				}
			}
		}
	}
}

func TestParallelPriorsDiscreteCounts(t *testing.T) {
	spec := datagen.ProteinMixture()
	ds, _, err := spec.Generate(900, 5)
	if err != nil {
		t.Fatal(err)
	}
	seq := model.NewPriors(ds, ds.Summarize())
	err = mpi.Run(3, func(c *mpi.Comm) error {
		view, err := PartitionView(c, ds)
		if err != nil {
			return err
		}
		pr, err := ParallelPriors(c, view, nil)
		if err != nil {
			return err
		}
		for k := range seq.GlobalFreq {
			if seq.GlobalFreq[k] == nil {
				continue
			}
			for v := range seq.GlobalFreq[k] {
				if !stats.AlmostEqual(pr.GlobalFreq[k][v], seq.GlobalFreq[k][v], 1e-9) {
					return fmt.Errorf("attr %d level %d: %v want %v", k, v, pr.GlobalFreq[k][v], seq.GlobalFreq[k][v])
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// The central correctness claim of the paper: P-AutoClass maintains "the
// same semantics of the sequential algorithm" (§3). The parallel search
// must produce the same classification as the sequential one for every P,
// up to floating-point reduction-order noise.
func TestParallelEqualsSequential(t *testing.T) {
	ds := paperDS(t, 1200)
	cfg := quickSearchConfig()
	seq, err := autoclass.Search(ds, model.DefaultSpec(ds), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 4, 5, 8} {
		par := runParallelSearch(t, ds, p, cfg, DefaultOptions())
		if par.Best.J() != seq.Best.J() {
			t.Fatalf("p=%d: J=%d, sequential %d", p, par.Best.J(), seq.Best.J())
		}
		if !stats.AlmostEqual(par.Best.LogPost, seq.Best.LogPost, 1e-6) {
			t.Fatalf("p=%d: logpost %v, sequential %v", p, par.Best.LogPost, seq.Best.LogPost)
		}
		if par.BestTry.Seed != seq.BestTry.Seed || par.BestTry.StartJ != seq.BestTry.StartJ {
			t.Fatalf("p=%d: best try differs: %+v vs %+v", p, par.BestTry, seq.BestTry)
		}
		// Class parameters must match pairwise (same order: both searches
		// are deterministic and prune identically).
		for j := range seq.Best.Classes {
			ps := seq.Best.Classes[j].Terms[0].Params()
			pp := par.Best.Classes[j].Terms[0].Params()
			for i := range ps {
				if !stats.AlmostEqual(ps[i], pp[i], 1e-6) {
					t.Fatalf("p=%d class %d param %d: %v vs %v", p, j, i, pp[i], ps[i])
				}
			}
		}
	}
}

func TestParallelRanksAgreeBitForBit(t *testing.T) {
	// All ranks of one run must hold the identical classification, exactly.
	ds := paperDS(t, 600)
	cfg := quickSearchConfig()
	const p = 4
	posts := make([]float64, p)
	js := make([]int, p)
	err := mpi.Run(p, func(c *mpi.Comm) error {
		res, err := Search(c, ds, model.DefaultSpec(ds), cfg, DefaultOptions())
		if err != nil {
			return err
		}
		posts[c.Rank()] = res.Best.LogPost
		js[c.Rank()] = res.Best.J()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < p; r++ {
		if posts[r] != posts[0] || js[r] != js[0] {
			t.Fatalf("rank %d diverged: %v/%d vs %v/%d", r, posts[r], js[r], posts[0], js[0])
		}
	}
}

func TestWtsOnlyEqualsFull(t *testing.T) {
	// The two parallel strategies are independent implementations of the
	// same EM; they must converge to the same classification.
	ds := paperDS(t, 800)
	cfg := quickSearchConfig()
	full := runParallelSearch(t, ds, 3, cfg, Options{EM: cfg.EM, Strategy: Full})
	wts := runParallelSearch(t, ds, 3, cfg, Options{EM: cfg.EM, Strategy: WtsOnly})
	if full.Best.J() != wts.Best.J() {
		t.Fatalf("J differs: %d vs %d", full.Best.J(), wts.Best.J())
	}
	if !stats.AlmostEqual(full.Best.LogPost, wts.Best.LogPost, 1e-6) {
		t.Fatalf("logpost differs: %v vs %v", full.Best.LogPost, wts.Best.LogPost)
	}
}

func TestPackedGranularityEqualsPerTerm(t *testing.T) {
	ds := paperDS(t, 800)
	cfg := quickSearchConfig()
	optsPacked := DefaultOptions()
	optsPacked.EM.Granularity = autoclass.Packed
	cfgPacked := cfg
	cfgPacked.EM.Granularity = autoclass.Packed
	perTerm := runParallelSearch(t, ds, 4, cfg, DefaultOptions())
	packed := runParallelSearch(t, ds, 4, cfgPacked, optsPacked)
	if !stats.AlmostEqual(perTerm.Best.LogPost, packed.Best.LogPost, 1e-6) {
		t.Fatalf("granularity changed result: %v vs %v", perTerm.Best.LogPost, packed.Best.LogPost)
	}
}

func TestParallelOverTCP(t *testing.T) {
	// The transport must not change the computation at all: the same
	// P-rank run over TCP sockets and over the channel mesh is the same
	// sequence of reductions in the same order, so the results must be
	// bit-identical.
	ds := paperDS(t, 400)
	cfg := quickSearchConfig()
	cfg.StartJList = []int{3}
	mem := runParallelSearch(t, ds, 3, cfg, DefaultOptions())
	var got *autoclass.SearchResult
	err := mpi.RunTCP(3, func(c *mpi.Comm) error {
		res, err := Search(c, ds, model.DefaultSpec(ds), cfg, DefaultOptions())
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			got = res
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Best.LogPost != mem.Best.LogPost || got.Best.J() != mem.Best.J() {
		t.Fatalf("TCP parallel %v/%d vs mem parallel %v/%d",
			got.Best.LogPost, got.Best.J(), mem.Best.LogPost, mem.Best.J())
	}
}

func TestVirtualClockSpeedup(t *testing.T) {
	// On the simulated Meiko CS-2 a larger dataset must show decreasing
	// virtual elapsed time as P grows.
	ds := paperDS(t, 20000)
	cfg := quickSearchConfig()
	cfg.StartJList = []int{8}
	cfg.EM.MaxCycles = 10
	machine := simnet.MeikoCS2()
	elapsed := map[int]float64{}
	for _, p := range []int{1, 2, 4, 8} {
		var t0 float64
		err := mpi.Run(p, func(c *mpi.Comm) error {
			clk := simnet.MustNewClock(machine)
			opts := Options{EM: cfg.EM, Strategy: Full, Clock: clk}
			if _, err := Search(c, ds, model.DefaultSpec(ds), cfg, opts); err != nil {
				return err
			}
			if c.Rank() == 0 {
				t0 = clk.Elapsed()
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		elapsed[p] = t0
	}
	if !(elapsed[1] > elapsed[2] && elapsed[2] > elapsed[4] && elapsed[4] > elapsed[8]) {
		t.Fatalf("virtual time not decreasing with P: %v", elapsed)
	}
	speedup8 := elapsed[1] / elapsed[8]
	if speedup8 < 4 {
		t.Fatalf("speedup at P=8 only %.2f for 20k tuples", speedup8)
	}
}

func TestVirtualClockCommGrowsWithP(t *testing.T) {
	ds := paperDS(t, 2000)
	cfg := quickSearchConfig()
	cfg.StartJList = []int{8}
	cfg.EM.MaxCycles = 5
	machine := simnet.MeikoCS2()
	comm := map[int]float64{}
	for _, p := range []int{2, 8} {
		var c0 float64
		err := mpi.Run(p, func(c *mpi.Comm) error {
			clk := simnet.MustNewClock(machine)
			opts := Options{EM: cfg.EM, Strategy: Full, Clock: clk}
			if _, err := Search(c, ds, model.DefaultSpec(ds), cfg, opts); err != nil {
				return err
			}
			if c.Rank() == 0 {
				c0 = clk.CommSeconds()
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		comm[p] = c0
	}
	if comm[8] <= comm[2] {
		t.Fatalf("communication time should grow with P: %v", comm)
	}
}

func TestWtsOnlySlowerThanFullUnderModel(t *testing.T) {
	// The paper's §5 claim: parallelizing update_parameters too gives "a
	// further improvement of performance" over the wts-only prototype.
	ds := paperDS(t, 10000)
	cfg := quickSearchConfig()
	cfg.StartJList = []int{8}
	cfg.EM.MaxCycles = 8
	machine := simnet.MeikoCS2()
	times := map[Strategy]float64{}
	for _, strat := range []Strategy{Full, WtsOnly} {
		var t0 float64
		err := mpi.Run(6, func(c *mpi.Comm) error {
			clk := simnet.MustNewClock(machine)
			opts := Options{EM: cfg.EM, Strategy: strat, Clock: clk}
			if _, err := Search(c, ds, model.DefaultSpec(ds), cfg, opts); err != nil {
				return err
			}
			if c.Rank() == 0 {
				t0 = clk.Elapsed()
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		times[strat] = t0
	}
	if times[Full] >= times[WtsOnly] {
		t.Fatalf("Full (%.3fs) should beat WtsOnly (%.3fs) at P=6", times[Full], times[WtsOnly])
	}
}

func TestRunTrialValidation(t *testing.T) {
	ds := paperDS(t, 100)
	err := mpi.Run(2, func(c *mpi.Comm) error {
		view, err := PartitionView(c, ds)
		if err != nil {
			return err
		}
		pr, err := ParallelPriors(c, view, nil)
		if err != nil {
			return err
		}
		if _, _, err := RunTrial(nil, view, pr, model.DefaultSpec(ds), 2, 1, DefaultOptions()); err == nil {
			return fmt.Errorf("nil comm accepted")
		}
		bad := DefaultOptions()
		bad.Strategy = Strategy(9)
		if _, _, err := RunTrial(c, view, pr, model.DefaultSpec(ds), 2, 1, bad); err == nil {
			return fmt.Errorf("bad strategy accepted")
		}
		// Ranks must stay in sync: run one good trial to drain.
		_, _, err = RunTrial(c, view, pr, model.DefaultSpec(ds), 2, 1, DefaultOptions())
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSearchEmptyDataset(t *testing.T) {
	empty, err := datagen.Paper(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	err = mpi.Run(2, func(c *mpi.Comm) error {
		if _, err := Search(c, empty, model.DefaultSpec(empty), quickSearchConfig(), DefaultOptions()); err == nil {
			return fmt.Errorf("empty dataset accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMixedTypesParallel(t *testing.T) {
	spec := datagen.ProteinMixture()
	ds, _, err := spec.Generate(1200, 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickSearchConfig()
	cfg.StartJList = []int{4}
	seq, err := autoclass.Search(ds, model.DefaultSpec(ds), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	par := runParallelSearch(t, ds, 4, cfg, DefaultOptions())
	if !stats.AlmostEqual(par.Best.LogPost, seq.Best.LogPost, 1e-5) {
		t.Fatalf("mixed-type parallel %v vs sequential %v", par.Best.LogPost, seq.Best.LogPost)
	}
}

func TestStrategyString(t *testing.T) {
	if Full.String() != "p-autoclass" || WtsOnly.String() != "wts-only" {
		t.Fatal("strategy names wrong")
	}
}

func TestParallelLogNormalSpecEqualsSequential(t *testing.T) {
	// Exercises the log-domain statistics of ParallelPriors end to end.
	ds, _, err := datagen.LogNormalMixture(900, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickSearchConfig()
	cfg.StartJList = []int{3}
	seq, err := autoclass.Search(ds, model.LogNormalSpec(ds), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var par *autoclass.SearchResult
	err = mpi.Run(4, func(c *mpi.Comm) error {
		view, err := PartitionView(c, ds)
		if err != nil {
			return err
		}
		pr, err := ParallelPriors(c, view, nil)
		if err != nil {
			return err
		}
		runner := func(startJ int, seed uint64) (*autoclass.Classification, autoclass.EMResult, error) {
			return RunTrial(c, view, pr, model.LogNormalSpec(ds), startJ, seed, DefaultOptions())
		}
		res, err := autoclass.SearchWith(runner, cfg)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			par = res
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.AlmostEqual(par.Best.LogPost, seq.Best.LogPost, 1e-6) {
		t.Fatalf("log-normal parallel %v vs sequential %v", par.Best.LogPost, seq.Best.LogPost)
	}
}

func TestSearchSurvivesCommFailureWithoutHanging(t *testing.T) {
	// A rank whose transport dies mid-search must surface an error on the
	// victim and release every other rank — the failure-injection analogue
	// of a node crash during a long classification.
	ds := paperDS(t, 300)
	cfg := quickSearchConfig()
	cfg.StartJList = []int{4}
	errs, err := mpi.RunFlaky(4, 2, 25, func(c *mpi.Comm) error {
		_, err := Search(c, ds, model.DefaultSpec(ds), cfg, DefaultOptions())
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if errs[2] == nil {
		t.Fatal("victim rank completed despite injected failure")
	}
	failed := 0
	for _, e := range errs {
		if e != nil {
			failed++
		}
	}
	if failed == 0 {
		t.Fatal("no rank observed the failure")
	}
}
