package pautoclass

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/autoclass"
	"repro/internal/model"
	"repro/internal/mpi"
)

// clsBytes serializes a classification; bitwise-equal outputs mean
// bitwise-equal classifications (JSON float64 encoding round-trips
// exactly).
func clsBytes(t *testing.T, cls *autoclass.Classification) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := autoclass.SaveCheckpoint(&buf, cls); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCheckpointingDoesNotPerturbSearch: the checkpoint hook communicates
// (the agreement collective) and writes files, but must not change the
// search trajectory at all.
func TestCheckpointingDoesNotPerturbSearch(t *testing.T) {
	ds := paperDS(t, 240)
	cfg := quickSearchConfig()
	plain := runParallelSearch(t, ds, 3, cfg, DefaultOptions())

	path := filepath.Join(t.TempDir(), "search.ckpt")
	var ckRes *autoclass.SearchResult
	err := mpi.Run(3, func(c *mpi.Comm) error {
		res, err := SearchCheckpointed(c, ds, model.DefaultSpec(ds), cfg, DefaultOptions(),
			Checkpoint{Path: path, Every: 2})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			ckRes = res
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(clsBytes(t, plain.Best), clsBytes(t, ckRes.Best)) {
		t.Error("checkpointed search found a different best classification")
	}
	if !reflect.DeepEqual(plain.Tries, ckRes.Tries) {
		t.Errorf("checkpointed search tries diverged:\nplain: %+v\nckpt:  %+v", plain.Tries, ckRes.Tries)
	}
	// A finished search re-launched against its own state file returns
	// immediately with the identical result.
	err = mpi.Run(3, func(c *mpi.Comm) error {
		res, err := SearchCheckpointed(c, ds, model.DefaultSpec(ds), cfg, DefaultOptions(),
			Checkpoint{Path: path, Every: 2})
		if err != nil {
			return err
		}
		if !bytes.Equal(clsBytes(t, res.Best), clsBytes(t, ckRes.Best)) {
			t.Error("re-launched finished search returned a different best")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestKillAndResumeBitwiseIdentical is the acceptance test for distributed
// checkpoint/restart: a parallel run killed mid-search (a victim rank's
// transport fails persistently, crashing the group) and resumed from its
// last checkpoint must produce the bitwise-identical final classification
// to an uninterrupted run — over both the in-process and the TCP
// transport.
func TestKillAndResumeBitwiseIdentical(t *testing.T) {
	const (
		p      = 4
		victim = 1
	)
	ds := paperDS(t, 240)
	cfg := quickSearchConfig()

	// The uninterrupted reference trajectory.
	ref := runParallelSearch(t, ds, p, cfg, DefaultOptions())
	refBest := clsBytes(t, ref.Best)

	runners := []struct {
		name    string
		kill    func(p int, rcfg mpi.RunConfig, plans map[int]mpi.FaultPlan, fn func(c *mpi.Comm) error) ([]error, error)
		healthy func(p int, rcfg mpi.RunConfig, fn func(c *mpi.Comm) error) error
	}{
		{"mem", mpi.RunFaultyMem, mpi.RunWith},
		{"tcp", mpi.RunFaultyTCP, mpi.RunTCPWith},
	}
	for _, rn := range runners {
		rn := rn
		t.Run(rn.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "search.ckpt")
			ck := Checkpoint{Path: path, Every: 2}
			rcfg := mpi.RunConfig{OpDeadline: 10 * time.Second}

			// Kill: the victim's transport fails persistently after a send
			// budget, several cycles into the first try — a crashed node.
			plans := map[int]mpi.FaultPlan{
				victim: {Faults: []mpi.Fault{{Op: "send", Peer: -1, After: 150}}},
			}
			errs, err := rn.kill(p, rcfg, plans, func(c *mpi.Comm) error {
				_, err := SearchCheckpointed(c, ds, model.DefaultSpec(ds), cfg, DefaultOptions(), ck)
				return err
			})
			if err != nil {
				t.Fatal(err)
			}
			if errs[victim] == nil {
				t.Fatal("victim completed the search; fault budget too large to interrupt it")
			}
			if _, err := os.Stat(path); err != nil {
				t.Fatalf("no checkpoint was written before the crash: %v", err)
			}

			// Resume on healthy transports; must complete and match the
			// uninterrupted run bit for bit.
			err = rn.healthy(p, rcfg, func(c *mpi.Comm) error {
				res, err := SearchCheckpointed(c, ds, model.DefaultSpec(ds), cfg, DefaultOptions(), ck)
				if err != nil {
					return err
				}
				if got := clsBytes(t, res.Best); !bytes.Equal(got, refBest) {
					t.Errorf("rank %d: resumed best classification differs from uninterrupted run", c.Rank())
				}
				if !reflect.DeepEqual(res.Tries, ref.Tries) {
					t.Errorf("rank %d: resumed tries diverged:\nref:    %+v\nresume: %+v", c.Rank(), ref.Tries, res.Tries)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestInterruptAndResumeBitwiseIdentical covers the cooperative stop path
// the serving daemon uses: an in-flight search whose Checkpoint.Interrupt
// flips mid-run must return ErrInterrupted on every rank after persisting a
// resumable snapshot, and the resumed search must reproduce the
// uninterrupted trajectory bit for bit. The interrupt is raised on a
// non-zero rank only, so the test also proves the Allreduce(Max) agreement
// propagates a stop seen by a single rank to the whole group.
func TestInterruptAndResumeBitwiseIdentical(t *testing.T) {
	const p = 3
	ds := paperDS(t, 240)
	cfg := quickSearchConfig()

	ref := runParallelSearch(t, ds, p, cfg, DefaultOptions())
	refBest := clsBytes(t, ref.Best)

	path := filepath.Join(t.TempDir(), "search.ckpt")
	var stopped atomic.Bool
	err := mpi.Run(p, func(c *mpi.Comm) error {
		cycles := 0
		ck := Checkpoint{
			Path: path,
			Interrupt: func() bool {
				// Only rank 1 ever requests the stop, a few cycles in.
				if c.Rank() != 1 {
					return false
				}
				cycles++
				return cycles > 3
			},
		}
		_, err := SearchCheckpointed(c, ds, model.DefaultSpec(ds), cfg, DefaultOptions(), ck)
		if errors.Is(err, ErrInterrupted) {
			stopped.Store(true)
			return nil
		}
		if err != nil {
			return err
		}
		return errors.New("search completed; interrupt was ignored")
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stopped.Load() {
		t.Fatal("no rank reported ErrInterrupted")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no snapshot was written at the interrupt: %v", err)
	}

	// Resume without an interrupt; the result must match the uninterrupted
	// reference bitwise.
	err = mpi.Run(p, func(c *mpi.Comm) error {
		res, err := SearchCheckpointed(c, ds, model.DefaultSpec(ds), cfg, DefaultOptions(),
			Checkpoint{Path: path})
		if err != nil {
			return err
		}
		if got := clsBytes(t, res.Best); !bytes.Equal(got, refBest) {
			t.Errorf("rank %d: resumed best classification differs from uninterrupted run", c.Rank())
		}
		if !reflect.DeepEqual(res.Tries, ref.Tries) {
			t.Errorf("rank %d: resumed tries diverged:\nref:    %+v\nresume: %+v", c.Rank(), ref.Tries, res.Tries)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestInterruptBetweenTries: a stop requested while a try is completing is
// honored at the try boundary — the state file holds the finished try and
// resume continues with the next one, never re-running a completed try.
func TestInterruptBetweenTries(t *testing.T) {
	const p = 2
	ds := paperDS(t, 240)
	cfg := quickSearchConfig()

	ref := runParallelSearch(t, ds, p, cfg, DefaultOptions())

	path := filepath.Join(t.TempDir(), "search.ckpt")
	err := mpi.Run(p, func(c *mpi.Comm) error {
		// The interrupt is permanently on: the search must stop at the very
		// first poll (the first try's first cycle boundary) having run at
		// most one cycle — and with Every unset, the boundary poll is the
		// only snapshot writer exercised.
		ck := Checkpoint{Path: path, Interrupt: func() bool { return true }}
		_, err := SearchCheckpointed(c, ds, model.DefaultSpec(ds), cfg, DefaultOptions(), ck)
		if !errors.Is(err, ErrInterrupted) {
			return fmt.Errorf("want ErrInterrupted, got %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Repeatedly resuming with a flaky interrupt that allows a bounded
	// number of cycles per attempt must still converge to the reference
	// result — the daemon's restart-until-done loop.
	var final *autoclass.SearchResult
	for attempt := 0; attempt < 100 && final == nil; attempt++ {
		err := mpi.Run(p, func(c *mpi.Comm) error {
			cycles := 0
			ck := Checkpoint{Path: path, Interrupt: func() bool {
				cycles++
				return cycles > 5
			}}
			res, err := SearchCheckpointed(c, ds, model.DefaultSpec(ds), cfg, DefaultOptions(), ck)
			if errors.Is(err, ErrInterrupted) {
				return nil
			}
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				final = res
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if final == nil {
		t.Fatal("search never completed across 100 interrupted attempts")
	}
	if !bytes.Equal(clsBytes(t, final.Best), clsBytes(t, ref.Best)) {
		t.Error("interrupt-riddled search found a different best classification")
	}
	if !reflect.DeepEqual(final.Tries, ref.Tries) {
		t.Errorf("interrupt-riddled search tries diverged:\nref:   %+v\ngot:   %+v", ref.Tries, final.Tries)
	}
}
