package pautoclass

import (
	"fmt"
	"testing"

	"repro/internal/autoclass"
	"repro/internal/stats"
)

// TestKernelModesAgreeAcrossGranularities is the parallel leg of the
// kernel trajectory guarantee: on a 2-rank run, under both statistics
// granularities, a search with Blocked kernels and one with Reference
// kernels must discover the same class count and assign every case to the
// same class. It closes the ISSUE-4 matrix (kernel mode × granularity ×
// Parallelism) together with the sequential trajectory test in
// internal/autoclass.
func TestKernelModesAgreeAcrossGranularities(t *testing.T) {
	ds := paperDS(t, 800)
	for _, gran := range []autoclass.Granularity{autoclass.PerTerm, autoclass.Packed} {
		t.Run(fmt.Sprint(gran), func(t *testing.T) {
			run := func(mode autoclass.KernelMode) *autoclass.SearchResult {
				cfg := quickSearchConfig()
				cfg.EM.Granularity = gran
				cfg.EM.Kernels = mode
				opts := DefaultOptions()
				opts.EM = cfg.EM
				return runParallelSearch(t, ds, 2, cfg, opts)
			}
			blocked := run(autoclass.Blocked)
			reference := run(autoclass.Reference)
			if blocked.Best.J() != reference.Best.J() {
				t.Fatalf("class counts diverged: blocked J=%d, reference J=%d",
					blocked.Best.J(), reference.Best.J())
			}
			if !stats.AlmostEqual(blocked.Best.LogPost, reference.Best.LogPost, 1e-6) {
				t.Fatalf("posteriors diverged: blocked %v, reference %v",
					blocked.Best.LogPost, reference.Best.LogPost)
			}
			for i := 0; i < ds.N(); i++ {
				row := ds.Row(i)
				if b, r := blocked.Best.HardAssign(row), reference.Best.HardAssign(row); b != r {
					t.Fatalf("case %d assigned to class %d under blocked, %d under reference", i, b, r)
				}
			}
		})
	}
}
