package mpi

import (
	"fmt"
	"sync/atomic"
)

// FlakyTransport wraps a Transport and fails operations on command — the
// fault-injection hook used to verify that every layer above the transport
// (collectives, reducers, the parallel engine, the BIG_LOOP drivers)
// propagates communication failures instead of hanging or corrupting
// state. A rank whose transport starts failing behaves like a crashed node
// from its own perspective; peers blocked on it observe closed channels or
// reset connections from theirs.
type FlakyTransport struct {
	inner Transport
	// sendBudget and recvBudget count down; when a budget reaches zero the
	// corresponding operation starts failing. Negative budgets never fail.
	sendBudget atomic.Int64
	recvBudget atomic.Int64
}

// NewFlakyTransport wraps inner so that sends fail after sendBudget
// successful sends and receives fail after recvBudget successful receives.
// A negative budget disables failure for that direction.
func NewFlakyTransport(inner Transport, sendBudget, recvBudget int64) *FlakyTransport {
	f := &FlakyTransport{inner: inner}
	f.sendBudget.Store(sendBudget)
	f.recvBudget.Store(recvBudget)
	return f
}

// ErrInjected marks injected failures so tests can distinguish them.
type ErrInjected struct {
	Op   string
	Rank int
}

// Error implements error.
func (e *ErrInjected) Error() string {
	return fmt.Sprintf("mpi: injected %s failure on rank %d", e.Op, e.Rank)
}

func (f *FlakyTransport) Rank() int { return f.inner.Rank() }
func (f *FlakyTransport) Size() int { return f.inner.Size() }

// Send implements Transport, failing once the send budget is exhausted.
func (f *FlakyTransport) Send(dst, tag int, data []float64) error {
	if f.sendBudget.Load() >= 0 && f.sendBudget.Add(-1) < 0 {
		return &ErrInjected{Op: "send", Rank: f.inner.Rank()}
	}
	return f.inner.Send(dst, tag, data)
}

// Recv implements Transport, failing once the recv budget is exhausted.
func (f *FlakyTransport) Recv(src, tag int) ([]float64, error) {
	if f.recvBudget.Load() >= 0 && f.recvBudget.Add(-1) < 0 {
		return nil, &ErrInjected{Op: "recv", Rank: f.inner.Rank()}
	}
	return f.inner.Recv(src, tag)
}

// Close implements Transport.
func (f *FlakyTransport) Close() error { return f.inner.Close() }

// RunFlaky is Run with rank `victim`'s transport failing after the given
// send budget. Other ranks run on healthy transports; the function returns
// the per-rank errors (index = rank) after every goroutine finishes, so
// tests can assert both that the victim failed with an injected error and
// that no healthy rank hung. Peers of a failed rank may block waiting for
// messages that will never arrive — exactly as on a real multicomputer —
// so RunFlaky closes the victim's channels (via Close) once it exits,
// unblocking any peer stuck in Recv.
func RunFlaky(p int, victim int, sendBudget int64, fn func(c *Comm) error) ([]error, error) {
	g, err := NewMemGroup(p)
	if err != nil {
		return nil, err
	}
	errs := make([]error, p)
	done := make(chan int, p)
	for r := 0; r < p; r++ {
		ep, err := g.Endpoint(r)
		if err != nil {
			return nil, err
		}
		var tr Transport = ep
		if r == victim {
			tr = NewFlakyTransport(ep, sendBudget, -1)
		}
		go func(rank int, c *Comm) {
			defer func() {
				if rec := recover(); rec != nil {
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, rec)
				}
				done <- rank
			}()
			errs[rank] = fn(c)
		}(r, NewComm(tr))
	}
	// As each rank exits — crashed or finished — close its outgoing
	// channels. Messages already buffered stay readable, but a peer blocked
	// waiting for a message that will never come observes the closure
	// instead of deadlocking, exactly as a reset connection would surface
	// on a real machine. Failures therefore cascade: a crash can strand a
	// healthy rank mid-collective, which then errors and releases its own
	// dependents in turn.
	for finished := 0; finished < p; finished++ {
		rank := <-done
		for d := 0; d < p; d++ {
			if d != rank {
				close(g.chans[rank][d])
			}
		}
	}
	return errs, nil
}
