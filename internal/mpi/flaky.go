package mpi

import (
	"fmt"
	"sync"
	"time"
)

// FaultMode selects what an injected fault does when it fires.
type FaultMode int

const (
	// FaultFail makes the matched operation return *ErrInjected without
	// touching the inner transport.
	FaultFail FaultMode = iota
	// FaultDrop makes a matched Send report success without delivering the
	// message — a silent network loss. On Recv it discards one incoming
	// message before receiving for real; use with care, the discarded slot
	// usually strands the collective until the deadline fires.
	FaultDrop
	// FaultDelay sleeps for Delay before performing the operation normally —
	// a slow link or a GC-paused peer.
	FaultDelay
)

// Fault is one injection rule. Zero value fails every matched operation
// forever starting with the first one.
type Fault struct {
	// Op restricts the rule to "send" or "recv"; "" matches both.
	Op string
	// Peer restricts the rule to operations with one peer rank; -1 (or any
	// negative) matches every peer.
	Peer int
	// After lets that many matching operations through before the rule
	// starts firing.
	After int64
	// Count bounds how many times the rule fires; <= 0 means forever.
	// Count == 1 with Transient set is the explicit one-shot mode: exactly
	// one failure, marked retryable.
	Count int64
	// Mode selects the effect; Delay is the sleep for FaultDelay.
	Mode  FaultMode
	Delay time.Duration
	// Transient marks injected failures as retryable (ErrInjected reports
	// Transient() == true, so a RetryTransport will retry them).
	Transient bool
}

// FailOnce is the one-shot fault: the (after+1)-th matching operation fails
// with a retryable error, everything else succeeds.
func FailOnce(op string, peer int, after int64) Fault {
	return Fault{Op: op, Peer: peer, After: after, Count: 1, Transient: true}
}

// FaultPlan is the full injection schedule for one rank's transport. Rules
// are evaluated in order; the first Fail/Drop rule that fires wins, while
// Delay rules accumulate.
type FaultPlan struct {
	Faults []Fault
}

// ErrInjected marks injected failures so tests can distinguish them from
// real transport errors.
type ErrInjected struct {
	Op   string
	Rank int
	Peer int
	// Retryable mirrors the firing rule's Transient flag.
	Retryable bool
}

// Error implements error.
func (e *ErrInjected) Error() string {
	return fmt.Sprintf("mpi: injected %s failure on rank %d", e.Op, e.Rank)
}

// Transient implements TransientError: one-shot injected failures are safe
// to retry.
func (e *ErrInjected) Transient() bool { return e.Retryable }

// faultState tracks how often one rule has matched and fired.
type faultState struct {
	Fault
	seen, fired int64
}

// FaultyTransport wraps a Transport and executes a FaultPlan against it —
// the fault-injection hook used to verify that every layer above the
// transport (collectives, reducers, the parallel engine, the BIG_LOOP
// drivers) propagates communication failures instead of hanging or
// corrupting state. A rank whose transport fails persistently behaves like
// a crashed node from its own perspective; peers blocked on it observe
// closed channels or reset connections from theirs.
type FaultyTransport struct {
	inner  Transport
	mu     sync.Mutex
	faults []faultState
}

// FlakyTransport is the historical name for the budget-based fault
// injector; it is now a FaultyTransport built by NewFlakyTransport.
type FlakyTransport = FaultyTransport

// NewFaultyTransport wraps inner with the given fault plan.
func NewFaultyTransport(inner Transport, plan FaultPlan) *FaultyTransport {
	t := &FaultyTransport{inner: inner, faults: make([]faultState, len(plan.Faults))}
	for i, f := range plan.Faults {
		t.faults[i] = faultState{Fault: f}
	}
	return t
}

// NewFlakyTransport wraps inner so that sends fail persistently after
// sendBudget successful sends and receives fail persistently after
// recvBudget successful receives. A negative budget disables failure for
// that direction. (An exhausted budget used to recover after one error —
// the counter decremented past the sign guard — which made "crashed" ranks
// silently resurrect mid-collective.)
func NewFlakyTransport(inner Transport, sendBudget, recvBudget int64) *FlakyTransport {
	var plan FaultPlan
	if sendBudget >= 0 {
		plan.Faults = append(plan.Faults, Fault{Op: "send", Peer: -1, After: sendBudget})
	}
	if recvBudget >= 0 {
		plan.Faults = append(plan.Faults, Fault{Op: "recv", Peer: -1, After: recvBudget})
	}
	return NewFaultyTransport(inner, plan)
}

func (t *FaultyTransport) Rank() int { return t.inner.Rank() }
func (t *FaultyTransport) Size() int { return t.inner.Size() }

// SetOpDeadline forwards to the inner transport when it supports deadlines,
// so a deadline configured on the chain still bounds the real operations.
func (t *FaultyTransport) SetOpDeadline(d time.Duration) { SetOpDeadline(t.inner, d) }

// apply runs the plan for one operation and returns the accumulated delay,
// whether to drop, and the injected error (nil if the op should proceed).
func (t *FaultyTransport) apply(op string, peer int) (time.Duration, bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var delay time.Duration
	for i := range t.faults {
		f := &t.faults[i]
		if f.Op != "" && f.Op != op {
			continue
		}
		if f.Peer >= 0 && f.Peer != peer {
			continue
		}
		f.seen++
		if f.seen <= f.After {
			continue
		}
		if f.Count > 0 && f.fired >= f.Count {
			continue
		}
		f.fired++
		switch f.Mode {
		case FaultDelay:
			delay += f.Delay
		case FaultDrop:
			return delay, true, nil
		default: // FaultFail
			return delay, false, &ErrInjected{Op: op, Rank: t.inner.Rank(), Peer: peer, Retryable: f.Transient}
		}
	}
	return delay, false, nil
}

// Send implements Transport, consulting the fault plan first.
func (t *FaultyTransport) Send(dst, tag int, data []float64) error {
	delay, drop, err := t.apply("send", dst)
	if delay > 0 {
		time.Sleep(delay)
	}
	if err != nil {
		return err
	}
	if drop {
		return nil
	}
	return t.inner.Send(dst, tag, data)
}

// Recv implements Transport, consulting the fault plan first.
func (t *FaultyTransport) Recv(src, tag int) ([]float64, error) {
	delay, drop, err := t.apply("recv", src)
	if delay > 0 {
		time.Sleep(delay)
	}
	if err != nil {
		return nil, err
	}
	if drop {
		if _, err := t.inner.Recv(src, tag); err != nil {
			return nil, err
		}
	}
	return t.inner.Recv(src, tag)
}

// Close implements Transport.
func (t *FaultyTransport) Close() error { return t.inner.Close() }

var _ Transport = (*FaultyTransport)(nil)
var _ DeadlineTransport = (*FaultyTransport)(nil)

// RunFaultyMem runs fn on p in-process ranks with per-rank fault plans and
// returns the per-rank errors (index = rank) after every goroutine
// finishes, so tests can assert both that victims failed with injected
// errors and that no healthy rank hung. Peers of a failed rank may block
// waiting for messages that will never arrive — exactly as on a real
// multicomputer — so as each rank exits (crashed or finished) its outgoing
// channels are closed. Messages already buffered stay readable, but a peer
// blocked waiting for a message that will never come observes the closure
// instead of deadlocking, exactly as a reset connection would surface on a
// real machine. Failures therefore cascade: a crash can strand a healthy
// rank mid-collective, which then errors and releases its own dependents in
// turn.
func RunFaultyMem(p int, cfg RunConfig, plans map[int]FaultPlan, fn func(c *Comm) error) ([]error, error) {
	g, err := NewMemGroup(p)
	if err != nil {
		return nil, err
	}
	errs := make([]error, p)
	done := make(chan int, p)
	for r := 0; r < p; r++ {
		ep, err := g.Endpoint(r)
		if err != nil {
			return nil, err
		}
		var tr Transport = ep
		if plan, ok := plans[r]; ok && len(plan.Faults) > 0 {
			tr = NewFaultyTransport(ep, plan)
		}
		comm := NewComm(cfg.wrap(tr))
		comm.SetAllreduceAlgo(cfg.Algo)
		go func(rank int, c *Comm) {
			defer func() {
				if rec := recover(); rec != nil {
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, rec)
				}
				done <- rank
			}()
			errs[rank] = fn(c)
		}(r, comm)
	}
	for finished := 0; finished < p; finished++ {
		rank := <-done
		for d := 0; d < p; d++ {
			if d != rank {
				close(g.chans[rank][d])
			}
		}
	}
	return errs, nil
}

// RunFaultyTCP is RunFaultyMem over real loopback TCP sockets. The crash
// cascade works through the sockets themselves: each rank closes its
// endpoint the moment its function returns, so peers blocked on it observe
// EOF or a reset instead of hanging.
func RunFaultyTCP(p int, cfg RunConfig, plans map[int]FaultPlan, fn func(c *Comm) error) ([]error, error) {
	g, err := NewTCPGroup(p)
	if err != nil {
		return nil, err
	}
	defer g.Close()
	errs := make([]error, p)
	var wg sync.WaitGroup
	var launchErr error
	for r := 0; r < p; r++ {
		ep, err := g.Endpoint(r)
		if err != nil {
			launchErr = err
			break
		}
		var tr Transport = ep
		if plan, ok := plans[r]; ok && len(plan.Faults) > 0 {
			tr = NewFaultyTransport(ep, plan)
		}
		comm := NewComm(cfg.wrap(tr))
		comm.SetAllreduceAlgo(cfg.Algo)
		wg.Add(1)
		go func(rank int, c *Comm, raw Transport) {
			defer wg.Done()
			defer raw.Close()
			defer func() {
				if rec := recover(); rec != nil {
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, rec)
				}
			}()
			errs[rank] = fn(c)
		}(r, comm, ep)
	}
	if launchErr != nil {
		g.Close()
		wg.Wait()
		return nil, launchErr
	}
	wg.Wait()
	return errs, nil
}

// RunFlaky is RunFaultyMem with rank `victim`'s transport failing
// persistently after the given send budget (negative disables injection).
func RunFlaky(p int, victim int, sendBudget int64, fn func(c *Comm) error) ([]error, error) {
	plans := map[int]FaultPlan{}
	if sendBudget >= 0 {
		plans[victim] = FaultPlan{Faults: []Fault{{Op: "send", Peer: -1, After: sendBudget}}}
	}
	return RunFaultyMem(p, RunConfig{}, plans, fn)
}
