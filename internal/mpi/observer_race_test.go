package mpi

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestSetObserverRacesCollectives exercises the atomic observer install:
// each rank runs collectives over real TCP sockets while another goroutine
// keeps swapping the communicator's observer in and out. Run under -race
// this verifies SetObserver is safe against in-flight collectives; the
// assertion checks the swapped-in observer actually saw traffic.
func TestSetObserverRacesCollectives(t *testing.T) {
	const p = 4
	const rounds = 20
	var observed atomic.Int64
	err := RunTCP(p, func(c *Comm) error {
		obs := observerFunc(func(name string, steps, sent int) {
			observed.Add(1)
		})
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if i%2 == 0 {
					c.SetObserver(obs)
				} else {
					c.SetObserver(nil)
				}
				runtime.Gosched()
			}
		}()
		buf := make([]float64, 8)
		for i := 0; i < rounds; i++ {
			buf[0] = float64(c.Rank() + i)
			if err := c.Allreduce(Sum, buf); err != nil {
				close(stop)
				wg.Wait()
				return err
			}
			if _, err := c.AllreduceFloat64(Max, float64(i)); err != nil {
				close(stop)
				wg.Wait()
				return err
			}
		}
		close(stop)
		wg.Wait()
		// Leave a stable observer installed and run one more collective so
		// the test proves observation still works after the churn.
		c.SetObserver(obs)
		if err := c.Barrier(); err != nil {
			return err
		}
		c.SetObserver(nil)
		return nil
	})
	if err != nil {
		t.Fatalf("RunTCP: %v", err)
	}
	if observed.Load() < int64(p) {
		t.Fatalf("observer saw %d collectives, want at least %d (the post-churn barrier)", observed.Load(), p)
	}
}
