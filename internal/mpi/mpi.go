// Package mpi is a message-passing substrate modeled on the subset of MPI
// that P-AutoClass uses: point-to-point sends and receives between ranks of
// a fixed-size group, and the collective operations Barrier, Bcast, Reduce,
// Allreduce, Gather, Allgather and Scatter.
//
// The package separates *transports* (how bytes move between ranks: an
// in-process channel mesh, or TCP sockets) from the *communicator*, which
// implements every collective algorithmically on top of point-to-point
// messages — exactly as an MPI library would — so that the collective
// structure (binomial trees, recursive doubling, rings) is identical across
// transports and can be charged to the simulated machine model.
//
// Payloads are []float64 because the P-AutoClass exchange consists entirely
// of weight vectors and packed sufficient statistics; seeds and sizes
// travel as float64-encoded uint64s via the *Uint64 helpers.
package mpi

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Op identifies an elementwise reduction operator.
type Op int

const (
	// Sum adds elementwise.
	Sum Op = iota
	// Max takes the elementwise maximum.
	Max
	// Min takes the elementwise minimum.
	Min
	// Prod multiplies elementwise.
	Prod
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case Sum:
		return "sum"
	case Max:
		return "max"
	case Min:
		return "min"
	case Prod:
		return "prod"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// apply folds src into dst elementwise: dst = dst (op) src.
func (o Op) apply(dst, src []float64) error {
	if len(dst) != len(src) {
		return fmt.Errorf("mpi: reduce length mismatch: %d vs %d", len(dst), len(src))
	}
	switch o {
	case Sum:
		for i, v := range src {
			dst[i] += v
		}
	case Max:
		for i, v := range src {
			if v > dst[i] {
				dst[i] = v
			}
		}
	case Min:
		for i, v := range src {
			if v < dst[i] {
				dst[i] = v
			}
		}
	case Prod:
		for i, v := range src {
			dst[i] *= v
		}
	default:
		return fmt.Errorf("mpi: unknown op %d", int(o))
	}
	return nil
}

// Transport moves tagged float64 payloads between the ranks of a group.
// Implementations must deliver messages between each ordered pair of ranks
// in FIFO order. Send must not retain data after it returns — it copies (or
// fully serializes) the payload, so callers are free to reuse the slice
// immediately; the communicator relies on this to keep reusable scratch
// buffers across collectives. Recv returns a fresh slice owned by the
// caller.
type Transport interface {
	// Rank returns this endpoint's rank in [0, Size).
	Rank() int
	// Size returns the number of ranks in the group.
	Size() int
	// Send delivers data to rank dst with the given tag.
	Send(dst, tag int, data []float64) error
	// Recv blocks for the next message from rank src and verifies its tag.
	Recv(src, tag int) ([]float64, error)
	// Close releases the endpoint. Further operations fail.
	Close() error
}

// AllreduceAlgo selects the collective algorithm used by Allreduce.
type AllreduceAlgo int

const (
	// ReduceBcast reduces to rank 0 along a binomial tree and broadcasts
	// the result back — 2·log2(P) communication steps. This is the default
	// and matches the cost model the paper's MPI implementation exhibits.
	ReduceBcast AllreduceAlgo = iota
	// RecursiveDoubling is the classic butterfly exchange: log2(P) steps,
	// with a fold-in pre/post phase when P is not a power of two.
	RecursiveDoubling
	// Ring is a bandwidth-optimal reduce-scatter + allgather ring:
	// 2·(P−1) steps of 1/P-sized fragments.
	Ring
)

// String implements fmt.Stringer.
func (a AllreduceAlgo) String() string {
	switch a {
	case ReduceBcast:
		return "reduce-bcast"
	case RecursiveDoubling:
		return "recursive-doubling"
	case Ring:
		return "ring"
	default:
		return fmt.Sprintf("AllreduceAlgo(%d)", int(a))
	}
}

// CollectiveObserver is notified after each completed collective with the
// number of point-to-point communication steps this rank participated in
// and the total float64s this rank sent. The simulated-machine clock uses
// these to charge communication time; the observability layer uses them to
// build per-collective comm metrics. Implementations must be safe for the
// rank goroutine to call while other goroutines install or remove
// observers, and must never call back into the Comm.
type CollectiveObserver interface {
	ObserveCollective(name string, steps int, sentValues int)
}

// observerRef boxes a CollectiveObserver so the interface value can be
// swapped atomically (atomic.Pointer cannot hold an interface directly).
type observerRef struct {
	o CollectiveObserver
}

// Comm is a communicator bound to one rank of a group. It is not safe for
// concurrent use by multiple goroutines; each rank runs its own Comm. The
// one exception is the observer, which is stored atomically so that a
// different goroutine (a test harness, a metrics collector attaching to a
// live run) may install or clear it while collectives are in flight.
type Comm struct {
	t        Transport
	algo     AllreduceAlgo
	seq      int // collective sequence number, must advance identically on all ranks
	observer atomic.Pointer[observerRef]

	// Reusable scratch, safe because Comm is single-goroutine and Send
	// never retains payloads: `one` carries single-value collectives
	// without a per-call allocation, `bounds` holds the ring algorithms'
	// fragment boundaries.
	one    [1]float64
	bounds []int
}

// NewComm wraps a transport endpoint in a communicator.
func NewComm(t Transport) *Comm {
	return &Comm{t: t, algo: ReduceBcast}
}

// SetAllreduceAlgo selects the Allreduce algorithm. All ranks of a group
// must select the same algorithm.
func (c *Comm) SetAllreduceAlgo(a AllreduceAlgo) { c.algo = a }

// SetObserver installs a CollectiveObserver (nil to disable). The observer
// is stored atomically, so SetObserver is safe to call from any goroutine,
// including while the rank's goroutine is inside a collective: the racing
// collective reports to whichever observer it loads, never to a torn value.
func (c *Comm) SetObserver(o CollectiveObserver) {
	if o == nil {
		c.observer.Store(nil)
		return
	}
	c.observer.Store(&observerRef{o: o})
	// An observer that also understands fault events is forwarded to the
	// transport chain, so retry/timeout counters need no extra wiring.
	if fo, ok := o.(FaultObserver); ok {
		if ft, ok := c.t.(faultObservable); ok {
			ft.SetFaultObserver(fo)
		}
	}
}

// Observer returns the currently installed CollectiveObserver (nil if none).
func (c *Comm) Observer() CollectiveObserver {
	if r := c.observer.Load(); r != nil {
		return r.o
	}
	return nil
}

// Rank returns this communicator's rank.
func (c *Comm) Rank() int { return c.t.Rank() }

// Size returns the group size.
func (c *Comm) Size() int { return c.t.Size() }

// Close releases the underlying transport endpoint.
func (c *Comm) Close() error { return c.t.Close() }

// Send delivers data to dst with a user tag. User tags must be non-negative
// and below 1<<20; the collective machinery uses the tag space above that.
func (c *Comm) Send(dst, tag int, data []float64) error {
	if tag < 0 || tag >= 1<<20 {
		return fmt.Errorf("mpi: user tag %d out of range", tag)
	}
	return c.t.Send(dst, tag, data)
}

// Recv blocks for the next message from src with the given user tag.
func (c *Comm) Recv(src, tag int) ([]float64, error) {
	if tag < 0 || tag >= 1<<20 {
		return nil, fmt.Errorf("mpi: user tag %d out of range", tag)
	}
	return c.t.Recv(src, tag)
}

// collTag builds a collective-phase tag. All ranks call collectives in the
// same order (SPMD), so seq agrees; a mismatch surfaces as a tag error from
// the transport rather than silent corruption. Each collective invocation
// owns a stride of 4096 tags so that multi-step algorithms (rings,
// butterflies) can tag every step distinctly.
func (c *Comm) collTag(phase int) int {
	return 1<<20 + c.seq*4096 + phase
}

func (c *Comm) observe(name string, steps, sent int) {
	if r := c.observer.Load(); r != nil {
		r.o.ObserveCollective(name, steps, sent)
	}
}

// fragBounds returns the p+1 ring-fragment boundaries over n values in a
// scratch buffer reused across collectives.
func (c *Comm) fragBounds(p, n int) []int {
	if cap(c.bounds) < p+1 {
		c.bounds = make([]int, p+1)
	}
	b := c.bounds[:p+1]
	for i := 0; i <= p; i++ {
		b[i] = i * n / p
	}
	return b
}

// Barrier blocks until every rank of the group has entered it.
func (c *Comm) Barrier() error {
	c.seq++
	steps, sent, err := c.reduceTree(0, Sum, nil)
	if err != nil {
		return fmt.Errorf("mpi: barrier reduce: %w", err)
	}
	s2, n2, err := c.bcastTree(0, nil)
	if err != nil {
		return fmt.Errorf("mpi: barrier bcast: %w", err)
	}
	c.observe("barrier", steps+s2, sent+n2)
	return nil
}

// Bcast replaces data on every rank with root's data. len(data) must agree
// across ranks.
func (c *Comm) Bcast(root int, data []float64) error {
	if err := c.checkRoot(root); err != nil {
		return err
	}
	c.seq++
	steps, sent, err := c.bcastTree(root, data)
	if err != nil {
		return fmt.Errorf("mpi: bcast: %w", err)
	}
	c.observe("bcast", steps, sent)
	return nil
}

// Reduce folds every rank's data elementwise with op, leaving the result in
// root's data slice. Non-root slices are left unspecified (partially
// folded). len(data) must agree across ranks.
func (c *Comm) Reduce(root int, op Op, data []float64) error {
	if err := c.checkRoot(root); err != nil {
		return err
	}
	c.seq++
	steps, sent, err := c.reduceTree(root, op, data)
	if err != nil {
		return fmt.Errorf("mpi: reduce: %w", err)
	}
	c.observe("reduce", steps, sent)
	return nil
}

// Allreduce folds every rank's data elementwise with op and leaves the
// identical result in data on every rank. This is the operation at the
// heart of P-AutoClass: the total exchange of the per-class weights w_j and
// of the packed parameter statistics (paper Figs. 4 and 5).
func (c *Comm) Allreduce(op Op, data []float64) error {
	c.seq++
	var steps, sent int
	var err error
	switch c.algo {
	case ReduceBcast:
		steps, sent, err = c.allreduceReduceBcast(op, data)
	case RecursiveDoubling:
		steps, sent, err = c.allreduceRecursiveDoubling(op, data)
	case Ring:
		steps, sent, err = c.allreduceRing(op, data)
	default:
		return fmt.Errorf("mpi: unknown allreduce algorithm %d", int(c.algo))
	}
	if err != nil {
		return fmt.Errorf("mpi: allreduce(%v): %w", c.algo, err)
	}
	c.observe("allreduce", steps, sent)
	return nil
}

// ReduceScatter folds every rank's data elementwise with op and scatters
// the result: rank r receives the r-th of Size() nearly equal segments
// (boundaries i*len/P). len(data) must agree across ranks. Implemented as
// the reduce-scatter phase of the ring algorithm — bandwidth-optimal, the
// building block of the Ring Allreduce.
func (c *Comm) ReduceScatter(op Op, data []float64) ([]float64, error) {
	c.seq++
	p := c.Size()
	me := c.Rank()
	n := len(data)
	if p == 1 {
		return append([]float64(nil), data...), nil
	}
	bounds := c.fragBounds(p, n)
	frag := func(i int) []float64 {
		i = ((i % p) + p) % p
		return data[bounds[i]:bounds[i+1]]
	}
	next := (me + 1) % p
	prev := (me - 1 + p) % p
	steps, sent := 0, 0
	for s := 0; s < p-1; s++ {
		sendIdx := me - s
		recvIdx := me - s - 1
		tag := c.collTag(16) + s
		if err := c.t.Send(next, tag, frag(sendIdx)); err != nil {
			return nil, fmt.Errorf("mpi: reduce-scatter send: %w", err)
		}
		got, err := c.t.Recv(prev, tag)
		if err != nil {
			return nil, fmt.Errorf("mpi: reduce-scatter recv: %w", err)
		}
		if err := op.apply(frag(recvIdx), got); err != nil {
			return nil, err
		}
		steps++
		sent += len(frag(sendIdx))
	}
	// After p−1 steps the standard ring leaves rank r holding the fully
	// reduced fragment (r+1) mod p. One realignment hop gives every rank
	// its own fragment: send the completed fragment to its owner (next),
	// receive fragment `me` from the rank holding it (prev). The hop is
	// part of the collective, so it counts toward the observed totals.
	done := (me + 1) % p
	tag := c.collTag(2048)
	if err := c.t.Send(next, tag, frag(done)); err != nil {
		return nil, fmt.Errorf("mpi: reduce-scatter realign send: %w", err)
	}
	steps++
	sent += len(frag(done))
	got, err := c.t.Recv(prev, tag)
	if err != nil {
		return nil, fmt.Errorf("mpi: reduce-scatter realign recv: %w", err)
	}
	c.observe("reduce-scatter", steps, sent)
	return got, nil
}

// Gather collects every rank's send slice on root. On root the return value
// has Size() entries indexed by rank; on other ranks it is nil.
func (c *Comm) Gather(root int, send []float64) ([][]float64, error) {
	if err := c.checkRoot(root); err != nil {
		return nil, err
	}
	c.seq++
	tag := c.collTag(0)
	me, p := c.Rank(), c.Size()
	if me != root {
		if err := c.t.Send(root, tag, send); err != nil {
			return nil, fmt.Errorf("mpi: gather send: %w", err)
		}
		c.observe("gather", 1, len(send))
		return nil, nil
	}
	out := make([][]float64, p)
	out[root] = append([]float64(nil), send...)
	for r := 0; r < p; r++ {
		if r == root {
			continue
		}
		data, err := c.t.Recv(r, tag)
		if err != nil {
			return nil, fmt.Errorf("mpi: gather recv from %d: %w", r, err)
		}
		out[r] = data
	}
	c.observe("gather", p-1, 0)
	return out, nil
}

// Allgather collects every rank's send slice on every rank, indexed by
// rank. Implemented as Gather to 0 followed by a broadcast of the
// concatenation.
func (c *Comm) Allgather(send []float64) ([][]float64, error) {
	parts, err := c.Gather(0, send)
	if err != nil {
		return nil, err
	}
	p := c.Size()
	// Broadcast the per-rank lengths, then the concatenated payload.
	lengths := make([]float64, p)
	if c.Rank() == 0 {
		for r := range parts {
			lengths[r] = float64(len(parts[r]))
		}
	}
	if err := c.Bcast(0, lengths); err != nil {
		return nil, err
	}
	total := 0
	for _, l := range lengths {
		total += int(l)
	}
	flat := make([]float64, total)
	if c.Rank() == 0 {
		pos := 0
		for r := range parts {
			pos += copy(flat[pos:], parts[r])
		}
	}
	if err := c.Bcast(0, flat); err != nil {
		return nil, err
	}
	out := make([][]float64, p)
	pos := 0
	for r := 0; r < p; r++ {
		n := int(lengths[r])
		out[r] = append([]float64(nil), flat[pos:pos+n]...)
		pos += n
	}
	return out, nil
}

// Scatter distributes parts[r] from root to each rank r, returning this
// rank's slice. parts is only read on root and must have Size() entries.
func (c *Comm) Scatter(root int, parts [][]float64) ([]float64, error) {
	if err := c.checkRoot(root); err != nil {
		return nil, err
	}
	c.seq++
	tag := c.collTag(0)
	me, p := c.Rank(), c.Size()
	if me == root {
		if len(parts) != p {
			return nil, fmt.Errorf("mpi: scatter needs %d parts, got %d", p, len(parts))
		}
		sent := 0
		for r := 0; r < p; r++ {
			if r == root {
				continue
			}
			if err := c.t.Send(r, tag, parts[r]); err != nil {
				return nil, fmt.Errorf("mpi: scatter send to %d: %w", r, err)
			}
			sent += len(parts[r])
		}
		c.observe("scatter", p-1, sent)
		return append([]float64(nil), parts[root]...), nil
	}
	data, err := c.t.Recv(root, tag)
	if err != nil {
		return nil, fmt.Errorf("mpi: scatter recv: %w", err)
	}
	c.observe("scatter", 1, 0)
	return data, nil
}

// BcastUint64 broadcasts a uint64 (e.g. a PRNG seed) from root, preserving
// all 64 bits via the float64 bit pattern.
func (c *Comm) BcastUint64(root int, v uint64) (uint64, error) {
	c.one[0] = math.Float64frombits(v)
	if err := c.Bcast(root, c.one[:]); err != nil {
		return 0, err
	}
	return math.Float64bits(c.one[0]), nil
}

// AllreduceFloat64 is a convenience single-value Allreduce.
func (c *Comm) AllreduceFloat64(op Op, v float64) (float64, error) {
	c.one[0] = v
	if err := c.Allreduce(op, c.one[:]); err != nil {
		return 0, err
	}
	return c.one[0], nil
}

func (c *Comm) checkRoot(root int) error {
	if root < 0 || root >= c.Size() {
		return fmt.Errorf("mpi: root %d out of group size %d", root, c.Size())
	}
	return nil
}

// --- collective algorithms ---------------------------------------------

// vrank maps real ranks to a tree rooted at `root`.
func vrank(rank, root, p int) int { return (rank - root + p) % p }
func rrank(v, root, p int) int    { return (v + root) % p }

// bcastTree broadcasts data from root along a binomial tree. It returns
// this rank's step count and values sent.
func (c *Comm) bcastTree(root int, data []float64) (steps, sent int, err error) {
	p := c.Size()
	me := vrank(c.Rank(), root, p)
	tag := c.collTag(1)
	// Receive from parent first (non-roots).
	if me != 0 {
		// Parent is me with the lowest set bit cleared.
		parent := me & (me - 1)
		got, err := c.t.Recv(rrank(parent, root, p), tag)
		if err != nil {
			return steps, sent, err
		}
		if len(got) != len(data) {
			return steps, sent, fmt.Errorf("bcast payload length %d, expected %d", len(got), len(data))
		}
		copy(data, got)
		steps++
	}
	// Send to children: me + 2^k for each k above my lowest set bit.
	low := me & (-me)
	if me == 0 {
		low = nextPow2(p)
	}
	for mask := low >> 1; mask > 0; mask >>= 1 {
		child := me | mask
		if child != me && child < p {
			if err := c.t.Send(rrank(child, root, p), tag, data); err != nil {
				return steps, sent, err
			}
			steps++
			sent += len(data)
		}
	}
	return steps, sent, nil
}

// reduceTree folds data toward root along a binomial tree.
func (c *Comm) reduceTree(root int, op Op, data []float64) (steps, sent int, err error) {
	p := c.Size()
	me := vrank(c.Rank(), root, p)
	tag := c.collTag(2)
	// Accumulate from children in increasing mask order so the fold order
	// is deterministic for a given P.
	for mask := 1; mask < p; mask <<= 1 {
		if me&mask != 0 {
			// I send my partial to my parent and am done.
			parent := me &^ mask
			if err := c.t.Send(rrank(parent, root, p), tag, data); err != nil {
				return steps, sent, err
			}
			steps++
			sent += len(data)
			return steps, sent, nil
		}
		child := me | mask
		if child < p {
			got, err := c.t.Recv(rrank(child, root, p), tag)
			if err != nil {
				return steps, sent, err
			}
			if err := op.apply(data, got); err != nil {
				return steps, sent, err
			}
			steps++
		}
	}
	return steps, sent, nil
}

func (c *Comm) allreduceReduceBcast(op Op, data []float64) (steps, sent int, err error) {
	s1, n1, err := c.reduceTree(0, op, data)
	if err != nil {
		return s1, n1, err
	}
	s2, n2, err := c.bcastTree(0, data)
	return s1 + s2, n1 + n2, err
}

func (c *Comm) allreduceRecursiveDoubling(op Op, data []float64) (steps, sent int, err error) {
	p := c.Size()
	me := c.Rank()
	tag := c.collTag(3)
	p2 := 1
	for p2*2 <= p {
		p2 *= 2
	}
	extra := p - p2
	// Phase 1: ranks >= p2 fold into their partner below.
	if me >= p2 {
		if err := c.t.Send(me-p2, tag, data); err != nil {
			return steps, sent, err
		}
		steps++
		sent += len(data)
	} else if me < extra {
		got, err := c.t.Recv(me+p2, tag)
		if err != nil {
			return steps, sent, err
		}
		if err := op.apply(data, got); err != nil {
			return steps, sent, err
		}
		steps++
	}
	// Phase 2: butterfly among the first p2 ranks.
	if me < p2 {
		for mask := 1; mask < p2; mask <<= 1 {
			partner := me ^ mask
			ptag := c.collTag(16) + mask // distinct per stage
			if err := c.t.Send(partner, ptag, data); err != nil {
				return steps, sent, err
			}
			got, err := c.t.Recv(partner, ptag)
			if err != nil {
				return steps, sent, err
			}
			if err := op.apply(data, got); err != nil {
				return steps, sent, err
			}
			steps++
			sent += len(data)
		}
	}
	// Phase 3: results back to the extras.
	if me < extra {
		if err := c.t.Send(me+p2, tag+1, data); err != nil {
			return steps, sent, err
		}
		steps++
		sent += len(data)
	} else if me >= p2 {
		got, err := c.t.Recv(me-p2, tag+1)
		if err != nil {
			return steps, sent, err
		}
		copy(data, got)
		steps++
	}
	return steps, sent, nil
}

// allreduceRing implements reduce-scatter + allgather over a ring with P
// nearly equal fragments.
func (c *Comm) allreduceRing(op Op, data []float64) (steps, sent int, err error) {
	p := c.Size()
	me := c.Rank()
	if p == 1 {
		return 0, 0, nil
	}
	n := len(data)
	bounds := c.fragBounds(p, n)
	frag := func(i int) []float64 {
		i = ((i % p) + p) % p
		return data[bounds[i]:bounds[i+1]]
	}
	next := (me + 1) % p
	prev := (me - 1 + p) % p
	// Reduce-scatter: after step s, rank r holds the partial for fragment
	// r-s-1 folded over s+1 contributions.
	for s := 0; s < p-1; s++ {
		sendIdx := me - s
		recvIdx := me - s - 1
		tag := c.collTag(16) + s
		if err := c.t.Send(next, tag, frag(sendIdx)); err != nil {
			return steps, sent, err
		}
		got, err := c.t.Recv(prev, tag)
		if err != nil {
			return steps, sent, err
		}
		if err := op.apply(frag(recvIdx), got); err != nil {
			return steps, sent, err
		}
		steps++
		sent += len(frag(sendIdx))
	}
	// Allgather: circulate the completed fragments.
	for s := 0; s < p-1; s++ {
		sendIdx := me + 1 - s
		recvIdx := me - s
		tag := c.collTag(2048) + s
		if err := c.t.Send(next, tag, frag(sendIdx)); err != nil {
			return steps, sent, err
		}
		got, err := c.t.Recv(prev, tag)
		if err != nil {
			return steps, sent, err
		}
		copy(frag(recvIdx), got)
		steps++
		sent += len(frag(sendIdx))
	}
	return steps, sent, nil
}

func nextPow2(p int) int {
	v := 1
	for v < p {
		v <<= 1
	}
	return v
}

// ErrClosed is returned by transport operations after Close.
var ErrClosed = errors.New("mpi: transport closed")

// ErrTimeout is the sentinel that every per-operation deadline expiry
// matches: errors.Is(err, ErrTimeout) is true for any *TimeoutError, however
// deeply wrapped by the collective machinery. A timeout is fail-stop — the
// transport stream may be desynchronized afterwards (a TCP frame can be
// abandoned mid-read), so callers must treat the endpoint as dead, exactly
// like a crashed peer.
var ErrTimeout = errors.New("mpi: operation deadline exceeded")

// TimeoutError reports which operation on which edge exceeded its deadline.
type TimeoutError struct {
	// Op is "send" or "recv".
	Op string
	// Rank is the local rank; Peer the remote rank of the stalled edge.
	Rank, Peer int
	// After is the configured per-operation deadline.
	After time.Duration
}

// Error implements error.
func (e *TimeoutError) Error() string {
	return fmt.Sprintf("mpi: rank %d %s to/from rank %d exceeded %v deadline", e.Rank, e.Op, e.Peer, e.After)
}

// Is makes errors.Is(err, ErrTimeout) match.
func (e *TimeoutError) Is(target error) bool { return target == ErrTimeout }

// Timeout implements the net.Error-style timeout predicate.
func (e *TimeoutError) Timeout() bool { return true }

// DeadlineTransport is the optional interface of transports that support a
// per-operation deadline: once set, a Send or Recv that cannot complete
// within d fails with a *TimeoutError instead of blocking. d <= 0 disables
// the deadline (operations block indefinitely, the zero-value behaviour).
type DeadlineTransport interface {
	SetOpDeadline(d time.Duration)
}

// SetOpDeadline configures a per-operation deadline on t if its transport
// chain supports one, reporting whether it did. Wrapper transports
// (FlakyTransport, RetryTransport) forward to their inner transport.
func SetOpDeadline(t Transport, d time.Duration) bool {
	if dt, ok := t.(DeadlineTransport); ok {
		dt.SetOpDeadline(d)
		return true
	}
	return false
}

// FaultObserver is notified of fault-handling events on a transport chain:
// send retries and operation timeouts. obs.Rank implements it, so installing
// a rank recorder as the Comm's CollectiveObserver also wires these counters
// when the transport chain supports fault observation (see RetryTransport).
// Implementations must be safe for concurrent use.
type FaultObserver interface {
	// ObserveRetry reports one retried send (attempt counts from 1).
	ObserveRetry(op string, attempt int)
	// ObserveTimeout reports one operation that failed with ErrTimeout.
	ObserveTimeout(op string)
}

// faultObservable is implemented by transport wrappers that accept a
// FaultObserver (RetryTransport). Comm.SetObserver forwards automatically.
type faultObservable interface {
	SetFaultObserver(o FaultObserver)
}
