package mpi

import (
	"errors"
	"sync/atomic"
	"time"
)

// TransientError marks failures that are safe to retry: the operation had no
// effect (or a repeat is idempotent at the transport layer). Injected faults
// in FailOnce mode report Transient() == true; real transport breakage
// (closed endpoints, reset connections, deadline expiry) does not, because a
// TCP stream is not recoverable mid-frame and a timeout means the deadline
// contract has already been broken.
type TransientError interface {
	error
	Transient() bool
}

// IsTransient reports whether err (or anything it wraps) is a retryable
// transient failure.
func IsTransient(err error) bool {
	var te TransientError
	return errors.As(err, &te) && te.Transient()
}

// RetryPolicy bounds the retry loop for transient send failures.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per send (first attempt
	// included). <= 1 disables retrying.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each subsequent
	// retry doubles it, capped at MaxDelay. Zero values default to
	// 1ms / 100ms.
	BaseDelay, MaxDelay time.Duration
}

func (p RetryPolicy) enabled() bool { return p.MaxAttempts > 1 }

// backoff returns the sleep before retry number `retry` (counting from 1).
func (p RetryPolicy) backoff(retry int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = time.Millisecond
	}
	maxD := p.MaxDelay
	if maxD <= 0 {
		maxD = 100 * time.Millisecond
	}
	d := base
	for i := 1; i < retry; i++ {
		d *= 2
		if d >= maxD {
			return maxD
		}
	}
	if d > maxD {
		return maxD
	}
	return d
}

// RetryTransport wraps a Transport and retries transient send failures with
// bounded exponential backoff. Receives are never retried — a failed Recv
// may have consumed part of a message, so repeating it cannot be made safe
// at this layer. The wrapper is also the transport chain's fault-observation
// point: it reports retries and ErrTimeout expiries (from either direction)
// to the installed FaultObserver.
type RetryTransport struct {
	inner  Transport
	policy RetryPolicy
	obs    atomic.Pointer[faultObserverRef]
}

// faultObserverRef boxes a FaultObserver for atomic swapping.
type faultObserverRef struct {
	o FaultObserver
}

// NewRetryTransport wraps inner with the given retry policy. A zero policy
// still observes timeouts but never retries.
func NewRetryTransport(inner Transport, policy RetryPolicy) *RetryTransport {
	return &RetryTransport{inner: inner, policy: policy}
}

// SetFaultObserver installs the observer notified of retries and timeouts
// (nil to disable). Safe to call from any goroutine, including while
// operations are in flight.
func (r *RetryTransport) SetFaultObserver(o FaultObserver) {
	if o == nil {
		r.obs.Store(nil)
		return
	}
	r.obs.Store(&faultObserverRef{o: o})
}

// SetOpDeadline forwards to the inner transport when it supports deadlines.
func (r *RetryTransport) SetOpDeadline(d time.Duration) { SetOpDeadline(r.inner, d) }

func (r *RetryTransport) observeRetry(op string, attempt int) {
	if ref := r.obs.Load(); ref != nil {
		ref.o.ObserveRetry(op, attempt)
	}
}

func (r *RetryTransport) observeTimeout(op string, err error) {
	if err == nil || !errors.Is(err, ErrTimeout) {
		return
	}
	if ref := r.obs.Load(); ref != nil {
		ref.o.ObserveTimeout(op)
	}
}

func (r *RetryTransport) Rank() int { return r.inner.Rank() }
func (r *RetryTransport) Size() int { return r.inner.Size() }

// Send implements Transport, retrying transient failures up to the policy's
// attempt budget with exponential backoff.
func (r *RetryTransport) Send(dst, tag int, data []float64) error {
	attempts := r.policy.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for attempt := 1; attempt <= attempts; attempt++ {
		err = r.inner.Send(dst, tag, data)
		if err == nil {
			return nil
		}
		if !IsTransient(err) || attempt == attempts {
			break
		}
		r.observeRetry("send", attempt)
		time.Sleep(r.policy.backoff(attempt))
	}
	r.observeTimeout("send", err)
	return err
}

// Recv implements Transport. No retry (see type comment); timeouts are
// counted on their way through.
func (r *RetryTransport) Recv(src, tag int) ([]float64, error) {
	data, err := r.inner.Recv(src, tag)
	r.observeTimeout("recv", err)
	return data, err
}

// Close implements Transport.
func (r *RetryTransport) Close() error { return r.inner.Close() }

var _ Transport = (*RetryTransport)(nil)
var _ DeadlineTransport = (*RetryTransport)(nil)
var _ faultObservable = (*RetryTransport)(nil)
