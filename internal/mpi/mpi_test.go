package mpi

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/stats"
)

var groupSizes = []int{1, 2, 3, 4, 5, 7, 8, 10, 16}

func TestSendRecvPair(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 5, []float64{1, 2, 3}); err != nil {
				return err
			}
			got, err := c.Recv(1, 6)
			if err != nil {
				return err
			}
			if len(got) != 1 || got[0] != 42 {
				return fmt.Errorf("got %v", got)
			}
			return nil
		}
		got, err := c.Recv(0, 5)
		if err != nil {
			return err
		}
		if len(got) != 3 || got[2] != 3 {
			return fmt.Errorf("got %v", got)
		}
		return c.Send(0, 6, []float64{42})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendBufferReuse(t *testing.T) {
	// A sender may overwrite its buffer immediately after Send returns.
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []float64{1}
			if err := c.Send(1, 1, buf); err != nil {
				return err
			}
			buf[0] = 999 // must not affect the delivered message
			return nil
		}
		got, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if got[0] != 1 {
			return fmt.Errorf("message mutated after send: %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMismatchDetected(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 1, []float64{1})
		}
		_, err := c.Recv(0, 2)
		if err == nil {
			return fmt.Errorf("tag mismatch not detected")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelfSendRejected(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if err := c.Send(c.Rank(), 1, nil); err == nil {
			return fmt.Errorf("self send accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUserTagRange(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if err := c.Send((c.Rank()+1)%2, 1<<20, nil); err == nil {
			return fmt.Errorf("reserved tag accepted")
		}
		if err := c.Send((c.Rank()+1)%2, -1, nil); err == nil {
			return fmt.Errorf("negative tag accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierAllSizes(t *testing.T) {
	for _, p := range groupSizes {
		var mu sync.Mutex
		entered := 0
		err := Run(p, func(c *Comm) error {
			mu.Lock()
			entered++
			mu.Unlock()
			if err := c.Barrier(); err != nil {
				return err
			}
			mu.Lock()
			defer mu.Unlock()
			if entered != p {
				return fmt.Errorf("barrier released with %d of %d ranks entered", entered, p)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestBcastAllSizesAllRoots(t *testing.T) {
	for _, p := range groupSizes {
		for root := 0; root < p; root++ {
			err := Run(p, func(c *Comm) error {
				data := make([]float64, 5)
				if c.Rank() == root {
					for i := range data {
						data[i] = float64(root*100 + i)
					}
				}
				if err := c.Bcast(root, data); err != nil {
					return err
				}
				for i := range data {
					if data[i] != float64(root*100+i) {
						return fmt.Errorf("rank %d got %v", c.Rank(), data)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("p=%d root=%d: %v", p, root, err)
			}
		}
	}
}

func TestReduceSumAllRoots(t *testing.T) {
	for _, p := range groupSizes {
		for root := 0; root < p; root += 2 {
			err := Run(p, func(c *Comm) error {
				data := []float64{float64(c.Rank()), 1}
				if err := c.Reduce(root, Sum, data); err != nil {
					return err
				}
				if c.Rank() == root {
					wantSum := float64(p*(p-1)) / 2
					if data[0] != wantSum || data[1] != float64(p) {
						return fmt.Errorf("root got %v, want [%v %v]", data, wantSum, p)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("p=%d root=%d: %v", p, root, err)
			}
		}
	}
}

func TestAllreduceAllAlgosAllSizes(t *testing.T) {
	for _, algo := range []AllreduceAlgo{ReduceBcast, RecursiveDoubling, Ring} {
		for _, p := range groupSizes {
			err := RunAlgo(p, algo, func(c *Comm) error {
				n := 17 // awkward size to stress ring fragmentation
				data := make([]float64, n)
				for i := range data {
					data[i] = float64(c.Rank()+1) * float64(i+1)
				}
				if err := c.Allreduce(Sum, data); err != nil {
					return err
				}
				sumRanks := float64(p*(p+1)) / 2
				for i := range data {
					want := sumRanks * float64(i+1)
					if !stats.AlmostEqual(data[i], want, 1e-9) {
						return fmt.Errorf("algo %v elem %d: got %v want %v", algo, i, data[i], want)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("algo=%v p=%d: %v", algo, p, err)
			}
		}
	}
}

func TestAllreduceOps(t *testing.T) {
	for _, tc := range []struct {
		op   Op
		want func(p int) float64
	}{
		{Max, func(p int) float64 { return float64(p - 1) }},
		{Min, func(p int) float64 { return 0 }},
		{Prod, func(p int) float64 {
			v := 1.0
			for r := 0; r < p; r++ {
				v *= float64(r + 1)
			}
			return v
		}},
	} {
		for _, p := range []int{1, 3, 8} {
			err := Run(p, func(c *Comm) error {
				v := float64(c.Rank())
				if tc.op == Prod {
					v = float64(c.Rank() + 1)
				}
				got, err := c.AllreduceFloat64(tc.op, v)
				if err != nil {
					return err
				}
				if got != tc.want(p) {
					return fmt.Errorf("op %v: got %v want %v", tc.op, got, tc.want(p))
				}
				return nil
			})
			if err != nil {
				t.Fatalf("op=%v p=%d: %v", tc.op, p, err)
			}
		}
	}
}

func TestAllreduceEmptyAndSingle(t *testing.T) {
	for _, p := range []int{1, 4, 5} {
		err := Run(p, func(c *Comm) error {
			if err := c.Allreduce(Sum, nil); err != nil {
				return err
			}
			one := []float64{1}
			if err := c.Allreduce(Sum, one); err != nil {
				return err
			}
			if one[0] != float64(p) {
				return fmt.Errorf("got %v", one[0])
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestGatherScatter(t *testing.T) {
	for _, p := range groupSizes {
		err := Run(p, func(c *Comm) error {
			send := []float64{float64(c.Rank()), float64(c.Rank() * 2)}
			parts, err := c.Gather(0, send)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				if len(parts) != p {
					return fmt.Errorf("gathered %d parts", len(parts))
				}
				for r := 0; r < p; r++ {
					if parts[r][0] != float64(r) || parts[r][1] != float64(2*r) {
						return fmt.Errorf("part %d = %v", r, parts[r])
					}
				}
			} else if parts != nil {
				return fmt.Errorf("non-root got parts")
			}
			// Scatter back doubled values.
			var out [][]float64
			if c.Rank() == 0 {
				out = make([][]float64, p)
				for r := 0; r < p; r++ {
					out[r] = []float64{float64(r * 10)}
				}
			}
			mine, err := c.Scatter(0, out)
			if err != nil {
				return err
			}
			if len(mine) != 1 || mine[0] != float64(c.Rank()*10) {
				return fmt.Errorf("rank %d scattered %v", c.Rank(), mine)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestAllgather(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8} {
		err := Run(p, func(c *Comm) error {
			// Variable-length contributions.
			send := make([]float64, c.Rank()+1)
			for i := range send {
				send[i] = float64(c.Rank()*100 + i)
			}
			parts, err := c.Allgather(send)
			if err != nil {
				return err
			}
			if len(parts) != p {
				return fmt.Errorf("got %d parts", len(parts))
			}
			for r := 0; r < p; r++ {
				if len(parts[r]) != r+1 {
					return fmt.Errorf("part %d has %d values", r, len(parts[r]))
				}
				for i, v := range parts[r] {
					if v != float64(r*100+i) {
						return fmt.Errorf("part %d = %v", r, parts[r])
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestBcastUint64(t *testing.T) {
	const seed = uint64(0xdeadbeefcafebabe)
	err := Run(5, func(c *Comm) error {
		v := uint64(0)
		if c.Rank() == 0 {
			v = seed
		}
		got, err := c.BcastUint64(0, v)
		if err != nil {
			return err
		}
		if got != seed {
			return fmt.Errorf("rank %d got %x", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRootValidation(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if err := c.Bcast(5, nil); err == nil {
			return fmt.Errorf("bad bcast root accepted")
		}
		if err := c.Reduce(-1, Sum, nil); err == nil {
			return fmt.Errorf("bad reduce root accepted")
		}
		if _, err := c.Gather(9, nil); err == nil {
			return fmt.Errorf("bad gather root accepted")
		}
		if _, err := c.Scatter(2, nil); err == nil {
			return fmt.Errorf("bad scatter root accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	wantErr := fmt.Errorf("rank failure")
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 1 {
			return wantErr
		}
		return nil
	})
	if err == nil {
		t.Fatal("Run swallowed a rank error")
	}
}

func TestRunRecoversPanics(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			panic("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("Run swallowed a rank panic")
	}
}

func TestRunRejectsBadGroupSize(t *testing.T) {
	if err := Run(0, func(c *Comm) error { return nil }); err == nil {
		t.Fatal("p=0 accepted")
	}
}

func TestObserverCounts(t *testing.T) {
	type rec struct {
		name  string
		steps int
		sent  int
	}
	err := Run(4, func(c *Comm) error {
		var recs []rec
		c.SetObserver(observerFunc(func(name string, steps, sent int) {
			recs = append(recs, rec{name, steps, sent})
		}))
		data := []float64{1, 2, 3}
		if err := c.Allreduce(Sum, data); err != nil {
			return err
		}
		if len(recs) != 1 || recs[0].name != "allreduce" {
			return fmt.Errorf("observed %v", recs)
		}
		if recs[0].steps <= 0 {
			return fmt.Errorf("no steps observed")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

type observerFunc func(name string, steps, sent int)

func (f observerFunc) ObserveCollective(name string, steps, sent int) { f(name, steps, sent) }

// Property: Allreduce(sum) over random vectors equals the serial sum, for
// every algorithm, to reduction-order tolerance.
func TestQuickAllreduceMatchesSerial(t *testing.T) {
	f := func(seed uint64, pRaw, nRaw uint8) bool {
		p := int(pRaw%10) + 1
		n := int(nRaw%50) + 1
		r := rng.New(seed)
		inputs := make([][]float64, p)
		want := make([]float64, n)
		for rk := 0; rk < p; rk++ {
			inputs[rk] = make([]float64, n)
			for i := range inputs[rk] {
				v := r.NormMS(0, 100)
				inputs[rk][i] = v
				want[i] += v
			}
		}
		for _, algo := range []AllreduceAlgo{ReduceBcast, RecursiveDoubling, Ring} {
			results := make([][]float64, p)
			err := RunAlgo(p, algo, func(c *Comm) error {
				buf := append([]float64(nil), inputs[c.Rank()]...)
				if err := c.Allreduce(Sum, buf); err != nil {
					return err
				}
				results[c.Rank()] = buf
				return nil
			})
			if err != nil {
				return false
			}
			for rk := 0; rk < p; rk++ {
				for i := range want {
					if !stats.AlmostEqual(results[rk][i], want[i], 1e-9) {
						return false
					}
				}
			}
			// All ranks must hold the identical result bit-for-bit.
			for rk := 1; rk < p; rk++ {
				for i := range want {
					if results[rk][i] != results[0][i] && !(math.IsNaN(results[rk][i]) && math.IsNaN(results[0][i])) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestManyCollectivesInSequence(t *testing.T) {
	// Exercise tag sequencing across many back-to-back collectives.
	err := Run(6, func(c *Comm) error {
		for i := 0; i < 200; i++ {
			v := []float64{float64(c.Rank() + i)}
			if err := c.Allreduce(Sum, v); err != nil {
				return err
			}
			want := float64(6*i) + 15
			if v[0] != want {
				return fmt.Errorf("iter %d: got %v want %v", i, v[0], want)
			}
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAllreduceMem(b *testing.B) {
	for _, p := range []int{2, 4, 8} {
		for _, n := range []int{8, 1024} {
			b.Run(fmt.Sprintf("p=%d/n=%d", p, n), func(b *testing.B) {
				g, err := NewMemGroup(p)
				if err != nil {
					b.Fatal(err)
				}
				comms := make([]*Comm, p)
				for r := 0; r < p; r++ {
					ep, _ := g.Endpoint(r)
					comms[r] = NewComm(ep)
				}
				bufs := make([][]float64, p)
				for r := range bufs {
					bufs[r] = make([]float64, n)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var wg sync.WaitGroup
					for r := 0; r < p; r++ {
						wg.Add(1)
						go func(r int) {
							defer wg.Done()
							if err := comms[r].Allreduce(Sum, bufs[r]); err != nil {
								b.Error(err)
							}
						}(r)
					}
					wg.Wait()
				}
			})
		}
	}
}

func TestReduceScatter(t *testing.T) {
	for _, p := range groupSizes {
		for _, n := range []int{p, 17, 64} {
			err := Run(p, func(c *Comm) error {
				data := make([]float64, n)
				for i := range data {
					data[i] = float64(c.Rank()+1) * float64(i+1)
				}
				seg, err := c.ReduceScatter(Sum, data)
				if err != nil {
					return err
				}
				// Expected: my segment of the elementwise sum.
				lo, hi := c.Rank()*n/p, (c.Rank()+1)*n/p
				if len(seg) != hi-lo {
					return fmt.Errorf("segment length %d, want %d", len(seg), hi-lo)
				}
				sumRanks := float64(p*(p+1)) / 2
				for i := range seg {
					want := sumRanks * float64(lo+i+1)
					if !stats.AlmostEqual(seg[i], want, 1e-9) {
						return fmt.Errorf("p=%d n=%d rank %d elem %d: got %v want %v", p, n, c.Rank(), i, seg[i], want)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("p=%d n=%d: %v", p, n, err)
			}
		}
	}
}

func TestReduceScatterThenAllgatherEqualsAllreduce(t *testing.T) {
	// The classic identity: reduce-scatter + allgather == allreduce.
	const p, n = 5, 20
	want := make([]float64, n)
	for r := 1; r <= p; r++ {
		for i := range want {
			want[i] += float64(r) * float64(i)
		}
	}
	err := Run(p, func(c *Comm) error {
		data := make([]float64, n)
		for i := range data {
			data[i] = float64(c.Rank()+1) * float64(i)
		}
		seg, err := c.ReduceScatter(Sum, data)
		if err != nil {
			return err
		}
		parts, err := c.Allgather(seg)
		if err != nil {
			return err
		}
		var full []float64
		for _, part := range parts {
			full = append(full, part...)
		}
		if len(full) != n {
			return fmt.Errorf("reassembled %d of %d", len(full), n)
		}
		for i := range full {
			if !stats.AlmostEqual(full[i], want[i], 1e-9) {
				return fmt.Errorf("elem %d: %v want %v", i, full[i], want[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// The realignment hop is part of the reduce-scatter collective, so the
// observed totals must include it: p-1 ring steps plus one realign step,
// each moving one n/p fragment.
func TestReduceScatterObserverIncludesRealign(t *testing.T) {
	const p, n = 4, 8
	err := Run(p, func(c *Comm) error {
		var gotSteps, gotSent int
		c.SetObserver(observerFunc(func(name string, steps, sent int) {
			if name == "reduce-scatter" {
				gotSteps, gotSent = steps, sent
			}
		}))
		data := make([]float64, n)
		for i := range data {
			data[i] = float64(i)
		}
		if _, err := c.ReduceScatter(Sum, data); err != nil {
			return err
		}
		if wantSteps := p; gotSteps != wantSteps {
			return fmt.Errorf("rank %d observed %d steps, want %d", c.Rank(), gotSteps, wantSteps)
		}
		if wantSent := n; gotSent != wantSent {
			return fmt.Errorf("rank %d observed %d sent values, want %d", c.Rank(), gotSent, wantSent)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
