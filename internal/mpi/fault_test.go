package mpi

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFlakyBudgetExhaustionPersistent is the regression test for the budget
// underflow: the counter used to decrement past the sign guard, so after
// exactly one injected failure the transport silently recovered. An
// exhausted budget must fail every subsequent operation.
func TestFlakyBudgetExhaustionPersistent(t *testing.T) {
	g, err := NewMemGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	ep0, _ := g.Endpoint(0)
	f := NewFlakyTransport(ep0, 0, -1)
	for i := 0; i < 5; i++ {
		err := f.Send(1, i, []float64{1})
		var inj *ErrInjected
		if !errors.As(err, &inj) {
			t.Fatalf("send %d after budget exhaustion: got %v, want injected failure", i, err)
		}
		if inj.Transient() {
			t.Fatalf("send %d: persistent budget failure reported transient", i)
		}
	}
}

// TestFailOnceTransient checks the explicit one-shot mode: exactly one
// retryable failure, then normal operation.
func TestFailOnceTransient(t *testing.T) {
	g, _ := NewMemGroup(2)
	ep0, _ := g.Endpoint(0)
	f := NewFaultyTransport(ep0, FaultPlan{Faults: []Fault{FailOnce("send", -1, 1)}})
	if err := f.Send(1, 0, []float64{1}); err != nil {
		t.Fatalf("first send: %v", err)
	}
	err := f.Send(1, 1, []float64{2})
	var inj *ErrInjected
	if !errors.As(err, &inj) || !inj.Transient() {
		t.Fatalf("second send: got %v, want transient injected failure", err)
	}
	if err := f.Send(1, 2, []float64{3}); err != nil {
		t.Fatalf("third send after one-shot fault: %v", err)
	}
}

type countingFaultObserver struct {
	retries, timeouts atomic.Int64
}

func (o *countingFaultObserver) ObserveRetry(op string, attempt int) { o.retries.Add(1) }
func (o *countingFaultObserver) ObserveTimeout(op string)            { o.timeouts.Add(1) }

// TestRetryRecoversOneShotFault wires the full chain: a one-shot transient
// fault under a RetryTransport must be absorbed by the retry loop and
// counted by the fault observer.
func TestRetryRecoversOneShotFault(t *testing.T) {
	g, _ := NewMemGroup(2)
	ep0, _ := g.Endpoint(0)
	faulty := NewFaultyTransport(ep0, FaultPlan{Faults: []Fault{FailOnce("send", -1, 0)}})
	rt := NewRetryTransport(faulty, RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond})
	var obs countingFaultObserver
	rt.SetFaultObserver(&obs)
	if err := rt.Send(1, 7, []float64{42}); err != nil {
		t.Fatalf("send with retry: %v", err)
	}
	if got := obs.retries.Load(); got != 1 {
		t.Fatalf("observed %d retries, want 1", got)
	}
	ep1, _ := g.Endpoint(1)
	data, err := ep1.Recv(0, 7)
	if err != nil || len(data) != 1 || data[0] != 42 {
		t.Fatalf("recv after retried send: %v %v", data, err)
	}
}

// TestRetryDoesNotRetryPersistentFault: persistent injected failures are not
// transient, so the retry loop must give up immediately.
func TestRetryDoesNotRetryPersistentFault(t *testing.T) {
	g, _ := NewMemGroup(2)
	ep0, _ := g.Endpoint(0)
	faulty := NewFaultyTransport(ep0, FaultPlan{Faults: []Fault{{Op: "send", Peer: -1}}})
	rt := NewRetryTransport(faulty, RetryPolicy{MaxAttempts: 5, BaseDelay: time.Microsecond})
	var obs countingFaultObserver
	rt.SetFaultObserver(&obs)
	var inj *ErrInjected
	if err := rt.Send(1, 0, []float64{1}); !errors.As(err, &inj) {
		t.Fatalf("send: got %v, want injected failure", err)
	}
	if got := obs.retries.Load(); got != 0 {
		t.Fatalf("observed %d retries on a persistent fault, want 0", got)
	}
}

// TestFaultPerPeerTargeting: a fault aimed at one peer leaves traffic to
// other peers untouched.
func TestFaultPerPeerTargeting(t *testing.T) {
	g, _ := NewMemGroup(3)
	ep0, _ := g.Endpoint(0)
	f := NewFaultyTransport(ep0, FaultPlan{Faults: []Fault{{Op: "send", Peer: 2}}})
	if err := f.Send(1, 0, []float64{1}); err != nil {
		t.Fatalf("send to healthy peer: %v", err)
	}
	var inj *ErrInjected
	if err := f.Send(2, 0, []float64{1}); !errors.As(err, &inj) || inj.Peer != 2 {
		t.Fatalf("send to targeted peer: got %v, want injected failure with Peer=2", err)
	}
}

// TestFaultDropAndDelay: drops report success without delivering; delays
// stall the op but let it through.
func TestFaultDropAndDelay(t *testing.T) {
	g, _ := NewMemGroup(2)
	ep0, _ := g.Endpoint(0)
	f := NewFaultyTransport(ep0, FaultPlan{Faults: []Fault{
		{Op: "send", Peer: -1, Count: 1, Mode: FaultDrop},
		// A firing Drop stops plan evaluation, so this rule first sees (and
		// delays) the second send.
		{Op: "send", Peer: -1, Count: 1, Mode: FaultDelay, Delay: 20 * time.Millisecond},
	}})
	if err := f.Send(1, 0, []float64{1}); err != nil {
		t.Fatalf("dropped send reported %v, want success", err)
	}
	start := time.Now()
	if err := f.Send(1, 1, []float64{2}); err != nil {
		t.Fatalf("delayed send: %v", err)
	}
	if el := time.Since(start); el < 20*time.Millisecond {
		t.Fatalf("delayed send returned after %v, want >= 20ms", el)
	}
	// Only the delayed message must arrive; the dropped one vanished.
	ep1, _ := g.Endpoint(1)
	if _, err := ep1.Recv(0, 1); err != nil {
		t.Fatalf("recv of delayed message: %v", err)
	}
	select {
	case msg := <-g.chans[0][1]:
		t.Fatalf("dropped message was delivered: %+v", msg)
	default:
	}
}

// TestMemRecvDeadline: with a deadline armed, a Recv with no sender fails
// with ErrTimeout in bounded time instead of hanging.
func TestMemRecvDeadline(t *testing.T) {
	g, _ := NewMemGroup(2)
	ep0, _ := g.Endpoint(0)
	SetOpDeadline(ep0, 50*time.Millisecond)
	start := time.Now()
	_, err := ep0.Recv(1, 0)
	el := time.Since(start)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("recv: got %v, want ErrTimeout", err)
	}
	var te *TimeoutError
	if !errors.As(err, &te) || te.Op != "recv" || te.Peer != 1 {
		t.Fatalf("recv: got %v, want *TimeoutError{Op: recv, Peer: 1}", err)
	}
	if el < 50*time.Millisecond || el > 5*time.Second {
		t.Fatalf("recv timed out after %v, want ~50ms", el)
	}
}

// TestTCPRecvDeadline is TestMemRecvDeadline over real sockets.
func TestTCPRecvDeadline(t *testing.T) {
	g, err := NewTCPGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	ep0, err := g.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	ep1, err := g.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	defer ep0.Close()
	defer ep1.Close()
	SetOpDeadline(ep0, 50*time.Millisecond)
	start := time.Now()
	_, err = ep0.Recv(1, 0)
	el := time.Since(start)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("recv: got %v, want ErrTimeout", err)
	}
	if el < 50*time.Millisecond || el > 5*time.Second {
		t.Fatalf("recv timed out after %v, want ~50ms", el)
	}
}

// TestTCPSendCloseRace: concurrent Sends racing the endpoint Close must not
// panic on a closed queue channel (run under -race).
func TestTCPSendCloseRace(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		g, err := NewTCPGroup(2)
		if err != nil {
			t.Fatal(err)
		}
		ep0, err := g.Endpoint(0)
		if err != nil {
			g.Close()
			t.Fatal(err)
		}
		ep1, err := g.Endpoint(1)
		if err != nil {
			g.Close()
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; ; i++ {
					if err := ep0.Send(1, 0, []float64{float64(i)}); err != nil {
						return
					}
				}
			}()
		}
		time.Sleep(time.Millisecond)
		ep0.Close()
		wg.Wait()
		ep1.Close()
		g.Close()
	}
}

// TestFaultMatrix kills one rank on its very first transport operation and
// drives every collective, every Allreduce algorithm, over both transports.
// Every healthy rank must return an error (no hangs, bounded by the
// deadline), and the victim must report the injected error. The workload
// alternates the collective under test with a Barrier so that single-shot
// collectives whose tree never touches the victim still observe the crash
// through the Barrier's cascade.
func TestFaultMatrix(t *testing.T) {
	const (
		p      = 4
		victim = 2
		iters  = 50
	)
	allreduce := func(algo AllreduceAlgo) func(c *Comm) error {
		return func(c *Comm) error {
			buf := []float64{float64(c.Rank()), 1, 2}
			return c.Allreduce(Sum, buf)
		}
	}
	ops := []struct {
		name string
		algo AllreduceAlgo
		call func(c *Comm) error
	}{
		{"barrier", ReduceBcast, func(c *Comm) error { return c.Barrier() }},
		{"bcast", ReduceBcast, func(c *Comm) error { return c.Bcast(0, []float64{1, 2}) }},
		{"reduce", ReduceBcast, func(c *Comm) error { return c.Reduce(0, Sum, []float64{1, 2}) }},
		{"allreduce-reducebcast", ReduceBcast, allreduce(ReduceBcast)},
		{"allreduce-recursivedoubling", RecursiveDoubling, allreduce(RecursiveDoubling)},
		{"allreduce-ring", Ring, allreduce(Ring)},
		{"reducescatter", ReduceBcast, func(c *Comm) error {
			_, err := c.ReduceScatter(Sum, []float64{1, 2, 3, 4, 5})
			return err
		}},
		{"gather", ReduceBcast, func(c *Comm) error {
			_, err := c.Gather(0, []float64{float64(c.Rank())})
			return err
		}},
		{"allgather", ReduceBcast, func(c *Comm) error {
			_, err := c.Allgather([]float64{float64(c.Rank())})
			return err
		}},
		{"scatter", ReduceBcast, func(c *Comm) error {
			var parts [][]float64
			if c.Rank() == 0 {
				parts = [][]float64{{0}, {1}, {2}, {3}}
			}
			_, err := c.Scatter(0, parts)
			return err
		}},
	}
	runners := []struct {
		name string
		run  func(p int, cfg RunConfig, plans map[int]FaultPlan, fn func(c *Comm) error) ([]error, error)
	}{
		{"mem", RunFaultyMem},
		{"tcp", RunFaultyTCP},
	}
	for _, rn := range runners {
		rn := rn
		for _, op := range ops {
			op := op
			t.Run(rn.name+"/"+op.name, func(t *testing.T) {
				t.Parallel()
				cfg := RunConfig{Algo: op.algo, OpDeadline: 2 * time.Second}
				// Both directions fail from the very first op, so the victim
				// crashes no matter whether the collective starts with a send
				// or a receive.
				plans := map[int]FaultPlan{victim: {Faults: []Fault{{Op: "", Peer: -1}}}}
				start := time.Now()
				errs, err := rn.run(p, cfg, plans, func(c *Comm) error {
					for i := 0; i < iters; i++ {
						if err := op.call(c); err != nil {
							return err
						}
						if err := c.Barrier(); err != nil {
							return err
						}
					}
					return nil
				})
				elapsed := time.Since(start)
				if err != nil {
					t.Fatal(err)
				}
				var inj *ErrInjected
				if !errors.As(errs[victim], &inj) {
					t.Errorf("victim: got %v, want injected failure", errs[victim])
				}
				for r, e := range errs {
					if r != victim && e == nil {
						t.Errorf("healthy rank %d returned nil, want error (crash not propagated)", r)
					}
				}
				// The deadline (2s) bounds any single blocked operation; the
				// generous multiple absorbs scheduler noise on loaded CI.
				if elapsed > 15*time.Second {
					t.Errorf("matrix case took %v, deadline did not bound the hang", elapsed)
				}
			})
		}
	}
}
