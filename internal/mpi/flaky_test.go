package mpi

import (
	"errors"
	"testing"
)

func TestFlakyTransportBudgets(t *testing.T) {
	g, err := NewMemGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	ep0, _ := g.Endpoint(0)
	f := NewFlakyTransport(ep0, 2, -1)
	if err := f.Send(1, 1, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := f.Send(1, 2, []float64{2}); err != nil {
		t.Fatal(err)
	}
	err = f.Send(1, 3, []float64{3})
	var inj *ErrInjected
	if !errors.As(err, &inj) || inj.Op != "send" || inj.Rank != 0 {
		t.Fatalf("third send: %v", err)
	}
	// Recv budget separate and currently unlimited.
	ep1, _ := g.Endpoint(1)
	if _, err := ep1.Recv(0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestFlakyRecvBudget(t *testing.T) {
	g, _ := NewMemGroup(2)
	ep0, _ := g.Endpoint(0)
	ep1, _ := g.Endpoint(1)
	if err := ep1.Send(0, 7, []float64{1}); err != nil {
		t.Fatal(err)
	}
	f := NewFlakyTransport(ep0, -1, 1)
	if _, err := f.Recv(1, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Recv(1, 8); err == nil {
		t.Fatal("recv after budget succeeded")
	}
}

func TestCollectiveFailurePropagatesWithoutHanging(t *testing.T) {
	// Rank 1's transport dies after 1 send, mid-Allreduce. Every rank must
	// return (no deadlock) and at least the victim must report an error.
	const p = 4
	errs, err := RunFlaky(p, 1, 1, func(c *Comm) error {
		buf := []float64{float64(c.Rank())}
		for i := 0; i < 10; i++ {
			if err := c.Allreduce(Sum, buf); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if errs[1] == nil {
		t.Fatal("victim rank reported no error")
	}
	failed := 0
	for _, e := range errs {
		if e != nil {
			failed++
		}
	}
	if failed == 0 {
		t.Fatal("no rank observed the failure")
	}
}

func TestImmediateFailureAllRanksReturn(t *testing.T) {
	// Victim fails on its very first send: peers blocked in Recv must be
	// released by the simulated crash, not hang.
	errs, err := RunFlaky(3, 0, 0, func(c *Comm) error {
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if errs[0] == nil {
		t.Fatal("victim rank reported no error")
	}
}

func TestFlakyNegativeBudgetNeverFails(t *testing.T) {
	errs, err := RunFlaky(3, 1, -1, func(c *Comm) error {
		v := []float64{1}
		return c.Allreduce(Sum, v)
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, e := range errs {
		if e != nil {
			t.Fatalf("rank %d failed with unlimited budget: %v", r, e)
		}
	}
}
