package mpi

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// The TCP transport runs each rank over real sockets — a full mesh of
// directed connections, one per ordered rank pair, so per-pair FIFO
// ordering falls out of TCP's in-order delivery. It exists to demonstrate
// that P-AutoClass runs unchanged on a shared-nothing machine (a PC
// cluster, per the paper's portability claim) and to exercise the engine
// under a transport with real serialization and failure modes.
//
// Wire format per message, little-endian:
//
//	uint32 tag | uint32 count | count × float64
//
// Connection setup: every rank listens; rank s dials rank d for each s<d
// pair... — in fact each ordered pair (s,d) needs its own directed stream,
// so the dialer sends a 8-byte hello (uint32 src, uint32 dst) identifying
// which directed edge the connection carries, and each rank dials the edge
// (me → d) for every d ≠ me.

// tcpEdgeHello identifies a directed edge after dialing.
type tcpEdgeHello struct {
	Src, Dst uint32
}

// TCPGroup is a set of TCP endpoints for an in-process test harness. For a
// genuinely distributed deployment, use StartTCPRank on each machine with
// the full address list.
type TCPGroup struct {
	eps []*tcpEndpoint
}

// NewTCPGroup starts p ranks on loopback listeners and fully connects them.
// It is intended for tests and examples; all ranks live in this process but
// every byte crosses a real TCP socket.
func NewTCPGroup(p int) (*TCPGroup, error) {
	if p <= 0 {
		return nil, fmt.Errorf("mpi: group of %d ranks", p)
	}
	listeners := make([]net.Listener, p)
	addrs := make([]string, p)
	for r := 0; r < p; r++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, ll := range listeners[:r] {
				ll.Close()
			}
			return nil, fmt.Errorf("mpi: listen for rank %d: %w", r, err)
		}
		listeners[r] = l
		addrs[r] = l.Addr().String()
	}
	eps := make([]*tcpEndpoint, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			ep, err := connectTCPRank(rank, addrs, listeners[rank])
			eps[rank], errs[rank] = ep, err
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			for _, ep := range eps {
				if ep != nil {
					ep.Close()
				}
			}
			return nil, fmt.Errorf("mpi: connecting rank %d: %w", r, err)
		}
	}
	return &TCPGroup{eps: eps}, nil
}

// Endpoint returns the transport endpoint of one rank.
func (g *TCPGroup) Endpoint(rank int) (Transport, error) {
	if rank < 0 || rank >= len(g.eps) {
		return nil, fmt.Errorf("mpi: rank %d out of group size %d", rank, len(g.eps))
	}
	return g.eps[rank], nil
}

// Close shuts down every endpoint.
func (g *TCPGroup) Close() error {
	var first error
	for _, ep := range g.eps {
		if err := ep.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// StartTCPRank connects one rank of a distributed group. addrs lists every
// rank's listen address (index = rank); the listener must already be bound
// to addrs[rank]. It blocks until the full mesh is up. The listener is
// consumed: once the mesh is connected (or setup fails) it is closed and
// its port released — the mesh needs no further accepts.
func StartTCPRank(rank int, addrs []string, listener net.Listener) (Transport, error) {
	return connectTCPRank(rank, addrs, listener)
}

func connectTCPRank(rank int, addrs []string, listener net.Listener) (*tcpEndpoint, error) {
	p := len(addrs)
	ep := &tcpEndpoint{
		rank: rank,
		p:    p,
		out:  make([]*tcpConnOut, p),
		in:   make([]*tcpConnIn, p),
	}
	type accepted struct {
		src  int
		conn net.Conn
		err  error
	}
	need := p - 1
	acceptCh := make(chan accepted, need)
	acceptDone := make(chan struct{})
	go func() {
		defer close(acceptDone)
		for i := 0; i < need; i++ {
			conn, err := listener.Accept()
			if err != nil {
				acceptCh <- accepted{err: err}
				return
			}
			var hello tcpEdgeHello
			if err := binary.Read(conn, binary.LittleEndian, &hello); err != nil {
				conn.Close()
				acceptCh <- accepted{err: fmt.Errorf("reading hello: %w", err)}
				return
			}
			if int(hello.Dst) != rank || int(hello.Src) >= p {
				conn.Close()
				acceptCh <- accepted{err: fmt.Errorf("bad hello %+v on rank %d", hello, rank)}
				return
			}
			acceptCh <- accepted{src: int(hello.Src), conn: conn}
		}
	}()
	// cleanup releases the listener and stops the accept goroutine. It must
	// run on every exit path — success included — or the socket leaks and
	// the goroutine parks in Accept forever. Closing the listener unblocks
	// a pending Accept; any connections accepted but not yet collected are
	// drained and closed.
	cleanup := func() {
		listener.Close()
		<-acceptDone
		for {
			select {
			case a := <-acceptCh:
				if a.conn != nil {
					a.conn.Close()
				}
			default:
				return
			}
		}
	}
	// Dial my outgoing edges.
	for d := 0; d < p; d++ {
		if d == rank {
			continue
		}
		conn, err := net.Dial("tcp", addrs[d])
		if err != nil {
			cleanup()
			ep.Close()
			return nil, fmt.Errorf("dial rank %d at %s: %w", d, addrs[d], err)
		}
		hello := tcpEdgeHello{Src: uint32(rank), Dst: uint32(d)}
		if err := binary.Write(conn, binary.LittleEndian, &hello); err != nil {
			conn.Close()
			cleanup()
			ep.Close()
			return nil, fmt.Errorf("hello to rank %d: %w", d, err)
		}
		ep.out[d] = newTCPConnOut(conn, rank, d, &ep.opDeadline)
	}
	// Collect my incoming edges.
	for i := 0; i < need; i++ {
		a := <-acceptCh
		if a.err != nil {
			cleanup()
			ep.Close()
			return nil, a.err
		}
		if ep.in[a.src] != nil {
			a.conn.Close()
			cleanup()
			ep.Close()
			return nil, fmt.Errorf("duplicate incoming edge from rank %d", a.src)
		}
		ep.in[a.src] = newTCPConnIn(a.conn, rank, a.src, &ep.opDeadline)
	}
	// Mesh is up: the accept goroutine has exited (it collected exactly
	// need connections), so cleanup just releases the listen socket.
	cleanup()
	return ep, nil
}

// tcpConnOut serializes sends on one directed edge. A dedicated writer
// goroutine drains a queue so that Send never blocks on the socket — the
// butterfly exchange requires sends to complete locally before the
// matching receive is posted.
//
// The mutex makes enqueue and close mutually exclusive: without it a Send
// racing close() could write to a closed channel and panic the whole
// process, turning a clean peer shutdown into a local crash.
type tcpConnOut struct {
	conn       net.Conn
	rank, peer int
	deadline   *atomic.Int64 // shared with the owning endpoint, nanoseconds

	mu     sync.Mutex
	closed bool
	queue  chan memMessage

	done chan struct{}
	err  atomic.Value // error
}

func newTCPConnOut(conn net.Conn, rank, peer int, deadline *atomic.Int64) *tcpConnOut {
	o := &tcpConnOut{
		conn:     conn,
		rank:     rank,
		peer:     peer,
		deadline: deadline,
		queue:    make(chan memMessage, memChanCap),
		done:     make(chan struct{}),
	}
	go o.writer()
	return o
}

func (o *tcpConnOut) writer() {
	defer close(o.done)
	bw := bufio.NewWriter(o.conn)
	// Encode header and payload into one reusable frame and hand it to the
	// buffered writer in a single call: a value-at-a-time loop costs an
	// 8-byte bufio copy (and a possible flush) per float64, which dominates
	// the large statistics exchanges.
	var frame []byte
	for msg := range o.queue {
		n := 8 + 8*len(msg.data)
		if cap(frame) < n {
			frame = make([]byte, n)
		}
		f := frame[:n]
		binary.LittleEndian.PutUint32(f[0:4], uint32(msg.tag))
		binary.LittleEndian.PutUint32(f[4:8], uint32(len(msg.data)))
		for i, v := range msg.data {
			binary.LittleEndian.PutUint64(f[8+8*i:], math.Float64bits(v))
		}
		o.armWriteDeadline()
		if _, err := bw.Write(f); err != nil {
			o.err.Store(o.sendError(err))
			return
		}
		// Flush when the queue drains so batched collective steps share
		// one syscall but nothing sits unsent while peers wait.
		if len(o.queue) == 0 {
			if err := bw.Flush(); err != nil {
				o.err.Store(o.sendError(err))
				return
			}
		}
	}
	bw.Flush()
}

// armWriteDeadline applies the endpoint's per-op deadline to the socket so
// a peer that stops draining cannot park the writer goroutine forever.
func (o *tcpConnOut) armWriteDeadline() {
	if d := o.deadline.Load(); d > 0 {
		o.conn.SetWriteDeadline(time.Now().Add(time.Duration(d)))
	} else {
		o.conn.SetWriteDeadline(time.Time{})
	}
}

// sendError converts a socket write timeout into the typed *TimeoutError.
func (o *tcpConnOut) sendError(err error) error {
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		return &TimeoutError{Op: "send", Rank: o.rank, Peer: o.peer, After: time.Duration(o.deadline.Load())}
	}
	return err
}

func (o *tcpConnOut) send(tag int, data []float64) error {
	if e := o.err.Load(); e != nil {
		return e.(error)
	}
	msg := memMessage{tag: tag, data: append([]float64(nil), data...)}
	var waitUntil time.Time
	for {
		o.mu.Lock()
		if o.closed {
			o.mu.Unlock()
			return ErrClosed
		}
		select {
		case o.queue <- msg:
			o.mu.Unlock()
			return nil
		default:
		}
		o.mu.Unlock()
		// Queue full: the writer (or the peer) has stalled. With a deadline
		// configured, poll until it expires — full queues are exceptional, so
		// a short sleep loop beats dedicated signalling machinery; without
		// one, fail immediately as before.
		d := time.Duration(o.deadline.Load())
		if d <= 0 {
			return fmt.Errorf("mpi: tcp send queue %d->%d full", o.rank, o.peer)
		}
		now := time.Now()
		if waitUntil.IsZero() {
			waitUntil = now.Add(d)
		} else if now.After(waitUntil) {
			return &TimeoutError{Op: "send", Rank: o.rank, Peer: o.peer, After: d}
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func (o *tcpConnOut) close() {
	o.mu.Lock()
	already := o.closed
	o.closed = true
	if !already {
		close(o.queue)
	}
	o.mu.Unlock()
	<-o.done
	o.conn.Close()
}

// tcpConnIn reads messages from one directed edge. recv is only ever called
// by the owning rank's goroutine, so the raw byte scratch is reused across
// messages (header included — it occupies the first 8 bytes before the
// payload read reuses the buffer); the decoded []float64 is freshly
// allocated because the Recv contract hands ownership to the caller.
type tcpConnIn struct {
	conn          net.Conn
	rank, peer    int
	deadline      *atomic.Int64 // shared with the owning endpoint
	deadlineArmed bool          // a socket deadline is currently set
	br            *bufio.Reader
	raw           []byte
}

func newTCPConnIn(conn net.Conn, rank, peer int, deadline *atomic.Int64) *tcpConnIn {
	return &tcpConnIn{conn: conn, rank: rank, peer: peer, deadline: deadline, br: bufio.NewReader(conn)}
}

// armReadDeadline applies the per-op deadline (or clears a stale one) before
// the header read. One arm covers both reads of the frame: the deadline
// bounds the whole operation, not each syscall.
func (in *tcpConnIn) armReadDeadline() time.Duration {
	d := time.Duration(in.deadline.Load())
	if d > 0 {
		in.conn.SetReadDeadline(time.Now().Add(d))
		in.deadlineArmed = true
	} else if in.deadlineArmed {
		in.conn.SetReadDeadline(time.Time{})
		in.deadlineArmed = false
	}
	return d
}

// recvError converts a socket read timeout into the typed *TimeoutError. A
// timeout may abandon a partially read frame, desynchronizing the stream —
// timeouts are fail-stop, the edge must not be reused.
func (in *tcpConnIn) recvError(err error, after time.Duration) error {
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		return &TimeoutError{Op: "recv", Rank: in.rank, Peer: in.peer, After: after}
	}
	return err
}

func (in *tcpConnIn) recv() (int, []float64, error) {
	d := in.armReadDeadline()
	if cap(in.raw) < 8 {
		in.raw = make([]byte, 64)
	}
	hdr := in.raw[:8]
	if _, err := io.ReadFull(in.br, hdr); err != nil {
		return 0, nil, in.recvError(err, d)
	}
	tag := int(binary.LittleEndian.Uint32(hdr[0:4]))
	count := binary.LittleEndian.Uint32(hdr[4:8])
	if count > 1<<28 {
		return 0, nil, fmt.Errorf("mpi: unreasonable tcp payload of %d values", count)
	}
	if cap(in.raw) < int(8*count) {
		in.raw = make([]byte, 8*count)
	}
	raw := in.raw[:8*count]
	if _, err := io.ReadFull(in.br, raw); err != nil {
		return 0, nil, fmt.Errorf("mpi: truncated tcp frame: %w", in.recvError(err, d))
	}
	data := make([]float64, count)
	for i := range data {
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return tag, data, nil
}

type tcpEndpoint struct {
	rank       int
	p          int
	out        []*tcpConnOut
	in         []*tcpConnIn
	closed     atomic.Bool
	opDeadline atomic.Int64 // nanoseconds; <= 0 disables
}

func (e *tcpEndpoint) Rank() int { return e.rank }
func (e *tcpEndpoint) Size() int { return e.p }

// SetOpDeadline implements DeadlineTransport: each Send/Recv must complete
// within d or fail with *TimeoutError. The value is shared with every edge
// through a single atomic, so it may be changed at any time.
func (e *tcpEndpoint) SetOpDeadline(d time.Duration) { e.opDeadline.Store(int64(d)) }

func (e *tcpEndpoint) Send(dst, tag int, data []float64) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if dst < 0 || dst >= e.p || dst == e.rank || e.out[dst] == nil {
		return fmt.Errorf("mpi: tcp send to invalid rank %d", dst)
	}
	return e.out[dst].send(tag, data)
}

func (e *tcpEndpoint) Recv(src, tag int) ([]float64, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	if src < 0 || src >= e.p || src == e.rank || e.in[src] == nil {
		return nil, fmt.Errorf("mpi: tcp recv from invalid rank %d", src)
	}
	gotTag, data, err := e.in[src].recv()
	if err != nil {
		return nil, err
	}
	if gotTag != tag {
		return nil, fmt.Errorf("mpi: rank %d expected tag %d from %d, got %d (collective desync)", e.rank, tag, src, gotTag)
	}
	return data, nil
}

func (e *tcpEndpoint) Close() error {
	if e.closed.Swap(true) {
		return nil
	}
	for _, o := range e.out {
		if o != nil {
			o.close()
		}
	}
	for _, in := range e.in {
		if in != nil {
			in.conn.Close()
		}
	}
	return nil
}

// RunTCP is Run over real loopback TCP sockets.
func RunTCP(p int, fn func(c *Comm) error) error {
	return RunTCPWith(p, RunConfig{}, fn)
}

// RunTCPWith is RunTCP with explicit transport options: collective
// algorithm, per-operation deadline, and send retry policy.
func RunTCPWith(p int, cfg RunConfig, fn func(c *Comm) error) error {
	g, err := NewTCPGroup(p)
	if err != nil {
		return err
	}
	defer g.Close()
	errs := make([]error, p)
	var wg sync.WaitGroup
	var launchErr error
	for r := 0; r < p; r++ {
		ep, err := g.Endpoint(r)
		if err != nil {
			// Already-launched ranks would block on their dead peers; close
			// the group so they observe EOF, then join before returning.
			launchErr = err
			break
		}
		comm := NewComm(cfg.wrap(ep))
		comm.SetAllreduceAlgo(cfg.Algo)
		wg.Add(1)
		go func(rank int, c *Comm) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, rec)
				}
			}()
			errs[rank] = fn(c)
		}(r, comm)
	}
	if launchErr != nil {
		g.Close()
		wg.Wait()
		return launchErr
	}
	wg.Wait()
	for r, e := range errs {
		if e != nil {
			return fmt.Errorf("mpi: rank %d: %w", r, e)
		}
	}
	return nil
}
