package mpi

import (
	"fmt"
	"testing"

	"repro/internal/stats"
)

func TestTCPSendRecv(t *testing.T) {
	err := RunTCP(2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 9, []float64{3.5, -2}); err != nil {
				return err
			}
			got, err := c.Recv(1, 10)
			if err != nil {
				return err
			}
			if len(got) != 1 || got[0] != 7 {
				return fmt.Errorf("got %v", got)
			}
			return nil
		}
		got, err := c.Recv(0, 9)
		if err != nil {
			return err
		}
		if len(got) != 2 || got[0] != 3.5 || got[1] != -2 {
			return fmt.Errorf("got %v", got)
		}
		return c.Send(0, 10, []float64{7})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPCollectives(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8} {
		err := RunTCP(p, func(c *Comm) error {
			if err := c.Barrier(); err != nil {
				return err
			}
			data := []float64{float64(c.Rank()), 1, float64(c.Rank() * c.Rank())}
			if err := c.Allreduce(Sum, data); err != nil {
				return err
			}
			if data[1] != float64(p) {
				return fmt.Errorf("count %v != %d", data[1], p)
			}
			wantSum := float64(p*(p-1)) / 2
			if !stats.AlmostEqual(data[0], wantSum, 1e-9) {
				return fmt.Errorf("sum %v != %v", data[0], wantSum)
			}
			seed, err := c.BcastUint64(0, uint64(c.Rank())+12345)
			if err != nil {
				return err
			}
			if seed != 12345 {
				return fmt.Errorf("seed %d", seed)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestTCPLargePayload(t *testing.T) {
	const n = 100000
	err := RunTCP(3, func(c *Comm) error {
		data := make([]float64, n)
		for i := range data {
			data[i] = float64(c.Rank() + 1)
		}
		if err := c.Allreduce(Sum, data); err != nil {
			return err
		}
		for i := range data {
			if data[i] != 6 {
				return fmt.Errorf("elem %d = %v", i, data[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPCloseThenUseFails(t *testing.T) {
	g, err := NewTCPGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	ep0, _ := g.Endpoint(0)
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ep0.Send(1, 1, []float64{1}); err == nil {
		t.Fatal("send after close succeeded")
	}
	if _, err := ep0.Recv(1, 1); err == nil {
		t.Fatal("recv after close succeeded")
	}
}

func TestTCPGroupBadSize(t *testing.T) {
	if _, err := NewTCPGroup(0); err == nil {
		t.Fatal("p=0 accepted")
	}
}

func TestTCPManyCollectives(t *testing.T) {
	err := RunTCP(4, func(c *Comm) error {
		for i := 0; i < 50; i++ {
			v := []float64{1}
			if err := c.Allreduce(Sum, v); err != nil {
				return err
			}
			if v[0] != 4 {
				return fmt.Errorf("iter %d: %v", i, v[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPPeerDisconnectSurfacesError(t *testing.T) {
	g, err := NewTCPGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	ep0, _ := g.Endpoint(0)
	ep1, _ := g.Endpoint(1)
	// Close rank 1's endpoint; rank 0's pending recv must fail, not hang.
	done := make(chan error, 1)
	go func() {
		_, err := ep0.Recv(1, 1)
		done <- err
	}()
	if err := ep1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err == nil {
		t.Fatal("recv from disconnected peer succeeded")
	}
}
