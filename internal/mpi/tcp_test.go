package mpi

import (
	"fmt"
	"net"
	"sync"
	"testing"

	"repro/internal/stats"
)

func TestTCPSendRecv(t *testing.T) {
	err := RunTCP(2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 9, []float64{3.5, -2}); err != nil {
				return err
			}
			got, err := c.Recv(1, 10)
			if err != nil {
				return err
			}
			if len(got) != 1 || got[0] != 7 {
				return fmt.Errorf("got %v", got)
			}
			return nil
		}
		got, err := c.Recv(0, 9)
		if err != nil {
			return err
		}
		if len(got) != 2 || got[0] != 3.5 || got[1] != -2 {
			return fmt.Errorf("got %v", got)
		}
		return c.Send(0, 10, []float64{7})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPCollectives(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8} {
		err := RunTCP(p, func(c *Comm) error {
			if err := c.Barrier(); err != nil {
				return err
			}
			data := []float64{float64(c.Rank()), 1, float64(c.Rank() * c.Rank())}
			if err := c.Allreduce(Sum, data); err != nil {
				return err
			}
			if data[1] != float64(p) {
				return fmt.Errorf("count %v != %d", data[1], p)
			}
			wantSum := float64(p*(p-1)) / 2
			if !stats.AlmostEqual(data[0], wantSum, 1e-9) {
				return fmt.Errorf("sum %v != %v", data[0], wantSum)
			}
			seed, err := c.BcastUint64(0, uint64(c.Rank())+12345)
			if err != nil {
				return err
			}
			if seed != 12345 {
				return fmt.Errorf("seed %d", seed)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestTCPLargePayload(t *testing.T) {
	const n = 100000
	err := RunTCP(3, func(c *Comm) error {
		data := make([]float64, n)
		for i := range data {
			data[i] = float64(c.Rank() + 1)
		}
		if err := c.Allreduce(Sum, data); err != nil {
			return err
		}
		for i := range data {
			if data[i] != 6 {
				return fmt.Errorf("elem %d = %v", i, data[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPCloseThenUseFails(t *testing.T) {
	g, err := NewTCPGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	ep0, _ := g.Endpoint(0)
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ep0.Send(1, 1, []float64{1}); err == nil {
		t.Fatal("send after close succeeded")
	}
	if _, err := ep0.Recv(1, 1); err == nil {
		t.Fatal("recv after close succeeded")
	}
}

func TestTCPGroupBadSize(t *testing.T) {
	if _, err := NewTCPGroup(0); err == nil {
		t.Fatal("p=0 accepted")
	}
}

func TestTCPManyCollectives(t *testing.T) {
	err := RunTCP(4, func(c *Comm) error {
		for i := 0; i < 50; i++ {
			v := []float64{1}
			if err := c.Allreduce(Sum, v); err != nil {
				return err
			}
			if v[0] != 4 {
				return fmt.Errorf("iter %d: %v", i, v[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPPeerDisconnectSurfacesError(t *testing.T) {
	g, err := NewTCPGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	ep0, _ := g.Endpoint(0)
	ep1, _ := g.Endpoint(1)
	// Close rank 1's endpoint; rank 0's pending recv must fail, not hang.
	done := make(chan error, 1)
	go func() {
		_, err := ep0.Recv(1, 1)
		done <- err
	}()
	if err := ep1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err == nil {
		t.Fatal("recv from disconnected peer succeeded")
	}
}

// TestStartTCPRankReleasesListener asserts the setup listener is consumed:
// once the mesh is up its port must be rebindable (and the accept goroutine
// gone), while the mesh itself keeps working.
func TestStartTCPRankReleasesListener(t *testing.T) {
	const p = 3
	listeners := make([]net.Listener, p)
	addrs := make([]string, p)
	for r := 0; r < p; r++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[r] = l
		addrs[r] = l.Addr().String()
	}
	eps := make([]Transport, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			eps[rank], errs[rank] = StartTCPRank(rank, addrs, listeners[rank])
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		defer eps[r].Close()
	}
	for r, addr := range addrs {
		l, err := net.Listen("tcp", addr)
		if err != nil {
			t.Fatalf("rank %d listener port %s not released: %v", r, addr, err)
		}
		l.Close()
	}
	// The mesh must still carry traffic after its listeners are gone.
	var cwg sync.WaitGroup
	for r := 0; r < p; r++ {
		cwg.Add(1)
		go func(c *Comm) {
			defer cwg.Done()
			v := []float64{1}
			if err := c.Allreduce(Sum, v); err != nil {
				t.Errorf("allreduce: %v", err)
			} else if v[0] != p {
				t.Errorf("allreduce got %v", v[0])
			}
		}(NewComm(eps[r]))
	}
	cwg.Wait()
}

// A failed mesh setup must release the listener too.
func TestStartTCPRankReleasesListenerOnError(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Peer address nobody listens on: grab and close a port.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()
	if _, err := StartTCPRank(0, []string{l.Addr().String(), deadAddr}, l); err == nil {
		t.Fatal("mesh to dead peer succeeded")
	}
	rl, err := net.Listen("tcp", l.Addr().String())
	if err != nil {
		t.Fatalf("listener port not released after failed setup: %v", err)
	}
	rl.Close()
}
