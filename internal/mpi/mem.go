package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// memMessage is one in-flight message of the in-process transport.
type memMessage struct {
	tag  int
	data []float64
}

// MemGroup is a full mesh of buffered channels connecting p in-process
// ranks — the moral equivalent of running MPI ranks as goroutines. It is
// the default transport for tests, benchmarks and the simulated machine.
type MemGroup struct {
	p     int
	chans [][]chan memMessage // chans[src][dst]
}

// memChanCap bounds in-flight messages per ordered rank pair. The
// collectives never have more than a handful outstanding; a generous buffer
// keeps sends non-blocking, which the butterfly exchange relies on.
const memChanCap = 1024

// NewMemGroup creates the channel mesh for p ranks.
func NewMemGroup(p int) (*MemGroup, error) {
	if p <= 0 {
		return nil, fmt.Errorf("mpi: group of %d ranks", p)
	}
	g := &MemGroup{p: p, chans: make([][]chan memMessage, p)}
	for s := 0; s < p; s++ {
		g.chans[s] = make([]chan memMessage, p)
		for d := 0; d < p; d++ {
			g.chans[s][d] = make(chan memMessage, memChanCap)
		}
	}
	return g, nil
}

// Endpoint returns the transport endpoint for one rank. Each rank must be
// used by exactly one goroutine.
func (g *MemGroup) Endpoint(rank int) (Transport, error) {
	if rank < 0 || rank >= g.p {
		return nil, fmt.Errorf("mpi: rank %d out of group size %d", rank, g.p)
	}
	return &memEndpoint{g: g, rank: rank}, nil
}

type memEndpoint struct {
	g          *MemGroup
	rank       int
	closed     atomic.Bool
	opDeadline atomic.Int64 // nanoseconds; <= 0 blocks indefinitely
}

func (e *memEndpoint) Rank() int { return e.rank }
func (e *memEndpoint) Size() int { return e.g.p }

// SetOpDeadline implements DeadlineTransport: a Recv that sees no message
// within d fails with *TimeoutError. Sends are always non-blocking on the
// channel mesh (a full channel errors immediately), so the deadline only
// governs receives.
func (e *memEndpoint) SetOpDeadline(d time.Duration) { e.opDeadline.Store(int64(d)) }

func (e *memEndpoint) Send(dst, tag int, data []float64) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if dst < 0 || dst >= e.g.p {
		return fmt.Errorf("mpi: send to rank %d of group %d", dst, e.g.p)
	}
	if dst == e.rank {
		return fmt.Errorf("mpi: rank %d sending to itself", dst)
	}
	// Copy so the sender may reuse its buffer immediately, matching the
	// MPI_Send contract the collectives assume.
	msg := memMessage{tag: tag, data: append([]float64(nil), data...)}
	select {
	case e.g.chans[e.rank][dst] <- msg:
		return nil
	default:
		return fmt.Errorf("mpi: channel %d->%d full (deadlock or runaway sends)", e.rank, dst)
	}
}

func (e *memEndpoint) Recv(src, tag int) ([]float64, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	if src < 0 || src >= e.g.p {
		return nil, fmt.Errorf("mpi: recv from rank %d of group %d", src, e.g.p)
	}
	if src == e.rank {
		return nil, fmt.Errorf("mpi: rank %d receiving from itself", src)
	}
	var msg memMessage
	var ok bool
	if d := e.opDeadline.Load(); d > 0 {
		timer := time.NewTimer(time.Duration(d))
		select {
		case msg, ok = <-e.g.chans[src][e.rank]:
			timer.Stop()
		case <-timer.C:
			return nil, &TimeoutError{Op: "recv", Rank: e.rank, Peer: src, After: time.Duration(d)}
		}
	} else {
		msg, ok = <-e.g.chans[src][e.rank]
	}
	if !ok {
		return nil, ErrClosed
	}
	if msg.tag != tag {
		return nil, fmt.Errorf("mpi: rank %d expected tag %d from %d, got %d (collective desync)", e.rank, tag, src, msg.tag)
	}
	return msg.data, nil
}

func (e *memEndpoint) Close() error {
	e.closed.Store(true)
	return nil
}

// RunConfig bundles the per-rank transport/communicator options of the Run*
// helpers.
type RunConfig struct {
	// Algo selects the Allreduce algorithm (default ReduceBcast).
	Algo AllreduceAlgo
	// OpDeadline, when positive, arms a per-operation deadline on every
	// endpoint: a stalled peer surfaces as ErrTimeout instead of a hang.
	OpDeadline time.Duration
	// Retry, when enabled, wraps every endpoint in a RetryTransport that
	// retries transient send failures with exponential backoff.
	Retry RetryPolicy
}

// wrap applies the config's deadline and retry layers to a raw endpoint.
func (cfg RunConfig) wrap(t Transport) Transport {
	if cfg.OpDeadline > 0 {
		SetOpDeadline(t, cfg.OpDeadline)
	}
	if cfg.Retry.enabled() {
		t = NewRetryTransport(t, cfg.Retry)
	}
	return t
}

// Run executes fn concurrently on p in-process ranks connected by a
// MemGroup mesh and waits for all of them. Each rank receives its own Comm.
// The returned error joins the per-rank failures (nil when every rank
// succeeded). This is the local analogue of `mpirun -np p`.
func Run(p int, fn func(c *Comm) error) error {
	return RunWith(p, RunConfig{}, fn)
}

// RunAlgo is Run with an explicit Allreduce algorithm selection.
func RunAlgo(p int, algo AllreduceAlgo, fn func(c *Comm) error) error {
	return RunWith(p, RunConfig{Algo: algo}, fn)
}

// RunWith is Run with explicit transport options: collective algorithm,
// per-operation deadline, and send retry policy.
func RunWith(p int, cfg RunConfig, fn func(c *Comm) error) error {
	g, err := NewMemGroup(p)
	if err != nil {
		return err
	}
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		ep, err := g.Endpoint(r)
		if err != nil {
			return err
		}
		comm := NewComm(cfg.wrap(ep))
		comm.SetAllreduceAlgo(cfg.Algo)
		wg.Add(1)
		go func(rank int, c *Comm) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, rec)
				}
			}()
			errs[rank] = fn(c)
		}(r, comm)
	}
	wg.Wait()
	for r, e := range errs {
		if e != nil {
			return fmt.Errorf("mpi: rank %d: %w", r, e)
		}
	}
	return nil
}
