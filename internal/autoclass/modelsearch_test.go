package autoclass

import (
	"fmt"
	"testing"

	"repro/internal/datagen"
	"repro/internal/model"
)

func TestStandardSpecCandidates(t *testing.T) {
	// Two real attributes, all values unconstrained: independent +
	// correlated (values can be negative, so no log-normal).
	ds := paperDS(t, 200)
	cands := StandardSpecCandidates(ds, ds.Summarize())
	names := map[string]bool{}
	for _, c := range cands {
		names[c.Name] = true
		if err := c.Spec.Validate(ds); err != nil {
			t.Fatalf("candidate %q invalid: %v", c.Name, err)
		}
	}
	if !names["independent"] || !names["correlated"] {
		t.Fatalf("candidates %v", names)
	}
	if names["log-normal"] {
		t.Fatal("log-normal offered for data with non-positive values")
	}
	// Strictly positive single attribute: log-normal offered, correlated
	// not (needs >= 2 reals).
	lds, _, err := datagen.LogNormalMixture(200, 1)
	if err != nil {
		t.Fatal(err)
	}
	lcands := StandardSpecCandidates(lds, lds.Summarize())
	lnames := map[string]bool{}
	for _, c := range lcands {
		lnames[c.Name] = true
	}
	if !lnames["log-normal"] || lnames["correlated"] {
		t.Fatalf("log-normal candidates %v", lnames)
	}
}

func TestSearchModelsPicksBestForm(t *testing.T) {
	// On strictly positive log-normal data, the log-normal form must beat
	// the plain normal form on the penalized score.
	ds, _, err := datagen.LogNormalMixture(2500, 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSearchConfig()
	cfg.StartJList = []int{3}
	cfg.Tries = 2
	cfg.EM.MaxCycles = 60
	res, err := SearchModels(ds, StandardSpecCandidates(ds, ds.Summarize()), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestSpec != "log-normal" {
		for _, ps := range res.PerSpec {
			t.Logf("spec %q: score %.1f J=%d", ps.Name, ps.Result.Best.Score(), ps.Result.Best.J())
		}
		t.Fatalf("best spec %q, expected log-normal", res.BestSpec)
	}
	if len(res.PerSpec) != 2 {
		t.Fatalf("per-spec results %d", len(res.PerSpec))
	}
}

func TestSearchModelsValidation(t *testing.T) {
	ds := paperDS(t, 100)
	cfg := quickSearchConfig()
	if _, err := SearchModels(ds, nil, cfg, nil); err == nil {
		t.Fatal("no candidates accepted")
	}
	empty, _ := datagen.Paper(0, 1)
	if _, err := SearchModels(empty, StandardSpecCandidates(ds, nil), cfg, nil); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestSearchModelsWithErrorPropagates(t *testing.T) {
	boom := fmt.Errorf("spec failed")
	_, err := SearchModelsWith(func(cand SpecCandidate) (*SearchResult, error) {
		return nil, boom
	}, []SpecCandidate{{Name: "x", Spec: model.Spec{}}})
	if err == nil {
		t.Fatal("runner error swallowed")
	}
}

func TestSearchModelsCorrelatedWinsOnCorrelatedData(t *testing.T) {
	// Build strongly correlated two-attribute clusters: the correlated
	// form should win the model-level search.
	mix := &datagen.GaussianMixture{
		Name:      "corr",
		AttrNames: []string{"x", "y"},
		Components: []datagen.Component{
			{Weight: 0.5, Mean: []float64{0, 0}, Sigma: []float64{1, 1}},
			{Weight: 0.5, Mean: []float64{6, 6}, Sigma: []float64{1, 1}},
		},
	}
	ds, _, err := mix.Generate(3000, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Introduce correlation by shearing y toward x.
	sheared := ds.Clone()
	for i := 0; i < sheared.N(); i++ {
		row := sheared.Row(i)
		row[1] = row[1]*0.3 + row[0]*0.95
	}
	cfg := DefaultSearchConfig()
	cfg.StartJList = []int{2}
	cfg.Tries = 1
	cfg.EM.MaxCycles = 60
	res, err := SearchModels(sheared, StandardSpecCandidates(sheared, sheared.Summarize()), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestSpec != "correlated" {
		for _, ps := range res.PerSpec {
			t.Logf("spec %q: score %.1f", ps.Name, ps.Result.Best.Score())
		}
		t.Fatalf("best spec %q, expected correlated", res.BestSpec)
	}
}
