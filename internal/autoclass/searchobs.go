package autoclass

// Search-level observability: a notification-only hook emitting the
// lifecycle of every BIG_LOOP try — claimed, per-cycle progress, and the
// in-schedule-order commit verdict. Like CycleObserver, a SearchObserver
// must never feed back into the search (SPMD safety): the trajectory with
// an observer attached is bitwise identical to the unobserved run, and the
// disabled (nil-observer) path performs zero allocations.

// TryEventKind labels one point in a try's lifecycle.
type TryEventKind uint8

const (
	// TryClaimed fires when a worker claims the variant and is about to
	// run it.
	TryClaimed TryEventKind = iota
	// TryCycle fires after each EM cycle of a running try.
	TryCycle
	// TryConverged fires when the try commits as a kept (non-duplicate)
	// result; the Converged field distinguishes true EM convergence from
	// hitting the cycle cap.
	TryConverged
	// TryDuplicate fires when the try commits as a rediscovered local
	// optimum (duplicate elimination, paper Fig. 2).
	TryDuplicate
	// TryEarlyStopped fires when basin early termination cut the try; such
	// tries commit as duplicates.
	TryEarlyStopped
)

// String names the kind for logs and progress lines.
func (k TryEventKind) String() string {
	switch k {
	case TryClaimed:
		return "claimed"
	case TryCycle:
		return "cycle"
	case TryConverged:
		return "converged"
	case TryDuplicate:
		return "duplicate"
	case TryEarlyStopped:
		return "early-stopped"
	}
	return "unknown"
}

// TryEvent is one search lifecycle notification. Commit-kind events are
// emitted strictly in schedule order; claimed and cycle events follow
// execution order, which with SearchParallelism > 1 interleaves across
// workers.
type TryEvent struct {
	Kind TryEventKind
	// Index is the variant's position in the sequential schedule; StartJ,
	// Try and Seed identify it in the start_j_list × tries grid.
	Index       int
	StartJ, Try int
	Seed        uint64
	// Cycle is the 0-based EM cycle just finished (TryCycle only); Cycles
	// is the try's total cycle count (commit kinds only).
	Cycle, Cycles int
	// J and LogPost are the classification's current shape and quality;
	// Score is the commit-time model score (commit kinds only).
	J       int
	LogPost float64
	Score   float64
	// Converged reports true EM convergence (commit kinds only).
	Converged bool
	// Done counts committed tries — including any prefix restored from a
	// checkpoint, so it is monotonically non-decreasing across resumes —
	// and Total the scheduled tries. TryCycle events leave Done zero (the
	// cycle adapter has no view of the commit log); progress consumers
	// should fold Done in with max().
	Done, Total int
	// BestScore and BestJ describe the best committed classification so
	// far (BestScore is -Inf before the first keep).
	BestScore float64
	BestJ     int
}

// SearchObserver receives try lifecycle events. Implementations must be
// notification-only — no communication, no feedback into the engine — and,
// when SearchParallelism > 1 (or under SearchHybrid's concurrent claims),
// safe for concurrent use. They must not call back into the scheduler:
// commit-kind events are delivered under its lock.
type SearchObserver interface {
	ObserveTry(TryEvent)
}

// tryCycleObserver adapts a variant's engine cycle stream into TryCycle
// events, chaining to the try's original cycle observer.
type tryCycleObserver struct {
	so    SearchObserver
	next  CycleObserver
	v     Variant
	total int
}

// NewTryCycleObserver returns a CycleObserver forwarding each cycle of
// variant v as a TryCycle event to so, then to next (when non-nil).
func NewTryCycleObserver(so SearchObserver, next CycleObserver, v Variant, total int) CycleObserver {
	return &tryCycleObserver{so: so, next: next, v: v, total: total}
}

func (t *tryCycleObserver) ObserveCycle(info CycleInfo) {
	t.so.ObserveTry(TryEvent{
		Kind:    TryCycle,
		Index:   t.v.Index,
		StartJ:  t.v.StartJ,
		Try:     t.v.Try,
		Seed:    t.v.Seed,
		Cycle:   info.Cycle,
		J:       info.J,
		LogPost: info.LogPost,
		Total:   t.total,
	})
	if t.next != nil {
		t.next.ObserveCycle(info)
	}
}
