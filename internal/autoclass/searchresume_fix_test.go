package autoclass

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/trace"
)

// Regression tests for the ISSUE 6 resume-path fixes: totals accumulation,
// seed-drift detection, fingerprint coverage and instrumentation wiring.

// fakeStateSearch drives searchWithStateFile over the deterministic
// synthetic runner, with the real checkpoint codec for the best
// classification.
func fakeStateSearch(tb testing.TB, cfg SearchConfig, statePath string, run TrialRunner) (*SearchResult, error) {
	ds := paperDS(tb, 60)
	return searchWithStateFile(cfg, cfg.SearchWorkers(), statePath, nil,
		func(*SearchScheduler) func(int) TrialRunner {
			return func(int) TrialRunner { return run }
		},
		func(raw []byte) (*Classification, error) {
			return LoadCheckpoint(bytes.NewReader(raw), ds)
		},
		func(cls *Classification) ([]byte, error) {
			var buf bytes.Buffer
			if err := SaveCheckpoint(&buf, cls); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		})
}

// TestResumedTotalsMatchUninterrupted (satellite 1): a search interrupted
// mid-way and resumed must report the same Totals — including the
// ReducedValues/Reductions the pre-fix resume path dropped — field by
// field. The synthetic runner makes every field deterministic.
func TestResumedTotalsMatchUninterrupted(t *testing.T) {
	cfg := resumeCfg()
	run := fakeRunner(t)
	full, err := fakeStateSearch(t, cfg, filepath.Join(t.TempDir(), "full.json"), run)
	if err != nil {
		t.Fatal(err)
	}
	if full.Totals.ReducedValues == 0 || full.Totals.Reductions == 0 {
		t.Fatal("synthetic runner reported no reducer traffic; the test is vacuous")
	}

	// Interrupt for real: fail on the 4th scheduled try, so the state file
	// holds exactly the first three committed tries and their totals.
	failSeed := cfg.Variants()[3].Seed
	boom := errors.New("interrupted")
	interrupted := filepath.Join(t.TempDir(), "state.json")
	_, err = fakeStateSearch(t, cfg, interrupted, func(startJ int, seed uint64) (*Classification, EMResult, error) {
		if seed == failSeed {
			return nil, EMResult{}, boom
		}
		return run(startJ, seed)
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("interruption did not surface: %v", err)
	}

	resumed, err := fakeStateSearch(t, cfg, interrupted, run)
	if err != nil {
		t.Fatal(err)
	}
	if !sameTries(resumed.Tries, full.Tries) {
		t.Fatalf("resumed tries diverged\n%+v\nvs\n%+v", resumed.Tries, full.Tries)
	}
	rt, ft := resumed.Totals, full.Totals
	if rt.Cycles != ft.Cycles {
		t.Errorf("Cycles %d vs %d", rt.Cycles, ft.Cycles)
	}
	if rt.WtsSeconds != ft.WtsSeconds {
		t.Errorf("WtsSeconds %v vs %v", rt.WtsSeconds, ft.WtsSeconds)
	}
	if rt.ParamsSeconds != ft.ParamsSeconds {
		t.Errorf("ParamsSeconds %v vs %v", rt.ParamsSeconds, ft.ParamsSeconds)
	}
	if rt.ApproxSeconds != ft.ApproxSeconds {
		t.Errorf("ApproxSeconds %v vs %v", rt.ApproxSeconds, ft.ApproxSeconds)
	}
	if rt.InitSeconds != ft.InitSeconds {
		t.Errorf("InitSeconds %v vs %v", rt.InitSeconds, ft.InitSeconds)
	}
	if rt.ReducedValues != ft.ReducedValues {
		t.Errorf("ReducedValues %d vs %d (resume dropped reducer totals)", rt.ReducedValues, ft.ReducedValues)
	}
	if rt.Reductions != ft.Reductions {
		t.Errorf("Reductions %d vs %d (resume dropped reducer totals)", rt.Reductions, ft.Reductions)
	}
}

// TestResumeRejectsSeedDrift (satellite 2): a state file whose recorded
// seed chain disagrees with the one the configuration derives must be
// refused, exactly as the parallel path refuses it.
func TestResumeRejectsSeedDrift(t *testing.T) {
	ds := paperDS(t, 300)
	cfg := resumeCfg()
	spec := model.DefaultSpec(ds)
	statePath := filepath.Join(t.TempDir(), "state.json")
	if _, err := SearchWithCheckpointFile(ds, spec, cfg, nil, statePath); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(statePath)
	if err != nil {
		t.Fatal(err)
	}
	var st searchStateV1
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	st.Completed[1].Seed ^= 1
	if err := writeSearchState(statePath, &st); err != nil {
		t.Fatal(err)
	}
	_, err = SearchWithCheckpointFile(ds, spec, cfg, nil, statePath)
	if err == nil {
		t.Fatal("drifted seed chain accepted")
	}
	if !strings.Contains(err.Error(), "seed mismatch") {
		t.Fatalf("error %q does not name the seed mismatch", err)
	}
}

// TestResumeRejectsChangedTrajectoryConfig (satellite 3): resuming with a
// different DupScoreTol or EM configuration must be refused with an error
// naming the offending knob — the pre-fix fingerprint checked only
// StartJList/Tries/Seed.
func TestResumeRejectsChangedTrajectoryConfig(t *testing.T) {
	ds := paperDS(t, 300)
	cfg := resumeCfg()
	spec := model.DefaultSpec(ds)
	statePath := filepath.Join(t.TempDir(), "state.json")
	if _, err := SearchWithCheckpointFile(ds, spec, cfg, nil, statePath); err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func(*SearchConfig){
		"DupScoreTol":    func(c *SearchConfig) { c.DupScoreTol *= 10 },
		"MaxCycles":      func(c *SearchConfig) { c.EM.MaxCycles++ },
		"RelDelta":       func(c *SearchConfig) { c.EM.RelDelta *= 2 },
		"ConvergeWindow": func(c *SearchConfig) { c.EM.ConvergeWindow++ },
		"MinClassWeight": func(c *SearchConfig) { c.EM.MinClassWeight *= 2 },
		"PruneClasses":   func(c *SearchConfig) { c.EM.PruneClasses = !c.EM.PruneClasses },
		"Kernels":        func(c *SearchConfig) { c.EM.Kernels = Reference },
	} {
		other := cfg
		mutate(&other)
		_, err := SearchWithCheckpointFile(ds, spec, other, nil, statePath)
		if err == nil {
			t.Errorf("changed %s accepted on resume", name)
			continue
		}
		if !strings.Contains(err.Error(), name) {
			t.Errorf("changed %s: error %q does not name the knob", name, err)
		}
	}
	// Worker counts are bitwise-invariant and must NOT be fingerprinted:
	// resuming under a different parallelism is legitimate.
	other := cfg
	other.SearchParallelism = 4
	other.EM.Parallelism = 2
	if _, err := SearchWithCheckpointFile(ds, spec, other, nil, statePath); err != nil {
		t.Errorf("changed worker counts refused on resume: %v", err)
	}
}

// trailObserver records the per-cycle posterior trajectory.
type trailObserver struct {
	cycles int
	trail  []float64
}

func (o *trailObserver) ObserveCycle(info CycleInfo) {
	o.cycles++
	o.trail = append(o.trail, info.LogPost)
}

// TestCheckpointedSearchWiresInstrumentation (satellite 4): the resumable
// search must install the profile and cycle observer on every try's engine,
// like SearchObserved does, without perturbing the trajectory.
func TestCheckpointedSearchWiresInstrumentation(t *testing.T) {
	ds := paperDS(t, 400)
	cfg := resumeCfg()
	spec := model.DefaultSpec(ds)

	refProf := trace.New()
	refObs := &trailObserver{}
	ref, err := SearchObserved(ds, spec, cfg, nil, refProf, refObs, nil)
	if err != nil {
		t.Fatal(err)
	}

	ckptProf := trace.New()
	ckptObs := &trailObserver{}
	statePath := filepath.Join(t.TempDir(), "state.json")
	res, err := SearchWithCheckpointFileObserved(ds, spec, cfg, nil, statePath, ckptProf, ckptObs, nil)
	if err != nil {
		t.Fatal(err)
	}

	if ckptObs.cycles == 0 {
		t.Fatal("checkpointed search never notified the cycle observer")
	}
	if ckptObs.cycles != refObs.cycles {
		t.Fatalf("observer saw %d cycles, reference %d", ckptObs.cycles, refObs.cycles)
	}
	for i := range refObs.trail {
		if ckptObs.trail[i] != refObs.trail[i] {
			t.Fatalf("posterior trajectory diverged at cycle record %d", i)
		}
	}
	for _, phase := range []string{PhaseWts, PhaseParams, PhaseInit} {
		got, want := ckptProf.Get(phase), refProf.Get(phase)
		if got.Calls != want.Calls {
			t.Errorf("profile phase %s: %d calls, reference %d", phase, got.Calls, want.Calls)
		}
		if got.Seconds <= 0 {
			t.Errorf("profile phase %s not timed", phase)
		}
	}
	// Instrumentation must not perturb the search result.
	if !sameTries(res.Tries, ref.Tries) || res.BestTry != ref.BestTry {
		t.Fatal("instrumented checkpointed search diverged from SearchObserved")
	}
}

// TestResumableSearchParallelMatchesSequential: the resumable search under
// variant parallelism — interrupted and resumed under a different worker
// count — still lands bitwise on the sequential result.
func TestResumableSearchParallelMatchesSequential(t *testing.T) {
	ds := paperDS(t, 400)
	cfg := resumeCfg()
	spec := model.DefaultSpec(ds)

	ref, err := Search(ds, spec, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	par := cfg
	par.SearchParallelism = 4
	statePath := filepath.Join(t.TempDir(), "state.json")
	if _, err := SearchWithCheckpointFile(ds, spec, par, nil, statePath); err != nil {
		t.Fatal(err)
	}
	truncateState(t, statePath, 2)
	resumed, err := SearchWithCheckpointFile(ds, spec, cfg, nil, statePath) // resume sequentially
	if err != nil {
		t.Fatal(err)
	}
	if !sameTries(resumed.Tries, ref.Tries) {
		t.Fatal("parallel checkpointed search + sequential resume diverged from sequential search")
	}
	if resumed.BestTry != ref.BestTry || resumed.Best.LogPost != ref.Best.LogPost {
		t.Fatal("best diverged")
	}
}
