package autoclass

import (
	"testing"
)

// benchEngine builds a warmed-up single-rank engine over the paper's
// synthetic two-real-attribute dataset at J=8 — the configuration of the
// paper's Fig. 8 runs — in the given kernel mode.
func benchEngine(b *testing.B, n, j int, mode KernelMode) *Engine {
	b.Helper()
	ds := paperDS(b, n)
	cfg := DefaultConfig()
	cfg.Kernels = mode
	cfg.PruneClasses = false
	cls := mustClassification(b, ds, j)
	eng := mustEngine(b, ds, cls, cfg)
	if err := eng.InitRandom(1); err != nil {
		b.Fatal(err)
	}
	if _, err := eng.BaseCycle(); err != nil {
		b.Fatal(err)
	}
	return eng
}

// BenchmarkUpdateWts measures the E-step alone — the phase the paper's
// Fig. 4 profile singles out as the dominant base_cycle cost — under both
// kernel modes.
func BenchmarkUpdateWts(b *testing.B) {
	for _, mode := range []KernelMode{Blocked, Reference} {
		b.Run("kernels="+mode.String(), func(b *testing.B) {
			eng := benchEngine(b, 10000, 8, mode)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.updateWts(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBaseCycle measures one full E+M+approximation cycle under both
// kernel modes — the ISSUE-4 acceptance benchmark (≥2× single-rank
// speedup for Blocked vs Reference, B/op not increased).
func BenchmarkBaseCycle(b *testing.B) {
	for _, mode := range []KernelMode{Blocked, Reference} {
		b.Run("kernels="+mode.String(), func(b *testing.B) {
			eng := benchEngine(b, 10000, 8, mode)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.BaseCycle(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
