package autoclass

import (
	"math"

	"repro/internal/dataset"
	"repro/internal/model"
)

// KernelMode selects how the engine's two data-parallel phases evaluate the
// model terms.
type KernelMode int

const (
	// Blocked is the default: column-major blocked kernels with per-cycle
	// constants precomputed once per (class, term) — no interface call and
	// no recomputed invariant on the per-row hot path. Results agree with
	// Reference to ≤1e-12 relative and are themselves fully deterministic
	// (fixed block grid inside the fixed shard grid), so trajectories are
	// bitwise reproducible for any Parallelism within Blocked mode.
	Blocked KernelMode = iota
	// Reference is the seed engine's per-row Term path, retained as the
	// bitwise ground truth the blocked kernels are tested against.
	Reference
)

// String implements fmt.Stringer.
func (m KernelMode) String() string {
	switch m {
	case Blocked:
		return "blocked"
	case Reference:
		return "reference"
	default:
		return "KernelMode(" + itoa(int(m)) + ")"
	}
}

// itoa avoids importing strconv for one error-path formatting.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [24]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

// KernelBlockRows is the row-block size of the blocked kernels. It divides
// RowShardSize, so the block grid inside every shard is identical whether a
// shard is processed alone or as part of a larger sequential range — the
// blocked path stays bitwise deterministic for every Parallelism setting.
// 256 rows × 8 classes of log-probabilities is 16 KiB of scratch, which
// fits comfortably in L1.
const KernelBlockRows = 256

// The chunked data plane's grid must stay in lockstep with the kernel
// block grid — a kernel block may never straddle a chunk boundary, which
// is what makes trajectories bitwise identical across chunk backings and
// sizes. Negative array lengths fail the build if the constants diverge.
var (
	_ [KernelBlockRows - dataset.ChunkAlign]struct{}
	_ [dataset.ChunkAlign - KernelBlockRows]struct{}
)

// blockScratch is one worker's blocked-kernel scratch: per-class
// log-probability vectors for the fused E-step, a gathered weight column
// for the M-step (each KernelBlockRows long), and — on chunk-backed views
// — the worker's chunk cursor, pinning exactly the chunk under its blocks.
type blockScratch struct {
	lp   [][]float64
	wcol []float64
	cur  dataset.ChunkCursor
}

// workerBlockScratch returns per-worker blocked scratch sized for j
// classes, reused across cycles. On a chunk-backed view each worker's
// cursor is pointed at the view's chunk source for the coming phase.
func (e *Engine) workerBlockScratch(workers, j int) []*blockScratch {
	for len(e.blockScr) < workers {
		e.blockScr = append(e.blockScr, &blockScratch{})
	}
	for w := 0; w < workers; w++ {
		bs := e.blockScr[w]
		for len(bs.lp) < j {
			bs.lp = append(bs.lp, make([]float64, KernelBlockRows))
		}
		if bs.wcol == nil {
			bs.wcol = make([]float64, KernelBlockRows)
		}
		if e.chunked {
			bs.cur.Reset(e.src)
		}
	}
	return e.blockScr
}

// closeCursors releases every worker cursor's pinned chunk — called at the
// end of each phase so a bounded-residency backing can evict freely
// between phases.
func (e *Engine) closeCursors() {
	if !e.chunked {
		return
	}
	for _, bs := range e.blockScr {
		bs.cur.Close()
	}
}

// block resolves the view-local row block [blo, bhi) to the Columns the
// kernels should walk: the monolithic mirror itself on a materialized
// view, or the cursor-pinned chunk (with chunk-local bounds) on a
// chunk-backed one.
func (e *Engine) block(bs *blockScratch, blo, bhi int) (cols *dataset.Columns, lo, hi int) {
	if e.chunked {
		return bs.cur.Block(blo, bhi)
	}
	return e.cols, blo, bhi
}

// prepareKernels readies the blocked path for a phase: the column-major
// mirror (built lazily once per view) and one kernel per (class, term).
// Kernels are cached on the engine and reused across cycles — when the
// class/term structure is unchanged they are merely Refreshed against the
// current parameters, so the steady state allocates nothing. Pruning (or a
// Restore with a different classification) changes the term set and
// triggers a rebuild, detected by term identity.
func (e *Engine) prepareKernels() {
	if !e.chunked && e.cols == nil {
		e.cols = e.view.Columns()
	}
	classes := e.cls.Classes
	same := len(e.kernTerms) == len(classes)
	if same {
	check:
		for cj, cl := range classes {
			if len(e.kernTerms[cj]) != len(cl.Terms) {
				same = false
				break
			}
			for bi, t := range cl.Terms {
				if e.kernTerms[cj][bi] != t {
					same = false
					break check
				}
			}
		}
	}
	if same {
		for _, ks := range e.kerns {
			for _, k := range ks {
				k.Refresh()
			}
		}
		return
	}
	e.kerns = make([][]model.Kernel, len(classes))
	e.kernTerms = make([][]model.Term, len(classes))
	for cj, cl := range classes {
		e.kerns[cj] = make([]model.Kernel, len(cl.Terms))
		e.kernTerms[cj] = append([]model.Term(nil), cl.Terms...)
		for bi, t := range cl.Terms {
			e.kerns[cj][bi] = t.Kernel()
		}
	}
}

// wtsRowsBlocked is the blocked E-step over rows [lo, hi): per row block,
// every class's log-membership vector is produced by the blocked kernels
// (LogPi broadcast + one BlockLogProb per term), then normalization, the
// weight write-back and the class/log-likelihood accumulation are fused in
// a second pass — zero interface calls and zero allocations per row. The
// semantics match wtsRows + stats.NormalizeLog, including the all-(-Inf)
// row convention (uniform weights, nothing added to the log-likelihood);
// association differs, so results agree to ≤1e-12 relative rather than
// bitwise.
func (e *Engine) wtsRowsBlocked(lo, hi int, out []float64, bs *blockScratch) {
	j := e.cls.J()
	for blo := lo; blo < hi; blo += KernelBlockRows {
		bhi := blo + KernelBlockRows
		if bhi > hi {
			bhi = hi
		}
		m := bhi - blo
		cols, clo, chi := e.block(bs, blo, bhi)
		for cj, cl := range e.cls.Classes {
			lp := bs.lp[cj][:m]
			logPi := cl.LogPi
			for r := range lp {
				lp[r] = logPi
			}
			for _, k := range e.kerns[cj] {
				k.BlockLogProb(cols, clo, chi, lp)
			}
		}
		for r := 0; r < m; r++ {
			maxv := math.Inf(-1)
			for cj := 0; cj < j; cj++ {
				if v := bs.lp[cj][r]; v > maxv {
					maxv = v
				}
			}
			w := e.wts[(blo+r)*j : (blo+r+1)*j]
			if math.IsInf(maxv, -1) {
				u := 1 / float64(j)
				for cj := 0; cj < j; cj++ {
					w[cj] = u
					out[cj] += u
				}
				continue
			}
			sum := 0.0
			for cj := 0; cj < j; cj++ {
				ev := math.Exp(bs.lp[cj][r] - maxv)
				w[cj] = ev
				sum += ev
			}
			inv := 1 / sum
			for cj := 0; cj < j; cj++ {
				wv := w[cj] * inv
				w[cj] = wv
				out[cj] += wv
			}
			out[j] += maxv + math.Log(sum)
		}
	}
}

// statsRowsBlocked is the blocked M-step over rows [lo, hi): per row block
// and class, the weight column is gathered once from the row-major weights
// matrix, then every term folds the whole block into its statistics slice
// with one BlockAccumulateStats call. Slot order (class-major, term-minor)
// and per-slot row order both match statsRows, so the fixed block grid
// keeps the accumulation deterministic for every Parallelism setting.
func (e *Engine) statsRowsBlocked(lo, hi int, buf []float64, offs []int, bs *blockScratch) {
	j := e.cls.J()
	for blo := lo; blo < hi; blo += KernelBlockRows {
		bhi := blo + KernelBlockRows
		if bhi > hi {
			bhi = hi
		}
		m := bhi - blo
		cols, clo, chi := e.block(bs, blo, bhi)
		ti := 0
		for cj, cl := range e.cls.Classes {
			wcol := bs.wcol[:m]
			for r := 0; r < m; r++ {
				wcol[r] = e.wts[(blo+r)*j+cj]
			}
			for bi := range cl.Terms {
				e.kerns[cj][bi].BlockAccumulateStats(cols, wcol, clo, chi, buf[offs[ti]:offs[ti+1]])
				ti++
			}
		}
	}
}
