package autoclass

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"

	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/trace"
)

// AutoClass C checkpoints its search so that multi-day classification runs
// survive interruption (the paper's motivating runs took 130–400 hours).
// This file provides the BIG_LOOP-level equivalent: the search driver
// persists each committed try and the best classification so far; an
// interrupted search re-launched with the same configuration skips the
// completed tries — the try seeds are derived deterministically, so the
// resumed search is indistinguishable from an uninterrupted one. Tries
// commit (and therefore persist) in schedule order even under variant
// parallelism, so the state file is always a consistent prefix of the
// sequential schedule.

// SearchFingerprint pins every configuration knob that shapes a search
// trajectory. Resuming a state file recorded under a different fingerprint
// would silently mix tries from two incompatible searches, so both the
// sequential and the parallel (pautoclass) resume paths embed it in their
// state files and refuse mismatches. Worker counts (SearchParallelism,
// EM.Parallelism) are deliberately excluded: both are bitwise-invariant
// (see parallel.go and searchsched.go), so a search may be resumed under a
// different degree of parallelism.
type SearchFingerprint struct {
	DupScoreTol    float64     `json:"dup_score_tol"`
	MaxCycles      int         `json:"max_cycles"`
	RelDelta       float64     `json:"rel_delta"`
	ConvergeWindow int         `json:"converge_window"`
	MinClassWeight float64     `json:"min_class_weight"`
	PruneClasses   bool        `json:"prune_classes"`
	Granularity    Granularity `json:"granularity"`
	Kernels        KernelMode  `json:"kernels"`
	// SyncEvery and SyncDriftTol pin the bounded-staleness schedule.
	// Normalized: a synchronous search records {0, 0} regardless of how it
	// was spelled (SyncEvery 0 vs 1, any tolerance — neither shapes a
	// synchronous trajectory), so state files written before the knob
	// existed still resume under synchronous configs.
	SyncEvery    int     `json:"sync_every,omitempty"`
	SyncDriftTol float64 `json:"sync_drift_tol,omitempty"`
}

// Fingerprint extracts the trajectory-shaping knobs of a configuration.
func (c SearchConfig) Fingerprint() SearchFingerprint {
	fp := SearchFingerprint{
		DupScoreTol:    c.DupScoreTol,
		MaxCycles:      c.EM.MaxCycles,
		RelDelta:       c.EM.RelDelta,
		ConvergeWindow: c.EM.ConvergeWindow,
		MinClassWeight: c.EM.MinClassWeight,
		PruneClasses:   c.EM.PruneClasses,
		Granularity:    c.EM.Granularity,
		Kernels:        c.EM.Kernels,
	}
	if l := c.EM.EffectiveSyncEvery(); l > 1 {
		fp.SyncEvery = l
		fp.SyncDriftTol = c.EM.SyncDriftTol
	}
	return fp
}

// Diff describes every field on which the two fingerprints disagree, for
// mismatch errors that name the offending knob.
func (f SearchFingerprint) Diff(g SearchFingerprint) []string {
	var d []string
	if f.DupScoreTol != g.DupScoreTol {
		d = append(d, fmt.Sprintf("DupScoreTol %v vs %v", f.DupScoreTol, g.DupScoreTol))
	}
	if f.MaxCycles != g.MaxCycles {
		d = append(d, fmt.Sprintf("MaxCycles %d vs %d", f.MaxCycles, g.MaxCycles))
	}
	if f.RelDelta != g.RelDelta {
		d = append(d, fmt.Sprintf("RelDelta %v vs %v", f.RelDelta, g.RelDelta))
	}
	if f.ConvergeWindow != g.ConvergeWindow {
		d = append(d, fmt.Sprintf("ConvergeWindow %d vs %d", f.ConvergeWindow, g.ConvergeWindow))
	}
	if f.MinClassWeight != g.MinClassWeight {
		d = append(d, fmt.Sprintf("MinClassWeight %v vs %v", f.MinClassWeight, g.MinClassWeight))
	}
	if f.PruneClasses != g.PruneClasses {
		d = append(d, fmt.Sprintf("PruneClasses %v vs %v", f.PruneClasses, g.PruneClasses))
	}
	if f.Granularity != g.Granularity {
		d = append(d, fmt.Sprintf("Granularity %v vs %v", f.Granularity, g.Granularity))
	}
	if f.Kernels != g.Kernels {
		d = append(d, fmt.Sprintf("Kernels %d vs %d", int(f.Kernels), int(g.Kernels)))
	}
	if f.SyncEvery != g.SyncEvery {
		d = append(d, fmt.Sprintf("SyncEvery %d vs %d", f.SyncEvery, g.SyncEvery))
	}
	if f.SyncDriftTol != g.SyncDriftTol {
		d = append(d, fmt.Sprintf("SyncDriftTol %v vs %v", f.SyncDriftTol, g.SyncDriftTol))
	}
	return d
}

// searchStateV1 is the serialized search progress.
type searchStateV1 struct {
	Version int `json:"version"`
	// Config fingerprint — a resume against a different search is refused.
	StartJList  []int             `json:"start_j_list"`
	Tries       int               `json:"tries"`
	Seed        uint64            `json:"seed"`
	Fingerprint SearchFingerprint `json:"fingerprint"`
	// Completed tries in execution order.
	Completed []TryResult `json:"completed"`
	// Best is the best-so-far classification checkpoint (the JSON produced
	// by SaveCheckpoint), empty until a non-duplicate try completes.
	Best json.RawMessage `json:"best,omitempty"`
	// BestTry is the best classification's try record.
	BestTry TryResult `json:"best_try"`
	// Totals accumulates phase statistics.
	Totals EMResult `json:"totals"`
}

// matches reports (as a descriptive error) any disagreement between the
// recorded search identity and the configuration attempting to resume it.
func (st *searchStateV1) matches(cfg SearchConfig) error {
	if st.Tries != cfg.Tries {
		return fmt.Errorf("Tries %d vs %d", st.Tries, cfg.Tries)
	}
	if st.Seed != cfg.Seed {
		return fmt.Errorf("Seed %d vs %d", st.Seed, cfg.Seed)
	}
	if len(st.StartJList) != len(cfg.StartJList) {
		return fmt.Errorf("StartJList %v vs %v", st.StartJList, cfg.StartJList)
	}
	for i, j := range st.StartJList {
		if cfg.StartJList[i] != j {
			return fmt.Errorf("StartJList %v vs %v", st.StartJList, cfg.StartJList)
		}
	}
	if d := st.Fingerprint.Diff(cfg.Fingerprint()); len(d) > 0 {
		return errors.New(strings.Join(d, "; "))
	}
	return nil
}

// SearchWithCheckpointFile runs the BIG_LOOP, persisting its progress to
// statePath after every committed try. If statePath already holds the
// progress of an identical search configuration, the completed tries are
// skipped and the search continues where it stopped. The state file is
// left in place on success so a finished search re-launched again returns
// immediately.
func SearchWithCheckpointFile(ds *dataset.Dataset, spec model.Spec, cfg SearchConfig,
	charger Charger, statePath string) (*SearchResult, error) {
	return SearchWithCheckpointFileObserved(ds, spec, cfg, charger, statePath, nil, nil, nil)
}

// SearchWithCheckpointFileObserved is SearchWithCheckpointFile with the
// same per-try engine instrumentation SearchObserved wires: the phase
// profile, cycle observer and search observer, when non-nil, are installed
// on every try's engine. On resume the search observer's first events
// report a Done count that already includes the restored prefix.
// Instrumentation never perturbs the trajectory.
func SearchWithCheckpointFileObserved(ds *dataset.Dataset, spec model.Spec, cfg SearchConfig,
	charger Charger, statePath string, profile *trace.Profile, co CycleObserver,
	so SearchObserver) (*SearchResult, error) {
	if ds.N() == 0 {
		return nil, errors.New("autoclass: empty dataset")
	}
	pr := model.NewPriors(ds, ds.Summarize())
	workers := searchWorkersFor(cfg, charger)
	return searchWithStateFile(cfg, workers, statePath, so,
		func(sched *SearchScheduler) func(slot int) TrialRunner {
			return nativeRunnerFactory(ds, spec, pr, cfg, charger, profile, co, so, sched, workers)
		},
		func(raw []byte) (*Classification, error) {
			return LoadCheckpoint(bytes.NewReader(raw), ds)
		},
		func(cls *Classification) ([]byte, error) {
			var buf bytes.Buffer
			if err := SaveCheckpoint(&buf, cls); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		})
}

// searchWithStateFile is the resumable search core, parameterized over the
// runner factory and the best-classification codec so tests can exercise
// the resume bookkeeping with synthetic trial runners. makeRunner receives
// the scheduler (nil when building the regeneration runner, which must
// never be cut by basin early termination).
func searchWithStateFile(cfg SearchConfig, workers int, statePath string,
	so SearchObserver,
	makeRunner func(sched *SearchScheduler) func(slot int) TrialRunner,
	loadBest func([]byte) (*Classification, error),
	saveBest func(*Classification) ([]byte, error)) (*SearchResult, error) {
	if statePath == "" {
		return nil, errors.New("autoclass: empty state path")
	}
	sched, err := NewSearchScheduler(cfg, workers)
	if err != nil {
		return nil, err
	}
	sched.SetObserver(so)
	state := &searchStateV1{
		Version:     1,
		StartJList:  append([]int(nil), cfg.StartJList...),
		Tries:       cfg.Tries,
		Seed:        cfg.Seed,
		Fingerprint: cfg.Fingerprint(),
	}
	if raw, err := os.ReadFile(statePath); err == nil {
		var prev searchStateV1
		if err := json.Unmarshal(raw, &prev); err != nil {
			return nil, fmt.Errorf("autoclass: corrupt search state %s: %w", statePath, err)
		}
		if prev.Version != 1 {
			return nil, fmt.Errorf("autoclass: unsupported search state version %d", prev.Version)
		}
		if err := prev.matches(cfg); err != nil {
			return nil, fmt.Errorf("autoclass: state file %s belongs to a different search configuration (%w)", statePath, err)
		}
		state = &prev
	} else if !os.IsNotExist(err) {
		return nil, err
	}

	// Restore the best-so-far classification and hand the completed prefix
	// to the scheduler, which verifies every recorded seed against the
	// derived chain.
	var best *Classification
	if len(state.Best) > 0 {
		best, err = loadBest(state.Best)
		if err != nil {
			return nil, fmt.Errorf("autoclass: restoring best classification: %w", err)
		}
	}
	if err := sched.restore(state.Completed, best, state.BestTry, state.Totals); err != nil {
		return nil, err
	}

	// Persist progress after every in-order commit. The best classification
	// is re-serialized only when it changes.
	lastSavedBest := best
	bestRaw := []byte(state.Best)
	sched.onCommit = func(res *SearchResult) error {
		state.Completed = res.Tries
		state.Totals = res.Totals
		state.BestTry = res.BestTry
		if res.Best != nil && res.Best != lastSavedBest {
			raw, err := saveBest(res.Best)
			if err != nil {
				return err
			}
			bestRaw = raw
			lastSavedBest = res.Best
		}
		state.Best = bestRaw
		return writeSearchState(statePath, state)
	}

	res, err := sched.run(makeRunner(sched), workers)
	if err != nil {
		return nil, err
	}

	// Robustness: if the restored state recorded a better try than anything
	// we hold a classification for (e.g. the embedded best was lost to a
	// partial write), regenerate it — the try seed makes that exact.
	bestRecorded := TryResult{}
	haveRecorded := false
	for _, tr := range res.Tries {
		if tr.Duplicate {
			continue
		}
		if !haveRecorded || tr.Score > bestRecorded.Score {
			bestRecorded = tr
			haveRecorded = true
		}
	}
	if haveRecorded && (res.Best == nil || bestRecorded.Score > res.BestTry.Score) {
		regen := makeRunner(nil)(0)
		cls, _, err := regen(bestRecorded.StartJ, bestRecorded.Seed)
		if err != nil {
			return nil, err
		}
		res.Best = cls
		res.BestTry = bestRecorded
		state.BestTry = bestRecorded
		raw, err := saveBest(cls)
		if err != nil {
			return nil, err
		}
		state.Best = raw
		if err := writeSearchState(statePath, state); err != nil {
			return nil, err
		}
	}
	if res.Best == nil {
		return nil, errors.New("autoclass: search produced no classification")
	}
	return res, nil
}

// writeSearchState persists the state atomically (write temp, rename).
func writeSearchState(path string, st *searchStateV1) error {
	raw, err := json.Marshal(st)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
