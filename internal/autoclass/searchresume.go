package autoclass

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/stats"
)

// AutoClass C checkpoints its search so that multi-day classification runs
// survive interruption (the paper's motivating runs took 130–400 hours).
// This file provides the BIG_LOOP-level equivalent: the search driver
// persists each completed try and the best classification so far; an
// interrupted search re-launched with the same configuration skips the
// completed tries — the try seeds are derived deterministically, so the
// resumed search is indistinguishable from an uninterrupted one.

// searchStateV1 is the serialized search progress.
type searchStateV1 struct {
	Version int `json:"version"`
	// Config fingerprint — a resume against a different search is refused.
	StartJList []int  `json:"start_j_list"`
	Tries      int    `json:"tries"`
	Seed       uint64 `json:"seed"`
	// Completed tries in execution order.
	Completed []TryResult `json:"completed"`
	// Best is the best-so-far classification checkpoint (the JSON produced
	// by SaveCheckpoint), empty until a non-duplicate try completes.
	Best json.RawMessage `json:"best,omitempty"`
	// BestTry is the best classification's try record.
	BestTry TryResult `json:"best_try"`
	// Totals accumulates phase statistics.
	Totals EMResult `json:"totals"`
}

func (st *searchStateV1) matches(cfg SearchConfig) bool {
	if st.Tries != cfg.Tries || st.Seed != cfg.Seed || len(st.StartJList) != len(cfg.StartJList) {
		return false
	}
	for i, j := range st.StartJList {
		if cfg.StartJList[i] != j {
			return false
		}
	}
	return true
}

// SearchWithCheckpointFile runs the sequential BIG_LOOP, persisting its
// progress to statePath after every completed try. If statePath already
// holds the progress of an identical search configuration, the completed
// tries are skipped and the search continues where it stopped. The state
// file is left in place on success so a finished search re-launched again
// returns immediately.
func SearchWithCheckpointFile(ds *dataset.Dataset, spec model.Spec, cfg SearchConfig,
	charger Charger, statePath string) (*SearchResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if ds.N() == 0 {
		return nil, errors.New("autoclass: empty dataset")
	}
	if statePath == "" {
		return nil, errors.New("autoclass: empty state path")
	}
	state := &searchStateV1{
		Version:    1,
		StartJList: append([]int(nil), cfg.StartJList...),
		Tries:      cfg.Tries,
		Seed:       cfg.Seed,
	}
	if raw, err := os.ReadFile(statePath); err == nil {
		var prev searchStateV1
		if err := json.Unmarshal(raw, &prev); err != nil {
			return nil, fmt.Errorf("autoclass: corrupt search state %s: %w", statePath, err)
		}
		if prev.Version != 1 {
			return nil, fmt.Errorf("autoclass: unsupported search state version %d", prev.Version)
		}
		if !prev.matches(cfg) {
			return nil, fmt.Errorf("autoclass: state file %s belongs to a different search configuration", statePath)
		}
		state = &prev
	} else if !os.IsNotExist(err) {
		return nil, err
	}

	pr := model.NewPriors(ds, ds.Summarize())
	res := &SearchResult{
		Tries:  append([]TryResult(nil), state.Completed...),
		Totals: state.Totals,
	}
	// Restore the best-so-far classification.
	if len(state.Best) > 0 {
		best, err := LoadCheckpoint(bytes.NewReader(state.Best), ds)
		if err != nil {
			return nil, fmt.Errorf("autoclass: restoring best classification: %w", err)
		}
		res.Best = best
		res.BestTry = state.BestTry
	}

	// Deterministic seed chain, identical to SearchWith's.
	seeds := rng.New(cfg.Seed)
	tryIndex := 0
	for _, startJ := range cfg.StartJList {
		for try := 0; try < cfg.Tries; try++ {
			trySeed := seeds.Uint64()
			if tryIndex < len(state.Completed) {
				tryIndex++ // already done in a previous run
				continue
			}
			tryIndex++
			cls, err := NewClassification(ds, spec, pr, startJ)
			if err != nil {
				return nil, err
			}
			eng, err := NewEngine(ds.All(), cls, cfg.EM, nil, charger)
			if err != nil {
				return nil, err
			}
			if err := eng.InitRandom(trySeed); err != nil {
				return nil, err
			}
			em, err := eng.Run()
			if err != nil {
				return nil, err
			}
			tr := TryResult{
				StartJ: startJ, FinalJ: cls.J(), Try: try, Seed: trySeed,
				Cycles: em.Cycles, Converged: em.Converged,
				LogLik: cls.LogLik, LogPost: cls.LogPost, Score: cls.Score(),
			}
			res.Totals.Cycles += em.Cycles
			res.Totals.WtsSeconds += em.WtsSeconds
			res.Totals.ParamsSeconds += em.ParamsSeconds
			res.Totals.ApproxSeconds += em.ApproxSeconds
			res.Totals.InitSeconds += em.InitSeconds
			for _, prev := range res.Tries {
				if !prev.Duplicate && prev.FinalJ == tr.FinalJ &&
					stats.RelDiff(prev.Score, tr.Score) < cfg.DupScoreTol {
					tr.Duplicate = true
					break
				}
			}
			res.Tries = append(res.Tries, tr)
			if !tr.Duplicate && (res.Best == nil || tr.Score > res.BestTry.Score) {
				res.Best = cls
				res.BestTry = tr
			}
			// Persist progress after every try.
			state.Completed = res.Tries
			state.Totals = res.Totals
			state.BestTry = res.BestTry
			if res.Best != nil {
				var buf bytes.Buffer
				if err := SaveCheckpoint(&buf, res.Best); err != nil {
					return nil, err
				}
				state.Best = buf.Bytes()
			}
			if err := writeSearchState(statePath, state); err != nil {
				return nil, err
			}
		}
	}
	// Robustness: if the restored state recorded a better try than anything
	// we hold a classification for (e.g. the embedded best was lost to a
	// partial write), regenerate it — the try seed makes that exact.
	bestRecorded := TryResult{}
	haveRecorded := false
	for _, tr := range res.Tries {
		if tr.Duplicate {
			continue
		}
		if !haveRecorded || tr.Score > bestRecorded.Score {
			bestRecorded = tr
			haveRecorded = true
		}
	}
	if haveRecorded && (res.Best == nil || bestRecorded.Score > res.BestTry.Score) {
		cls, err := NewClassification(ds, spec, pr, bestRecorded.StartJ)
		if err != nil {
			return nil, err
		}
		eng, err := NewEngine(ds.All(), cls, cfg.EM, nil, charger)
		if err != nil {
			return nil, err
		}
		if err := eng.InitRandom(bestRecorded.Seed); err != nil {
			return nil, err
		}
		if _, err := eng.Run(); err != nil {
			return nil, err
		}
		res.Best = cls
		res.BestTry = bestRecorded
		state.BestTry = bestRecorded
		var buf bytes.Buffer
		if err := SaveCheckpoint(&buf, cls); err != nil {
			return nil, err
		}
		state.Best = buf.Bytes()
		if err := writeSearchState(statePath, state); err != nil {
			return nil, err
		}
	}
	if res.Best == nil {
		return nil, errors.New("autoclass: search produced no classification")
	}
	return res, nil
}

// writeSearchState persists the state atomically (write temp, rename).
func writeSearchState(path string, st *searchStateV1) error {
	raw, err := json.Marshal(st)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
