package autoclass

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// AutoClass C's report generator emits, alongside the class parameters, the
// per-case class memberships (the .case output): for every instance, the
// classes it belongs to with probability above a threshold. This file is
// the equivalent.

// CaseAssignment is one instance's membership summary.
type CaseAssignment struct {
	// Index is the instance's row in the dataset.
	Index int
	// Classes and Probs list the memberships above the threshold, most
	// probable first. They have equal length (at least 1: the best class
	// is always included).
	Classes []int
	Probs   []float64
}

// Entropy-free helper: bestFirst orders class indices by decreasing
// membership probability.
func membershipOrder(probs []float64) []int {
	order := make([]int, len(probs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return probs[order[a]] > probs[order[b]]
	})
	return order
}

// AssignCases computes every instance's memberships, keeping classes with
// probability >= threshold (the best class is always kept). A threshold of
// 0.9 or higher effectively yields hard assignments on well-separated data;
// AutoClass's default report threshold is in the same spirit.
func AssignCases(cls *Classification, view *dataset.View, threshold float64) []CaseAssignment {
	out := make([]CaseAssignment, view.N())
	row := make([]float64, view.Dataset().NumAttrs())
	for i := 0; i < view.N(); i++ {
		probs := cls.Predict(view.RowTo(row, i))
		order := membershipOrder(probs)
		ca := CaseAssignment{Index: view.Start() + i}
		for rank, j := range order {
			if rank > 0 && probs[j] < threshold {
				break
			}
			ca.Classes = append(ca.Classes, j)
			ca.Probs = append(ca.Probs, probs[j])
		}
		out[i] = ca
	}
	return out
}

// WriteCases renders case assignments in AutoClass's tabular style:
//
//	case  class  prob  [class  prob ...]
func WriteCases(w io.Writer, cls *Classification, view *dataset.View, threshold float64) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# case assignments: %d cases, %d classes, threshold %.3f\n",
		view.N(), cls.J(), threshold)
	fmt.Fprintf(bw, "# case  (class prob)+\n")
	for _, ca := range AssignCases(cls, view, threshold) {
		fmt.Fprintf(bw, "%d", ca.Index)
		for k := range ca.Classes {
			fmt.Fprintf(bw, "  %d %.4f", ca.Classes[k], ca.Probs[k])
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ClassSizes returns the hard-assignment population of every class — the
// quick summary AutoClass prints at the top of its case report.
func ClassSizes(cls *Classification, view *dataset.View) []int {
	sizes := make([]int, cls.J())
	row := make([]float64, view.Dataset().NumAttrs())
	for i := 0; i < view.N(); i++ {
		sizes[cls.HardAssign(view.RowTo(row, i))]++
	}
	return sizes
}

// HeldoutLogLik returns the total log-likelihood of the view's instances
// under the classification — the held-out fit measure for validating model
// selection on data the search never saw. Larger (closer to zero) is
// better.
func HeldoutLogLik(cls *Classification, view *dataset.View) float64 {
	logp := make([]float64, cls.J())
	row := make([]float64, view.Dataset().NumAttrs())
	total := 0.0
	for i := 0; i < view.N(); i++ {
		cls.LogMembership(view.RowTo(row, i), logp)
		z := stats.LogSumExp(logp)
		if !math.IsInf(z, -1) {
			total += z
		}
	}
	return total
}

// MeanMaxMembership returns the average of every case's maximum membership
// probability — the paper's §2 sharpness notion: near 1.0 means "classes
// are well separated", near 1/J means "abundantly overlapped".
func MeanMaxMembership(cls *Classification, view *dataset.View) float64 {
	if view.N() == 0 {
		return 0
	}
	total := 0.0
	row := make([]float64, view.Dataset().NumAttrs())
	for i := 0; i < view.N(); i++ {
		probs := cls.Predict(view.RowTo(row, i))
		best := 0.0
		for _, p := range probs {
			if p > best {
				best = p
			}
		}
		total += best
	}
	return total / float64(view.N())
}
