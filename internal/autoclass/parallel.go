package autoclass

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Hybrid intra-rank parallelism.
//
// The paper parallelizes AutoClass *across* ranks with message passing but
// leaves each rank's base_cycle strictly sequential. On multicore hardware
// that idles most of a node, so the engine also supports a shared-memory
// execution mode inside every rank: the local partition's rows are sharded
// and the two data-parallel phases — the E-step of update_wts and the
// sufficient-statistics accumulation of update_parameters — run on a pool
// of worker goroutines.
//
// Determinism is the invariant the SPMD search relies on: every rank must
// keep feeding bitwise-reproducible local values into the group Allreduce.
// Floating-point addition is not associative, so the shard grid is fixed —
// boundaries depend only on the local row count, never on the worker count
// — and the per-shard accumulators are merged in ascending shard order
// after all workers finish. The reduced values are therefore bitwise
// identical for every Parallelism >= 1, no matter how many workers ran or
// how the scheduler interleaved them.

// RowShardSize is the fixed shard width (rows) of the deterministic
// parallel path. It is a compile-time constant on purpose: shard boundaries
// must not depend on configuration, or two runs with different worker
// counts would merge partial sums in different groupings and diverge by
// floating-point reassociation.
const RowShardSize = 1024

// NumRowShards returns how many fixed-size shards cover n rows.
func NumRowShards(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + RowShardSize - 1) / RowShardSize
}

// RowShardRange returns the half-open row range [lo, hi) of shard s over n
// rows.
func RowShardRange(s, n int) (lo, hi int) {
	lo = s * RowShardSize
	hi = lo + RowShardSize
	if hi > n {
		hi = n
	}
	return lo, hi
}

// EffectiveParallelism resolves the Parallelism knob to a worker count:
// 0 and 1 mean one worker, negative means runtime.GOMAXPROCS(0), any other
// value is used as-is.
func (c Config) EffectiveParallelism() int {
	p := c.Parallelism
	if p < 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p < 1 {
		p = 1
	}
	return p
}

// Workers returns the size of the worker pool for a phase covering the
// given number of shards: the resolved Parallelism, capped by the shard
// count (extra workers would only spin on an empty queue).
func (c Config) Workers(shards int) int {
	p := c.EffectiveParallelism()
	if p > shards && shards > 0 {
		p = shards
	}
	return p
}

// ParallelFor executes fn(worker, shard) for every shard index in [0,
// shards) on a pool of `workers` goroutines. Shards are claimed from an
// atomic counter, so the assignment of shards to workers is scheduling-
// dependent — fn must write only to per-shard (or per-worker) state, and
// any order-sensitive merge belongs to the caller, after ParallelFor
// returns. With workers <= 1 it degenerates to an inline loop with no
// goroutines.
//
// It is exported for the alternative engines in package pautoclass that
// mirror the hybrid execution mode.
func ParallelFor(workers, shards int, fn func(worker, shard int)) {
	if shards <= 0 {
		return
	}
	if workers <= 1 {
		for s := 0; s < shards; s++ {
			fn(0, s)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				s := int(next.Add(1)) - 1
				if s >= shards {
					return
				}
				fn(worker, s)
			}
		}(w)
	}
	wg.Wait()
}

// shardScratch hands out per-shard accumulator buffers backed by one flat
// allocation that is reused across cycles (the buffers are zeroed on every
// call). One scratch serves both phases of a cycle because they never
// overlap in time.
type shardScratch struct {
	flat []float64
	bufs [][]float64
}

// get returns `shards` zeroed buffers of `width` float64s each.
func (sc *shardScratch) get(shards, width int) [][]float64 {
	need := shards * width
	if cap(sc.flat) < need {
		sc.flat = make([]float64, need)
	}
	flat := sc.flat[:need]
	for i := range flat {
		flat[i] = 0
	}
	if cap(sc.bufs) < shards {
		sc.bufs = make([][]float64, shards)
	}
	bufs := sc.bufs[:shards]
	for s := 0; s < shards; s++ {
		bufs[s] = flat[s*width : (s+1)*width]
	}
	return bufs
}

// mergeShards folds the per-shard buffers into dst in ascending shard
// order — the fixed-order reduction that keeps the parallel path
// deterministic.
func mergeShards(dst []float64, bufs [][]float64) {
	for _, buf := range bufs {
		for k, v := range buf {
			dst[k] += v
		}
	}
}
