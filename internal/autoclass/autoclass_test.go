package autoclass

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/stats"
)

// paperDS returns a small instance of the paper's synthetic workload.
func paperDS(t testing.TB, n int) *dataset.Dataset {
	t.Helper()
	ds, err := datagen.Paper(n, 42)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func mustClassification(t testing.TB, ds *dataset.Dataset, j int) *Classification {
	t.Helper()
	pr := model.NewPriors(ds, ds.Summarize())
	cls, err := NewClassification(ds, model.DefaultSpec(ds), pr, j)
	if err != nil {
		t.Fatal(err)
	}
	return cls
}

func mustEngine(t testing.TB, ds *dataset.Dataset, cls *Classification, cfg Config) *Engine {
	t.Helper()
	eng, err := NewEngine(ds.All(), cls, cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestNewClassificationValidation(t *testing.T) {
	ds := paperDS(t, 100)
	pr := model.NewPriors(ds, ds.Summarize())
	if _, err := NewClassification(ds, model.DefaultSpec(ds), pr, 0); err == nil {
		t.Error("J=0 accepted")
	}
	if _, err := NewClassification(ds, model.Spec{}, pr, 2); err == nil {
		t.Error("empty spec accepted")
	}
	if _, err := NewClassification(ds, model.DefaultSpec(ds), nil, 2); err == nil {
		t.Error("nil priors accepted")
	}
	cls, err := NewClassification(ds, model.DefaultSpec(ds), pr, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cls.J() != 3 {
		t.Fatalf("J=%d", cls.J())
	}
	// Initial mixing weights uniform.
	for _, cl := range cls.Classes {
		if !stats.AlmostEqual(cl.LogPi, -math.Log(3), 1e-12) {
			t.Fatalf("initial log pi %v", cl.LogPi)
		}
	}
}

func TestInitialClassIsPartitionIndependent(t *testing.T) {
	// The same (seed, global index) must map to the same class regardless
	// of which rank computes it — the key determinism property.
	for _, j := range []int{1, 2, 7, 64} {
		for idx := 0; idx < 1000; idx++ {
			a := InitialClass(99, idx, j)
			b := InitialClass(99, idx, j)
			if a != b || a < 0 || a >= j {
				t.Fatalf("InitialClass(99,%d,%d) unstable or out of range: %d,%d", idx, j, a, b)
			}
		}
	}
}

func TestInitialClassSpreads(t *testing.T) {
	const j = 8
	counts := make([]int, j)
	for idx := 0; idx < 8000; idx++ {
		counts[InitialClass(7, idx, j)]++
	}
	for c, n := range counts {
		if n < 800 || n > 1200 {
			t.Fatalf("class %d got %d of 8000 items", c, n)
		}
	}
}

func TestEngineLifecycleErrors(t *testing.T) {
	ds := paperDS(t, 50)
	cls := mustClassification(t, ds, 2)
	eng := mustEngine(t, ds, cls, DefaultConfig())
	if _, err := eng.BaseCycle(); err == nil {
		t.Error("BaseCycle before InitRandom accepted")
	}
	if _, err := eng.Run(); err == nil {
		t.Error("Run before InitRandom accepted")
	}
	bad := DefaultConfig()
	bad.MaxCycles = 0
	if _, err := NewEngine(ds.All(), cls, bad, nil, nil); err == nil {
		t.Error("MaxCycles=0 accepted")
	}
	if _, err := NewEngine(nil, cls, DefaultConfig(), nil, nil); err == nil {
		t.Error("nil view accepted")
	}
}

func TestWeightsAreNormalizedPerItem(t *testing.T) {
	ds := paperDS(t, 300)
	cls := mustClassification(t, ds, 4)
	eng := mustEngine(t, ds, cls, DefaultConfig())
	if err := eng.InitRandom(1); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.BaseCycle(); err != nil {
		t.Fatal(err)
	}
	j := cls.J()
	for i := 0; i < ds.N(); i++ {
		sum := 0.0
		for cj := 0; cj < j; cj++ {
			w := eng.wts[i*j+cj]
			if w < 0 || w > 1 {
				t.Fatalf("item %d class %d weight %v out of [0,1]", i, cj, w)
			}
			sum += w
		}
		if !stats.AlmostEqual(sum, 1, 1e-9) {
			t.Fatalf("item %d weights sum to %v", i, sum)
		}
	}
}

func TestClassWeightsSumToN(t *testing.T) {
	ds := paperDS(t, 500)
	cls := mustClassification(t, ds, 5)
	eng := mustEngine(t, ds, cls, DefaultConfig())
	if err := eng.InitRandom(2); err != nil {
		t.Fatal(err)
	}
	for cyc := 0; cyc < 3; cyc++ {
		if _, err := eng.BaseCycle(); err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for _, cl := range cls.Classes {
			total += cl.W
		}
		if !stats.AlmostEqual(total, float64(ds.N()), 1e-6) {
			t.Fatalf("cycle %d: class weights sum to %v, want %d", cyc, total, ds.N())
		}
	}
}

func TestEMLikelihoodMonotoneWithoutPriors(t *testing.T) {
	// With priors driven to zero strength the M-step is exact ML, and EM's
	// likelihood ascent theorem applies: LogLik must never decrease.
	ds := paperDS(t, 800)
	pr := model.NewPriors(ds, ds.Summarize())
	pr.Kappa = 1e-12
	pr.DirichletAlpha = 1e-12
	for k := range pr.SigmaFloor {
		if pr.SigmaFloor[k] > 0 {
			pr.SigmaFloor[k] = 1e-9
		}
	}
	cls, err := NewClassification(ds, model.DefaultSpec(ds), pr, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.PruneClasses = false
	eng := mustEngine(t, ds, cls, cfg)
	if err := eng.InitRandom(3); err != nil {
		t.Fatal(err)
	}
	last := math.Inf(-1)
	for cyc := 0; cyc < 30; cyc++ {
		if _, err := eng.BaseCycle(); err != nil {
			t.Fatal(err)
		}
		if cls.LogLik < last-1e-6*math.Abs(last) {
			t.Fatalf("cycle %d: log likelihood decreased %v -> %v", cyc, last, cls.LogLik)
		}
		last = cls.LogLik
	}
}

func TestRunConvergesOnSeparatedClusters(t *testing.T) {
	ds := paperDS(t, 2000)
	cls := mustClassification(t, ds, 5)
	eng := mustEngine(t, ds, cls, DefaultConfig())
	if err := eng.InitRandom(4); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge in %d cycles", res.Cycles)
	}
	if res.Cycles < 2 {
		t.Fatalf("converged suspiciously fast: %d cycles", res.Cycles)
	}
	// History must be recorded for every cycle.
	if len(res.History) != res.Cycles {
		t.Fatalf("history has %d entries for %d cycles", len(res.History), res.Cycles)
	}
	// Final posterior must beat the first cycle's.
	if res.History[len(res.History)-1] < res.History[0] {
		t.Fatalf("posterior fell over the run: %v -> %v", res.History[0], res.History[len(res.History)-1])
	}
}

func TestRunIsDeterministic(t *testing.T) {
	ds := paperDS(t, 600)
	run := func() *Classification {
		cls := mustClassification(t, ds, 4)
		eng := mustEngine(t, ds, cls, DefaultConfig())
		if err := eng.InitRandom(7); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return cls
	}
	a, b := run(), run()
	if a.LogPost != b.LogPost || a.J() != b.J() || a.Cycles != b.Cycles {
		t.Fatalf("same seed diverged: %v/%d vs %v/%d", a.LogPost, a.J(), b.LogPost, b.J())
	}
	for j := range a.Classes {
		pa, pb := a.Classes[j].Terms[0].Params(), b.Classes[j].Terms[0].Params()
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("class %d params diverged", j)
			}
		}
	}
}

func TestPruningRemovesEmptyClasses(t *testing.T) {
	// Ask for far more classes than the 5 real clusters can support; after
	// convergence some must have died.
	ds := paperDS(t, 1500)
	cls := mustClassification(t, ds, 32)
	cfg := DefaultConfig()
	cfg.MaxCycles = 60
	eng := mustEngine(t, ds, cls, cfg)
	if err := eng.InitRandom(5); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if cls.J() >= 32 {
		t.Fatalf("no classes pruned from 32 (J=%d)", cls.J())
	}
	if cls.J() < 1 {
		t.Fatalf("all classes pruned")
	}
	// Weights matrix must track the new width.
	if len(eng.wts) != ds.N()*cls.J() {
		t.Fatalf("wts len %d != %d", len(eng.wts), ds.N()*cls.J())
	}
}

func TestRecoversPlantedClusters(t *testing.T) {
	// On well-separated data the engine must find means close to the
	// planted components.
	mix := datagen.PaperMixture()
	ds, _, err := mix.Generate(4000, 11)
	if err != nil {
		t.Fatal(err)
	}
	cls := mustClassification(t, ds, 5)
	cfg := DefaultConfig()
	cfg.MaxCycles = 100
	eng := mustEngine(t, ds, cls, cfg)
	if err := eng.InitRandom(6); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if cls.J() != 5 {
		t.Fatalf("expected 5 classes to survive, got %d", cls.J())
	}
	// Every planted mean must be within 0.5 of some recovered class mean.
	for _, comp := range mix.Components {
		found := false
		for _, cl := range cls.Classes {
			mx := cl.Terms[0].Params()[0]
			my := cl.Terms[1].Params()[0]
			dx, dy := mx-comp.Mean[0], my-comp.Mean[1]
			if math.Sqrt(dx*dx+dy*dy) < 0.5 {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("planted cluster at %v not recovered", comp.Mean)
		}
	}
}

func TestPredictMembership(t *testing.T) {
	ds := paperDS(t, 1000)
	cls := mustClassification(t, ds, 5)
	eng := mustEngine(t, ds, cls, DefaultConfig())
	if err := eng.InitRandom(8); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Probabilities normalized, hard assignment consistent.
	for i := 0; i < 50; i++ {
		row := ds.Row(i)
		p := cls.Predict(row)
		if !stats.AlmostEqual(stats.Sum(p), 1, 1e-9) {
			t.Fatalf("membership sums to %v", stats.Sum(p))
		}
		hard := cls.HardAssign(row)
		for j := range p {
			if p[j] > p[hard] {
				t.Fatalf("hard assignment %d not argmax", hard)
			}
		}
	}
}

func TestPackedEqualsPerTermSequentially(t *testing.T) {
	// Granularity changes only the exchange pattern; sequentially the two
	// must be bit-identical.
	ds := paperDS(t, 400)
	run := func(g Granularity) *Classification {
		cls := mustClassification(t, ds, 4)
		cfg := DefaultConfig()
		cfg.Granularity = g
		eng := mustEngine(t, ds, cls, cfg)
		if err := eng.InitRandom(9); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return cls
	}
	a, b := run(PerTerm), run(Packed)
	if a.LogPost != b.LogPost || a.J() != b.J() {
		t.Fatalf("granularity changed the result: %v vs %v", a.LogPost, b.LogPost)
	}
}

func TestChargerReceivesOps(t *testing.T) {
	ds := paperDS(t, 200)
	cls := mustClassification(t, ds, 3)
	var total float64
	ch := chargerFunc(func(u float64) { total += u })
	eng, err := NewEngine(ds.All(), cls, DefaultConfig(), nil, ch)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.InitRandom(1); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.BaseCycle(); err != nil {
		t.Fatal(err)
	}
	// One cycle charges at least n·J·(A+1) + n·J·A with n=200, J=3, A=2.
	minWant := float64(200*3*3 + 200*3*2)
	if total < minWant {
		t.Fatalf("charged %v ops, want at least %v", total, minWant)
	}
}

type chargerFunc func(float64)

func (f chargerFunc) ChargeOps(u float64) { f(u) }

func TestMissingDataRunsClean(t *testing.T) {
	ds := paperDS(t, 800)
	if _, err := datagen.InjectMissing(ds, 0.15, 3); err != nil {
		t.Fatal(err)
	}
	cls := mustClassification(t, ds, 4)
	eng := mustEngine(t, ds, cls, DefaultConfig())
	if err := eng.InitRandom(10); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(cls.LogPost) || math.IsInf(cls.LogPost, 0) {
		t.Fatalf("posterior %v with missing data", cls.LogPost)
	}
	if res.Cycles == 0 {
		t.Fatal("no cycles ran")
	}
}

func TestScorePenalizesComplexity(t *testing.T) {
	// Same fit quality, more parameters => lower score.
	ds := paperDS(t, 500)
	a := mustClassification(t, ds, 2)
	b := mustClassification(t, ds, 10)
	a.LogLik, a.LogPrior, a.LogPost = -100, 0, -100
	b.LogLik, b.LogPrior, b.LogPost = -100, 0, -100
	if a.Score() <= b.Score() {
		t.Fatalf("score did not penalize parameters: %v vs %v", a.Score(), b.Score())
	}
}

func TestCloneIndependence(t *testing.T) {
	ds := paperDS(t, 100)
	cls := mustClassification(t, ds, 3)
	clone := cls.Clone()
	cls.Classes[0].LogPi = -99
	cls.Classes[0].Terms[0].SetParams([]float64{42, 1})
	if clone.Classes[0].LogPi == -99 {
		t.Fatal("clone shares class state")
	}
	if clone.Classes[0].Terms[0].Params()[0] == 42 {
		t.Fatal("clone shares term state")
	}
}

func TestNumFreeParams(t *testing.T) {
	ds := paperDS(t, 100)
	cls := mustClassification(t, ds, 3)
	// 2 real attrs × 2 params × 3 classes + (3−1) class weights = 14.
	if got := cls.NumFreeParams(); got != 14 {
		t.Fatalf("NumFreeParams = %d, want 14", got)
	}
	if got := cls.NumAttrColumns(); got != 2 {
		t.Fatalf("NumAttrColumns = %d", got)
	}
}

func TestMixedTypesEndToEnd(t *testing.T) {
	spec := datagen.ProteinMixture()
	ds, _, err := spec.Generate(2000, 21)
	if err != nil {
		t.Fatal(err)
	}
	cls := mustClassification(t, ds, 4)
	eng := mustEngine(t, ds, cls, DefaultConfig())
	if err := eng.InitRandom(12); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Logf("mixed-type run hit the cycle cap (acceptable): %d cycles", res.Cycles)
	}
	if cls.J() < 2 {
		t.Fatalf("mixed-type data collapsed to %d classes", cls.J())
	}
}

func TestCorrelatedSpecEndToEnd(t *testing.T) {
	ds := paperDS(t, 1000)
	pr := model.NewPriors(ds, ds.Summarize())
	cls, err := NewClassification(ds, model.CorrelatedSpec(ds), pr, 5)
	if err != nil {
		t.Fatal(err)
	}
	eng := mustEngine(t, ds, cls, DefaultConfig())
	if err := eng.InitRandom(13); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(cls.LogPost) {
		t.Fatal("NaN posterior under correlated spec")
	}
}

func TestLogNormalSpecEndToEnd(t *testing.T) {
	ds, labels, err := datagen.LogNormalMixture(3000, 17)
	if err != nil {
		t.Fatal(err)
	}
	// A single random initialization can land in a local optimum that
	// merges the two upper components; the BIG_LOOP's restarts are exactly
	// the cure, so test through the search.
	cfg := DefaultSearchConfig()
	cfg.StartJList = []int{3}
	cfg.Tries = 4
	cfg.EM.MaxCycles = 100
	res, err := Search(ds, model.LogNormalSpec(ds), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	cls := res.Best
	if cls.J() != 3 {
		t.Fatalf("expected 3 log-normal components, got %d", cls.J())
	}
	// Medians near 10, 200, 5000: check each planted median is close (in
	// log space) to some recovered class.
	for _, med := range []float64{10, 200, 5000} {
		found := false
		for _, cl := range cls.Classes {
			if math.Abs(cl.Terms[0].Params()[0]-math.Log(med)) < 0.4 {
				found = true
			}
		}
		if !found {
			t.Fatalf("median %v not recovered", med)
		}
	}
	// Cluster purity: hard assignments should agree strongly with labels.
	agree := 0
	assign := make(map[[2]int]int)
	for i := 0; i < ds.N(); i++ {
		assign[[2]int{labels[i], cls.HardAssign(ds.Row(i))}]++
	}
	for l := 0; l < 3; l++ {
		best := 0
		for c := 0; c < 3; c++ {
			if assign[[2]int{l, c}] > best {
				best = assign[[2]int{l, c}]
			}
		}
		agree += best
	}
	if frac := float64(agree) / float64(ds.N()); frac < 0.9 {
		t.Fatalf("log-normal clustering purity %.2f", frac)
	}
}

// failingReducer simulates a communication failure after n reductions.
type failingReducer struct{ budget int }

func (f *failingReducer) ReduceInPlace(buf []float64) error {
	if f.budget <= 0 {
		return fmt.Errorf("injected reducer failure")
	}
	f.budget--
	return nil
}

func TestEngineSurfacesReducerFailure(t *testing.T) {
	ds := paperDS(t, 200)
	cls := mustClassification(t, ds, 3)
	eng, err := NewEngine(ds.All(), cls, DefaultConfig(), &failingReducer{budget: 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.InitRandom(1); err != nil {
		t.Fatal(err)
	}
	_, err = eng.Run()
	if err == nil {
		t.Fatal("engine swallowed a reducer failure")
	}
	if !strings.Contains(err.Error(), "injected") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestEngineSurfacesInitReducerFailure(t *testing.T) {
	ds := paperDS(t, 200)
	cls := mustClassification(t, ds, 3)
	eng, err := NewEngine(ds.All(), cls, DefaultConfig(), &failingReducer{budget: 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.InitRandom(1); err == nil {
		t.Fatal("InitRandom swallowed a reducer failure")
	}
}
