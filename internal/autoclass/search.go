package autoclass

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/trace"
)

// PaperStartJList is the start_j_list the paper's experiments use (§4).
var PaperStartJList = []int{2, 4, 8, 16, 24, 50, 64}

// SearchConfig controls the model-level search — AutoClass's BIG_LOOP
// (paper Fig. 2): select a number of classes, run a new classification try,
// eliminate duplicates, keep the best.
type SearchConfig struct {
	// StartJList are the starting class counts to try.
	StartJList []int
	// Tries is the number of random restarts per starting J.
	Tries int
	// Seed drives every random decision; runs with equal seeds are
	// identical.
	Seed uint64
	// EM configures the parameter-level search of each try.
	EM Config
	// DupScoreTol is the relative score difference below which two
	// converged tries with the same final J are considered duplicate
	// solutions.
	DupScoreTol float64
}

// DefaultSearchConfig returns the paper-equivalent search settings.
func DefaultSearchConfig() SearchConfig {
	return SearchConfig{
		StartJList:  append([]int(nil), PaperStartJList...),
		Tries:       2,
		Seed:        1,
		EM:          DefaultConfig(),
		DupScoreTol: 1e-4,
	}
}

func (c SearchConfig) validate() error {
	if len(c.StartJList) == 0 {
		return errors.New("autoclass: empty StartJList")
	}
	for _, j := range c.StartJList {
		if j < 1 {
			return fmt.Errorf("autoclass: start J %d < 1", j)
		}
	}
	if c.Tries < 1 {
		return errors.New("autoclass: Tries < 1")
	}
	if c.DupScoreTol < 0 {
		return errors.New("autoclass: negative DupScoreTol")
	}
	return c.EM.validate()
}

// TryResult records one classification try.
type TryResult struct {
	// StartJ is the requested class count; FinalJ the count after pruning.
	StartJ, FinalJ int
	// Try indexes the restart within StartJ.
	Try int
	// Seed is the try's derived initialization seed.
	Seed uint64
	// Cycles and Converged summarize the EM run.
	Cycles    int
	Converged bool
	// LogLik, LogPost and Score are the final quality measures.
	LogLik, LogPost, Score float64
	// Duplicate marks tries discarded by duplicate elimination.
	Duplicate bool
}

// SearchResult is the outcome of a BIG_LOOP search.
type SearchResult struct {
	// Best is the highest-scoring non-duplicate classification.
	Best *Classification
	// BestTry is its try record.
	BestTry TryResult
	// Tries records every try in execution order.
	Tries []TryResult
	// Totals accumulates the EM phase statistics over all tries — the
	// input to the §3.1 profile table.
	Totals EMResult
}

// TrialRunner executes one classification try: build a classification with
// startJ classes, initialize it from seed, and run EM to convergence. The
// sequential and parallel engines plug in here; the BIG_LOOP logic above it
// is identical (and in the parallel case runs replicated on every rank,
// driven entirely by globally reduced quantities, so all ranks make the
// same decisions).
type TrialRunner func(startJ int, seed uint64) (*Classification, EMResult, error)

// SearchWith drives the BIG_LOOP over an arbitrary TrialRunner.
func SearchWith(run TrialRunner, cfg SearchConfig) (*SearchResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	seeds := rng.New(cfg.Seed)
	res := &SearchResult{}
	bestScore := math.Inf(-1)
	for _, startJ := range cfg.StartJList {
		for try := 0; try < cfg.Tries; try++ {
			trySeed := seeds.Uint64()
			cls, em, err := run(startJ, trySeed)
			if err != nil {
				return nil, fmt.Errorf("autoclass: try J=%d #%d: %w", startJ, try, err)
			}
			tr := TryResult{
				StartJ:    startJ,
				FinalJ:    cls.J(),
				Try:       try,
				Seed:      trySeed,
				Cycles:    em.Cycles,
				Converged: em.Converged,
				LogLik:    cls.LogLik,
				LogPost:   cls.LogPost,
				Score:     cls.Score(),
			}
			res.Totals.Cycles += em.Cycles
			res.Totals.WtsSeconds += em.WtsSeconds
			res.Totals.ParamsSeconds += em.ParamsSeconds
			res.Totals.ApproxSeconds += em.ApproxSeconds
			res.Totals.InitSeconds += em.InitSeconds
			res.Totals.ReducedValues += em.ReducedValues
			res.Totals.Reductions += em.Reductions
			// Duplicate elimination (paper Fig. 2): a converged try that
			// lands on an already-seen (final J, score) point is the same
			// local optimum rediscovered.
			for _, prev := range res.Tries {
				if prev.Duplicate || prev.FinalJ != tr.FinalJ {
					continue
				}
				if stats.RelDiff(prev.Score, tr.Score) < cfg.DupScoreTol {
					tr.Duplicate = true
					break
				}
			}
			res.Tries = append(res.Tries, tr)
			if !tr.Duplicate && tr.Score > bestScore {
				bestScore = tr.Score
				res.Best = cls
				res.BestTry = tr
			}
		}
	}
	if res.Best == nil {
		return nil, errors.New("autoclass: search produced no classification")
	}
	return res, nil
}

// Search runs the sequential BIG_LOOP over a whole dataset, deriving priors
// from its summary. charger may be nil.
func Search(ds *dataset.Dataset, spec model.Spec, cfg SearchConfig, charger Charger) (*SearchResult, error) {
	return SearchObserved(ds, spec, cfg, charger, nil, nil)
}

// SearchObserved is Search with per-try engine instrumentation: the phase
// profile and cycle observer, when non-nil, are installed on every try's
// engine — the same wiring the parallel path applies through
// pautoclass.Options. Instrumentation never perturbs the trajectory: the
// result is bitwise identical to Search's.
func SearchObserved(ds *dataset.Dataset, spec model.Spec, cfg SearchConfig,
	charger Charger, profile *trace.Profile, co CycleObserver) (*SearchResult, error) {
	if ds.N() == 0 {
		return nil, errors.New("autoclass: empty dataset")
	}
	pr := model.NewPriors(ds, ds.Summarize())
	runner := func(startJ int, seed uint64) (*Classification, EMResult, error) {
		cls, err := NewClassification(ds, spec, pr, startJ)
		if err != nil {
			return nil, EMResult{}, err
		}
		eng, err := NewEngine(ds.All(), cls, cfg.EM, nil, charger)
		if err != nil {
			return nil, EMResult{}, err
		}
		eng.SetProfile(profile)
		if co != nil {
			eng.SetCycleObserver(co)
		}
		if err := eng.InitRandom(seed); err != nil {
			return nil, EMResult{}, err
		}
		em, err := eng.Run()
		if err != nil {
			return nil, EMResult{}, err
		}
		return cls, em, nil
	}
	return SearchWith(runner, cfg)
}
