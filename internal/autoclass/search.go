package autoclass

import (
	"errors"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/trace"
)

// PaperStartJList is the start_j_list the paper's experiments use (§4).
var PaperStartJList = []int{2, 4, 8, 16, 24, 50, 64}

// SearchConfig controls the model-level search — AutoClass's BIG_LOOP
// (paper Fig. 2): select a number of classes, run a new classification try,
// eliminate duplicates, keep the best.
type SearchConfig struct {
	// StartJList are the starting class counts to try.
	StartJList []int
	// Tries is the number of random restarts per starting J.
	Tries int
	// Seed drives every random decision; runs with equal seeds are
	// identical.
	Seed uint64
	// EM configures the parameter-level search of each try.
	EM Config
	// DupScoreTol is the relative score difference below which two
	// converged tries with the same final J are considered duplicate
	// solutions.
	DupScoreTol float64
	// SearchParallelism runs independent tries as concurrent variants over
	// the shared dataset: 0 and 1 (the default) keep the historical
	// sequential BIG_LOOP, >1 uses that many variant workers, <0 uses
	// runtime.GOMAXPROCS(0). Variants commit in deterministic schedule
	// order, so the result is bitwise identical for every value — see
	// searchsched.go.
	SearchParallelism int
	// BasinEarlyStop cuts variants whose trajectory has flattened inside
	// an already-committed (finalJ, score) basin, recording them as
	// early-stopped duplicates. The decision depends on commit timing, so
	// this is the one knob excluded from the bitwise-identity guarantee;
	// it only takes effect with SearchParallelism > 1 on the native engine
	// paths (Search/SearchObserved and the resumable search).
	BasinEarlyStop bool
}

// DefaultSearchConfig returns the paper-equivalent search settings.
func DefaultSearchConfig() SearchConfig {
	return SearchConfig{
		StartJList:  append([]int(nil), PaperStartJList...),
		Tries:       2,
		Seed:        1,
		EM:          DefaultConfig(),
		DupScoreTol: 1e-4,
	}
}

func (c SearchConfig) validate() error {
	if len(c.StartJList) == 0 {
		return errors.New("autoclass: empty StartJList")
	}
	for _, j := range c.StartJList {
		if j < 1 {
			return fmt.Errorf("autoclass: start J %d < 1", j)
		}
	}
	if c.Tries < 1 {
		return errors.New("autoclass: Tries < 1")
	}
	if c.DupScoreTol < 0 {
		return errors.New("autoclass: negative DupScoreTol")
	}
	return c.EM.validate()
}

// TryResult records one classification try.
type TryResult struct {
	// StartJ is the requested class count; FinalJ the count after pruning.
	StartJ, FinalJ int
	// Try indexes the restart within StartJ.
	Try int
	// Seed is the try's derived initialization seed.
	Seed uint64
	// Cycles and Converged summarize the EM run.
	Cycles    int
	Converged bool
	// LogLik, LogPost and Score are the final quality measures.
	LogLik, LogPost, Score float64
	// Duplicate marks tries discarded by duplicate elimination.
	Duplicate bool
	// EarlyStopped marks tries cut by basin early termination
	// (SearchConfig.BasinEarlyStop); such tries are always also Duplicate.
	EarlyStopped bool
}

// SearchResult is the outcome of a BIG_LOOP search.
type SearchResult struct {
	// Best is the highest-scoring non-duplicate classification.
	Best *Classification
	// BestTry is its try record.
	BestTry TryResult
	// Tries records every try in execution order.
	Tries []TryResult
	// Totals accumulates the EM phase statistics over all tries — the
	// input to the §3.1 profile table.
	Totals EMResult
}

// TrialRunner executes one classification try: build a classification with
// startJ classes, initialize it from seed, and run EM to convergence. The
// sequential and parallel engines plug in here; the BIG_LOOP logic above it
// is identical (and in the parallel case runs replicated on every rank,
// driven entirely by globally reduced quantities, so all ranks make the
// same decisions).
type TrialRunner func(startJ int, seed uint64) (*Classification, EMResult, error)

// SearchWith drives the BIG_LOOP over an arbitrary TrialRunner. With
// SearchParallelism > 1 the runner is invoked from several goroutines at
// once and must be safe for concurrent use; each try's outcome must depend
// only on its (startJ, seed) arguments for the deterministic-commit
// guarantee to hold. The duplicate scan, totals fold and best tracking run
// in schedule order inside the scheduler, so the result is bitwise
// identical to the sequential BIG_LOOP at any worker count.
func SearchWith(run TrialRunner, cfg SearchConfig) (*SearchResult, error) {
	return SearchWithObserver(run, cfg, nil)
}

// SearchWithObserver is SearchWith with a search observer receiving try
// lifecycle events (claims and commit verdicts; cycle events only come
// from the native engine paths, which own the engines). A nil observer is
// exactly SearchWith.
func SearchWithObserver(run TrialRunner, cfg SearchConfig, so SearchObserver) (*SearchResult, error) {
	workers := cfg.SearchWorkers()
	sched, err := NewSearchScheduler(cfg, workers)
	if err != nil {
		return nil, err
	}
	sched.SetObserver(so)
	res, err := sched.run(func(int) TrialRunner { return run }, workers)
	if err != nil {
		return nil, err
	}
	if res.Best == nil {
		return nil, errors.New("autoclass: search produced no classification")
	}
	return res, nil
}

// Search runs the sequential BIG_LOOP over a whole dataset, deriving priors
// from its summary. charger may be nil.
func Search(ds *dataset.Dataset, spec model.Spec, cfg SearchConfig, charger Charger) (*SearchResult, error) {
	return SearchObserved(ds, spec, cfg, charger, nil, nil, nil)
}

// SearchObserved is Search with per-try engine instrumentation: the phase
// profile, cycle observer and search observer, when non-nil, are installed
// on every try's engine — the same wiring the parallel path applies
// through pautoclass.Options. Instrumentation never perturbs the
// trajectory: the result is bitwise identical to Search's.
func SearchObserved(ds *dataset.Dataset, spec model.Spec, cfg SearchConfig,
	charger Charger, profile *trace.Profile, co CycleObserver, so SearchObserver) (*SearchResult, error) {
	if ds.N() == 0 {
		return nil, errors.New("autoclass: empty dataset")
	}
	workers := searchWorkersFor(cfg, charger)
	sched, err := NewSearchScheduler(cfg, workers)
	if err != nil {
		return nil, err
	}
	sched.SetObserver(so)
	pr := model.NewPriors(ds, ds.Summarize())
	makeRunner := nativeRunnerFactory(ds, spec, pr, cfg, charger, profile, co, so, sched, workers)
	res, err := sched.run(makeRunner, workers)
	if err != nil {
		return nil, err
	}
	if res.Best == nil {
		return nil, errors.New("autoclass: search produced no classification")
	}
	return res, nil
}

// searchWorkersFor resolves the variant worker count for the native engine
// paths. A charger (the simulated-network clock) is not safe for
// concurrent use, so charged runs stay sequential regardless of
// SearchParallelism.
func searchWorkersFor(cfg SearchConfig, charger Charger) int {
	if charger != nil {
		return 1
	}
	return cfg.SearchWorkers()
}

// nativeRunnerFactory builds the per-slot TrialRunner of the sequential
// engine paths (Search, SearchObserved and the resumable search). With
// several workers the variants share one dataset view — and through it one
// columnar mirror — and a shared cycle observer is serialized behind a
// lock. Passing a nil scheduler disables basin early termination (used
// when regenerating a lost best, which must never be cut short).
func nativeRunnerFactory(ds *dataset.Dataset, spec model.Spec, pr *model.Priors, cfg SearchConfig,
	charger Charger, profile *trace.Profile, co CycleObserver, so SearchObserver,
	sched *SearchScheduler, workers int) func(slot int) TrialRunner {
	if workers > 1 && co != nil {
		co = &lockedCycleObserver{o: co}
	}
	var sharedView *dataset.View
	if workers > 1 {
		sharedView = ds.All()
	}
	// A TrialRunner only sees (startJ, seed); recover the full Variant for
	// TryCycle events from the deterministic schedule expansion.
	type vkey struct {
		startJ int
		seed   uint64
	}
	var vmap map[vkey]Variant
	var total int
	if so != nil {
		vs := cfg.Variants()
		total = len(vs)
		vmap = make(map[vkey]Variant, total)
		for _, v := range vs {
			vmap[vkey{v.StartJ, v.Seed}] = v
		}
	}
	return func(slot int) TrialRunner {
		return func(startJ int, seed uint64) (*Classification, EMResult, error) {
			view := sharedView
			if view == nil {
				view = ds.All()
			}
			cls, err := NewClassification(ds, spec, pr, startJ)
			if err != nil {
				return nil, EMResult{}, err
			}
			eng, err := NewEngine(view, cls, cfg.EM, nil, charger)
			if err != nil {
				return nil, EMResult{}, err
			}
			eng.SetProfile(profile)
			cyc := co
			if so != nil {
				if v, ok := vmap[vkey{startJ, seed}]; ok {
					cyc = NewTryCycleObserver(so, co, v, total)
				}
			}
			if cyc != nil {
				eng.SetCycleObserver(cyc)
			}
			if cfg.BasinEarlyStop && workers > 1 && sched != nil {
				installBasinStop(eng, cls, sched, cfg.EM)
			}
			if err := eng.InitRandom(seed); err != nil {
				return nil, EMResult{}, err
			}
			em, err := eng.Run()
			if err != nil {
				if errors.Is(err, errBasinStop) {
					// Keep the partial classification and stats: the
					// scheduler commits the try as an early-stopped
					// duplicate.
					return cls, em, err
				}
				return nil, EMResult{}, err
			}
			return cls, em, nil
		}
	}
}
