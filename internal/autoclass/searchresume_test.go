package autoclass

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/model"
)

func resumeCfg() SearchConfig {
	cfg := DefaultSearchConfig()
	cfg.StartJList = []int{2, 4, 5}
	cfg.Tries = 2
	cfg.EM.MaxCycles = 25
	return cfg
}

func TestResumableSearchMatchesPlainSearch(t *testing.T) {
	ds := paperDS(t, 700)
	cfg := resumeCfg()
	spec := model.DefaultSpec(ds)
	plain, err := Search(ds, spec, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	statePath := filepath.Join(t.TempDir(), "state.json")
	resumable, err := SearchWithCheckpointFile(ds, spec, cfg, nil, statePath)
	if err != nil {
		t.Fatal(err)
	}
	if resumable.Best.LogPost != plain.Best.LogPost || resumable.BestTry.Seed != plain.BestTry.Seed {
		t.Fatalf("checkpointed search diverged: %v vs %v", resumable.Best.LogPost, plain.Best.LogPost)
	}
	if len(resumable.Tries) != len(plain.Tries) {
		t.Fatalf("tries %d vs %d", len(resumable.Tries), len(plain.Tries))
	}
	for i := range plain.Tries {
		if resumable.Tries[i].Seed != plain.Tries[i].Seed || resumable.Tries[i].Score != plain.Tries[i].Score {
			t.Fatalf("try %d diverged", i)
		}
	}
}

func TestResumeSkipsCompletedTries(t *testing.T) {
	ds := paperDS(t, 700)
	cfg := resumeCfg()
	spec := model.DefaultSpec(ds)
	statePath := filepath.Join(t.TempDir(), "state.json")

	// Run the full search once, writing state as it goes.
	full, err := SearchWithCheckpointFile(ds, spec, cfg, nil, statePath)
	if err != nil {
		t.Fatal(err)
	}
	// Re-launching with a complete state must not run any engine work:
	// verify via the charger, which only fires inside engine phases.
	var charged float64
	again, err := SearchWithCheckpointFile(ds, spec, cfg,
		chargerFunc(func(u float64) { charged += u }), statePath)
	if err != nil {
		t.Fatal(err)
	}
	if charged != 0 {
		t.Fatalf("resume of a finished search re-ran %v ops", charged)
	}
	if again.Best.LogPost != full.Best.LogPost || len(again.Tries) != len(full.Tries) {
		t.Fatal("re-launched search returned a different result")
	}
}

func TestResumeAfterInterruption(t *testing.T) {
	ds := paperDS(t, 700)
	cfg := resumeCfg()
	spec := model.DefaultSpec(ds)
	dir := t.TempDir()
	statePath := filepath.Join(dir, "state.json")

	// Reference: uninterrupted run.
	ref, err := Search(ds, spec, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	// "Interrupt": run the checkpointed search, then truncate its state to
	// the first 3 completed tries, simulating a kill mid-search.
	if _, err := SearchWithCheckpointFile(ds, spec, cfg, nil, statePath); err != nil {
		t.Fatal(err)
	}
	truncateState(t, statePath, 3)

	// Resume: must redo only tries 4..6 and land on the reference result.
	resumed, err := SearchWithCheckpointFile(ds, spec, cfg, nil, statePath)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Best.LogPost != ref.Best.LogPost {
		t.Fatalf("resumed %v, reference %v", resumed.Best.LogPost, ref.Best.LogPost)
	}
	if len(resumed.Tries) != len(ref.Tries) {
		t.Fatalf("tries %d vs %d", len(resumed.Tries), len(ref.Tries))
	}
	for i := range ref.Tries {
		if resumed.Tries[i].Seed != ref.Tries[i].Seed {
			t.Fatalf("try %d seed diverged after resume", i)
		}
	}
}

// truncateState rewrites the state file keeping only the first n tries and
// recomputing best-so-far from them (as a mid-run snapshot would hold).
func truncateState(t *testing.T, path string, n int) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip through the real struct to stay schema-correct.
	var st searchStateV1
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Completed) < n {
		t.Fatalf("state has only %d tries", len(st.Completed))
	}
	st.Completed = st.Completed[:n]
	// Recompute the best among the kept tries; the embedded Best
	// classification may now be "from the future", so only keep it if its
	// try record survives the truncation.
	best := TryResult{Score: -1e308}
	for _, tr := range st.Completed {
		if !tr.Duplicate && tr.Score > best.Score {
			best = tr
		}
	}
	if st.BestTry != best {
		// The recorded best came from a truncated try: rebuilding it is
		// exactly what a mid-run snapshot would never contain, so emulate
		// the snapshot by keeping the best among kept tries. The stored
		// Best JSON belongs to a kept try only if seeds match.
		st.BestTry = best
		// We cannot reconstruct the classification JSON for `best` here;
		// drop it so the resume rediscovers it. (A real mid-run state file
		// always has Best consistent with Completed; this truncation is
		// harsher than reality, and the search must still recover.)
		st.Best = nil
		st.BestTry = TryResult{}
	}
	if err := writeSearchState(path, &st); err != nil {
		t.Fatal(err)
	}
}

func TestResumeRejectsMismatchedConfig(t *testing.T) {
	ds := paperDS(t, 300)
	cfg := resumeCfg()
	spec := model.DefaultSpec(ds)
	statePath := filepath.Join(t.TempDir(), "state.json")
	if _, err := SearchWithCheckpointFile(ds, spec, cfg, nil, statePath); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Seed++
	if _, err := SearchWithCheckpointFile(ds, spec, other, nil, statePath); err == nil {
		t.Fatal("mismatched config resumed")
	}
	other = cfg
	other.StartJList = []int{3}
	if _, err := SearchWithCheckpointFile(ds, spec, other, nil, statePath); err == nil {
		t.Fatal("mismatched start list resumed")
	}
}

func TestResumeRejectsCorruptState(t *testing.T) {
	ds := paperDS(t, 100)
	cfg := resumeCfg()
	statePath := filepath.Join(t.TempDir(), "state.json")
	if err := os.WriteFile(statePath, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := SearchWithCheckpointFile(ds, model.DefaultSpec(ds), cfg, nil, statePath); err == nil {
		t.Fatal("corrupt state accepted")
	}
	if _, err := SearchWithCheckpointFile(ds, model.DefaultSpec(ds), cfg, nil, ""); err == nil {
		t.Fatal("empty state path accepted")
	}
}
