package autoclass

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/dataset"
	"repro/internal/model"
)

// Streaming ingest training: EM over data that arrives batch by batch.
//
// An EM cycle's global quantities are sums over rows — the class weights,
// the log-likelihood, and every term's sufficient statistics — evaluated
// against parameters frozen at the top of the cycle. Nothing in that
// structure needs the rows to be resident at once: a StreamTrainer holds
// the running sums and folds one mini-batch at a time (a CSV chunk off the
// wire, a chunk faulted from a chunk file), so ingest-time training needs
// only one batch of rows in memory plus O(J · stats) state.
//
// The numerics are NOT approximate. A cycle folded from batches is bitwise
// identical to Engine.BaseCycle on the deterministic sharded path
// (Parallelism >= 1) over the concatenated rows, provided every batch
// except the last is a multiple of KernelBlockRows long: the global block
// grid then lands on the same rows, per-slot additions happen in the same
// ascending order, shard accumulators are merged at the same RowShardSize
// boundaries in the same ascending order, and the reduce sequence (class
// weights first, then the statistics exchange) is preserved. The streaming
// property test pins this equality.
type StreamTrainer struct {
	cls     *Classification
	cfg     Config
	reducer Reducer
	charger Charger

	kerns     [][]model.Kernel
	kernTerms [][]model.Term
	lp        [][]float64
	wcol      []float64

	offs     []int
	combined []float64 // merged shard sums: {w_j..., logLik, stats...}
	shard    []float64 // the open (partial) shard's accumulator
	rows     int       // rows folded into the current cycle

	phase    streamPhase
	seed     uint64
	lastN    int // rows per cycle, fixed by the first completed cycle
	initSecs float64
	t0       time.Time
}

type streamPhase int

const (
	streamIdle streamPhase = iota
	streamInit             // folding the crisp initialization pass
	streamEM               // folding an EM cycle
)

// NewStreamTrainer builds a streaming trainer over the classification. The
// configuration is interpreted as for NewEngine, except that Parallelism
// is ignored (folding is sequential; the caller drives the batches) — the
// trajectory matches an engine running the deterministic sharded path.
// Only the Blocked kernels stream.
func NewStreamTrainer(cls *Classification, cfg Config, red Reducer, ch Charger) (*StreamTrainer, error) {
	if cls == nil {
		return nil, errors.New("autoclass: nil classification")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Kernels != Blocked {
		return nil, errors.New("autoclass: streaming requires the Blocked kernels")
	}
	if cfg.EffectiveSyncEvery() > 1 {
		return nil, errors.New("autoclass: SyncEvery > 1 is not supported when streaming")
	}
	return &StreamTrainer{cls: cls, cfg: cfg, reducer: red, charger: ch}, nil
}

func (st *StreamTrainer) charge(units float64) {
	if st.charger != nil {
		st.charger.ChargeOps(units)
	}
}

func (st *StreamTrainer) reduce(buf []float64) (int, error) {
	if st.reducer == nil {
		return 0, nil
	}
	if err := st.reducer.ReduceInPlace(buf); err != nil {
		return 0, err
	}
	return len(buf), nil
}

// prepare readies kernels, scratch and the accumulators for a new pass.
func (st *StreamTrainer) prepare() {
	classes := st.cls.Classes
	j := len(classes)
	same := len(st.kernTerms) == j
	if same {
	check:
		for cj, cl := range classes {
			if len(st.kernTerms[cj]) != len(cl.Terms) {
				same = false
				break
			}
			for bi, t := range cl.Terms {
				if st.kernTerms[cj][bi] != t {
					same = false
					break check
				}
			}
		}
	}
	if same {
		for _, ks := range st.kerns {
			for _, k := range ks {
				k.Refresh()
			}
		}
	} else {
		st.kerns = make([][]model.Kernel, j)
		st.kernTerms = make([][]model.Term, j)
		for cj, cl := range classes {
			st.kerns[cj] = make([]model.Kernel, len(cl.Terms))
			st.kernTerms[cj] = append([]model.Term(nil), cl.Terms...)
			for bi, t := range cl.Terms {
				st.kerns[cj][bi] = t.Kernel()
			}
		}
	}
	for len(st.lp) < j {
		st.lp = append(st.lp, make([]float64, KernelBlockRows))
	}
	if st.wcol == nil {
		st.wcol = make([]float64, KernelBlockRows)
	}
	offs := st.offs[:0]
	total := 0
	for _, cl := range classes {
		for _, term := range cl.Terms {
			offs = append(offs, total)
			total += term.StatsSize()
		}
	}
	offs = append(offs, total)
	st.offs = offs
	width := j + 1 + total
	if cap(st.combined) < width {
		st.combined = make([]float64, width)
		st.shard = make([]float64, width)
	}
	st.combined = st.combined[:width]
	st.shard = st.shard[:width]
	for i := range st.combined {
		st.combined[i] = 0
		st.shard[i] = 0
	}
	st.rows = 0
}

// BeginInit starts the crisp initialization pass: subsequent Fold calls
// accumulate the hash assignment's class counts and statistics, and
// FinishInit turns them into the initial parameters — the streaming
// equivalent of Engine.InitRandom with the same seed.
func (st *StreamTrainer) BeginInit(seed uint64) error {
	if st.phase != streamIdle {
		return errors.New("autoclass: BeginInit inside an open pass")
	}
	if st.cls.J() < 1 {
		return errors.New("autoclass: no classes to initialize")
	}
	st.t0 = time.Now()
	st.seed = seed
	st.prepare()
	st.phase = streamInit
	return nil
}

// Fold accumulates one mini-batch of rows into the open pass. Every batch
// except the final one must hold a multiple of KernelBlockRows rows, so
// the global block grid is independent of how the stream was batched.
func (st *StreamTrainer) Fold(cols *dataset.Columns) error {
	if st.phase == streamIdle {
		return errors.New("autoclass: Fold outside a pass (call BeginInit or BeginCycle)")
	}
	if st.rows%KernelBlockRows != 0 {
		return fmt.Errorf("autoclass: previous batch ended mid-block (%d rows folded); only the final batch may be partial", st.rows)
	}
	n := cols.N()
	for blo := 0; blo < n; blo += KernelBlockRows {
		bhi := blo + KernelBlockRows
		if bhi > n {
			bhi = n
		}
		if st.phase == streamInit {
			st.foldInitBlock(cols, blo, bhi)
		} else {
			st.foldEMBlock(cols, blo, bhi)
		}
		st.rows += bhi - blo
		if st.rows%RowShardSize == 0 {
			st.mergeShard()
		}
	}
	return nil
}

// mergeShard folds the open shard accumulator into the running totals —
// the ascending-order shard merge of the engine's deterministic path.
func (st *StreamTrainer) mergeShard() {
	for k, v := range st.shard {
		st.combined[k] += v
		st.shard[k] = 0
	}
}

// foldInitBlock accumulates the crisp assignment's class counts and
// statistics for rows [blo, bhi) of the batch — initStatsBlocked with the
// global row index carried by the trainer.
func (st *StreamTrainer) foldInitBlock(cols *dataset.Columns, blo, bhi int) {
	j := st.cls.J()
	m := bhi - blo
	base := st.rows
	wj := st.shard[:j]
	for r := 0; r < m; r++ {
		wj[InitialClass(st.seed, base+r, j)]++
	}
	buf := st.shard[j+1:]
	ti := 0
	for cj, cl := range st.cls.Classes {
		wcol := st.wcol[:m]
		for r := 0; r < m; r++ {
			wcol[r] = 0
			if InitialClass(st.seed, base+r, j) == cj {
				wcol[r] = 1
			}
		}
		for bi := range cl.Terms {
			st.kerns[cj][bi].BlockAccumulateStats(cols, wcol, blo, bhi, buf[st.offs[ti]:st.offs[ti+1]])
			ti++
		}
	}
}

// foldEMBlock is the fused E+M step for rows [blo, bhi) of the batch —
// the exact arithmetic of the engine's fusedRowsBlocked.
func (st *StreamTrainer) foldEMBlock(cols *dataset.Columns, blo, bhi int) {
	j := st.cls.J()
	m := bhi - blo
	wtsOut := st.shard[:j+1]
	buf := st.shard[j+1:]
	for cj, cl := range st.cls.Classes {
		lp := st.lp[cj][:m]
		logPi := cl.LogPi
		for r := range lp {
			lp[r] = logPi
		}
		for _, k := range st.kerns[cj] {
			k.BlockLogProb(cols, blo, bhi, lp)
		}
	}
	for r := 0; r < m; r++ {
		maxv := math.Inf(-1)
		for cj := 0; cj < j; cj++ {
			if v := st.lp[cj][r]; v > maxv {
				maxv = v
			}
		}
		if math.IsInf(maxv, -1) {
			u := 1 / float64(j)
			for cj := 0; cj < j; cj++ {
				st.lp[cj][r] = u
				wtsOut[cj] += u
			}
			continue
		}
		sum := 0.0
		for cj := 0; cj < j; cj++ {
			ev := math.Exp(st.lp[cj][r] - maxv)
			st.lp[cj][r] = ev
			sum += ev
		}
		inv := 1 / sum
		for cj := 0; cj < j; cj++ {
			wv := st.lp[cj][r] * inv
			st.lp[cj][r] = wv
			wtsOut[cj] += wv
		}
		wtsOut[j] += maxv + math.Log(sum)
	}
	ti := 0
	for cj, cl := range st.cls.Classes {
		wcol := st.lp[cj][:m]
		for bi := range cl.Terms {
			st.kerns[cj][bi].BlockAccumulateStats(cols, wcol, blo, bhi, buf[st.offs[ti]:st.offs[ti+1]])
			ti++
		}
	}
}

// closePass merges the trailing partial shard and returns the cycle's row
// count.
func (st *StreamTrainer) closePass() int {
	if st.rows%RowShardSize != 0 || st.rows == 0 {
		st.mergeShard()
	}
	return st.rows
}

// FinishInit completes the initialization pass: class weights from the
// crisp counts, then the statistics exchange that estimates the initial
// parameters — bitwise Engine.InitRandom over the same rows and seed.
func (st *StreamTrainer) FinishInit() error {
	if st.phase != streamInit {
		return errors.New("autoclass: FinishInit without BeginInit")
	}
	n := st.closePass()
	j := st.cls.J()
	st.charge(float64(n))
	if _, err := st.reduce(st.combined[:j]); err != nil {
		return fmt.Errorf("autoclass: init reduce: %w", err)
	}
	for cj, cl := range st.cls.Classes {
		cl.W = st.combined[cj]
	}
	st.cls.UpdateClassWeightsFromW()
	if _, _, err := exchangeClassStats(st.cls, st.cfg.Granularity, st.reduce, st.combined[j+1:], st.offs); err != nil {
		return err
	}
	a := float64(st.cls.NumAttrColumns())
	st.charge(float64(n) * float64(j) * a)
	st.updateApproximations()
	st.lastN = n
	st.phase = streamEM
	st.initSecs = time.Since(st.t0).Seconds()
	st.prepare()
	return nil
}

// InitSeconds reports the wall-clock time of the initialization pass.
func (st *StreamTrainer) InitSeconds() float64 { return st.initSecs }

// Flush completes one EM cycle: the weights reduce, the statistics
// exchange, the posterior refresh and class pruning — bitwise the tail of
// Engine.BaseCycle. The trainer is then ready for the next cycle's Folds.
func (st *StreamTrainer) Flush() (CycleStats, error) {
	var cs CycleStats
	cs.Synced = true
	if st.phase != streamEM {
		return cs, errors.New("autoclass: Flush before initialization")
	}
	t0 := time.Now()
	n := st.closePass()
	if st.lastN != 0 && n != st.lastN {
		return cs, fmt.Errorf("autoclass: cycle folded %d rows, previous cycles folded %d", n, st.lastN)
	}
	j := st.cls.J()
	a := float64(st.cls.NumAttrColumns())
	st.charge(float64(n) * float64(j) * (a + 1))
	wtsOut := st.combined[:j+1]
	v, err := st.reduce(wtsOut)
	if err != nil {
		return cs, fmt.Errorf("autoclass: reduce wts: %w", err)
	}
	if v > 0 {
		cs.ReducedValues += v
		cs.Reductions++
	}
	for cj, cl := range st.cls.Classes {
		cl.W = wtsOut[cj]
	}
	st.cls.LogLik = wtsOut[j]
	cs.WtsSeconds = time.Since(t0).Seconds()

	t1 := time.Now()
	rv, rn, err := exchangeClassStats(st.cls, st.cfg.Granularity, st.reduce, st.combined[j+1:], st.offs)
	if err != nil {
		return cs, err
	}
	cs.ReducedValues += rv
	cs.Reductions += rn
	st.charge(float64(n) * float64(j) * a)
	cs.ParamsSeconds = time.Since(t1).Seconds()

	t2 := time.Now()
	st.updateApproximations()
	cs.ApproxSeconds = time.Since(t2).Seconds()

	st.pruneDeadClasses()
	st.cls.Cycles++
	cs.LogPost = st.cls.LogPost
	st.prepare()
	return cs, nil
}

func (st *StreamTrainer) updateApproximations() {
	st.cls.UpdateClassWeightsFromW()
	st.cls.RefreshPosterior()
	st.charge(float64(st.cls.J()) * float64(st.cls.NumAttrColumns()+4))
}

// pruneDeadClasses mirrors the engine's class-death rule (there is no
// weights matrix to compact on the streaming path).
func (st *StreamTrainer) pruneDeadClasses() {
	if !st.cfg.PruneClasses || st.cls.J() <= 1 {
		return
	}
	j := st.cls.J()
	keep := make([]int, 0, j)
	for cj, cl := range st.cls.Classes {
		if cl.W >= st.cfg.MinClassWeight {
			keep = append(keep, cj)
		}
	}
	if len(keep) == j {
		return
	}
	if len(keep) == 0 {
		best := 0
		for cj, cl := range st.cls.Classes {
			if cl.W > st.cls.Classes[best].W {
				best = cj
			}
		}
		keep = []int{best}
	}
	newClasses := make([]*Class, len(keep))
	for ni, cj := range keep {
		newClasses[ni] = st.cls.Classes[cj]
	}
	st.cls.Classes = newClasses
	st.cls.UpdateClassWeightsFromW()
}

// Classification returns the trainer's (mutated in place) classification.
func (st *StreamTrainer) Classification() *Classification { return st.cls }
