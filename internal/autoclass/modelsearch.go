package autoclass

import (
	"errors"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/model"
)

// The paper's §2 describes AutoClass's two search levels: "parameter level
// search and model level search" — regardless of any parameter values V,
// AutoClass searches for the most probable model form T "from a set of
// possible Ts with different attribute dependencies and class structure".
// SearchModels implements the model level: it runs the BIG_LOOP for every
// candidate model spec (e.g. independent attributes vs. correlated reals
// vs. log-normal scales) and keeps the overall best classification by the
// approximate marginal-likelihood score, which is comparable across model
// forms because it penalizes each form's parameter count.

// SpecCandidate names one model form T.
type SpecCandidate struct {
	// Name labels the candidate in results ("independent", "correlated"…).
	Name string
	// Spec is the model structure.
	Spec model.Spec
}

// StandardSpecCandidates returns the model forms the engine can search
// over for a dataset: independent attributes always; correlated reals when
// the dataset has at least two real attributes; log-normal reals when every
// real attribute is strictly positive.
func StandardSpecCandidates(ds *dataset.Dataset, sum *dataset.Summary) []SpecCandidate {
	out := []SpecCandidate{{Name: "independent", Spec: model.DefaultSpec(ds)}}
	reals := 0
	allPositive := true
	for k := 0; k < ds.NumAttrs(); k++ {
		if ds.Attr(k).Type != dataset.Real {
			continue
		}
		reals++
		if sum != nil && (sum.NonPositive[k] > 0 || sum.Min[k] <= 0) {
			allPositive = false
		}
	}
	if reals >= 2 {
		out = append(out, SpecCandidate{Name: "correlated", Spec: model.CorrelatedSpec(ds)})
	}
	if reals >= 1 && allPositive && sum != nil {
		out = append(out, SpecCandidate{Name: "log-normal", Spec: model.LogNormalSpec(ds)})
	}
	return out
}

// SpecResult is one candidate's search outcome.
type SpecResult struct {
	// Name is the candidate's label.
	Name string
	// Result is the candidate's full BIG_LOOP result.
	Result *SearchResult
}

// ModelSearchResult is the outcome of the model-level search.
type ModelSearchResult struct {
	// Best is the overall best classification; BestSpec its candidate name.
	Best     *Classification
	BestSpec string
	// PerSpec records every candidate's search in input order.
	PerSpec []SpecResult
}

// SearchModelsWith drives the model-level search over an arbitrary
// per-spec runner, mirroring SearchWith at the level above.
func SearchModelsWith(run func(cand SpecCandidate) (*SearchResult, error),
	candidates []SpecCandidate) (*ModelSearchResult, error) {
	if len(candidates) == 0 {
		return nil, errors.New("autoclass: no model candidates")
	}
	out := &ModelSearchResult{}
	for _, cand := range candidates {
		res, err := run(cand)
		if err != nil {
			return nil, fmt.Errorf("autoclass: model %q: %w", cand.Name, err)
		}
		out.PerSpec = append(out.PerSpec, SpecResult{Name: cand.Name, Result: res})
		if out.Best == nil || res.Best.Score() > out.Best.Score() {
			out.Best = res.Best
			out.BestSpec = cand.Name
		}
	}
	return out, nil
}

// SearchModels runs the sequential two-level search: for every candidate
// model form, the full BIG_LOOP; the best classification across forms wins.
func SearchModels(ds *dataset.Dataset, candidates []SpecCandidate, cfg SearchConfig, charger Charger) (*ModelSearchResult, error) {
	if ds.N() == 0 {
		return nil, errors.New("autoclass: empty dataset")
	}
	return SearchModelsWith(func(cand SpecCandidate) (*SearchResult, error) {
		return Search(ds, cand.Spec, cfg, charger)
	}, candidates)
}
