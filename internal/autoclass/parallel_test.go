package autoclass

import (
	"math"
	"sync"
	"testing"
)

func TestNumRowShards(t *testing.T) {
	cases := []struct{ n, want int }{
		{-5, 0}, {0, 0}, {1, 1}, {RowShardSize, 1},
		{RowShardSize + 1, 2}, {3 * RowShardSize, 3}, {3*RowShardSize + 7, 4},
	}
	for _, c := range cases {
		if got := NumRowShards(c.n); got != c.want {
			t.Errorf("NumRowShards(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestRowShardRangesTile(t *testing.T) {
	for _, n := range []int{1, RowShardSize - 1, RowShardSize, RowShardSize + 1, 5*RowShardSize + 13} {
		shards := NumRowShards(n)
		next := 0
		for s := 0; s < shards; s++ {
			lo, hi := RowShardRange(s, n)
			if lo != next || hi <= lo || hi > n {
				t.Fatalf("n=%d shard %d: range [%d,%d) after %d", n, s, lo, hi, next)
			}
			next = hi
		}
		if next != n {
			t.Fatalf("n=%d: shards cover %d rows", n, next)
		}
	}
}

func TestEffectiveParallelism(t *testing.T) {
	for _, c := range []struct{ in, wantMin int }{{0, 1}, {1, 1}, {4, 4}} {
		cfg := Config{Parallelism: c.in}
		if got := cfg.EffectiveParallelism(); got != c.wantMin {
			t.Errorf("Parallelism %d resolves to %d, want %d", c.in, got, c.wantMin)
		}
	}
	cfg := Config{Parallelism: -1}
	if got := cfg.EffectiveParallelism(); got < 1 {
		t.Errorf("negative Parallelism resolves to %d", got)
	}
	if got := (Config{Parallelism: 16}).Workers(3); got != 3 {
		t.Errorf("Workers capped at shard count: got %d", got)
	}
}

func TestParallelForCoversEveryShardOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		for _, shards := range []int{0, 1, 5, 37} {
			var mu sync.Mutex
			hits := make([]int, shards)
			ParallelFor(workers, shards, func(worker, s int) {
				mu.Lock()
				hits[s]++
				mu.Unlock()
			})
			for s, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d shards=%d: shard %d run %d times", workers, shards, s, h)
				}
			}
		}
	}
}

// TestParallelismBitwiseIndependentOfWorkers is the determinism invariant:
// because shard boundaries depend only on the row count and per-shard
// accumulators merge in fixed shard order, every Parallelism >= 1 must
// produce bit-for-bit identical trajectories — this is what keeps the
// replicated SPMD search coordinated when ranks run different worker counts.
func TestParallelismBitwiseIndependentOfWorkers(t *testing.T) {
	ds := paperDS(t, 3*RowShardSize+57)
	run := func(par int) []float64 {
		cfg := DefaultConfig()
		cfg.MaxCycles = 8
		cfg.Parallelism = par
		cls := mustClassification(t, ds, 4)
		eng := mustEngine(t, ds, cls, cfg)
		if err := eng.InitRandom(7); err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.History
	}
	want := run(1)
	for _, par := range []int{2, 3, 8, -1} {
		got := run(par)
		if len(got) != len(want) {
			t.Fatalf("Parallelism %d: %d cycles vs %d", par, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("Parallelism %d cycle %d: logpost %v != %v (bitwise)", par, i, got[i], want[i])
			}
		}
	}
}

// The sharded path reassociates the accumulator sums (per shard, then a
// fixed-order merge), so it is not bitwise equal to the legacy sequential
// path — but it must agree to floating-point reduction tolerance.
func TestParallelCloseToSequential(t *testing.T) {
	ds := paperDS(t, 2*RowShardSize+31)
	run := func(par int) []float64 {
		cfg := DefaultConfig()
		cfg.MaxCycles = 8
		cfg.Parallelism = par
		cls := mustClassification(t, ds, 4)
		eng := mustEngine(t, ds, cls, cfg)
		if err := eng.InitRandom(7); err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.History
	}
	seq, par := run(0), run(1)
	if len(seq) != len(par) {
		t.Fatalf("cycle counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if rel := math.Abs(seq[i]-par[i]) / math.Abs(seq[i]); rel > 1e-9 {
			t.Fatalf("cycle %d: sequential %v vs sharded %v (rel %v)", i, seq[i], par[i], rel)
		}
	}
}
