package autoclass

import (
	"errors"
	"math"

	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/stats"
)

// Batch inference: applying a fitted Classification to new cases at scale.
//
// Training amortizes one model over many EM cycles; serving inverts the
// ratio — one fitted model is applied to an unbounded stream of fresh rows,
// so the per-row cost of the E-step dominates everything. The batch scorer
// therefore reuses the engine's blocked machinery (dataset.Columns mirror,
// model.Kernel per (class, term), fused per-block normalization) for a hot
// path with zero interface calls per row, and the per-row Term path as the
// reference oracle the blocked results are tested against.
//
// Determinism mirrors the training engine's invariant: the shard and block
// grids depend only on the row count, per-shard log-likelihood partial sums
// are merged in ascending shard order, and per-row outputs are written to
// disjoint slices — so results are bitwise identical for every
// Parallelism >= 1 within a kernel mode. On chunk-backed datasets the
// scorer walks the chunk plane through per-worker cursors; the block grid
// never straddles a chunk (KernelBlockRows == ChunkAlign), so results are
// also bitwise identical across chunk backings and sizes.

// PredictConfig controls the batch scorer. The zero value is the fast path:
// blocked kernels on a single worker.
type PredictConfig struct {
	// Parallelism selects the worker count, with the same encoding as
	// Config.Parallelism: 0 or 1 one worker, >1 that many worker
	// goroutines, <0 runtime.GOMAXPROCS(0). Results are bitwise identical
	// for every value within a kernel mode.
	Parallelism int
	// Kernels selects Blocked (columnar kernels, the default) or Reference
	// (the per-row Term oracle). Chunk-backed datasets require Blocked.
	Kernels KernelMode
	// RowLogLik additionally records each row's log-evidence
	// log Σ_j π_j·p(x_i|j) in Prediction.RowLL (−Inf for rows contributing
	// no evidence). The serving tier uses it to recover a sub-batch's
	// LogLik bitwise via FoldRowLogLik after scoring a coalesced batch.
	RowLogLik bool
}

// Prediction is the batch scoring result over n cases.
type Prediction struct {
	// J is the class count of the scoring classification.
	J int
	// Memberships holds the normalized posterior class memberships, n×J
	// row-major: Memberships[i*J+j] = P(class j | case i). Missing
	// attributes contribute no evidence, so a fully-missing row falls back
	// to the prior mixing weights; a row scoring -Inf in every class (not
	// reachable for in-support data) gets the uniform 1/J membership,
	// matching the training engine's convention.
	Memberships []float64
	// MAP[i] is case i's maximum-a-posteriori class: the first class
	// attaining the row's maximum membership.
	MAP []int
	// LogLik is the total held-out log-likelihood Σ_i log Σ_j π_j·p(x_i|j).
	// All-missing rows contribute nothing, matching HeldoutLogLik.
	LogLik float64
	// RowLL, filled only under PredictConfig.RowLogLik, holds each row's
	// log-evidence z_i = log Σ_j π_j·p(x_i|j). A fully-missing row falls
	// back to the prior weights (z = log Σ π_j ≈ 0); a row scoring −Inf
	// in every class (not reachable for in-support data) records −Inf.
	// FoldRowLogLik over any slice of RowLL reproduces that slice's
	// standalone LogLik bitwise.
	RowLL []float64
}

// N returns the number of scored cases.
func (p *Prediction) N() int {
	if p.J == 0 {
		return 0
	}
	return len(p.Memberships) / p.J
}

// Membership returns case i's posterior membership vector (a read-only
// alias into Memberships).
func (p *Prediction) Membership(i int) []float64 {
	return p.Memberships[i*p.J : (i+1)*p.J]
}

// reset sizes the result buffers for n cases and j classes, reusing the
// backing arrays when they are large enough — a repeated PredictInto over
// same-shaped batches allocates nothing here.
func (p *Prediction) reset(n, j int, rowLL bool) {
	p.J = j
	p.LogLik = 0
	if cap(p.Memberships) < n*j {
		p.Memberships = make([]float64, n*j)
	} else {
		p.Memberships = p.Memberships[:n*j]
	}
	if cap(p.MAP) < n {
		p.MAP = make([]int, n)
	} else {
		p.MAP = p.MAP[:n]
	}
	if !rowLL {
		p.RowLL = p.RowLL[:0]
	} else if cap(p.RowLL) < n {
		p.RowLL = make([]float64, n)
	} else {
		p.RowLL = p.RowLL[:n]
	}
}

// Predict scores every row of ds under the fitted classification — the
// batch inference entry point. See PredictView for scoring a window.
func Predict(cls *Classification, ds *dataset.Dataset, cfg PredictConfig) (*Prediction, error) {
	if ds == nil {
		return nil, errors.New("autoclass: nil dataset")
	}
	return PredictView(cls, ds.All(), cfg)
}

// PredictView scores every row of the view under the fitted classification:
// per-case posterior memberships, the MAP class, and the total held-out
// log-likelihood. The view's dataset must be schema-compatible with the
// classification's spec; the rows themselves are new data the search never
// saw. Safe for concurrent calls on the same classification (each call
// builds its own Predictor; the scorer never mutates the classification).
func PredictView(cls *Classification, view *dataset.View, cfg PredictConfig) (*Prediction, error) {
	pr, err := NewPredictor(cls, cfg)
	if err != nil {
		return nil, err
	}
	return pr.PredictView(view)
}

// Predictor is a reusable batch scorer over one fitted classification. It
// caches the per-(class, term) kernels, the per-worker scratch and the
// result buffers across calls, keyed on term identity — in a serving loop
// over same-shaped batches the steady state performs zero allocations
// (kernels are merely Refreshed against the parameters). A Predictor is
// NOT safe for concurrent use; for concurrent scoring build one Predictor
// per goroutine (or use the PredictView function, which does exactly
// that). The classification itself is only read.
type Predictor struct {
	cls *Classification
	cfg PredictConfig

	kerns     [][]model.Kernel
	kernTerms [][]model.Term
	scratch   []*predictScratch
	lls       []float64
	lastDS    *dataset.Dataset // last schema-validated dataset

	// The shard loop body is built once and bound to these per-call fields
	// so a warm PredictInto never allocates a fresh closure.
	loop func(worker, shard int)
	curP *Prediction
	curN int

	// Per-call data plane: the monolithic column mirror on a materialized
	// view, or the chunk source walked by per-worker cursors on a
	// chunk-backed one.
	view    *dataset.View
	cols    *dataset.Columns
	chunked bool
	src     dataset.ChunkSrc
}

// predictScratch is one worker's scratch: per-class log-probability block
// vectors (blocked) or a single per-row log-membership vector (reference),
// plus — on chunk-backed views — the worker's chunk cursor.
type predictScratch struct {
	lp   [][]float64
	logp []float64
	cur  dataset.ChunkCursor
}

// NewPredictor validates the configuration and builds a reusable scorer.
func NewPredictor(cls *Classification, cfg PredictConfig) (*Predictor, error) {
	if cls == nil {
		return nil, errors.New("autoclass: nil classification")
	}
	if cfg.Kernels != Blocked && cfg.Kernels != Reference {
		return nil, errors.New("autoclass: unknown kernel mode")
	}
	return &Predictor{cls: cls, cfg: cfg}, nil
}

// Predict scores every row of ds. See PredictInto for buffer reuse.
func (pr *Predictor) Predict(ds *dataset.Dataset) (*Prediction, error) {
	if ds == nil {
		return nil, errors.New("autoclass: nil dataset")
	}
	return pr.PredictView(ds.All())
}

// PredictView scores every row of the view into a fresh Prediction.
func (pr *Predictor) PredictView(view *dataset.View) (*Prediction, error) {
	p := &Prediction{}
	if err := pr.PredictInto(view, p); err != nil {
		return nil, err
	}
	return p, nil
}

// PredictInto scores every row of the view into p, reusing p's buffers
// when they are large enough. This is the zero-allocation serving path:
// with a warm Predictor and a same-shaped batch, neither the scorer nor
// the result allocates.
func (pr *Predictor) PredictInto(view *dataset.View, p *Prediction) error {
	if view == nil || p == nil {
		return errors.New("autoclass: nil view or prediction")
	}
	if ds := view.Dataset(); ds != pr.lastDS {
		if err := pr.cls.Spec.Validate(ds); err != nil {
			return err
		}
		pr.lastDS = ds
	}
	n := view.N()
	j := pr.cls.J()
	p.reset(n, j, pr.cfg.RowLogLik)
	if n == 0 {
		return nil
	}
	pr.view = view
	pr.chunked = view.Dataset().Chunked()
	if pr.chunked {
		if pr.cfg.Kernels != Blocked {
			return errors.New("autoclass: Reference kernels require a materialized dataset")
		}
		src, err := view.ChunkSrc()
		if err != nil {
			return err
		}
		pr.src = src
		pr.cols = nil
	} else if pr.cfg.Kernels == Blocked {
		pr.cols = view.Columns()
	}
	if pr.cfg.Kernels == Blocked {
		pr.prepareKernels()
	}
	// Unlike the training engine, there is no seed-sequential legacy mode to
	// preserve: the scorer always runs on the fixed shard grid, so every
	// Parallelism value — including 0 — accumulates the log-likelihood in
	// the same per-shard grouping and the result is bitwise identical.
	shards := NumRowShards(n)
	workers := pr.prepare(Config{Parallelism: pr.cfg.Parallelism}.Workers(shards))
	if cap(pr.lls) < shards {
		pr.lls = make([]float64, shards)
	}
	lls := pr.lls[:shards]
	pr.curP, pr.curN = p, n
	if pr.loop == nil {
		pr.loop = func(worker, s int) {
			lo, hi := RowShardRange(s, pr.curN)
			pr.lls[s] = pr.scoreRows(lo, hi, pr.curP, pr.scratch[worker])
		}
	}
	ParallelFor(len(workers), shards, pr.loop)
	pr.curP = nil
	if pr.chunked {
		for _, ps := range pr.scratch {
			ps.cur.Close()
		}
	}
	// Ascending-shard merge keeps the total bitwise identical for every
	// worker count.
	for _, ll := range lls {
		p.LogLik += ll
	}
	return nil
}

// prepareKernels builds (or, when the term structure is unchanged,
// Refreshes) one kernel per (class, term) — the same identity-keyed cache
// the training engine uses, so repeated predictions over a stable model
// allocate nothing here.
func (pr *Predictor) prepareKernels() {
	classes := pr.cls.Classes
	same := len(pr.kernTerms) == len(classes)
	if same {
	check:
		for cj, cl := range classes {
			if len(pr.kernTerms[cj]) != len(cl.Terms) {
				same = false
				break
			}
			for bi, t := range cl.Terms {
				if pr.kernTerms[cj][bi] != t {
					same = false
					break check
				}
			}
		}
	}
	if same {
		for _, ks := range pr.kerns {
			for _, k := range ks {
				k.Refresh()
			}
		}
		return
	}
	pr.kerns = make([][]model.Kernel, len(classes))
	pr.kernTerms = make([][]model.Term, len(classes))
	for cj, cl := range classes {
		pr.kerns[cj] = make([]model.Kernel, len(cl.Terms))
		pr.kernTerms[cj] = append([]model.Term(nil), cl.Terms...)
		for bi, t := range cl.Terms {
			pr.kerns[cj][bi] = t.Kernel()
		}
	}
}

// prepare returns `workers` scratch instances, reused across calls and
// grown on demand. On a chunk-backed view each worker's cursor is pointed
// at the view's chunk source.
func (pr *Predictor) prepare(workers int) []*predictScratch {
	j := pr.cls.J()
	for len(pr.scratch) < workers {
		pr.scratch = append(pr.scratch, &predictScratch{})
	}
	for w := 0; w < workers; w++ {
		ps := pr.scratch[w]
		if pr.cfg.Kernels == Blocked {
			for len(ps.lp) < j {
				ps.lp = append(ps.lp, make([]float64, KernelBlockRows))
			}
		} else if len(ps.logp) < j {
			ps.logp = make([]float64, j)
		}
		if pr.chunked {
			ps.cur.Reset(pr.src)
		}
	}
	return pr.scratch[:workers]
}

// block resolves the view-local row block [blo, bhi) to the Columns the
// kernels should walk — the monolithic mirror, or the cursor-pinned chunk
// with chunk-local bounds.
func (pr *Predictor) block(ps *predictScratch, blo, bhi int) (cols *dataset.Columns, lo, hi int) {
	if pr.chunked {
		return ps.cur.Block(blo, bhi)
	}
	return pr.cols, blo, bhi
}

// scoreRows scores rows [lo, hi) into p and returns their log-likelihood
// contribution. Disjoint row ranges may run concurrently: every write goes
// to a per-row slice of p or the local scratch.
func (pr *Predictor) scoreRows(lo, hi int, p *Prediction, ps *predictScratch) float64 {
	if pr.cfg.Kernels == Blocked {
		return pr.scoreRowsBlocked(lo, hi, p, ps)
	}
	return pr.scoreRowsReference(lo, hi, p, ps)
}

// scoreRowsReference is the per-row oracle: Term.LogProb through
// LogMembership, then NormalizeLog — the exact code path of
// Classification.Predict, row by row.
func (pr *Predictor) scoreRowsReference(lo, hi int, p *Prediction, ps *predictScratch) float64 {
	j := p.J
	ll := 0.0
	for i := lo; i < hi; i++ {
		pr.cls.LogMembership(pr.view.Row(i), ps.logp)
		z := stats.NormalizeLog(ps.logp)
		mem := p.Memberships[i*j : (i+1)*j]
		copy(mem, ps.logp)
		p.MAP[i] = argmax(mem)
		if pr.cfg.RowLogLik {
			p.RowLL[i] = z
		}
		if !math.IsInf(z, -1) {
			ll += z
		}
	}
	return ll
}

// scoreRowsBlocked is the blocked hot path: per KernelBlockRows block, every
// class's log-membership vector is produced by the kernels (LogPi broadcast
// plus one BlockLogProb per term), then normalization, the membership
// write-back, the MAP argmax and the log-likelihood accumulation are fused
// in a second pass — no interface call and no allocation per row. Blocks
// never straddle shard boundaries (KernelBlockRows divides RowShardSize),
// so the block grid — and therefore every float64 — is identical for every
// Parallelism setting; nor do they straddle chunk boundaries, so the same
// holds across chunk backings.
func (pr *Predictor) scoreRowsBlocked(lo, hi int, p *Prediction, ps *predictScratch) float64 {
	j := p.J
	ll := 0.0
	for blo := lo; blo < hi; blo += KernelBlockRows {
		bhi := blo + KernelBlockRows
		if bhi > hi {
			bhi = hi
		}
		m := bhi - blo
		cols, clo, chi := pr.block(ps, blo, bhi)
		for cj, cl := range pr.cls.Classes {
			lp := ps.lp[cj][:m]
			logPi := cl.LogPi
			for r := range lp {
				lp[r] = logPi
			}
			for _, k := range pr.kerns[cj] {
				k.BlockLogProb(cols, clo, chi, lp)
			}
		}
		for r := 0; r < m; r++ {
			maxv := math.Inf(-1)
			for cj := 0; cj < j; cj++ {
				if v := ps.lp[cj][r]; v > maxv {
					maxv = v
				}
			}
			mem := p.Memberships[(blo+r)*j : (blo+r+1)*j]
			if math.IsInf(maxv, -1) {
				u := 1 / float64(j)
				for cj := range mem {
					mem[cj] = u
				}
				p.MAP[blo+r] = 0
				if pr.cfg.RowLogLik {
					p.RowLL[blo+r] = math.Inf(-1)
				}
				continue
			}
			sum := 0.0
			for cj := 0; cj < j; cj++ {
				ev := math.Exp(ps.lp[cj][r] - maxv)
				mem[cj] = ev
				sum += ev
			}
			inv := 1 / sum
			for cj := range mem {
				mem[cj] *= inv
			}
			p.MAP[blo+r] = argmax(mem)
			z := maxv + math.Log(sum)
			if pr.cfg.RowLogLik {
				p.RowLL[blo+r] = z
			}
			ll += z
		}
	}
	return ll
}

// FoldRowLogLik reduces per-row log-evidence values (Prediction.RowLL) to
// the total LogLik a standalone scoring of exactly those rows would report,
// bitwise: rows are summed left to right within each fixed RowShardSize
// shard (skipping −Inf rows, which contribute no evidence) and the shard
// partials are folded in ascending order — the precise association the
// scorer uses for every Parallelism value. This is what lets the serving
// tier coalesce requests into one batch, or shard one batch across ranks,
// and still return each request the float64-identical LogLik it would have
// gotten scoring alone.
func FoldRowLogLik(rowLL []float64) float64 {
	n := len(rowLL)
	total := 0.0
	for s := 0; s < NumRowShards(n); s++ {
		lo, hi := RowShardRange(s, n)
		ll := 0.0
		for i := lo; i < hi; i++ {
			if z := rowLL[i]; !math.IsInf(z, -1) {
				ll += z
			}
		}
		total += ll
	}
	return total
}

// argmax returns the index of the first maximum of xs.
func argmax(xs []float64) int {
	best := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] > xs[best] {
			best = i
		}
	}
	return best
}
