package autoclass

import (
	"errors"
	"math"

	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/stats"
)

// Batch inference: applying a fitted Classification to new cases at scale.
//
// Training amortizes one model over many EM cycles; serving inverts the
// ratio — one fitted model is applied to an unbounded stream of fresh rows,
// so the per-row cost of the E-step dominates everything. The batch scorer
// therefore reuses the engine's blocked machinery (dataset.Columns mirror,
// model.Kernel per (class, term), fused per-block normalization) for a hot
// path with zero interface calls per row, and the per-row Term path as the
// reference oracle the blocked results are tested against.
//
// Determinism mirrors the training engine's invariant: the shard and block
// grids depend only on the row count, per-shard log-likelihood partial sums
// are merged in ascending shard order, and per-row outputs are written to
// disjoint slices — so results are bitwise identical for every
// Parallelism >= 1 within a kernel mode.

// PredictConfig controls the batch scorer. The zero value is the fast path:
// blocked kernels on a single worker.
type PredictConfig struct {
	// Parallelism selects the worker count, with the same encoding as
	// Config.Parallelism: 0 or 1 one worker, >1 that many worker
	// goroutines, <0 runtime.GOMAXPROCS(0). Results are bitwise identical
	// for every value within a kernel mode.
	Parallelism int
	// Kernels selects Blocked (columnar kernels, the default) or Reference
	// (the per-row Term oracle).
	Kernels KernelMode
}

// Prediction is the batch scoring result over n cases.
type Prediction struct {
	// J is the class count of the scoring classification.
	J int
	// Memberships holds the normalized posterior class memberships, n×J
	// row-major: Memberships[i*J+j] = P(class j | case i). Missing
	// attributes contribute no evidence, so a fully-missing row falls back
	// to the prior mixing weights; a row scoring -Inf in every class (not
	// reachable for in-support data) gets the uniform 1/J membership,
	// matching the training engine's convention.
	Memberships []float64
	// MAP[i] is case i's maximum-a-posteriori class: the first class
	// attaining the row's maximum membership.
	MAP []int
	// LogLik is the total held-out log-likelihood Σ_i log Σ_j π_j·p(x_i|j).
	// All-missing rows contribute nothing, matching HeldoutLogLik.
	LogLik float64
}

// N returns the number of scored cases.
func (p *Prediction) N() int {
	if p.J == 0 {
		return 0
	}
	return len(p.Memberships) / p.J
}

// Membership returns case i's posterior membership vector (a read-only
// alias into Memberships).
func (p *Prediction) Membership(i int) []float64 {
	return p.Memberships[i*p.J : (i+1)*p.J]
}

// Predict scores every row of ds under the fitted classification — the
// batch inference entry point. See PredictView for scoring a window.
func Predict(cls *Classification, ds *dataset.Dataset, cfg PredictConfig) (*Prediction, error) {
	if ds == nil {
		return nil, errors.New("autoclass: nil dataset")
	}
	return PredictView(cls, ds.All(), cfg)
}

// PredictView scores every row of the view under the fitted classification:
// per-case posterior memberships, the MAP class, and the total held-out
// log-likelihood. The view's dataset must be schema-compatible with the
// classification's spec; the rows themselves are new data the search never
// saw. Safe for concurrent calls on the same classification (the scorer
// never mutates it).
func PredictView(cls *Classification, view *dataset.View, cfg PredictConfig) (*Prediction, error) {
	if cls == nil || view == nil {
		return nil, errors.New("autoclass: nil classification or view")
	}
	if cfg.Kernels != Blocked && cfg.Kernels != Reference {
		return nil, errors.New("autoclass: unknown kernel mode")
	}
	if err := cls.Spec.Validate(view.Dataset()); err != nil {
		return nil, err
	}
	n := view.N()
	j := cls.J()
	p := &Prediction{
		J:           j,
		Memberships: make([]float64, n*j),
		MAP:         make([]int, n),
	}
	if n == 0 {
		return p, nil
	}
	// Unlike the training engine, there is no seed-sequential legacy mode to
	// preserve: the scorer always runs on the fixed shard grid, so every
	// Parallelism value — including 0 — accumulates the log-likelihood in
	// the same per-shard grouping and the result is bitwise identical.
	sc := newPredictScorer(cls, view, cfg.Kernels)
	shards := NumRowShards(n)
	workers := sc.prepare(Config{Parallelism: cfg.Parallelism}.Workers(shards))
	lls := make([]float64, shards)
	ParallelFor(len(workers), shards, func(worker, s int) {
		lo, hi := RowShardRange(s, n)
		lls[s] = sc.scoreRows(lo, hi, p, workers[worker])
	})
	// Ascending-shard merge keeps the total bitwise identical for every
	// worker count.
	for _, ll := range lls {
		p.LogLik += ll
	}
	return p, nil
}

// predictScorer holds the per-call scoring state: the view's column mirror
// and one kernel per (class, term) for the blocked path, or nothing beyond
// the classification for the reference path. Kernels are built fresh per
// call (they alias the classification's terms read-only), so concurrent
// predictions over one model never share mutable state.
type predictScorer struct {
	cls   *Classification
	view  *dataset.View
	mode  KernelMode
	cols  *dataset.Columns
	kerns [][]model.Kernel
}

// predictScratch is one worker's scratch: per-class log-probability block
// vectors (blocked) or a single per-row log-membership vector (reference).
type predictScratch struct {
	lp   [][]float64
	logp []float64
}

func newPredictScorer(cls *Classification, view *dataset.View, mode KernelMode) *predictScorer {
	sc := &predictScorer{cls: cls, view: view, mode: mode}
	if mode == Blocked {
		sc.cols = view.Columns()
		sc.kerns = make([][]model.Kernel, len(cls.Classes))
		for cj, cl := range cls.Classes {
			sc.kerns[cj] = make([]model.Kernel, len(cl.Terms))
			for bi, t := range cl.Terms {
				sc.kerns[cj][bi] = t.Kernel()
			}
		}
	}
	return sc
}

// prepare returns `workers` scratch instances.
func (sc *predictScorer) prepare(workers int) []*predictScratch {
	j := sc.cls.J()
	out := make([]*predictScratch, workers)
	for w := range out {
		ps := &predictScratch{}
		if sc.mode == Blocked {
			ps.lp = make([][]float64, j)
			for cj := range ps.lp {
				ps.lp[cj] = make([]float64, KernelBlockRows)
			}
		} else {
			ps.logp = make([]float64, j)
		}
		out[w] = ps
	}
	return out
}

// scoreRows scores rows [lo, hi) into p and returns their log-likelihood
// contribution. Disjoint row ranges may run concurrently: every write goes
// to a per-row slice of p or the local scratch.
func (sc *predictScorer) scoreRows(lo, hi int, p *Prediction, ps *predictScratch) float64 {
	if sc.mode == Blocked {
		return sc.scoreRowsBlocked(lo, hi, p, ps)
	}
	return sc.scoreRowsReference(lo, hi, p, ps)
}

// scoreRowsReference is the per-row oracle: Term.LogProb through
// LogMembership, then NormalizeLog — the exact code path of
// Classification.Predict, row by row.
func (sc *predictScorer) scoreRowsReference(lo, hi int, p *Prediction, ps *predictScratch) float64 {
	j := p.J
	ll := 0.0
	for i := lo; i < hi; i++ {
		sc.cls.LogMembership(sc.view.Row(i), ps.logp)
		z := stats.NormalizeLog(ps.logp)
		mem := p.Memberships[i*j : (i+1)*j]
		copy(mem, ps.logp)
		p.MAP[i] = argmax(mem)
		if !math.IsInf(z, -1) {
			ll += z
		}
	}
	return ll
}

// scoreRowsBlocked is the blocked hot path: per KernelBlockRows block, every
// class's log-membership vector is produced by the kernels (LogPi broadcast
// plus one BlockLogProb per term), then normalization, the membership
// write-back, the MAP argmax and the log-likelihood accumulation are fused
// in a second pass — no interface call and no allocation per row. Blocks
// never straddle shard boundaries (KernelBlockRows divides RowShardSize),
// so the block grid — and therefore every float64 — is identical for every
// Parallelism setting.
func (sc *predictScorer) scoreRowsBlocked(lo, hi int, p *Prediction, ps *predictScratch) float64 {
	j := p.J
	ll := 0.0
	for blo := lo; blo < hi; blo += KernelBlockRows {
		bhi := blo + KernelBlockRows
		if bhi > hi {
			bhi = hi
		}
		m := bhi - blo
		for cj, cl := range sc.cls.Classes {
			lp := ps.lp[cj][:m]
			logPi := cl.LogPi
			for r := range lp {
				lp[r] = logPi
			}
			for _, k := range sc.kerns[cj] {
				k.BlockLogProb(sc.cols, blo, bhi, lp)
			}
		}
		for r := 0; r < m; r++ {
			maxv := math.Inf(-1)
			for cj := 0; cj < j; cj++ {
				if v := ps.lp[cj][r]; v > maxv {
					maxv = v
				}
			}
			mem := p.Memberships[(blo+r)*j : (blo+r+1)*j]
			if math.IsInf(maxv, -1) {
				u := 1 / float64(j)
				for cj := range mem {
					mem[cj] = u
				}
				p.MAP[blo+r] = 0
				continue
			}
			sum := 0.0
			for cj := 0; cj < j; cj++ {
				ev := math.Exp(ps.lp[cj][r] - maxv)
				mem[cj] = ev
				sum += ev
			}
			inv := 1 / sum
			for cj := range mem {
				mem[cj] *= inv
			}
			p.MAP[blo+r] = argmax(mem)
			ll += maxv + math.Log(sum)
		}
	}
	return ll
}

// argmax returns the index of the first maximum of xs.
func argmax(xs []float64) int {
	best := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] > xs[best] {
			best = i
		}
	}
	return best
}
