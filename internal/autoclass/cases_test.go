package autoclass

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/stats"
)

func TestAssignCasesStructure(t *testing.T) {
	cls, ds := convergedClassification(t, 800)
	cases := AssignCases(cls, ds.All(), 0.1)
	if len(cases) != ds.N() {
		t.Fatalf("got %d cases", len(cases))
	}
	for _, ca := range cases {
		if len(ca.Classes) == 0 || len(ca.Classes) != len(ca.Probs) {
			t.Fatalf("case %d: %v/%v", ca.Index, ca.Classes, ca.Probs)
		}
		// Sorted by decreasing probability.
		for k := 1; k < len(ca.Probs); k++ {
			if ca.Probs[k] > ca.Probs[k-1] {
				t.Fatalf("case %d probs not sorted: %v", ca.Index, ca.Probs)
			}
		}
		// Non-best entries must clear the threshold.
		for k := 1; k < len(ca.Probs); k++ {
			if ca.Probs[k] < 0.1 {
				t.Fatalf("case %d entry below threshold: %v", ca.Index, ca.Probs)
			}
		}
		// Best entry equals the prediction's max.
		probs := cls.Predict(ds.Row(ca.Index))
		best := 0.0
		for _, p := range probs {
			if p > best {
				best = p
			}
		}
		if ca.Probs[0] != best {
			t.Fatalf("case %d best %v != %v", ca.Index, ca.Probs[0], best)
		}
	}
}

func TestAssignCasesHighThresholdIsHard(t *testing.T) {
	cls, ds := convergedClassification(t, 500)
	for _, ca := range AssignCases(cls, ds.All(), 0.999) {
		if len(ca.Classes) != 1 && ca.Probs[1] < 0.999 {
			t.Fatalf("case %d kept sub-threshold class: %v", ca.Index, ca.Probs)
		}
	}
}

func TestWriteCasesFormat(t *testing.T) {
	cls, ds := convergedClassification(t, 100)
	var buf bytes.Buffer
	if err := WriteCases(&buf, cls, ds.All(), 0.5); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 100+2 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "# case assignments: 100 cases") {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "0  ") {
		t.Fatalf("first case line %q", lines[2])
	}
}

func TestClassSizesSumToN(t *testing.T) {
	cls, ds := convergedClassification(t, 700)
	sizes := ClassSizes(cls, ds.All())
	if len(sizes) != cls.J() {
		t.Fatalf("sizes %v", sizes)
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != ds.N() {
		t.Fatalf("sizes sum to %d of %d", total, ds.N())
	}
}

func TestMeanMaxMembershipSharpOnSeparatedData(t *testing.T) {
	// The paper's §2: probability ~0.99 in the most probable class means
	// well-separated classes. Our synthetic clusters are well separated.
	cls, ds := convergedClassification(t, 1000)
	sharp := MeanMaxMembership(cls, ds.All())
	if sharp < 0.9 {
		t.Fatalf("mean max membership %v, expected sharp (>0.9)", sharp)
	}
	if sharp > 1+1e-9 {
		t.Fatalf("impossible membership %v", sharp)
	}
	// Empty view yields 0.
	empty, err := ds.View(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if MeanMaxMembership(cls, empty) != 0 {
		t.Fatal("empty view should give 0")
	}
}

func TestMembershipOrderStable(t *testing.T) {
	order := membershipOrder([]float64{0.2, 0.5, 0.2, 0.1})
	if order[0] != 1 {
		t.Fatalf("order %v", order)
	}
	// Ties keep index order (stable sort).
	if order[1] != 0 || order[2] != 2 {
		t.Fatalf("tie order %v", order)
	}
	if !stats.AlmostEqual(0.1, 0.1, 0) {
		t.Fatal("sanity")
	}
}

func TestHeldoutLogLikValidatesModelSelection(t *testing.T) {
	// Train on a split, evaluate on held-out data: the BIC-selected model
	// must fit unseen data at least as well as a deliberately overfit one.
	full := paperDS(t, 3000)
	train, test, err := dataset.SplitShuffled(full, 0.7, 11)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSearchConfig()
	cfg.StartJList = []int{5}
	cfg.Tries = 2
	cfg.EM.MaxCycles = 60
	res, err := Search(train, model.DefaultSpec(train), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Overfit comparator: force 40 classes, no pruning.
	pr := model.NewPriors(train, train.Summarize())
	over, err := NewClassification(train, model.DefaultSpec(train), pr, 40)
	if err != nil {
		t.Fatal(err)
	}
	em := DefaultConfig()
	em.PruneClasses = false
	em.MaxCycles = 60
	eng, err := NewEngine(train.All(), over, em, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.InitRandom(3); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	selected := HeldoutLogLik(res.Best, test.All())
	overfit := HeldoutLogLik(over, test.All())
	// Per-instance held-out log-likelihood comparison.
	nTest := float64(test.N())
	if selected/nTest < overfit/nTest-0.02 {
		t.Fatalf("selected model heldout LL %.4f/instance worse than overfit %.4f/instance",
			selected/nTest, overfit/nTest)
	}
	// Sanity: heldout LL is finite and negative for continuous data.
	if selected >= 0 || math.IsInf(selected, 0) || math.IsNaN(selected) {
		t.Fatalf("heldout LL %v", selected)
	}
}
