// Package autoclass implements the sequential AutoClass engine: Bayesian
// unsupervised classification by finite mixture modeling, structured
// exactly as the AutoClass C program the paper parallelizes (§2–3).
//
// The engine has two levels of search. The parameter-level search is EM:
// the base_cycle function runs update_wts (E-step: class membership weights
// w_ij), update_parameters (M-step: MAP re-estimation of every class's term
// parameters) and update_approximations (refresh of cached posterior
// quantities). The model-level search — AutoClass's BIG_LOOP — repeatedly
// generates classification tries over a list of starting class counts,
// prunes dead classes, eliminates duplicate converged solutions, and keeps
// the classification with the best approximate marginal likelihood.
//
// The cycle is written against a dataset *view* and a pluggable reduction
// hook so that the P-AutoClass parallel engine (package pautoclass) can run
// the identical code over a partition of the data, substituting a global
// Allreduce where the sequential engine reduces locally.
package autoclass

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/stats"
)

// Class is one mixture component: a mixing weight and one term per model
// block.
type Class struct {
	// LogPi is the log of the class mixing probability π_j.
	LogPi float64
	// W is the class's total membership weight Σ_i w_ij from the most
	// recent update_wts (a global quantity in the parallel engine).
	W float64
	// Terms holds the per-block parameter models, aligned with the
	// classification's Spec.Blocks.
	Terms []model.Term
}

// Clone returns a deep copy.
func (c *Class) Clone() *Class {
	n := &Class{LogPi: c.LogPi, W: c.W, Terms: make([]model.Term, len(c.Terms))}
	for i, t := range c.Terms {
		n.Terms[i] = t.Clone()
	}
	return n
}

// Classification is a full mixture model over a dataset schema.
type Classification struct {
	// Spec is the class model (the discrete search dimension T).
	Spec model.Spec
	// Priors holds the data-derived prior hyperparameters.
	Priors *model.Priors
	// N is the global dataset size (all ranks' rows in the parallel case).
	N int
	// Classes are the live mixture components.
	Classes []*Class
	// LogLik is the data log-likelihood under the current parameters.
	LogLik float64
	// LogPrior is the log prior density of the current parameters.
	LogPrior float64
	// LogPost = LogLik + LogPrior is the (unnormalized) log posterior the
	// EM search climbs.
	LogPost float64
	// Cycles counts base_cycle iterations executed.
	Cycles int
	// Converged records whether the parameter search met its stopping
	// condition (vs. hitting the cycle cap).
	Converged bool
}

// J returns the current number of classes.
func (c *Classification) J() int { return len(c.Classes) }

// NumAttrColumns returns the number of attribute columns covered by the
// spec (the A in the engine's op accounting).
func (c *Classification) NumAttrColumns() int {
	n := 0
	for _, b := range c.Spec.Blocks {
		n += len(b.Attrs)
	}
	return n
}

// NumFreeParams returns the total count of free continuous parameters V:
// the class weights (J−1) plus every term's parameters.
func (c *Classification) NumFreeParams() int {
	n := c.J() - 1
	for _, cl := range c.Classes {
		for _, t := range cl.Terms {
			n += t.NumParams()
		}
	}
	return n
}

// Score returns the approximate log marginal likelihood used to rank
// classifications across different J: the MAP log posterior with a
// BIC-style penalty of ½·d·log N on the free parameter count. (AutoClass
// uses a comparable Laplace/Cheeseman–Stutz approximation; the penalized
// MAP score preserves its ranking behaviour and is documented as a
// substitution in DESIGN.md.)
func (c *Classification) Score() float64 {
	if c.N == 0 {
		return math.Inf(-1)
	}
	return c.LogPost - 0.5*float64(c.NumFreeParams())*math.Log(float64(c.N))
}

// NewClassification builds a J-class classification with every term at its
// prior (global) parameters. The first update_parameters pass replaces them.
func NewClassification(ds *dataset.Dataset, spec model.Spec, pr *model.Priors, j int) (*Classification, error) {
	if j < 1 {
		return nil, fmt.Errorf("autoclass: %d classes requested", j)
	}
	if err := spec.Validate(ds); err != nil {
		return nil, err
	}
	if pr == nil {
		return nil, errors.New("autoclass: nil priors")
	}
	cls := &Classification{Spec: spec, Priors: pr, N: pr.N}
	logPi := -math.Log(float64(j))
	for cj := 0; cj < j; cj++ {
		cl := &Class{LogPi: logPi, Terms: make([]model.Term, len(spec.Blocks))}
		for bi, b := range spec.Blocks {
			t, err := model.NewTerm(b, ds, pr)
			if err != nil {
				return nil, err
			}
			cl.Terms[bi] = t
		}
		cls.Classes = append(cls.Classes, cl)
	}
	return cls, nil
}

// Clone returns a deep copy of the classification.
func (c *Classification) Clone() *Classification {
	n := &Classification{
		Spec:      c.Spec,
		Priors:    c.Priors,
		N:         c.N,
		LogLik:    c.LogLik,
		LogPrior:  c.LogPrior,
		LogPost:   c.LogPost,
		Cycles:    c.Cycles,
		Converged: c.Converged,
	}
	for _, cl := range c.Classes {
		n.Classes = append(n.Classes, cl.Clone())
	}
	return n
}

// LogMembership fills out[j] with log(π_j · p(row | class j)) for every
// class — the unnormalized log membership of one instance. len(out) must be
// J().
func (c *Classification) LogMembership(row []float64, out []float64) {
	for j, cl := range c.Classes {
		lp := cl.LogPi
		for _, t := range cl.Terms {
			lp += t.LogProb(row)
		}
		out[j] = lp
	}
}

// Predict returns the normalized class membership probabilities of one
// instance — how AutoClass reports case memberships ("every instance must
// be a member of some class", paper §2).
func (c *Classification) Predict(row []float64) []float64 {
	out := make([]float64, c.J())
	c.LogMembership(row, out)
	stats.NormalizeLog(out)
	return out
}

// HardAssign returns the most probable class of one instance.
func (c *Classification) HardAssign(row []float64) int {
	out := make([]float64, c.J())
	c.LogMembership(row, out)
	best := 0
	for j := 1; j < len(out); j++ {
		if out[j] > out[best] {
			best = j
		}
	}
	return best
}

// UpdateClassWeightsFromW recomputes every class's LogPi by MAP under the
// symmetric Dirichlet prior: π_j = (α + W_j) / (J·α + N).
func (c *Classification) UpdateClassWeightsFromW() {
	alpha := c.Priors.DirichletAlpha
	denom := float64(c.J())*alpha + float64(c.N)
	for _, cl := range c.Classes {
		cl.LogPi = math.Log((alpha + cl.W) / denom)
	}
}

// RefreshPosterior recomputes LogPrior and LogPost from the current
// parameters and the most recent LogLik — the cheap bookkeeping that
// AutoClass's update_approximations performs.
func (c *Classification) RefreshPosterior() {
	lp := 0.0
	pis := make([]float64, c.J())
	for j, cl := range c.Classes {
		pis[j] = math.Exp(cl.LogPi)
		for _, t := range cl.Terms {
			lp += t.LogPrior()
		}
	}
	lp += logSymmetricDirichletAt(pis, c.Priors.DirichletAlpha)
	c.LogPrior = lp
	c.LogPost = c.LogLik + c.LogPrior
}

// logSymmetricDirichletAt is the log density of a symmetric Dirichlet at p.
func logSymmetricDirichletAt(p []float64, alpha float64) float64 {
	k := float64(len(p))
	logp := stats.LgammaPlus(k*alpha) - k*stats.LgammaPlus(alpha)
	if alpha != 1 {
		for _, v := range p {
			if v <= 0 {
				return math.Inf(-1)
			}
			logp += (alpha - 1) * math.Log(v)
		}
	}
	return logp
}

// InitialClass deterministically assigns a global item index to a starting
// class. It hashes (seed, index) so that the assignment is identical no
// matter how the dataset is partitioned across ranks — the property that
// lets the parallel engine reproduce the sequential engine bit-for-bit.
// Alternative parallel strategies (package pautoclass) use it to start from
// the same state as the Full engine.
func InitialClass(seed uint64, globalIndex, j int) int {
	x := seed ^ (uint64(globalIndex)+1)*0x9e3779b97f4a7c15
	// splitmix64 finalizer
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(j))
}
