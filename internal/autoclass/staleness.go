package autoclass

import (
	"fmt"
	"time"

	"repro/internal/stats"
)

// Bounded-staleness EM (Config.SyncEvery > 1): instead of one global
// exchange per cycle — the paper's Fig. 8 saturation wall — each rank runs
// up to SyncEvery local cycles against the global model captured at the
// last synchronization point, then folds its accumulated local deltas back
// into that model at the next Allreduce (the C4-style corrective merge:
// local work is merged into the global state, never overwrites it).
//
// Between sync points a rank estimates the global model as
//
//	working = (1 − frac)·synced + local
//
// where frac = n_local / N is the rank's proportional share: the synced
// baseline minus this rank's expected stale contribution, plus its fresh
// local one. At a sync point the merge reduces the per-rank deltas
//
//	delta_r = local_r − frac_r·synced,   Σ_r frac_r = 1
//
// so the new global model is synced + Σ_r delta_r = Σ_r local_r — exactly
// the quantity the synchronous path reduces, reached with 1/L of the
// collectives. All baselines are globally reduced values (identical on
// every rank), which keeps the SPMD invariant at every sync point: group
// decisions (pruning, convergence, checkpointing) happen only there, on
// identical inputs.
//
// The staleness bound: on a cycle the schedule would leave local, every
// rank measures the relative drift of its working log-likelihood against
// the synced one and the group Allreduces a force-sync flag — any rank
// exceeding SyncDriftTol forces the merge for all ranks, so the schedule
// decision itself stays group-consistent (no rank can block on a barrier
// the others skipped). The flag exchange costs one 1-value collective per
// stale cycle, against the J+1-value weights exchange and the full
// statistics exchange it replaces.
//
// The final scheduled cycle (MaxCycles) always synchronizes, so a finished
// try holds the identical globally merged classification on every rank —
// the replicated search drivers' duplicate elimination and best-selection
// then need no further coordination, exactly as in the synchronous mode.

// staleActive reports whether this engine runs the bounded-staleness
// schedule: a parallel engine (the sequential engine's local values are
// already global, so there is nothing to relax) with SyncEvery > 1.
func (e *Engine) staleActive() bool {
	return e.reducer != nil && e.cfg.EffectiveSyncEvery() > 1
}

// localFrac is this rank's proportional share of the global dataset.
func (e *Engine) localFrac() float64 {
	if e.cls.N <= 0 {
		return 1
	}
	return float64(e.view.N()) / float64(e.cls.N)
}

// staleScratch returns a reusable scratch buffer of length n.
func (e *Engine) staleScratch(n int) []float64 {
	if cap(e.staleBuf) < n {
		e.staleBuf = make([]float64, n)
	}
	return e.staleBuf[:n]
}

// staleCycle is BaseCycle under the bounded-staleness schedule. The first
// cycle after InitRandom or Restore-without-baseline bootstraps with a
// plain synchronous exchange (numerically identical to the synchronous
// cycle) to establish the global baseline.
func (e *Engine) staleCycle() (CycleStats, error) {
	var cs CycleStats
	t0 := time.Now()
	out, err := e.updateWts()
	if err != nil {
		return cs, err
	}
	j := e.cls.J()
	frac := e.localFrac()
	bootstrap := e.syncStats == nil
	// Group-consistent schedule: every rank computes the same decision from
	// the same cycle counters. The last cycle of the budget always syncs so
	// the try ends on a globally merged model.
	syncNow := bootstrap ||
		e.sinceSync+1 >= e.cfg.EffectiveSyncEvery() ||
		e.cls.Cycles+1 >= e.cfg.MaxCycles
	if !syncNow {
		// Staleness bound: measure this rank's drift and agree on a forced
		// sync with a 1-value flag reduction (any rank over tolerance
		// forces everyone, so no rank waits at a barrier alone).
		cs.Drift = stats.RelDiff((1-frac)*e.syncWts[j]+out[j], e.syncWts[j])
		flag := 0.0
		if e.cfg.SyncDriftTol > 0 && cs.Drift > e.cfg.SyncDriftTol {
			flag = 1
		}
		e.pollBuf[0] = flag
		v, err := e.reduce(e.pollBuf[:])
		if err != nil {
			return cs, fmt.Errorf("autoclass: drift agreement: %w", err)
		}
		if v > 0 {
			cs.ReducedValues += v
			cs.Reductions++
		}
		syncNow = e.pollBuf[0] > 0
	}

	if syncNow {
		if bootstrap {
			v, err := e.reduce(out)
			if err != nil {
				return cs, fmt.Errorf("autoclass: reduce wts: %w", err)
			}
			if v > 0 {
				cs.ReducedValues += v
				cs.Reductions++
			}
		} else {
			// Corrective merge of the weights and log-likelihood: reduce
			// the per-rank deltas against the synced baseline and fold the
			// sum back in.
			d := e.staleScratch(j + 1)
			for i := 0; i <= j; i++ {
				d[i] = out[i] - frac*e.syncWts[i]
			}
			v, err := e.reduce(d)
			if err != nil {
				return cs, fmt.Errorf("autoclass: merge wts: %w", err)
			}
			if v > 0 {
				cs.ReducedValues += v
				cs.Reductions++
			}
			for i := 0; i <= j; i++ {
				out[i] = e.syncWts[i] + d[i]
			}
		}
		for cj, cl := range e.cls.Classes {
			cl.W = out[cj]
		}
		e.cls.LogLik = out[j]
		cs.WtsSeconds = time.Since(t0).Seconds()

		t1 := time.Now()
		rv, rn, err := e.mergeParameters(bootstrap, frac)
		if err != nil {
			return cs, err
		}
		cs.ReducedValues += rv
		cs.Reductions += rn
		cs.ParamsSeconds = time.Since(t1).Seconds()

		// Capture the new global baseline (syncStats was captured inside
		// mergeParameters, where the reduced buffer is live).
		if cap(e.syncWts) < j+1 {
			e.syncWts = make([]float64, j+1)
		}
		e.syncWts = e.syncWts[:j+1]
		copy(e.syncWts, out[:j+1])
		e.sinceSync = 0
		cs.Synced = true
	} else {
		// Stale local cycle: drive the working model — the synced baseline
		// minus this rank's expected stale share, plus its fresh local
		// contribution. No global exchange beyond the 1-value flag above.
		for cj, cl := range e.cls.Classes {
			cl.W = (1-frac)*e.syncWts[cj] + out[cj]
		}
		e.cls.LogLik = (1-frac)*e.syncWts[j] + out[j]
		cs.WtsSeconds = time.Since(t0).Seconds()

		t1 := time.Now()
		if err := e.localParameters(frac); err != nil {
			return cs, err
		}
		cs.ParamsSeconds = time.Since(t1).Seconds()
		e.sinceSync++
	}

	t2 := time.Now()
	e.updateApproximations()
	cs.ApproxSeconds = time.Since(t2).Seconds()

	if cs.Synced {
		// Class death is a group decision: it happens only at sync points,
		// where W is globally merged and identical on every rank. The sync
		// baselines are compacted with the same keep mapping.
		if keep := e.pruneDeadClasses(); keep != nil {
			e.compactBaselines(keep, j)
		}
	}
	e.cls.Cycles++
	cs.LogPost = e.cls.LogPost
	cs.SinceSync = e.sinceSync
	return cs, nil
}

// mergeParameters is the sync-point M-step: accumulate the local
// sufficient statistics, merge them into the global model (plain reduce on
// the bootstrap cycle, corrective delta fold afterwards) honoring the
// configured exchange granularity, re-estimate every term from the merged
// statistics, and capture them as the new baseline.
func (e *Engine) mergeParameters(bootstrap bool, frac float64) (reducedValues, reductions int, err error) {
	n := e.view.N()
	j := e.cls.J()
	if e.cfg.Granularity != PerTerm && e.cfg.Granularity != Packed {
		return 0, 0, fmt.Errorf("autoclass: unknown granularity %d", int(e.cfg.Granularity))
	}
	buf, offs := e.accumulateStats()
	ex := buf // the buffer that travels through the Reducer
	if !bootstrap {
		if len(e.syncStats) != len(buf) {
			return 0, 0, fmt.Errorf("autoclass: sync baseline holds %d statistics, model needs %d", len(e.syncStats), len(buf))
		}
		ex = e.staleScratch(len(buf))
		for i := range buf {
			ex[i] = buf[i] - frac*e.syncStats[i]
		}
	}
	switch e.cfg.Granularity {
	case PerTerm:
		for ti := 0; ti < len(offs)-1; ti++ {
			v, err := e.reduce(ex[offs[ti]:offs[ti+1]])
			if err != nil {
				return reducedValues, reductions, fmt.Errorf("autoclass: merge term %d: %w", ti, err)
			}
			if v > 0 {
				reducedValues += v
				reductions++
			}
		}
	case Packed:
		v, err := e.reduce(ex)
		if err != nil {
			return reducedValues, reductions, fmt.Errorf("autoclass: packed merge: %w", err)
		}
		if v > 0 {
			reducedValues += v
			reductions++
		}
	}
	if !bootstrap {
		for i := range buf {
			buf[i] = e.syncStats[i] + ex[i]
		}
	}
	ti := 0
	for _, cl := range e.cls.Classes {
		for _, term := range cl.Terms {
			term.Update(buf[offs[ti]:offs[ti+1]])
			ti++
		}
	}
	e.syncStats = append(e.syncStats[:0], buf...)
	a := float64(e.cls.NumAttrColumns())
	e.charge(float64(n) * float64(j) * a)
	return reducedValues, reductions, nil
}

// localParameters is the stale-cycle M-step: re-estimate every term from
// the working statistics (1 − frac)·synced + local, with no exchange.
func (e *Engine) localParameters(frac float64) error {
	n := e.view.N()
	j := e.cls.J()
	buf, offs := e.accumulateStats()
	if len(e.syncStats) != len(buf) {
		return fmt.Errorf("autoclass: sync baseline holds %d statistics, model needs %d", len(e.syncStats), len(buf))
	}
	work := e.staleScratch(len(buf))
	for i := range buf {
		work[i] = (1-frac)*e.syncStats[i] + buf[i]
	}
	ti := 0
	for _, cl := range e.cls.Classes {
		for _, term := range cl.Terms {
			term.Update(work[offs[ti]:offs[ti+1]])
			ti++
		}
	}
	a := float64(e.cls.NumAttrColumns())
	e.charge(float64(n) * float64(j) * a)
	return nil
}

// compactBaselines applies a prune's keep mapping to the sync baselines.
// jOld is the class count before the prune; e.offs still holds the
// pre-prune (class, term) offsets.
func (e *Engine) compactBaselines(keep []int, jOld int) {
	newWts := make([]float64, len(keep)+1)
	for ni, cj := range keep {
		newWts[ni] = e.syncWts[cj]
	}
	newWts[len(keep)] = e.syncWts[jOld]
	e.syncWts = newWts

	// Every class carries the same term layout (one term per attribute
	// block of the shared model spec), so the per-class statistics span is
	// uniform across the offset table.
	termsPer := (len(e.offs) - 1) / jOld
	var newStats []float64
	for _, cj := range keep {
		lo := e.offs[cj*termsPer]
		hi := e.offs[(cj+1)*termsPer]
		newStats = append(newStats, e.syncStats[lo:hi]...)
	}
	e.syncStats = newStats
}
