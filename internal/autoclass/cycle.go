package autoclass

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Reducer is the hook through which the parallel engine turns local
// reductions into global ones. ReduceInPlace must replace buf with the
// elementwise sum over all ranks (and is called at identical points with
// identical lengths on every rank). The sequential engine passes a nil
// Reducer and the local values are already global.
type Reducer interface {
	ReduceInPlace(buf []float64) error
}

// Charger receives the engine's abstract op-unit charges; *simnet.Clock
// implements it. A nil Charger disables accounting.
type Charger interface {
	ChargeOps(units float64)
}

// Granularity selects how update_parameters exchanges statistics in the
// parallel engine.
type Granularity int

const (
	// PerTerm performs one reduction per (class, term) pair — the
	// structure of the paper's Fig. 5, where the Allreduce sits inside the
	// class × attribute loops.
	PerTerm Granularity = iota
	// Packed accumulates every class's statistics into one buffer and
	// performs a single reduction per cycle — the obvious message-
	// aggregation optimization, benchmarked as an ablation.
	Packed
)

// String implements fmt.Stringer.
func (g Granularity) String() string {
	switch g {
	case PerTerm:
		return "per-term"
	case Packed:
		return "packed"
	default:
		return fmt.Sprintf("Granularity(%d)", int(g))
	}
}

// Config controls the parameter-level (EM) search.
type Config struct {
	// MaxCycles caps base_cycle iterations per try.
	MaxCycles int
	// RelDelta is the relative log-posterior change below which a cycle
	// counts toward convergence.
	RelDelta float64
	// ConvergeWindow is how many consecutive below-RelDelta cycles
	// constitute convergence.
	ConvergeWindow int
	// MinClassWeight prunes classes whose global W falls below it.
	MinClassWeight float64
	// PruneClasses enables class death (AutoClass reduces J when a class
	// loses its support).
	PruneClasses bool
	// Granularity selects the statistics-exchange pattern (parallel only).
	Granularity Granularity
	// Parallelism selects the intra-rank execution mode of the two
	// data-parallel phases (the E-step of update_wts and the statistics
	// accumulation of update_parameters):
	//
	//	 0 — historical strictly-sequential row loop (the default;
	//	     bit-for-bit the seed engine's numerics);
	//	 1 — the deterministic sharded path on a single worker;
	//	>1 — the sharded path on that many worker goroutines;
	//	<0 — the sharded path on runtime.GOMAXPROCS(0) workers.
	//
	// The sharded path merges fixed-size row shards in ascending shard
	// order, so its results are bitwise identical for every value >= 1 —
	// changing the worker count never changes the search trajectory. See
	// parallel.go for the determinism invariant.
	Parallelism int
	// Kernels selects the term-evaluation path of the two data-parallel
	// phases. The zero value is Blocked (the fast columnar kernels), so
	// zero-valued Configs get the fast path; set Reference for the per-row
	// path that is bitwise identical to the seed engine. See kernels.go.
	Kernels KernelMode
	// SyncEvery is the bounded-staleness schedule of the parallel engine:
	// each rank runs up to SyncEvery local EM cycles on stale global
	// parameters, folding its local sufficient-statistic deltas back into
	// the global model at the next synchronization. 0 or 1 (the default)
	// is the paper's fully synchronous path — one global exchange per
	// cycle, bitwise identical to the seed engine. Values > 1 only take
	// effect on the parallel (Full-strategy) engine; the sequential engine
	// and the WtsOnly baseline ignore it. See staleness.go.
	SyncEvery int
	// SyncDriftTol bounds the staleness when SyncEvery > 1: a stale cycle
	// whose corrected local log-likelihood drifts from the last synced
	// value by more than this relative tolerance forces an early global
	// synchronization on every rank. <= 0 disables the bound (the schedule
	// alone decides). Ignored when SyncEvery <= 1.
	SyncDriftTol float64
}

// EffectiveSyncEvery normalizes the staleness schedule: 0 and 1 both mean
// the synchronous path.
func (c Config) EffectiveSyncEvery() int {
	if c.SyncEvery < 1 {
		return 1
	}
	return c.SyncEvery
}

// DefaultConfig returns the engine defaults.
func DefaultConfig() Config {
	return Config{
		MaxCycles:      200,
		RelDelta:       1e-5,
		ConvergeWindow: 3,
		MinClassWeight: 1.0,
		PruneClasses:   true,
		Granularity:    PerTerm,
		SyncEvery:      1,
		SyncDriftTol:   0.05,
	}
}

func (c Config) validate() error {
	if c.MaxCycles < 1 {
		return errors.New("autoclass: MaxCycles < 1")
	}
	if c.RelDelta < 0 {
		return errors.New("autoclass: negative RelDelta")
	}
	if c.ConvergeWindow < 1 {
		return errors.New("autoclass: ConvergeWindow < 1")
	}
	if c.Kernels != Blocked && c.Kernels != Reference {
		return fmt.Errorf("autoclass: unknown kernel mode %d", int(c.Kernels))
	}
	if c.SyncEvery < 0 {
		return errors.New("autoclass: negative SyncEvery")
	}
	return nil
}

// CycleStats reports one base_cycle's phase timings (wall clock) and the
// values exchanged through the Reducer.
type CycleStats struct {
	// WtsSeconds, ParamsSeconds and ApproxSeconds are the wall-clock
	// durations of the three phases.
	WtsSeconds, ParamsSeconds, ApproxSeconds float64
	// ReducedValues counts float64s passed through the Reducer.
	ReducedValues int
	// Reductions counts Reducer invocations.
	Reductions int
	// LogPost is the posterior after the cycle.
	LogPost float64
	// Synced reports whether the cycle ended at a global synchronization
	// point. Always true on the synchronous path (SyncEvery <= 1, or any
	// engine without a Reducer); false on the stale local cycles of a
	// bounded-staleness run.
	Synced bool
	// SinceSync counts local cycles since the last synchronization point
	// (0 at a sync point). Always 0 on the synchronous path.
	SinceSync int
	// Drift is the relative log-likelihood drift of this rank's corrected
	// local model against the last synced global value — the quantity the
	// SyncDriftTol bound thresholds. 0 on synchronized cycles.
	Drift float64
}

// CycleInfo is the per-cycle record handed to a CycleObserver: one
// base_cycle's position in the run, outcome, and phase statistics.
type CycleInfo struct {
	// Cycle is the 0-based cycle index within the current try.
	Cycle int
	// J is the class count after this cycle's pruning.
	J int
	// LogPost is the log posterior after the cycle.
	LogPost float64
	// Delta is the relative log-posterior change versus the previous
	// cycle — the quantity the convergence test thresholds.
	Delta float64
	// Stats carries the cycle's phase timings and reduction traffic.
	Stats CycleStats
}

// CycleObserver receives every completed base_cycle's CycleInfo — the hook
// through which the observability layer records per-cycle engine metrics.
// Observation must not perform communication or mutate engine state; the
// SPMD invariant requires identical trajectories with and without an
// observer installed.
type CycleObserver interface {
	ObserveCycle(info CycleInfo)
}

// EMResult summarizes a full parameter-level search (one try).
type EMResult struct {
	// Cycles executed, and whether the run Converged before MaxCycles.
	Cycles    int
	Converged bool
	// Totals of the per-cycle phase timings.
	WtsSeconds, ParamsSeconds, ApproxSeconds float64
	// InitSeconds is the time spent in initialization.
	InitSeconds float64
	// ReducedValues and Reductions total the Reducer traffic.
	ReducedValues int
	Reductions    int
	// History holds the log posterior after every cycle.
	History []float64
}

// TotalSeconds returns the summed wall-clock time of all phases.
func (r *EMResult) TotalSeconds() float64 {
	return r.WtsSeconds + r.ParamsSeconds + r.ApproxSeconds + r.InitSeconds
}

// Engine runs base_cycle iterations of one classification over one view of
// the data. The sequential engine uses a view covering the whole dataset
// and a nil Reducer; each parallel rank uses its partition's view and an
// Allreduce-backed Reducer.
type Engine struct {
	view    *dataset.View
	cls     *Classification
	cfg     Config
	reducer Reducer
	charger Charger

	wts         []float64 // local weights, n_local × J, row-major
	belowTol    int       // consecutive cycles below RelDelta
	lastPost    float64
	started     bool
	initSeconds float64

	// Optional observability hooks; both nil-safe and off the per-row hot
	// path (consulted once per cycle, never inside the row loops).
	profile  *trace.Profile
	cycleObs CycleObserver
	// cycleHook, unlike cycleObs, may perform communication (it carries the
	// distributed checkpoint protocol) and may abort the run.
	cycleHook CycleHook

	scratch  shardScratch // per-shard accumulators, reused across cycles
	statsBuf []float64    // merged statistics buffer, reused across cycles
	logps    [][]float64  // per-worker log-membership scratch
	wtsOut   []float64    // E-step result buffer {w_j..., logLik}, reused
	offs     []int        // (class, term) statistics offsets, reused

	// Bounded-staleness state (see staleness.go): the global model at the
	// last synchronization point — class weights plus log-likelihood
	// ({W_0…W_{J−1}, logLik}, identical on every rank) and the packed
	// global sufficient statistics — plus the local-cycle counter and
	// scratch. syncStats == nil marks the pre-bootstrap state: the first
	// cycle of a stale run synchronizes unconditionally to establish the
	// baseline.
	syncWts   []float64
	syncStats []float64
	sinceSync int
	staleBuf  []float64  // delta / working-model scratch, reused
	pollBuf   [1]float64 // drift-bound agreement flag

	// Blocked-kernel state (see kernels.go): the view's column-major
	// mirror, one kernel per (class, term) with the term-identity snapshot
	// that detects structural change, and per-worker block scratch.
	cols      *dataset.Columns
	kerns     [][]model.Kernel
	kernTerms [][]model.Term
	blockScr  []*blockScratch

	// Chunk-backed ("out-of-core") state: when the view's dataset is
	// chunk-backed the engine walks its chunk plane through per-worker
	// cursors instead of a monolithic mirror, and runs the fused low-
	// memory cycle (lowmem.go) that never materializes the n×J weights
	// matrix. fusedBuf is the merged {wtsOut | stats} buffer of that
	// cycle, reused across cycles.
	chunked  bool
	src      dataset.ChunkSrc
	fusedBuf []float64
}

// NewEngine validates inputs and builds an engine.
func NewEngine(view *dataset.View, cls *Classification, cfg Config, red Reducer, ch Charger) (*Engine, error) {
	if view == nil || cls == nil {
		return nil, errors.New("autoclass: nil view or classification")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		view:     view,
		cls:      cls,
		cfg:      cfg,
		reducer:  red,
		charger:  ch,
		lastPost: math.Inf(-1),
	}
	if view.Dataset().Chunked() {
		// The chunk-backed data plane serves only the blocked kernels (the
		// Reference per-row path walks row slices that virtual datasets do
		// not have), and the bounded-staleness schedule needs the
		// materialized weights matrix the fused low-memory cycle exists to
		// avoid.
		if cfg.Kernels != Blocked {
			return nil, errors.New("autoclass: Reference kernels require a materialized dataset")
		}
		if cfg.EffectiveSyncEvery() > 1 {
			return nil, errors.New("autoclass: SyncEvery > 1 is not supported on a chunk-backed dataset")
		}
		src, err := view.ChunkSrc()
		if err != nil {
			return nil, err
		}
		e.chunked = true
		e.src = src
	}
	return e, nil
}

// Classification returns the engine's (mutated in place) classification.
func (e *Engine) Classification() *Classification { return e.cls }

// SetProfile installs a trace.Profile that accumulates the §3.1 phase
// timings (update_wts / update_parameters / update_approximations /
// initialization) across cycles and tries. Nil disables profiling.
func (e *Engine) SetProfile(p *trace.Profile) { e.profile = p }

// SetCycleObserver installs a CycleObserver notified after every completed
// base_cycle. Nil disables observation.
func (e *Engine) SetCycleObserver(o CycleObserver) { e.cycleObs = o }

// CycleHook runs at the end of every completed cycle of Run/RunFrom, after
// the convergence tracker has been updated — exactly the boundary State()
// snapshots. Unlike a CycleObserver it may perform communication (the
// distributed checkpoint protocol lives here) and a non-nil error aborts
// the run. The hook must not mutate classification state: the SPMD
// invariant requires identical trajectories with and without it installed.
type CycleHook func(cycle int, converged bool) error

// SetCycleHook installs the per-cycle hook. Nil disables it.
func (e *Engine) SetCycleHook(h CycleHook) { e.cycleHook = h }

// EngineState is the cycle-boundary snapshot of the engine's mutable search
// state beyond the Classification itself: together with the classification
// (parameters, weights, posterior) it is sufficient to continue the run —
// the per-item weights matrix is recomputed from the parameters at the top
// of the next BaseCycle, so it never needs to be persisted.
type EngineState struct {
	// Cycles is the classification's total cycle count at the snapshot.
	Cycles int
	// BelowTol is the convergence tracker: consecutive cycles whose
	// relative posterior change stayed below RelDelta.
	BelowTol int
	// LastPost is the posterior the next cycle's delta is measured against.
	LastPost float64
	// SyncStats is the packed global sufficient statistics at the last
	// synchronization point of a bounded-staleness run (SyncEvery > 1).
	// Checkpoints are only taken at sync points, where this baseline —
	// together with the classification's W/LogLik — fully determines the
	// continuation. Nil on the synchronous path.
	SyncStats []float64
}

// State snapshots the engine at a cycle boundary (call it from a CycleHook
// or between BaseCycle calls).
func (e *Engine) State() EngineState {
	st := EngineState{Cycles: e.cls.Cycles, BelowTol: e.belowTol, LastPost: e.lastPost}
	if e.staleActive() && e.syncStats != nil {
		st.SyncStats = append([]float64(nil), e.syncStats...)
	}
	return st
}

// Restore rehydrates a freshly built engine from a cycle-boundary snapshot
// whose classification was restored alongside it. The engine is marked
// started — InitRandom must not be called — and RunFrom then continues the
// trajectory bitwise-identically to a run that was never interrupted.
func (e *Engine) Restore(st EngineState) {
	e.belowTol = st.BelowTol
	e.lastPost = st.LastPost
	e.started = true
	e.initSeconds = 0
	if e.staleActive() && st.SyncStats != nil {
		// Snapshots land on sync points, so the classification's class
		// weights and log-likelihood ARE the synced global baseline.
		e.syncStats = append([]float64(nil), st.SyncStats...)
		e.syncWts = make([]float64, e.cls.J()+1)
		for cj, cl := range e.cls.Classes {
			e.syncWts[cj] = cl.W
		}
		e.syncWts[e.cls.J()] = e.cls.LogLik
		e.sinceSync = 0
	}
}

func (e *Engine) charge(units float64) {
	if e.charger != nil {
		e.charger.ChargeOps(units)
	}
}

func (e *Engine) reduce(buf []float64) (int, error) {
	if e.reducer == nil {
		return 0, nil
	}
	if err := e.reducer.ReduceInPlace(buf); err != nil {
		return 0, err
	}
	return len(buf), nil
}

// InitRandom seeds the classification: every item is crisply assigned to a
// starting class by a partition-independent hash of (seed, global index),
// and one update_parameters pass turns those assignments into initial
// parameters. All ranks calling InitRandom with the same seed produce the
// identical initial classification.
func (e *Engine) InitRandom(seed uint64) error {
	t0 := time.Now()
	n := e.view.N()
	j := e.cls.J()
	if j < 1 {
		return errors.New("autoclass: no classes to initialize")
	}
	if e.chunked {
		// The fused low-memory path: the crisp assignment is a pure
		// function of (seed, global index), so the class weights and the
		// initial statistics are accumulated directly from the hash — no
		// n×J weights matrix. Adding the materialized path's zeros is
		// exact, so the weights (and everything downstream) are bitwise
		// the values the materialized init produces.
		return e.initRandomFused(seed, t0)
	}
	e.wts = make([]float64, n*j)
	start := e.view.Start()
	for i := 0; i < n; i++ {
		e.wts[i*j+InitialClass(seed, start+i, j)] = 1
	}
	e.charge(float64(n))
	// Local class weights from the crisp assignment.
	wj := make([]float64, j)
	for i := 0; i < n; i++ {
		for cj := 0; cj < j; cj++ {
			wj[cj] += e.wts[i*j+cj]
		}
	}
	if _, err := e.reduce(wj); err != nil {
		return fmt.Errorf("autoclass: init reduce: %w", err)
	}
	for cj, cl := range e.cls.Classes {
		cl.W = wj[cj]
	}
	e.cls.UpdateClassWeightsFromW()
	if _, _, err := e.updateParameters(); err != nil {
		return err
	}
	e.updateApproximations()
	e.started = true
	e.initSeconds = time.Since(t0).Seconds()
	return nil
}

// updateWts is the E-step (paper Fig. 4): compute w_ij for every local item
// and class, normalize per item, and produce the class sums w_j plus the
// data log-likelihood. The returned buffer is {w_0 … w_{J−1}, logLik},
// which the caller reduces globally — this is P-AutoClass's first Allreduce.
//
// With Parallelism != 0 the rows are processed shard by shard on a worker
// pool; each worker writes only its shard's rows of e.wts (disjoint slices)
// and a per-shard accumulator, merged afterwards in fixed shard order.
func (e *Engine) updateWts() ([]float64, error) {
	n := e.view.N()
	j := e.cls.J()
	if len(e.wts) != n*j {
		e.wts = make([]float64, n*j)
	}
	if cap(e.wtsOut) < j+1 {
		e.wtsOut = make([]float64, j+1)
	}
	out := e.wtsOut[:j+1]
	for i := range out {
		out[i] = 0
	}
	blocked := e.cfg.Kernels == Blocked
	if blocked {
		e.prepareKernels()
	}
	if shards := NumRowShards(n); e.cfg.Parallelism != 0 && shards > 0 {
		workers := e.cfg.Workers(shards)
		bufs := e.scratch.get(shards, j+1)
		if blocked {
			scr := e.workerBlockScratch(workers, j)
			ParallelFor(workers, shards, func(worker, s int) {
				lo, hi := RowShardRange(s, n)
				e.wtsRowsBlocked(lo, hi, bufs[s], scr[worker])
			})
		} else {
			logps := e.workerLogps(workers, j)
			ParallelFor(workers, shards, func(worker, s int) {
				lo, hi := RowShardRange(s, n)
				e.wtsRows(lo, hi, bufs[s], logps[worker][:j])
			})
		}
		mergeShards(out, bufs)
	} else if blocked {
		e.wtsRowsBlocked(0, n, out, e.workerBlockScratch(1, j)[0])
	} else {
		e.wtsRows(0, n, out, e.workerLogps(1, j)[0][:j])
	}
	e.closeCursors()
	a := float64(e.cls.NumAttrColumns())
	e.charge(float64(n) * float64(j) * (a + 1))
	return out, nil
}

// wtsRows runs the E-step over rows [lo, hi), writing each row's weights
// into e.wts and accumulating the class sums and log-likelihood into out
// (length J+1). logp is caller-owned scratch of length J. It only reads
// shared classification state, so disjoint row ranges may run concurrently.
func (e *Engine) wtsRows(lo, hi int, out, logp []float64) {
	j := e.cls.J()
	for i := lo; i < hi; i++ {
		row := e.view.Row(i)
		e.cls.LogMembership(row, logp)
		z := stats.NormalizeLog(logp)
		w := e.wts[i*j : (i+1)*j]
		for cj := 0; cj < j; cj++ {
			w[cj] = logp[cj]
			out[cj] += logp[cj]
		}
		if !math.IsInf(z, -1) {
			out[j] += z
		}
	}
}

// workerLogps returns per-worker scratch vectors of length j, reused
// across cycles.
func (e *Engine) workerLogps(workers, j int) [][]float64 {
	if len(e.logps) < workers {
		e.logps = make([][]float64, workers)
	}
	for w := 0; w < workers; w++ {
		if len(e.logps[w]) < j {
			e.logps[w] = make([]float64, j)
		}
	}
	return e.logps
}

// updateParameters is the M-step (paper Fig. 5): for every class and every
// term block, accumulate weighted sufficient statistics over the local
// items, reduce them globally, and re-estimate the parameters. With PerTerm
// granularity the reduction happens inside the class × block loops exactly
// as in the paper's figure; with Packed granularity all statistics travel
// in one reduction.
func (e *Engine) updateParameters() (reducedValues, reductions int, err error) {
	n := e.view.N()
	j := e.cls.J()
	if e.cfg.Granularity != PerTerm && e.cfg.Granularity != Packed {
		return 0, 0, fmt.Errorf("autoclass: unknown granularity %d", int(e.cfg.Granularity))
	}
	buf, offs := e.accumulateStats()
	reducedValues, reductions, err = e.exchangeStats(buf, offs)
	if err != nil {
		return reducedValues, reductions, err
	}
	a := float64(e.cls.NumAttrColumns())
	e.charge(float64(n) * float64(j) * a)
	return reducedValues, reductions, nil
}

// exchangeStats reduces the accumulated statistics globally and
// re-estimates every term — the exchange half of update_parameters,
// shared by the two-pass cycle, the fused low-memory cycle, and the fused
// initialization. The reduction pattern — one Allreduce per (class, term)
// pair, or one packed exchange — is untouched by how the statistics were
// accumulated.
func (e *Engine) exchangeStats(buf []float64, offs []int) (reducedValues, reductions int, err error) {
	return exchangeClassStats(e.cls, e.cfg.Granularity, e.reduce, buf, offs)
}

// exchangeClassStats is the engine-independent core of exchangeStats,
// shared with the streaming trainer.
func exchangeClassStats(cls *Classification, g Granularity, reduce func([]float64) (int, error), buf []float64, offs []int) (reducedValues, reductions int, err error) {
	switch g {
	case PerTerm:
		ti := 0
		for cj, cl := range cls.Classes {
			for bi, term := range cl.Terms {
				st := buf[offs[ti]:offs[ti+1]]
				ti++
				v, err := reduce(st)
				if err != nil {
					return reducedValues, reductions, fmt.Errorf("autoclass: reduce class %d block %d: %w", cj, bi, err)
				}
				if v > 0 {
					reducedValues += v
					reductions++
				}
				term.Update(st)
			}
		}
	case Packed:
		v, err := reduce(buf)
		if err != nil {
			return reducedValues, reductions, fmt.Errorf("autoclass: packed reduce: %w", err)
		}
		if v > 0 {
			reducedValues += v
			reductions++
		}
		ti := 0
		for _, cl := range cls.Classes {
			for _, term := range cl.Terms {
				term.Update(buf[offs[ti]:offs[ti+1]])
				ti++
			}
		}
	}
	return reducedValues, reductions, nil
}

// accumulateStats folds the local rows into every (class, term) statistic in
// one row-major pass. Each slot's additions still happen in ascending row
// order, so the totals are bitwise the ones the per-term loops would
// produce, and the single pass over the rows is kinder to the cache and
// shardable. The offset table lives on the engine and is rebuilt in place
// each call (class pruning can shrink it), allocating only when it grows.
// The returned buf holds the LOCAL (unreduced) statistics.
func (e *Engine) accumulateStats() ([]float64, []int) {
	n := e.view.N()
	j := e.cls.J()
	offs, total := e.statOffsets()
	if cap(e.statsBuf) < total {
		e.statsBuf = make([]float64, total)
	}
	buf := e.statsBuf[:total]
	for i := range buf {
		buf[i] = 0
	}
	blocked := e.cfg.Kernels == Blocked
	if blocked {
		e.prepareKernels()
	}
	if shards := NumRowShards(n); e.cfg.Parallelism != 0 && shards > 0 {
		workers := e.cfg.Workers(shards)
		bufs := e.scratch.get(shards, total)
		if blocked {
			scr := e.workerBlockScratch(workers, j)
			ParallelFor(workers, shards, func(worker, s int) {
				lo, hi := RowShardRange(s, n)
				e.statsRowsBlocked(lo, hi, bufs[s], offs, scr[worker])
			})
		} else {
			ParallelFor(workers, shards, func(_, s int) {
				lo, hi := RowShardRange(s, n)
				e.statsRows(lo, hi, bufs[s], offs)
			})
		}
		mergeShards(buf, bufs)
	} else if blocked {
		e.statsRowsBlocked(0, n, buf, offs, e.workerBlockScratch(1, j)[0])
	} else {
		e.statsRows(0, n, buf, offs)
	}
	e.closeCursors()
	return buf, offs
}

// statOffsets rebuilds the (class, term) statistics offset table in place
// (class pruning can shrink it), allocating only when it grows, and
// returns it with the total statistics length.
func (e *Engine) statOffsets() ([]int, int) {
	offs := e.offs[:0]
	total := 0
	for _, cl := range e.cls.Classes {
		for _, term := range cl.Terms {
			offs = append(offs, total)
			total += term.StatsSize()
		}
	}
	offs = append(offs, total)
	e.offs = offs
	return offs, total
}

// statsRows folds rows [lo, hi) into buf, which holds every (class, term)
// statistics vector back to back at the offsets in offs (len(offs) is the
// term count + 1). AccumulateStats only reads term state and writes the
// caller's slice, so disjoint row ranges may run concurrently on disjoint
// buffers.
func (e *Engine) statsRows(lo, hi int, buf []float64, offs []int) {
	j := e.cls.J()
	for i := lo; i < hi; i++ {
		row := e.view.Row(i)
		ti := 0
		for cj, cl := range e.cls.Classes {
			w := e.wts[i*j+cj]
			for _, term := range cl.Terms {
				term.AccumulateStats(row, w, buf[offs[ti]:offs[ti+1]])
				ti++
			}
		}
	}
}

// updateApproximations refreshes the cached posterior quantities — the
// cheap third phase whose cost the paper found negligible (§3.1).
func (e *Engine) updateApproximations() {
	e.cls.UpdateClassWeightsFromW()
	e.cls.RefreshPosterior()
	e.charge(float64(e.cls.J()) * float64(e.cls.NumAttrColumns()+4))
}

// pruneDeadClasses removes classes whose global weight fell below
// MinClassWeight, compacting the local weights matrix to match. The
// decision uses globally reduced W values, so every rank prunes
// identically. It returns the kept class indices when classes were removed
// and nil when nothing changed, so the bounded-staleness path can compact
// its sync baselines with the same mapping.
func (e *Engine) pruneDeadClasses() []int {
	if !e.cfg.PruneClasses || e.cls.J() <= 1 {
		return nil
	}
	j := e.cls.J()
	keep := make([]int, 0, j)
	for cj, cl := range e.cls.Classes {
		if cl.W >= e.cfg.MinClassWeight {
			keep = append(keep, cj)
		}
	}
	if len(keep) == j {
		return nil
	}
	if len(keep) == 0 {
		// Keep the heaviest class rather than dying completely.
		best := 0
		for cj, cl := range e.cls.Classes {
			if cl.W > e.cls.Classes[best].W {
				best = cj
			}
		}
		keep = []int{best}
	}
	newClasses := make([]*Class, len(keep))
	for ni, cj := range keep {
		newClasses[ni] = e.cls.Classes[cj]
	}
	// The fused low-memory cycle never materializes the weights matrix —
	// weights are recomputed from the parameters every cycle, so there is
	// nothing to compact.
	if e.wts != nil {
		n := e.view.N()
		newWts := make([]float64, n*len(keep))
		for i := 0; i < n; i++ {
			for ni, cj := range keep {
				newWts[i*len(keep)+ni] = e.wts[i*j+cj]
			}
		}
		e.wts = newWts
	}
	e.cls.Classes = newClasses
	e.cls.UpdateClassWeightsFromW()
	return keep
}

// BaseCycle runs one iteration of the three-phase cycle and reports its
// statistics. InitRandom must have been called first. With a bounded-
// staleness schedule active (SyncEvery > 1 on a parallel engine) the cycle
// dispatches to the stale path in staleness.go; otherwise this is the
// paper's fully synchronous cycle.
func (e *Engine) BaseCycle() (CycleStats, error) {
	var cs CycleStats
	if !e.started {
		return cs, errors.New("autoclass: BaseCycle before InitRandom")
	}
	if e.staleActive() {
		return e.staleCycle()
	}
	if e.chunked {
		return e.fusedCycle()
	}
	cs.Synced = true
	t0 := time.Now()
	wtsOut, err := e.updateWts()
	if err != nil {
		return cs, err
	}
	v, err := e.reduce(wtsOut)
	if err != nil {
		return cs, fmt.Errorf("autoclass: reduce wts: %w", err)
	}
	if v > 0 {
		cs.ReducedValues += v
		cs.Reductions++
	}
	j := e.cls.J()
	for cj, cl := range e.cls.Classes {
		cl.W = wtsOut[cj]
	}
	e.cls.LogLik = wtsOut[j]
	cs.WtsSeconds = time.Since(t0).Seconds()

	t1 := time.Now()
	rv, rn, err := e.updateParameters()
	if err != nil {
		return cs, err
	}
	cs.ReducedValues += rv
	cs.Reductions += rn
	cs.ParamsSeconds = time.Since(t1).Seconds()

	t2 := time.Now()
	e.updateApproximations()
	cs.ApproxSeconds = time.Since(t2).Seconds()

	e.pruneDeadClasses()
	e.cls.Cycles++
	cs.LogPost = e.cls.LogPost
	return cs, nil
}

// converged updates the convergence tracker with the latest posterior.
func (e *Engine) convergedAfter(post float64) bool {
	if stats.RelDiff(post, e.lastPost) < e.cfg.RelDelta {
		e.belowTol++
	} else {
		e.belowTol = 0
	}
	e.lastPost = post
	return e.belowTol >= e.cfg.ConvergeWindow
}

// observeCycle feeds the optional profile and cycle observer. It runs once
// per cycle, outside the phase timers, and is a no-op when both hooks are
// nil — the disabled path costs two nil checks and no allocations.
// CycleDelta is the relative log-posterior change reported to cycle
// observers: stats.RelDiff against the previous cycle, except on the first
// cycle — measured against the -Inf starting posterior RelDiff is NaN, so
// the infinite improvement is reported as +Inf.
func CycleDelta(post, last float64) float64 {
	if math.IsInf(last, -1) {
		return math.Inf(1)
	}
	return stats.RelDiff(post, last)
}

func (e *Engine) observeCycle(cycle int, cs CycleStats, delta float64) {
	if e.profile != nil {
		e.profile.Add(PhaseWts, cs.WtsSeconds)
		e.profile.Add(PhaseParams, cs.ParamsSeconds)
		e.profile.Add(PhaseApprox, cs.ApproxSeconds)
	}
	if e.cycleObs != nil {
		e.cycleObs.ObserveCycle(CycleInfo{
			Cycle:   cycle,
			J:       e.cls.J(),
			LogPost: cs.LogPost,
			Delta:   delta,
			Stats:   cs,
		})
	}
}

// Phase names used by the engine's trace.Profile instrumentation — shared
// with the TPROF harness so every §3.1-style table uses the same labels.
const (
	PhaseWts    = "update_wts"
	PhaseParams = "update_parameters"
	PhaseApprox = "update_approximations"
	PhaseInit   = "initialization"
)

// Run executes base_cycle until convergence or the cycle cap — AutoClass's
// "new classification try" (paper Fig. 2). InitRandom must have been
// called.
func (e *Engine) Run() (EMResult, error) {
	return e.RunFrom(0)
}

// RunFrom is Run starting at cycle index `from` — the resume entry point
// after Restore. The index only offsets the cycle numbers reported to
// observers and the hook (and the remaining-cycle budget); the numerics are
// entirely determined by the restored classification and engine state.
func (e *Engine) RunFrom(from int) (EMResult, error) {
	var res EMResult
	if !e.started {
		return res, errors.New("autoclass: Run before InitRandom")
	}
	res.InitSeconds = e.initSeconds
	if e.profile != nil {
		e.profile.Add(PhaseInit, e.initSeconds)
	}
	for cycle := from; cycle < e.cfg.MaxCycles; cycle++ {
		cs, err := e.BaseCycle()
		if err != nil {
			return res, err
		}
		res.Cycles++
		res.WtsSeconds += cs.WtsSeconds
		res.ParamsSeconds += cs.ParamsSeconds
		res.ApproxSeconds += cs.ApproxSeconds
		res.ReducedValues += cs.ReducedValues
		res.Reductions += cs.Reductions
		res.History = append(res.History, cs.LogPost)
		delta := CycleDelta(cs.LogPost, e.lastPost)
		// The convergence tracker advances only at synchronization points:
		// stale-cycle posteriors mix this rank's fresh contribution with the
		// other ranks' stale shares, so thresholding them would make each
		// rank's convergence decision partition-dependent. Synced is always
		// true on the synchronous path. The cycle hook (checkpoint protocol)
		// is likewise confined to sync points, where the group state is
		// consistent and snapshots stay exact.
		converged := false
		if cs.Synced {
			converged = e.convergedAfter(cs.LogPost)
		}
		e.observeCycle(cycle, cs, delta)
		if e.cycleHook != nil && cs.Synced {
			if err := e.cycleHook(cycle, converged); err != nil {
				return res, err
			}
		}
		if converged {
			res.Converged = true
			break
		}
	}
	e.cls.Converged = res.Converged
	return res, nil
}
