package autoclass

import (
	"fmt"
	"testing"

	"repro/internal/datagen"
	"repro/internal/model"
)

func quickSearchConfig() SearchConfig {
	cfg := DefaultSearchConfig()
	cfg.StartJList = []int{2, 4, 8}
	cfg.Tries = 2
	cfg.EM.MaxCycles = 40
	return cfg
}

func TestSearchFindsPlantedJ(t *testing.T) {
	ds := paperDS(t, 3000)
	cfg := quickSearchConfig()
	cfg.StartJList = []int{2, 5, 8}
	res, err := Search(ds, model.DefaultSpec(ds), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no best classification")
	}
	// The paper mixture has 5 clusters; the search should settle on 4–6.
	if j := res.Best.J(); j < 4 || j > 6 {
		t.Fatalf("best J=%d, expected about 5", j)
	}
	if res.BestTry.Score != res.Best.Score() {
		t.Fatalf("best try score %v != classification score %v", res.BestTry.Score, res.Best.Score())
	}
}

func TestSearchDeterministic(t *testing.T) {
	ds := paperDS(t, 800)
	cfg := quickSearchConfig()
	a, err := Search(ds, model.DefaultSpec(ds), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(ds, model.DefaultSpec(ds), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Best.LogPost != b.Best.LogPost || a.BestTry.Seed != b.BestTry.Seed {
		t.Fatal("same-seed searches diverged")
	}
	if len(a.Tries) != len(b.Tries) {
		t.Fatal("try counts differ")
	}
}

func TestSearchRecordsAllTries(t *testing.T) {
	ds := paperDS(t, 500)
	cfg := quickSearchConfig()
	res, err := Search(ds, model.DefaultSpec(ds), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := len(cfg.StartJList) * cfg.Tries
	if len(res.Tries) != want {
		t.Fatalf("recorded %d tries, want %d", len(res.Tries), want)
	}
	for _, tr := range res.Tries {
		if tr.FinalJ < 1 || tr.FinalJ > tr.StartJ {
			t.Fatalf("try %+v has impossible FinalJ", tr)
		}
		if tr.Cycles < 1 {
			t.Fatalf("try %+v ran no cycles", tr)
		}
	}
	if res.Totals.Cycles < want {
		t.Fatalf("totals cycles %d", res.Totals.Cycles)
	}
	if res.Totals.WtsSeconds <= 0 || res.Totals.ParamsSeconds <= 0 {
		t.Fatal("phase timings not accumulated")
	}
}

func TestSearchDuplicateElimination(t *testing.T) {
	// On strongly separated data, restarts with the same start J usually
	// converge to the same optimum: at least one duplicate should appear
	// with several tries.
	ds := paperDS(t, 2000)
	cfg := quickSearchConfig()
	cfg.StartJList = []int{5}
	cfg.Tries = 4
	res, err := Search(ds, model.DefaultSpec(ds), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	dups := 0
	for _, tr := range res.Tries {
		if tr.Duplicate {
			dups++
		}
	}
	if dups == 0 {
		t.Log("no duplicates found (acceptable but unusual on separated data)")
	}
	// The best try must never be a duplicate.
	if res.BestTry.Duplicate {
		t.Fatal("best try flagged duplicate")
	}
}

func TestSearchValidation(t *testing.T) {
	ds := paperDS(t, 100)
	spec := model.DefaultSpec(ds)
	for name, mutate := range map[string]func(*SearchConfig){
		"empty-list": func(c *SearchConfig) { c.StartJList = nil },
		"zero-j":     func(c *SearchConfig) { c.StartJList = []int{0} },
		"no-tries":   func(c *SearchConfig) { c.Tries = 0 },
		"neg-tol":    func(c *SearchConfig) { c.DupScoreTol = -1 },
		"bad-em":     func(c *SearchConfig) { c.EM.MaxCycles = 0 },
	} {
		cfg := quickSearchConfig()
		mutate(&cfg)
		if _, err := Search(ds, spec, cfg, nil); err == nil {
			t.Errorf("config %q accepted", name)
		}
	}
	empty, _ := datagen.Paper(0, 1)
	if _, err := Search(empty, spec, quickSearchConfig(), nil); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestSearchWithRunnerErrorPropagates(t *testing.T) {
	boom := fmt.Errorf("runner failed")
	runner := func(startJ int, seed uint64) (*Classification, EMResult, error) {
		return nil, EMResult{}, boom
	}
	cfg := quickSearchConfig()
	if _, err := SearchWith(runner, cfg); err == nil {
		t.Fatal("runner error swallowed")
	}
}

func TestPaperStartJListMatchesPaper(t *testing.T) {
	want := []int{2, 4, 8, 16, 24, 50, 64}
	if len(PaperStartJList) != len(want) {
		t.Fatalf("start_j_list %v", PaperStartJList)
	}
	for i, v := range want {
		if PaperStartJList[i] != v {
			t.Fatalf("start_j_list %v, want %v", PaperStartJList, want)
		}
	}
}
