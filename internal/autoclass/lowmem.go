package autoclass

import (
	"fmt"
	"math"
	"time"
)

// The fused low-memory cycle: out-of-core training's answer to the n×J
// weights matrix.
//
// The two-pass BaseCycle materializes every row's class weights in
// update_wts and re-reads them in update_parameters. At out-of-core row
// counts that matrix is the RAM elephant — 100M rows × 8 classes is 6.4 GB
// for the weights alone, dwarfing any chunk budget. On chunk-backed views
// the engine therefore fuses the two data-parallel phases: each row block
// computes its weights in block scratch, folds them into the class sums
// AND the sufficient statistics immediately, and drops them. Memory per
// worker is one chunk pin plus O(J·KernelBlockRows) scratch, independent
// of n.
//
// The fusion is bitwise exact, not approximate. Both phases evaluate the
// same parameters (terms update only after the statistics exchange), so
// the weight values are identical; per statistics slot the block
// accumulation order within a shard is identical; the shard merge is the
// same ascending-order merge (merging the concatenated {wtsOut | stats}
// shard buffers element-wise is element-identical to merging the two
// segments separately); and the reduce sequence — wtsOut first, then the
// per-term (or packed) statistics exchange — is preserved. A fused
// trajectory is therefore bit-for-bit the two-pass Blocked trajectory,
// which the chunked-equivalence property tests assert across backings and
// chunk sizes.

// fusedCycle is BaseCycle for chunk-backed views: one pass over the data,
// weights never stored.
func (e *Engine) fusedCycle() (CycleStats, error) {
	var cs CycleStats
	cs.Synced = true
	t0 := time.Now()
	n := e.view.N()
	j := e.cls.J()
	e.prepareKernels()
	offs, total := e.statOffsets()
	width := j + 1 + total
	if cap(e.fusedBuf) < width {
		e.fusedBuf = make([]float64, width)
	}
	combined := e.fusedBuf[:width]
	for i := range combined {
		combined[i] = 0
	}
	if shards := NumRowShards(n); e.cfg.Parallelism != 0 && shards > 0 {
		workers := e.cfg.Workers(shards)
		bufs := e.scratch.get(shards, width)
		scr := e.workerBlockScratch(workers, j)
		ParallelFor(workers, shards, func(worker, s int) {
			lo, hi := RowShardRange(s, n)
			e.fusedRowsBlocked(lo, hi, bufs[s][:j+1], bufs[s][j+1:], offs, scr[worker])
		})
		mergeShards(combined, bufs)
	} else {
		e.fusedRowsBlocked(0, n, combined[:j+1], combined[j+1:], offs, e.workerBlockScratch(1, j)[0])
	}
	e.closeCursors()
	a := float64(e.cls.NumAttrColumns())
	e.charge(float64(n) * float64(j) * (a + 1))

	wtsOut := combined[:j+1]
	v, err := e.reduce(wtsOut)
	if err != nil {
		return cs, fmt.Errorf("autoclass: reduce wts: %w", err)
	}
	if v > 0 {
		cs.ReducedValues += v
		cs.Reductions++
	}
	for cj, cl := range e.cls.Classes {
		cl.W = wtsOut[cj]
	}
	e.cls.LogLik = wtsOut[j]
	cs.WtsSeconds = time.Since(t0).Seconds()

	t1 := time.Now()
	rv, rn, err := e.exchangeStats(combined[j+1:], offs)
	if err != nil {
		return cs, err
	}
	cs.ReducedValues += rv
	cs.Reductions += rn
	e.charge(float64(n) * float64(j) * a)
	cs.ParamsSeconds = time.Since(t1).Seconds()

	t2 := time.Now()
	e.updateApproximations()
	cs.ApproxSeconds = time.Since(t2).Seconds()

	e.pruneDeadClasses()
	e.cls.Cycles++
	cs.LogPost = e.cls.LogPost
	return cs, nil
}

// fusedRowsBlocked processes rows [lo, hi) in one pass: per block, the
// blocked kernels produce every class's log-membership vector; the
// normalization overwrites the vectors with the weights (the exact
// arithmetic of wtsRowsBlocked, accumulating the class sums and the
// log-likelihood into wtsOut); then each class's weight vector feeds the
// statistics accumulation directly (the exact slot/row order of
// statsRowsBlocked) — the gathered weight column IS the scratch the E-step
// just filled.
func (e *Engine) fusedRowsBlocked(lo, hi int, wtsOut, buf []float64, offs []int, bs *blockScratch) {
	j := e.cls.J()
	for blo := lo; blo < hi; blo += KernelBlockRows {
		bhi := blo + KernelBlockRows
		if bhi > hi {
			bhi = hi
		}
		m := bhi - blo
		cols, clo, chi := e.block(bs, blo, bhi)
		for cj, cl := range e.cls.Classes {
			lp := bs.lp[cj][:m]
			logPi := cl.LogPi
			for r := range lp {
				lp[r] = logPi
			}
			for _, k := range e.kerns[cj] {
				k.BlockLogProb(cols, clo, chi, lp)
			}
		}
		for r := 0; r < m; r++ {
			maxv := math.Inf(-1)
			for cj := 0; cj < j; cj++ {
				if v := bs.lp[cj][r]; v > maxv {
					maxv = v
				}
			}
			if math.IsInf(maxv, -1) {
				u := 1 / float64(j)
				for cj := 0; cj < j; cj++ {
					bs.lp[cj][r] = u
					wtsOut[cj] += u
				}
				continue
			}
			sum := 0.0
			for cj := 0; cj < j; cj++ {
				ev := math.Exp(bs.lp[cj][r] - maxv)
				bs.lp[cj][r] = ev
				sum += ev
			}
			inv := 1 / sum
			for cj := 0; cj < j; cj++ {
				wv := bs.lp[cj][r] * inv
				bs.lp[cj][r] = wv
				wtsOut[cj] += wv
			}
			wtsOut[j] += maxv + math.Log(sum)
		}
		ti := 0
		for cj, cl := range e.cls.Classes {
			wcol := bs.lp[cj][:m]
			for bi := range cl.Terms {
				e.kerns[cj][bi].BlockAccumulateStats(cols, wcol, clo, chi, buf[offs[ti]:offs[ti+1]])
				ti++
			}
		}
	}
}

// initRandomFused is InitRandom for chunk-backed views: the crisp class
// weights come straight from the assignment hash, and the initial
// statistics accumulation synthesizes each class's 0/1 weight column from
// the hash instead of gathering it from a materialized matrix. Every
// float64 matches the materialized init.
func (e *Engine) initRandomFused(seed uint64, t0 time.Time) error {
	n := e.view.N()
	j := e.cls.J()
	start := e.view.Start()
	wj := make([]float64, j)
	for i := 0; i < n; i++ {
		wj[InitialClass(seed, start+i, j)]++
	}
	e.charge(float64(n))
	if _, err := e.reduce(wj); err != nil {
		return fmt.Errorf("autoclass: init reduce: %w", err)
	}
	for cj, cl := range e.cls.Classes {
		cl.W = wj[cj]
	}
	e.cls.UpdateClassWeightsFromW()

	e.prepareKernels()
	offs, total := e.statOffsets()
	if cap(e.statsBuf) < total {
		e.statsBuf = make([]float64, total)
	}
	buf := e.statsBuf[:total]
	for i := range buf {
		buf[i] = 0
	}
	if shards := NumRowShards(n); e.cfg.Parallelism != 0 && shards > 0 {
		workers := e.cfg.Workers(shards)
		bufs := e.scratch.get(shards, total)
		scr := e.workerBlockScratch(workers, j)
		ParallelFor(workers, shards, func(worker, s int) {
			lo, hi := RowShardRange(s, n)
			e.initStatsBlocked(lo, hi, bufs[s], offs, scr[worker], seed)
		})
		mergeShards(buf, bufs)
	} else {
		e.initStatsBlocked(0, n, buf, offs, e.workerBlockScratch(1, j)[0], seed)
	}
	e.closeCursors()
	if _, _, err := e.exchangeStats(buf, offs); err != nil {
		return err
	}
	a := float64(e.cls.NumAttrColumns())
	e.charge(float64(n) * float64(j) * a)
	e.updateApproximations()
	e.started = true
	e.initSeconds = time.Since(t0).Seconds()
	return nil
}

// initStatsBlocked is statsRowsBlocked with the weight column synthesized
// from the crisp assignment hash: wcol[r] is 1 when the hash assigns
// global row (start+blo+r) to class cj, else 0 — the values the
// materialized init writes into its weights matrix.
func (e *Engine) initStatsBlocked(lo, hi int, buf []float64, offs []int, bs *blockScratch, seed uint64) {
	j := e.cls.J()
	start := e.view.Start()
	for blo := lo; blo < hi; blo += KernelBlockRows {
		bhi := blo + KernelBlockRows
		if bhi > hi {
			bhi = hi
		}
		m := bhi - blo
		cols, clo, chi := e.block(bs, blo, bhi)
		ti := 0
		for cj, cl := range e.cls.Classes {
			wcol := bs.wcol[:m]
			for r := 0; r < m; r++ {
				wcol[r] = 0
				if InitialClass(seed, start+blo+r, j) == cj {
					wcol[r] = 1
				}
			}
			for bi := range cl.Terms {
				e.kerns[cj][bi].BlockAccumulateStats(cols, wcol, clo, chi, buf[offs[ti]:offs[ti+1]])
				ti++
			}
		}
	}
}
