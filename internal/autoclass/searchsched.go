package autoclass

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/rng"
	"repro/internal/stats"
)

// BIG_LOOP variant parallelism.
//
// The paper parallelizes *inside* one base_cycle — every rank advances the
// same classification try in lockstep. The outer BIG_LOOP over start_j_list
// × tries is embarrassingly parallel by construction: each try is an
// independent EM run whose initialization seed is derived from the search
// seed alone, never from another try's outcome. The scheduler below runs
// those tries as concurrent variants over one shared dataset (the
// VariantDBSCAN pattern: many parameter variants, one in-memory copy of the
// data) while keeping the search result serial-equivalent (the C4 /
// ClusterWild! pattern: optimistic concurrent execution, deterministic
// commit order).
//
// Determinism invariant: tries may *execute* in any order on any number of
// workers, but they *commit* — duplicate scan, Totals fold, best update,
// Tries append — strictly in the sequential schedule order, through the
// exact fold the one-worker loop uses. Each try's outcome depends only on
// (startJ, derived seed), so the committed SearchResult is bitwise
// identical to the sequential oracle for every worker count.
//
// The only escape from the oracle is opt-in: BasinEarlyStop cuts tries
// whose trajectory has flattened inside an already-committed (finalJ,
// score) basin. That decision depends on commit timing, so it is excluded
// from the bitwise guarantee and disabled by default.

// Variant identifies one schedulable BIG_LOOP try: its position in the
// sequential schedule, its parameters, and its derived initialization seed.
type Variant struct {
	// Index is the position in the sequential BIG_LOOP order — the commit
	// order.
	Index int
	// StartJ and Try locate the variant in the start_j_list × tries grid.
	StartJ, Try int
	// Seed is the variant's derived initialization seed.
	Seed uint64
}

// Variants expands the BIG_LOOP schedule: every (startJ, try) pair in
// sequential order, each with its seed drawn from the deterministic chain
// SearchWith uses. The expansion depends only on StartJList, Tries and
// Seed.
func (c SearchConfig) Variants() []Variant {
	seeds := rng.New(c.Seed)
	vs := make([]Variant, 0, len(c.StartJList)*c.Tries)
	for _, startJ := range c.StartJList {
		for try := 0; try < c.Tries; try++ {
			vs = append(vs, Variant{
				Index:  len(vs),
				StartJ: startJ,
				Try:    try,
				Seed:   seeds.Uint64(),
			})
		}
	}
	return vs
}

// SearchWorkers resolves the SearchParallelism knob to a variant worker
// count: 0 and 1 mean one worker (the sequential BIG_LOOP), negative means
// runtime.GOMAXPROCS(0), any other value is used as-is, capped by the
// number of scheduled variants.
func (c SearchConfig) SearchWorkers() int {
	p := c.SearchParallelism
	if p < 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p < 1 {
		p = 1
	}
	if n := len(c.StartJList) * c.Tries; p > n && n > 0 {
		p = n
	}
	return p
}

// errBasinStop is the sentinel a trial runner returns (alongside the
// partial classification and EMResult) when basin early termination cut
// the run. The scheduler commits such tries as early-stopped duplicates.
var errBasinStop = errors.New("autoclass: try stopped in already-seen basin")

// tryOutcome buffers one finished variant until its commit turn.
type tryOutcome struct {
	cls *Classification
	em  EMResult
	err error
}

// SearchScheduler coordinates a variant-parallel BIG_LOOP search: workers
// claim variants with Next, execute them, and hand the outcomes to Commit;
// the scheduler buffers out-of-order arrivals and folds them into the
// result strictly in schedule order. Claim order is the promise heuristic
// (smaller startJ first — cheaper tries that fill the duplicate table and
// the early-stop basins quickly — then earlier tries); commit order is the
// sequential schedule. With one worker both orders collapse to the
// sequential BIG_LOOP.
type SearchScheduler struct {
	cfg      SearchConfig
	variants []Variant
	order    []int // claim order: promise-sorted variant indexes
	claim    atomic.Int64

	mu        sync.Mutex
	res       *SearchResult
	bestScore float64
	pending   map[int]*tryOutcome
	nextIdx   int // next schedule index to commit
	err       error
	stopped   bool
	// onCommit, when set, runs after every in-order commit (under the
	// scheduler lock) — the resumable search persists its state here.
	onCommit func(*SearchResult) error
	// obs, when set, receives try lifecycle notifications: claims in
	// execution order, commit verdicts in schedule order (under the lock).
	obs SearchObserver
}

// SetObserver installs a search observer. Must be called before the first
// claim; pass nil to disable (the default — the disabled path costs one
// nil check and zero allocations).
func (s *SearchScheduler) SetObserver(o SearchObserver) {
	s.obs = o
}

// notifyTry forwards ev to the installed observer; the nil path is the
// zero-cost disabled path (held to 0 allocs by an AllocsPerRun guard).
func (s *SearchScheduler) notifyTry(ev TryEvent) {
	if s.obs == nil {
		return
	}
	s.obs.ObserveTry(ev)
}

// NewSearchScheduler validates the configuration and builds a scheduler
// for its variants. workers only selects the claim order: with workers <= 1
// variants are claimed in schedule order (the sequential BIG_LOOP), with
// workers > 1 in promise order.
func NewSearchScheduler(cfg SearchConfig, workers int) (*SearchScheduler, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &SearchScheduler{
		cfg:       cfg,
		variants:  cfg.Variants(),
		res:       &SearchResult{},
		bestScore: math.Inf(-1),
		pending:   make(map[int]*tryOutcome),
	}
	s.order = make([]int, len(s.variants))
	for i := range s.order {
		s.order[i] = i
	}
	if workers > 1 {
		sort.SliceStable(s.order, func(a, b int) bool {
			va, vb := s.variants[s.order[a]], s.variants[s.order[b]]
			if va.StartJ != vb.StartJ {
				return va.StartJ < vb.StartJ
			}
			if va.Try != vb.Try {
				return va.Try < vb.Try
			}
			return va.Index < vb.Index
		})
	}
	return s, nil
}

// restore seeds the scheduler with the completed prefix of an interrupted
// search. Every recorded seed is checked against the derived chain — a
// state file whose seed chain has drifted from the configuration would
// silently corrupt the resumed search.
func (s *SearchScheduler) restore(completed []TryResult, best *Classification, bestTry TryResult, totals EMResult) error {
	if len(completed) > len(s.variants) {
		return fmt.Errorf("autoclass: state records %d completed tries, search schedules only %d",
			len(completed), len(s.variants))
	}
	for i, tr := range completed {
		if got, want := tr.Seed, s.variants[i].Seed; got != want {
			return fmt.Errorf("autoclass: try %d seed mismatch (state %d, derived %d)", i, got, want)
		}
	}
	s.res.Tries = append([]TryResult(nil), completed...)
	s.res.Totals = totals
	if best != nil {
		s.res.Best = best
		s.res.BestTry = bestTry
		s.bestScore = bestTry.Score
	}
	s.nextIdx = len(completed)
	kept := s.order[:0]
	for _, idx := range s.order {
		if idx >= s.nextIdx {
			kept = append(kept, idx)
		}
	}
	s.order = kept
	return nil
}

// Next claims the next unclaimed variant. It returns false when every
// variant has been claimed or the search has stopped on an error.
func (s *SearchScheduler) Next() (Variant, bool) {
	i := int(s.claim.Add(1)) - 1
	if i >= len(s.order) {
		return Variant{}, false
	}
	s.mu.Lock()
	stopped := s.stopped
	done := len(s.res.Tries)
	s.mu.Unlock()
	if stopped {
		return Variant{}, false
	}
	v := s.variants[s.order[i]]
	if s.obs != nil {
		s.notifyTry(TryEvent{
			Kind: TryClaimed, Index: v.Index, StartJ: v.StartJ, Try: v.Try,
			Seed: v.Seed, Done: done, Total: len(s.variants),
		})
	}
	return v, true
}

// Commit hands a finished variant's outcome to the scheduler. Outcomes are
// buffered and applied strictly in schedule order; an error (other than
// the basin-stop sentinel) stops the search when its turn is reached, so
// the surfaced error is the same one the sequential BIG_LOOP would return.
func (s *SearchScheduler) Commit(v Variant, cls *Classification, em EMResult, runErr error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return
	}
	s.pending[v.Index] = &tryOutcome{cls: cls, em: em, err: runErr}
	for {
		o := s.pending[s.nextIdx]
		if o == nil {
			return
		}
		delete(s.pending, s.nextIdx)
		cv := s.variants[s.nextIdx]
		s.nextIdx++
		s.apply(cv, o)
		if s.stopped {
			s.pending = make(map[int]*tryOutcome)
			return
		}
	}
}

// apply folds one outcome into the result — the exact sequence of
// operations SearchWith's historical sequential loop performed, so the
// result is bitwise identical to the sequential oracle. Called with the
// lock held, in schedule order.
func (s *SearchScheduler) apply(v Variant, o *tryOutcome) {
	earlyStopped := errors.Is(o.err, errBasinStop)
	if o.err != nil && !earlyStopped {
		s.err = fmt.Errorf("autoclass: try J=%d #%d: %w", v.StartJ, v.Try, o.err)
		s.stopped = true
		return
	}
	tr := TryResult{
		StartJ:       v.StartJ,
		FinalJ:       o.cls.J(),
		Try:          v.Try,
		Seed:         v.Seed,
		Cycles:       o.em.Cycles,
		Converged:    o.em.Converged,
		LogLik:       o.cls.LogLik,
		LogPost:      o.cls.LogPost,
		Score:        o.cls.Score(),
		EarlyStopped: earlyStopped,
	}
	res := s.res
	res.Totals.Cycles += o.em.Cycles
	res.Totals.WtsSeconds += o.em.WtsSeconds
	res.Totals.ParamsSeconds += o.em.ParamsSeconds
	res.Totals.ApproxSeconds += o.em.ApproxSeconds
	res.Totals.InitSeconds += o.em.InitSeconds
	res.Totals.ReducedValues += o.em.ReducedValues
	res.Totals.Reductions += o.em.Reductions
	if earlyStopped {
		// The try was cut because its trajectory flattened inside an
		// already-committed basin: record it as the duplicate it was
		// converging to.
		tr.Duplicate = true
	} else {
		// Duplicate elimination (paper Fig. 2): a converged try that lands
		// on an already-seen (final J, score) point is the same local
		// optimum rediscovered.
		for _, prev := range res.Tries {
			if prev.Duplicate || prev.FinalJ != tr.FinalJ {
				continue
			}
			if stats.RelDiff(prev.Score, tr.Score) < s.cfg.DupScoreTol {
				tr.Duplicate = true
				break
			}
		}
	}
	res.Tries = append(res.Tries, tr)
	if !tr.Duplicate && tr.Score > s.bestScore {
		s.bestScore = tr.Score
		res.Best = o.cls
		res.BestTry = tr
	}
	if s.obs != nil {
		kind := TryConverged
		switch {
		case tr.EarlyStopped:
			kind = TryEarlyStopped
		case tr.Duplicate:
			kind = TryDuplicate
		}
		ev := TryEvent{
			Kind: kind, Index: v.Index, StartJ: v.StartJ, Try: v.Try,
			Seed: v.Seed, Cycles: tr.Cycles, J: tr.FinalJ,
			LogPost: tr.LogPost, Score: tr.Score, Converged: tr.Converged,
			Done: len(res.Tries), Total: len(s.variants),
			BestScore: s.bestScore,
		}
		if res.Best != nil {
			ev.BestJ = res.BestTry.FinalJ
		}
		s.notifyTry(ev)
	}
	if s.onCommit != nil {
		if err := s.onCommit(res); err != nil {
			s.err = err
			s.stopped = true
		}
	}
}

// inBasin reports whether (finalJ, score) falls within DupScoreTol of an
// already-committed non-duplicate try — the early-termination test.
func (s *SearchScheduler) inBasin(finalJ int, score float64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, tr := range s.res.Tries {
		if tr.Duplicate || tr.FinalJ != finalJ {
			continue
		}
		if stats.RelDiff(tr.Score, score) < s.cfg.DupScoreTol {
			return true
		}
	}
	return false
}

// result returns the folded result once every variant has committed,
// without the no-classification check (the resumable search may still
// regenerate a lost best afterwards).
func (s *SearchScheduler) result() (*SearchResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return nil, s.err
	}
	if s.nextIdx != len(s.variants) || len(s.pending) > 0 {
		return nil, errors.New("autoclass: scheduler result requested before all variants committed")
	}
	return s.res, nil
}

// Result returns the search result after every variant has been committed,
// or the first (in schedule order) error.
func (s *SearchScheduler) Result() (*SearchResult, error) {
	res, err := s.result()
	if err != nil {
		return nil, err
	}
	if res.Best == nil {
		return nil, errors.New("autoclass: search produced no classification")
	}
	return res, nil
}

// run drives the scheduler over a worker pool: each of the `workers` slots
// gets its own TrialRunner from makeRunner and loops claim → execute →
// commit until the schedule drains. With workers <= 1 the loop runs inline
// on the calling goroutine — execution order, observer callback order and
// results are exactly the historical sequential BIG_LOOP's.
func (s *SearchScheduler) run(makeRunner func(slot int) TrialRunner, workers int) (*SearchResult, error) {
	if workers <= 1 {
		runOne := makeRunner(0)
		for {
			v, ok := s.Next()
			if !ok {
				break
			}
			cls, em, err := runOne(v.StartJ, v.Seed)
			s.Commit(v, cls, em, err)
		}
		return s.result()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			runOne := makeRunner(slot)
			for {
				v, ok := s.Next()
				if !ok {
					return
				}
				cls, em, err := runOne(v.StartJ, v.Seed)
				s.Commit(v, cls, em, err)
			}
		}(w)
	}
	wg.Wait()
	return s.result()
}

// lockedCycleObserver serializes ObserveCycle calls when one observer is
// shared by several variant workers. Observers are written for the
// single-goroutine engine loop; the wrapper keeps that contract without
// burdening the common sequential path.
type lockedCycleObserver struct {
	mu sync.Mutex
	o  CycleObserver
}

func (l *lockedCycleObserver) ObserveCycle(info CycleInfo) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.o.ObserveCycle(info)
}

// basinStopMinCycles is how many cycles a try must run before basin early
// termination may cut it — the first cycles' deltas are large and their
// scores meaningless.
const basinStopMinCycles = 3

// installBasinStop arms basin early termination on a variant's engine: once
// the per-cycle relative posterior improvement flattens below a multiple of
// the convergence tolerance and the trajectory sits inside an
// already-committed (finalJ, score) basin, the run is cut with the
// basin-stop sentinel. Only meaningful with several variant workers — with
// one worker commits happen between runs, and a flattened trajectory inside
// a known basin would be eliminated as a duplicate anyway.
func installBasinStop(eng *Engine, cls *Classification, sched *SearchScheduler, em Config) {
	threshold := 100 * em.RelDelta
	last := math.Inf(-1)
	eng.SetCycleHook(func(cycle int, converged bool) error {
		post := eng.State().LastPost
		delta := CycleDelta(post, last)
		last = post
		if converged || cycle < basinStopMinCycles || !(delta < threshold) {
			return nil
		}
		if sched.inBasin(cls.J(), cls.Score()) {
			return errBasinStop
		}
		return nil
	})
}
