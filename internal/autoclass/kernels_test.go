package autoclass

import (
	"fmt"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/stats"
)

// kernelScenario is one dataset × model-spec combination for the blocked
// vs reference differential tests. Between them the scenarios cover every
// term kind, missing-value patterns (none, sparse, partial multi-normal
// blocks) and the log-normal support guard.
type kernelScenario struct {
	name string
	ds   *dataset.Dataset
	spec model.Spec
}

func kernelScenarios(t testing.TB, n int) []kernelScenario {
	t.Helper()
	paper := paperDS(t, n)
	paperMiss := paperDS(t, n)
	if _, err := datagen.InjectMissing(paperMiss, 0.15, 9); err != nil {
		t.Fatal(err)
	}
	protein, _, err := datagen.ProteinMixture().Generate(n, 11)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := datagen.InjectMissing(protein, 0.1, 13); err != nil {
		t.Fatal(err)
	}
	logn, _, err := datagen.LogNormalMixture(n, 17)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := datagen.InjectMissing(logn, 0.1, 19); err != nil {
		t.Fatal(err)
	}
	return []kernelScenario{
		{"paper_default", paper, model.DefaultSpec(paper)},
		{"paper_missing", paperMiss, model.DefaultSpec(paperMiss)},
		{"protein_correlated_missing", protein, model.CorrelatedSpec(protein)},
		{"lognormal_missing", logn, model.LogNormalSpec(logn)},
	}
}

func specClassification(t testing.TB, ds *dataset.Dataset, spec model.Spec, j int) *Classification {
	t.Helper()
	pr := model.NewPriors(ds, ds.Summarize())
	cls, err := NewClassification(ds, spec, pr, j)
	if err != nil {
		t.Fatal(err)
	}
	return cls
}

// TestBlockedMatchesReferencePhases is the property test of the blocked
// kernels: on the same classification state, the blocked E-step must
// reproduce the reference per-row weights, class sums and log-likelihood,
// and the blocked M-step the reference statistics vectors, to ≤1e-12
// relative — across every term kind, missing-value pattern, and dataset
// sizes straddling the KernelBlockRows and RowShardSize boundaries.
func TestBlockedMatchesReferencePhases(t *testing.T) {
	for _, n := range []int{1, 255, 256, 257, 1300} {
		for _, sc := range kernelScenarios(t, n) {
			t.Run(fmt.Sprintf("%s/n=%d", sc.name, n), func(t *testing.T) {
				cfg := DefaultConfig()
				cfg.Kernels = Reference
				cfg.PruneClasses = false
				cls := specClassification(t, sc.ds, sc.spec, 3)
				eng, err := NewEngine(sc.ds.All(), cls, cfg, nil, nil)
				if err != nil {
					t.Fatal(err)
				}
				if err := eng.InitRandom(5); err != nil {
					t.Fatal(err)
				}
				// A couple of reference cycles move the parameters to a
				// realistic mid-run state.
				for c := 0; c < 2; c++ {
					if _, err := eng.BaseCycle(); err != nil {
						t.Fatal(err)
					}
				}
				j := cls.J()
				// E-step, both paths from the identical parameter state.
				outR := make([]float64, j+1)
				eng.wtsRows(0, n, outR, make([]float64, j))
				wtsR := append([]float64(nil), eng.wts...)
				eng.prepareKernels()
				outB := make([]float64, j+1)
				eng.wtsRowsBlocked(0, n, outB, eng.workerBlockScratch(1, j)[0])
				for i := range wtsR {
					if !stats.AlmostEqual(eng.wts[i], wtsR[i], 1e-12) {
						t.Fatalf("weight %d: blocked %v, reference %v", i, eng.wts[i], wtsR[i])
					}
				}
				for k := range outR {
					if !stats.AlmostEqual(outB[k], outR[k], 1e-12) {
						t.Fatalf("E-step accumulator %d: blocked %v, reference %v", k, outB[k], outR[k])
					}
				}
				// M-step over identical weights.
				copy(eng.wts, wtsR)
				offs := []int{}
				total := 0
				for _, cl := range cls.Classes {
					for _, term := range cl.Terms {
						offs = append(offs, total)
						total += term.StatsSize()
					}
				}
				offs = append(offs, total)
				bufR := make([]float64, total)
				eng.statsRows(0, n, bufR, offs)
				bufB := make([]float64, total)
				eng.statsRowsBlocked(0, n, bufB, offs, eng.workerBlockScratch(1, j)[0])
				for s := range bufR {
					if !stats.AlmostEqual(bufB[s], bufR[s], 1e-12) && !(bufB[s] == 0 && bufR[s] == 0) {
						t.Fatalf("M-step stat %d: blocked %v, reference %v", s, bufB[s], bufR[s])
					}
				}
			})
		}
	}
}

// TestKernelTrajectoriesAgree is the full-search trajectory test: for every
// term kind and Parallelism ∈ {1, N}, a BIG_LOOP search under Blocked and
// under Reference kernels must discover the same class count and assign
// every case to the same class. (The two modes associate floating point
// differently, so posteriors agree to tolerance rather than bitwise.)
func TestKernelTrajectoriesAgree(t *testing.T) {
	for _, sc := range kernelScenarios(t, 900) {
		for _, par := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/par=%d", sc.name, par), func(t *testing.T) {
				run := func(mode KernelMode) *SearchResult {
					cfg := DefaultSearchConfig()
					cfg.StartJList = []int{2, 4}
					cfg.Tries = 1
					cfg.EM.MaxCycles = 60
					cfg.EM.Parallelism = par
					cfg.EM.Kernels = mode
					res, err := Search(sc.ds, sc.spec, cfg, nil)
					if err != nil {
						t.Fatal(err)
					}
					return res
				}
				blocked := run(Blocked)
				reference := run(Reference)
				if blocked.Best.J() != reference.Best.J() {
					t.Fatalf("class counts diverged: blocked J=%d, reference J=%d",
						blocked.Best.J(), reference.Best.J())
				}
				if !stats.AlmostEqual(blocked.Best.LogPost, reference.Best.LogPost, 1e-6) {
					t.Fatalf("posteriors diverged: blocked %v, reference %v",
						blocked.Best.LogPost, reference.Best.LogPost)
				}
				for i := 0; i < sc.ds.N(); i++ {
					row := sc.ds.Row(i)
					if b, r := blocked.Best.HardAssign(row), reference.Best.HardAssign(row); b != r {
						t.Fatalf("case %d assigned to class %d under blocked, %d under reference", i, b, r)
					}
				}
			})
		}
	}
}

// TestBlockedDeterministicAcrossParallelism: within Blocked mode the fixed
// block-inside-shard grid must make the trajectory bitwise identical for
// every Parallelism ≥ 1 — the same invariant the reference sharded path
// guarantees.
func TestBlockedDeterministicAcrossParallelism(t *testing.T) {
	ds := paperDS(t, 1500)
	run := func(par int) *SearchResult {
		cfg := DefaultSearchConfig()
		cfg.StartJList = []int{3}
		cfg.Tries = 1
		cfg.EM.MaxCycles = 30
		cfg.EM.Parallelism = par
		cfg.EM.Kernels = Blocked
		res, err := Search(ds, model.DefaultSpec(ds), cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(1)
	for _, par := range []int{2, 7} {
		got := run(par)
		if got.Best.LogPost != base.Best.LogPost {
			t.Fatalf("Parallelism %d changed the blocked trajectory: %v != %v",
				par, got.Best.LogPost, base.Best.LogPost)
		}
	}
}

// TestUpdatePhasesDoNotAllocate extends the AllocsPerRun guards to the two
// hot phases themselves: after warm-up, updateWts and updateParameters must
// run allocation-free in BOTH kernel modes — the per-cycle out/offs
// allocations this PR hoisted into engine scratch must not regress, and the
// blocked path's kernel cache must be fully steady-state.
func TestUpdatePhasesDoNotAllocate(t *testing.T) {
	for _, mode := range []KernelMode{Blocked, Reference} {
		t.Run(mode.String(), func(t *testing.T) {
			ds := paperDS(t, 1000)
			cfg := DefaultConfig()
			cfg.Kernels = mode
			cfg.PruneClasses = false
			cls := mustClassification(t, ds, 4)
			eng := mustEngine(t, ds, cls, cfg)
			if err := eng.InitRandom(3); err != nil {
				t.Fatal(err)
			}
			for c := 0; c < 2; c++ {
				if _, err := eng.BaseCycle(); err != nil {
					t.Fatal(err)
				}
			}
			if n := testing.AllocsPerRun(20, func() {
				if _, err := eng.updateWts(); err != nil {
					t.Fatal(err)
				}
			}); n != 0 {
				t.Errorf("updateWts allocates %v times per cycle", n)
			}
			if n := testing.AllocsPerRun(20, func() {
				if _, _, err := eng.updateParameters(); err != nil {
					t.Fatal(err)
				}
			}); n != 0 {
				t.Errorf("updateParameters allocates %v times per cycle", n)
			}
		})
	}
}
