package autoclass

import (
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/model"
)

// recordingObserver collects every TryEvent; safe for the concurrent
// delivery a variant-parallel search produces.
type recordingObserver struct {
	mu     sync.Mutex
	events []TryEvent
}

func (r *recordingObserver) ObserveTry(ev TryEvent) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

func (r *recordingObserver) byKind(k TryEventKind) []TryEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []TryEvent
	for _, ev := range r.events {
		if ev.Kind == k {
			out = append(out, ev)
		}
	}
	return out
}

// commits returns the commit-kind events in delivery order.
func (r *recordingObserver) commits() []TryEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []TryEvent
	for _, ev := range r.events {
		switch ev.Kind {
		case TryConverged, TryDuplicate, TryEarlyStopped:
			out = append(out, ev)
		}
	}
	return out
}

// The trajectory property: attaching a SearchObserver must leave the
// search result bitwise identical to the unobserved run, sequentially and
// under variant parallelism.
func TestSearchObserverTrajectoryBitwise(t *testing.T) {
	ds := paperDS(t, 400)
	cfg := resumeCfg()
	spec := model.DefaultSpec(ds)
	ref, err := Search(ds, spec, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4} {
		c := cfg
		c.SearchParallelism = par
		rec := &recordingObserver{}
		res, err := SearchObserved(ds, spec, c, nil, nil, nil, rec)
		if err != nil {
			t.Fatal(err)
		}
		if !sameTries(res.Tries, ref.Tries) {
			t.Fatalf("parallelism %d: observed tries diverged from unobserved", par)
		}
		if res.BestTry != ref.BestTry || res.Best.LogPost != ref.Best.LogPost {
			t.Fatalf("parallelism %d: observed best diverged", par)
		}
		if len(rec.events) == 0 {
			t.Fatalf("parallelism %d: observer saw no events", par)
		}
	}
}

// Event-stream shape on the sequential path: one claim per variant, commit
// verdicts strictly in schedule order with monotonically increasing Done,
// kinds and cycle counts matching the recorded tries, and per-try cycle
// events matching each try's cycle count.
func TestSearchObserverEventStream(t *testing.T) {
	ds := paperDS(t, 400)
	cfg := resumeCfg()
	spec := model.DefaultSpec(ds)
	rec := &recordingObserver{}
	res, err := SearchObserved(ds, spec, cfg, nil, nil, nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	total := len(cfg.Variants())

	claims := rec.byKind(TryClaimed)
	if len(claims) != total {
		t.Fatalf("%d claim events, want %d", len(claims), total)
	}
	for _, ev := range claims {
		if ev.Total != total {
			t.Fatalf("claim Total = %d, want %d", ev.Total, total)
		}
	}

	commits := rec.commits()
	if len(commits) != total {
		t.Fatalf("%d commit events, want %d", len(commits), total)
	}
	for i, ev := range commits {
		if ev.Index != i {
			t.Fatalf("commit %d has Index %d; commits must arrive in schedule order", i, ev.Index)
		}
		if ev.Done != i+1 {
			t.Fatalf("commit %d reports Done=%d, want %d", i, ev.Done, i+1)
		}
		tr := res.Tries[i]
		if ev.Cycles != tr.Cycles {
			t.Errorf("commit %d Cycles=%d, try recorded %d", i, ev.Cycles, tr.Cycles)
		}
		if ev.Score != tr.Score || ev.Seed != tr.Seed || ev.StartJ != tr.StartJ {
			t.Errorf("commit %d fields diverge from try record", i)
		}
		switch {
		case tr.EarlyStopped:
			if ev.Kind != TryEarlyStopped {
				t.Errorf("commit %d kind %v for early-stopped try", i, ev.Kind)
			}
		case tr.Duplicate:
			if ev.Kind != TryDuplicate {
				t.Errorf("commit %d kind %v for duplicate try", i, ev.Kind)
			}
		default:
			if ev.Kind != TryConverged {
				t.Errorf("commit %d kind %v for kept try", i, ev.Kind)
			}
		}
	}

	// Done is monotonically non-decreasing over the claim/commit stream
	// (the live progress guarantee; TryCycle events leave Done zero), and
	// BestScore never regresses across commits.
	rec.mu.Lock()
	events := append([]TryEvent(nil), rec.events...)
	rec.mu.Unlock()
	lastDone := 0
	for i, ev := range events {
		if ev.Kind == TryCycle {
			continue
		}
		if ev.Done < lastDone {
			t.Fatalf("event %d (%v): Done regressed %d -> %d", i, ev.Kind, lastDone, ev.Done)
		}
		lastDone = ev.Done
	}
	for i := 1; i < len(commits); i++ {
		if commits[i].BestScore < commits[i-1].BestScore {
			t.Fatalf("BestScore regressed at commit %d", i)
		}
	}

	// Cycle events per schedule index match the recorded cycle counts.
	cyclesByIndex := make(map[int]int)
	for _, ev := range rec.byKind(TryCycle) {
		cyclesByIndex[ev.Index]++
	}
	for i, tr := range res.Tries {
		if cyclesByIndex[i] != tr.Cycles {
			t.Errorf("try %d: %d cycle events, recorded %d cycles", i, cyclesByIndex[i], tr.Cycles)
		}
	}
}

// Resuming a checkpointed search: the observer's Done counts include the
// restored prefix, and only the unfinished suffix is claimed.
func TestSearchObserverResumeDoneIncludesPrefix(t *testing.T) {
	ds := paperDS(t, 400)
	cfg := resumeCfg()
	spec := model.DefaultSpec(ds)
	statePath := filepath.Join(t.TempDir(), "state.json")
	if _, err := SearchWithCheckpointFile(ds, spec, cfg, nil, statePath); err != nil {
		t.Fatal(err)
	}
	const keep = 2
	truncateState(t, statePath, keep)

	rec := &recordingObserver{}
	res, err := SearchWithCheckpointFileObserved(ds, spec, cfg, nil, statePath, nil, nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	total := len(cfg.Variants())
	if len(res.Tries) != total {
		t.Fatalf("resumed search recorded %d tries, want %d", len(res.Tries), total)
	}
	claims := rec.byKind(TryClaimed)
	if len(claims) != total-keep {
		t.Fatalf("%d claims after resume, want %d (restored tries must not be re-claimed)", len(claims), total-keep)
	}
	if claims[0].Done != keep {
		t.Fatalf("first resumed claim reports Done=%d, want %d (the restored prefix)", claims[0].Done, keep)
	}
	commits := rec.commits()
	if len(commits) != total-keep {
		t.Fatalf("%d commits after resume, want %d", len(commits), total-keep)
	}
	for i, ev := range commits {
		if ev.Index != keep+i {
			t.Fatalf("resumed commit %d has Index %d, want %d", i, ev.Index, keep+i)
		}
		if ev.Done != keep+i+1 {
			t.Fatalf("resumed commit %d reports Done=%d, want %d", i, ev.Done, keep+i+1)
		}
	}
}

// The disabled path: a scheduler without an observer must not allocate in
// its notify hook.
func TestNotifyTryDisabledAllocs(t *testing.T) {
	sched, err := NewSearchScheduler(quickSearchConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	ev := TryEvent{Kind: TryClaimed, Total: 6}
	if n := testing.AllocsPerRun(100, func() { sched.notifyTry(ev) }); n != 0 {
		t.Errorf("nil-observer notifyTry allocations = %v, want 0", n)
	}
}
