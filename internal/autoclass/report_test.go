package autoclass

import (
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/model"
)

// convergedClassification runs a quick sequential classification for the
// report and checkpoint tests.
func convergedClassification(t *testing.T, n int) (*Classification, *dataset.Dataset) {
	t.Helper()
	ds := paperDS(t, n)
	cls := mustClassification(t, ds, 5)
	eng := mustEngine(t, ds, cls, DefaultConfig())
	if err := eng.InitRandom(5); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return cls, ds
}

func TestBuildReportStructure(t *testing.T) {
	cls, ds := convergedClassification(t, 1500)
	rep := BuildReport(cls, ds)
	if rep.J != cls.J() || rep.N != cls.N {
		t.Fatalf("report J/N %d/%d", rep.J, rep.N)
	}
	if len(rep.Classes) != cls.J() {
		t.Fatalf("report has %d classes", len(rep.Classes))
	}
	// Classes sorted by decreasing weight.
	for i := 1; i < len(rep.Classes); i++ {
		if rep.Classes[i].Weight > rep.Classes[i-1].Weight {
			t.Fatal("classes not sorted by weight")
		}
	}
	// Shares sum to ~1.
	total := 0.0
	for _, c := range rep.Classes {
		total += c.Share
		if len(c.Terms) != 2 {
			t.Fatalf("class has %d term descriptions", len(c.Terms))
		}
		if len(c.Influences) != 2 {
			t.Fatalf("class has %d influences", len(c.Influences))
		}
		// Influences sorted descending.
		for i := 1; i < len(c.Influences); i++ {
			if c.Influences[i].Influence > c.Influences[i-1].Influence {
				t.Fatal("influences not sorted")
			}
		}
	}
	if total < 0.99 || total > 1.01 {
		t.Fatalf("class shares sum to %v", total)
	}
}

func TestReportInfluencePositiveForSeparatedClasses(t *testing.T) {
	cls, ds := convergedClassification(t, 2000)
	rep := BuildReport(cls, ds)
	// Well-separated clusters: class means far from global mean, so every
	// class should have clearly positive influence on some attribute.
	for _, c := range rep.Classes {
		if c.Influences[0].Influence <= 0.01 {
			t.Fatalf("class %d max influence %v suspiciously low", c.Index, c.Influences[0].Influence)
		}
	}
}

func TestReportStringRendering(t *testing.T) {
	cls, ds := convergedClassification(t, 800)
	s := BuildReport(cls, ds).String()
	for _, want := range []string{"AutoClass classification report", "classes=", "log likelihood=", "class 0", "influence:"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
	// Attribute names appear.
	if !strings.Contains(s, "x ~ N(") || !strings.Contains(s, "y ~ N(") {
		t.Fatalf("report missing term descriptions:\n%s", s)
	}
}

func TestReportMultinomialInfluence(t *testing.T) {
	spec := datagen.ProteinMixture()
	ds, _, err := spec.Generate(1500, 31)
	if err != nil {
		t.Fatal(err)
	}
	cls := mustClassification(t, ds, 4)
	eng := mustEngine(t, ds, cls, DefaultConfig())
	if err := eng.InitRandom(3); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	rep := BuildReport(cls, ds)
	foundDiscrete := false
	for _, c := range rep.Classes {
		for _, in := range c.Influences {
			if in.Name == "sstate" {
				foundDiscrete = true
				if in.Influence < 0 {
					t.Fatalf("negative KL influence %v", in.Influence)
				}
			}
		}
	}
	if !foundDiscrete {
		t.Fatal("discrete attribute missing from influences")
	}
}

func TestReportCorrelatedSpecInfluence(t *testing.T) {
	ds := paperDS(t, 800)
	pr := model.NewPriors(ds, ds.Summarize())
	cls, err := NewClassification(ds, model.CorrelatedSpec(ds), pr, 4)
	if err != nil {
		t.Fatal(err)
	}
	eng := mustEngine(t, ds, cls, DefaultConfig())
	if err := eng.InitRandom(4); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	rep := BuildReport(cls, ds)
	for _, c := range rep.Classes {
		if len(c.Influences) != 2 {
			t.Fatalf("MVN class should report 2 per-attribute influences, got %d", len(c.Influences))
		}
	}
}

func TestKLNormalProperties(t *testing.T) {
	if kl := klNormal(0, 1, 0, 1); kl != 0 {
		t.Fatalf("KL of identical normals %v", kl)
	}
	if kl := klNormal(5, 1, 0, 1); kl <= 0 {
		t.Fatalf("KL of shifted normal %v", kl)
	}
	if kl := klNormal(0, 3, 0, 1); kl <= 0 {
		t.Fatalf("KL of widened normal %v", kl)
	}
	if kl := klNormal(0, -1, 0, 1); kl != 0 {
		t.Fatalf("degenerate sigma should give 0, got %v", kl)
	}
}

func TestReportDivergenceMatrix(t *testing.T) {
	cls, ds := convergedClassification(t, 1500)
	rep := BuildReport(cls, ds)
	j := cls.J()
	if len(rep.Divergence) != j {
		t.Fatalf("divergence matrix %d rows for %d classes", len(rep.Divergence), j)
	}
	for a := 0; a < j; a++ {
		if rep.Divergence[a][a] != 0 {
			t.Fatalf("diagonal divergence %v", rep.Divergence[a][a])
		}
		for b := 0; b < j; b++ {
			if rep.Divergence[a][b] != rep.Divergence[b][a] {
				t.Fatal("divergence matrix not symmetric")
			}
			if a != b && rep.Divergence[a][b] <= 0 {
				t.Fatalf("separated classes %d,%d have divergence %v", a, b, rep.Divergence[a][b])
			}
		}
	}
	a, b, d := rep.MinDivergence()
	if a < 0 || b <= a || d <= 0 {
		t.Fatalf("min divergence (%d,%d,%v)", a, b, d)
	}
	if !strings.Contains(rep.String(), "most confusable classes") {
		t.Fatal("report missing divergence summary")
	}
}

func TestMinDivergenceSingleClass(t *testing.T) {
	ds := paperDS(t, 100)
	cls := mustClassification(t, ds, 1)
	rep := BuildReport(cls, ds)
	if a, b, _ := rep.MinDivergence(); a != -1 || b != -1 {
		t.Fatalf("single class min divergence (%d,%d)", a, b)
	}
}
