package autoclass

import (
	"math"
	"testing"
)

// TestDisabledObservabilityAddsNoAllocsToBaseCycle is the CI allocation
// guard for the engine hooks: with no profile and no cycle observer
// installed (the default), the per-cycle observation call must not allocate
// — base_cycle's cost is unchanged by the instrumentation points.
func TestDisabledObservabilityAddsNoAllocsToBaseCycle(t *testing.T) {
	ds := paperDS(t, 200)
	cls := mustClassification(t, ds, 3)
	eng := mustEngine(t, ds, cls, DefaultConfig())
	if err := eng.InitRandom(1); err != nil {
		t.Fatal(err)
	}
	cs, err := eng.BaseCycle()
	if err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		eng.observeCycle(0, cs, math.Inf(1))
	}); n != 0 {
		t.Fatalf("disabled observeCycle allocates %v times per cycle", n)
	}
}

// TestObserveCycleReportsToHooks verifies the wired path: profile phases
// accumulate and the cycle observer sees the cycle's stats.
func TestObserveCycleReportsToHooks(t *testing.T) {
	ds := paperDS(t, 200)
	cls := mustClassification(t, ds, 3)
	eng := mustEngine(t, ds, cls, DefaultConfig())
	var got []CycleInfo
	eng.SetCycleObserver(cycleObserverFunc(func(info CycleInfo) {
		got = append(got, info)
	}))
	if err := eng.InitRandom(1); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != res.Cycles {
		t.Fatalf("observer saw %d cycles, engine ran %d", len(got), res.Cycles)
	}
	for i, info := range got {
		if info.Cycle != i {
			t.Fatalf("cycle %d reported index %d", i, info.Cycle)
		}
		if info.LogPost != res.History[i] {
			t.Fatalf("cycle %d logpost %v != history %v", i, info.LogPost, res.History[i])
		}
		if info.J < 1 {
			t.Fatalf("cycle %d reported J=%d", i, info.J)
		}
	}
	// The first cycle's delta is measured against the -Inf starting
	// posterior and later ones against the previous cycle; all must be
	// non-negative (RelDiff is absolute).
	for i, info := range got {
		if info.Delta < 0 || math.IsNaN(info.Delta) {
			t.Fatalf("cycle %d delta = %v", i, info.Delta)
		}
	}
}

type cycleObserverFunc func(CycleInfo)

func (f cycleObserverFunc) ObserveCycle(info CycleInfo) { f(info) }
