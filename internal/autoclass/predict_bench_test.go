package autoclass

import (
	"testing"

	"repro/internal/datagen"
)

// BenchmarkPredict measures batch scoring of 10k held-out rows at J=8 —
// the serving hot path — under the blocked kernels vs the per-row
// reference oracle. The ISSUE-5 acceptance requires blocked ≥2×.
func BenchmarkPredict(b *testing.B) {
	fit := paperDS(b, 10000)
	cfg := DefaultConfig()
	cfg.MaxCycles = 5
	cfg.PruneClasses = false
	cls := mustClassification(b, fit, 8)
	eng := mustEngine(b, fit, cls, cfg)
	if err := eng.InitRandom(1); err != nil {
		b.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		b.Fatal(err)
	}
	heldout, err := datagen.Paper(10000, 33)
	if err != nil {
		b.Fatal(err)
	}
	view := heldout.All()
	view.Columns() // the lazy mirror is built once, outside the timer
	// The kernels= variant naming pairs with cmd/benchkernels, which
	// computes the blocked-vs-reference speedup for BENCH_predict.json.
	for _, mode := range []KernelMode{Blocked, Reference} {
		b.Run("kernels="+mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := PredictView(cls, view, PredictConfig{Kernels: mode}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
