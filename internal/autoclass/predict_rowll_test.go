package autoclass

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/dataset"
)

// TestFoldRowLogLikMatchesPredict is the per-row log-lik property test: for
// every scenario, kernel mode, parallelism and batch length (straddling
// shard and block boundaries), FoldRowLogLik over Prediction.RowLL must
// reproduce Prediction.LogLik bitwise — the invariant the serving tier's
// request coalescing and rank sharding rely on.
func TestFoldRowLogLikMatchesPredict(t *testing.T) {
	for _, sc := range kernelScenarios(t, 600) {
		cls := fitScenario(t, sc, 4, 6)
		for _, n := range []int{1, 7, 255, 256, 257, 600, 1024, 1500} {
			ho := holdout(t, sc.name, n)
			for _, mode := range []KernelMode{Blocked, Reference} {
				for _, par := range []int{0, 3} {
					t.Run(fmt.Sprintf("%s/n%d/%v/p%d", sc.name, n, mode, par), func(t *testing.T) {
						p, err := Predict(cls, ho, PredictConfig{
							Kernels: mode, Parallelism: par, RowLogLik: true,
						})
						if err != nil {
							t.Fatal(err)
						}
						if len(p.RowLL) != n {
							t.Fatalf("RowLL length %d, want %d", len(p.RowLL), n)
						}
						if got := FoldRowLogLik(p.RowLL); got != p.LogLik {
							t.Fatalf("FoldRowLogLik = %v, LogLik = %v (diff %g)",
								got, p.LogLik, got-p.LogLik)
						}
						// The all-missing row injected by holdout falls back
						// to the prior weights, so its log-evidence is the
						// total prior mass: log Σ π_j ≈ 0.
						if n > 2 && math.Abs(p.RowLL[n/2]) > 1e-9 {
							t.Errorf("all-missing row RowLL = %v, want ~0 (prior mass)", p.RowLL[n/2])
						}
						// Without the flag the buffer stays empty and the
						// rest of the result is untouched.
						q, err := Predict(cls, ho, PredictConfig{Kernels: mode, Parallelism: par})
						if err != nil {
							t.Fatal(err)
						}
						if len(q.RowLL) != 0 {
							t.Errorf("RowLL populated without RowLogLik: %d entries", len(q.RowLL))
						}
						if q.LogLik != p.LogLik {
							t.Errorf("RowLogLik perturbed LogLik: %v vs %v", q.LogLik, p.LogLik)
						}
						for i := range q.Memberships {
							if q.Memberships[i] != p.Memberships[i] {
								t.Fatalf("RowLogLik perturbed memberships at %d", i)
							}
						}
					})
				}
			}
		}
	}
}

// TestFoldRowLogLikSubBatch verifies the serving-tier use: scoring rows as
// part of a larger block-aligned batch and folding each request's RowLL
// slice yields the bitwise-identical LogLik (and memberships and MAP) to
// scoring that request alone — for request sizes that do and do not land
// on shard or block boundaries.
func TestFoldRowLogLikSubBatch(t *testing.T) {
	sc := kernelScenarios(t, 500)[1] // paper_missing: exercises the masks
	cls := fitScenario(t, sc, 3, 6)
	sizes := []int{5, 300, 256, 1100}
	// Build the coalesced batch: each request padded to the next
	// KernelBlockRows multiple with all-missing rows, exactly as the
	// serving batcher lays requests out.
	reqs := make([]*dataset.Dataset, len(sizes))
	batch, err := dataset.New("batch", sc.ds.Attrs())
	if err != nil {
		t.Fatal(err)
	}
	offs := make([]int, len(sizes))
	pad := make([]float64, sc.ds.NumAttrs())
	for k := range pad {
		pad[k] = dataset.Missing
	}
	buf := make([]float64, sc.ds.NumAttrs())
	for qi, n := range sizes {
		reqs[qi] = holdout(t, sc.name, n)
		offs[qi] = batch.N()
		for i := 0; i < n; i++ {
			if err := batch.AppendRow(reqs[qi].RowTo(buf, i)); err != nil {
				t.Fatal(err)
			}
		}
		for batch.N()%KernelBlockRows != 0 {
			if err := batch.AppendRow(pad); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, par := range []int{0, 4} {
		bp, err := Predict(cls, batch, PredictConfig{Parallelism: par, RowLogLik: true})
		if err != nil {
			t.Fatal(err)
		}
		for qi, n := range sizes {
			alone, err := Predict(cls, reqs[qi], PredictConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if got := FoldRowLogLik(bp.RowLL[offs[qi] : offs[qi]+n]); got != alone.LogLik {
				t.Errorf("par %d req %d: batched fold %v, standalone %v", par, qi, got, alone.LogLik)
			}
			for i := 0; i < n; i++ {
				if bp.MAP[offs[qi]+i] != alone.MAP[i] {
					t.Fatalf("par %d req %d row %d: batched MAP %d, standalone %d",
						par, qi, i, bp.MAP[offs[qi]+i], alone.MAP[i])
				}
				bm := bp.Membership(offs[qi] + i)
				am := alone.Membership(i)
				for j := range am {
					if bm[j] != am[j] {
						t.Fatalf("par %d req %d row %d class %d: batched membership %v, standalone %v",
							par, qi, i, j, bm[j], am[j])
					}
				}
			}
		}
	}
}
