package autoclass

import (
	"bytes"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func TestCheckpointRoundTrip(t *testing.T) {
	cls, ds := convergedClassification(t, 600)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, cls); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(&buf, ds)
	if err != nil {
		t.Fatal(err)
	}
	if got.J() != cls.J() || got.N != cls.N || got.Cycles != cls.Cycles || got.Converged != cls.Converged {
		t.Fatalf("metadata mismatch: %+v", got)
	}
	if got.LogLik != cls.LogLik || got.LogPost != cls.LogPost {
		t.Fatalf("scores mismatch: %v/%v", got.LogLik, got.LogPost)
	}
	for j := range cls.Classes {
		if got.Classes[j].LogPi != cls.Classes[j].LogPi || got.Classes[j].W != cls.Classes[j].W {
			t.Fatalf("class %d weight mismatch", j)
		}
		pa := cls.Classes[j].Terms[0].Params()
		pb := got.Classes[j].Terms[0].Params()
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("class %d params mismatch", j)
			}
		}
	}
	// Predictions identical.
	for i := 0; i < 20; i++ {
		a := cls.Predict(ds.Row(i))
		b := got.Predict(ds.Row(i))
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("prediction mismatch on row %d", i)
			}
		}
	}
}

func TestCheckpointResumeContinuesEM(t *testing.T) {
	// Resume: load a checkpoint, attach an engine with crisp weights from
	// the restored parameters, and keep cycling without degradation.
	cls, ds := convergedClassification(t, 600)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, cls); err != nil {
		t.Fatal(err)
	}
	raw := append([]byte(nil), buf.Bytes()...)
	restored, err := LoadCheckpoint(bytes.NewReader(raw), ds)
	if err != nil {
		t.Fatal(err)
	}
	eng := mustEngine(t, ds, restored, DefaultConfig())
	// Re-initializing from any seed then cycling re-enters EM; after one
	// cycle the weights reflect the restored parameters, and the posterior
	// should be near the checkpointed optimum (not the random-init level).
	if err := eng.InitRandom(1); err != nil {
		t.Fatal(err)
	}
	// InitRandom's update_parameters overwrote the restored parameters, so
	// restore them once more via the checkpoint and cycle directly.
	restored2, err := LoadCheckpoint(bytes.NewReader(raw), ds)
	if err != nil {
		t.Fatal(err)
	}
	eng2 := mustEngine(t, ds, restored2, DefaultConfig())
	if err := eng2.InitRandom(1); err != nil {
		t.Fatal(err)
	}
	res, err := eng2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Fatal("resume ran no cycles")
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	cls, ds := convergedClassification(t, 300)
	path := filepath.Join(t.TempDir(), "ck.json")
	if err := SaveCheckpointFile(path, cls); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpointFile(path, ds)
	if err != nil {
		t.Fatal(err)
	}
	if got.J() != cls.J() {
		t.Fatalf("J=%d", got.J())
	}
	if _, err := LoadCheckpointFile(filepath.Join(t.TempDir(), "missing.json"), ds); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCheckpointSearchPointRoundTrip(t *testing.T) {
	cls, ds := convergedClassification(t, 300)
	sp := &SearchPoint{
		TryIndex: 3, StartJ: 8, Try: 1,
		TrySeed:    0xdeadbeefcafef00d, // all 64 bits must survive
		CycleInTry: 17, BelowTol: 2, LastPost: cls.LogPost,
		SearchSeed: ^uint64(0),
	}
	var buf bytes.Buffer
	if err := SaveCheckpointSearch(&buf, cls, sp); err != nil {
		t.Fatal(err)
	}
	got, gotSP, err := LoadCheckpointSearch(bytes.NewReader(buf.Bytes()), ds)
	if err != nil {
		t.Fatal(err)
	}
	if gotSP == nil {
		t.Fatal("search point lost in round trip")
	}
	if !reflect.DeepEqual(gotSP, sp) {
		t.Fatalf("search point mismatch:\nsaved:  %+v\nloaded: %+v", sp, gotSP)
	}
	if got.LogPost != cls.LogPost || got.Cycles != cls.Cycles {
		t.Fatalf("classification mismatch: %v/%d", got.LogPost, got.Cycles)
	}
	// Plain checkpoints stay search-point-free through the new loader.
	buf.Reset()
	if err := SaveCheckpoint(&buf, cls); err != nil {
		t.Fatal(err)
	}
	if _, sp2, err := LoadCheckpointSearch(&buf, ds); err != nil || sp2 != nil {
		t.Fatalf("plain checkpoint: sp=%v err=%v", sp2, err)
	}
	// A pre-first-cycle snapshot (-Inf LastPost) cannot be encoded and must
	// be rejected, not silently mangled.
	bad := &SearchPoint{LastPost: math.Inf(-1)}
	if err := SaveCheckpointSearch(&bytes.Buffer{}, cls, bad); err == nil {
		t.Error("non-finite LastPost accepted")
	}
}

func TestCheckpointErrors(t *testing.T) {
	_, ds := convergedClassification(t, 100)
	if err := SaveCheckpoint(&bytes.Buffer{}, nil); err == nil {
		t.Error("nil classification accepted")
	}
	if _, err := LoadCheckpoint(strings.NewReader("not json"), ds); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadCheckpoint(strings.NewReader(`{"version":99}`), ds); err == nil {
		t.Error("bad version accepted")
	}
	if _, err := LoadCheckpoint(strings.NewReader(`{"version":1,"classes":[]}`), ds); err == nil {
		t.Error("no classes accepted")
	}
	// Schema mismatch: checkpoint from the 2-attribute dataset loaded
	// against a 1-attribute dataset.
	cls2, _ := convergedClassification(t, 100)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, cls2); err != nil {
		t.Fatal(err)
	}
	other := dataset.MustNew("one", []dataset.Attribute{{Name: "x", Type: dataset.Real}})
	other.AppendRow([]float64{1})
	if _, err := LoadCheckpoint(&buf, other); err == nil {
		t.Error("schema mismatch accepted")
	}
}

// TestCheckpointTypeRoundTrip covers the unified Checkpoint type directly:
// one Save/Load pair must round-trip both a plain classification snapshot
// (Search nil in, nil out) and a mid-search snapshot (SearchPoint preserved
// field-for-field), through both the stream and the file forms. The legacy
// function wrappers are byte-compatible with it by construction.
func TestCheckpointTypeRoundTrip(t *testing.T) {
	cls, ds := convergedClassification(t, 600)

	var plain bytes.Buffer
	if err := (&Checkpoint{Classification: cls}).Save(&plain); err != nil {
		t.Fatal(err)
	}
	var legacy bytes.Buffer
	if err := SaveCheckpoint(&legacy, cls); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), legacy.Bytes()) {
		t.Fatal("Checkpoint.Save and SaveCheckpoint produced different bytes")
	}
	var got Checkpoint
	if err := got.Load(bytes.NewReader(plain.Bytes()), ds); err != nil {
		t.Fatal(err)
	}
	if got.Search != nil {
		t.Fatal("plain snapshot loaded a SearchPoint")
	}
	if got.Classification.J() != cls.J() || got.Classification.LogPost != cls.LogPost {
		t.Fatalf("classification mismatch: %+v", got.Classification)
	}

	sp := &SearchPoint{TryIndex: 3, StartJ: 5, Try: 1, TrySeed: 99, CycleInTry: 7, BelowTol: 2, LastPost: cls.LogPost, SearchSeed: 42}
	path := filepath.Join(t.TempDir(), "ck.json")
	if err := (&Checkpoint{Classification: cls, Search: sp}).SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// Loading into a previously-used Checkpoint must fully overwrite it.
	if err := got.LoadFile(path, ds); err != nil {
		t.Fatal(err)
	}
	if got.Search == nil || !reflect.DeepEqual(got.Search, sp) {
		t.Fatalf("SearchPoint did not round-trip: %+v", got.Search)
	}
	if got.Classification.LogPost != cls.LogPost {
		t.Fatalf("classification mismatch after search round-trip")
	}

	// And the reverse: loading a plain snapshot must clear a stale Search.
	if err := got.Load(bytes.NewReader(plain.Bytes()), ds); err != nil {
		t.Fatal(err)
	}
	if got.Search != nil {
		t.Fatal("stale SearchPoint survived a plain load")
	}

	if err := (&Checkpoint{}).Save(&plain); err == nil {
		t.Fatal("nil classification accepted")
	}
	bad := &Checkpoint{Classification: cls, Search: &SearchPoint{LastPost: math.Inf(-1)}}
	if err := bad.Save(&plain); err == nil || !strings.Contains(err.Error(), "before first cycle") {
		t.Fatalf("pre-first-cycle search snapshot accepted: %v", err)
	}
}
