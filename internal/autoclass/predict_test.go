package autoclass

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/stats"
)

// fitScenario fits a small classification on the scenario's dataset so
// predict tests score under realistic mid-run parameters rather than the
// prior-seeded initial state.
func fitScenario(t testing.TB, sc kernelScenario, j, cycles int) *Classification {
	t.Helper()
	cfg := DefaultConfig()
	cfg.MaxCycles = cycles
	cfg.PruneClasses = false
	cls := specClassification(t, sc.ds, sc.spec, j)
	eng, err := NewEngine(sc.ds.All(), cls, cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.InitRandom(5); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return cls
}

// holdout generates a fresh draw from the same generator family as the
// scenario — rows the fitted classification never saw — including missing
// values and, for the all-missing row convention, one fully-missing case.
func holdout(t testing.TB, name string, n int) *dataset.Dataset {
	t.Helper()
	var ds *dataset.Dataset
	var err error
	switch name {
	case "paper_default":
		ds, err = datagen.Paper(n, 101)
	case "paper_missing":
		ds, err = datagen.Paper(n, 101)
		if err == nil {
			_, err = datagen.InjectMissing(ds, 0.15, 103)
		}
	case "protein_correlated_missing":
		ds, _, err = datagen.ProteinMixture().Generate(n, 107)
		if err == nil {
			_, err = datagen.InjectMissing(ds, 0.1, 109)
		}
	case "lognormal_missing":
		ds, _, err = datagen.LogNormalMixture(n, 113)
		if err == nil {
			_, err = datagen.InjectMissing(ds, 0.1, 127)
		}
	default:
		t.Fatalf("unknown scenario %q", name)
	}
	if err != nil {
		t.Fatal(err)
	}
	// Blank out one mid-dataset row entirely: every term must skip it, so
	// it exercises the no-evidence (prior-weights) fallback.
	if n > 2 {
		row := ds.Row(n / 2)
		for k := range row {
			row[k] = dataset.Missing
		}
	}
	return ds
}

// TestPredictBlockedMatchesReference is the predict property test: on new
// data (missing values included, plus an all-missing row) the blocked batch
// path must reproduce the per-row reference oracle's memberships and
// log-likelihood to ≤1e-12 and the exact MAP classes — across every term
// kind and dataset sizes straddling the block and shard boundaries.
func TestPredictBlockedMatchesReference(t *testing.T) {
	for _, n := range []int{3, 255, 256, 257, 1300} {
		for _, sc := range kernelScenarios(t, 600) {
			t.Run(fmt.Sprintf("%s/n=%d", sc.name, n), func(t *testing.T) {
				cls := fitScenario(t, sc, 3, 8)
				ds := holdout(t, sc.name, n)
				ref, err := Predict(cls, ds, PredictConfig{Kernels: Reference})
				if err != nil {
					t.Fatal(err)
				}
				blk, err := Predict(cls, ds, PredictConfig{Kernels: Blocked})
				if err != nil {
					t.Fatal(err)
				}
				if ref.N() != n || blk.N() != n || ref.J != blk.J {
					t.Fatalf("shape mismatch: ref %dx%d, blocked %dx%d", ref.N(), ref.J, blk.N(), blk.J)
				}
				for i := range ref.Memberships {
					if !stats.AlmostEqual(blk.Memberships[i], ref.Memberships[i], 1e-12) {
						t.Fatalf("membership %d: blocked %v, reference %v", i, blk.Memberships[i], ref.Memberships[i])
					}
				}
				for i := range ref.MAP {
					if blk.MAP[i] != ref.MAP[i] {
						t.Fatalf("MAP %d: blocked %d, reference %d", i, blk.MAP[i], ref.MAP[i])
					}
				}
				if !stats.AlmostEqual(blk.LogLik, ref.LogLik, 1e-12) {
					t.Fatalf("loglik: blocked %v, reference %v", blk.LogLik, ref.LogLik)
				}
			})
		}
	}
}

// TestPredictMatchesPerRowAPI pins the scorer to the established per-row
// public API: reference-mode memberships must be bitwise what
// Classification.Predict returns, MAP what HardAssign returns, and LogLik
// what HeldoutLogLik computes.
func TestPredictMatchesPerRowAPI(t *testing.T) {
	sc := kernelScenarios(t, 600)[1] // paper_missing
	cls := fitScenario(t, sc, 3, 8)
	ds := holdout(t, sc.name, 700)
	p, err := Predict(cls, ds, PredictConfig{Kernels: Reference})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ds.N(); i++ {
		row := ds.Row(i)
		want := cls.Predict(row)
		got := p.Membership(i)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("row %d class %d: batch %v, Classification.Predict %v", i, j, got[j], want[j])
			}
		}
		if ha := cls.HardAssign(row); p.MAP[i] != ha {
			t.Fatalf("row %d: batch MAP %d, HardAssign %d", i, p.MAP[i], ha)
		}
	}
	if want := HeldoutLogLik(cls, ds.All()); p.LogLik != want {
		t.Fatalf("loglik: batch %v, HeldoutLogLik %v", p.LogLik, want)
	}
}

// TestPredictDeterministicAcrossParallelism: within a kernel mode, every
// Parallelism setting — including 0 and GOMAXPROCS — must produce
// bitwise-identical predictions (the scorer always runs the fixed shard
// grid, unlike the training engine's seed-sequential legacy mode).
func TestPredictDeterministicAcrossParallelism(t *testing.T) {
	sc := kernelScenarios(t, 600)[0]
	cls := fitScenario(t, sc, 4, 8)
	ds := holdout(t, "paper_missing", 3000)
	for _, mode := range []KernelMode{Blocked, Reference} {
		base, err := Predict(cls, ds, PredictConfig{Kernels: mode, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{0, 3, 8, -1} {
			got, err := Predict(cls, ds, PredictConfig{Kernels: mode, Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			for i := range base.Memberships {
				if got.Memberships[i] != base.Memberships[i] {
					t.Fatalf("%v par=%d: membership %d = %v, want %v",
						mode, par, i, got.Memberships[i], base.Memberships[i])
				}
			}
			for i := range base.MAP {
				if got.MAP[i] != base.MAP[i] {
					t.Fatalf("%v par=%d: MAP %d = %d, want %d", mode, par, i, got.MAP[i], base.MAP[i])
				}
			}
			if got.LogLik != base.LogLik {
				t.Fatalf("%v par=%d: loglik %v, want %v", mode, par, got.LogLik, base.LogLik)
			}
		}
	}
}

// TestPredictInvariants checks the result-shape contract: memberships are
// probability rows summing to 1, the all-missing row falls back to the
// prior mixing weights, and errors surface for nil/mismatched inputs.
func TestPredictInvariants(t *testing.T) {
	sc := kernelScenarios(t, 600)[0]
	cls := fitScenario(t, sc, 3, 8)
	n := 300
	ds := holdout(t, "paper_default", n)
	p, err := Predict(cls, ds, PredictConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.N(); i++ {
		sum := 0.0
		for _, v := range p.Membership(i) {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("row %d: membership out of range: %v", i, p.Membership(i))
			}
			sum += v
		}
		if !stats.AlmostEqual(sum, 1, 1e-9) {
			t.Fatalf("row %d: memberships sum to %v", i, sum)
		}
	}
	// The all-missing row carries no evidence: its memberships are exactly
	// the prior mixing weights the per-row API reports for it.
	blank := n / 2
	want := cls.Predict(ds.Row(blank))
	for j, v := range p.Membership(blank) {
		if !stats.AlmostEqual(v, want[j], 1e-12) {
			t.Fatalf("all-missing row class %d: membership %v, want prior weight %v", j, v, want[j])
		}
	}

	if _, err := Predict(nil, ds, PredictConfig{}); err == nil {
		t.Fatal("nil classification accepted")
	}
	if _, err := Predict(cls, nil, PredictConfig{}); err == nil {
		t.Fatal("nil dataset accepted")
	}
	wrong := dataset.MustNew("wrong", []dataset.Attribute{{Name: "x", Type: dataset.Real}})
	wrong.AppendRow([]float64{1})
	if _, err := Predict(cls, wrong, PredictConfig{}); err == nil {
		t.Fatal("schema-mismatched dataset accepted")
	}
	empty := dataset.MustNew("empty", ds.Attrs())
	p2, err := Predict(cls, empty, PredictConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if p2.N() != 0 || p2.LogLik != 0 {
		t.Fatalf("empty dataset: N=%d LogLik=%v", p2.N(), p2.LogLik)
	}
}

// TestPredictConcurrentSameModel exercises the documented thread-safety
// contract: concurrent Predict calls against one shared classification
// (the serving registry's access pattern) must race-free produce the same
// answer. Run with -race to enforce the "no shared mutable state" claim.
func TestPredictConcurrentSameModel(t *testing.T) {
	sc := kernelScenarios(t, 600)[0]
	cls := fitScenario(t, sc, 3, 8)
	ds := holdout(t, "paper_default", 1500)
	want, err := Predict(cls, ds, PredictConfig{})
	if err != nil {
		t.Fatal(err)
	}
	const clients = 8
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		go func() {
			got, err := Predict(cls, ds, PredictConfig{Parallelism: 2})
			if err != nil {
				errs <- err
				return
			}
			if got.LogLik != want.LogLik {
				errs <- fmt.Errorf("concurrent loglik %v, want %v", got.LogLik, want.LogLik)
				return
			}
			errs <- nil
		}()
	}
	for c := 0; c < clients; c++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
