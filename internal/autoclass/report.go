package autoclass

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/stats"
)

// AttrInfluence scores how much one attribute differentiates a class from
// the dataset's global distribution — AutoClass's "influence values". It is
// the Kullback–Leibler divergence of the class's term from the global
// single-class model of the same attribute.
type AttrInfluence struct {
	// Attr is the dataset column; Name its attribute name.
	Attr int
	Name string
	// Influence is the KL divergence in nats (larger = more distinctive).
	Influence float64
}

// ClassReport summarizes one class for human consumption.
type ClassReport struct {
	// Index is the class position in the classification.
	Index int
	// Weight is the class's total membership weight W_j; Share is
	// W_j / N.
	Weight, Share float64
	// Terms describes every term's parameters.
	Terms []string
	// Influences lists per-attribute influence values, most influential
	// first.
	Influences []AttrInfluence
}

// Report is the full classification report, modeled on AutoClass C's
// report generator output.
type Report struct {
	// J is the number of classes; N the dataset size.
	J, N int
	// LogLik, LogPost and Score are the classification's quality measures.
	LogLik, LogPost, Score float64
	// Cycles and Converged summarize the parameter search that produced it.
	Cycles    int
	Converged bool
	// Classes are per-class summaries ordered by decreasing weight.
	Classes []ClassReport
	// Divergence[a][b] is the symmetric Kullback–Leibler divergence
	// between classes a and b (original class indices, not report order),
	// summed over the model terms — AutoClass-style class-separation
	// diagnostics. Larger = better separated; the minimum off-diagonal
	// entry names the most confusable pair.
	Divergence [][]float64
}

// MinDivergence returns the smallest off-diagonal class divergence and the
// pair achieving it (-1, -1 if fewer than two classes).
func (r *Report) MinDivergence() (a, b int, d float64) {
	a, b = -1, -1
	d = math.Inf(1)
	for i := range r.Divergence {
		for j := i + 1; j < len(r.Divergence[i]); j++ {
			if r.Divergence[i][j] < d {
				a, b, d = i, j, r.Divergence[i][j]
			}
		}
	}
	if a == -1 {
		return -1, -1, 0
	}
	return a, b, d
}

// BuildReport computes the report for a classification over its dataset.
func BuildReport(cls *Classification, ds *dataset.Dataset) *Report {
	rep := &Report{
		J:         cls.J(),
		N:         cls.N,
		LogLik:    cls.LogLik,
		LogPost:   cls.LogPost,
		Score:     cls.Score(),
		Cycles:    cls.Cycles,
		Converged: cls.Converged,
	}
	for idx, cl := range cls.Classes {
		cr := ClassReport{
			Index:  idx,
			Weight: cl.W,
			Share:  cl.W / float64(cls.N),
		}
		for _, t := range cl.Terms {
			cr.Terms = append(cr.Terms, t.Describe(ds))
			cr.Influences = append(cr.Influences, termInfluences(t, ds, cls.Priors)...)
		}
		sort.Slice(cr.Influences, func(a, b int) bool {
			return cr.Influences[a].Influence > cr.Influences[b].Influence
		})
		rep.Classes = append(rep.Classes, cr)
	}
	sort.SliceStable(rep.Classes, func(a, b int) bool {
		return rep.Classes[a].Weight > rep.Classes[b].Weight
	})
	rep.Divergence = classDivergences(cls)
	return rep
}

// classDivergences computes the symmetric pairwise KL matrix over classes,
// summing per-term divergences. Terms that cannot compare (mixed kinds —
// impossible within one classification) contribute zero.
func classDivergences(cls *Classification) [][]float64 {
	j := cls.J()
	out := make([][]float64, j)
	for a := range out {
		out[a] = make([]float64, j)
	}
	for a := 0; a < j; a++ {
		for b := a + 1; b < j; b++ {
			total := 0.0
			for bi := range cls.Classes[a].Terms {
				ab, err1 := cls.Classes[a].Terms[bi].KLTo(cls.Classes[b].Terms[bi])
				ba, err2 := cls.Classes[b].Terms[bi].KLTo(cls.Classes[a].Terms[bi])
				if err1 == nil && err2 == nil {
					total += (ab + ba) / 2
				}
			}
			out[a][b] = total
			out[b][a] = total
		}
	}
	return out
}

// termInfluences computes the per-attribute influence of one term.
func termInfluences(t model.Term, ds *dataset.Dataset, pr *model.Priors) []AttrInfluence {
	var out []AttrInfluence
	params := t.Params()
	switch t.Kind() {
	case model.SingleNormal:
		k := t.Attrs()[0]
		out = append(out, AttrInfluence{
			Attr: k, Name: ds.Attr(k).Name,
			Influence: klNormal(params[0], params[1], pr.Mean[k], pr.Sigma[k]),
		})
	case model.LogNormal:
		k := t.Attrs()[0]
		out = append(out, AttrInfluence{
			Attr: k, Name: ds.Attr(k).Name,
			Influence: klNormal(params[0], params[1], pr.LogMean[k], pr.LogSigma[k]),
		})
	case model.SingleMultinomial:
		k := t.Attrs()[0]
		global := pr.GlobalFreq[k]
		infl := 0.0
		if global != nil {
			infl = stats.KLDivergence(params, global)
			if math.IsInf(infl, 1) {
				infl = math.MaxFloat64
			}
		}
		out = append(out, AttrInfluence{Attr: k, Name: ds.Attr(k).Name, Influence: infl})
	case model.MultiNormal:
		// Per-attribute diagonal approximation: marginal class normal vs
		// global normal.
		attrs := t.Attrs()
		d := len(attrs)
		means := params[:d]
		cov := params[d:]
		for i, k := range attrs {
			sigma := math.Sqrt(cov[i*d+i])
			out = append(out, AttrInfluence{
				Attr: k, Name: ds.Attr(k).Name,
				Influence: klNormal(means[i], sigma, pr.Mean[k], pr.Sigma[k]),
			})
		}
	}
	return out
}

// klNormal is KL(N(μc,σc) ‖ N(μg,σg)) in closed form.
func klNormal(muC, sigmaC, muG, sigmaG float64) float64 {
	if sigmaC <= 0 || sigmaG <= 0 {
		return 0
	}
	r := sigmaC / sigmaG
	dm := muC - muG
	return math.Log(1/r) + (r*r+dm*dm/(sigmaG*sigmaG))/2 - 0.5
}

// WriteTo renders the report as text.
func (r *Report) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "AutoClass classification report\n")
	fmt.Fprintf(&b, "classes=%d  N=%d  cycles=%d  converged=%v\n", r.J, r.N, r.Cycles, r.Converged)
	fmt.Fprintf(&b, "log likelihood=%.4f  log posterior=%.4f  score=%.4f\n", r.LogLik, r.LogPost, r.Score)
	for _, c := range r.Classes {
		fmt.Fprintf(&b, "\nclass %d  weight=%.1f (%.1f%% of data)\n", c.Index, c.Weight, 100*c.Share)
		for _, t := range c.Terms {
			fmt.Fprintf(&b, "  %s\n", t)
		}
		if len(c.Influences) > 0 {
			fmt.Fprintf(&b, "  influence: ")
			parts := make([]string, 0, len(c.Influences))
			for _, in := range c.Influences {
				parts = append(parts, fmt.Sprintf("%s=%.3f", in.Name, in.Influence))
			}
			fmt.Fprintf(&b, "%s\n", strings.Join(parts, "  "))
		}
	}
	if a, bIdx, d := r.MinDivergence(); a >= 0 {
		fmt.Fprintf(&b, "\nmost confusable classes: %d and %d (symmetric KL %.3f)\n", a, bIdx, d)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the report as text.
func (r *Report) String() string {
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		return fmt.Sprintf("report error: %v", err)
	}
	return b.String()
}
