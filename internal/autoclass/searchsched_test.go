package autoclass

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/model"
	"repro/internal/rng"
)

func TestVariantsMatchSequentialSeedChain(t *testing.T) {
	cfg := quickSearchConfig()
	vs := cfg.Variants()
	if len(vs) != len(cfg.StartJList)*cfg.Tries {
		t.Fatalf("%d variants", len(vs))
	}
	seeds := rng.New(cfg.Seed)
	idx := 0
	for _, startJ := range cfg.StartJList {
		for try := 0; try < cfg.Tries; try++ {
			v := vs[idx]
			want := seeds.Uint64()
			if v.Index != idx || v.StartJ != startJ || v.Try != try || v.Seed != want {
				t.Fatalf("variant %d = %+v, want {%d %d %d %d}", idx, v, idx, startJ, try, want)
			}
			idx++
		}
	}
}

func TestSearchWorkersResolution(t *testing.T) {
	cfg := quickSearchConfig() // 3 × 2 = 6 variants
	for _, tc := range []struct{ p, want int }{
		{0, 1}, {1, 1}, {2, 2}, {6, 6}, {100, 6},
	} {
		cfg.SearchParallelism = tc.p
		if got := cfg.SearchWorkers(); got != tc.want {
			t.Errorf("SearchParallelism=%d resolved to %d, want %d", tc.p, got, tc.want)
		}
	}
	cfg.SearchParallelism = -1
	want := runtime.GOMAXPROCS(0)
	if n := len(cfg.StartJList) * cfg.Tries; want > n {
		want = n
	}
	if got := cfg.SearchWorkers(); got != want {
		t.Errorf("SearchParallelism=-1 resolved to %d, want %d", got, want)
	}
}

// fakeRunner returns a deterministic TrialRunner whose outcome depends only
// on (startJ, seed) — scores collide across seeds (mod 7) so duplicate
// elimination has work to do, and every EMResult field is deterministic so
// results can be compared exactly across worker counts.
func fakeRunner(tb testing.TB) TrialRunner {
	ds := paperDS(tb, 60)
	spec := model.DefaultSpec(ds)
	pr := model.NewPriors(ds, ds.Summarize())
	return func(startJ int, seed uint64) (*Classification, EMResult, error) {
		cls, err := NewClassification(ds, spec, pr, startJ)
		if err != nil {
			return nil, EMResult{}, err
		}
		cls.LogLik = -2000 - float64(seed%13)
		cls.LogPost = -1000 - float64(seed%7)
		em := EMResult{
			Cycles:        int(seed%5) + 1,
			Converged:     true,
			WtsSeconds:    0.25,
			ParamsSeconds: 0.5,
			ApproxSeconds: 0.125,
			InitSeconds:   1,
			ReducedValues: int(seed%11) + 1,
			Reductions:    int(seed%3) + 1,
		}
		return cls, em, nil
	}
}

func sameTries(a, b []TryResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSearchWithParallelismBitwiseIdentical is the generic-runner half of
// the determinism property: the full SearchResult — including the totals
// fold, whose inputs are deterministic here — is identical at every worker
// count.
func TestSearchWithParallelismBitwiseIdentical(t *testing.T) {
	run := fakeRunner(t)
	cfg := DefaultSearchConfig()
	cfg.StartJList = []int{2, 3}
	cfg.Tries = 6
	ref, err := SearchWith(run, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dups := 0
	for _, tr := range ref.Tries {
		if tr.Duplicate {
			dups++
		}
	}
	if dups == 0 {
		t.Fatal("synthetic runner produced no duplicates; the property is vacuous")
	}
	for _, workers := range []int{1, 2, 8} {
		c := cfg
		c.SearchParallelism = workers
		res, err := SearchWith(run, c)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !sameTries(res.Tries, ref.Tries) {
			t.Fatalf("workers=%d: tries diverged\n%+v\nvs\n%+v", workers, res.Tries, ref.Tries)
		}
		if res.BestTry != ref.BestTry {
			t.Fatalf("workers=%d: best try %+v vs %+v", workers, res.BestTry, ref.BestTry)
		}
		if res.Totals.Cycles != ref.Totals.Cycles ||
			res.Totals.WtsSeconds != ref.Totals.WtsSeconds ||
			res.Totals.ParamsSeconds != ref.Totals.ParamsSeconds ||
			res.Totals.ApproxSeconds != ref.Totals.ApproxSeconds ||
			res.Totals.InitSeconds != ref.Totals.InitSeconds ||
			res.Totals.ReducedValues != ref.Totals.ReducedValues ||
			res.Totals.Reductions != ref.Totals.Reductions {
			t.Fatalf("workers=%d: totals diverged: %+v vs %+v", workers, res.Totals, ref.Totals)
		}
	}
}

// TestSearchParallelismBitwiseIdentical is the native-engine half of the
// property (ISSUE 6 satellite): Tries order, duplicate marks and the best
// checkpoint bytes are bitwise identical to the sequential oracle at
// SearchParallelism ∈ {1, 2, 8}.
func TestSearchParallelismBitwiseIdentical(t *testing.T) {
	ds := paperDS(t, 800)
	spec := model.DefaultSpec(ds)
	cfg := quickSearchConfig()
	ref, err := Search(ds, spec, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var refBest bytes.Buffer
	if err := SaveCheckpoint(&refBest, ref.Best); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		c := cfg
		c.SearchParallelism = workers
		res, err := Search(ds, spec, c, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !sameTries(res.Tries, ref.Tries) {
			t.Fatalf("workers=%d: tries diverged", workers)
		}
		if res.BestTry != ref.BestTry {
			t.Fatalf("workers=%d: best try diverged", workers)
		}
		if res.Totals.Cycles != ref.Totals.Cycles ||
			res.Totals.ReducedValues != ref.Totals.ReducedValues ||
			res.Totals.Reductions != ref.Totals.Reductions {
			t.Fatalf("workers=%d: deterministic totals diverged", workers)
		}
		var best bytes.Buffer
		if err := SaveCheckpoint(&best, res.Best); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(best.Bytes(), refBest.Bytes()) {
			t.Fatalf("workers=%d: best checkpoint bytes diverged", workers)
		}
	}
}

func TestSchedulerPromiseOrderClaimsSmallJFirst(t *testing.T) {
	cfg := quickSearchConfig()
	cfg.StartJList = []int{8, 2, 4}
	cfg.Tries = 2
	sched, err := NewSearchScheduler(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantJ := []int{2, 2, 4, 4, 8, 8}
	var claimed []Variant
	for {
		v, ok := sched.Next()
		if !ok {
			break
		}
		claimed = append(claimed, v)
	}
	if len(claimed) != len(wantJ) {
		t.Fatalf("claimed %d variants", len(claimed))
	}
	for i, v := range claimed {
		if v.StartJ != wantJ[i] {
			t.Fatalf("claim %d is J=%d, want %d (promise order)", i, v.StartJ, wantJ[i])
		}
	}
	// Commit in claimed (promise) order; the result must still list tries
	// in schedule order: 8, 8, 2, 2, 4, 4.
	run := fakeRunner(t)
	for _, v := range claimed {
		cls, em, err := run(v.StartJ, v.Seed)
		sched.Commit(v, cls, em, err)
	}
	res, err := sched.Result()
	if err != nil {
		t.Fatal(err)
	}
	scheduleJ := []int{8, 8, 2, 2, 4, 4}
	for i, tr := range res.Tries {
		if tr.StartJ != scheduleJ[i] || tr.Try != i%2 {
			t.Fatalf("committed try %d is J=%d #%d, want J=%d #%d", i, tr.StartJ, tr.Try, scheduleJ[i], i%2)
		}
	}
}

// TestSearchParallelErrorMatchesSequential: an error surfaces at its
// schedule position with the same message the sequential loop produces,
// regardless of worker count.
func TestSearchParallelErrorMatchesSequential(t *testing.T) {
	cfg := DefaultSearchConfig()
	cfg.StartJList = []int{2, 3}
	cfg.Tries = 3
	failSeed := cfg.Variants()[3].Seed
	boom := errors.New("synthetic failure")
	base := fakeRunner(t)
	run := func(startJ int, seed uint64) (*Classification, EMResult, error) {
		if seed == failSeed {
			return nil, EMResult{}, boom
		}
		return base(startJ, seed)
	}
	_, seqErr := SearchWith(run, cfg)
	if seqErr == nil || !errors.Is(seqErr, boom) {
		t.Fatalf("sequential error %v", seqErr)
	}
	for _, workers := range []int{2, 6} {
		c := cfg
		c.SearchParallelism = workers
		_, err := SearchWith(run, c)
		if err == nil || err.Error() != seqErr.Error() {
			t.Fatalf("workers=%d error %q, want %q", workers, err, seqErr)
		}
	}
}

func TestBasinEarlyStop(t *testing.T) {
	// Strongly separated data: restarts with the same start J converge to
	// the same optimum, so late variants flatten inside committed basins.
	ds := paperDS(t, 2000)
	spec := model.DefaultSpec(ds)
	cfg := quickSearchConfig()
	cfg.StartJList = []int{5}
	cfg.Tries = 6
	cfg.EM.MaxCycles = 60
	cfg.SearchParallelism = 3
	cfg.BasinEarlyStop = true
	res, err := Search(ds, spec, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no best classification")
	}
	stopped := 0
	for _, tr := range res.Tries {
		if tr.EarlyStopped {
			stopped++
			if !tr.Duplicate {
				t.Fatalf("early-stopped try %+v not marked duplicate", tr)
			}
		}
	}
	if res.BestTry.EarlyStopped || res.BestTry.Duplicate {
		t.Fatalf("best try %+v is a cut or duplicate try", res.BestTry)
	}
	t.Logf("early-stopped %d of %d tries", stopped, len(res.Tries))
}

func TestSchedulerRestoreRejectsOversizedState(t *testing.T) {
	cfg := quickSearchConfig()
	sched, err := NewSearchScheduler(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	completed := make([]TryResult, len(cfg.StartJList)*cfg.Tries+1)
	for i := range completed {
		completed[i].Seed = uint64(i)
	}
	if err := sched.restore(completed, nil, TryResult{}, EMResult{}); err == nil {
		t.Fatal("oversized completed list accepted")
	}
}

func TestSearchWithValidatesThroughScheduler(t *testing.T) {
	cfg := quickSearchConfig()
	cfg.Tries = 0
	if _, err := SearchWith(func(int, uint64) (*Classification, EMResult, error) {
		return nil, EMResult{}, fmt.Errorf("unreachable")
	}, cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
}
