package autoclass

import (
	"fmt"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dataset"
)

// mixedMissDS returns a mixed real+discrete dataset with injected missing
// values — every term kind and the mask plumbing on one workload.
func mixedMissDS(t testing.TB, n int) *dataset.Dataset {
	t.Helper()
	ds, _, err := datagen.ProteinMixture().Generate(n, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := datagen.InjectMissing(ds, 0.03, 11); err != nil {
		t.Fatal(err)
	}
	return ds
}

// trainTrajectory runs InitRandom + Run on the given dataset and returns
// the per-cycle posterior history plus the final classification.
func trainTrajectory(t testing.TB, ds *dataset.Dataset, j int, cfg Config, seed uint64) ([]float64, *Classification) {
	t.Helper()
	cls := mustClassification(t, ds, j)
	eng, err := NewEngine(ds.All(), cls, cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.InitRandom(seed); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res.History, cls
}

// sameBits fails unless a and b are bitwise-identical float64 sequences.
func sameBits(t *testing.T, what string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d != %d", what, len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("%s[%d]: %x (%v) != %x (%v)", what, i,
				math.Float64bits(a[i]), a[i], math.Float64bits(b[i]), b[i])
		}
	}
}

// sameClassification fails unless the two classifications' numeric state
// is bitwise identical (weights, mixing weights, posterior).
func sameClassification(t *testing.T, a, b *Classification) {
	t.Helper()
	if a.J() != b.J() {
		t.Fatalf("J %d != %d", a.J(), b.J())
	}
	for cj := range a.Classes {
		sameBits(t, fmt.Sprintf("class %d {W, LogPi}", cj),
			[]float64{a.Classes[cj].W, a.Classes[cj].LogPi},
			[]float64{b.Classes[cj].W, b.Classes[cj].LogPi})
	}
	sameBits(t, "{LogLik, LogPost}", []float64{a.LogLik, a.LogPost}, []float64{b.LogLik, b.LogPost})
}

// chunkBackings opens the dataset under every chunk backing: the in-memory
// store over the materialized columns, and the chunk file under its three
// modes. The returned datasets present identical rows.
func chunkBackings(t *testing.T, ds *dataset.Dataset, chunkRows int) map[string]*dataset.Dataset {
	t.Helper()
	out := map[string]*dataset.Dataset{}
	mem, err := dataset.ChunkedCopy(ds, chunkRows)
	if err != nil {
		t.Fatal(err)
	}
	out["mem"] = mem
	path := filepath.Join(t.TempDir(), "train.chunks")
	if err := dataset.WriteChunked(path, ds, chunkRows); err != nil {
		t.Fatal(err)
	}
	for name, opts := range map[string]dataset.ChunkOptions{
		"file-inmemory": {Mode: dataset.ChunkInMemory},
		"file-mmap":     {Mode: dataset.ChunkMmap},
		"file-cached":   {Mode: dataset.ChunkCached, Chunks: 2},
	} {
		vd, err := dataset.OpenChunked(path, opts)
		if err != nil {
			if name == "file-mmap" {
				t.Logf("mmap unavailable, skipping backing: %v", err)
				continue
			}
			t.Fatal(err)
		}
		t.Cleanup(func() { vd.Close() })
		out[name] = vd
	}
	return out
}

// TestFusedTrainingMatchesClassic is the tentpole property test: training
// on a chunk-backed dataset — any backing, any chunk size, including
// partial final chunks — produces the bitwise-identical trajectory of the
// classic two-pass engine on the materialized dataset.
func TestFusedTrainingMatchesClassic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCycles = 6
	cfg.Parallelism = 1
	for _, n := range []int{1000, 4096} {
		ds := mixedMissDS(t, n)
		wantHist, wantCls := trainTrajectory(t, ds, 4, cfg, 3)
		for _, chunkRows := range []int{256, 512, 1024} {
			for name, vd := range chunkBackings(t, ds, chunkRows) {
				t.Run(fmt.Sprintf("n%d_cr%d_%s", n, chunkRows, name), func(t *testing.T) {
					gotHist, gotCls := trainTrajectory(t, vd, 4, cfg, 3)
					sameBits(t, "history", gotHist, wantHist)
					sameClassification(t, gotCls, wantCls)
				})
			}
		}
	}
}

// TestFusedParallelismInvariance: on the chunk plane the worker count must
// not change a single bit either — same fixed shard/block grids, same
// ascending merges, per-worker cursors.
func TestFusedParallelismInvariance(t *testing.T) {
	ds := mixedMissDS(t, 3000)
	vd, err := dataset.ChunkedCopy(ds, 512)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxCycles = 5
	cfg.Parallelism = 1
	wantHist, wantCls := trainTrajectory(t, vd, 3, cfg, 9)
	for _, p := range []int{2, 4, -1} {
		cfg.Parallelism = p
		gotHist, gotCls := trainTrajectory(t, vd, 3, cfg, 9)
		sameBits(t, fmt.Sprintf("history(p=%d)", p), gotHist, wantHist)
		sameClassification(t, gotCls, wantCls)
	}
}

// TestChunkedEngineRejections: the chunk plane serves only the blocked
// synchronous path.
func TestChunkedEngineRejections(t *testing.T) {
	ds := mixedMissDS(t, 600)
	vd, err := dataset.ChunkedCopy(ds, 256)
	if err != nil {
		t.Fatal(err)
	}
	cls := mustClassification(t, ds, 2)
	cfg := DefaultConfig()
	cfg.Kernels = Reference
	if _, err := NewEngine(vd.All(), cls, cfg, nil, nil); err == nil {
		t.Error("Reference kernels accepted on a chunk-backed dataset")
	}
	cfg = DefaultConfig()
	cfg.SyncEvery = 3
	if _, err := NewEngine(vd.All(), cls, cfg, nil, nil); err == nil {
		t.Error("SyncEvery > 1 accepted on a chunk-backed dataset")
	}
}

// TestPredictChunkedMatchesMaterialized: batch inference over every chunk
// backing returns bitwise the memberships, MAP assignments and held-out
// log-likelihood of the materialized scorer.
func TestPredictChunkedMatchesMaterialized(t *testing.T) {
	ds := mixedMissDS(t, 2500)
	cfg := DefaultConfig()
	cfg.MaxCycles = 4
	cfg.Parallelism = 1
	_, cls := trainTrajectory(t, ds, 3, cfg, 5)
	want, err := Predict(cls, ds, PredictConfig{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, chunkRows := range []int{256, 1024} {
		for name, vd := range chunkBackings(t, ds, chunkRows) {
			got, err := Predict(cls, vd, PredictConfig{Parallelism: 2})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			sameBits(t, fmt.Sprintf("cr%d_%s memberships", chunkRows, name), got.Memberships, want.Memberships)
			sameBits(t, fmt.Sprintf("cr%d_%s loglik", chunkRows, name), []float64{got.LogLik}, []float64{want.LogLik})
			for i := range want.MAP {
				if got.MAP[i] != want.MAP[i] {
					t.Fatalf("cr%d_%s MAP[%d]: %d != %d", chunkRows, name, i, got.MAP[i], want.MAP[i])
				}
			}
		}
	}
	// Reference kernels have no chunk plane.
	vd, err := dataset.ChunkedCopy(ds, 256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Predict(cls, vd, PredictConfig{Kernels: Reference}); err == nil {
		t.Error("Reference predict accepted on a chunk-backed dataset")
	}
}

// TestPredictorReuseZeroAlloc is the serving-loop allocation guard: a warm
// Predictor scoring a same-shaped batch into a reused Prediction performs
// zero allocations — kernels are identity-cached and merely refreshed,
// scratch and result buffers are reused.
func TestPredictorReuseZeroAlloc(t *testing.T) {
	ds := mixedMissDS(t, 1200)
	cfg := DefaultConfig()
	cfg.MaxCycles = 3
	cfg.Parallelism = 1
	_, cls := trainTrajectory(t, ds, 3, cfg, 5)
	pr, err := NewPredictor(cls, PredictConfig{})
	if err != nil {
		t.Fatal(err)
	}
	view := ds.All()
	p := &Prediction{}
	for warm := 0; warm < 2; warm++ {
		if err := pr.PredictInto(view, p); err != nil {
			t.Fatal(err)
		}
	}
	if n := testing.AllocsPerRun(10, func() {
		if err := pr.PredictInto(view, p); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("warm PredictInto allocates %v times per batch", n)
	}
}

// TestFusedSteadyStateZeroAlloc guards the out-of-core hot loop: with a
// warm engine on a bounded-residency (cached) backing, one full fused pass
// over the data — chunk faults included — allocates nothing.
func TestFusedSteadyStateZeroAlloc(t *testing.T) {
	ds := mixedMissDS(t, 6*256)
	path := filepath.Join(t.TempDir(), "alloc.chunks")
	if err := dataset.WriteChunked(path, ds, 256); err != nil {
		t.Fatal(err)
	}
	vd, err := dataset.OpenChunked(path, dataset.ChunkOptions{Mode: dataset.ChunkCached, Chunks: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer vd.Close()
	cls := mustClassification(t, vd, 3)
	cfg := DefaultConfig()
	cfg.Parallelism = 1
	cfg.PruneClasses = false
	eng, err := NewEngine(vd.All(), cls, cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.InitRandom(2); err != nil {
		t.Fatal(err)
	}
	// Warm the scratch, kernels, shard buffers and cache frames.
	for warm := 0; warm < 2; warm++ {
		if _, err := eng.BaseCycle(); err != nil {
			t.Fatal(err)
		}
	}
	n := eng.view.N()
	j := eng.cls.J()
	eng.prepareKernels()
	offs, total := eng.statOffsets()
	width := j + 1 + total
	bufs := eng.scratch.get(1, width)
	bs := eng.workerBlockScratch(1, j)[0]
	if a := testing.AllocsPerRun(5, func() {
		eng.fusedRowsBlocked(0, n, bufs[0][:j+1], bufs[0][j+1:], offs, bs)
	}); a != 0 {
		t.Errorf("steady-state fused pass allocates %v times", a)
	}
	eng.closeCursors()
}

// TestFusedKillResume: checkpoint/restore on the mmap backing continues
// the trajectory bitwise — the out-of-core kill/resume story. The
// "killed" run trains through cycle k, its state is snapshotted, the file
// is re-opened cold (a new process image would do exactly this), and the
// resumed engine must land on the uninterrupted run's bits.
func TestFusedKillResume(t *testing.T) {
	ds := mixedMissDS(t, 2000)
	path := filepath.Join(t.TempDir(), "resume.chunks")
	if err := dataset.WriteChunked(path, ds, 512); err != nil {
		t.Fatal(err)
	}
	open := func() *dataset.Dataset {
		vd, err := dataset.OpenChunked(path, dataset.ChunkOptions{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { vd.Close() })
		return vd
	}
	cfg := DefaultConfig()
	cfg.MaxCycles = 6
	cfg.Parallelism = 1
	const seed = 13

	// Uninterrupted run.
	wantHist, wantCls := trainTrajectory(t, open(), 3, cfg, seed)

	// Interrupted run: 3 cycles, snapshot, "crash".
	vd1 := open()
	cls1 := mustClassification(t, vd1, 3)
	eng1, err := NewEngine(vd1.All(), cls1, cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng1.InitRandom(seed); err != nil {
		t.Fatal(err)
	}
	var firstHist []float64
	for c := 0; c < 3; c++ {
		cs, err := eng1.BaseCycle()
		if err != nil {
			t.Fatal(err)
		}
		eng1.convergedAfter(cs.LogPost)
		firstHist = append(firstHist, cs.LogPost)
	}
	snap := eng1.State()
	clone := cls1.Clone()

	// Resume in a fresh engine over a freshly opened mapping.
	vd2 := open()
	eng2, err := NewEngine(vd2.All(), clone, cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng2.Restore(snap)
	res, err := eng2.RunFrom(3)
	if err != nil {
		t.Fatal(err)
	}
	sameBits(t, "resumed history", append(firstHist, res.History...), wantHist)
	sameClassification(t, clone, wantCls)
}
