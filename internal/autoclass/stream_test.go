package autoclass

import (
	"fmt"
	"testing"

	"repro/internal/dataset"
)

// streamBatches cuts the dataset's rows into batches of the given size
// (the last may be partial) — the shape of chunk-at-a-time ingest.
func streamBatches(t *testing.T, ds *dataset.Dataset, batchRows int) []*dataset.Columns {
	t.Helper()
	store, err := dataset.ChunkColumns(ds.All().Columns(), batchRows)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*dataset.Columns, store.NumChunks())
	for c := range out {
		out[c] = store.Acquire(c)
	}
	return out
}

// TestStreamTrainerMatchesEngine: folding an EM cycle batch-by-batch —
// any ChunkAlign-multiple batch size — produces bitwise the trajectory of
// Engine.BaseCycle's deterministic sharded path over the same rows.
func TestStreamTrainerMatchesEngine(t *testing.T) {
	ds := mixedMissDS(t, 3000)
	const seed = 17
	cfg := DefaultConfig()
	cfg.MaxCycles = 5
	cfg.Parallelism = 1

	wantCls := mustClassification(t, ds, 4)
	eng, err := NewEngine(ds.All(), wantCls, cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.InitRandom(seed); err != nil {
		t.Fatal(err)
	}
	var wantHist []float64
	for c := 0; c < cfg.MaxCycles; c++ {
		cs, err := eng.BaseCycle()
		if err != nil {
			t.Fatal(err)
		}
		wantHist = append(wantHist, cs.LogPost)
	}

	for _, batchRows := range []int{256, 512, 1024, 2048} {
		t.Run(fmt.Sprintf("batch%d", batchRows), func(t *testing.T) {
			batches := streamBatches(t, ds, batchRows)
			cls := mustClassification(t, ds, 4)
			st, err := NewStreamTrainer(cls, cfg, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := st.BeginInit(seed); err != nil {
				t.Fatal(err)
			}
			for _, b := range batches {
				if err := st.Fold(b); err != nil {
					t.Fatal(err)
				}
			}
			if err := st.FinishInit(); err != nil {
				t.Fatal(err)
			}
			var gotHist []float64
			for c := 0; c < cfg.MaxCycles; c++ {
				for _, b := range batches {
					if err := st.Fold(b); err != nil {
						t.Fatal(err)
					}
				}
				cs, err := st.Flush()
				if err != nil {
					t.Fatal(err)
				}
				gotHist = append(gotHist, cs.LogPost)
			}
			sameBits(t, "history", gotHist, wantHist)
			sameClassification(t, cls, wantCls)
		})
	}
}

// TestStreamTrainerMixedBatchSizes: batch boundaries may vary within one
// stream (any block-multiple prefix batches), not just a uniform size.
func TestStreamTrainerMixedBatchSizes(t *testing.T) {
	ds := mixedMissDS(t, 2200)
	cfg := DefaultConfig()
	cfg.MaxCycles = 3
	cfg.Parallelism = 1
	wantHist, wantCls := trainTrajectory(t, ds, 3, cfg, 21)

	// 2200 rows as 1024 + 256 + 768 + 152: every cut block-aligned, shard
	// boundaries crossed both at and inside batches. Each batch is its own
	// small materialized dataset — the shape of rows arriving off a wire.
	cuts := []int{0, 1024, 1280, 2048, 2200}
	var chunks []*dataset.Columns
	row := make([]float64, ds.NumAttrs())
	for i := 0; i+1 < len(cuts); i++ {
		b, err := dataset.New("batch", ds.Attrs())
		if err != nil {
			t.Fatal(err)
		}
		for r := cuts[i]; r < cuts[i+1]; r++ {
			if err := b.AppendRow(ds.RowTo(row, r)); err != nil {
				t.Fatal(err)
			}
		}
		chunks = append(chunks, b.All().Columns())
	}
	cls := mustClassification(t, ds, 3)
	tr, err := NewStreamTrainer(cls, cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.BeginInit(21); err != nil {
		t.Fatal(err)
	}
	for _, b := range chunks {
		if err := tr.Fold(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.FinishInit(); err != nil {
		t.Fatal(err)
	}
	var gotHist []float64
	for c := 0; c < cfg.MaxCycles; c++ {
		for _, b := range chunks {
			if err := tr.Fold(b); err != nil {
				t.Fatal(err)
			}
		}
		cs, err := tr.Flush()
		if err != nil {
			t.Fatal(err)
		}
		gotHist = append(gotHist, cs.LogPost)
	}
	sameBits(t, "history", gotHist, wantHist)
	sameClassification(t, cls, wantCls)
}

// TestStreamTrainerRejections: misuse must fail loudly, not corrupt the
// accumulators.
func TestStreamTrainerRejections(t *testing.T) {
	ds := mixedMissDS(t, 700)
	cfg := DefaultConfig()
	cfg.Parallelism = 1
	cls := mustClassification(t, ds, 2)

	refCfg := cfg
	refCfg.Kernels = Reference
	if _, err := NewStreamTrainer(cls, refCfg, nil, nil); err == nil {
		t.Error("Reference kernels accepted for streaming")
	}
	staleCfg := cfg
	staleCfg.SyncEvery = 2
	if _, err := NewStreamTrainer(cls, staleCfg, nil, nil); err == nil {
		t.Error("SyncEvery > 1 accepted for streaming")
	}

	st, err := NewStreamTrainer(cls, cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	batches := streamBatches(t, ds, 256) // 256, 256, 188
	if err := st.Fold(batches[0]); err == nil {
		t.Error("Fold before BeginInit accepted")
	}
	if err := st.BeginInit(1); err != nil {
		t.Fatal(err)
	}
	if err := st.Fold(batches[2]); err != nil { // partial batch first...
		t.Fatal(err)
	}
	if err := st.Fold(batches[0]); err == nil { // ...then more rows: rejected
		t.Error("batch after a partial batch accepted")
	}
	if _, err := st.Flush(); err == nil {
		t.Error("Flush during the init pass accepted")
	}

	// Row-count drift across cycles is an error.
	st2, err := NewStreamTrainer(mustClassification(t, ds, 2), cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.BeginInit(1); err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if err := st2.Fold(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := st2.FinishInit(); err != nil {
		t.Fatal(err)
	}
	if err := st2.Fold(batches[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Flush(); err == nil {
		t.Error("short cycle accepted")
	}
}
