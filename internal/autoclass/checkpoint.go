package autoclass

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/dataset"
	"repro/internal/model"
)

// AutoClass C checkpoints long classification runs so they can resume after
// interruption; this file provides the equivalent: a JSON snapshot of a
// classification's structure and parameters that can be reloaded against
// the same dataset.

// checkpointV1 is the serialized form.
type checkpointV1 struct {
	Version   int             `json:"version"`
	N         int             `json:"n"`
	LogLik    float64         `json:"log_lik"`
	LogPrior  float64         `json:"log_prior"`
	LogPost   float64         `json:"log_post"`
	Cycles    int             `json:"cycles"`
	Converged bool            `json:"converged"`
	Blocks    []ckptBlock     `json:"blocks"`
	Classes   []ckptClass     `json:"classes"`
	Priors    json.RawMessage `json:"priors"`
}

type ckptBlock struct {
	Kind  int   `json:"kind"`
	Attrs []int `json:"attrs"`
}

type ckptClass struct {
	LogPi float64     `json:"log_pi"`
	W     float64     `json:"w"`
	Terms [][]float64 `json:"terms"`
}

// SaveCheckpoint serializes the classification to w.
func SaveCheckpoint(w io.Writer, cls *Classification) error {
	if cls == nil {
		return errors.New("autoclass: nil classification")
	}
	ck := checkpointV1{
		Version:   1,
		N:         cls.N,
		LogLik:    cls.LogLik,
		LogPrior:  cls.LogPrior,
		LogPost:   cls.LogPost,
		Cycles:    cls.Cycles,
		Converged: cls.Converged,
	}
	for _, b := range cls.Spec.Blocks {
		ck.Blocks = append(ck.Blocks, ckptBlock{Kind: int(b.Kind), Attrs: b.Attrs})
	}
	for _, cl := range cls.Classes {
		cc := ckptClass{LogPi: cl.LogPi, W: cl.W}
		for _, t := range cl.Terms {
			cc.Terms = append(cc.Terms, t.Params())
		}
		ck.Classes = append(ck.Classes, cc)
	}
	pri, err := json.Marshal(cls.Priors)
	if err != nil {
		return fmt.Errorf("autoclass: marshal priors: %w", err)
	}
	ck.Priors = pri
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(&ck)
}

// LoadCheckpoint reconstructs a classification from r, validating it
// against the dataset's schema.
func LoadCheckpoint(r io.Reader, ds *dataset.Dataset) (*Classification, error) {
	var ck checkpointV1
	dec := json.NewDecoder(r)
	if err := dec.Decode(&ck); err != nil {
		return nil, fmt.Errorf("autoclass: decode checkpoint: %w", err)
	}
	if ck.Version != 1 {
		return nil, fmt.Errorf("autoclass: unsupported checkpoint version %d", ck.Version)
	}
	if len(ck.Classes) == 0 {
		return nil, errors.New("autoclass: checkpoint has no classes")
	}
	var spec model.Spec
	for _, b := range ck.Blocks {
		spec.Blocks = append(spec.Blocks, model.BlockSpec{Kind: model.TermKind(b.Kind), Attrs: b.Attrs})
	}
	if err := spec.Validate(ds); err != nil {
		return nil, fmt.Errorf("autoclass: checkpoint spec does not fit dataset: %w", err)
	}
	var pr model.Priors
	if err := json.Unmarshal(ck.Priors, &pr); err != nil {
		return nil, fmt.Errorf("autoclass: decode priors: %w", err)
	}
	cls, err := NewClassification(ds, spec, &pr, len(ck.Classes))
	if err != nil {
		return nil, err
	}
	cls.N = ck.N
	cls.LogLik = ck.LogLik
	cls.LogPrior = ck.LogPrior
	cls.LogPost = ck.LogPost
	cls.Cycles = ck.Cycles
	cls.Converged = ck.Converged
	for j, cc := range ck.Classes {
		cl := cls.Classes[j]
		cl.LogPi = cc.LogPi
		cl.W = cc.W
		if len(cc.Terms) != len(cl.Terms) {
			return nil, fmt.Errorf("autoclass: class %d has %d term param sets, spec has %d", j, len(cc.Terms), len(cl.Terms))
		}
		for bi, params := range cc.Terms {
			if err := cl.Terms[bi].SetParams(params); err != nil {
				return nil, fmt.Errorf("autoclass: class %d term %d: %w", j, bi, err)
			}
		}
	}
	return cls, nil
}

// SaveCheckpointFile writes a checkpoint to path.
func SaveCheckpointFile(path string, cls *Classification) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := SaveCheckpoint(f, cls); err != nil {
		return err
	}
	return f.Close()
}

// LoadCheckpointFile reads a checkpoint from path.
func LoadCheckpointFile(path string, ds *dataset.Dataset) (*Classification, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadCheckpoint(f, ds)
}
