package autoclass

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/dataset"
	"repro/internal/model"
)

// AutoClass C checkpoints long classification runs so they can resume after
// interruption; this file provides the equivalent: a JSON snapshot of a
// classification's structure and parameters that can be reloaded against
// the same dataset. The Checkpoint type is the one entry point — it
// round-trips both plain classification snapshots and mid-search state;
// the historical Save/Load function pairs remain as thin wrappers.

// Checkpoint is a versioned snapshot of a fitted (or mid-run)
// classification, optionally pinned to its position in a BIG_LOOP search.
// Save writes the JSON form; Load reconstructs it against the dataset the
// run used. A Checkpoint with a nil Search is a plain classification
// snapshot; with a non-nil Search it resumes the search trajectory
// bitwise (see SearchPoint).
type Checkpoint struct {
	Classification *Classification
	// Search is the mid-search position, nil for plain snapshots.
	Search *SearchPoint
}

// Save serializes the checkpoint to w. A mid-search snapshot (Search
// non-nil) is only legal after at least one completed cycle: before that
// LastPost is -Inf, which JSON cannot encode.
func (c *Checkpoint) Save(w io.Writer) error {
	if c == nil || c.Classification == nil {
		return errors.New("autoclass: nil classification")
	}
	ck, err := buildCheckpoint(c.Classification)
	if err != nil {
		return err
	}
	if sp := c.Search; sp != nil {
		if math.IsInf(sp.LastPost, 0) || math.IsNaN(sp.LastPost) {
			return fmt.Errorf("autoclass: search checkpoint before first cycle (last_post %v)", sp.LastPost)
		}
		ck.Search = &ckptSearchV1{
			TryIndex:   sp.TryIndex,
			StartJ:     sp.StartJ,
			Try:        sp.Try,
			TrySeed:    sp.TrySeed,
			CycleInTry: sp.CycleInTry,
			BelowTol:   sp.BelowTol,
			LastPost:   sp.LastPost,
			SearchSeed: sp.SearchSeed,
			SyncStats:  sp.SyncStats,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(&ck)
}

// Load fills the checkpoint from r, validating the stored spec against the
// dataset's schema and rejecting unknown versions. Search stays nil when
// the stream holds a plain snapshot.
func (c *Checkpoint) Load(r io.Reader, ds *dataset.Dataset) error {
	var ck checkpointV1
	dec := json.NewDecoder(r)
	if err := dec.Decode(&ck); err != nil {
		return fmt.Errorf("autoclass: decode checkpoint: %w", err)
	}
	if ck.Version != 1 {
		return fmt.Errorf("autoclass: unsupported checkpoint version %d", ck.Version)
	}
	if len(ck.Classes) == 0 {
		return errors.New("autoclass: checkpoint has no classes")
	}
	cls, err := restoreClassification(&ck, ds)
	if err != nil {
		return err
	}
	c.Classification = cls
	c.Search = nil
	if ck.Search != nil {
		c.Search = &SearchPoint{
			TryIndex:   ck.Search.TryIndex,
			StartJ:     ck.Search.StartJ,
			Try:        ck.Search.Try,
			TrySeed:    ck.Search.TrySeed,
			CycleInTry: ck.Search.CycleInTry,
			BelowTol:   ck.Search.BelowTol,
			LastPost:   ck.Search.LastPost,
			SearchSeed: ck.Search.SearchSeed,
			SyncStats:  ck.Search.SyncStats,
		}
	}
	return nil
}

// SaveFile writes the checkpoint to path.
func (c *Checkpoint) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := c.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile fills the checkpoint from the file at path.
func (c *Checkpoint) LoadFile(path string, ds *dataset.Dataset) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return c.Load(f, ds)
}

// checkpointV1 is the serialized form.
type checkpointV1 struct {
	Version   int             `json:"version"`
	N         int             `json:"n"`
	LogLik    float64         `json:"log_lik"`
	LogPrior  float64         `json:"log_prior"`
	LogPost   float64         `json:"log_post"`
	Cycles    int             `json:"cycles"`
	Converged bool            `json:"converged"`
	Blocks    []ckptBlock     `json:"blocks"`
	Classes   []ckptClass     `json:"classes"`
	Priors    json.RawMessage `json:"priors"`
	// Search carries the mid-search position when the checkpoint was taken
	// inside a try; absent for plain classification snapshots.
	Search *ckptSearchV1 `json:"search,omitempty"`
}

// ckptSearchV1 is the serialized SearchPoint.
type ckptSearchV1 struct {
	TryIndex   int     `json:"try_index"`
	StartJ     int     `json:"start_j"`
	Try        int     `json:"try"`
	TrySeed    uint64  `json:"try_seed"`
	CycleInTry int     `json:"cycle_in_try"`
	BelowTol   int     `json:"below_tol"`
	LastPost   float64 `json:"last_post"`
	SearchSeed uint64  `json:"search_seed"`
	// SyncStats is the bounded-staleness global-statistics baseline at the
	// snapshot's sync point; absent for synchronous (SyncEvery <= 1) runs.
	SyncStats []float64 `json:"sync_stats,omitempty"`
}

// SearchPoint pins a checkpoint to its position in the BIG_LOOP search: the
// try index in the deterministic schedule, the class-count ladder position,
// the RNG stream state (the per-try seed drawn from the search's seed
// chain), and the engine's cycle-boundary state within the try. Together
// with the classification it makes resume reproduce the uninterrupted
// trajectory bitwise.
type SearchPoint struct {
	// TryIndex is the 0-based position in the flattened StartJList × Tries
	// schedule; it equals the number of Uint64 draws consumed from the
	// search seed chain before this try's seed.
	TryIndex int
	// StartJ and Try locate the try on the class-count ladder (Try counts
	// repeats within one StartJ).
	StartJ, Try int
	// TrySeed is the seed drawn for this try — the RNG stream state,
	// verified on resume against a re-derived chain.
	TrySeed uint64
	// CycleInTry is the number of completed cycles within the try.
	CycleInTry int
	// BelowTol and LastPost restore the engine's convergence tracker.
	BelowTol int
	LastPost float64
	// SyncStats restores the bounded-staleness baseline (EngineState.
	// SyncStats); nil for synchronous runs. Snapshots are taken only at
	// sync points, so the classification's own W/LogLik double as the
	// synced weights baseline.
	SyncStats []float64
	// SearchSeed is the search's root seed, so resume can detect a
	// mismatched -seed flag instead of silently diverging.
	SearchSeed uint64
}

type ckptBlock struct {
	Kind  int   `json:"kind"`
	Attrs []int `json:"attrs"`
}

type ckptClass struct {
	LogPi float64     `json:"log_pi"`
	W     float64     `json:"w"`
	Terms [][]float64 `json:"terms"`
}

// buildCheckpoint converts a classification to its serialized form.
func buildCheckpoint(cls *Classification) (checkpointV1, error) {
	ck := checkpointV1{
		Version:   1,
		N:         cls.N,
		LogLik:    cls.LogLik,
		LogPrior:  cls.LogPrior,
		LogPost:   cls.LogPost,
		Cycles:    cls.Cycles,
		Converged: cls.Converged,
	}
	for _, b := range cls.Spec.Blocks {
		ck.Blocks = append(ck.Blocks, ckptBlock{Kind: int(b.Kind), Attrs: b.Attrs})
	}
	for _, cl := range cls.Classes {
		cc := ckptClass{LogPi: cl.LogPi, W: cl.W}
		for _, t := range cl.Terms {
			cc.Terms = append(cc.Terms, t.Params())
		}
		ck.Classes = append(ck.Classes, cc)
	}
	pri, err := json.Marshal(cls.Priors)
	if err != nil {
		return ck, fmt.Errorf("autoclass: marshal priors: %w", err)
	}
	ck.Priors = pri
	return ck, nil
}

// SaveCheckpoint serializes the classification to w.
//
// Deprecated: use (&Checkpoint{Classification: cls}).Save(w).
func SaveCheckpoint(w io.Writer, cls *Classification) error {
	return (&Checkpoint{Classification: cls}).Save(w)
}

// SaveCheckpointSearch serializes the classification plus, when sp is
// non-nil, its mid-search position.
//
// Deprecated: use (&Checkpoint{Classification: cls, Search: sp}).Save(w).
func SaveCheckpointSearch(w io.Writer, cls *Classification, sp *SearchPoint) error {
	return (&Checkpoint{Classification: cls, Search: sp}).Save(w)
}

// LoadCheckpoint reconstructs a classification from r, validating it
// against the dataset's schema.
//
// Deprecated: use Checkpoint.Load.
func LoadCheckpoint(r io.Reader, ds *dataset.Dataset) (*Classification, error) {
	var ck Checkpoint
	if err := ck.Load(r, ds); err != nil {
		return nil, err
	}
	return ck.Classification, nil
}

// LoadCheckpointSearch is LoadCheckpoint that also returns the mid-search
// position when the checkpoint carries one (nil otherwise).
//
// Deprecated: use Checkpoint.Load.
func LoadCheckpointSearch(r io.Reader, ds *dataset.Dataset) (*Classification, *SearchPoint, error) {
	var ck Checkpoint
	if err := ck.Load(r, ds); err != nil {
		return nil, nil, err
	}
	return ck.Classification, ck.Search, nil
}

// restoreClassification rebuilds the in-memory classification from its
// serialized form, validating against the dataset's schema.
func restoreClassification(ck *checkpointV1, ds *dataset.Dataset) (*Classification, error) {
	var spec model.Spec
	for _, b := range ck.Blocks {
		spec.Blocks = append(spec.Blocks, model.BlockSpec{Kind: model.TermKind(b.Kind), Attrs: b.Attrs})
	}
	if err := spec.Validate(ds); err != nil {
		return nil, fmt.Errorf("autoclass: checkpoint spec does not fit dataset: %w", err)
	}
	var pr model.Priors
	if err := json.Unmarshal(ck.Priors, &pr); err != nil {
		return nil, fmt.Errorf("autoclass: decode priors: %w", err)
	}
	cls, err := NewClassification(ds, spec, &pr, len(ck.Classes))
	if err != nil {
		return nil, err
	}
	cls.N = ck.N
	cls.LogLik = ck.LogLik
	cls.LogPrior = ck.LogPrior
	cls.LogPost = ck.LogPost
	cls.Cycles = ck.Cycles
	cls.Converged = ck.Converged
	for j, cc := range ck.Classes {
		cl := cls.Classes[j]
		cl.LogPi = cc.LogPi
		cl.W = cc.W
		if len(cc.Terms) != len(cl.Terms) {
			return nil, fmt.Errorf("autoclass: class %d has %d term param sets, spec has %d", j, len(cc.Terms), len(cl.Terms))
		}
		for bi, params := range cc.Terms {
			if err := cl.Terms[bi].SetParams(params); err != nil {
				return nil, fmt.Errorf("autoclass: class %d term %d: %w", j, bi, err)
			}
		}
	}
	return cls, nil
}

// SaveCheckpointFile writes a checkpoint to path.
//
// Deprecated: use Checkpoint.SaveFile.
func SaveCheckpointFile(path string, cls *Classification) error {
	return (&Checkpoint{Classification: cls}).SaveFile(path)
}

// LoadCheckpointFile reads a checkpoint from path.
//
// Deprecated: use Checkpoint.LoadFile.
func LoadCheckpointFile(path string, ds *dataset.Dataset) (*Classification, error) {
	var ck Checkpoint
	if err := ck.LoadFile(path, ds); err != nil {
		return nil, err
	}
	return ck.Classification, nil
}
