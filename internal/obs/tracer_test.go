package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/autoclass"
	"repro/internal/mpi"
	"repro/internal/simnet"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func TestEmitClampsTimestampsMonotonic(t *testing.T) {
	tr := NewTracer(2)
	tr.Emit(0, Event{Name: "a", Ph: 'i', TS: 1})
	tr.Emit(0, Event{Name: "b", Ph: 'i', TS: 0.5}) // goes backwards → clamped
	tr.Emit(1, Event{Name: "c", Ph: 'i', TS: 0.2}) // other track unaffected
	evs := tr.Events(0)
	if len(evs) != 2 || evs[1].TS != 1 {
		t.Fatalf("events = %+v, want second clamped to ts=1", evs)
	}
	if tr.Events(1)[0].TS != 0.2 {
		t.Fatal("clamp leaked across tracks")
	}
	// Out-of-range and nil emits are safe no-ops.
	tr.Emit(5, Event{})
	tr.Emit(-1, Event{})
	var nilT *Tracer
	nilT.Emit(0, Event{})
	if nilT.Ranks() != 0 || nilT.Dropped() != 0 {
		t.Fatal("nil tracer accessors should read zero")
	}
}

// syntheticRun drives a deterministic 4-rank simnet scenario through the
// full observability stack — clock charges, collectives, engine cycles —
// with no real EM numerics, so its trace bytes are identical on every
// platform and can be golden-file compared.
func syntheticRun(t *testing.T) *Run {
	t.Helper()
	const p = 4
	run := NewRun(p)
	run.SetMachineLabel("Meiko CS-2 (synthetic)")
	err := mpi.Run(p, func(c *mpi.Comm) error {
		clk, err := simnet.NewClock(simnet.MeikoCS2())
		if err != nil {
			return err
		}
		r := run.Rank(c.Rank())
		c.SetObserver(r)
		r.BindClock(clk)
		buf := make([]float64, 64)
		for cycle := 0; cycle < 3; cycle++ {
			// Unequal compute loads make the faster ranks wait at the sync.
			clk.ChargeOps(float64(1000 * (c.Rank() + 1)))
			if err := c.Allreduce(mpi.Sum, buf); err != nil {
				return err
			}
			if err := clk.SyncAllreduce(c, len(buf)); err != nil {
				return err
			}
			r.ObserveCycle(autoclass.CycleInfo{
				Cycle:   cycle,
				J:       4 - cycle,
				LogPost: -1000 - float64(cycle),
				Delta:   0.25,
				Stats: autoclass.CycleStats{
					LogPost:       -1000 - float64(cycle),
					WtsSeconds:    0.010,
					ParamsSeconds: 0.005,
					ApproxSeconds: 0.001,
					Reductions:    1,
					ReducedValues: 64,
				},
			})
		}
		return nil
	})
	if err != nil {
		t.Fatalf("mpi.Run: %v", err)
	}
	return run
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/obs -update`): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s differs from golden file; rerun with -update if the change is intended\ngot:\n%s", name, got)
	}
}

// TestChromeTraceGolden byte-compares the Chrome trace of the synthetic
// 4-rank simnet run against the checked-in golden file and verifies the
// structural invariants the acceptance criteria name: the JSON parses, there
// is one track per rank, and per-track timestamps are monotonic.
func TestChromeTraceGolden(t *testing.T) {
	run := syntheticRun(t)
	var buf bytes.Buffer
	if err := run.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "chrome_trace.golden.json", buf.Bytes())

	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			TS   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	tracks := map[int]bool{}
	lastTS := map[int]float64{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		tracks[ev.Tid] = true
		if ev.TS < lastTS[ev.Tid] {
			t.Fatalf("track %d timestamps not monotonic: %v after %v", ev.Tid, ev.TS, lastTS[ev.Tid])
		}
		lastTS[ev.Tid] = ev.TS
	}
	if len(tracks) != run.Ranks() {
		t.Fatalf("trace has %d tracks, want one per rank (%d)", len(tracks), run.Ranks())
	}
}

func TestEventsJSONLGolden(t *testing.T) {
	run := syntheticRun(t)
	var buf bytes.Buffer
	if err := run.WriteEventsJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "events.golden.jsonl", buf.Bytes())
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	for i, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i, err)
		}
		for _, k := range []string{"rank", "name", "cat", "ph", "ts"} {
			if _, ok := obj[k]; !ok {
				t.Fatalf("line %d missing %q: %s", i, k, line)
			}
		}
	}
}

func TestMetricsAndBreakdown(t *testing.T) {
	run := syntheticRun(t)
	var buf bytes.Buffer
	if err := run.WriteMetricsJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var m struct {
		Ranks     int        `json:"ranks"`
		PerRank   []Snapshot `json:"per_rank"`
		Breakdown *Breakdown `json:"breakdown"`
	}
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("metrics JSON does not parse: %v", err)
	}
	if m.Ranks != 4 || len(m.PerRank) != 4 || m.Breakdown == nil {
		t.Fatalf("metrics = ranks %d, per_rank %d", m.Ranks, len(m.PerRank))
	}
	b := run.Breakdown()
	if b.Ranks != 4 || b.Cycles != 3 {
		t.Fatalf("breakdown = %+v", b)
	}
	if b.ComputeSeconds <= 0 || b.CommSeconds <= 0 {
		t.Fatalf("breakdown missing virtual time: %+v", b)
	}
	// Rank 3 had the heaviest compute, so it waits the least; rank 0 the
	// most. The per-rank wait ordering is the visible signature of the
	// synchronization semantics.
	if b.PerRank[0].WaitSeconds <= b.PerRank[3].WaitSeconds {
		t.Fatalf("expected rank 0 to wait more than rank 3: %+v", b.PerRank)
	}
	if !strings.Contains(b.Table(), "comm%") {
		t.Fatal("breakdown table missing header")
	}
	// Every rank saw exactly 3 engine collectives (the sync meta-exchange
	// must not be counted).
	for i, rb := range b.PerRank {
		if rb.Collectives != 3 {
			t.Fatalf("rank %d counted %v collectives, want 3 (meta-exchanges must be suppressed)", i, rb.Collectives)
		}
	}
	agg := run.Aggregate()
	if got := agg.Counter(MetricCycles).Value(); got != 12 {
		t.Fatalf("aggregate cycles = %v, want 12", got)
	}
}

func TestTrendTableAndChart(t *testing.T) {
	var tr Trend
	tr.Add(Breakdown{Ranks: 2, ComputeSeconds: 8, CommSeconds: 2, ElapsedSeconds: 10})
	tr.Add(Breakdown{Ranks: 4, ComputeSeconds: 4, CommSeconds: 2, ElapsedSeconds: 6})
	tr.Add(Breakdown{Ranks: 8, ComputeSeconds: 2, CommSeconds: 2, ElapsedSeconds: 4})
	tab := tr.Table()
	if !strings.Contains(tab, "Figs. 9-10") || !strings.Contains(tab, "comm%") {
		t.Fatalf("trend table missing headers:\n%s", tab)
	}
	chart, err := tr.Chart()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chart, "comm") {
		t.Fatalf("chart missing series label:\n%s", chart)
	}
	if _, err := (&Trend{}).Chart(); err == nil {
		t.Fatal("empty trend chart should error")
	}
}
