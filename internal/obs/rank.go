package obs

import (
	"encoding/json"
	"io"
	"math"

	"repro/internal/autoclass"
	"repro/internal/mpi"
	"repro/internal/simnet"
)

// Metric names recorded per rank. Virtual-time metrics only accumulate
// when the rank is bound to a simnet.Clock.
const (
	MetricCycles        = "engine.cycles"
	MetricLogPost       = "engine.logpost"
	MetricDelta         = "engine.logpost_delta"
	MetricClasses       = "engine.classes"
	MetricReductions    = "engine.reductions"
	MetricReducedValues = "engine.reduced_values"
	MetricWtsSeconds    = "engine.update_wts_seconds"
	MetricParamsSeconds = "engine.update_parameters_seconds"
	MetricApproxSeconds = "engine.update_approximations_seconds"
	MetricCycleSeconds  = "engine.cycle_seconds"
	MetricComputeOps    = "sim.compute_ops"
	MetricComputeSec    = "sim.compute_seconds"
	MetricCommSec       = "sim.comm_seconds"
	MetricWaitSec       = "sim.wait_seconds"
	MetricCollectives   = "mpi.collectives"
	MetricSentValues    = "mpi.sent_values"
	MetricCollSteps     = "mpi.steps"
	MetricPayloadBytes  = "mpi.payload_bytes"
	MetricRetries       = "mpi.send_retries"
	MetricTimeouts      = "mpi.timeouts"
	MetricTryClaimed    = "search.tries.claimed"
	MetricTryCommitted  = "search.tries.committed"
	MetricTryDuplicate  = "search.tries.duplicate"
	MetricTryEarlyStop  = "search.tries.early_stopped"
	MetricTriesDone     = "search.tries_done"
	MetricTriesTotal    = "search.tries_total"
	MetricBestScore     = "search.best_score"
	MetricTryCycles     = "search.try_cycles"
	// Bounded-staleness EM (Config.SyncEvery > 1): cycles that skipped the
	// global synchronization, the current staleness (local cycles since the
	// last sync point), and the drift the staleness bound thresholds.
	MetricSyncSkipped = "em.sync_skipped"
	MetricStaleness   = "em.staleness"
	MetricDrift       = "em.staleness_drift"
)

// Rank records one rank's run. It implements the three observability hook
// interfaces — mpi.CollectiveObserver, simnet.ClockObserver and
// autoclass.CycleObserver — so a single *Rank plugs into the communicator,
// the virtual clock and the engine. All methods are nil-safe; a nil *Rank
// disables observation wherever it is installed.
//
// A Rank must only be driven by its own rank's goroutine (the tracer tracks
// are lock-free by that ownership); the atomic registry metrics tolerate
// concurrent readers at any time.
type Rank struct {
	run   *Run
	rank  int
	reg   *Registry
	clock *simnet.Clock

	// Pre-bound metric handles: the hot path records through atomics
	// without registry lookups.
	cCycles, cReductions, cReducedValues *Counter
	cWts, cParams, cApprox               *Counter
	cOps, cComputeSec, cCommSec, cWait   *Counter
	cRetries, cTimeouts                  *Counter
	cTryClaimed, cTryCommitted           *Counter
	cTryDuplicate, cTryEarlyStop         *Counter
	cSyncSkipped                         *Counter
	gStaleness, gDrift                   *Gauge
	gLogPost, gDelta, gClasses           *Gauge
	gTriesDone, gTriesTotal, gBestScore  *Gauge
	hCycleSeconds, hPayloadBytes         *Histogram
	hTryCycles                           *Histogram
	collCount, collSteps, collValues     map[string]*Counter

	// pendingColl names the collective the next clock sync charges for;
	// pendingValues carries its payload. Written by ObserveCollective,
	// consumed by ObserveSync, both on the rank goroutine.
	pendingColl   string
	pendingValues int
	// wallTS is the fallback timeline (accumulated wall phase seconds)
	// used when no clock is bound.
	wallTS float64
}

// collectiveNames are the communicator's collective labels, pre-registered
// so ObserveCollective never takes the registry lock.
var collectiveNames = []string{
	"allreduce", "reduce", "bcast", "barrier",
	"gather", "scatter", "reduce-scatter",
}

func newRank(run *Run, rank int) *Rank {
	r := &Rank{
		run:        run,
		rank:       rank,
		reg:        NewRegistry(),
		collCount:  make(map[string]*Counter, len(collectiveNames)),
		collSteps:  make(map[string]*Counter, len(collectiveNames)),
		collValues: make(map[string]*Counter, len(collectiveNames)),
	}
	r.cCycles = r.reg.Counter(MetricCycles)
	r.cReductions = r.reg.Counter(MetricReductions)
	r.cReducedValues = r.reg.Counter(MetricReducedValues)
	r.cWts = r.reg.Counter(MetricWtsSeconds)
	r.cParams = r.reg.Counter(MetricParamsSeconds)
	r.cApprox = r.reg.Counter(MetricApproxSeconds)
	r.cOps = r.reg.Counter(MetricComputeOps)
	r.cComputeSec = r.reg.Counter(MetricComputeSec)
	r.cCommSec = r.reg.Counter(MetricCommSec)
	r.cWait = r.reg.Counter(MetricWaitSec)
	r.cRetries = r.reg.Counter(MetricRetries)
	r.cTimeouts = r.reg.Counter(MetricTimeouts)
	r.cTryClaimed = r.reg.Counter(MetricTryClaimed)
	r.cTryCommitted = r.reg.Counter(MetricTryCommitted)
	r.cTryDuplicate = r.reg.Counter(MetricTryDuplicate)
	r.cTryEarlyStop = r.reg.Counter(MetricTryEarlyStop)
	r.cSyncSkipped = r.reg.Counter(MetricSyncSkipped)
	r.gStaleness = r.reg.Gauge(MetricStaleness)
	r.gDrift = r.reg.Gauge(MetricDrift)
	r.gLogPost = r.reg.Gauge(MetricLogPost)
	r.gDelta = r.reg.Gauge(MetricDelta)
	r.gClasses = r.reg.Gauge(MetricClasses)
	r.gTriesDone = r.reg.Gauge(MetricTriesDone)
	r.gTriesTotal = r.reg.Gauge(MetricTriesTotal)
	r.gBestScore = r.reg.Gauge(MetricBestScore)
	r.hCycleSeconds = r.reg.Histogram(MetricCycleSeconds)
	r.hPayloadBytes = r.reg.Histogram(MetricPayloadBytes)
	r.hTryCycles = r.reg.Histogram(MetricTryCycles)
	for _, name := range collectiveNames {
		r.collCount[name] = r.reg.Counter(MetricCollectives + "." + name)
		r.collSteps[name] = r.reg.Counter(MetricCollSteps + "." + name)
		r.collValues[name] = r.reg.Counter(MetricSentValues + "." + name)
	}
	return r
}

// Registry returns the rank's metrics registry (nil for a nil rank, which
// in turn hands out nil — and therefore no-op — metric handles).
func (r *Rank) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// BindClock attaches the rank to its virtual clock: the clock's charges
// drive the rank's virtual timeline and comm/compute accounting. It also
// installs the rank as the clock's observer. Safe to call repeatedly.
func (r *Rank) BindClock(c *simnet.Clock) {
	if r == nil || c == nil {
		return
	}
	r.clock = c
	c.SetObserver(r)
}

// now returns the rank's current timeline position: the virtual clock when
// bound, the accumulated wall phase seconds otherwise.
func (r *Rank) now() float64 {
	if r.clock != nil {
		return r.clock.Elapsed()
	}
	return r.wallTS
}

func (r *Rank) emit(ev Event) {
	if r.run != nil {
		r.run.tracer.Emit(r.rank, ev)
	}
}

// ObserveCollective implements mpi.CollectiveObserver: per-op counters and
// the payload-size distribution, plus the name/payload handoff to the next
// clock sync. The registry maps are read-only after construction, so this
// is safe even if a collective races an observer (re)install elsewhere.
func (r *Rank) ObserveCollective(name string, steps, sentValues int) {
	if r == nil {
		return
	}
	if c := r.collCount[name]; c != nil {
		c.Add(1)
		r.collSteps[name].Add(float64(steps))
		r.collValues[name].Add(float64(sentValues))
	} else {
		// Unknown collective label: fall back to the locked registry path.
		r.reg.Counter(MetricCollectives + "." + name).Add(1)
		r.reg.Counter(MetricCollSteps + "." + name).Add(float64(steps))
		r.reg.Counter(MetricSentValues + "." + name).Add(float64(sentValues))
	}
	r.hPayloadBytes.Observe(float64(8 * sentValues))
	r.pendingColl = name
	r.pendingValues = sentValues
}

// ObserveRetry implements mpi.FaultObserver: count transient-send retries.
// Unlike collectives, retries may fire from the transport's own goroutines,
// but the counter is atomic.
func (r *Rank) ObserveRetry(op string, attempt int) {
	if r == nil {
		return
	}
	r.cRetries.Add(1)
}

// ObserveTimeout implements mpi.FaultObserver: count operations that hit
// their per-op deadline.
func (r *Rank) ObserveTimeout(op string) {
	if r == nil {
		return
	}
	r.cTimeouts.Add(1)
}

// ObserveOps implements simnet.ClockObserver: accumulate modeled compute
// time and draw the compute span on the rank's virtual timeline.
func (r *Rank) ObserveOps(units, seconds float64) {
	if r == nil {
		return
	}
	r.cOps.Add(units)
	r.cComputeSec.Add(seconds)
	if seconds > 0 {
		r.emit(Event{
			Name: "compute", Cat: "compute", Ph: 'X',
			TS: r.now() - seconds, Dur: seconds,
			Args: []Arg{{"ops", units}},
		})
	}
}

// ObserveSync implements simnet.ClockObserver: accumulate modeled comm and
// wait time and draw the collective on the timeline, named after the
// preceding collective observed on the communicator.
func (r *Rank) ObserveSync(cost, wait float64) {
	if r == nil {
		return
	}
	r.cCommSec.Add(cost)
	r.cWait.Add(wait)
	name := r.pendingColl
	if name == "" {
		name = "collective"
	}
	dur := cost + wait
	if dur > 0 {
		r.emit(Event{
			Name: "comm:" + name, Cat: "comm", Ph: 'X',
			TS: r.now() - dur, Dur: dur,
			Args: []Arg{
				{"cost_s", cost},
				{"wait_s", wait},
				{"payload_values", float64(r.pendingValues)},
			},
		})
	}
}

// ObserveCycle implements autoclass.CycleObserver: per-cycle engine
// metrics, the convergence counter tracks, and a cycle marker on the
// timeline. Identical reduced values drive every rank's engine, so the
// logpost/J counter tracks are emitted on rank 0 only.
func (r *Rank) ObserveCycle(info autoclass.CycleInfo) {
	if r == nil {
		return
	}
	cs := info.Stats
	wall := cs.WtsSeconds + cs.ParamsSeconds + cs.ApproxSeconds
	r.cCycles.Add(1)
	r.cWts.Add(cs.WtsSeconds)
	r.cParams.Add(cs.ParamsSeconds)
	r.cApprox.Add(cs.ApproxSeconds)
	r.cReductions.Add(float64(cs.Reductions))
	r.cReducedValues.Add(float64(cs.ReducedValues))
	if !cs.Synced {
		r.cSyncSkipped.Add(1)
	}
	r.gStaleness.Set(float64(cs.SinceSync))
	r.gDrift.Set(cs.Drift)
	r.gLogPost.Set(info.LogPost)
	r.gDelta.Set(info.Delta)
	r.gClasses.Set(float64(info.J))
	r.hCycleSeconds.Observe(wall)
	if r.clock == nil {
		r.wallTS += wall
	}
	ts := r.now()
	r.emit(Event{
		Name: "cycle", Cat: "engine", Ph: 'i', TS: ts,
		Args: []Arg{
			{"cycle", float64(info.Cycle)},
			{"J", float64(info.J)},
			{"logpost", info.LogPost},
			{"delta", info.Delta},
			{"wts_s", cs.WtsSeconds},
			{"params_s", cs.ParamsSeconds},
			{"approx_s", cs.ApproxSeconds},
			{"reduced_values", float64(cs.ReducedValues)},
		},
	})
	if r.rank == 0 {
		r.emit(Event{Name: "logpost", Cat: "engine", Ph: 'C', TS: ts,
			Args: []Arg{{"logpost", info.LogPost}}})
		r.emit(Event{Name: "classes", Cat: "engine", Ph: 'C', TS: ts,
			Args: []Arg{{"J", float64(info.J)}}})
	}
}

// ObserveTry implements autoclass.SearchObserver: per-kind try counters,
// the tries-done/total and best-score gauges, and the per-try cycle-count
// distribution. All pre-bound atomic handles — zero allocations, safe for
// the concurrent delivery a variant-parallel search produces.
func (r *Rank) ObserveTry(ev autoclass.TryEvent) {
	if r == nil {
		return
	}
	switch ev.Kind {
	case autoclass.TryClaimed:
		r.cTryClaimed.Add(1)
		r.gTriesTotal.Set(float64(ev.Total))
	case autoclass.TryCycle:
		// Per-cycle engine metrics already flow through ObserveCycle.
	default: // commit verdicts
		r.cTryCommitted.Add(1)
		if ev.Kind == autoclass.TryDuplicate {
			r.cTryDuplicate.Add(1)
		}
		if ev.Kind == autoclass.TryEarlyStopped {
			r.cTryDuplicate.Add(1)
			r.cTryEarlyStop.Add(1)
		}
		r.gTriesDone.Set(float64(ev.Done))
		r.gTriesTotal.Set(float64(ev.Total))
		r.hTryCycles.Observe(float64(ev.Cycles))
		if !math.IsInf(ev.BestScore, -1) {
			r.gBestScore.Set(ev.BestScore)
		}
	}
}

// Run is a whole-run observability session shared by the in-process ranks:
// one Rank recorder and tracer track per rank, plus run-level export and
// aggregation. Create it before mpi.Run and hand run.Rank(i) to rank i.
type Run struct {
	ranks   []*Rank
	tracer  *Tracer
	machine string
}

// NewRun returns an observability session for p ranks.
func NewRun(p int) *Run {
	if p < 1 {
		p = 1
	}
	run := &Run{tracer: NewTracer(p)}
	run.ranks = make([]*Rank, p)
	for i := range run.ranks {
		run.ranks[i] = newRank(run, i)
	}
	return run
}

// SetMachineLabel records the simulated machine's name for reports.
func (r *Run) SetMachineLabel(name string) {
	if r != nil {
		r.machine = name
	}
}

// Ranks returns the session's rank count (0 for nil).
func (r *Run) Ranks() int {
	if r == nil {
		return 0
	}
	return len(r.ranks)
}

// Rank returns rank i's recorder — nil (and therefore a disabled recorder)
// when the session is nil or i is out of range, so callers can wire
// unconditionally.
func (r *Run) Rank(i int) *Rank {
	if r == nil || i < 0 || i >= len(r.ranks) {
		return nil
	}
	return r.ranks[i]
}

// Tracer returns the session's tracer (nil for a nil run).
func (r *Run) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// WriteChromeTrace exports the run as a Chrome trace-event file.
func (r *Run) WriteChromeTrace(w io.Writer) error { return r.Tracer().WriteChromeTrace(w) }

// WriteEventsJSONL exports the run's raw events as JSON lines.
func (r *Run) WriteEventsJSONL(w io.Writer) error { return r.Tracer().WriteJSONL(w) }

// runMetrics is the JSON shape of WriteMetricsJSON.
type runMetrics struct {
	Machine   string     `json:"machine,omitempty"`
	Ranks     int        `json:"ranks"`
	PerRank   []Snapshot `json:"per_rank"`
	Breakdown *Breakdown `json:"breakdown,omitempty"`
}

// WriteMetricsJSON exports every rank's registry snapshot plus the
// comm/compute breakdown as indented JSON.
func (r *Run) WriteMetricsJSON(w io.Writer) error {
	if r == nil {
		return nil
	}
	m := runMetrics{Machine: r.machine, Ranks: len(r.ranks)}
	for _, rk := range r.ranks {
		m.PerRank = append(m.PerRank, rk.reg.Snapshot())
	}
	b := r.Breakdown()
	m.Breakdown = &b
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// Aggregate merges every rank's counters into one registry (handy for
// run-level assertions in tests and smoke checks).
func (r *Run) Aggregate() *Registry {
	agg := NewRegistry()
	if r == nil {
		return agg
	}
	for _, rk := range r.ranks {
		rk.reg.mergeInto(agg)
	}
	return agg
}

var _ mpi.CollectiveObserver = (*Rank)(nil)
var _ mpi.FaultObserver = (*Rank)(nil)
var _ simnet.ClockObserver = (*Rank)(nil)
var _ autoclass.CycleObserver = (*Rank)(nil)
var _ autoclass.SearchObserver = (*Rank)(nil)
