package obs

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// promLine is one parsed sample line.
type promLine struct {
	name   string
	labels map[string]string
	value  string
}

// promPage is a parsed exposition page: TYPE declarations in order plus
// every sample line.
type promPage struct {
	kinds   map[string]string
	order   []string
	samples []promLine
	eof     bool
}

// parsePromPage is a deliberately strict test-side parser: it rejects
// duplicate or unsorted TYPE families, samples outside their family block,
// and a missing # EOF — the contract a real scraper depends on.
func parsePromPage(t *testing.T, page string) *promPage {
	t.Helper()
	p := &promPage{kinds: make(map[string]string)}
	current := ""
	for ln, line := range strings.Split(page, "\n") {
		if line == "" {
			continue
		}
		if p.eof {
			t.Fatalf("line %d: content after # EOF: %q", ln+1, line)
		}
		if line == "# EOF" {
			p.eof = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE line %q", ln+1, line)
			}
			name, kind := parts[2], parts[3]
			if _, dup := p.kinds[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for family %q", ln+1, name)
			}
			if len(p.order) > 0 && p.order[len(p.order)-1] >= name {
				t.Fatalf("line %d: family %q not sorted after %q", ln+1, name, p.order[len(p.order)-1])
			}
			p.kinds[name] = kind
			p.order = append(p.order, name)
			current = name
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: malformed sample %q", ln+1, line)
		}
		nameAndLabels, value := line[:sp], line[sp+1:]
		name := nameAndLabels
		labels := map[string]string{}
		if i := strings.IndexByte(nameAndLabels, '{'); i >= 0 {
			name = nameAndLabels[:i]
			body := strings.TrimSuffix(nameAndLabels[i+1:], "}")
			for _, pair := range strings.Split(body, ",") {
				eq := strings.IndexByte(pair, '=')
				if eq < 0 {
					t.Fatalf("line %d: malformed label %q", ln+1, pair)
				}
				labels[pair[:eq]] = strings.Trim(pair[eq+1:], `"`)
			}
		}
		// The sample must belong to the family block it appears in
		// (histograms own their _bucket/_sum/_count suffixes).
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if p.kinds[current] == "histogram" && strings.HasSuffix(name, suf) {
				base = strings.TrimSuffix(name, suf)
				break
			}
		}
		if base != current {
			t.Fatalf("line %d: sample %q outside its family block (current %q)", ln+1, name, current)
		}
		// Every value must be a valid exposition float (NaN, +Inf, -Inf
		// included).
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			t.Fatalf("line %d: bad sample value %q: %v", ln+1, value, err)
		}
		p.samples = append(p.samples, promLine{name: name, labels: labels, value: value})
	}
	if !p.eof {
		t.Fatal("page missing # EOF terminator")
	}
	return p
}

// find returns the single sample with the given name whose labels include
// want.
func (p *promPage) find(t *testing.T, name string, want map[string]string) promLine {
	t.Helper()
	var hits []promLine
outer:
	for _, s := range p.samples {
		if s.name != name {
			continue
		}
		for k, v := range want {
			if s.labels[k] != v {
				continue outer
			}
		}
		hits = append(hits, s)
	}
	if len(hits) != 1 {
		t.Fatalf("sample %s%v: %d matches, want 1", name, want, len(hits))
	}
	return hits[0]
}

func scrape(t *testing.T, exps ...Expo) (*promPage, string) {
	t.Helper()
	var b strings.Builder
	if err := WritePrometheus(&b, exps...); err != nil {
		t.Fatal(err)
	}
	return parsePromPage(t, b.String()), b.String()
}

func TestWritePrometheusBasic(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve.jobs.done").Add(3)
	r.Gauge("search.best_score").Set(-1234.5)
	r.Counter(Labeled("http.requests", "route", "GET /metrics", "code", "2xx")).Add(7)
	h := r.Histogram(Labeled("http.request_seconds", "route", "GET /metrics"))
	h.Observe(0.2) // bucket upper bound 0.25
	h.Observe(0.8) // bucket upper bound 1

	page, raw := scrape(t, Expo{Reg: r, Labels: []Label{{"registry", "server"}}})

	if page.kinds["serve_jobs_done"] != "counter" {
		t.Fatalf("serve_jobs_done kind = %q, want counter", page.kinds["serve_jobs_done"])
	}
	if got := page.find(t, "serve_jobs_done", map[string]string{"registry": "server"}); got.value != "3" {
		t.Errorf("serve_jobs_done = %s, want 3", got.value)
	}
	if got := page.find(t, "search_best_score", nil); got.value != "-1234.5" {
		t.Errorf("search_best_score = %s, want -1234.5", got.value)
	}
	req := page.find(t, "http_requests", map[string]string{"code": "2xx"})
	if req.value != "7" || req.labels["route"] != "GET /metrics" || req.labels["registry"] != "server" {
		t.Errorf("http_requests sample wrong: %+v", req)
	}
	if page.kinds["http_request_seconds"] != "histogram" {
		t.Fatalf("http_request_seconds kind = %q, want histogram", page.kinds["http_request_seconds"])
	}
	if got := page.find(t, "http_request_seconds_count", map[string]string{"route": "GET /metrics"}); got.value != "2" {
		t.Errorf("histogram count = %s, want 2", got.value)
	}
	if got := page.find(t, "http_request_seconds_sum", nil); got.value != "1" {
		t.Errorf("histogram sum = %s, want 1", got.value)
	}
	if got := page.find(t, "http_request_seconds_bucket", map[string]string{"le": "0.25"}); got.value != "1" {
		t.Errorf("le=0.25 bucket = %s, want 1", got.value)
	}
	if got := page.find(t, "http_request_seconds_bucket", map[string]string{"le": "+Inf"}); got.value != "2" {
		t.Errorf("le=+Inf bucket = %s, want 2", got.value)
	}
	// Derived extrema/mean families exist as gauges.
	for _, name := range []string{"http_request_seconds_min", "http_request_seconds_max", "http_request_seconds_mean"} {
		if page.kinds[name] != "gauge" {
			t.Errorf("%s kind = %q, want gauge (page:\n%s)", name, page.kinds[name], raw)
		}
	}
	if got := page.find(t, "http_request_seconds_mean", nil); got.value != "0.5" {
		t.Errorf("histogram mean = %s, want 0.5", got.value)
	}
}

// An empty histogram must scrape as valid exposition literals — min +Inf,
// max -Inf, mean NaN — not clamped finite stand-ins (regression: Snapshot
// clamps for JSON, the encoder must not).
func TestWritePrometheusEmptyHistogram(t *testing.T) {
	r := NewRegistry()
	r.Histogram("engine.cycle_seconds") // registered, never observed

	page, _ := scrape(t, Expo{Reg: r})

	if got := page.find(t, "engine_cycle_seconds_count", nil); got.value != "0" {
		t.Errorf("empty count = %s, want 0", got.value)
	}
	if got := page.find(t, "engine_cycle_seconds_min", nil); got.value != "+Inf" {
		t.Errorf("empty min = %s, want +Inf", got.value)
	}
	if got := page.find(t, "engine_cycle_seconds_max", nil); got.value != "-Inf" {
		t.Errorf("empty max = %s, want -Inf", got.value)
	}
	if got := page.find(t, "engine_cycle_seconds_mean", nil); got.value != "NaN" {
		t.Errorf("empty mean = %s, want NaN", got.value)
	}
	if got := page.find(t, "engine_cycle_seconds_bucket", map[string]string{"le": "+Inf"}); got.value != "0" {
		t.Errorf("empty +Inf bucket = %s, want 0", got.value)
	}
}

// Cumulative buckets must be non-decreasing in le order and end at _count.
func TestWritePrometheusBucketMonotonic(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for _, v := range []float64{1e-9, 0.003, 0.072, 0.5, 0.5, 3, 40, 1e12} {
		h.Observe(v)
	}
	page, raw := scrape(t, Expo{Reg: r})

	type bkt struct {
		le  float64
		cum uint64
	}
	var bkts []bkt
	for _, s := range page.samples {
		if s.name != "lat_bucket" {
			continue
		}
		le, err := strconv.ParseFloat(s.labels["le"], 64)
		if err != nil {
			t.Fatalf("bad le %q: %v", s.labels["le"], err)
		}
		cum, err := strconv.ParseUint(s.value, 10, 64)
		if err != nil {
			t.Fatalf("bad bucket value %q: %v", s.value, err)
		}
		bkts = append(bkts, bkt{le, cum})
	}
	if len(bkts) < 2 {
		t.Fatalf("too few buckets emitted:\n%s", raw)
	}
	sort.Slice(bkts, func(i, j int) bool { return bkts[i].le < bkts[j].le })
	for i := 1; i < len(bkts); i++ {
		if bkts[i].cum < bkts[i-1].cum {
			t.Fatalf("bucket le=%g cum=%d < previous cum=%d", bkts[i].le, bkts[i].cum, bkts[i-1].cum)
		}
	}
	last := bkts[len(bkts)-1]
	if !math.IsInf(last.le, 1) {
		t.Fatalf("largest bucket le = %g, want +Inf", last.le)
	}
	count := page.find(t, "lat_count", nil)
	if count.value != strconv.FormatUint(last.cum, 10) {
		t.Errorf("_count = %s, +Inf bucket = %d; must be equal", count.value, last.cum)
	}
	if count.value != "8" {
		t.Errorf("_count = %s, want 8", count.value)
	}
}

// Two registries sharing family names on one page: counters sum, gauges
// take the last write, and label-disjoint samples coexist.
func TestWritePrometheusMergesRegistries(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("tries").Add(2)
	b.Counter("tries").Add(5)
	a.Gauge("best").Set(-10)
	b.Gauge("best").Set(-7)
	a.Counter("only.a").Add(1)

	// Same labels → merge.
	page, _ := scrape(t, Expo{Reg: a}, Expo{Reg: b})
	if got := page.find(t, "tries", nil); got.value != "7" {
		t.Errorf("merged counter = %s, want 7", got.value)
	}
	if got := page.find(t, "best", nil); got.value != "-7" {
		t.Errorf("merged gauge = %s, want -7 (last write wins)", got.value)
	}

	// Distinct fixed labels → both samples survive side by side.
	page, _ = scrape(t,
		Expo{Reg: a, Labels: []Label{{"rank", "0"}}},
		Expo{Reg: b, Labels: []Label{{"rank", "1"}}})
	if got := page.find(t, "tries", map[string]string{"rank": "0"}); got.value != "2" {
		t.Errorf("rank 0 tries = %s, want 2", got.value)
	}
	if got := page.find(t, "tries", map[string]string{"rank": "1"}); got.value != "5" {
		t.Errorf("rank 1 tries = %s, want 5", got.value)
	}
}

func TestWritePrometheusSanitizesAndEscapes(t *testing.T) {
	r := NewRegistry()
	r.Counter(Labeled("mpi.collectives.all-reduce", "why", "line\nbreak \"quoted\" back\\slash")).Add(1)
	page, raw := scrape(t, Expo{Reg: r})
	s := page.find(t, "mpi_collectives_all_reduce", nil)
	if s.labels["why"] != `line\nbreak \"quoted\" back\\slash` {
		t.Errorf("escaped label value = %q (page:\n%s)", s.labels["why"], raw)
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %g, want 0", got)
	}

	h.Observe(0.75)                                 // bucket upper bound 1
	for _, q := range []float64{0, 0.5, 1, -3, 7} { // out-of-range q clamps
		if got := h.Quantile(q); got != 1 {
			t.Errorf("single-obs Quantile(%g) = %g, want 1", q, got)
		}
	}

	// Values past the largest finite boundary land in the overflow bucket,
	// whose reported boundary clamps to 2^31.
	var big Histogram
	big.Observe(1e12)
	if got, want := big.Quantile(1), math.Ldexp(1, histMinExp+histBuckets-1); got != want {
		t.Errorf("overflow Quantile(1) = %g, want %g", got, want)
	}

	// q=0 is the smallest populated bucket, q=1 the largest.
	var two Histogram
	two.Observe(0.2) // bucket boundary 0.25
	two.Observe(100) // bucket boundary 128
	if got := two.Quantile(0); got != 0.25 {
		t.Errorf("Quantile(0) = %g, want 0.25", got)
	}
	if got := two.Quantile(1); got != 128.0 {
		t.Errorf("Quantile(1) = %g, want 128", got)
	}
}

func TestGaugeAdd(t *testing.T) {
	var g Gauge
	g.Add(1)
	g.Add(1)
	g.Add(-1)
	if got := g.Value(); got != 1 {
		t.Errorf("gauge after +1+1-1 = %g, want 1", got)
	}
	g.Set(10)
	g.Add(2.5)
	if got := g.Value(); got != 12.5 {
		t.Errorf("gauge after Set(10)+2.5 = %g, want 12.5", got)
	}
	var nilG *Gauge
	nilG.Add(1) // must not panic
}

func TestLabeledSortsPairs(t *testing.T) {
	a := Labeled("m", "b", "2", "a", "1")
	b := Labeled("m", "a", "1", "b", "2")
	if a != b {
		t.Errorf("Labeled not order-independent: %q vs %q", a, b)
	}
	if want := `m{a="1",b="2"}`; a != want {
		t.Errorf("Labeled = %q, want %q", a, want)
	}
	defer func() {
		if recover() == nil {
			t.Error("odd pair count did not panic")
		}
	}()
	Labeled("m", "only-one")
}
