// Package obs is the run-wide observability layer: a metrics registry, a
// per-rank event tracer with Chrome trace-event export, and a comm/compute
// breakdown report — the instrumentation that turns any live P-AutoClass
// run into the paper's Fig. 9/10-style artifacts instead of requiring the
// offline harness experiments.
//
// Design constraints, in order:
//
//  1. SPMD safety. Observation must never perform communication or feed
//     back into the engine; tracing on versus off produces bitwise
//     identical search trajectories.
//  2. Nil safety. Every recording method on every type is a no-op on a nil
//     receiver, so call sites need no guards and the disabled path costs a
//     nil check.
//  3. Hot-path economy. Counters, gauges and histograms record through
//     atomics with zero allocations; registry map lookups happen only at
//     metric-creation time, never per observation.
package obs

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically accumulating float64 metric (counts, seconds,
// bytes). The zero value is ready to use; a nil *Counter discards adds.
type Counter struct {
	bits atomic.Uint64 // float64 bits, CAS-accumulated
}

// Add folds v into the counter. Safe for concurrent use; no allocations.
func (c *Counter) Add(v float64) {
	if c == nil || math.IsNaN(v) {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the accumulated total (0 for nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a last-value-wins float64 metric. Nil-safe like Counter. A
// gauge additionally tracks its high-water mark (the maximum value ever
// stored, floored at 0), so level-style gauges — queue depth, in-flight
// requests — can report their peak without a second metric.
type Gauge struct {
	bits atomic.Uint64
	high atomic.Uint64
	set  atomic.Bool
}

// Set stores v. Safe for concurrent use; no allocations.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
	g.raiseHigh(v)
	g.set.Store(true)
}

// Add shifts the gauge by delta (useful for in-flight tracking where the
// value is a level, not a sample). Safe for concurrent use; no allocations.
func (g *Gauge) Add(delta float64) {
	if g == nil || math.IsNaN(delta) {
		return
	}
	for {
		old := g.bits.Load() // unset bits are 0, i.e. exactly 0.0
		next := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(next)) {
			g.raiseHigh(next)
			g.set.Store(true)
			return
		}
	}
}

// raiseHigh lifts the high-water mark to v if v exceeds it. Non-positive
// values never move the mark: the unset mark is exactly 0.0, and a
// level gauge's interesting peak is its positive excursion.
func (g *Gauge) raiseHigh(v float64) {
	if !(v > 0) {
		return
	}
	for {
		old := g.high.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.high.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// High returns the gauge's high-water mark: the largest value ever stored,
// or 0 if the gauge never went positive (or is nil).
func (g *Gauge) High() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.high.Load())
}

// Value returns the last stored value (0 if never set or nil).
func (g *Gauge) Value() float64 {
	if g == nil || !g.set.Load() {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the fixed bucket count of Histogram: power-of-two bucket
// boundaries spanning [2^-32, 2^31), plus underflow/overflow at the ends —
// wide enough for payload bytes, microsecond phases and multi-hour runs.
const histBuckets = 64

// histMinExp is the exponent of the smallest finite bucket boundary.
const histMinExp = -32

// Histogram accumulates a distribution over power-of-two buckets with an
// exact sum/count/min/max, all through atomics. Nil-safe like Counter.
type Histogram struct {
	counts  [histBuckets]atomic.Uint64
	sum     Counter
	n       atomic.Uint64
	minBits atomic.Uint64 // float64 bits; valid once n > 0
	maxBits atomic.Uint64
}

// bucketIndex maps v to its bucket: index i covers [2^(histMinExp+i-1),
// 2^(histMinExp+i)), with bucket 0 the underflow (v < 2^histMinExp,
// including zero and negatives) and the last bucket the overflow.
func bucketIndex(v float64) int {
	if !(v > 0) || math.IsInf(v, 1) {
		if math.IsInf(v, 1) {
			return histBuckets - 1
		}
		return 0
	}
	_, exp := math.Frexp(v) // v = frac × 2^exp, frac in [0.5, 1)
	i := exp - histMinExp
	if i < 0 {
		return 0
	}
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// Observe folds v into the distribution. Safe for concurrent use; no
// allocations.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.counts[bucketIndex(v)].Add(1)
	h.sum.Add(v)
	if h.n.Add(1) == 1 {
		// First observation seeds min and max; the CAS loops below handle
		// races with concurrent observers.
		h.minBits.Store(math.Float64bits(v))
		h.maxBits.Store(math.Float64bits(v))
		return
	}
	for {
		old := h.minBits.Load()
		if math.Float64frombits(old) <= v || h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if math.Float64frombits(old) >= v || h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the exact sum of observations (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// Mean returns Sum/Count (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Min and Max return the observed extrema (0 when empty).
func (h *Histogram) Min() float64 {
	if h == nil || h.n.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.minBits.Load())
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 {
	if h == nil || h.n.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.maxBits.Load())
}

// Quantile returns an upper-bound estimate of the q-quantile (q in [0,1])
// from the bucket boundaries — within a factor of two of the true value,
// which is all a breakdown report needs.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(n)))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i := 0; i < histBuckets; i++ {
		seen += h.counts[i].Load()
		if seen >= target {
			return math.Ldexp(1, histMinExp+i) // upper boundary of bucket i
		}
	}
	return h.Max()
}

// Registry holds named metrics for one rank. Metric creation takes a lock;
// recording through the returned handles does not. A nil *Registry hands
// out nil handles, so a disabled registry never allocates and call sites
// stay unconditional.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter; nil on a nil
// registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge; nil on a nil
// registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram; nil on a nil
// registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// HistogramSnapshot is one histogram's exported summary.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
}

// Snapshot is a point-in-time copy of a registry's metrics with
// deterministically ordered keys (sorted at serialization time by
// encoding/json's map handling).
type Snapshot struct {
	Counters   map[string]float64           `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// clampFinite maps the values JSON cannot represent to their nearest
// representable neighbors: NaN to 0 and the infinities to ±MaxFloat64 (an
// unconverged first cycle reports an infinite delta, which must not poison
// a metrics or trace export).
func clampFinite(v float64) float64 {
	switch {
	case math.IsNaN(v):
		return 0
	case math.IsInf(v, 1):
		return math.MaxFloat64
	case math.IsInf(v, -1):
		return -math.MaxFloat64
	}
	return v
}

// Snapshot copies the current metric values. Nil registries snapshot empty.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]float64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = clampFinite(c.Value())
	}
	for name, g := range r.gauges {
		s.Gauges[name] = clampFinite(g.Value())
	}
	for name, h := range r.hists {
		s.Histograms[name] = HistogramSnapshot{
			Count: h.Count(),
			Sum:   clampFinite(h.Sum()),
			Mean:  clampFinite(h.Mean()),
			Min:   clampFinite(h.Min()),
			Max:   clampFinite(h.Max()),
			P50:   clampFinite(h.Quantile(0.50)),
			P99:   clampFinite(h.Quantile(0.99)),
		}
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON (keys sorted by
// encoding/json, so output is deterministic for deterministic values).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Names returns the registry's metric names, sorted, prefixed by kind —
// handy for tests and debugging dumps.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, "counter:"+n)
	}
	for n := range r.gauges {
		names = append(names, "gauge:"+n)
	}
	for n := range r.hists {
		names = append(names, "histogram:"+n)
	}
	sort.Strings(names)
	return names
}

// mergeInto folds this registry's counters and histogram sums into dst as
// counters (gauges are rank-local and not merged). Used by the run-level
// aggregate view.
func (r *Registry) mergeInto(dst *Registry) {
	if r == nil || dst == nil {
		return
	}
	r.mu.Lock()
	type kv struct {
		name string
		v    float64
	}
	var vals []kv
	for name, c := range r.counters {
		vals = append(vals, kv{name, c.Value()})
	}
	r.mu.Unlock()
	for _, e := range vals {
		dst.Counter(e.name).Add(e.v)
	}
}
