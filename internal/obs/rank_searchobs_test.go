package obs

import (
	"math"
	"testing"

	"repro/internal/autoclass"
)

func TestRankObserveTry(t *testing.T) {
	run := NewRun(1)
	r := run.Rank(0)

	r.ObserveTry(autoclass.TryEvent{Kind: autoclass.TryClaimed, Total: 4})
	r.ObserveTry(autoclass.TryEvent{Kind: autoclass.TryCycle, Cycle: 0, LogPost: -10})
	r.ObserveTry(autoclass.TryEvent{
		Kind: autoclass.TryConverged, Cycles: 12,
		Done: 1, Total: 4, BestScore: -123.5, BestJ: 3,
	})
	r.ObserveTry(autoclass.TryEvent{
		Kind: autoclass.TryDuplicate, Cycles: 7,
		Done: 2, Total: 4, BestScore: -123.5, BestJ: 3,
	})
	r.ObserveTry(autoclass.TryEvent{
		Kind: autoclass.TryEarlyStopped, Cycles: 3,
		Done: 3, Total: 4, BestScore: -123.5, BestJ: 3,
	})

	reg := r.Registry()
	checks := []struct {
		name string
		want float64
	}{
		{MetricTryClaimed, 1},
		{MetricTryCommitted, 3},
		{MetricTryDuplicate, 2}, // early-stopped tries commit as duplicates
		{MetricTryEarlyStop, 1},
	}
	for _, c := range checks {
		if got := reg.Counter(c.name).Value(); got != c.want {
			t.Errorf("%s = %g, want %g", c.name, got, c.want)
		}
	}
	if got := reg.Gauge(MetricTriesDone).Value(); got != 3 {
		t.Errorf("%s = %g, want 3", MetricTriesDone, got)
	}
	if got := reg.Gauge(MetricTriesTotal).Value(); got != 4 {
		t.Errorf("%s = %g, want 4", MetricTriesTotal, got)
	}
	if got := reg.Gauge(MetricBestScore).Value(); got != -123.5 {
		t.Errorf("%s = %g, want -123.5", MetricBestScore, got)
	}
	if got := reg.Histogram(MetricTryCycles).Count(); got != 3 {
		t.Errorf("%s count = %d, want 3", MetricTryCycles, got)
	}
	if got := reg.Histogram(MetricTryCycles).Sum(); got != 22 {
		t.Errorf("%s sum = %g, want 22", MetricTryCycles, got)
	}
}

// A -Inf best (nothing kept yet) must not clobber the best-score gauge.
func TestRankObserveTryInfBest(t *testing.T) {
	run := NewRun(1)
	r := run.Rank(0)
	r.ObserveTry(autoclass.TryEvent{
		Kind: autoclass.TryDuplicate, Done: 1, Total: 2, BestScore: math.Inf(-1),
	})
	if got := r.Registry().Gauge(MetricBestScore).Value(); got != 0 {
		t.Errorf("best-score gauge touched by -Inf best: %g", got)
	}
}

// The try hook must be allocation-free (the hot observability contract),
// for a live rank and for the disabled nil receiver alike.
func TestObserveTryAllocs(t *testing.T) {
	run := NewRun(1)
	r := run.Rank(0)
	ev := autoclass.TryEvent{Kind: autoclass.TryConverged, Cycles: 5, Done: 1, Total: 2, BestScore: -1}
	if n := testing.AllocsPerRun(100, func() { r.ObserveTry(ev) }); n != 0 {
		t.Errorf("ObserveTry allocations = %v, want 0", n)
	}
	var nilR *Rank
	if n := testing.AllocsPerRun(100, func() { nilR.ObserveTry(ev) }); n != 0 {
		t.Errorf("nil ObserveTry allocations = %v, want 0", n)
	}
}
