package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// Arg is one key/value annotation on an Event. Args are an ordered slice,
// not a map, so serialized output is deterministic.
type Arg struct {
	Key string
	Val float64
}

// Event is one structured trace record on a rank's track. Timestamps are
// virtual-clock seconds when the rank is bound to a simnet.Clock (so the
// Meiko/SMP presets render as a true timeline), or accumulated wall phase
// seconds otherwise.
type Event struct {
	// Name labels the event ("compute", "comm:allreduce", "cycle", …).
	Name string
	// Cat is the Chrome trace category ("compute", "comm", "engine").
	Cat string
	// Ph is the Chrome phase: 'X' complete, 'i' instant, 'C' counter.
	Ph byte
	// TS is the event start in seconds on the rank's timeline.
	TS float64
	// Dur is the duration in seconds (complete events only).
	Dur float64
	// Args annotate the event.
	Args []Arg
}

// maxEventsPerTrack bounds a track's memory; beyond it events are counted
// as dropped rather than stored. A per-term 8-class run emits tens of
// events per cycle, so the default cap covers thousands of cycles.
const maxEventsPerTrack = 1 << 20

// Tracer collects events on one track per rank. Each track is appended to
// only by its own rank's goroutine (the SPMD structure guarantees this), so
// recording needs no locks; export happens after every rank has finished.
type Tracer struct {
	tracks  [][]Event
	lastTS  []float64
	dropped []uint64
}

// NewTracer returns a tracer with one empty track per rank.
func NewTracer(ranks int) *Tracer {
	if ranks < 1 {
		ranks = 1
	}
	return &Tracer{
		tracks:  make([][]Event, ranks),
		lastTS:  make([]float64, ranks),
		dropped: make([]uint64, ranks),
	}
}

// Ranks returns the number of tracks.
func (t *Tracer) Ranks() int {
	if t == nil {
		return 0
	}
	return len(t.tracks)
}

// Emit appends ev to the rank's track. Nil-safe. Timestamps are clamped to
// be non-decreasing per track so exported traces are always monotonic even
// under a wall-clock fallback timeline.
func (t *Tracer) Emit(rank int, ev Event) {
	if t == nil || rank < 0 || rank >= len(t.tracks) {
		return
	}
	if len(t.tracks[rank]) >= maxEventsPerTrack {
		t.dropped[rank]++
		return
	}
	if ev.TS < t.lastTS[rank] {
		ev.TS = t.lastTS[rank]
	}
	t.lastTS[rank] = ev.TS
	t.tracks[rank] = append(t.tracks[rank], ev)
}

// Dropped returns how many events were discarded over the track cap.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	var d uint64
	for _, n := range t.dropped {
		d += n
	}
	return d
}

// Events returns the rank's recorded events (nil out of range).
func (t *Tracer) Events(rank int) []Event {
	if t == nil || rank < 0 || rank >= len(t.tracks) {
		return nil
	}
	return t.tracks[rank]
}

// fnum formats a float with the shortest round-trip decimal representation
// — deterministic for deterministic inputs, which the golden-file tests
// rely on. NaN and the infinities have no JSON literal (a first cycle's
// convergence delta against the -Inf starting posterior is infinite), so
// they are clamped to the largest finite values.
func fnum(v float64) string {
	return strconv.FormatFloat(clampFinite(v), 'g', -1, 64)
}

// writeArgs writes {"k":v,...} preserving arg order.
func writeArgs(w *bufio.Writer, args []Arg) {
	w.WriteByte('{')
	for i, a := range args {
		if i > 0 {
			w.WriteByte(',')
		}
		fmt.Fprintf(w, "%q:%s", a.Key, fnum(a.Val))
	}
	w.WriteByte('}')
}

// WriteJSONL writes every event as one JSON object per line, grouped by
// rank, in emission order — the raw structured log the trace smoke job and
// downstream tooling consume.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for rank, track := range t.tracks {
		for _, ev := range track {
			fmt.Fprintf(bw, `{"rank":%d,"name":%q,"cat":%q,"ph":%q,"ts":%s`,
				rank, ev.Name, ev.Cat, string(ev.Ph), fnum(ev.TS))
			if ev.Ph == 'X' {
				fmt.Fprintf(bw, `,"dur":%s`, fnum(ev.Dur))
			}
			if len(ev.Args) > 0 {
				bw.WriteString(`,"args":`)
				writeArgs(bw, ev.Args)
			}
			bw.WriteString("}\n")
		}
	}
	return bw.Flush()
}

// WriteChromeTrace exports every track in Chrome trace-event JSON (the
// format Perfetto and chrome://tracing load): one process, one thread per
// rank, timestamps and durations in microseconds. Complete events become
// ph "X", instants ph "i" with thread scope, counters ph "C".
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"traceEvents\":[\n")
	first := true
	emit := func(s string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(s)
	}
	emit(`{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"pautoclass"}}`)
	for rank := range t.tracks {
		emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":"rank %d"}}`, rank, rank))
	}
	for rank, track := range t.tracks {
		for _, ev := range track {
			if !first {
				bw.WriteString(",\n")
			}
			first = false
			tsUS := ev.TS * 1e6
			switch ev.Ph {
			case 'X':
				fmt.Fprintf(bw, `{"name":%q,"cat":%q,"ph":"X","pid":1,"tid":%d,"ts":%s,"dur":%s`,
					ev.Name, ev.Cat, rank, fnum(tsUS), fnum(ev.Dur*1e6))
			case 'C':
				fmt.Fprintf(bw, `{"name":%q,"cat":%q,"ph":"C","pid":1,"tid":%d,"ts":%s`,
					ev.Name, ev.Cat, rank, fnum(tsUS))
			default:
				fmt.Fprintf(bw, `{"name":%q,"cat":%q,"ph":"i","s":"t","pid":1,"tid":%d,"ts":%s`,
					ev.Name, ev.Cat, rank, fnum(tsUS))
			}
			if len(ev.Args) > 0 {
				bw.WriteString(`,"args":`)
				writeArgs(bw, ev.Args)
			}
			bw.WriteByte('}')
		}
	}
	bw.WriteString("\n],\"displayTimeUnit\":\"ms\"}\n")
	return bw.Flush()
}
