package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Add(1.5)
	c.Add(2.5)
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %v, want 4", got)
	}
	if r.Counter("x") != c {
		t.Fatal("Counter not idempotent by name")
	}
	g := r.Gauge("y")
	if g.Value() != 0 {
		t.Fatal("unset gauge should read 0")
	}
	g.Set(-3)
	g.Set(7)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %v, want 7", got)
	}
	c.Add(math.NaN()) // ignored, not poisoned
	if got := c.Value(); got != 4 {
		t.Fatalf("counter after NaN = %v, want 4", got)
	}
}

func TestNilRegistryAndHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	// All of these must be safe no-ops.
	c.Add(1)
	g.Set(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 ||
		h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil handles must read zero")
	}
	if r.Names() != nil {
		t.Fatal("nil registry Names should be nil")
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot should be empty")
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for _, v := range []float64{1, 2, 4, 8, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 1015 {
		t.Fatalf("sum = %v", h.Sum())
	}
	if h.Min() != 1 || h.Max() != 1000 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	// Quantile is a power-of-two upper bound: the median observation is 4,
	// so the estimate must cover it and stay within a factor of two.
	q := h.Quantile(0.5)
	if q < 4 || q > 8 {
		t.Fatalf("p50 = %v, want in [4,8]", q)
	}
	if h.Quantile(1) < 1000 {
		t.Fatalf("p100 = %v, want >= 1000", h.Quantile(1))
	}
	// Underflow and overflow land in the end buckets without panicking.
	h.Observe(0)
	h.Observe(-5)
	h.Observe(math.Inf(1))
	if h.Count() != 8 {
		t.Fatalf("count after edge values = %d", h.Count())
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Add(1)
				r.Gauge("g").Set(float64(i))
				r.Histogram("h").Observe(float64(i % 16))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %v, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestSnapshotWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(2)
	r.Gauge("b").Set(3)
	r.Histogram("c").Observe(4)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v", err)
	}
	if s.Counters["a"] != 2 || s.Gauges["b"] != 3 || s.Histograms["c"].Count != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
}

// TestDisabledPathDoesNotAllocate is half of the CI allocation guard: the
// nil-handle recording paths — what every instrumented call site costs when
// observability is off — must not allocate.
func TestDisabledPathDoesNotAllocate(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var rk *Rank
	if n := testing.AllocsPerRun(100, func() {
		c.Add(1)
		g.Set(1)
		h.Observe(1)
		rk.ObserveCollective("allreduce", 2, 64)
		rk.ObserveOps(10, 0.1)
		rk.ObserveSync(0.1, 0.2)
	}); n != 0 {
		t.Fatalf("disabled observability path allocates %v times per call", n)
	}
}

// TestEnabledHotPathDoesNotAllocate is the other half: live counters,
// gauges and histograms must record through atomics with zero allocations.
func TestEnabledHotPathDoesNotAllocate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	if n := testing.AllocsPerRun(100, func() {
		c.Add(1)
		g.Set(2)
		h.Observe(3)
	}); n != 0 {
		t.Fatalf("metric hot path allocates %v times per call", n)
	}
}
