package obs

import (
	"sync"
	"testing"
)

func TestGaugeHighWater(t *testing.T) {
	var g Gauge
	if g.High() != 0 {
		t.Fatalf("fresh gauge High = %v, want 0", g.High())
	}
	g.Set(3)
	g.Set(1)
	if g.High() != 3 {
		t.Fatalf("High after Set(3),Set(1) = %v, want 3", g.High())
	}
	g.Add(9) // 1 -> 10
	g.Add(-8)
	if g.Value() != 2 || g.High() != 10 {
		t.Fatalf("Value=%v High=%v, want 2 and 10", g.Value(), g.High())
	}
	g.Set(-50)
	if g.High() != 10 {
		t.Fatalf("negative Set moved High to %v", g.High())
	}

	var nilG *Gauge
	nilG.Set(1)
	nilG.Add(1)
	if nilG.High() != 0 {
		t.Fatal("nil gauge High != 0")
	}
}

func TestGaugeHighWaterConcurrent(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if g.Value() != 0 {
		t.Fatalf("final Value = %v, want 0", g.Value())
	}
	if h := g.High(); h < 1 || h > 8 {
		t.Fatalf("High = %v, want within [1,8]", h)
	}
}
