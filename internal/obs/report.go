package obs

import (
	"fmt"
	"strings"

	"repro/internal/plot"
	"repro/internal/simnet"
)

// RankBreakdown decomposes one rank's virtual run time the way the paper's
// Figs. 9/10 decompose a parallel run: modeled computation seconds versus
// communication seconds (collective cost plus the idle wait for the group's
// slowest rank).
type RankBreakdown struct {
	Rank           int     `json:"rank"`
	ComputeSeconds float64 `json:"compute_seconds"`
	CommSeconds    float64 `json:"comm_seconds"`
	WaitSeconds    float64 `json:"wait_seconds"`
	Collectives    float64 `json:"collectives"`
	SentValues     float64 `json:"sent_values"`
}

// Total returns the rank's accounted virtual seconds.
func (b RankBreakdown) Total() float64 {
	return b.ComputeSeconds + b.CommSeconds + b.WaitSeconds
}

// CommFraction returns communication's share of the rank's accounted time
// (wait counts as communication, as in the clock's CommSeconds).
func (b RankBreakdown) CommFraction() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return (b.CommSeconds + b.WaitSeconds) / t
}

// Breakdown aggregates a finished run into the Fig. 9/10 comm/compute
// decomposition. Virtual-time fields are zero unless the run's ranks were
// bound to simnet clocks.
type Breakdown struct {
	Machine string `json:"machine,omitempty"`
	Ranks   int    `json:"ranks"`
	// ComputeSeconds and CommSeconds are means over ranks; Elapsed is the
	// slowest rank's accounted total — the run's virtual makespan.
	ComputeSeconds float64         `json:"compute_seconds"`
	CommSeconds    float64         `json:"comm_seconds"`
	ElapsedSeconds float64         `json:"elapsed_seconds"`
	Cycles         float64         `json:"cycles"`
	PerRank        []RankBreakdown `json:"per_rank"`
}

// CommFraction returns communication's mean share of accounted time.
func (b *Breakdown) CommFraction() float64 {
	t := b.ComputeSeconds + b.CommSeconds
	if t == 0 {
		return 0
	}
	return b.CommSeconds / t
}

// Breakdown computes the run's comm/compute decomposition from the ranks'
// registries.
func (r *Run) Breakdown() Breakdown {
	b := Breakdown{}
	if r == nil {
		return b
	}
	b.Machine = r.machine
	b.Ranks = len(r.ranks)
	var sumCompute, sumComm float64
	for i, rk := range r.ranks {
		var colls float64
		var sent float64
		for _, name := range collectiveNames {
			colls += rk.collCount[name].Value()
			sent += rk.collValues[name].Value()
		}
		rb := RankBreakdown{
			Rank:           i,
			ComputeSeconds: rk.cComputeSec.Value(),
			CommSeconds:    rk.cCommSec.Value(),
			WaitSeconds:    rk.cWait.Value(),
			Collectives:    colls,
			SentValues:     sent,
		}
		b.PerRank = append(b.PerRank, rb)
		sumCompute += rb.ComputeSeconds
		sumComm += rb.CommSeconds + rb.WaitSeconds
		if t := rb.Total(); t > b.ElapsedSeconds {
			b.ElapsedSeconds = t
		}
	}
	if b.Ranks > 0 {
		b.ComputeSeconds = sumCompute / float64(b.Ranks)
		b.CommSeconds = sumComm / float64(b.Ranks)
		b.Cycles = r.ranks[0].cCycles.Value()
	}
	return b
}

// Table renders the per-rank decomposition as an aligned text table — the
// single-run form of the paper's Fig. 9/10 data.
func (b *Breakdown) Table() string {
	var sb strings.Builder
	title := "Comm/compute breakdown"
	if b.Machine != "" {
		title += " on " + b.Machine
	}
	fmt.Fprintf(&sb, "%s (%d ranks, %d cycles)\n", title, b.Ranks, int(b.Cycles))
	if b.ComputeSeconds == 0 && b.CommSeconds == 0 {
		sb.WriteString("no virtual-time accounting (run without a machine model); " +
			"pass a simnet clock to decompose compute vs. communication\n")
		return sb.String()
	}
	fmt.Fprintf(&sb, "%-5s %12s %12s %12s %8s %12s %14s\n",
		"rank", "compute[s]", "comm[s]", "wait[s]", "comm%", "collectives", "values sent")
	for _, rb := range b.PerRank {
		fmt.Fprintf(&sb, "%-5d %12.4f %12.4f %12.4f %7.2f%% %12d %14d\n",
			rb.Rank, rb.ComputeSeconds, rb.CommSeconds, rb.WaitSeconds,
			100*rb.CommFraction(), int(rb.Collectives), int(rb.SentValues))
	}
	fmt.Fprintf(&sb, "%-5s %12.4f %12.4f %12s %7.2f%%   elapsed %s\n",
		"mean", b.ComputeSeconds, b.CommSeconds, "",
		100*b.CommFraction(), simnet.FormatHMS(b.ElapsedSeconds))
	return sb.String()
}

// Trend collects breakdowns of runs at increasing rank counts — the full
// Fig. 9/10 table, where the paper shows communication's share of the
// elapsed time growing with the processor count.
type Trend struct {
	Rows []Breakdown
}

// Add appends a run's breakdown.
func (t *Trend) Add(b Breakdown) { t.Rows = append(t.Rows, b) }

// Table renders compute/comm seconds and the comm fraction per rank count.
func (t *Trend) Table() string {
	var sb strings.Builder
	sb.WriteString("Compute vs. communication by processor count (paper Figs. 9-10)\n")
	fmt.Fprintf(&sb, "%-6s %14s %12s %12s %8s\n",
		"procs", "elapsed[s]", "compute[s]", "comm[s]", "comm%")
	for _, b := range t.Rows {
		fmt.Fprintf(&sb, "%-6d %14.4f %12.4f %12.4f %7.2f%%\n",
			b.Ranks, b.ElapsedSeconds, b.ComputeSeconds, b.CommSeconds, 100*b.CommFraction())
	}
	return sb.String()
}

// Chart renders the comm-fraction curve versus processor count through
// internal/plot.
func (t *Trend) Chart() (string, error) {
	if len(t.Rows) == 0 {
		return "", fmt.Errorf("obs: empty trend")
	}
	x := make([]float64, len(t.Rows))
	frac := make([]float64, len(t.Rows))
	for i, b := range t.Rows {
		x[i] = float64(b.Ranks)
		frac[i] = 100 * b.CommFraction()
	}
	c := plot.Chart{
		Title:  "Communication share of elapsed time vs. processors",
		XLabel: "processors",
		YLabel: "comm %",
		X:      x,
		Series: []plot.Series{{Label: "comm fraction", Y: frac}},
	}
	return c.Render()
}
