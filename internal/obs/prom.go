// Prometheus text exposition for Registry: counters, gauges and the
// pow2-bucket histograms rendered as cumulative _bucket/_sum/_count
// families, with an optional fixed label set per registry so several
// registries (server-wide, per-rank) can share one scrape page without
// colliding.
//
// The encoder reads metric values directly — not through Snapshot — so the
// IEEE specials JSON cannot carry survive: an empty histogram scrapes as
// min=+Inf, max=-Inf, mean=NaN, exactly what Prometheus expects from an
// empty summary, instead of Snapshot's clamped zeros.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ContentTypeText is the Content-Type for the text exposition format
// written by WritePrometheus (OpenMetrics-compatible).
const ContentTypeText = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// ContentTypeJSON is the Content-Type for the JSON snapshot variant.
const ContentTypeJSON = "application/json; charset=utf-8"

// Label is one fixed name/value pair attached to every sample of a
// registry in an exposition.
type Label struct {
	Name, Value string
}

// Expo pairs a registry with the fixed labels its samples carry.
type Expo struct {
	Reg    *Registry
	Labels []Label
}

// Labeled builds a registry key that carries label pairs inline —
// Labeled("http.requests", "route", "/v1/jobs", "code", "2xx") returns
// `http.requests{code="2xx",route="/v1/jobs"}`. The encoder splits the key
// back into family name and labels; pairs are sorted by name so equal
// label sets always produce equal keys. Panics on an odd pair count
// (a programming error at metric-registration time). Label values may not
// contain ',' or '=' (the inline key separators); newlines, quotes and
// backslashes are escaped and survive the round trip.
func Labeled(name string, pairs ...string) string {
	if len(pairs)%2 != 0 {
		panic("obs.Labeled: odd label pair count for " + name)
	}
	if len(pairs) == 0 {
		return name
	}
	ls := make([]Label, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		ls = append(ls, Label{pairs[i], pairs[i+1]})
	}
	sortLabels(ls)
	var b strings.Builder
	b.WriteString(name)
	writeLabelSet(&b, ls)
	return b.String()
}

func sortLabels(ls []Label) {
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
}

func writeLabelSet(b *strings.Builder, ls []Label) {
	if len(ls) == 0 {
		return
	}
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(sanitizeLabelName(l.Name))
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// sanitizeMetricName maps a registry key's family part onto the Prometheus
// name alphabet [a-zA-Z0-9_:]; everything else (the registry's dots and
// dashes included) becomes '_'.
func sanitizeMetricName(name string) string {
	var b []byte
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			if b == nil {
				b = []byte(name)
			}
			b[i] = '_'
		}
	}
	if b == nil {
		return name
	}
	return string(b)
}

func sanitizeLabelName(name string) string {
	s := sanitizeMetricName(name)
	// Label names may not contain ':' (reserved for recording rules).
	return strings.ReplaceAll(s, ":", "_")
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// unescapeLabelValue reverses escapeLabelValue; keys built by Labeled carry
// escaped values, which must not be escaped a second time at render time.
func unescapeLabelValue(v string) string {
	if !strings.Contains(v, `\`) {
		return v
	}
	var b strings.Builder
	b.Grow(len(v))
	for i := 0; i < len(v); i++ {
		c := v[i]
		if c == '\\' && i+1 < len(v) {
			i++
			switch v[i] {
			case 'n':
				b.WriteByte('\n')
			case '\\', '"':
				b.WriteByte(v[i])
			default:
				b.WriteByte('\\')
				b.WriteByte(v[i])
			}
			continue
		}
		b.WriteByte(c)
	}
	return b.String()
}

// promValue renders a sample value; strconv spells the IEEE specials as
// NaN, +Inf and -Inf, which are valid exposition literals.
func promValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// splitLabeledName splits a registry key produced by Labeled back into its
// family part and the inline label pairs. Keys without '{' have no labels.
func splitLabeledName(key string) (name string, labels []Label) {
	i := strings.IndexByte(key, '{')
	if i < 0 {
		return key, nil
	}
	name = key[:i]
	body := strings.TrimSuffix(key[i+1:], "}")
	for _, pair := range strings.Split(body, ",") {
		eq := strings.IndexByte(pair, '=')
		if eq < 0 {
			continue
		}
		v := unescapeLabelValue(strings.Trim(pair[eq+1:], `"`))
		labels = append(labels, Label{pair[:eq], v})
	}
	return name, labels
}

// mergeLabels combines a sample's inline labels with the registry's fixed
// labels (fixed labels win on collision) into the final sorted label set.
func mergeLabels(inline, fixed []Label) []Label {
	out := make([]Label, 0, len(inline)+len(fixed))
	for _, l := range inline {
		overridden := false
		for _, f := range fixed {
			if f.Name == l.Name {
				overridden = true
				break
			}
		}
		if !overridden {
			out = append(out, l)
		}
	}
	out = append(out, fixed...)
	sortLabels(out)
	return out
}

// histData is a point-in-time copy of a histogram's atomics, taken bucket
// by bucket (transient cross-field skew is tolerated: the cumulative
// bucket total, not h.n, is what _count and the +Inf bucket report, so the
// exposition is always internally consistent).
type histData struct {
	counts   [histBuckets]uint64
	sum      float64
	min, max float64
	n        uint64
}

func (h *Histogram) histData() histData {
	var d histData
	if h == nil {
		d.min, d.max = math.Inf(1), math.Inf(-1)
		return d
	}
	for i := range d.counts {
		c := h.counts[i].Load()
		d.counts[i] = c
		d.n += c
	}
	d.sum = h.sum.Value()
	if d.n == 0 {
		d.min, d.max = math.Inf(1), math.Inf(-1)
	} else {
		d.min = math.Float64frombits(h.minBits.Load())
		d.max = math.Float64frombits(h.maxBits.Load())
	}
	return d
}

// bucketUpperBound is the inclusive `le` boundary of bucket i: 2^(histMinExp+i)
// for the finite buckets, +Inf for the overflow bucket.
func bucketUpperBound(i int) float64 {
	if i >= histBuckets-1 {
		return math.Inf(1)
	}
	return math.Ldexp(1, histMinExp+i)
}

// promSample is one rendered line body: `{labels} value`.
type promSample struct {
	labelKey string // rendered label set, "" when unlabeled
	value    float64
	hist     *histData // non-nil for histogram samples
}

// promFamily collects one metric family's samples across registries.
type promFamily struct {
	kind    string // "counter" | "gauge" | "histogram"
	samples map[string]*promSample
}

type promState struct {
	families map[string]*promFamily
}

func (st *promState) family(name, kind string) *promFamily {
	f := st.families[name]
	if f == nil {
		f = &promFamily{kind: kind, samples: make(map[string]*promSample)}
		st.families[name] = f
		return f
	}
	if f.kind != kind {
		// Name collision across kinds: first registration wins, later
		// samples are dropped rather than emitting an invalid page.
		return nil
	}
	return f
}

func (st *promState) addScalar(name, kind string, labels []Label, v float64) {
	f := st.family(name, kind)
	if f == nil {
		return
	}
	var b strings.Builder
	writeLabelSet(&b, labels)
	key := b.String()
	s := f.samples[key]
	if s == nil {
		f.samples[key] = &promSample{labelKey: key, value: v}
		return
	}
	// Same family+labels from two registries: counters sum, gauges keep
	// the last value written.
	if kind == "counter" {
		s.value += v
	} else {
		s.value = v
	}
}

func (st *promState) addHist(name string, labels []Label, d histData) {
	f := st.family(name, "histogram")
	if f == nil {
		return
	}
	var b strings.Builder
	writeLabelSet(&b, labels)
	key := b.String()
	s := f.samples[key]
	if s == nil {
		dd := d
		f.samples[key] = &promSample{labelKey: key, hist: &dd}
		return
	}
	for i := range s.hist.counts {
		s.hist.counts[i] += d.counts[i]
	}
	s.hist.sum += d.sum
	s.hist.n += d.n
	s.hist.min = math.Min(s.hist.min, d.min)
	s.hist.max = math.Max(s.hist.max, d.max)
}

// WritePrometheus renders the registries as one text exposition page:
// families sorted by name, each with a single # TYPE line, histogram
// samples as cumulative le-bucketed _bucket/_sum/_count plus _min, _max
// and _mean gauges, terminated by # EOF.
func WritePrometheus(w io.Writer, exps ...Expo) error {
	st := &promState{families: make(map[string]*promFamily)}
	for _, e := range exps {
		r := e.Reg
		if r == nil {
			continue
		}
		fixed := append([]Label(nil), e.Labels...)
		type scalar struct {
			key  string
			v    float64
			kind string
		}
		var scalars []scalar
		type histogram struct {
			key string
			d   histData
		}
		var hists []histogram
		r.mu.Lock()
		for key, c := range r.counters {
			scalars = append(scalars, scalar{key, c.Value(), "counter"})
		}
		for key, g := range r.gauges {
			scalars = append(scalars, scalar{key, g.Value(), "gauge"})
		}
		for key, h := range r.hists {
			hists = append(hists, histogram{key, h.histData()})
		}
		r.mu.Unlock()
		for _, s := range scalars {
			name, inline := splitLabeledName(s.key)
			st.addScalar(sanitizeMetricName(name), s.kind, mergeLabels(inline, fixed), s.v)
		}
		for _, h := range hists {
			name, inline := splitLabeledName(h.key)
			st.addHist(sanitizeMetricName(name), mergeLabels(inline, fixed), h.d)
		}
	}

	// Histogram extrema and mean become derived gauge families (a
	// histogram family only owns _bucket/_sum/_count samples); derived
	// after merging so duplicate histogram samples fold min/max correctly.
	for name, f := range st.families {
		if f.kind != "histogram" {
			continue
		}
		for _, s := range f.samples {
			d := s.hist
			mean := math.NaN()
			if d.n > 0 {
				mean = d.sum / float64(d.n)
			}
			for _, der := range []struct {
				suffix string
				v      float64
			}{{"_min", d.min}, {"_max", d.max}, {"_mean", mean}} {
				g := st.family(name+der.suffix, "gauge")
				if g != nil {
					g.samples[s.labelKey] = &promSample{labelKey: s.labelKey, value: der.v}
				}
			}
		}
	}

	names := make([]string, 0, len(st.families))
	for name := range st.families {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		f := st.families[name]
		keys := make([]string, 0, len(f.samples))
		for k := range f.samples {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, f.kind)
		if f.kind != "histogram" {
			for _, k := range keys {
				s := f.samples[k]
				fmt.Fprintf(&b, "%s%s %s\n", name, s.labelKey, promValue(s.value))
			}
			continue
		}
		for _, k := range keys {
			writeHistSample(&b, name, f.samples[k])
		}
	}
	b.WriteString("# EOF\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistSample renders one histogram sample: the cumulative buckets
// (le from the pow2 boundaries; _count equals the +Inf bucket by
// construction) and the exact sum/count.
func writeHistSample(b *strings.Builder, name string, s *promSample) {
	d := s.hist
	withLE := func(le string) string {
		if s.labelKey == "" {
			return `{le="` + le + `"}`
		}
		return s.labelKey[:len(s.labelKey)-1] + `,le="` + le + `"}`
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += d.counts[i]
		// Only emit boundaries at or past the data (plus the mandatory
		// +Inf bucket) to keep the page compact; cumulative counts make
		// the omitted leading/trailing zero buckets redundant.
		if d.counts[i] == 0 && i < histBuckets-1 && (cum == 0 || cum == d.n) {
			continue
		}
		le := "+Inf"
		if i < histBuckets-1 {
			le = promValue(bucketUpperBound(i))
		}
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLE(le), cum)
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", name, s.labelKey, promValue(d.sum))
	fmt.Fprintf(b, "%s_count%s %d\n", name, s.labelKey, cum)
}

// WritePrometheus renders just this registry (no fixed labels).
func (r *Registry) WritePrometheus(w io.Writer) error {
	return WritePrometheus(w, Expo{Reg: r})
}
