package model

import (
	"math"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/stats"
)

func lognormalDS(t *testing.T) (*dataset.Dataset, *Priors) {
	t.Helper()
	ds, _, err := datagen.LogNormalMixture(2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	return ds, NewPriors(ds, ds.Summarize())
}

func TestLogNormalSpecValidates(t *testing.T) {
	ds, pr := lognormalDS(t)
	spec := LogNormalSpec(ds)
	if err := spec.Validate(ds); err != nil {
		t.Fatal(err)
	}
	if spec.Blocks[0].Kind != LogNormal {
		t.Fatalf("kind %v", spec.Blocks[0].Kind)
	}
	if _, err := NewTerm(spec.Blocks[0], ds, pr); err != nil {
		t.Fatal(err)
	}
}

func TestLogNormalRejectsNonPositiveData(t *testing.T) {
	ds := dataset.MustNew("neg", []dataset.Attribute{{Name: "x", Type: dataset.Real}})
	for _, v := range []float64{1, 2, -3, 4} {
		if err := ds.AppendRow([]float64{v}); err != nil {
			t.Fatal(err)
		}
	}
	pr := NewPriors(ds, ds.Summarize())
	if _, err := NewTerm(BlockSpec{Kind: LogNormal, Attrs: []int{0}}, ds, pr); err == nil {
		t.Fatal("non-positive data accepted by single_normal_ln")
	}
}

func TestLogNormalRejectsDiscreteAttr(t *testing.T) {
	ds := dataset.MustNew("d", []dataset.Attribute{
		{Name: "c", Type: dataset.Discrete, Levels: []string{"a", "b"}},
	})
	spec := Spec{Blocks: []BlockSpec{{Kind: LogNormal, Attrs: []int{0}}}}
	if err := spec.Validate(ds); err == nil {
		t.Fatal("log-normal over discrete attribute accepted")
	}
}

func TestLogNormalLogProbMatchesClosedForm(t *testing.T) {
	ds, pr := lognormalDS(t)
	_ = ds
	term := newLogNormalTerm(0, pr)
	if err := term.SetParams([]float64{math.Log(10), 0.5}); err != nil {
		t.Fatal(err)
	}
	x := 12.0
	want := stats.LogNormalPDF(math.Log(x), math.Log(10), 0.5) - math.Log(x)
	if got := term.LogProb([]float64{x}); !stats.AlmostEqual(got, want, 1e-12) {
		t.Fatalf("logprob %v, want %v", got, want)
	}
	// Non-positive and missing contribute zero.
	if term.LogProb([]float64{-1}) != 0 || term.LogProb([]float64{dataset.Missing}) != 0 {
		t.Fatal("out-of-support values should contribute 0")
	}
}

func TestLogNormalPDFIntegratesToOne(t *testing.T) {
	ds, pr := lognormalDS(t)
	_ = ds
	term := newLogNormalTerm(0, pr)
	if err := term.SetParams([]float64{math.Log(5), 0.4}); err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	const step = 0.001
	for x := step; x < 50; x += step {
		sum += math.Exp(term.LogProb([]float64{x})) * step
	}
	if math.Abs(sum-1) > 2e-3 {
		t.Fatalf("log-normal pdf integrates to %v", sum)
	}
}

func TestLogNormalUpdateRecoversMedian(t *testing.T) {
	ds, pr := lognormalDS(t)
	term := newLogNormalTerm(0, pr)
	st := make([]float64, 3)
	// Feed only the first mixture component's neighbourhood: values near
	// median 10 (x in [5, 20] mostly belongs to component 0).
	var ref stats.Moments
	for i := 0; i < ds.N(); i++ {
		x := ds.Value(i, 0)
		if x > 3 && x < 30 {
			term.AccumulateStats(ds.Row(i), 1, st)
			ref.AddUnweighted(math.Log(x))
		}
	}
	term.Update(st)
	if math.Abs(term.LogMeanParam()-ref.Mean()) > 0.05 {
		t.Fatalf("log mean %v, want %v", term.LogMeanParam(), ref.Mean())
	}
	if term.LogSigmaParam() < pr.LogSigmaFloor[0] {
		t.Fatal("sigma below floor")
	}
}

func TestLogNormalParamsAndClone(t *testing.T) {
	ds, pr := lognormalDS(t)
	_ = ds
	term := newLogNormalTerm(0, pr)
	if err := term.SetParams([]float64{1.5, 0.25}); err != nil {
		t.Fatal(err)
	}
	clone := term.Clone()
	if p := clone.Params(); p[0] != 1.5 || p[1] != 0.25 {
		t.Fatalf("params %v", p)
	}
	clone.SetParams([]float64{9, 9})
	if term.Params()[0] == 9 {
		t.Fatal("clone shares state")
	}
	if err := term.SetParams([]float64{1}); err == nil {
		t.Fatal("short params accepted")
	}
	if err := term.SetParams([]float64{1, -1}); err == nil {
		t.Fatal("negative sigma accepted")
	}
	if term.NumParams() != 2 || term.StatsSize() != 3 {
		t.Fatal("wrong sizes")
	}
	if term.Kind() != LogNormal {
		t.Fatal("wrong kind")
	}
}

func TestLogNormalPriorsFromSummary(t *testing.T) {
	ds, pr := lognormalDS(t)
	_ = ds
	if pr.LogSigma[0] <= 0 || pr.LogSigmaFloor[0] <= 0 {
		t.Fatalf("log priors not derived: %v / %v", pr.LogSigma[0], pr.LogSigmaFloor[0])
	}
	if pr.NonPositive[0] != 0 {
		t.Fatalf("unexpected non-positive count %d", pr.NonPositive[0])
	}
	// The overall log-mean should sit between the component medians.
	if pr.LogMean[0] < math.Log(5) || pr.LogMean[0] > math.Log(5000) {
		t.Fatalf("log mean %v outside data range", pr.LogMean[0])
	}
}

func TestLogNormalDescribe(t *testing.T) {
	ds, pr := lognormalDS(t)
	term := newLogNormalTerm(0, pr)
	if err := term.SetParams([]float64{math.Log(100), 0.3}); err != nil {
		t.Fatal(err)
	}
	desc := term.Describe(ds)
	if desc == "" {
		t.Fatal("empty description")
	}
}
