package model

import "repro/internal/dataset"

// Kernel is a Term's blocked evaluation path. Where Term scores and
// accumulates one row at a time through an interface call, a Kernel walks a
// contiguous block of rows of a column-major mirror (dataset.Columns) in
// one call, with the term's per-cycle invariants — log σ and the Gaussian
// normalizer for the normal terms, the log-probability table for the
// multinomial, the Cholesky factor and log-determinant for the
// multi-normal — precomputed once per cycle instead of per case.
//
// A Kernel aliases its Term: parameter updates (Update/SetParams) are
// picked up by calling Refresh, so the engine can build kernels once per
// (class, term) and reuse them across cycles with zero steady-state
// allocation.
//
// Contract: out and st follow the accumulate convention of LogProb and
// AccumulateStats — contributions are ADDED, missing values add nothing —
// and out[i] corresponds to view-local row lo+i. Block results may differ
// from the per-row path only in floating-point association (≤1e-12
// relative); the per-row path remains the bitwise reference.
type Kernel interface {
	// Refresh recomputes the precomputed constants from the term's current
	// parameters. Call it after Update/SetParams, before any Block call.
	Refresh()
	// BlockLogProb adds the term's log-likelihood contribution for rows
	// [lo, hi) of cols into out[0 : hi-lo].
	BlockLogProb(cols *dataset.Columns, lo, hi int, out []float64)
	// BlockAccumulateStats folds rows [lo, hi) with weights wts[0 : hi-lo]
	// into the term's sufficient statistics st (length StatsSize).
	BlockAccumulateStats(cols *dataset.Columns, wts []float64, lo, hi int, st []float64)
}
