package model

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/rng"
	"repro/internal/stats"
)

func twoRealDS(t *testing.T) (*dataset.Dataset, *Priors) {
	t.Helper()
	ds := dataset.MustNew("tr", []dataset.Attribute{
		{Name: "x", Type: dataset.Real},
		{Name: "y", Type: dataset.Real},
	})
	r := rng.New(11)
	for i := 0; i < 500; i++ {
		x := r.NormMS(0, 2)
		y := 0.8*x + r.NormMS(0, 1) // correlated
		ds.AppendRow([]float64{x, y})
	}
	return ds, NewPriors(ds, ds.Summarize())
}

func TestCholeskyKnownMatrix(t *testing.T) {
	// [[4,2],[2,3]] => L = [[2,0],[1,sqrt(2)]]
	l, ok := cholesky([]float64{4, 2, 2, 3}, 2)
	if !ok {
		t.Fatal("SPD matrix rejected")
	}
	if !stats.AlmostEqual(l[0], 2, 1e-12) || !stats.AlmostEqual(l[2], 1, 1e-12) ||
		!stats.AlmostEqual(l[3], math.Sqrt(2), 1e-12) || l[1] != 0 {
		t.Fatalf("L = %v", l)
	}
}

func TestCholeskyRejectsNonSPD(t *testing.T) {
	if _, ok := cholesky([]float64{1, 2, 2, 1}, 2); ok {
		t.Fatal("indefinite matrix accepted")
	}
	if _, ok := cholesky([]float64{-1}, 1); ok {
		t.Fatal("negative matrix accepted")
	}
}

func TestForwardSolve(t *testing.T) {
	// L = [[2,0],[1,3]], b = [4, 7] => y = [2, 5/3]
	y := forwardSolve([]float64{2, 0, 1, 3}, []float64{4, 7}, 2)
	if !stats.AlmostEqual(y[0], 2, 1e-12) || !stats.AlmostEqual(y[1], 5.0/3, 1e-12) {
		t.Fatalf("y = %v", y)
	}
}

func TestMVNLogProbMatchesClosedForm2D(t *testing.T) {
	ds, pr := twoRealDS(t)
	_ = ds
	term := newMultiNormalTerm([]int{0, 1}, pr)
	mean := []float64{1, -1}
	cov := []float64{2, 0.5, 0.5, 1}
	params := append(append([]float64{}, mean...), cov...)
	if err := term.SetParams(params); err != nil {
		t.Fatal(err)
	}
	x := []float64{1.5, -0.5}
	// Closed form for 2x2.
	det := cov[0]*cov[3] - cov[1]*cov[2]
	inv := []float64{cov[3] / det, -cov[1] / det, -cov[2] / det, cov[0] / det}
	dx := []float64{x[0] - mean[0], x[1] - mean[1]}
	q := dx[0]*(inv[0]*dx[0]+inv[1]*dx[1]) + dx[1]*(inv[2]*dx[0]+inv[3]*dx[1])
	want := -0.5*q - 0.5*math.Log(det) - math.Log(2*math.Pi)
	if got := term.LogProb(x); !stats.AlmostEqual(got, want, 1e-10) {
		t.Fatalf("logprob %v, want %v", got, want)
	}
}

func TestMVNDiagonalMatchesIndependentNormals(t *testing.T) {
	ds, pr := twoRealDS(t)
	_ = ds
	term := newMultiNormalTerm([]int{0, 1}, pr)
	if err := term.SetParams([]float64{0, 0, 4, 0, 0, 9}); err != nil {
		t.Fatal(err)
	}
	x := []float64{1, -2}
	want := stats.LogNormalPDF(1, 0, 2) + stats.LogNormalPDF(-2, 0, 3)
	if got := term.LogProb(x); !stats.AlmostEqual(got, want, 1e-10) {
		t.Fatalf("diagonal MVN %v, want %v", got, want)
	}
}

func TestMVNUpdateRecoversCovariance(t *testing.T) {
	ds, pr := twoRealDS(t)
	term := newMultiNormalTerm([]int{0, 1}, pr)
	st := make([]float64, term.StatsSize())
	for i := 0; i < ds.N(); i++ {
		term.AccumulateStats(ds.Row(i), 1, st)
	}
	term.Update(st)
	// Reference covariance.
	var mx, my stats.Moments
	for i := 0; i < ds.N(); i++ {
		mx.AddUnweighted(ds.Value(i, 0))
		my.AddUnweighted(ds.Value(i, 1))
	}
	cxy := 0.0
	for i := 0; i < ds.N(); i++ {
		cxy += (ds.Value(i, 0) - mx.Mean()) * (ds.Value(i, 1) - my.Mean())
	}
	cxy /= float64(ds.N())
	got := term.Cov()
	if math.Abs(got[0*2+1]-cxy) > 0.1 {
		t.Fatalf("cov_xy %v, want ~%v", got[0*2+1], cxy)
	}
	if math.Abs(term.Mean()[0]-mx.Mean()) > 0.05 {
		t.Fatalf("mean_x %v, want %v", term.Mean()[0], mx.Mean())
	}
	// Correlation should be strongly positive (data built with 0.8 slope).
	corr := got[1] / math.Sqrt(got[0]*got[3])
	if corr < 0.5 {
		t.Fatalf("correlation %v, expected strongly positive", corr)
	}
}

func TestMVNMarginalOnPartialRow(t *testing.T) {
	ds, pr := twoRealDS(t)
	_ = ds
	term := newMultiNormalTerm([]int{0, 1}, pr)
	if err := term.SetParams([]float64{1, -1, 2, 0.5, 0.5, 1}); err != nil {
		t.Fatal(err)
	}
	// x known, y missing: marginal is N(1, sqrt(2)).
	row := []float64{2.5, dataset.Missing}
	want := stats.LogNormalPDF(2.5, 1, math.Sqrt(2))
	if got := term.LogProb(row); !stats.AlmostEqual(got, want, 1e-10) {
		t.Fatalf("marginal logprob %v, want %v", got, want)
	}
	// Both missing: zero contribution.
	if got := term.LogProb([]float64{dataset.Missing, dataset.Missing}); got != 0 {
		t.Fatalf("all-missing logprob %v", got)
	}
}

func TestMVNPartialRowExcludedFromStats(t *testing.T) {
	ds, pr := twoRealDS(t)
	_ = ds
	term := newMultiNormalTerm([]int{0, 1}, pr)
	st := make([]float64, term.StatsSize())
	term.AccumulateStats([]float64{1, dataset.Missing}, 1, st)
	for _, v := range st {
		if v != 0 {
			t.Fatalf("partial row contributed stats %v", st)
		}
	}
	term.AccumulateStats([]float64{1, 2}, 1, st)
	if st[0] != 1 {
		t.Fatalf("full row weight %v", st[0])
	}
}

func TestMVNDegenerateDataGetsJitterOrFloor(t *testing.T) {
	ds, pr := twoRealDS(t)
	_ = ds
	term := newMultiNormalTerm([]int{0, 1}, pr)
	pr.Kappa = 1e-12
	st := make([]float64, term.StatsSize())
	// Perfectly collinear data: y = x exactly; raw covariance is singular.
	for i := 0; i < 50; i++ {
		x := float64(i)
		term.AccumulateStats([]float64{x, x}, 1, st)
	}
	term.Update(st)
	lp := term.LogProb([]float64{10, 10})
	if math.IsNaN(lp) || math.IsInf(lp, 1) {
		t.Fatalf("degenerate covariance produced %v", lp)
	}
}

func TestMVNParamsRoundTrip(t *testing.T) {
	ds, pr := twoRealDS(t)
	_ = ds
	term := newMultiNormalTerm([]int{0, 1}, pr)
	in := []float64{3, 4, 2, 0.3, 0.3, 1.5}
	if err := term.SetParams(in); err != nil {
		t.Fatal(err)
	}
	clone := term.Clone()
	out := clone.Params()
	for i := range in {
		if !stats.AlmostEqual(out[i], in[i], 1e-12) {
			t.Fatalf("params round trip %v -> %v", in, out)
		}
	}
	if err := term.SetParams(in[:3]); err == nil {
		t.Fatal("short params accepted")
	}
	if err := term.SetParams([]float64{0, 0, -1, 0, 0, 1}); err == nil {
		t.Fatal("negative variance accepted")
	}
	if err := term.SetParams([]float64{0, 0, math.NaN(), 0, 0, 1}); err == nil {
		t.Fatal("NaN accepted")
	}
}

func TestMVNStatsSize(t *testing.T) {
	ds, pr := twoRealDS(t)
	_ = ds
	if got := newMultiNormalTerm([]int{0, 1}, pr).StatsSize(); got != 1+2+3 {
		t.Fatalf("StatsSize = %d", got)
	}
}

func TestMVNLogProbIntegratesToOne1DMarginal(t *testing.T) {
	ds, pr := twoRealDS(t)
	_ = ds
	term := newMultiNormalTerm([]int{0, 1}, pr)
	if err := term.SetParams([]float64{0, 0, 1, 0.6, 0.6, 2}); err != nil {
		t.Fatal(err)
	}
	// Integrate the x-marginal numerically.
	sum := 0.0
	const step = 0.01
	for x := -10.0; x <= 10; x += step {
		sum += math.Exp(term.LogProb([]float64{x, dataset.Missing})) * step
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Fatalf("x marginal integrates to %v", sum)
	}
}
