package model

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/dataset"
)

// multinomialTerm is AutoClass's single_multinomial: one discrete attribute
// modeled as a categorical distribution with a symmetric Dirichlet prior.
//
// Sufficient statistics (cardinality values): weighted level counts.
//
// MAP update: p_v = (α + c_v) / (V·α + W).
type multinomialTerm struct {
	attr  int
	card  int
	pr    *Priors
	probs []float64
	logp  []float64
}

func newMultinomialTerm(attr, card int, pr *Priors) *multinomialTerm {
	t := &multinomialTerm{
		attr:  attr,
		card:  card,
		pr:    pr,
		probs: make([]float64, card),
		logp:  make([]float64, card),
	}
	u := 1 / float64(card)
	for v := range t.probs {
		t.probs[v] = u
		t.logp[v] = math.Log(u)
	}
	return t
}

func (t *multinomialTerm) Kind() TermKind { return SingleMultinomial }
func (t *multinomialTerm) Attrs() []int   { return []int{t.attr} }

// Probs returns the current level probabilities (exported for reports and
// tests). Callers must not modify the slice.
func (t *multinomialTerm) Probs() []float64 { return t.probs }

func (t *multinomialTerm) LogProb(row []float64) float64 {
	x := row[t.attr]
	if dataset.IsMissing(x) {
		return 0
	}
	return t.logp[int(x)]
}

func (t *multinomialTerm) StatsSize() int { return t.card }

func (t *multinomialTerm) AccumulateStats(row []float64, w float64, st []float64) {
	x := row[t.attr]
	if dataset.IsMissing(x) {
		return
	}
	st[int(x)] += w
}

func (t *multinomialTerm) Update(st []float64) {
	alpha := t.pr.DirichletAlpha
	total := float64(t.card) * alpha
	for _, c := range st {
		total += c
	}
	for v := range t.probs {
		p := (alpha + st[v]) / total
		t.probs[v] = p
		t.logp[v] = math.Log(p)
	}
}

func (t *multinomialTerm) LogPrior() float64 {
	return logSymmetricDirichletPDF(t.probs, t.pr.DirichletAlpha)
}

func (t *multinomialTerm) NumParams() int { return t.card - 1 }

func (t *multinomialTerm) Params() []float64 {
	return append([]float64(nil), t.probs...)
}

func (t *multinomialTerm) SetParams(p []float64) error {
	if len(p) != t.card {
		return fmt.Errorf("model: multinomial term needs %d params, got %d", t.card, len(p))
	}
	sum := 0.0
	for _, v := range p {
		if v <= 0 || v > 1 || math.IsNaN(v) {
			return fmt.Errorf("model: invalid multinomial probability %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("model: multinomial params sum to %v", sum)
	}
	copy(t.probs, p)
	for v := range t.probs {
		t.logp[v] = math.Log(t.probs[v])
	}
	return nil
}

func (t *multinomialTerm) Clone() Term {
	c := &multinomialTerm{
		attr:  t.attr,
		card:  t.card,
		pr:    t.pr,
		probs: append([]float64(nil), t.probs...),
		logp:  append([]float64(nil), t.logp...),
	}
	return c
}

func (t *multinomialTerm) Describe(ds *dataset.Dataset) string {
	a := ds.Attr(t.attr)
	parts := make([]string, t.card)
	for v := range parts {
		parts[v] = fmt.Sprintf("%s=%.3f", a.Levels[v], t.probs[v])
	}
	return fmt.Sprintf("%s ~ Multinomial(%s)", a.Name, strings.Join(parts, ", "))
}

// multinomialKernel is the blocked path of multinomialTerm. The per-cycle
// invariant is the log-probability table itself, which Update and SetParams
// rewrite in place on the term — so the kernel just reads t.logp and
// Refresh has nothing to do. The x == x check rejects NaN (missing) before
// the int conversion, whose result for NaN is unspecified.
type multinomialKernel struct {
	t *multinomialTerm
}

func (t *multinomialTerm) Kernel() Kernel {
	return &multinomialKernel{t: t}
}

func (k *multinomialKernel) Refresh() {}

func (k *multinomialKernel) BlockLogProb(cols *dataset.Columns, lo, hi int, out []float64) {
	col := cols.Col(k.t.attr)[lo:hi]
	logp := k.t.logp
	if !cols.HasMissing(k.t.attr) {
		for i, x := range col {
			out[i] += logp[int(x)]
		}
		return
	}
	for i, x := range col {
		if x == x {
			out[i] += logp[int(x)]
		}
	}
}

func (k *multinomialKernel) BlockAccumulateStats(cols *dataset.Columns, wts []float64, lo, hi int, st []float64) {
	col := cols.Col(k.t.attr)[lo:hi]
	if !cols.HasMissing(k.t.attr) {
		for i, x := range col {
			st[int(x)] += wts[i]
		}
		return
	}
	for i, x := range col {
		if x == x {
			st[int(x)] += wts[i]
		}
	}
}

// KLTo implements Term: Σ p·ln(p/q) over the levels.
func (t *multinomialTerm) KLTo(other Term) (float64, error) {
	o, ok := other.(*multinomialTerm)
	if !ok || o.attr != t.attr || o.card != t.card {
		return 0, fmt.Errorf("model: KL between incompatible terms")
	}
	kl := 0.0
	for v := range t.probs {
		kl += t.probs[v] * (t.logp[v] - o.logp[v])
	}
	if kl < 0 {
		kl = 0 // rounding guard; MAP probabilities are never exactly zero
	}
	return kl, nil
}
