package model

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// normalTerm is AutoClass's single_normal_cn: one real attribute modeled as
// a Gaussian with a data-dependent conjugate-style MAP update.
//
// Sufficient statistics (3 values): [Σ w·x, Σ w·x², Σ w over known values].
//
// MAP update with prior pseudo-count κ, prior mean μ₀ (global mean) and
// prior scale σ₀ (global sigma):
//
//	μ = (κ·μ₀ + Σwx) / (κ + W)
//	σ² = (κ·σ₀² + κ·(μ−μ₀)² + Σw(x−μ)²) / (κ + W),  σ ≥ floor
type normalTerm struct {
	attr  int
	pr    *Priors
	mean  float64
	sigma float64
}

func newNormalTerm(attr int, pr *Priors) *normalTerm {
	return &normalTerm{
		attr:  attr,
		pr:    pr,
		mean:  pr.Mean[attr],
		sigma: pr.Sigma[attr],
	}
}

func (t *normalTerm) Kind() TermKind { return SingleNormal }
func (t *normalTerm) Attrs() []int   { return []int{t.attr} }

// Mean returns the current class mean (exported for reports and tests).
func (t *normalTerm) Mean() float64 { return t.mean }

// Sigma returns the current class standard deviation.
func (t *normalTerm) Sigma() float64 { return t.sigma }

func (t *normalTerm) LogProb(row []float64) float64 {
	x := row[t.attr]
	if dataset.IsMissing(x) {
		return 0
	}
	return stats.LogNormalPDF(x, t.mean, t.sigma)
}

func (t *normalTerm) StatsSize() int { return 3 }

func (t *normalTerm) AccumulateStats(row []float64, w float64, st []float64) {
	x := row[t.attr]
	if dataset.IsMissing(x) {
		return
	}
	st[0] += w * x
	st[1] += w * x * x
	st[2] += w
}

func (t *normalTerm) Update(st []float64) {
	sumWX, sumWX2, w := st[0], st[1], st[2]
	kappa := t.pr.Kappa
	mu0 := t.pr.Mean[t.attr]
	sigma0 := t.pr.Sigma[t.attr]
	mean := (kappa*mu0 + sumWX) / (kappa + w)
	// Σw(x−μ)² = Σwx² − 2μΣwx + μ²W
	ss := sumWX2 - 2*mean*sumWX + mean*mean*w
	if ss < 0 {
		ss = 0 // rounding guard
	}
	dm := mean - mu0
	variance := (kappa*sigma0*sigma0 + kappa*dm*dm + ss) / (kappa + w)
	sigma := math.Sqrt(variance)
	if floor := t.pr.SigmaFloor[t.attr]; sigma < floor {
		sigma = floor
	}
	t.mean, t.sigma = mean, sigma
}

func (t *normalTerm) LogPrior() float64 {
	mu0 := t.pr.Mean[t.attr]
	sigma0 := t.pr.Sigma[t.attr]
	return stats.LogNormalPDF(t.mean, mu0, sigma0) +
		logInvGammaPDF(t.sigma*t.sigma, sigma0*sigma0)
}

func (t *normalTerm) NumParams() int { return 2 }

func (t *normalTerm) Params() []float64 { return []float64{t.mean, t.sigma} }

func (t *normalTerm) SetParams(p []float64) error {
	if len(p) != 2 {
		return fmt.Errorf("model: normal term needs 2 params, got %d", len(p))
	}
	if p[1] <= 0 || math.IsNaN(p[0]) || math.IsNaN(p[1]) {
		return fmt.Errorf("model: invalid normal params %v", p)
	}
	t.mean, t.sigma = p[0], p[1]
	return nil
}

func (t *normalTerm) Clone() Term {
	c := *t
	return &c
}

func (t *normalTerm) Describe(ds *dataset.Dataset) string {
	return fmt.Sprintf("%s ~ N(mean=%.4g, sigma=%.4g)", ds.Attr(t.attr).Name, t.mean, t.sigma)
}

// normalKernel is the blocked path of normalTerm. Refresh precomputes the
// two per-cycle invariants of the Gaussian log-density, reducing the inner
// loop to one subtract, two multiplies and an add per case:
//
//	log N(x|μ,σ) = c − (x−μ)²·inv2,  c = −log σ − ½log 2π,  inv2 = 1/(2σ²)
type normalKernel struct {
	t    *normalTerm
	mean float64
	c    float64
	inv2 float64
}

func (t *normalTerm) Kernel() Kernel {
	k := &normalKernel{t: t}
	k.Refresh()
	return k
}

func (k *normalKernel) Refresh() {
	k.mean = k.t.mean
	k.c = -math.Log(k.t.sigma) - stats.HalfLog2Pi
	k.inv2 = 1 / (2 * k.t.sigma * k.t.sigma)
}

func (k *normalKernel) BlockLogProb(cols *dataset.Columns, lo, hi int, out []float64) {
	col := cols.Col(k.t.attr)[lo:hi]
	mean, c, inv2 := k.mean, k.c, k.inv2
	if !cols.HasMissing(k.t.attr) {
		for i, x := range col {
			d := x - mean
			out[i] += c - d*d*inv2
		}
		return
	}
	for i, x := range col {
		if x == x { // NaN encodes missing
			d := x - mean
			out[i] += c - d*d*inv2
		}
	}
}

func (k *normalKernel) BlockAccumulateStats(cols *dataset.Columns, wts []float64, lo, hi int, st []float64) {
	col := cols.Col(k.t.attr)[lo:hi]
	var sx, sxx, sw float64
	if !cols.HasMissing(k.t.attr) {
		for i, x := range col {
			w := wts[i]
			wx := w * x
			sx += wx
			sxx += wx * x
			sw += w
		}
	} else {
		for i, x := range col {
			if x == x {
				w := wts[i]
				wx := w * x
				sx += wx
				sxx += wx * x
				sw += w
			}
		}
	}
	st[0] += sx
	st[1] += sxx
	st[2] += sw
}

// KLTo implements Term: the closed-form Gaussian divergence
// KL(N(μ₁,σ₁) ‖ N(μ₂,σ₂)) = ln(σ₂/σ₁) + (σ₁² + (μ₁−μ₂)²)/(2σ₂²) − ½.
func (t *normalTerm) KLTo(other Term) (float64, error) {
	o, ok := other.(*normalTerm)
	if !ok || o.attr != t.attr {
		return 0, fmt.Errorf("model: KL between incompatible terms")
	}
	r := t.sigma / o.sigma
	dm := t.mean - o.mean
	return math.Log(1/r) + (r*r+dm*dm/(o.sigma*o.sigma))/2 - 0.5, nil
}
